// The paper's running example, end to end: the stock portfolio of
// Fig. 1(b), fragmented as in Fig. 2 (F0 on the desktop, F1 at Merill
// Lynch, F2 and F3 at the NASDAQ site), queried with the queries from
// Secs. 1-4, and maintained incrementally as in Example 5.1.
//
// Run it to watch the partial answers (Boolean formulas over the
// sub-fragment variables of Example 3.2) and the unification of
// Example 3.3 happen for real.

#include <cstdio>
#include <cstdlib>

#include "boolexpr/expr.h"
#include "core/partial_eval.h"
#include "core/session.h"
#include "core/view.h"
#include "fragment/source_tree.h"
#include "xmark/portfolio.h"
#include "xml/writer.h"
#include "xpath/normalize.h"

namespace {

void Check(const parbox::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace parbox;

  auto set = xmark::BuildPortfolioFragments();
  Check(set.status());
  std::printf("== The portfolio of Fig. 1(b), fragmented as in Fig. 2 ==\n");
  for (auto f : set->live_ids()) {
    std::printf("\nFragment F%d (at %s):\n%s\n", f,
                f == 0   ? "the desktop, S0"
                : f == 1 ? "Merill Lynch, S1"
                         : "the NASDAQ site, S2",
                xml::WriteXml(set->fragment(f).root, {.indent = true})
                    .c_str());
  }

  // Fig. 2(b): h(F0)=S0, h(F1)=S1, h(F2)=h(F3)=S2. One session serves
  // every query below against this deployment.
  auto st = frag::SourceTree::Create(*set, {0, 1, 2, 2});
  Check(st.status());
  auto session = core::Session::Create(&*set, &*st);
  Check(session.status());

  // --- Example 2.1: normalize //stock[code/text() = "YHOO"] ---
  auto yhoo = session->Prepare(xmark::kYhooQuery);
  Check(yhoo.status());
  std::printf("== QList(q) for %s (Example 2.1) ==\n%s\n",
              xmark::kYhooQuery, yhoo->query().ToString().c_str());

  // --- Example 3.2: the partial answers each site computes ---
  std::printf("== Partial evaluation per fragment (Example 3.2) ==\n");
  const xpath::NormQuery& yhoo_q = yhoo->query();
  bexpr::ExprFactory& factory = session->factory();
  for (auto f : set->live_ids()) {
    auto eq = core::PartialEvalFragment(&factory, yhoo_q, *set, f, nullptr);
    std::printf("V_F%d[answer] = %s\n", f,
                factory.ToString(eq.v[yhoo_q.root()]).c_str());
    std::printf("DV_F%d[answer] = %s\n", f,
                factory.ToString(eq.dv[yhoo_q.root()]).c_str());
  }

  // --- Example 3.3: ParBoX solves the equation system ---
  auto report = session->Execute(*yhoo);
  Check(report.status());
  std::printf("\n== ParBoX (Example 3.3) ==\n%s\n",
              report->Detailed().c_str());

  // --- Sec. 1's query: does GOOG reach a sell price of 376? ---
  auto goog = session->Prepare(xmark::kGoogSellQuery);
  Check(goog.status());
  auto goog_report = session->Execute(*goog);
  Check(goog_report.status());
  std::printf("\n%s\n  -> %s (the best sell in the tree is 373)\n",
              xmark::kGoogSellQuery,
              goog_report->answer ? "true" : "false");

  // --- Sec. 4: the lazy algorithm stops at depth 0 for this one ---
  auto merill = session->Prepare(xmark::kMerillQuery);
  Check(merill.status());
  auto lazy = session->Execute(*merill, {.evaluator = "lazy"});
  Check(lazy.status());
  std::printf("\n%s via LazyParBoX:\n  %s\n  (total visits: %llu — the "
              "NASDAQ site was never bothered)\n",
              xmark::kMerillQuery, lazy->ToString().c_str(),
              static_cast<unsigned long long>(lazy->total_visits()));

  // --- Sec. 5 / Example 5.1: incremental view maintenance ---
  std::printf("\n== Materialized view + updates (Example 5.1) ==\n");
  auto hpq_query = xpath::CompileQuery("[//stock[code = \"HPQ\"]]");
  Check(hpq_query.status());
  auto view_result =
      core::MaterializedView::Create(&*set, {0, 1, 2, 2}, &*hpq_query);
  Check(view_result.status());
  core::MaterializedView view = std::move(*view_result);
  std::printf("view [//stock[code = \"HPQ\"]] = %s\n",
              view.answer() ? "true" : "false");

  // Insert a new HPQ stock into F0's NYSE market (insNode x5).
  xml::Node* nyse = xml::FindFirstElement(set->fragment(0).root, "market");
  auto stock = view.InsNode(0, nyse, "stock");
  Check(stock.status());
  Check(view.InsNode(0, *stock, "code", "HPQ").status());
  Check(view.InsNode(0, *stock, "buy", "30").status());
  Check(view.InsNode(0, *stock, "sell", "33").status());
  auto refresh = view.Refresh(0);
  Check(refresh.status());
  std::printf("after inserting the HPQ stock: view = %s  (%s)\n",
              view.answer() ? "true" : "false",
              refresh->ToString().c_str());

  // splitFragments(market): carve the NYSE market out as F4 at a new
  // site S3 — the answer is untouched.
  auto f4 = view.SplitFragments(0, nyse, /*new_site=*/3);
  Check(f4.status());
  std::printf("after splitFragments(market) -> F%d at S3: view = %s, "
              "card(F) = %zu\n",
              *f4, view.answer() ? "true" : "false", set->live_count());
  return 0;
}
