// QueryService walkthrough: serve a stream of queries over the paper's
// stock-portfolio fragmentation (Fig. 2), watch batching and the
// result cache at work, then update the document through a
// materialized view and watch exactly the affected cached answers
// fall out.
//
//   $ ./example_query_service

#include <cstdio>
#include <cstdlib>

#include "core/view.h"
#include "fragment/strategies.h"
#include "service/query_service.h"
#include "xmark/portfolio.h"
#include "xpath/normalize.h"

namespace {

void Check(const parbox::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

parbox::xpath::NormQuery Compile(const char* text) {
  auto q = parbox::xpath::CompileQuery(text);
  Check(q.status());
  return std::move(*q);
}

void PrintOutcomes(const parbox::service::QueryService& svc, size_t from) {
  for (size_t i = from; i < svc.outcomes().size(); ++i) {
    const auto& o = svc.outcomes()[i];
    std::printf("  q%llu -> %-5s  %.3f ms  %s\n",
                static_cast<unsigned long long>(o.query_id),
                o.answer ? "true" : "false", o.latency_seconds() * 1e3,
                o.cache_hit           ? "[cache hit]"
                : o.shared_evaluation ? "[shared evaluation]"
                                      : "[evaluated]");
  }
}

}  // namespace

int main() {
  using namespace parbox;

  // 1. The paper's fragmented portfolio: F0..F3 across four sites.
  auto set = xmark::BuildPortfolioFragments();
  Check(set.status());
  std::vector<frag::SiteId> sites = frag::AssignOneSitePerFragment(*set);
  auto st = frag::SourceTree::Create(*set, sites);
  Check(st.status());
  std::printf("portfolio: %zu fragments on %d sites\n\n",
              set->live_count(), st->num_sites());

  // 2. A long-lived service instead of one-shot Run* calls. Under the
  //    hood it is a core::Session: one cluster, one hash-consing
  //    formula factory, one per-site partition plan, for its lifetime.
  service::QueryService svc(&*set, &*st);

  // 3. Three users ask at once; two ask the same thing. The batch
  //    visits each site once and evaluates the YHOO query once.
  std::printf("burst of three queries (two identical):\n");
  Check(svc.Submit(Compile(xmark::kYhooQuery), 0.0).status());
  Check(svc.Submit(Compile(xmark::kYhooQuery), 0.0).status());
  Check(svc.Submit(Compile(xmark::kGoogSellQuery), 0.0).status());
  svc.Run();
  PrintOutcomes(svc, 0);

  // 4. Ask again later: pure cache hits, no site is visited.
  std::printf("\nsame questions again:\n");
  size_t before = svc.outcomes().size();
  Check(svc.Submit(Compile(xmark::kYhooQuery), svc.now()).status());
  Check(svc.Submit(Compile(xmark::kGoogSellQuery), svc.now()).status());
  svc.Run();
  PrintOutcomes(svc, before);

  // 5. Wire the cache to a materialized view and update the document:
  //    a YHOO stock lists on Bache's NASDAQ market (fragment F3). The
  //    YHOO answer's triplet for F3 changes, so that entry — and only
  //    that entry — is invalidated; the GOOG answer stays cached.
  xpath::NormQuery view_query = Compile(xmark::kYhooQuery);
  auto view = core::MaterializedView::Create(&*set, sites, &view_query);
  Check(view.status());
  Check(svc.AttachView(&*view));

  std::printf("\ncache before update: %zu entries\n", svc.cache_size());
  xml::Node* market = set->fragment(3).root;
  auto stock = view->InsNode(3, market, "stock");
  Check(stock.status());
  Check(view->InsNode(3, *stock, "code", "YHOO").status());
  std::printf("insNode(<stock><code>YHOO</code></stock>) into F3\n");
  std::printf("cache after update:  %zu entries (only the affected "
              "answer dropped)\n",
              svc.cache_size());

  // 6. Re-ask: invalidated answers re-evaluate, the rest still hit.
  std::printf("\nafter the update:\n");
  before = svc.outcomes().size();
  Check(svc.Submit(Compile(xmark::kYhooQuery), svc.now()).status());
  Check(svc.Submit(Compile(xmark::kGoogSellQuery), svc.now()).status());
  svc.Run();
  PrintOutcomes(svc, before);

  std::printf("\n%s\n", svc.BuildReport().ToString().c_str());
  return 0;
}
