// Publish/subscribe filtering — the motivating workload the paper's
// introduction cites for Boolean XPath ([2], content-based routing).
//
// A broker holds a fragmented, distributed auction document (each
// regional data centre owns its fragments). Hundreds of subscribers
// register Boolean XPath predicates; every "edition" of the document,
// the broker must decide which subscribers to notify. With ParBoX each
// data centre is contacted once per predicate and only formulas move.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/session.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "xmark/generator.h"
#include "xpath/normalize.h"

namespace {

void Check(const parbox::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

struct Subscription {
  std::string subscriber;
  std::string predicate;
};

}  // namespace

int main() {
  using namespace parbox;

  // One auction "site" per region, fragmented and placed on four
  // simulated data centres.
  xml::Document doc = xmark::GenerateStarDocument(/*num_sites=*/4,
                                                  /*bytes_per_site=*/60000,
                                                  /*seed=*/2024);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  Check(set.status());
  auto created = frag::SplitAtAllLabeled(&*set, "site");
  Check(created.status());
  auto st =
      frag::SourceTree::Create(*set, frag::AssignOneSitePerFragment(*set));
  Check(st.status());
  std::printf("catalogue: %zu elements in %zu fragments on %d sites\n\n",
              set->TotalElements(), set->live_count(), st->num_sites());

  const std::vector<Subscription> subscriptions = {
      {"alice", "[//open_auction[bidder/increase]]"},
      {"bob", "[//item[payment = \"Creditcard\"]]"},
      {"carol", "[//person[creditcard] and //closed_auction]"},
      {"dave", "[//item[shipping] and not(//category[name = \"none\"])]"},
      {"erin", "[//open_auction[initial = \"$999\"]]"},
      {"frank", "[//marker/text() = \"m2\"]"},
      {"grace", "[//person[profile/interest]]"},
      {"heidi", "[//closed_auction[price = \"$1000000\"]]"},
  };

  // The broker's long-lived session: subscriptions are prepared once
  // at registration time; every edition just re-executes the handles.
  auto session = core::Session::Create(&*set, &*st);
  Check(session.status());
  std::vector<core::PreparedQuery> prepared;
  for (const Subscription& sub : subscriptions) {
    auto query = session->Prepare(sub.predicate);
    Check(query.status());
    prepared.push_back(std::move(*query));
  }

  std::printf("%-8s %-52s %-6s %-12s %s\n", "subs", "predicate", "match",
              "runtime", "traffic");
  uint64_t total_bytes = 0;
  double total_runtime = 0;
  int notified = 0;
  for (size_t i = 0; i < subscriptions.size(); ++i) {
    const Subscription& sub = subscriptions[i];
    auto report = session->Execute(prepared[i]);
    Check(report.status());
    std::printf("%-8s %-52s %-6s %-12.4f %llu B\n", sub.subscriber.c_str(),
                sub.predicate.c_str(), report->answer ? "yes" : "no",
                report->makespan_seconds,
                static_cast<unsigned long long>(report->network_bytes));
    total_bytes += report->network_bytes;
    total_runtime += report->makespan_seconds;
    notified += report->answer ? 1 : 0;
  }
  std::printf("\n%d of %zu subscribers notified; %llu bytes total on the "
              "wire across %zu evaluations\n",
              notified, subscriptions.size(),
              static_cast<unsigned long long>(total_bytes),
              subscriptions.size());
  std::printf("(the document itself is ~%zu KB and never moved)\n",
              set->TotalElements() / 10);
  std::printf("cumulative runtime %.3f s, all sites contacted exactly once "
              "per predicate\n",
              total_runtime);
  return 0;
}
