// Live updates: apply typed deltas to a distributed document and
// re-answer prepared queries incrementally.
//
//   $ ./examples/live_updates
//
// The update pipeline end to end: frag::Delta -> Session::Apply ->
// Session::ExecuteIncremental. Only the fragments a delta touched are
// re-evaluated (one "update" message to each dirty site); every clean
// fragment's triplet formulas are reused from the previous run, and
// the coordinator re-solves the equation system. Answers are always
// identical to a from-scratch run.

#include <cstdio>
#include <cstdlib>

#include "core/session.h"
#include "fragment/delta.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "xml/dom.h"
#include "xml/parser.h"

namespace {

constexpr const char* kTicker = R"(
<exchange>
  <desk name="tech">
    <stock><code>GOOG</code><state>hold</state></stock>
    <stock><code>MSFT</code><state>hold</state></stock>
  </desk>
  <desk name="energy">
    <stock><code>SHEL</code><state>hold</state></stock>
  </desk>
</exchange>
)";

void Check(const parbox::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace parbox;

  // A fragmented, distributed ticker: each <desk> on its own site.
  auto doc = xml::ParseXml(kTicker);
  Check(doc.status());
  auto set = frag::FragmentSet::FromDocument(std::move(*doc));
  Check(set.status());
  xml::Node* root = set->fragment(0).root;
  for (xml::Node* c = root->first_child; c != nullptr;) {
    xml::Node* next = c->next_sibling;
    if (c->is_element() && c->label() == "desk") {
      Check(set->Split(0, c).status());
    }
    c = next;
  }
  auto st = frag::SourceTree::Create(
      *set, frag::AssignOneSitePerFragment(*set));
  Check(st.status());
  std::printf("%zu fragments over %d sites\n", set->live_count(),
              st->num_sites());

  // A *writable* session: created from a mutable FragmentSet, it
  // accepts Apply(delta) alongside the usual Prepare/Execute.
  auto session = core::Session::Create(&*set, &*st);
  Check(session.status());

  auto sell_signal = session->Prepare(
      "[//stock[code = \"GOOG\" and state = \"sell\"]]");
  Check(sell_signal.status());

  auto show = [&](const char* what) {
    auto report = session->ExecuteIncremental(*sell_signal);
    Check(report.status());
    std::printf("%-34s -> %-5s  %s, visits %llu, %llu update msgs\n",
                what, report->answer ? "true" : "false",
                report->algorithm.c_str(),
                static_cast<unsigned long long>(report->total_visits()),
                static_cast<unsigned long long>(
                    session->backend().traffic().messages_with_tag(
                        "update")));
  };

  // First run seeds the per-query state: a full ParBoX pass whose
  // triplets are retained.
  show("initial (seeds triplets)");
  // Nothing changed: the answer is served at the coordinator, no site
  // is visited.
  show("re-ask, no updates");

  // The tech desk flips GOOG to "sell": one delta, one dirty
  // fragment, one site revisited.
  frag::FragmentId tech = 1;
  xml::Node* goog_state = nullptr;
  for (xml::Node* s = set->fragment(tech).root->first_child; s != nullptr;
       s = s->next_sibling) {
    if (s->is_element() && xml::FindFirstElement(s, "code") != nullptr &&
        xml::DirectText(*xml::FindFirstElement(s, "code")) == "GOOG") {
      goog_state = xml::FindFirstElement(s, "state");
    }
  }
  Check(session->Apply(frag::Delta::Retext(tech, goog_state, "sell"))
            .status());
  show("after GOOG -> sell");

  // A new listing lands on the energy desk: irrelevant to the signal,
  // so the re-solve confirms the answer with one site visit and no
  // change at the coordinator.
  frag::FragmentId energy = 2;
  auto listed = session->Apply(frag::Delta::InsertSubtree(
      energy, set->fragment(energy).root, "stock"));
  Check(listed.status());
  Check(session
            ->Apply(frag::Delta::InsertSubtree(energy, listed->node,
                                               "code", "TTE"))
            .status());
  show("after unrelated listing");

  // The listing is withdrawn again (delete-subtree).
  Check(session->Apply(frag::Delta::DeleteSubtree(energy, listed->node))
            .status());
  show("after withdrawal");
  return 0;
}
