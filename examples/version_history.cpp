// Version-history chains (the paper's FT2 scenario, Experiment 2):
// "in a temporal database each fragment can represent an XMark site at
// a point in time; FT2 represents the version history of this site."
//
// This example builds a 6-version chain, compares ParBoX /
// FullDistParBoX / LazyParBoX on queries satisfied at different
// depths, and demonstrates the selection extension (Sec. 8): find the
// *nodes* matching a predicate across all versions with at most two
// visits per site.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/selection.h"
#include "core/session.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/dom.h"
#include "xpath/normalize.h"

namespace {

void Check(const parbox::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace parbox;

  constexpr int kVersions = 6;
  xml::Document doc =
      xmark::GenerateChainDocument(kVersions, /*bytes_per_site=*/40000,
                                   /*seed=*/7);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  Check(set.status());
  Check(frag::SplitAtAllLabeled(&*set, "site").status());
  auto st =
      frag::SourceTree::Create(*set, frag::AssignOneSitePerFragment(*set));
  Check(st.status());
  std::printf(
      "version chain: %zu fragments (depth %d), %zu elements total\n\n",
      set->live_count(), st->max_depth(), set->TotalElements());

  // Queries satisfied at the newest (v0, the root), a middle, and the
  // oldest version — the workloads of Figs. 9-11. One session, one
  // Prepare per version, three evaluators per prepared query.
  auto session = core::Session::Create(&*set, &*st);
  Check(session.status());
  for (int version : {0, kVersions / 2, kVersions - 1}) {
    std::string marker = "v";
    marker += std::to_string(version);
    auto query = xmark::MakeMarkerQuery(marker);
    Check(query.status());
    auto prepared = session->Prepare(std::move(*query));
    Check(prepared.status());
    std::printf("== query satisfied at version %d: %s ==\n", version,
                xmark::MarkerQueryText(marker).c_str());
    for (const char* evaluator : {"parbox", "fulldist", "lazy"}) {
      auto report = session->Execute(*prepared, {.evaluator = evaluator});
      Check(report.status());
      std::printf("  %s\n", report->ToString().c_str());
    }
    std::printf("\n");
  }

  // Selection across all versions: every <item> that accepts credit
  // cards, anywhere in the history.
  auto predicate =
      xpath::CompileQuery("[label() = item and payment = \"Creditcard\"]");
  Check(predicate.status());
  auto selection = core::RunSelectionParBoX(*set, *st, *predicate);
  Check(selection.status());
  std::printf("== selection: items with credit-card payment ==\n");
  for (auto f : set->live_ids()) {
    std::printf("  version %d contributes %zu items\n", f,
                selection->selected_by_fragment[f].size());
  }
  std::printf("  total %zu items; max visits per site = %llu (<= 2, the "
              "Sec. 8 guarantee)\n",
              selection->total_selected,
              static_cast<unsigned long long>(
                  selection->report.max_visits_per_site()));
  return 0;
}
