// Quickstart: parse a document, fragment it, distribute it, and ask a
// Boolean XPath question with ParBoX.
//
//   $ ./examples/quickstart
//
// Walks through the full public API surface in ~5 minutes of reading:
// xml::ParseXml -> frag::FragmentSet -> frag::SourceTree ->
// core::Session::Prepare -> Session::Execute.

#include <cstdio>
#include <cstdlib>

#include "core/session.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/normalize.h"

namespace {

constexpr const char* kLibrary = R"(
<library>
  <shelf id="fiction">
    <book><title>Dune</title><year>1965</year></book>
    <book><title>Neuromancer</title><year>1984</year></book>
  </shelf>
  <shelf id="databases">
    <book><title>Readings in Database Systems</title><year>2005</year></book>
    <book><title>Transaction Processing</title><year>1992</year></book>
  </shelf>
</library>
)";

void Check(const parbox::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace parbox;

  // 1. Parse XML into a DOM.
  auto doc = xml::ParseXml(kLibrary);
  Check(doc.status());
  std::printf("parsed %zu elements\n", xml::CountElements(doc->root()));

  // 2. Fragment it: each <shelf> becomes its own fragment, as if each
  //    were administered by a different site.
  auto set = frag::FragmentSet::FromDocument(std::move(*doc));
  Check(set.status());
  xml::Node* root = set->fragment(0).root;
  for (xml::Node* c = root->first_child; c != nullptr;) {
    xml::Node* next = c->next_sibling;
    if (c->is_element() && c->label() == "shelf") {
      Check(set->Split(0, c).status());
    }
    c = next;
  }
  std::printf("fragmented into %zu fragments\n", set->live_count());

  // 3. Place fragments on sites: the root catalogue on site 0, each
  //    shelf on its own machine.
  auto st = frag::SourceTree::Create(
      *set, frag::AssignOneSitePerFragment(*set));
  Check(st.status());
  std::printf("distributed over %d sites\n", st->num_sites());

  // 4. Open a session: it owns the simulated cluster and the formula
  //    factory for as long as you keep querying this deployment.
  auto session = core::Session::Create(&*set, &*st);
  Check(session.status());

  // 5. Prepare once (parse -> normalize -> validate -> fingerprint),
  //    then execute with ParBoX: one visit per site, formulas on the
  //    wire, equation system solved at the coordinator. A prepared
  //    query can be executed any number of times — and with any
  //    registered evaluator, e.g. {.evaluator = "lazy"}.
  for (const char* text : {
           "[//book[year = \"1984\"]]",
           "[//book[title = \"Dune\" and year = \"1984\"]]",
           "[//shelf[book/year = \"1992\"] and //book[year = \"1965\"]]",
       }) {
    auto query = session->Prepare(text);
    Check(query.status());
    auto report = session->Execute(*query);
    Check(report.status());
    std::printf("\n%s\n  -> %s\n  %s\n", text,
                report->answer ? "true" : "false",
                report->ToString().c_str());
  }
  return 0;
}
