#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/threaded.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xmark/portfolio.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

TEST(ThreadedTest, AgreesWithSimulatedParBoXOnPortfolio) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = frag::SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  for (const char* text : {xmark::kGoogSellQuery, xmark::kYhooQuery,
                           xmark::kMerillQuery}) {
    auto q = xpath::CompileQuery(text);
    ASSERT_TRUE(q.ok());
    auto simulated = RunParBoX(*set, *st, *q);
    auto threaded = RunParBoXThreads(*set, *st, *q);
    ASSERT_TRUE(simulated.ok() && threaded.ok());
    EXPECT_EQ(threaded->answer, simulated->answer) << text;
    EXPECT_EQ(threaded->sites_used, 3);
  }
}

TEST(ThreadedTest, ThreadCapRespectedAndCorrect) {
  auto scenario = testutil::MakeRandomScenario(77, 200, 9);
  auto q = xpath::CompileQuery("[//a[b] or //c/text() = \"t2\"]");
  ASSERT_TRUE(q.ok());
  auto reference = RunParBoX(scenario.set, scenario.st, *q);
  ASSERT_TRUE(reference.ok());
  for (int cap : {1, 2, 8, 0 /* = one per site */}) {
    ThreadedOptions options;
    options.max_threads = cap;
    auto threaded =
        RunParBoXThreads(scenario.set, scenario.st, *q, options);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    EXPECT_EQ(threaded->answer, reference->answer) << "cap " << cap;
  }
}

TEST(ThreadedTest, WireBytesMatchSimulatedTripletTraffic) {
  // The threaded runner serializes the same triplets the simulator
  // ships; the coordinator's own fragments also cross the codec here,
  // so wire bytes >= the simulated (remote-only) triplet bytes.
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = frag::SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  auto q = xpath::CompileQuery(xmark::kYhooQuery);
  ASSERT_TRUE(q.ok());
  auto threaded = RunParBoXThreads(*set, *st, *q);
  ASSERT_TRUE(threaded.ok());
  EXPECT_GT(threaded->wire_bytes, 0u);
  auto simulated = RunParBoX(*set, *st, *q);
  ASSERT_TRUE(simulated.ok());
  EXPECT_GE(threaded->wire_bytes, simulated->network_bytes -
                                      /* query broadcasts */ 3 *
                                          q->SerializedSizeBytes());
}

// Property: threads and simulation agree on random scenarios.
class ThreadedAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThreadedAgreementTest, MatchesSimulated) {
  Rng rng(GetParam() * 131 + 5);
  auto scenario = testutil::MakeRandomScenario(GetParam() + 300, 100, 5);
  for (int i = 0; i < 5; ++i) {
    auto ast = testutil::RandomQual(&rng, 3);
    xpath::NormQuery q = xpath::Normalize(*ast);
    auto simulated = RunParBoX(scenario.set, scenario.st, q);
    auto threaded = RunParBoXThreads(scenario.set, scenario.st, q);
    ASSERT_TRUE(simulated.ok() && threaded.ok());
    EXPECT_EQ(threaded->answer, simulated->answer)
        << "seed " << GetParam() << " query " << xpath::ToString(*ast);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedAgreementTest,
                         ::testing::Range<uint64_t>(0, 15));

TEST(ThreadedTest, RejectsMalformedQuery) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = frag::SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  xpath::NormQuery empty;
  EXPECT_FALSE(RunParBoXThreads(*set, *st, empty).ok());
}

}  // namespace
}  // namespace parbox::core
