// Shared helpers for the parbox test suite: random surface queries and
// random fragmentations for property-based tests.

#ifndef PARBOX_TESTS_TESTUTIL_H_
#define PARBOX_TESTS_TESTUTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "xmark/generator.h"
#include "xpath/ast.h"

namespace parbox::testutil {

/// Labels / text values matching xmark::GenerateRandomSmallDocument's
/// alphabet, so random queries have a fair chance of being satisfied.
inline std::string RandomLabel(Rng* rng) {
  static constexpr const char* kLabels[] = {"a", "b", "c", "d", "e"};
  return kLabels[rng->Uniform(5)];
}
inline std::string RandomText(Rng* rng) {
  return "t" + std::to_string(rng->Uniform(5));
}

inline std::unique_ptr<xpath::QualExpr> RandomQual(Rng* rng, int depth);

inline std::unique_ptr<xpath::PathExpr> RandomPath(Rng* rng, int depth) {
  using xpath::PathExpr;
  int pick = static_cast<int>(rng->Uniform(depth <= 0 ? 3 : 6));
  switch (pick) {
    case 0:
      return PathExpr::Self();
    case 1:
      return PathExpr::Label(RandomLabel(rng));
    case 2:
      return PathExpr::Wildcard();
    case 3:
      return PathExpr::Child(RandomPath(rng, depth - 1),
                             RandomPath(rng, depth - 1));
    case 4:
      return PathExpr::Desc(RandomPath(rng, depth - 1),
                            RandomPath(rng, depth - 1));
    default:
      return PathExpr::Qualified(RandomPath(rng, depth - 1),
                                 RandomQual(rng, depth - 1));
  }
}

inline std::unique_ptr<xpath::QualExpr> RandomQual(Rng* rng, int depth) {
  using xpath::QualExpr;
  int pick = static_cast<int>(rng->Uniform(depth <= 0 ? 3 : 6));
  switch (pick) {
    case 0:
      return QualExpr::Path(RandomPath(rng, depth - 1));
    case 1:
      return QualExpr::TextEquals(RandomPath(rng, depth - 1),
                                  RandomText(rng));
    case 2:
      return QualExpr::LabelEquals(RandomLabel(rng));
    case 3:
      return QualExpr::Not(RandomQual(rng, depth - 1));
    case 4:
      return QualExpr::And(RandomQual(rng, depth - 1),
                           RandomQual(rng, depth - 1));
    default:
      return QualExpr::Or(RandomQual(rng, depth - 1),
                          RandomQual(rng, depth - 1));
  }
}

/// A random fragmented document: small random tree, `splits` random
/// splits, one site per fragment (the most adversarial placement).
struct RandomScenario {
  frag::FragmentSet set;
  frag::SourceTree st;
};

inline RandomScenario MakeRandomScenario(uint64_t seed, int max_elements,
                                         int splits) {
  Rng rng(seed);
  xml::Document doc = xmark::GenerateRandomSmallDocument(max_elements, &rng);
  auto set_result = frag::FragmentSet::FromDocument(std::move(doc));
  frag::FragmentSet set = std::move(set_result).value();
  auto created = frag::RandomSplits(&set, splits, &rng);
  (void)created;
  auto st = frag::SourceTree::Create(set,
                                     frag::AssignOneSitePerFragment(set));
  return RandomScenario{std::move(set), std::move(st).value()};
}

}  // namespace parbox::testutil

#endif  // PARBOX_TESTS_TESTUTIL_H_
