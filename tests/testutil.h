// Shared helpers for the parbox test suite: random surface queries and
// random fragmentations for property-based tests.

#ifndef PARBOX_TESTS_TESTUTIL_H_
#define PARBOX_TESTS_TESTUTIL_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fragment/delta.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "xmark/generator.h"
#include "xpath/ast.h"

namespace parbox::testutil {

/// Labels / text values matching xmark::GenerateRandomSmallDocument's
/// alphabet, so random queries have a fair chance of being satisfied.
inline std::string RandomLabel(Rng* rng) {
  static constexpr const char* kLabels[] = {"a", "b", "c", "d", "e"};
  return kLabels[rng->Uniform(5)];
}
inline std::string RandomText(Rng* rng) {
  return "t" + std::to_string(rng->Uniform(5));
}

inline std::unique_ptr<xpath::QualExpr> RandomQual(Rng* rng, int depth);

inline std::unique_ptr<xpath::PathExpr> RandomPath(Rng* rng, int depth) {
  using xpath::PathExpr;
  int pick = static_cast<int>(rng->Uniform(depth <= 0 ? 3 : 6));
  switch (pick) {
    case 0:
      return PathExpr::Self();
    case 1:
      return PathExpr::Label(RandomLabel(rng));
    case 2:
      return PathExpr::Wildcard();
    case 3:
      return PathExpr::Child(RandomPath(rng, depth - 1),
                             RandomPath(rng, depth - 1));
    case 4:
      return PathExpr::Desc(RandomPath(rng, depth - 1),
                            RandomPath(rng, depth - 1));
    default:
      return PathExpr::Qualified(RandomPath(rng, depth - 1),
                                 RandomQual(rng, depth - 1));
  }
}

inline std::unique_ptr<xpath::QualExpr> RandomQual(Rng* rng, int depth) {
  using xpath::QualExpr;
  int pick = static_cast<int>(rng->Uniform(depth <= 0 ? 3 : 6));
  switch (pick) {
    case 0:
      return QualExpr::Path(RandomPath(rng, depth - 1));
    case 1:
      return QualExpr::TextEquals(RandomPath(rng, depth - 1),
                                  RandomText(rng));
    case 2:
      return QualExpr::LabelEquals(RandomLabel(rng));
    case 3:
      return QualExpr::Not(RandomQual(rng, depth - 1));
    case 4:
      return QualExpr::And(RandomQual(rng, depth - 1),
                           RandomQual(rng, depth - 1));
    default:
      return QualExpr::Or(RandomQual(rng, depth - 1),
                          RandomQual(rng, depth - 1));
  }
}

/// A random fragmented document: small random tree, `splits` random
/// splits, one site per fragment (the most adversarial placement).
struct RandomScenario {
  frag::FragmentSet set;
  frag::SourceTree st;
};

inline RandomScenario MakeRandomScenario(uint64_t seed, int max_elements,
                                         int splits) {
  Rng rng(seed);
  xml::Document doc = xmark::GenerateRandomSmallDocument(max_elements, &rng);
  auto set_result = frag::FragmentSet::FromDocument(std::move(doc));
  frag::FragmentSet set = std::move(set_result).value();
  auto created = frag::RandomSplits(&set, splits, &rng);
  (void)created;
  auto st = frag::SourceTree::Create(set,
                                     frag::AssignOneSitePerFragment(set));
  return RandomScenario{std::move(set), std::move(st).value()};
}

/// True iff the session-default execution backend ($PARBOX_BACKEND)
/// is the deterministic simulation. Tests asserting virtual-clock
/// properties — bit-identical reports, makespans that scale with
/// NetworkParams, "sim.events" — skip under any other backend (the
/// `ctest -L backends` jobs re-run whole suites with
/// PARBOX_BACKEND=threads).
inline bool DefaultBackendIsSim() {
  const char* spec = std::getenv("PARBOX_BACKEND");
  return spec == nullptr || spec[0] == '\0' ||
         std::string(spec) == "sim";
}

/// True iff the session-default execution backend is the
/// multi-process site-daemon backend ("proc[:N[,tcp]]"). Wall-clock
/// speedup assertions skip under it: every cross-site parcel pays a
/// real socket round trip, which dwarfs micro-workload makespans.
inline bool DefaultBackendIsProc() {
  const char* spec = std::getenv("PARBOX_BACKEND");
  return spec != nullptr && std::string(spec).rfind("proc", 0) == 0;
}

/// Trial-count multiplier for the seeded randomized suites (the
/// `ctest -L extended` set): PARBOX_TEST_TRIALS if set to a positive
/// integer, else 1.
inline int TrialMultiplier() {
  if (const char* trials = std::getenv("PARBOX_TEST_TRIALS")) {
    const int v = std::atoi(trials);
    if (v > 0) return v;
  }
  return 1;
}

/// A random, always-valid content delta against a random live
/// fragment of `*set`: insert-subtree, delete-subtree (when a
/// boundary-safe candidate exists), rename-label, or retext, drawn
/// from the same label/text alphabet as the random documents so
/// deltas have a fair chance of flipping query answers.
inline frag::Delta RandomDelta(frag::FragmentSet* set, Rng* rng) {
  const std::vector<frag::FragmentId> live = set->live_ids();
  const frag::FragmentId f =
      live[rng->Uniform(static_cast<uint64_t>(live.size()))];
  xml::Node* root = set->mutable_fragment(f)->root;

  std::vector<xml::Node*> elements;   // rename/retext/insert targets
  std::vector<xml::Node*> deletable;  // non-root, no virtual inside
  std::vector<xml::Node*> stack{root};
  while (!stack.empty()) {
    xml::Node* n = stack.back();
    stack.pop_back();
    if (n->is_element()) elements.push_back(n);
    if (n != root && xml::CountVirtuals(n) == 0) deletable.push_back(n);
    for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
  }

  auto pick = [&](std::vector<xml::Node*>& v) {
    return v[rng->Uniform(static_cast<uint64_t>(v.size()))];
  };
  switch (rng->Uniform(4)) {
    case 0:
      break;  // insert below
    case 1:
      if (!deletable.empty()) {
        return frag::Delta::DeleteSubtree(f, pick(deletable));
      }
      break;  // nothing safely deletable: insert instead
    case 2:
      return frag::Delta::RenameLabel(f, pick(elements),
                                      RandomLabel(rng));
    default:
      return frag::Delta::Retext(f, pick(elements), RandomText(rng));
  }
  return frag::Delta::InsertSubtree(
      f, pick(elements), RandomLabel(rng),
      rng->Uniform(2) == 0 ? RandomText(rng) : std::string());
}

}  // namespace parbox::testutil

#endif  // PARBOX_TESTS_TESTUTIL_H_
