// Seeded chaos-scenario driver for the scale suite.
//
// One ChaosConfig + seed deterministically yields a ChaosSchedule — a
// phased script of query submissions, content deltas, placement moves,
// rebalances, and daemon kills over two catalog documents ("main" at
// the scale under test, "ctl" as the meter-separability control). The
// same schedule executes in two modes:
//
//   * chaos run  — cfg.inject=true on a real backend (typically
//     "proc:N" under PARBOX_NET_FAULTS): moves, rebalances, and
//     SIGKILL/respawn storms interleave with the query stream, and the
//     harness asserts the invariants inline (exact per-document
//     "migrate" metering, recovery re-ships only the dead daemon's
//     fragments, cached answers never stale vs a fresh evaluation);
//   * oracle run — cfg.inject=false on the deterministic sim: the same
//     queries and the same deltas, quiescent.
//
// The differential contract (the paper's Sec. 4/5 claim, weaponized):
// every answer bit in the chaos run's stream equals the oracle's.
// Answers are recorded by submission slot, not completion order, so
// the comparison is schedule-aligned under any interleaving.
//
// Deltas only land at phase boundaries (quiescent points), which is
// what makes the two runs comparable query-by-query; moves, kills and
// network faults are answer-invariant and run mid-stream. Kill phases
// carry no deltas, so the document is frozen from the kill through the
// recovery re-ship and the meter check is byte-exact.
//
// Replaying a failing seed: every assertion is SCOPED_TRACE-tagged
// with the seed and phase; rerun just that seed by passing it to
// ExecuteChaosRun in a one-off test (see DESIGN.md, "Chaos suite").

#ifndef PARBOX_TESTS_CHAOS_HARNESS_H_
#define PARBOX_TESTS_CHAOS_HARNESS_H_

#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "core/algorithms.h"
#include "exec/process_backend.h"
#include "fragment/fragment.h"
#include "fragment/placement.h"
#include "fragment/strategies.h"
#include "service/catalog_service.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xpath/normalize.h"

namespace parbox::chaostest {

// ---- Configuration -------------------------------------------------------

struct ChaosConfig {
  uint64_t seed = 1;
  /// Catalog substrate spec ("sim", "threads:N", "proc:N").
  std::string backend = "sim";
  /// Run the chaos actions (moves/rebalances/kills). The oracle run
  /// executes the same schedule with this off.
  bool inject = false;
  /// Wrap catalog construction in PARBOX_NET_FAULTS/_TIMEOUT_MS (proc
  /// backends only; both are read at construction).
  bool net_faults = false;

  // Corpus shape. The main document is main_sites * ~nodes_per_site
  // DOM nodes in main_sites+1 fragments (one split per <site>).
  int main_sites = 40;
  int control_sites = 8;
  uint64_t nodes_per_site = 60;
  int main_placement_sites = 8;
  int control_placement_sites = 4;

  // Schedule shape.
  int phases = 4;
  int queries_per_phase = 4;  ///< per document
  int deltas_per_phase = 2;   ///< per document; kill phases get none
};

// ---- Schedule ------------------------------------------------------------

/// Queries all runs draw from: XMark vocabulary, a mix of satisfied
/// (marker/creditcard/bidder) and document-dependent predicates so
/// both answers occur and deltas can flip them.
inline const std::vector<std::string>& QueryPool() {
  static const std::vector<std::string> pool = {
      "[//site[marker = \"m3\"]]",
      "[//person[creditcard]]",
      "[//open_auction[bidder]]",
      "[//item[payment = \"Creditcard\"]]",
      "[//closed_auction[price] and //category[name]]",
      "[//person[profile[interest]]]",
      "[not(//site[marker = \"nope\"])]",
      "[//item[quantity = \"7\"]]",
  };
  return pool;
}

struct ChaosMove {
  int doc = 0;             ///< 0 = main, 1 = ctl
  uint64_t frag_pick = 0;  ///< index into live_ids(), mod its size
  int site = 0;            ///< destination (mod the doc's site count)
};

struct ChaosPhase {
  std::vector<std::vector<int>> queries;  ///< [doc] -> pool indices
  /// Submitted (and drained) after the wave and the invariant checks —
  /// post-recovery differential traffic, present in every run.
  std::vector<std::vector<int>> probes;
  std::vector<std::vector<uint64_t>> delta_seeds;  ///< [doc] -> seeds
  std::vector<ChaosMove> moves;
  int rebalance_doc = -1;  ///< -1 = none
  int kill_daemon = -1;    ///< -1 = none; else daemon index to SIGKILL
  /// Per doc: pool index re-asked after the deltas and compared to a
  /// fresh standalone evaluation (-1 = skip). The cache-staleness
  /// oracle.
  std::vector<int> stale_check;
};

struct ChaosSchedule {
  std::vector<ChaosPhase> phases;
};

inline ChaosSchedule MakeSchedule(const ChaosConfig& cfg) {
  constexpr int kDocs = 2;
  Rng rng(cfg.seed);
  const size_t pool = QueryPool().size();
  ChaosSchedule schedule;
  for (int p = 0; p < cfg.phases; ++p) {
    ChaosPhase phase;
    phase.queries.resize(kDocs);
    phase.probes.resize(kDocs);
    phase.delta_seeds.resize(kDocs);
    phase.stale_check.assign(kDocs, -1);
    for (int d = 0; d < kDocs; ++d) {
      for (int q = 0; q < cfg.queries_per_phase; ++q) {
        phase.queries[d].push_back(static_cast<int>(rng.Uniform(pool)));
      }
      phase.probes[d].push_back(static_cast<int>(rng.Uniform(pool)));
    }
    // Phase 0 warms the caches; later phases rotate one chaos action.
    const int action = p == 0 ? -1 : static_cast<int>(rng.Uniform(3));
    if (action == 0) {
      phase.kill_daemon = static_cast<int>(rng.Uniform(2));
    } else if (action == 1) {
      const int n = 1 + static_cast<int>(rng.Uniform(2));
      for (int m = 0; m < n; ++m) {
        ChaosMove mv;
        mv.doc = static_cast<int>(rng.Uniform(kDocs));
        mv.frag_pick = rng.Next64();
        mv.site = static_cast<int>(rng.Uniform(static_cast<uint64_t>(
            mv.doc == 0 ? cfg.main_placement_sites
                        : cfg.control_placement_sites)));
        phase.moves.push_back(mv);
      }
    } else if (action == 2) {
      phase.rebalance_doc = static_cast<int>(rng.Uniform(kDocs));
    }
    // Content churn at the quiescent boundary — except in kill phases,
    // where the document must stay frozen between the kill and the
    // re-ship's byte accounting.
    if (phase.kill_daemon < 0) {
      for (int d = 0; d < kDocs; ++d) {
        for (int i = 0; i < cfg.deltas_per_phase; ++i) {
          phase.delta_seeds[d].push_back(rng.Next64());
        }
        phase.stale_check[d] = static_cast<int>(rng.Uniform(pool));
      }
    }
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

/// Canonical text form — the determinism test's comparison key.
inline std::string Describe(const ChaosSchedule& s) {
  std::string out;
  for (size_t p = 0; p < s.phases.size(); ++p) {
    const ChaosPhase& ph = s.phases[p];
    out += "phase " + std::to_string(p) + ":";
    for (size_t d = 0; d < ph.queries.size(); ++d) {
      out += " q" + std::to_string(d) + "=[";
      for (int q : ph.queries[d]) out += std::to_string(q) + ",";
      out += "] probe=[";
      for (int q : ph.probes[d]) out += std::to_string(q) + ",";
      out += "] deltas=[";
      for (uint64_t v : ph.delta_seeds[d]) out += std::to_string(v) + ",";
      out += "] stale=" + std::to_string(ph.stale_check[d]);
    }
    for (const ChaosMove& m : ph.moves) {
      out += " move(" + std::to_string(m.doc) + "," +
             std::to_string(m.frag_pick) + "," + std::to_string(m.site) +
             ")";
    }
    out += " rebalance=" + std::to_string(ph.rebalance_doc);
    out += " kill=" + std::to_string(ph.kill_daemon);
    out += "\n";
  }
  return out;
}

// ---- Execution -----------------------------------------------------------

struct RunResult {
  /// One entry per scheduled submission, in schedule order (identical
  /// across runs of the same schedule); the differential compares
  /// these. -1 = never completed.
  std::vector<int> answers;
  size_t main_fragments = 0;
  uint64_t main_nodes = 0;
  uint64_t cache_hits = 0;
  uint64_t faults_injected = 0;
  uint64_t retries = 0;
  int kills = 0;
  bool ok = false;  ///< construction + service status stayed clean
};

/// Execute `schedule` under `cfg`. Invariant violations fire gtest
/// failures inline; the caller checks result.ok and runs the cross-run
/// answer differential.
inline RunResult ExecuteChaosRun(const ChaosConfig& cfg,
                                 const ChaosSchedule& schedule) {
  RunResult result;
  const std::vector<std::string> names = {"main", "ctl"};

  if (cfg.net_faults) {
    setenv("PARBOX_NET_FAULTS", "1337", 1);
    setenv("PARBOX_NET_TIMEOUT_MS", "25", 1);
  }
  auto cat = catalog::Catalog::Create({.backend = cfg.backend});
  if (cfg.net_faults) {
    unsetenv("PARBOX_NET_FAULTS");
    unsetenv("PARBOX_NET_TIMEOUT_MS");
  }
  if (!cat.ok()) {
    ADD_FAILURE() << "catalog: " << cat.status().ToString();
    return result;
  }

  // Corpus: scaled XMark stars, one fragment per <site>.
  for (int d = 0; d < 2; ++d) {
    const int sites = d == 0 ? cfg.main_sites : cfg.control_sites;
    const int placement_sites = d == 0 ? cfg.main_placement_sites
                                       : cfg.control_placement_sites;
    xml::Document doc = xmark::GenerateScaledStarDocument(
        sites, cfg.nodes_per_site, cfg.seed + static_cast<uint64_t>(d));
    if (d == 0) result.main_nodes = xml::CountNodes(doc.root());
    auto set = frag::FragmentSet::FromDocument(std::move(doc));
    if (!set.ok()) {
      ADD_FAILURE() << set.status().ToString();
      return result;
    }
    auto split = frag::SplitAtAllLabeled(&*set, "site");
    if (!split.ok()) {
      ADD_FAILURE() << split.status().ToString();
      return result;
    }
    if (d == 0) result.main_fragments = set->live_count();
    auto placement = frag::Placement::Create(
        *set, frag::AssignRoundRobin(*set, placement_sites),
        placement_sites);
    if (!placement.ok()) {
      ADD_FAILURE() << placement.status().ToString();
      return result;
    }
    auto opened =
        (*cat)->Open(names[d], std::move(*set), std::move(*placement));
    if (!opened.ok()) {
      ADD_FAILURE() << opened.status().ToString();
      return result;
    }
  }

  service::ServiceOptions options;
  // Every admission is its own round: flush order (and with it the
  // recovery re-ship point) is schedule-determined, not clock-
  // determined, on every backend.
  options.enable_batching = false;
  auto svc = service::CatalogService::Create(cat->get(), options);
  if (!svc.ok()) {
    ADD_FAILURE() << svc.status().ToString();
    return result;
  }

  auto* proc =
      dynamic_cast<exec::ProcessBackend*>(&(*cat)->host()->backend());

  catalog::Document* docs[2] = {(*cat)->Find("main"), (*cat)->Find("ctl")};
  service::QueryService* services[2] = {
      (*svc)->document_service("main"), (*svc)->document_service("ctl")};

  // Scheduled submissions record into the differential stream by slot
  // (NormQuery is move-only, so queries compile per submission).
  auto submit = [&](int d, const std::string& text) {
    auto q = xpath::CompileQuery(text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    if (!q.ok()) return;
    const size_t slot = result.answers.size();
    result.answers.push_back(-1);
    auto id = (*svc)->Submit(
        names[d], std::move(*q), services[d]->now(),
        [&result, slot](const service::QueryOutcome& o) {
          result.answers[slot] = o.answer ? 1 : 0;
        });
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  };
  // Harness plumbing: force document `d` to flush a round NOW — a
  // guaranteed cache miss (phase-fresh predicate), so plan() runs
  // (and with it SyncRecovery's re-ship). Not part of the
  // differential stream.
  int flush_counter = 0;
  auto flush_doc = [&](int d) {
    auto q = xpath::CompileQuery("[//site[marker = \"flush" +
                                 std::to_string(flush_counter++) +
                                 "\"]]");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    if (!q.ok()) return;
    auto id = (*svc)->Submit(names[d], std::move(*q),
                             services[d]->now(), nullptr);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    (*svc)->Run();
  };
  auto migrate_bytes = [&](int d) {
    return services[d]->backend().traffic().bytes_with_tag("migrate");
  };
  auto read_epochs = [&](int d) {
    std::vector<uint64_t> out;
    const auto st = docs[d]->source_tree();
    for (frag::SiteId s = 0; s < st->num_sites(); ++s) {
      out.push_back(services[d]->backend().RecoveryEpoch(s));
    }
    return out;
  };

  // Baseline: one flush per document seeds each session's recovery
  // bookkeeping and ships the initial plans before any chaos.
  flush_doc(0);
  flush_doc(1);
  std::vector<uint64_t> epoch_seen[2] = {read_epochs(0), read_epochs(1)};

  // Cumulative exact expectation for each document's "migrate" meter:
  // every Move/Rebalance adds the fragment's serialized bytes at move
  // time; every daemon respawn adds exactly the dead sites' live
  // fragments. Nothing else may ever land on that tag.
  uint64_t expected_migrate[2] = {0, 0};

  for (size_t p = 0; p < schedule.phases.size(); ++p) {
    const ChaosPhase& phase = schedule.phases[p];
    SCOPED_TRACE("seed " + std::to_string(cfg.seed) + " phase " +
                 std::to_string(p));

    // 1. Placement chaos (chaos run only; answers are invariant).
    if (cfg.inject) {
      for (const ChaosMove& mv : phase.moves) {
        const std::vector<frag::FragmentId> live =
            docs[mv.doc]->set().live_ids();
        const frag::FragmentId f = live[mv.frag_pick % live.size()];
        if (f == docs[mv.doc]->set().root_fragment() ||
            docs[mv.doc]->placement().site_of(f) == mv.site) {
          continue;  // pinned or a no-op: deterministic skip
        }
        const uint64_t bytes =
            docs[mv.doc]->set().FragmentSerializedBytes(f);
        auto from = (*svc)->Move(names[mv.doc], f, mv.site);
        EXPECT_TRUE(from.ok()) << from.status().ToString();
        if (from.ok()) expected_migrate[mv.doc] += bytes;
      }
      if (phase.rebalance_doc >= 0) {
        const int d = phase.rebalance_doc;
        std::map<frag::FragmentId, frag::SiteId> before;
        std::map<frag::FragmentId, uint64_t> bytes_of;
        for (frag::FragmentId f : docs[d]->set().live_ids()) {
          before[f] = docs[d]->placement().site_of(f);
          bytes_of[f] = docs[d]->set().FragmentSerializedBytes(f);
        }
        auto moved = (*svc)->Rebalance(names[d]);
        EXPECT_TRUE(moved.ok()) << moved.status().ToString();
        for (const auto& [f, site] : before) {
          if (docs[d]->placement().site_of(f) != site) {
            expected_migrate[d] += bytes_of[f];
          }
        }
      }
    }

    // 2. Daemon kill (chaos run on a proc backend only).
    const bool killing =
        cfg.inject && phase.kill_daemon >= 0 && proc != nullptr;
    if (killing) {
      const int daemon = phase.kill_daemon % proc->num_daemons();
      const pid_t pid = proc->daemon_pid(daemon);
      EXPECT_GT(pid, 0);
      if (pid > 0) {
        kill(pid, SIGKILL);
        ++result.kills;
      }
    }

    // 3. The phase's query wave. The last wave query per document is a
    // phase-fresh "storm" predicate — a guaranteed cache miss, so a
    // round (and, with a daemon dead, its timeout/respawn/retransmit
    // path) runs in every phase of every run. Answers must not notice.
    {
      const std::string storm =
          "[//site[marker = \"storm" + std::to_string(p) + "\"]]";
      for (int d = 0; d < 2; ++d) {
        for (int q : phase.queries[d]) {
          submit(d, QueryPool()[static_cast<size_t>(q)]);
        }
        submit(d, storm);
      }
    }
    (*svc)->Run();
    EXPECT_TRUE((*svc)->status().ok()) << (*svc)->status().ToString();

    // 4. Recovery accounting. A respawned daemon announced a fresh
    // boot nonce during the wave; every bumped site's live fragments
    // must re-ship — exactly once, at the owning document's next
    // plan(), which flush_doc forces. Loop until epochs are stable so
    // a respawn completing mid-check is still attributed exactly.
    bool bumped[2] = {false, false};
    if (cfg.inject && proc != nullptr) {
      for (int iter = 0;; ++iter) {
        EXPECT_LT(iter, 8) << "recovery epochs failed to stabilize";
        if (iter >= 8) break;
        bool changed = false;
        for (int d = 0; d < 2; ++d) {
          const auto st = docs[d]->source_tree();
          const std::vector<uint64_t> now = read_epochs(d);
          for (frag::SiteId s = 0; s < st->num_sites(); ++s) {
            if (now[static_cast<size_t>(s)] ==
                epoch_seen[d][static_cast<size_t>(s)]) {
              continue;
            }
            epoch_seen[d][static_cast<size_t>(s)] =
                now[static_cast<size_t>(s)];
            changed = true;
            bumped[d] = true;
            for (frag::FragmentId f : st->fragments_at(s)) {
              if (docs[d]->set().is_live(f)) {
                expected_migrate[d] +=
                    docs[d]->set().FragmentSerializedBytes(f);
              }
            }
          }
        }
        if (!changed) break;
        flush_doc(0);
        flush_doc(1);
      }
    }
    if (killing) {
      // The daemon holds sites of BOTH documents (namespaces
      // interleave over daemons), so both must observe the respawn.
      EXPECT_TRUE(bumped[0] && bumped[1])
          << "kill produced no recovery epoch bump (main=" << bumped[0]
          << " ctl=" << bumped[1] << ")";
    }

    // 5. The meters-separable invariant, exact per document: each
    // document's "migrate" tag carries precisely its own moves plus
    // its own recovery re-ships — byte-exact, no cross-document
    // bleed, nothing shipped twice.
    if (cfg.inject) {
      for (int d = 0; d < 2; ++d) {
        EXPECT_EQ(migrate_bytes(d), expected_migrate[d])
            << names[d] << ": migrate meter diverged";
      }
    }

    // 6. Post-recovery differential traffic.
    for (int d = 0; d < 2; ++d) {
      for (int q : phase.probes[d]) {
        submit(d, QueryPool()[static_cast<size_t>(q)]);
      }
    }
    (*svc)->Run();
    EXPECT_TRUE((*svc)->status().ok()) << (*svc)->status().ToString();

    // 7. Content churn at the quiescent boundary (both runs; the
    // deltas are regenerated per run from the seed against this run's
    // structurally identical set, so both runs mutate identically).
    for (int d = 0; d < 2; ++d) {
      for (uint64_t seed : phase.delta_seeds[d]) {
        Rng delta_rng(seed);
        frag::Delta delta =
            testutil::RandomDelta(docs[d]->mutable_set(), &delta_rng);
        auto applied = (*svc)->ApplyDelta(names[d], delta);
        EXPECT_TRUE(applied.ok()) << applied.status().ToString();
      }
    }
    (*svc)->Run();

    // 8. Cache-never-stale: after the churn, re-ask a cached query and
    // compare against a fresh standalone evaluation of the document as
    // it stands now.
    for (int d = 0; d < 2; ++d) {
      if (phase.stale_check[d] < 0) continue;
      const std::string& text =
          QueryPool()[static_cast<size_t>(phase.stale_check[d])];
      auto q = xpath::CompileQuery(text);
      EXPECT_TRUE(q.ok()) << q.status().ToString();
      if (!q.ok()) continue;
      auto fresh =
          core::RunParBoX(docs[d]->set(), *docs[d]->source_tree(), *q);
      EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
      if (!fresh.ok()) continue;
      const size_t slot = result.answers.size();
      submit(d, text);
      (*svc)->Run();
      EXPECT_EQ(result.answers[slot], fresh->answer ? 1 : 0)
          << names[d] << ": served answer diverged from a fresh "
          << "evaluation (stale cache?)";
    }
  }

  EXPECT_TRUE((*svc)->status().ok()) << (*svc)->status().ToString();
  for (int a : result.answers) EXPECT_NE(a, -1) << "unanswered slot";
  for (int d = 0; d < 2; ++d) {
    result.cache_hits += services[d]->BuildReport().cache_hits;
  }
  if (proc != nullptr) {
    result.faults_injected = proc->faults_injected();
    result.retries = proc->retries();
  }
  result.ok = (*svc)->status().ok();
  return result;
}

}  // namespace parbox::chaostest

#endif  // PARBOX_TESTS_CHAOS_HARNESS_H_
