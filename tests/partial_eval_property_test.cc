// The correctness theorem behind ParBoX, checked as a property: for
// every fragment F_j, the formula triplet produced by partial
// evaluation, *evaluated under the resolved values of F_j's
// sub-fragments*, must equal the truth-value triplet produced by
// direct Boolean evaluation of F_j with those sub-fragment values
// plugged in. (I.e., partial evaluation commutes with resolution.)

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "boolexpr/expr.h"
#include "boolexpr/solver.h"
#include "core/algorithms.h"
#include "core/partial_eval.h"
#include "core/session.h"
#include "fragment/delta.h"
#include "testutil.h"
#include "xpath/fingerprint.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::FragmentId;

class PartialEvalPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PartialEvalPropertyTest, PartialEvalCommutesWithResolution) {
  Rng rng(GetParam() * 977 + 3);
  auto scenario = testutil::MakeRandomScenario(GetParam() + 2000, 90, 5);
  const auto& set = scenario.set;
  auto children_table = set.ChildrenTable();

  for (int trial = 0; trial < 6; ++trial) {
    auto ast = testutil::RandomQual(&rng, 3);
    xpath::NormQuery q = xpath::Normalize(*ast);
    const size_t n = q.size();

    // Formula route: partial-evaluate everything, solve the system.
    bexpr::ExprFactory factory;
    std::vector<bexpr::FragmentEquations> equations(set.table_size());
    for (FragmentId f : set.live_ids()) {
      equations[f] = PartialEvalFragment(&factory, q, set, f, nullptr);
    }
    auto assignment = bexpr::SolveBottomUp(
        &factory, equations, children_table, set.root_fragment());
    ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();

    // Boolean route: bottom-up with resolved children, per fragment.
    std::vector<ResolvedVectors> resolved(set.table_size());
    std::vector<std::pair<FragmentId, bool>> stack{
        {set.root_fragment(), false}};
    while (!stack.empty()) {
      auto [f, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        resolved[f] = BoolEvalFragment(
            q, set, f,
            [&](FragmentId child) -> const ResolvedVectors& {
              return resolved[child];
            },
            nullptr);
        continue;
      }
      stack.emplace_back(f, true);
      for (int32_t c : children_table[f]) stack.emplace_back(c, false);
    }

    // The two routes must agree entry-by-entry on V and DV of every
    // fragment root.
    for (FragmentId f : set.live_ids()) {
      for (size_t i = 0; i < n; ++i) {
        auto v = assignment->Get(
            {f, bexpr::VectorKind::kV, static_cast<int32_t>(i)});
        auto dv = assignment->Get(
            {f, bexpr::VectorKind::kDV, static_cast<int32_t>(i)});
        ASSERT_TRUE(v.has_value() && dv.has_value());
        EXPECT_EQ(*v, static_cast<bool>(resolved[f].v[i]))
            << "V_F" << f << "[" << i << "] seed " << GetParam()
            << " query " << xpath::ToString(*ast);
        EXPECT_EQ(*dv, static_cast<bool>(resolved[f].dv[i]))
            << "DV_F" << f << "[" << i << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialEvalPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

// The invariants the incremental update pipeline rests on, as a
// property over random scenarios and deltas:
//   * a query's canonical fingerprint is a pure function of its normal
//     form — untouched by Cluster::Reset, executions, or document
//     deltas (so per-fingerprint caches stay keyed correctly), and
//   * within one hash-consing factory, re-running partial evaluation
//     on an *unchanged* fragment yields bit-identical ExprIds — which
//     is exactly why ExecuteIncremental may reuse a clean fragment's
//     retained triplet without re-checking it.
// Scaled by PARBOX_TEST_TRIALS like the other randomized suites.
TEST(IncrementalStabilityTest,
     FingerprintsAndFormulaIdsStableAcrossResetAndDeltas) {
  const uint64_t seeds =
      6 * static_cast<uint64_t>(testutil::TrialMultiplier());

  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(seed + 3000, 80, 5);
    Rng rng(seed * 131 + 7);
    xpath::NormQuery q = xpath::Normalize(*testutil::RandomQual(&rng, 3));

    auto session = core::Session::Create(&scenario.set, &scenario.st);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto prepared = session->Prepare(&q);
    ASSERT_TRUE(prepared.ok());
    const xpath::QueryFingerprint fp_before = prepared->fingerprint();

    // Baseline triplets of every fragment, in the session's factory.
    std::map<FragmentId, bexpr::FragmentEquations> baseline;
    for (FragmentId f : scenario.set.live_ids()) {
      baseline[f] = PartialEvalFragment(&session->factory(), q,
                                        scenario.set, f, nullptr);
    }

    // Perturb the session every way short of changing clean content:
    // execute, rewind the cluster, apply a delta to one fragment.
    ASSERT_TRUE(session->ExecuteIncremental(*prepared).ok());
    session->backend().Reset();
    auto applied =
        session->Apply(testutil::RandomDelta(&scenario.set, &rng));
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();

    // Fingerprints: stable from the same normal form, prepared again.
    auto prepared_again = session->Prepare(&q);
    ASSERT_TRUE(prepared_again.ok());
    EXPECT_EQ(prepared_again->fingerprint(), fp_before);
    EXPECT_EQ(xpath::FingerprintQuery(q), fp_before);

    // Formula identities: every *clean* fragment re-evaluates to the
    // same ExprIds; the dirty one is exempt (its content moved).
    for (FragmentId f : scenario.set.live_ids()) {
      if (f == applied->fragment) continue;
      bexpr::FragmentEquations again = PartialEvalFragment(
          &session->factory(), q, scenario.set, f, nullptr);
      EXPECT_EQ(again.v, baseline[f].v) << "V ids drifted, F" << f;
      EXPECT_EQ(again.cv, baseline[f].cv) << "CV ids drifted, F" << f;
      EXPECT_EQ(again.dv, baseline[f].dv) << "DV ids drifted, F" << f;
    }
  }
}

// Boundary: queries wider than the variable encoding are rejected
// up front rather than producing corrupt VarIds.
TEST(PartialEvalBoundaryTest, OverlyWideQueryRejected) {
  // A descendant chain of k steps has 3k+1 QList entries; k = 1366
  // crosses the 4096 limit.
  std::string text = "[//s0";
  for (int i = 1; i < 1366; ++i) text += "/s" + std::to_string(i);
  text += "]";
  auto q = xpath::CompileQuery(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_GT(q->size(), 4096u);

  auto scenario = testutil::MakeRandomScenario(1, 20, 1);
  auto report = RunParBoX(scenario.set, scenario.st, *q);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// Boundary: the widest allowed query still works end to end.
TEST(PartialEvalBoundaryTest, WidthJustUnderTheLimitWorks) {
  std::string text = "[//s0";
  for (int i = 1; i < 1300; ++i) text += "/s" + std::to_string(i);
  text += "]";
  auto q = xpath::CompileQuery(text);
  ASSERT_TRUE(q.ok());
  ASSERT_LE(q->size(), 4096u);
  auto scenario = testutil::MakeRandomScenario(2, 20, 1);
  auto report = RunParBoX(scenario.set, scenario.st, *q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->answer);  // labels s0..s1299 don't exist
}

}  // namespace
}  // namespace parbox::core
