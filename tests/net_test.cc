// The net/ subsystem and the process backend built on it: frame codec
// round trips, incremental/partial frame reading, the daemon-stats
// blob, deterministic fault injection, and ProcessBackend end-to-end —
// held to the sim oracle bit-for-bit, with faults on and off, over
// Unix-domain and TCP transports, and across a daemon kill/restart
// (where only the dead daemon's sites re-ship their fragments).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/session.h"
#include "exec/backend.h"
#include "exec/process_backend.h"
#include "net/conn.h"
#include "net/faults.h"
#include "net/wire.h"
#include "testutil.h"
#include "xpath/normalize.h"

namespace parbox {
namespace {

using core::RunReport;
using core::Session;
using core::SessionOptions;
using frag::FragmentSet;

// ---- Frame codec -------------------------------------------------------

net::Frame SampleFrame() {
  net::Frame f;
  f.type = static_cast<uint8_t>(net::FrameType::kParcelReq);
  f.seq = 0x0123456789abcdefull;
  f.src = 7;
  f.dest = 3;
  f.shard_base = 0x80000001u;
  f.wire_bytes = 4242;
  f.trace_id = 0xfeedfacecafebeefull;
  f.trace_span = 0x1122334455667788ull;
  f.flags = net::kFrameFlagHasPayload | net::kFrameFlagCoded;
  f.tag = "triplet";
  f.payload = std::string("\x00\x01payload\xff bytes", 16);
  return f;
}

void ExpectFramesEqual(const net::Frame& a, const net::Frame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dest, b.dest);
  EXPECT_EQ(a.shard_base, b.shard_base);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.trace_span, b.trace_span);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(WireTest, FrameRoundTrips) {
  const net::Frame f = SampleFrame();
  const std::string bytes = net::EncodeFrame(f);
  net::FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  net::Frame out;
  ASSERT_TRUE(reader.Next(&out));
  ExpectFramesEqual(f, out);
  EXPECT_FALSE(reader.Next(&out));
  EXPECT_FALSE(reader.error());
}

TEST(WireTest, FrameReaderHandlesPartialAndBackToBackFrames) {
  net::Frame a = SampleFrame();
  net::Frame b;
  b.type = static_cast<uint8_t>(net::FrameType::kPong);
  b.seq = 9;
  std::string stream = net::EncodeFrame(a) + net::EncodeFrame(b);

  // Byte-at-a-time feeding must produce exactly the two frames.
  net::FrameReader reader;
  std::vector<net::Frame> got;
  for (char c : stream) {
    reader.Feed(&c, 1);
    net::Frame out;
    while (reader.Next(&out)) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 2u);
  ExpectFramesEqual(a, got[0]);
  ExpectFramesEqual(b, got[1]);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, FrameReaderRejectsOversizedAndTruncatedFrames) {
  // A length prefix beyond kMaxFrameBody poisons the reader.
  std::string bogus;
  net::PutU32(&bogus, net::kMaxFrameBody + 1);
  bogus += "xxxx";
  net::FrameReader reader;
  reader.Feed(bogus.data(), bogus.size());
  net::Frame out;
  EXPECT_FALSE(reader.Next(&out));
  EXPECT_TRUE(reader.error());

  // A frame whose body is shorter than the fixed header also poisons.
  std::string tiny;
  net::PutU32(&tiny, 4);
  tiny += "abcd";
  net::FrameReader reader2;
  reader2.Feed(tiny.data(), tiny.size());
  EXPECT_FALSE(reader2.Next(&out));
  EXPECT_TRUE(reader2.error());
}

// A crafted oversize u32 length prefix must not poison silently: the
// reader latches a diagnostic naming the cap, releases every buffered
// byte (it must not hold memory toward an impossible frame), and
// stays latched until the connection owner re-dials with a fresh
// reader — which is how ProcessBackend surfaces it (frame_errors
// counter + link reset) instead of hanging or crashing.
TEST(WireTest, OversizedHeaderSurfacesReasonWithoutBuffering) {
  std::string bogus;
  net::PutU32(&bogus, net::kMaxFrameBody + 1);
  bogus.append(1024, 'x');
  net::FrameReader reader;
  reader.Feed(bogus.data(), bogus.size());
  net::Frame out;
  EXPECT_FALSE(reader.Next(&out));
  ASSERT_TRUE(reader.error());
  EXPECT_NE(reader.error_reason().find("cap"), std::string::npos)
      << reader.error_reason();
  EXPECT_EQ(reader.buffered(), 0u);

  // A valid frame fed afterwards does not revive the stream: recovery
  // is per-connection, not per-frame.
  const std::string good = net::EncodeFrame(SampleFrame());
  reader.Feed(good.data(), good.size());
  EXPECT_FALSE(reader.Next(&out));
  EXPECT_TRUE(reader.error());
}

// The encode side refuses to create such a frame in the first place:
// a body past kMaxFrameBody or a tag past the u16 count would write a
// length prefix the peer must reject, so Conn::SendFrame drops it
// (frames_rejected) rather than desynchronizing the stream.
TEST(WireTest, OversizedFrameIsNeverEncoded) {
  net::Frame big = SampleFrame();
  big.payload.assign(net::kMaxFrameBody, 'p');
  EXPECT_FALSE(net::FrameFitsWire(big));
  EXPECT_TRUE(net::EncodeFrame(big).empty());

  net::Frame long_tag = SampleFrame();
  long_tag.tag.assign(0x10000, 't');
  EXPECT_FALSE(net::FrameFitsWire(long_tag));
  EXPECT_TRUE(net::EncodeFrame(long_tag).empty());

  EXPECT_TRUE(net::FrameFitsWire(SampleFrame()));
}

TEST(WireTest, DaemonStatsRoundTripsAndMerges) {
  net::DaemonStats s;
  s.frames_received = 100;
  s.parcels = 42;
  s.dedup_hits = 3;
  s.decoded_payloads = 17;
  s.decode_errors = 1;
  s.tag_counts.push_back({"query", {1234, 8}});
  s.tag_counts.push_back({"triplet", {999, 4}});
  s.bytes_into.push_back({2, 777});
  s.bytes_into.push_back({5, 111});

  net::DaemonStats out;
  ASSERT_TRUE(out.Decode(s.Encode()));
  EXPECT_EQ(out.parcels, 42u);
  EXPECT_EQ(out.dedup_hits, 3u);
  EXPECT_EQ(out.tag_counts, s.tag_counts);
  EXPECT_EQ(out.bytes_into, s.bytes_into);

  net::DaemonStats other;
  other.parcels = 8;
  other.tag_counts.push_back({"query", {6, 2}});
  other.bytes_into.push_back({2, 3});
  out.MergeFrom(other);
  EXPECT_EQ(out.parcels, 50u);
  std::map<std::string, uint64_t> tag_bytes;
  for (const auto& [tag, counts] : out.tag_counts) {
    tag_bytes[tag] += counts.first;
  }
  EXPECT_EQ(tag_bytes["query"], 1240u);

  EXPECT_FALSE(out.Decode("not a stats blob"));
}

// ---- Fault injection ---------------------------------------------------

TEST(FaultsTest, DeterministicSeededAndBoundedRetries) {
  const net::FaultInjector a(/*seed=*/7, /*endpoint=*/1);
  const net::FaultInjector b(/*seed=*/7, /*endpoint=*/1);
  const net::FaultInjector off(/*seed=*/0, /*endpoint=*/1);
  EXPECT_FALSE(off.enabled());
  ASSERT_TRUE(a.enabled());

  int faulted = 0;
  for (uint64_t seq = 1; seq <= 2000; ++seq) {
    const net::FaultDecision da = a.Decide(seq, 1);
    const net::FaultDecision db = b.Decide(seq, 1);
    EXPECT_EQ(static_cast<int>(da.action), static_cast<int>(db.action));
    EXPECT_EQ(da.delay_seconds, db.delay_seconds);
    if (da.action != net::FaultAction::kDeliver) ++faulted;
    // Retransmissions past the always-deliver attempt are never
    // dropped or delayed — the bounded retry budget always converges.
    const net::FaultDecision late = a.Decide(seq, net::kAlwaysDeliverAttempt);
    EXPECT_NE(static_cast<int>(late.action),
              static_cast<int>(net::FaultAction::kDrop));
    EXPECT_NE(static_cast<int>(late.action),
              static_cast<int>(net::FaultAction::kDelay));
    // Seed 0 always delivers.
    EXPECT_EQ(static_cast<int>(off.Decide(seq, 1).action),
              static_cast<int>(net::FaultAction::kDeliver));
  }
  // Roughly a quarter of first sends should be faulted (12% drop, 10%
  // delay, 6% duplicate); allow a wide band.
  EXPECT_GT(faulted, 2000 / 10);
  EXPECT_LT(faulted, 2000 / 2);
}

// ---- ProcessBackend end-to-end ----------------------------------------

/// The cross-backend comparable slice (mirrors
/// backend_differential_test.cc).
void ExpectReportsAgree(const RunReport& sim, const RunReport& proc,
                        const std::string& context) {
  EXPECT_EQ(sim.answer, proc.answer) << context;
  EXPECT_EQ(sim.total_ops, proc.total_ops) << context;
  EXPECT_EQ(sim.network_bytes, proc.network_bytes) << context;
  EXPECT_EQ(sim.network_messages, proc.network_messages) << context;
  EXPECT_EQ(sim.visits_per_site, proc.visits_per_site) << context;
  EXPECT_EQ(sim.eq_system_entries, proc.eq_system_entries) << context;
}

exec::ProcessBackend* ProcOf(Session* session) {
  return dynamic_cast<exec::ProcessBackend*>(&session->backend());
}

TEST(ProcessBackendTest, MatchesSimAcrossTransports) {
  for (const std::string& spec : {std::string("proc:2"),
                                  std::string("proc:3,tcp")}) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(321, 100, 6);
    auto sim = Session::Create(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        SessionOptions{.backend = "sim"});
    auto proc = Session::Create(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        SessionOptions{.backend = spec});
    ASSERT_TRUE(sim.ok());
    ASSERT_TRUE(proc.ok()) << spec << ": " << proc.status().ToString();
    EXPECT_EQ(proc->backend().name(), "proc");

    Rng rng(99);
    for (int i = 0; i < 2; ++i) {
      xpath::NormQuery q =
          xpath::Normalize(*testutil::RandomQual(&rng, 3));
      auto sim_q = sim->Prepare(&q);
      auto proc_q = proc->Prepare(&q);
      ASSERT_TRUE(sim_q.ok() && proc_q.ok());
      auto sim_report = sim->Execute(*sim_q);
      auto proc_report = proc->Execute(*proc_q);
      ASSERT_TRUE(sim_report.ok() && proc_report.ok());
      ExpectReportsAgree(*sim_report, *proc_report, spec);
    }
  }
}

// The daemons' own after-dedup meters must agree with the
// coordinator's logical traffic: every cross-site parcel routes
// through exactly one daemon, each side counting its wire bytes once.
TEST(ProcessBackendTest, DaemonMetersMatchCoordinatorTraffic) {
  testutil::RandomScenario scenario = testutil::MakeRandomScenario(77, 90, 5);
  auto proc = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "proc:2"});
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();

  Rng rng(5);
  auto q = proc->Prepare(xpath::Normalize(*testutil::RandomQual(&rng, 3)));
  ASSERT_TRUE(q.ok());
  auto report = proc->Execute(*q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  exec::ProcessBackend* backend = ProcOf(&*proc);
  ASSERT_NE(backend, nullptr);
  const sim::TrafficStats& traffic = proc->backend().traffic();
  ASSERT_GT(traffic.total_messages(), 0u);

  const net::DaemonStats merged = backend->MergedDaemonStats();
  std::map<std::string, std::pair<uint64_t, uint64_t>> daemon_tags;
  for (const auto& [tag, counts] : merged.tag_counts) {
    daemon_tags[tag].first += counts.first;
    daemon_tags[tag].second += counts.second;
  }
  uint64_t daemon_msgs = 0;
  for (const auto& [tag, bytes] : traffic.bytes_by_tag()) {
    EXPECT_EQ(daemon_tags[tag].first, bytes) << tag;
    EXPECT_EQ(daemon_tags[tag].second, traffic.messages_with_tag(tag))
        << tag;
    daemon_msgs += daemon_tags[tag].second;
  }
  EXPECT_EQ(daemon_msgs, traffic.total_messages());
  EXPECT_EQ(merged.parcels, traffic.total_messages());
}

// Seeded fault injection: drops, delays, and duplicates on the wire
// must not change any observable quantity — the at-least-once protocol
// (same-seq retransmits, daemon seq dedup, duplicate-ack drops)
// absorbs them all. Short timeouts keep retransmits fast.
TEST(ProcessBackendTest, SeededFaultsPreserveBitIdentity) {
  setenv("PARBOX_NET_FAULTS", "1337", 1);
  setenv("PARBOX_NET_TIMEOUT_MS", "25", 1);
  testutil::RandomScenario scenario =
      testutil::MakeRandomScenario(555, 110, 6);
  auto sim = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "sim"});
  auto proc = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "proc:2"});
  unsetenv("PARBOX_NET_FAULTS");
  unsetenv("PARBOX_NET_TIMEOUT_MS");
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();

  Rng rng(31);
  uint64_t faults = 0;
  for (int i = 0; i < 4; ++i) {
    xpath::NormQuery q = xpath::Normalize(*testutil::RandomQual(&rng, 3));
    auto sim_q = sim->Prepare(&q);
    auto proc_q = proc->Prepare(&q);
    ASSERT_TRUE(sim_q.ok() && proc_q.ok());
    auto sim_report = sim->Execute(*sim_q);
    auto proc_report = proc->Execute(*proc_q);
    ASSERT_TRUE(sim_report.ok() && proc_report.ok());
    ExpectReportsAgree(*sim_report, *proc_report,
                       "faulted query " + std::to_string(i));
    faults = ProcOf(&*proc)->faults_injected();
  }
  // The seed must actually have exercised the chaos path, and the
  // retry machinery must have recovered the drops.
  EXPECT_GT(faults, 0u);
  EXPECT_GT(ProcOf(&*proc)->retries(), 0u);
}

// Kill a site daemon mid-session: the next execution must transparently
// respawn it and produce the same answers, the daemon's sites must
// announce a new RecoveryEpoch, and SyncRecovery must re-ship exactly
// the dead daemon's sites' fragments over the "migrate" path.
TEST(ProcessBackendTest, DaemonKillRecoversAndReshipsOnlyDeadSites) {
  testutil::RandomScenario scenario = testutil::MakeRandomScenario(42, 80, 5);
  auto sim = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "sim"});
  auto proc = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "proc:2"});
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  exec::ProcessBackend* backend = ProcOf(&*proc);
  ASSERT_NE(backend, nullptr);

  Rng rng(17);
  xpath::NormQuery q = xpath::Normalize(*testutil::RandomQual(&rng, 3));
  auto sim_q = sim->Prepare(&q);
  auto proc_q = proc->Prepare(&q);
  ASSERT_TRUE(sim_q.ok() && proc_q.ok());
  auto sim_report = sim->Execute(*sim_q);
  ASSERT_TRUE(sim_report.ok());
  auto before = proc->Execute(*proc_q);
  ASSERT_TRUE(before.ok());
  ExpectReportsAgree(*sim_report, *before, "before kill");

  // SIGKILL daemon 0 — its pinned factories and shipped fragments die
  // with it.
  const pid_t victim = backend->daemon_pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(victim, SIGKILL), 0);

  // The next execution reconnects (fresh spawn, new boot nonce) and
  // still agrees with the sim bit-for-bit.
  auto after = proc->Execute(*proc_q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectReportsAgree(*sim_report, *after, "after kill");
  EXPECT_GE(backend->reconnects(), 1u);
  EXPECT_NE(backend->daemon_pid(0), victim);

  // Epochs: only daemon 0's sites advanced.
  const exec::SiteId coordinator = proc->backend().coordinator();
  for (exec::SiteId s = 0; s < proc->backend().num_sites(); ++s) {
    if (s == coordinator) continue;
    EXPECT_EQ(backend->RecoveryEpoch(s), s % 2 == 0 ? 1u : 0u)
        << "site " << s;
  }

  // The kill was detected during Execute's Reset — after its plan()
  // snapshot — so the epoch advance is still unconsumed. SyncRecovery
  // now re-ships exactly the dead daemon's sites' live fragments over
  // the metered "migrate" path (and nothing for the surviving
  // daemon's sites).
  proc->SyncRecovery();
  const sim::TrafficStats& traffic = proc->backend().traffic();
  uint64_t expected = 0;
  for (exec::SiteId s = 0; s < proc->backend().num_sites(); ++s) {
    if (s == coordinator || s % 2 != 0) continue;
    for (frag::FragmentId f : scenario.st.fragments_at(s)) {
      if (scenario.set.is_live(f)) {
        expected += scenario.set.FragmentSerializedBytes(f);
      }
    }
  }
  ASSERT_GT(expected, 0u) << "scenario places nothing on daemon 0";
  EXPECT_EQ(traffic.bytes_with_tag("migrate"), expected);
  // A second sync finds nothing new.
  const uint64_t once = traffic.bytes_with_tag("migrate");
  proc->SyncRecovery();
  EXPECT_EQ(proc->backend().traffic().bytes_with_tag("migrate"), once)
      << "double re-ship";

  // And the answers keep matching after recovery.
  auto again = proc->Execute(*proc_q);
  ASSERT_TRUE(again.ok());
  ExpectReportsAgree(*sim_report, *again, "after recovery");
}

}  // namespace
}  // namespace parbox
