// A systematic truth table for XBL semantics: every grammar production
// exercised against small hand-checkable documents, evaluated through
// the full production pipeline (parse -> normalize -> vector kernel)
// AND through the reference interpreter, both checked against the
// expected value.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"
#include "xpath/parser.h"
#include "xpath/reference_eval.h"

namespace parbox::xpath {
namespace {

struct Case {
  const char* name;
  const char* doc;
  const char* query;
  bool expected;
};

class SemanticsTableTest : public ::testing::TestWithParam<Case> {};

TEST_P(SemanticsTableTest, ProductionAndReferenceMatchExpectation) {
  const Case& c = GetParam();
  auto doc = xml::ParseXml(c.doc);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto ast = ParseQuery(c.query);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  NormQuery q = Normalize(**ast);
  ASSERT_TRUE(q.IsWellFormed());
  auto fast = EvalBoolean(*doc->root(), q);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(*fast, c.expected) << c.query << " over " << c.doc;
  EXPECT_EQ(ReferenceEval(**ast, *doc->root()), c.expected)
      << "(reference) " << c.query;
}

constexpr Case kCases[] = {
    // ---- ǫ / self ----
    {"SelfTrue", "<r/>", "[.]", true},
    {"SelfChainTrue", "<r/>", "[././.]", true},
    // ---- label() ----
    {"LabelMatch", "<r/>", "[label() = r]", true},
    {"LabelMismatch", "<r/>", "[label() = q]", false},
    {"LabelCaseSensitive", "<R/>", "[label() = r]", false},
    // ---- child label step ----
    {"ChildPresent", "<r><a/></r>", "[a]", true},
    {"ChildAbsent", "<r><b/></r>", "[a]", false},
    {"GrandchildNotChild", "<r><b><a/></b></r>", "[a]", false},
    {"SecondChildCounts", "<r><b/><a/></r>", "[a]", true},
    // ---- wildcard ----
    {"StarAnyElement", "<r><q/></r>", "[*]", true},
    {"StarIgnoresText", "<r>txt</r>", "[*]", false},
    {"StarChain", "<r><x><y/></x></r>", "[*/*]", true},
    {"StarChainTooDeep", "<r><x/></r>", "[*/*]", false},
    // ---- // descendant-or-self ----
    {"DescDeep", "<r><a><b><c/></b></a></r>", "[//c]", true},
    {"DescSelfCounts", "<r/>", "[.//.]", true},
    {"DescAfterStep", "<r><a><x><b/></x></a></r>", "[a//b]", true},
    {"DescOrSelfAtStep", "<r><a/></r>", "[.//a]", true},
    {"DescMissing", "<r><a/></r>", "[//zz]", false},
    {"DoubleDesc", "<r><x><a><y><b/></y></a></x></r>", "[//a//b]", true},
    {"DescSelfBetween", "<r><a><b/></a></r>", "[a//b]", true},
    // ---- / chains ----
    {"ChainExact", "<r><a><b><c/></b></a></r>", "[a/b/c]", true},
    {"ChainBroken", "<r><a/><b><c/></b></r>", "[a/b/c]", false},
    {"ChainMultiplePaths",
     "<r><a><x/></a><a><b/></a></r>", "[a/b]", true},
    // ---- leading / (document-node semantics) ----
    {"AbsoluteRootLabel", "<r><a/></r>", "[/r/a]", true},
    {"AbsoluteWrongRoot", "<r><a/></r>", "[/q/a]", false},
    {"AbsoluteStarRoot", "<r><a/></r>", "[/*/a]", true},
    {"AbsoluteDesc", "<r><x><a/></x></r>", "[//a]", true},
    // ---- text() ----
    {"TextExact", "<r><c>GOOG</c></r>", "[c/text() = \"GOOG\"]", true},
    {"TextPrefixNoMatch", "<r><c>GOOGL</c></r>",
     "[c/text() = \"GOOG\"]", false},
    {"TextSugar", "<r><c>v</c></r>", "[c = \"v\"]", true},
    {"TextOnContext", "<r>hello</r>", "[./text() = \"hello\"]", true},
    {"TextEmptyElement", "<r><c/></r>", "[c/text() = \"\"]", true},
    {"TextIndirectExcluded", "<r><c><d>v</d></c></r>",
     "[c/text() = \"v\"]", false},
    {"TextAfterDesc", "<r><x><c>v</c></x></r>",
     "[//c/text() = \"v\"]", true},
    {"TextEntityDecoded", "<r><c>a&amp;b</c></r>",
     "[c = \"a&b\"]", true},
    // ---- qualifiers ----
    {"QualifierFilters", "<r><a><k/></a><a/></r>", "[a[k]]", true},
    {"QualifierExcludes", "<r><a/></r>", "[a[k]]", false},
    {"QualifierThenStep", "<r><a><k/><b/></a><a><b/></a></r>",
     "[a[k]/b]", true},
    {"QualifierThenStepMiss", "<r><a><k/></a><a><b/></a></r>",
     "[a[k]/b]", false},
    {"DoubleQualifier", "<r><a><k/><m/></a></r>", "[a[k][m]]", true},
    {"DoubleQualifierMiss", "<r><a><k/></a><a><m/></a></r>",
     "[a[k][m]]", false},
    {"QualifierWithLabelFn", "<r><a/></r>", "[*[label() = a]]", true},
    {"NestedQualifier", "<r><a><b><k/></b></a></r>", "[a[b[k]]]", true},
    {"QualifierDescInside", "<r><a><x><k/></x></a></r>",
     "[a[.//k]]", true},
    // ---- boolean connectives ----
    {"AndBothTrue", "<r><a/><b/></r>", "[a and b]", true},
    {"AndOneFalse", "<r><a/></r>", "[a and b]", false},
    {"OrOneTrue", "<r><b/></r>", "[a or b]", true},
    {"OrBothFalse", "<r><c/></r>", "[a or b]", false},
    {"NotFlips", "<r><a/></r>", "[not(b)]", true},
    {"NotOfTrue", "<r><a/></r>", "[not(a)]", false},
    {"BangAlias", "<r><a/></r>", "[!b]", true},
    {"DoubleNegation", "<r><a/></r>", "[not(not(a))]", true},
    {"DeMorganish", "<r><a/></r>", "[not(a and b)]", true},
    {"PrecedenceAndFirst", "<r><c/></r>", "[a or b and c]", false},
    {"PrecedenceParens", "<r><c/><a/></r>", "[(a or b) and c]", true},
    {"NegationInsideQualifier", "<r><a><x/></a><a><k/></a></r>",
     "[a[not(k)]]", true},
    // ---- the paper's own examples ----
    {"PaperIntroAB", "<T><x><A/></x><y><B/></y></T>", "[//A and //B]",
     true},
    {"PaperIntroABMissing", "<T><x><A/></x></T>", "[//A and //B]",
     false},
    {"PaperBrokerQuery",
     "<p><broker><stock><code>goog</code></stock></broker></p>",
     "[//broker[//stock/code/text() = \"goog\" and "
     "not(//stock/code/text() = \"yhoo\")]]",
     true},
    {"PaperBrokerQueryBlocked",
     "<p><broker><stock><code>goog</code></stock>"
     "<stock><code>yhoo</code></stock></broker></p>",
     "[//broker[//stock/code/text() = \"goog\" and "
     "not(//stock/code/text() = \"yhoo\")]]",
     false},
    // ---- mixed content and attribute encoding ----
    {"AttributeAsAtChild", "<r><item id=\"i1\"/></r>",
     "[item/@id = \"i1\"]", true},
    {"MixedContentText", "<r><p>ab<i>x</i>cd</p></r>",
     "[p/text() = \"abcd\"]", true},
};

INSTANTIATE_TEST_SUITE_P(Grammar, SemanticsTableTest,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace parbox::xpath
