// Catalog + placement differential suite.
//
// The contract of the multi-document refactor: serving N documents on
// ONE shared substrate (catalog::Catalog + service::CatalogService)
// changes NOTHING per document — answers, visit counts, and wire
// bytes are bit-identical to N dedicated single-document services, on
// both the sim and the thread-pool backend ($PARBOX_BACKEND re-runs
// this whole suite under "threads"). And live fragment migration
// (Placement::Move) mid-stream changes no answer: cached entries keep
// serving, and only the moved fragments' retained state re-ships
// (visit counts bounded by the moved-fragment count).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/algorithms.h"
#include "core/session.h"
#include "fragment/placement.h"
#include "fragment/strategies.h"
#include "service/catalog_service.h"
#include "service/query_service.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xpath/normalize.h"

namespace parbox {
namespace {

using catalog::Catalog;
using catalog::CatalogOptions;
using catalog::Document;
using service::CatalogService;
using service::QueryService;
using service::ServiceOptions;
using service::ServiceReport;

/// A deterministic random deployment: the same seed always yields the
/// same document, fragmentation, and placement (one site per
/// fragment — the most adversarial placement), so the dedicated and
/// catalog sides of a differential get identical copies.
struct Deployment {
  frag::FragmentSet set;
  frag::Placement placement;
};

Deployment MakeDeployment(uint64_t seed, int max_elements, int splits) {
  Rng rng(seed);
  xml::Document doc = xmark::GenerateRandomSmallDocument(max_elements, &rng);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  EXPECT_TRUE(set.ok());
  EXPECT_TRUE(frag::RandomSplits(&*set, splits, &rng).ok());
  auto placement = frag::Placement::Create(
      *set, frag::AssignOneSitePerFragment(*set));
  EXPECT_TRUE(placement.ok()) << placement.status().ToString();
  return Deployment{std::move(*set), std::move(*placement)};
}

/// `count` distinct random queries, deterministic per seed.
std::vector<xpath::NormQuery> MakeQueries(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<xpath::NormQuery> out;
  std::vector<xpath::QueryFingerprint> fps;
  while (out.size() < static_cast<size_t>(count)) {
    auto ast = testutil::RandomQual(&rng, 3);
    xpath::NormQuery q = xpath::Normalize(*ast);
    const xpath::QueryFingerprint fp = xpath::FingerprintQuery(q);
    bool dup = false;
    for (const auto& seen : fps) dup = dup || seen == fp;
    if (dup) continue;  // distinct queries: admissions never dedup
    fps.push_back(fp);
    out.push_back(std::move(q));
  }
  return out;
}

// ---- The differential: catalog vs dedicated ----------------------------

// Distinct queries, batching off (every admission its own round), so
// the per-document figures are deterministic on BOTH backends; the
// catalog side must reproduce the dedicated side's answers, visits,
// and bytes exactly.
TEST(CatalogDifferentialTest, MultiDocServiceMatchesDedicatedServices) {
  const uint64_t kSeeds[] = {21, 22, 23};
  const int kQueries = 6;

  ServiceOptions options;
  options.enable_batching = false;

  // Dedicated single-document services, one substrate each.
  std::vector<std::vector<bool>> dedicated_answers;
  std::vector<std::vector<uint64_t>> dedicated_visits;
  std::vector<uint64_t> dedicated_bytes;
  std::vector<uint64_t> dedicated_messages;
  std::vector<std::map<std::string, uint64_t>> dedicated_by_tag;
  for (uint64_t seed : kSeeds) {
    Deployment d = MakeDeployment(seed, 120, 5);
    auto st = d.placement.Snapshot(d.set);
    ASSERT_TRUE(st.ok());
    auto svc = QueryService::Create(&d.set, &*st, options);
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    for (auto& q : MakeQueries(seed * 31, kQueries)) {
      ASSERT_TRUE((*svc)->Submit(std::move(q), 0.0).ok());
    }
    (*svc)->Run();
    ASSERT_TRUE((*svc)->status().ok()) << (*svc)->status().ToString();
    std::vector<bool> answers(kQueries);
    for (const auto& o : (*svc)->outcomes()) {
      answers[o.query_id] = o.answer;
    }
    dedicated_answers.push_back(std::move(answers));
    dedicated_visits.push_back((*svc)->backend().visits());
    const sim::TrafficStats& t = (*svc)->backend().traffic();
    dedicated_bytes.push_back(t.total_bytes());
    dedicated_messages.push_back(t.total_messages());
    dedicated_by_tag.push_back(t.bytes_by_tag());
  }

  // The same documents and queries on ONE catalog substrate.
  auto cat = Catalog::Create();
  ASSERT_TRUE(cat.ok()) << cat.status().ToString();
  for (uint64_t seed : kSeeds) {
    Deployment d = MakeDeployment(seed, 120, 5);
    ASSERT_TRUE((*cat)
                    ->Open("doc" + std::to_string(seed), std::move(d.set),
                           std::move(d.placement))
                    .ok());
  }
  auto svc = CatalogService::Create(cat->get(), options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (size_t di = 0; di < std::size(kSeeds); ++di) {
    for (auto& q : MakeQueries(kSeeds[di] * 31, kQueries)) {
      auto id = (*svc)->Submit("doc" + std::to_string(kSeeds[di]),
                               std::move(q), 0.0);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
  }
  (*svc)->Run();
  ASSERT_TRUE((*svc)->status().ok()) << (*svc)->status().ToString();

  for (size_t di = 0; di < std::size(kSeeds); ++di) {
    SCOPED_TRACE("document " + std::to_string(kSeeds[di]));
    const QueryService* qs =
        (*svc)->document_service("doc" + std::to_string(kSeeds[di]));
    ASSERT_NE(qs, nullptr);
    ASSERT_EQ(qs->outcomes().size(), static_cast<size_t>(kQueries));
    std::vector<bool> answers(kQueries);
    for (const auto& o : qs->outcomes()) {
      // Query ids are service-local (0..kQueries-1 in submit order).
      answers[o.query_id] = o.answer;
    }
    EXPECT_EQ(answers, dedicated_answers[di]);
    EXPECT_EQ(qs->backend().visits(), dedicated_visits[di]);
    const sim::TrafficStats& t = qs->backend().traffic();
    EXPECT_EQ(t.total_bytes(), dedicated_bytes[di]);
    EXPECT_EQ(t.total_messages(), dedicated_messages[di]);
    EXPECT_EQ(t.bytes_by_tag(), dedicated_by_tag[di]);
  }
}

// With batching windows, duplicate submissions, and the cache in play,
// the deterministic virtual clock still reproduces dedicated figures
// exactly (timing-sensitive, so sim only; the threads re-run of this
// suite covers the timing-free differential above).
TEST(CatalogDifferentialTest, BatchedAndCachedEquivalenceOnSim) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "batching windows are timing-dependent off the sim";
  }
  const uint64_t kSeeds[] = {31, 32};
  const int kQueries = 5;

  auto submit_all = [&](auto&& submit) {
    for (size_t di = 0; di < std::size(kSeeds); ++di) {
      // Each query twice (dedup/share) plus a delayed repeat (cache).
      for (int rep = 0; rep < 2; ++rep) {
        int qi = 0;
        for (auto& q : MakeQueries(kSeeds[di] * 77, kQueries)) {
          submit(di, std::move(q), 1e-5 * (qi++), rep);
        }
      }
      for (auto& q : MakeQueries(kSeeds[di] * 77, kQueries)) {
        submit(di, std::move(q), 0.1, 2);
      }
    }
  };

  std::vector<ServiceReport> dedicated;
  std::vector<std::vector<uint64_t>> dedicated_visits;
  std::vector<std::unique_ptr<QueryService>> keep_alive;
  std::vector<std::unique_ptr<Deployment>> deployments;
  std::vector<std::unique_ptr<frag::SourceTree>> trees;
  for (uint64_t seed : kSeeds) {
    auto d = std::make_unique<Deployment>(MakeDeployment(seed, 120, 5));
    auto st = d->placement.Snapshot(d->set);
    ASSERT_TRUE(st.ok());
    trees.push_back(std::make_unique<frag::SourceTree>(std::move(*st)));
    auto svc = QueryService::Create(&d->set, trees.back().get(), {});
    ASSERT_TRUE(svc.ok());
    keep_alive.push_back(std::move(*svc));
    deployments.push_back(std::move(d));
  }
  submit_all([&](size_t di, xpath::NormQuery q, double at, int) {
    ASSERT_TRUE(keep_alive[di]->Submit(std::move(q), at).ok());
  });
  for (auto& dsvc : keep_alive) {
    dsvc->Run();
    ASSERT_TRUE(dsvc->status().ok());
    dedicated.push_back(dsvc->BuildReport());
    dedicated_visits.push_back(dsvc->backend().visits());
  }

  auto cat = Catalog::Create();
  ASSERT_TRUE(cat.ok());
  for (uint64_t seed : kSeeds) {
    Deployment d = MakeDeployment(seed, 120, 5);
    ASSERT_TRUE((*cat)
                    ->Open(std::to_string(seed), std::move(d.set),
                           std::move(d.placement))
                    .ok());
  }
  auto svc = CatalogService::Create(cat->get());
  ASSERT_TRUE(svc.ok());
  submit_all([&](size_t di, xpath::NormQuery q, double at, int) {
    ASSERT_TRUE(
        (*svc)
            ->Submit(std::to_string(kSeeds[di]), std::move(q), at)
            .ok());
  });
  (*svc)->Run();
  ASSERT_TRUE((*svc)->status().ok());

  for (size_t di = 0; di < std::size(kSeeds); ++di) {
    SCOPED_TRACE("document " + std::to_string(kSeeds[di]));
    const QueryService* qs =
        (*svc)->document_service(std::to_string(kSeeds[di]));
    ASSERT_NE(qs, nullptr);
    const ServiceReport r = qs->BuildReport();
    EXPECT_EQ(r.completed, dedicated[di].completed);
    EXPECT_EQ(r.cache_hits, dedicated[di].cache_hits);
    EXPECT_EQ(r.shared_evaluations, dedicated[di].shared_evaluations);
    EXPECT_EQ(r.unique_evaluations, dedicated[di].unique_evaluations);
    EXPECT_EQ(r.rounds, dedicated[di].rounds);
    EXPECT_EQ(r.network_bytes, dedicated[di].network_bytes);
    EXPECT_EQ(r.network_messages, dedicated[di].network_messages);
    EXPECT_EQ(qs->backend().visits(), dedicated_visits[di]);
    ASSERT_EQ(qs->outcomes().size(), dedicated[di].completed);
    for (size_t i = 0; i < qs->outcomes().size(); ++i) {
      EXPECT_EQ(qs->outcomes()[i].query_id,
                keep_alive[di]->outcomes()[i].query_id);
      EXPECT_EQ(qs->outcomes()[i].answer,
                keep_alive[di]->outcomes()[i].answer);
    }
  }
}

// ---- Live migration -----------------------------------------------------

// Placement::Move mid-stream: no answer changes, cached entries keep
// serving, the fragment's content ships exactly once (the metered
// "migrate" message), and post-move evaluations agree with a fresh
// standalone run against the new snapshot.
TEST(CatalogMoveTest, MoveMidStreamChangesNoAnswerAndKeepsCache) {
  auto cat = Catalog::Create();
  ASSERT_TRUE(cat.ok());
  Deployment d = MakeDeployment(41, 150, 6);
  const size_t fragments = d.set.live_count();
  ASSERT_GE(fragments, 4u);
  auto opened =
      (*cat)->Open("live", std::move(d.set), std::move(d.placement));
  ASSERT_TRUE(opened.ok());
  Document* doc = *opened;

  auto svc = CatalogService::Create(cat->get());
  ASSERT_TRUE(svc.ok());
  QueryService* qs = (*svc)->document_service("live");
  ASSERT_NE(qs, nullptr);

  // Fill the cache.
  const int kQueries = 5;
  for (auto& q : MakeQueries(411, kQueries)) {
    ASSERT_TRUE((*svc)->Submit("live", std::move(q), 0.0).ok());
  }
  (*svc)->Run();
  ASSERT_TRUE((*svc)->status().ok());
  std::vector<bool> before(kQueries);
  for (const auto& o : qs->outcomes()) before[o.query_id] = o.answer;
  const size_t cached = qs->cache_size();
  EXPECT_GT(cached, 0u);

  // Move a non-root fragment to another fragment's site.
  frag::FragmentId moved = frag::kNoFragment;
  for (frag::FragmentId f : doc->set().live_ids()) {
    if (f != doc->set().root_fragment()) {
      moved = f;
      break;
    }
  }
  ASSERT_NE(moved, frag::kNoFragment);
  const frag::SiteId old_site = doc->placement().site_of(moved);
  const frag::SiteId new_site =
      (old_site + 1) % doc->placement().num_sites();
  const uint64_t fragment_bytes =
      doc->set().FragmentSerializedBytes(moved);
  const uint64_t epoch_before = doc->placement().epoch();

  auto from = (*svc)->Move("live", moved, new_site);
  ASSERT_TRUE(from.ok()) << from.status().ToString();
  EXPECT_EQ(*from, old_site);
  EXPECT_EQ(doc->placement().epoch(), epoch_before + 1);
  EXPECT_EQ(doc->source_tree()->placement_epoch(), epoch_before + 1);
  EXPECT_EQ(doc->source_tree()->site_of(moved), new_site);
  (*svc)->Run();  // drain the migration transfer

  // The content shipped exactly once, metered under "migrate".
  EXPECT_EQ(qs->backend().traffic().bytes_with_tag("migrate"),
            fragment_bytes);
  EXPECT_EQ(qs->backend().traffic().messages_with_tag("migrate"), 1u);

  // A move is not an update: the cache keeps serving, same answers.
  EXPECT_EQ(qs->cache_size(), cached);
  for (auto& q : MakeQueries(411, kQueries)) {
    ASSERT_TRUE((*svc)->Submit("live", std::move(q), qs->now()).ok());
  }
  (*svc)->Run();
  ASSERT_TRUE((*svc)->status().ok());
  ASSERT_EQ(qs->outcomes().size(), static_cast<size_t>(2 * kQueries));
  for (size_t i = kQueries; i < qs->outcomes().size(); ++i) {
    const auto& o = qs->outcomes()[i];
    EXPECT_TRUE(o.cache_hit) << "query " << o.query_id;
    EXPECT_EQ(o.answer, before[o.query_id % kQueries]);
  }

  // Fresh (uncached) evaluations against the moved placement agree
  // with standalone runs on the new snapshot.
  std::shared_ptr<const frag::SourceTree> st = doc->source_tree();
  for (auto& q : MakeQueries(997, 3)) {
    auto oracle = core::RunParBoX(doc->set(), *st, q);
    ASSERT_TRUE(oracle.ok());
    bool got = false;
    ASSERT_TRUE((*svc)
                    ->Submit("live", std::move(q), qs->now(),
                             [&got](const service::QueryOutcome& o) {
                               got = o.answer;
                             })
                    .ok());
    (*svc)->Run();
    EXPECT_EQ(got, oracle->answer);
  }
}

// The session-level contract: after a Move, ExecuteIncremental
// re-ships ONLY the moved fragments' state — visits bounded by the
// moved-fragment count, one "update" message per affected site, and
// the answer unchanged.
TEST(CatalogMoveTest, IncrementalReshipsOnlyMovedFragments) {
  auto cat = Catalog::Create();
  ASSERT_TRUE(cat.ok());
  Deployment d = MakeDeployment(51, 150, 6);
  auto opened =
      (*cat)->Open("inc", std::move(d.set), std::move(d.placement));
  ASSERT_TRUE(opened.ok());
  Document* doc = *opened;

  auto session = doc->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto prepared = (*session)->Prepare("[//a[b] and //c]");
  ASSERT_TRUE(prepared.ok());

  // Seed pass.
  auto seed_run = (*session)->ExecuteIncremental(*prepared);
  ASSERT_TRUE(seed_run.ok()) << seed_run.status().ToString();
  EXPECT_EQ(seed_run->algorithm, "IncrementalParBoX[full]");

  // Move two non-root fragments onto the same (fresh) target site.
  std::vector<frag::FragmentId> moved;
  for (frag::FragmentId f : doc->set().live_ids()) {
    if (f != doc->set().root_fragment()) moved.push_back(f);
    if (moved.size() == 2) break;
  }
  ASSERT_EQ(moved.size(), 2u);
  const frag::SiteId target = doc->placement().site_of(moved[1]);
  ASSERT_TRUE(doc->Move(moved[0], target).ok());

  auto delta_run = (*session)->ExecuteIncremental(*prepared);
  ASSERT_TRUE(delta_run.ok()) << delta_run.status().ToString();
  EXPECT_EQ(delta_run->algorithm, "IncrementalParBoX[delta]");
  EXPECT_EQ(delta_run->answer, seed_run->answer);
  // Only the moved fragment's (new) site is visited.
  EXPECT_LE(delta_run->total_visits(), 1u);
  EXPECT_GT(delta_run->stats.Get("net.update.bytes"), 0u);

  // Both fragments moved at once: still bounded by the sites holding
  // the moved fragments.
  const frag::SiteId target2 = doc->placement().site_of(moved[0]);
  ASSERT_TRUE(doc->Move(moved[0], (target2 + 1) %
                                      doc->placement().num_sites())
                  .ok());
  ASSERT_TRUE(doc->Move(moved[1], (target + 1) %
                                      doc->placement().num_sites())
                  .ok());
  auto delta_run2 = (*session)->ExecuteIncremental(*prepared);
  ASSERT_TRUE(delta_run2.ok());
  EXPECT_EQ(delta_run2->answer, seed_run->answer);
  EXPECT_LE(delta_run2->total_visits(), 2u);

  // Nothing further moved: the retained answer stands, zero visits.
  auto clean_run = (*session)->ExecuteIncremental(*prepared);
  ASSERT_TRUE(clean_run.ok());
  EXPECT_EQ(clean_run->algorithm, "IncrementalParBoX[clean]");
  EXPECT_EQ(clean_run->total_visits(), 0u);
  EXPECT_EQ(clean_run->answer, seed_run->answer);
}

// ---- Rebalance -----------------------------------------------------------

// The load-aware policy end to end: serve a skewed deployment, let the
// per-site meters accumulate, rebalance, and keep serving correctly.
TEST(CatalogMoveTest, RebalanceMovesFragmentsAndKeepsAnswers) {
  auto cat = Catalog::Create();
  ASSERT_TRUE(cat.ok());
  // Everything piled onto site 1 (root on 0) of a 4-site placement.
  Rng rng(61);
  xml::Document docxml = xmark::GenerateRandomSmallDocument(200, &rng);
  auto set = frag::FragmentSet::FromDocument(std::move(docxml));
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(frag::RandomSplits(&*set, 6, &rng).ok());
  std::vector<frag::SiteId> site_of(set->table_size(), 1);
  site_of[set->root_fragment()] = 0;
  auto placement = frag::Placement::Create(*set, std::move(site_of), 4);
  ASSERT_TRUE(placement.ok());
  auto opened =
      (*cat)->Open("skew", std::move(*set), std::move(*placement));
  ASSERT_TRUE(opened.ok());
  Document* doc = *opened;

  ServiceOptions options;
  options.enable_cache = false;  // keep the sites hot
  auto svc = CatalogService::Create(cat->get(), options);
  ASSERT_TRUE(svc.ok());
  QueryService* qs = (*svc)->document_service("skew");

  std::vector<bool> before;
  auto serve_round = [&](std::vector<bool>* answers) {
    int qi = 0;
    for (auto& q : MakeQueries(611, 4)) {
      const int slot = qi++;
      if (answers != nullptr) answers->resize(qi);
      ASSERT_TRUE(
          (*svc)
              ->Submit("skew", std::move(q), qs->now(),
                       [answers, slot](const service::QueryOutcome& o) {
                         if (answers != nullptr) {
                           (*answers)[slot] = o.answer;
                         }
                       })
              .ok());
    }
    (*svc)->Run();
    ASSERT_TRUE((*svc)->status().ok());
  };
  serve_round(&before);

  // Site 1 carried everything; the policy must propose real moves.
  auto applied = (*svc)->Rebalance("skew");
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GT(*applied, 0u);
  (*svc)->Run();  // drain migration transfers
  // Root stayed pinned; the hot site lost fragments.
  EXPECT_EQ(doc->placement().site_of(doc->set().root_fragment()), 0);
  size_t on_hot = 0;
  for (frag::FragmentId f : doc->set().live_ids()) {
    if (doc->placement().site_of(f) == 1) ++on_hot;
  }
  EXPECT_LT(on_hot, doc->set().live_count() - 1);

  std::vector<bool> after;
  serve_round(&after);
  EXPECT_EQ(after, before);
}

// ---- Catalog bookkeeping + construction-time validation ------------------

TEST(CatalogTest, OpenCloseFindNames) {
  auto cat = Catalog::Create();
  ASSERT_TRUE(cat.ok());
  for (const char* name : {"b", "a"}) {
    Deployment d = MakeDeployment(71, 60, 2);
    ASSERT_TRUE(
        (*cat)->Open(name, std::move(d.set), std::move(d.placement)).ok());
  }
  EXPECT_EQ((*cat)->size(), 2u);
  EXPECT_EQ((*cat)->names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_NE((*cat)->Find("a"), nullptr);
  EXPECT_EQ((*cat)->Find("zzz"), nullptr);

  // Duplicate names rejected; unknown close is NotFound.
  Deployment d = MakeDeployment(72, 60, 2);
  EXPECT_FALSE(
      (*cat)->Open("a", std::move(d.set), std::move(d.placement)).ok());
  EXPECT_EQ((*cat)->Close("zzz").code(), StatusCode::kNotFound);
  ASSERT_TRUE((*cat)->Close("a").ok());
  EXPECT_EQ((*cat)->size(), 1u);

  // A service over the catalog refuses unknown documents with the
  // served names listed.
  auto svc = CatalogService::Create(cat->get());
  ASSERT_TRUE(svc.ok());
  auto id = (*svc)->Submit("nope", xpath::NormQuery{}, 0.0);
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("b"), std::string::npos);
}

TEST(CatalogTest, BadBackendSpecsFailAtConstruction) {
  // Catalog::Create validates the host spec up front.
  EXPECT_FALSE(Catalog::Create({.backend = "quantum"}).ok());
  auto zero = Catalog::Create({.backend = "threads:0"});
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().message().find("1..1024"), std::string::npos);

  // QueryService::Create surfaces the same errors at construction
  // time (previously only the first Submit reported them).
  Deployment d = MakeDeployment(81, 60, 2);
  auto st = d.placement.Snapshot(d.set);
  ASSERT_TRUE(st.ok());
  ServiceOptions bad;
  bad.backend = "quantum";
  auto svc = QueryService::Create(&d.set, &*st, bad);
  ASSERT_FALSE(svc.ok());
  EXPECT_NE(svc.status().message().find("registered"), std::string::npos);
  bad.backend = "threads:0";
  EXPECT_FALSE(QueryService::Create(&d.set, &*st, bad).ok());

  // The non-validating constructor keeps working but shows the error
  // through status() from birth.
  QueryService legacy(&d.set, &*st, bad);
  EXPECT_FALSE(legacy.status().ok());
}

// Concurrent per-document sessions: several sessions over one entry
// share the substrate but answer independently and identically.
TEST(CatalogTest, ConcurrentSessionsPerDocument) {
  auto cat = Catalog::Create();
  ASSERT_TRUE(cat.ok());
  Deployment d = MakeDeployment(91, 120, 4);
  auto opened =
      (*cat)->Open("shared", std::move(d.set), std::move(d.placement));
  ASSERT_TRUE(opened.ok());
  Document* doc = *opened;

  auto s1 = doc->OpenSession();
  auto s2 = doc->OpenSession();
  ASSERT_TRUE(s1.ok() && s2.ok());
  auto q1 = (*s1)->Prepare("[//a[b]]");
  auto q2 = (*s2)->Prepare("[//a[b]]");
  ASSERT_TRUE(q1.ok() && q2.ok());
  auto r1 = (*s1)->Execute(*q1);
  auto r2 = (*s2)->Execute(*q2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->answer, r2->answer);
  EXPECT_EQ(r1->network_bytes, r2->network_bytes);
  EXPECT_EQ(r1->total_visits(), r2->total_visits());

  // A handle from one session is rejected by the other.
  EXPECT_FALSE((*s2)->Execute(*q1).ok());
}

}  // namespace
}  // namespace parbox
