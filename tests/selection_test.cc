#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/selection.h"
#include "testutil.h"
#include "xmark/portfolio.h"
#include "xpath/normalize.h"
#include "xpath/parser.h"
#include "xpath/reference_eval.h"

namespace parbox::core {
namespace {

using frag::FragmentSet;
using frag::SourceTree;

TEST(SelectionTest, SelectsStocksByCode) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  // Predicate: "is a stock whose code is GOOG" — holds at two nodes
  // (one in F2, one in F3).
  auto q = xpath::CompileQuery("[label() = stock and code = \"GOOG\"]");
  ASSERT_TRUE(q.ok());
  auto result = RunSelectionParBoX(*set, *st, *q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_selected, 2u);
  EXPECT_EQ(result->selected_by_fragment[2].size(), 1u);
  EXPECT_EQ(result->selected_by_fragment[3].size(), 1u);
  for (const xml::Node* n : result->AllSelected()) {
    EXPECT_EQ(n->label(), "stock");
  }
}

TEST(SelectionTest, AtMostTwoVisitsPerSite) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  auto q = xpath::CompileQuery("[label() = market]");
  ASSERT_TRUE(q.ok());
  auto result = RunSelectionParBoX(*set, *st, *q);
  ASSERT_TRUE(result.ok());
  // Site S2 holds two fragments yet is visited exactly twice (once per
  // pass), which is the Sec. 8 guarantee.
  EXPECT_EQ(result->report.visits_per_site,
            (std::vector<uint64_t>{2, 2, 2}));
}

TEST(SelectionTest, CrossFragmentPredicate) {
  // "brokers that trade YHOO": the broker element is F1's root, but
  // the evidence (the YHOO stock) lives two fragments away in F2.
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  auto q = xpath::CompileQuery(
      "[label() = broker and .//stock/code/text() = \"YHOO\"]");
  ASSERT_TRUE(q.ok());
  auto result = RunSelectionParBoX(*set, *st, *q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->total_selected, 1u);
  EXPECT_EQ(result->selected_by_fragment[1].size(), 1u);  // Merill Lynch
}

TEST(SelectionTest, EmptySelection) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  auto q = xpath::CompileQuery("[label() = nonexistent]");
  ASSERT_TRUE(q.ok());
  auto result = RunSelectionParBoX(*set, *st, *q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_selected, 0u);
  EXPECT_FALSE(result->report.answer);
}

// Property: a node is selected iff the reference evaluator says the
// predicate holds at it (over the reassembled tree).
class SelectionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionPropertyTest, MatchesReferenceSemantics) {
  Rng rng(GetParam() * 31 + 7);
  auto scenario = testutil::MakeRandomScenario(GetParam() + 900, 60, 4);
  for (int i = 0; i < 5; ++i) {
    auto ast = testutil::RandomQual(&rng, 2);
    xpath::NormQuery q = xpath::Normalize(*ast);
    auto result = RunSelectionParBoX(scenario.set, scenario.st, q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Count the expected matches over the reassembled tree.
    auto whole = scenario.set.Reassemble();
    ASSERT_TRUE(whole.ok());
    size_t expected = 0;
    std::vector<const xml::Node*> stack{whole->root()};
    while (!stack.empty()) {
      const xml::Node* n = stack.back();
      stack.pop_back();
      if (n->is_element() && xpath::ReferenceEval(*ast, *n)) ++expected;
      for (const xml::Node* c = n->first_child; c != nullptr;
           c = c->next_sibling) {
        stack.push_back(c);
      }
    }
    EXPECT_EQ(result->total_selected, expected)
        << "seed " << GetParam() << " query " << xpath::ToString(*ast);
    // And the guarantee: never more than two visits anywhere.
    EXPECT_LE(result->report.max_visits_per_site(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace parbox::core
