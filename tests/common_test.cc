#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace parbox {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad byte");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad byte");
  EXPECT_EQ(st.ToString(), "parse error: bad byte");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kFailedPrecondition,
        StatusCode::kUnresolved, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PARBOX_ASSIGN_OR_RETURN(int h, Half(x));
  PARBOX_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

// ---------- Rng ----------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next64() != b.Next64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(3, 6));
  EXPECT_EQ(seen, (std::set<int64_t>{3, 4, 5, 6}));
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Weighted(weights), 1u);
  }
}

TEST(RngTest, WordLengthInRange) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    std::string w = rng.Word(3, 6);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 6u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(31);
  Rng fork = a.Fork();
  // The fork should not replay the parent's stream.
  EXPECT_NE(a.Next64(), fork.Next64());
}

// ---------- Arena ----------

TEST(ArenaTest, AllocatesAligned) {
  Arena arena(128);
  void* p1 = arena.Allocate(3, 1);
  void* p2 = arena.Allocate(8, 8);
  EXPECT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 8, 0u);
}

TEST(ArenaTest, GrowsBeyondBlockSize) {
  Arena arena(64);
  void* big = arena.Allocate(1000);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
}

TEST(ArenaTest, CopyStringNulTerminates) {
  Arena arena;
  const char* s = arena.CopyString("hello", 5);
  EXPECT_STREQ(s, "hello");
}

TEST(ArenaTest, ManySmallAllocationsDistinct) {
  Arena arena(256);
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(arena.Allocate(16)).second);
  }
  EXPECT_EQ(arena.bytes_allocated(), 16000u);
}

TEST(ArenaTest, NewConstructsObject) {
  Arena arena;
  struct Point {
    int x, y;
  };
  Point* p = arena.New<Point>(Point{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

// ---------- Stats ----------

TEST(StatsTest, AddAndGet) {
  StatsRegistry stats;
  EXPECT_EQ(stats.Get("x"), 0u);
  stats.Add("x", 5);
  stats.Increment("x");
  EXPECT_EQ(stats.Get("x"), 6u);
}

TEST(StatsTest, ResetClears) {
  StatsRegistry stats;
  stats.Add("y", 3);
  stats.Reset();
  EXPECT_EQ(stats.Get("y"), 0u);
  EXPECT_TRUE(stats.counters().empty());
}

TEST(StatsTest, ToStringSortedByName) {
  StatsRegistry stats;
  stats.Add("zeta", 1);
  stats.Add("alpha", 2);
  std::string s = stats.ToString();
  EXPECT_LT(s.find("alpha"), s.find("zeta"));
}

// ---------- Formatting ----------

TEST(BytesTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(17), "17 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(25 * 1024 * 1024), "25.0 MB");
}

TEST(BytesTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(1.5), "1.500 s");
  EXPECT_EQ(HumanSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(HumanSeconds(0.0000452), "45.2 us");
}

}  // namespace
}  // namespace parbox
