#include <gtest/gtest.h>

#include "xmark/queries.h"
#include "xpath/normalize.h"
#include "xpath/parser.h"
#include "xpath/qlist.h"

namespace parbox::xpath {
namespace {

NormQuery Compile(std::string_view text) {
  auto q = CompileQuery(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status().ToString();
  return std::move(*q);
}

TEST(NormalizeTest, EpsAlone) {
  NormQuery q = Compile("[.]");
  EXPECT_TRUE(q.IsWellFormed());
  EXPECT_EQ(q.at(q.root()).kind, NormKind::kEps);
}

TEST(NormalizeTest, LabelStepBecomesChildOfLabelTest) {
  // normalize(A) = */eps[label()=A]; with the eps-merge, the QList is
  // [eps, label()=A, */q1].
  NormQuery q = Compile("[a]");
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.at(0).kind, NormKind::kEps);
  EXPECT_EQ(q.at(1).kind, NormKind::kLabelIs);
  EXPECT_EQ(q.at(1).str, "a");
  EXPECT_EQ(q.at(2).kind, NormKind::kChild);
  EXPECT_EQ(q.root(), 2);
}

TEST(NormalizeTest, WildcardIsBareChild) {
  NormQuery q = Compile("[*]");
  EXPECT_EQ(q.at(q.root()).kind, NormKind::kChild);
  EXPECT_EQ(q.at(q.at(q.root()).a).kind, NormKind::kEps);
}

TEST(NormalizeTest, DescendantAxis) {
  NormQuery q = Compile("[//a]");
  EXPECT_EQ(q.at(q.root()).kind, NormKind::kDesc);
}

TEST(NormalizeTest, TextComparisonRule) {
  // normalize(p/text()=s) = normalize(p)[text()=s].
  NormQuery q = Compile("[code/text() = \"GOOG\"]");
  // QList: [text()=GOOG, label()=code, seq, child].
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.at(0).kind, NormKind::kTextIs);
  EXPECT_EQ(q.at(0).str, "GOOG");
  EXPECT_EQ(q.at(q.root()).kind, NormKind::kChild);
  const auto& seq = q.at(q.at(q.root()).a);
  EXPECT_EQ(seq.kind, NormKind::kSeq);
  EXPECT_EQ(q.at(seq.a).kind, NormKind::kLabelIs);
  EXPECT_EQ(q.at(seq.b).kind, NormKind::kTextIs);
}

TEST(NormalizeTest, BooleanConnectives) {
  NormQuery q = Compile("[label() = a and not(label() = b or label() = c)]");
  EXPECT_EQ(q.at(q.root()).kind, NormKind::kAnd);
  EXPECT_TRUE(q.IsWellFormed());
}

TEST(NormalizeTest, HashConsingDeduplicatesSubqueries) {
  // //a appears twice; its sub-queries must share QList entries.
  NormQuery once = Compile("[//a]");
  NormQuery twice = Compile("[//a or //a]");
  EXPECT_EQ(twice.size(), once.size() + 1);  // just the extra Or
  EXPECT_EQ(twice.at(twice.root()).kind, NormKind::kOr);
  EXPECT_EQ(twice.at(twice.root()).a, twice.at(twice.root()).b);
}

TEST(NormalizeTest, EpsMergeCombinesConsecutiveQualifiers) {
  // a[q1][q2] == eps[q1 ∧ q2] applied under the label step.
  NormQuery q = Compile("[a[label() = x][label() = y]]");
  // The Seq directly under Child must have an And on its left.
  SubQueryId child = q.root();
  ASSERT_EQ(q.at(child).kind, NormKind::kChild);
  const auto& seq = q.at(q.at(child).a);
  ASSERT_EQ(seq.kind, NormKind::kSeq);
  EXPECT_EQ(q.at(seq.a).kind, NormKind::kAnd);
}

TEST(NormalizeTest, TopologicalOrderAlwaysHolds) {
  for (const char* text :
       {"[//a/b/c]", "[a[b][c] and not(//d)]", "[.//x/text() = \"t\"]",
        "[label() = q or (a and b/c)]"}) {
    NormQuery q = Compile(text);
    EXPECT_TRUE(q.IsWellFormed()) << text;
  }
}

TEST(NormalizeTest, Example21FromThePaper) {
  // q = //stock[code/text() = "yhoo"]: the paper's QList has entries
  // for label()=code, text()=yhoo, their conjunction, the child step,
  // label()=stock, the descendant closure, etc. With the eps-merges
  // our QList is a compressed but equivalent version.
  NormQuery q = Compile("[//stock[code/text() = \"yhoo\"]]");
  EXPECT_TRUE(q.IsWellFormed());
  EXPECT_EQ(q.at(q.root()).kind, NormKind::kDesc);
  // Expected entries: eps, text()=yhoo, label()=code, seq(code,text),
  // child, label()=stock, and(stock, child), ... root desc.
  bool has_stock = false, has_code = false, has_text = false;
  for (size_t i = 0; i < q.size(); ++i) {
    const auto& sq = q.at(static_cast<SubQueryId>(i));
    if (sq.kind == NormKind::kLabelIs && sq.str == "stock") has_stock = true;
    if (sq.kind == NormKind::kLabelIs && sq.str == "code") has_code = true;
    if (sq.kind == NormKind::kTextIs && sq.str == "yhoo") has_text = true;
  }
  EXPECT_TRUE(has_stock && has_code && has_text);
}

TEST(NormalizeTest, SizeIsLinearInQuery) {
  // |QList| must not blow up: build a 40-step chain.
  std::string text = "[//a0";
  for (int i = 1; i < 40; ++i) text += "/a" + std::to_string(i);
  text += "]";
  NormQuery q = Compile(text);
  EXPECT_LE(q.size(), 3u * 40u + 1u);
}

TEST(NormalizeTest, SerializedSizeTracksQListSize) {
  NormQuery small = Compile("[//a]");
  NormQuery large = Compile("[//a/b/c/d/e/f]");
  EXPECT_GT(large.SerializedSizeBytes(), small.SerializedSizeBytes());
}

TEST(NormalizeTest, ToStringListsEveryEntry) {
  NormQuery q = Compile("[//a]");
  std::string s = q.ToString();
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_NE(s.find("q" + std::to_string(i) + " = "), std::string::npos);
  }
  EXPECT_NE(s.find("<- answer"), std::string::npos);
}

// ---------- Workload query sizes (Experiments 1 and 3) ----------

class QuerySizeTest : public ::testing::TestWithParam<int> {};

TEST_P(QuerySizeTest, ExactQListSize) {
  auto q = xmark::MakeQueryOfQListSize(GetParam());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->size(), static_cast<size_t>(GetParam()));
  EXPECT_TRUE(q->IsWellFormed());
}

INSTANTIATE_TEST_SUITE_P(AllSizes, QuerySizeTest,
                         ::testing::Range(2, 40));

TEST(QuerySizeTest, PaperSizesCovered) {
  for (int size : xmark::kPaperQuerySizes) {
    auto q = xmark::MakeQueryOfQListSize(size);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->size(), static_cast<size_t>(size));
  }
}

TEST(QuerySizeTest, TooSmallRejected) {
  EXPECT_FALSE(xmark::MakeQueryOfQListSize(1).ok());
  EXPECT_FALSE(xmark::MakeQueryOfQListSize(0).ok());
}

TEST(MarkerQueryTest, ShapeAndSize) {
  auto q = xmark::MakeMarkerQuery("v3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->at(q->root()).kind, NormKind::kDesc);
  EXPECT_EQ(xmark::MarkerQueryText("v3"), "[//marker/text() = \"v3\"]");
}

}  // namespace
}  // namespace parbox::xpath
