// Edge cases that cut across modules: tombstoned fragment tables,
// selection/Boolean consistency, run determinism, writer/virtual-node
// round trips under pretty-printing.

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/path_selection.h"
#include "core/session.h"
#include "fragment/delta.h"
#include "testutil.h"
#include "xmark/portfolio.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"
#include "xpath/parser.h"

namespace parbox::core {
namespace {

using frag::FragmentId;
using frag::FragmentSet;
using frag::SourceTree;

TEST(TombstoneTest, AlgorithmsRunCorrectlyAfterMerges) {
  // Merge fragments out of a random scenario: the fragment table then
  // contains dead slots, which every algorithm must skip cleanly.
  auto scenario = testutil::MakeRandomScenario(99, 120, 6);
  ASSERT_GE(scenario.set.live_count(), 4u);
  // Merge two non-root fragments.
  int merged = 0;
  for (FragmentId f : scenario.set.live_ids()) {
    if (f != scenario.set.root_fragment() && merged < 2) {
      ASSERT_TRUE(scenario.set.Merge(f).ok());
      ++merged;
    }
  }
  ASSERT_EQ(merged, 2);
  ASSERT_GT(scenario.set.table_size(), scenario.set.live_count());
  ASSERT_TRUE(scenario.set.Validate().ok());
  // Source tree must be rebuilt after fragmentation changes.
  auto st = SourceTree::Create(scenario.set,
                               frag::AssignOneSitePerFragment(scenario.set));
  ASSERT_TRUE(st.ok());

  auto whole = scenario.set.Reassemble();
  ASSERT_TRUE(whole.ok());
  auto q = xpath::CompileQuery("[//a[b] or //c]");
  ASSERT_TRUE(q.ok());
  bool expected = *xpath::EvalBoolean(*whole->root(), *q);
  auto reports = RunAllAlgorithms(scenario.set, *st, *q);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  for (const RunReport& r : *reports) {
    EXPECT_EQ(r.answer, expected) << r.algorithm;
  }
}

TEST(SelectionConsistencyTest, PathSelectionAgreesWithBooleanAnswer) {
  // The compiled selection query, run as a Boolean, must say true iff
  // the selection is non-empty — on the portfolio and random scenarios.
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  for (const char* path : {"//stock", "//stock[code = \"YHOO\"]",
                           "//nonexistent", "broker/name",
                           "//market[name = \"NYSE\"]/stock"}) {
    auto selection = xpath::CompileSelection(path);
    ASSERT_TRUE(selection.ok()) << path;
    auto selected = RunPathSelection(*set, *st, *selection);
    ASSERT_TRUE(selected.ok()) << path;
    auto boolean = RunParBoX(*set, *st, selection->query);
    ASSERT_TRUE(boolean.ok());
    EXPECT_EQ(boolean->answer, selected->total_selected > 0) << path;
  }
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalReports) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "virtual-clock property; sim backend only";
  }
  auto scenario = testutil::MakeRandomScenario(123, 150, 5);
  auto q = xpath::CompileQuery("[//a and not(//e/text() = \"t3\")]");
  ASSERT_TRUE(q.ok());
  auto r1 = RunParBoX(scenario.set, scenario.st, *q);
  auto r2 = RunParBoX(scenario.set, scenario.st, *q);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->answer, r2->answer);
  EXPECT_DOUBLE_EQ(r1->makespan_seconds, r2->makespan_seconds);
  EXPECT_EQ(r1->network_bytes, r2->network_bytes);
  EXPECT_EQ(r1->network_messages, r2->network_messages);
  EXPECT_EQ(r1->visits_per_site, r2->visits_per_site);
  EXPECT_EQ(r1->total_ops, r2->total_ops);
}

TEST(DeterminismTest, NetworkParamsAffectOnlyTiming) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "virtual-clock property; sim backend only";
  }
  auto scenario = testutil::MakeRandomScenario(124, 150, 5);
  auto q = xpath::CompileQuery("[//b/c]");
  ASSERT_TRUE(q.ok());
  EngineOptions slow;
  slow.network.latency_seconds = 0.5;
  slow.network.bandwidth_bytes_per_second = 1e3;
  auto fast_run = RunParBoX(scenario.set, scenario.st, *q);
  auto slow_run = RunParBoX(scenario.set, scenario.st, *q, slow);
  ASSERT_TRUE(fast_run.ok() && slow_run.ok());
  EXPECT_EQ(fast_run->answer, slow_run->answer);
  EXPECT_EQ(fast_run->network_bytes, slow_run->network_bytes);
  EXPECT_GT(slow_run->makespan_seconds, fast_run->makespan_seconds);
}

TEST(SelectionQueryTest, MarkIsWellFormedAndBooleanEquivalent) {
  // NormalizeSelection's query, evaluated as a Boolean, equals the
  // plain Boolean compilation of the same path text.
  auto doc = xml::ParseXml("<r><a><b>x</b></a><c/></r>");
  ASSERT_TRUE(doc.ok());
  for (const char* path : {"//b", "a/b", "c", "//z", ".", "*"}) {
    auto selection = xpath::CompileSelection(path);
    ASSERT_TRUE(selection.ok()) << path;
    EXPECT_TRUE(selection->query.IsWellFormed());
    EXPECT_EQ(selection->query.at(selection->mark).kind,
              xpath::NormKind::kMark);
    auto boolean = xpath::CompileQuery(path);
    ASSERT_TRUE(boolean.ok());
    EXPECT_EQ(*xpath::EvalBoolean(*doc->root(), selection->query),
              *xpath::EvalBoolean(*doc->root(), *boolean))
        << path;
  }
}

TEST(WriterTest, IndentedFragmentWithVirtualNodesRoundTrips) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  for (FragmentId f : set->live_ids()) {
    std::string pretty =
        xml::WriteXml(set->fragment(f).root, {.indent = true});
    auto parsed = xml::ParseXml(pretty);
    ASSERT_TRUE(parsed.ok()) << "F" << f << ": "
                             << parsed.status().ToString();
    EXPECT_TRUE(xml::TreeEquals(set->fragment(f).root, parsed->root()))
        << "F" << f;
  }
}

TEST(SingleSiteTest, EverythingLocalMeansZeroTraffic) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, frag::AssignAllToOneSite(*set));
  ASSERT_TRUE(st.ok());
  auto q = xpath::CompileQuery(xmark::kYhooQuery);
  ASSERT_TRUE(q.ok());
  auto reports = RunAllAlgorithms(*set, *st, *q);
  ASSERT_TRUE(reports.ok());
  for (const RunReport& r : *reports) {
    EXPECT_TRUE(r.answer) << r.algorithm;
    EXPECT_EQ(r.network_bytes, 0u) << r.algorithm;
  }
}

TEST(SingleFragmentTest, DegenerateDeploymentWorksEverywhere) {
  auto doc = xml::ParseXml("<r><a><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  auto q = xpath::CompileQuery("[a/b]");
  ASSERT_TRUE(q.ok());
  auto reports = RunAllAlgorithms(set, *st, *q);
  ASSERT_TRUE(reports.ok());
  for (const RunReport& r : *reports) {
    EXPECT_TRUE(r.answer) << r.algorithm;
    EXPECT_LE(r.max_visits_per_site(), 1u) << r.algorithm;
  }
  auto selected = RunPathSelection(set, *st, "a/b");
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->total_selected, 1u);
}

// ---- Update edge cases (fragment/delta.h + Session::Apply) -------------

using frag::Delta;

// A fragment that is just its root element (the smallest legal
// fragment) must accept every content delta and evaluate correctly
// before and after.
TEST(UpdateEdgeCaseTest, RootOnlyFragmentAcceptsDeltas) {
  auto doc = xml::ParseXml("<r/>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_EQ(set.FragmentElements(0), 1u);
  auto st = SourceTree::Create(set, frag::AssignAllToOneSite(set));
  ASSERT_TRUE(st.ok());

  auto session = Session::Create(&set, &*st);
  ASSERT_TRUE(session.ok());
  auto q = session->Prepare("[a/text() = \"x\"]");
  ASSERT_TRUE(q.ok());
  auto before = session->ExecuteIncremental(*q);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->answer);

  // Retext the lone root, then grow a child under it.
  ASSERT_TRUE(
      session->Apply(Delta::Retext(0, set.fragment(0).root, "t")).ok());
  auto inserted = session->Apply(
      Delta::InsertSubtree(0, set.fragment(0).root, "a", "x"));
  ASSERT_TRUE(inserted.ok());
  auto after = session->ExecuteIncremental(*q);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->answer);
  auto fresh = RunParBoX(set, *st, q->query());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->answer);
  ASSERT_TRUE(set.Validate().ok());
}

// Deleting every child of a fragment root leaves a live, empty
// fragment that must keep evaluating (and stay mergeable/valid).
TEST(UpdateEdgeCaseTest, DeleteCanEmptyAFragment) {
  auto doc = xml::ParseXml("<r><s><a>t0</a><b/></s><c/></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  xml::Node* s_node = xml::FindFirstElement(set.fragment(0).root, "s");
  auto f = set.Split(0, s_node);
  ASSERT_TRUE(f.ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());

  auto session = Session::Create(&set, &*st);
  ASSERT_TRUE(session.ok());
  auto q = session->Prepare("[//s/a]");
  ASSERT_TRUE(q.ok());
  auto before = session->ExecuteIncremental(*q);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->answer);

  // Drain the fragment: delete both children of <s>.
  while (set.fragment(*f).root->first_child != nullptr) {
    ASSERT_TRUE(session
                    ->Apply(Delta::DeleteSubtree(
                        *f, set.fragment(*f).root->first_child))
                    .ok());
  }
  EXPECT_EQ(set.FragmentElements(*f), 1u);  // just <s> itself
  ASSERT_TRUE(set.Validate().ok());

  auto after = session->ExecuteIncremental(*q);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->answer);
  auto reports = RunAllAlgorithms(set, *st, q->query());
  ASSERT_TRUE(reports.ok());
  for (const RunReport& r : *reports) {
    EXPECT_FALSE(r.answer) << r.algorithm;
  }
  // The emptied fragment is still a regular fragment: merge works.
  EXPECT_TRUE(set.Merge(*f).ok());
  ASSERT_TRUE(set.Validate().ok());
}

// Deltas that would cross a fragment boundary are rejected atomically:
// rename/retext of a virtual node, deletion of the fragment root or of
// a subtree holding virtual nodes, and membership lies all fail with
// the document untouched.
TEST(UpdateEdgeCaseTest, BoundaryCrossingDeltasRejectedAtomically) {
  auto doc = xml::ParseXml("<r><w><s><a/></s></w></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  xml::Node* s_node = xml::FindFirstElement(set.fragment(0).root, "s");
  auto f = set.Split(0, s_node);
  ASSERT_TRUE(f.ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  xml::Node* virtual_node = frag::FindVirtualRef(set, 0, *f);
  ASSERT_NE(virtual_node, nullptr);
  xml::Node* w_node = xml::FindFirstElement(set.fragment(0).root, "w");

  // Rename / retext a virtual node: its label and content belong to
  // the sub-fragment at another site.
  auto renamed = frag::ApplyDelta(
      &set, Delta::RenameLabel(0, virtual_node, "x"));
  ASSERT_FALSE(renamed.ok());
  EXPECT_EQ(renamed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      frag::ApplyDelta(&set, Delta::Retext(0, virtual_node, "x")).ok());

  // Delete the subtree holding the virtual node: would orphan F1.
  auto del_w = frag::ApplyDelta(&set, Delta::DeleteSubtree(0, w_node));
  ASSERT_FALSE(del_w.ok());
  EXPECT_EQ(del_w.status().code(), StatusCode::kFailedPrecondition);

  // Delete the fragment root: that is a merge, not a content delta.
  EXPECT_FALSE(
      frag::ApplyDelta(&set, Delta::DeleteSubtree(0, set.fragment(0).root))
          .ok());

  // Membership lie: the node lives in fragment 0, not F1.
  EXPECT_FALSE(
      frag::ApplyDelta(&set, Delta::RenameLabel(*f, w_node, "x")).ok());

  // Everything above was rejected before mutation.
  ASSERT_TRUE(set.Validate().ok());
  auto q = xpath::CompileQuery("[//s/a]");
  ASSERT_TRUE(q.ok());
  auto report = RunParBoX(set, *st, *q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->answer);
}

// Regression: a version chain thousands of sites deep runs every DOM
// walk end-to-end — generate, serialize, reparse, split at each site,
// partially evaluate. These walks used to recurse per nesting level
// and blew the call stack around a few thousand levels; they iterate
// with explicit stacks now, so depth is bounded by memory only.
TEST(DeepChainTest, FiveThousandLevelChainSurvivesFullPipeline) {
  constexpr int kDepth = 6000;
  xml::Document doc =
      xmark::GenerateChainDocument(kDepth, /*bytes_per_site=*/48, /*seed=*/5);

  const std::string text = xml::WriteXml(doc.root());
  auto reparsed = xml::ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_TRUE(xml::TreeEquals(doc.root(), reparsed->root()));

  auto set = FragmentSet::FromDocument(std::move(doc));
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(frag::SplitAtAllLabeled(&*set, "site").ok());
  EXPECT_GE(set->live_count(), static_cast<size_t>(kDepth));
  auto st = SourceTree::Create(*set, frag::AssignRoundRobin(*set, 16));
  ASSERT_TRUE(st.ok());

  auto whole = set->Reassemble();
  ASSERT_TRUE(whole.ok());
  for (const char* query_text :
       {"[//site[marker = \"v5990\"]]", "[//site[marker = \"nope\"]]"}) {
    auto q = xpath::CompileQuery(query_text);
    ASSERT_TRUE(q.ok());
    auto report = RunParBoX(*set, *st, *q);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->answer, *xpath::EvalBoolean(*whole->root(), *q))
        << query_text;
  }
}

}  // namespace
}  // namespace parbox::core
