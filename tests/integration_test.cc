// Cross-cutting integration tests: algorithm x placement-strategy
// sweeps, adversarial fragmentation shapes, negation across fragment
// boundaries, and the fine-grained stats surface.

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/session.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/parser.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::FragmentId;
using frag::FragmentSet;
using frag::SourceTree;

xpath::NormQuery Compile(std::string_view text) {
  auto q = xpath::CompileQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

FragmentSet SetFrom(std::string_view xml_text) {
  auto doc = xml::ParseXml(xml_text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  auto set = FragmentSet::FromDocument(std::move(*doc));
  EXPECT_TRUE(set.ok());
  return std::move(*set);
}

bool Oracle(const FragmentSet& set, const xpath::NormQuery& q) {
  auto whole = set.Reassemble();
  EXPECT_TRUE(whole.ok());
  auto result = xpath::EvalBoolean(*whole->root(), q);
  EXPECT_TRUE(result.ok());
  return *result;
}

// ---------- Placement strategies x algorithms ----------

enum class Placement { kOnePerFragment, kRoundRobin2, kRoundRobin3,
                       kAllOnOne };

std::vector<frag::SiteId> Place(const FragmentSet& set, Placement p) {
  switch (p) {
    case Placement::kOnePerFragment:
      return frag::AssignOneSitePerFragment(set);
    case Placement::kRoundRobin2:
      return frag::AssignRoundRobin(set, 2);
    case Placement::kRoundRobin3:
      return frag::AssignRoundRobin(set, 3);
    case Placement::kAllOnOne:
      return frag::AssignAllToOneSite(set);
  }
  return {};
}

class PlacementSweepTest
    : public ::testing::TestWithParam<std::tuple<Placement, uint64_t>> {};

TEST_P(PlacementSweepTest, AllAlgorithmsCorrectUnderEveryPlacement) {
  auto [placement, seed] = GetParam();
  Rng rng(seed + 41);
  xml::Document doc = xmark::GenerateRandomSmallDocument(120, &rng);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::RandomSplits(&set, 5, &rng).ok());
  auto st = SourceTree::Create(set, Place(set, placement));
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  for (int i = 0; i < 4; ++i) {
    auto ast = testutil::RandomQual(&rng, 3);
    xpath::NormQuery q = xpath::Normalize(*ast);
    bool expected = Oracle(set, q);
    auto reports = RunAllAlgorithms(set, *st, q);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    for (const RunReport& r : *reports) {
      EXPECT_EQ(r.answer, expected)
          << r.algorithm << " under placement "
          << static_cast<int>(placement) << " seed " << seed << " query "
          << xpath::ToString(*ast);
    }
    // The thread-pool backend must agree through the unified path.
    auto threaded_session = Session::Create(
        static_cast<const FragmentSet*>(&set), &*st,
        core::SessionOptions{.backend = "threads"});
    ASSERT_TRUE(threaded_session.ok());
    auto threaded_q = threaded_session->Prepare(&q);
    ASSERT_TRUE(threaded_q.ok());
    auto threaded = threaded_session->Execute(*threaded_q);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    EXPECT_EQ(threaded->answer, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementSweepTest,
    ::testing::Combine(::testing::Values(Placement::kOnePerFragment,
                                         Placement::kRoundRobin2,
                                         Placement::kRoundRobin3,
                                         Placement::kAllOnOne),
                       ::testing::Range<uint64_t>(0, 6)));

// ---------- Adversarial fragmentation shapes ----------

TEST(ShapeTest, FiftyFragmentChain) {
  // A pathological 50-deep fragment chain: every algorithm must still
  // agree, and ParBoX must still visit every site exactly once.
  xml::Document doc;
  xml::Node* cur = doc.NewElement("n");
  doc.set_root(cur);
  for (int i = 0; i < 50; ++i) {
    xml::Node* next = doc.NewElement("n");
    doc.AppendChild(cur, next);
    doc.AppendChild(cur, doc.NewElement("pad"));
    cur = next;
  }
  doc.AppendChild(cur, doc.NewElement("needle"));
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  // Split at every nested <n>: a 51-fragment chain.
  xml::Node* walk = set.fragment(0).root->first_child;
  FragmentId owner = 0;
  while (walk != nullptr) {
    if (walk->is_element() && walk->label() == "n") {
      auto id = set.Split(owner, walk);
      ASSERT_TRUE(id.ok());
      owner = *id;
      walk = set.fragment(owner).root->first_child;
    } else {
      walk = walk->next_sibling;
    }
  }
  ASSERT_EQ(set.live_count(), 51u);
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->max_depth(), 50);

  xpath::NormQuery q = Compile("[//needle]");
  bool expected = Oracle(set, q);
  EXPECT_TRUE(expected);
  auto reports = RunAllAlgorithms(set, *st, q);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  for (const RunReport& r : *reports) {
    EXPECT_EQ(r.answer, expected) << r.algorithm;
  }
  auto parbox = RunParBoX(set, *st, q);
  ASSERT_TRUE(parbox.ok());
  EXPECT_EQ(parbox->max_visits_per_site(), 1u);
}

TEST(ShapeTest, WideStarOfFortyFragments) {
  xml::Document doc = xmark::GenerateStarDocument(40, 600, 3);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
  ASSERT_EQ(set.live_count(), 41u);
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  auto q = xmark::MakeMarkerQuery("m39");
  ASSERT_TRUE(q.ok());
  auto parbox = RunParBoX(set, *st, *q);
  ASSERT_TRUE(parbox.ok());
  EXPECT_TRUE(parbox->answer);
  EXPECT_EQ(parbox->total_visits(), 41u);
  EXPECT_EQ(parbox->max_visits_per_site(), 1u);
}

TEST(ShapeTest, FragmentRootIsQueryTarget) {
  // The split point itself (fragment root) satisfies the step: the
  // virtual-node handoff must not lose the match.
  FragmentSet set = SetFrom("<r><a><b/></a></r>");
  auto f1 = set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a"));
  ASSERT_TRUE(f1.ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  for (const char* text : {"[a]", "[//a]", "[a/b]", "[//b]", "[*]"}) {
    xpath::NormQuery q = Compile(text);
    auto report = RunParBoX(set, *st, q);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->answer) << text;
  }
}

// ---------- Negation across fragment boundaries ----------

TEST(NegationTest, NotOverRemoteEvidence) {
  // not(//needle) where the needle sits two fragments deep: the
  // formula ¬(dv...) must resolve correctly through unification.
  FragmentSet set = SetFrom("<r><a><b><needle/></b></a></r>");
  auto f1 = set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a"));
  ASSERT_TRUE(f1.ok());
  auto f2 =
      set.Split(*f1, xml::FindFirstElement(set.fragment(*f1).root, "b"));
  ASSERT_TRUE(f2.ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());

  xpath::NormQuery positive = Compile("[//needle]");
  xpath::NormQuery negative = Compile("[not(//needle)]");
  xpath::NormQuery double_neg = Compile("[not(not(//needle))]");
  EXPECT_TRUE(RunParBoX(set, *st, positive)->answer);
  EXPECT_FALSE(RunParBoX(set, *st, negative)->answer);
  EXPECT_TRUE(RunParBoX(set, *st, double_neg)->answer);
}

TEST(NegationTest, MixedPolarityAcrossFragments) {
  FragmentSet set =
      SetFrom("<r><left><x/></left><right><y/></right></r>");
  ASSERT_TRUE(
      set.Split(0, xml::FindFirstElement(set.fragment(0).root, "left"))
          .ok());
  ASSERT_TRUE(
      set.Split(0, xml::FindFirstElement(set.fragment(0).root, "right"))
          .ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(RunParBoX(set, *st, Compile("[//x and not(//z)]"))->answer);
  EXPECT_FALSE(RunParBoX(set, *st, Compile("[//x and not(//y)]"))->answer);
  EXPECT_TRUE(
      RunParBoX(set, *st, Compile("[not(//x) or not(//z)]"))->answer);
}

// ---------- Stats surface ----------

TEST(StatsTest, ReportBreaksTrafficDownByKind) {
  auto scenario = testutil::MakeRandomScenario(4, 100, 4);
  xpath::NormQuery q = Compile("[//a]");
  auto parbox = RunParBoX(scenario.set, scenario.st, q);
  ASSERT_TRUE(parbox.ok());
  EXPECT_GT(parbox->stats.Get("net.query.bytes"), 0u);
  EXPECT_GT(parbox->stats.Get("net.triplet.bytes"), 0u);
  EXPECT_EQ(parbox->stats.Get("net.query.bytes") +
                parbox->stats.Get("net.triplet.bytes"),
            parbox->network_bytes);
  // The backend-specific event counter: simulator events, or executed
  // tasks on the thread pool.
  EXPECT_GT(parbox->stats.Get("sim.events") +
                parbox->stats.Get("exec.tasks"),
            0u);

  auto central = RunNaiveCentralized(scenario.set, scenario.st, q);
  ASSERT_TRUE(central.ok());
  EXPECT_GT(central->stats.Get("net.data.bytes"), 0u);
}

// ---------- Unicode and odd content ----------

TEST(ContentTest, UnicodeTextMatches) {
  FragmentSet set = SetFrom(
      "<r><name>S\xC3\xB8ren</name><city>M\xC3\xBCnchen</city></r>");
  auto st = SourceTree::Create(set, frag::AssignAllToOneSite(set));
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(
      RunParBoX(set, *st, Compile("[name = \"S\xC3\xB8ren\"]"))->answer);
  EXPECT_FALSE(
      RunParBoX(set, *st, Compile("[name = \"Soren\"]"))->answer);
}

TEST(ContentTest, EmptyAndWhitespaceText) {
  FragmentSet set = SetFrom("<r><a></a><b>  </b></r>");
  auto st = SourceTree::Create(set, frag::AssignAllToOneSite(set));
  ASSERT_TRUE(st.ok());
  // Whitespace-only text is skipped by the parser, so both are empty.
  EXPECT_TRUE(RunParBoX(set, *st, Compile("[a/text() = \"\"]"))->answer);
  EXPECT_TRUE(RunParBoX(set, *st, Compile("[b/text() = \"\"]"))->answer);
}

}  // namespace
}  // namespace parbox::core
