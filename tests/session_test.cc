// Session / PreparedQuery / EvaluatorRegistry tests: the compile-once /
// execute-many API (core/session.h) must be indistinguishable, run for
// run, from the legacy one-shot Run* entry points — and prepared
// handles must stay valid across arbitrary interleavings.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/evaluator.h"
#include "core/session.h"
#include "testutil.h"
#include "xmark/portfolio.h"
#include "xmark/queries.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::FragmentSet;
using frag::SourceTree;

struct Portfolio {
  FragmentSet set;
  SourceTree st;
};

Portfolio MakePortfolio() {
  auto set = xmark::BuildPortfolioFragments();
  EXPECT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  EXPECT_TRUE(st.ok());
  return Portfolio{std::move(*set), std::move(*st)};
}

xpath::NormQuery Compile(std::string_view text) {
  auto q = xpath::CompileQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

/// Everything a run measures except session-lifetime statistics
/// (formula.interned_nodes reflects the shared factory by design).
void ExpectReportsIdentical(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.total_compute_seconds, b.total_compute_seconds);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.visits_per_site, b.visits_per_site);
  EXPECT_EQ(a.eq_system_entries, b.eq_system_entries);
  EXPECT_EQ(a.stats.Get("sim.events"), b.stats.Get("sim.events"));
}

// ---------- Registry ----------

TEST(EvaluatorRegistryTest, AllSixAlgorithmsRegisteredInCanonicalOrder) {
  const std::vector<std::string> names =
      EvaluatorRegistry::Instance().Names();
  const std::vector<std::string> expected = {
      "central", "distributed", "parbox", "hybrid", "fulldist", "lazy"};
  EXPECT_EQ(names, expected);
}

TEST(EvaluatorRegistryTest, CreateReturnsWorkingEvaluator) {
  auto parbox = EvaluatorRegistry::Instance().Create("parbox");
  ASSERT_NE(parbox, nullptr);
  EXPECT_EQ(parbox->name(), "parbox");
  EXPECT_EQ(parbox->display_name(), "ParBoX");
  EXPECT_EQ(EvaluatorRegistry::Instance().Create("nope"), nullptr);
}

TEST(EvaluatorRegistryTest, UnknownNameErrorListsRegisteredNames) {
  auto result = EvaluatorRegistry::Instance().CreateOrError("warp-drive");
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("warp-drive"), std::string::npos);
  for (const std::string& name : EvaluatorRegistry::Instance().Names()) {
    EXPECT_NE(message.find(name), std::string::npos) << name;
  }
}

// ---------- Prepare-once / execute-many == fresh Run* ----------

TEST(SessionTest, ExecuteManyIsBitIdenticalToFreshRunsAllEvaluators) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "virtual-clock property; sim backend only";
  }
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);

  auto session = Session::Create(&p.set, &p.st);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto prepared = session->Prepare(&q);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  // Legacy one-shot references, fresh everything per call.
  auto reference = RunAllAlgorithms(p.set, p.st, q);
  ASSERT_TRUE(reference.ok());

  const std::vector<std::string> names =
      EvaluatorRegistry::Instance().Names();
  ASSERT_EQ(names.size(), reference->size());
  // Execute each evaluator several times on one long-lived session:
  // every repetition must reproduce the fresh run exactly.
  for (int repetition = 0; repetition < 3; ++repetition) {
    for (size_t i = 0; i < names.size(); ++i) {
      auto report = session->Execute(*prepared, {.evaluator = names[i]});
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ExpectReportsIdentical((*reference)[i], *report);
    }
  }
}

TEST(SessionTest, RandomScenariosMatchLegacyRunParBoX) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "virtual-clock property; sim backend only";
  }
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(seed, /*max_elements=*/60,
                                     /*splits=*/5);
    Rng rng(seed * 977);
    xpath::NormQuery q =
        xpath::Normalize(*testutil::RandomQual(&rng, 3));

    auto legacy = RunParBoX(scenario.set, scenario.st, q);
    ASSERT_TRUE(legacy.ok());

    auto session = Session::Create(&scenario.set, &scenario.st);
    ASSERT_TRUE(session.ok());
    auto prepared = session->Prepare(&q);
    ASSERT_TRUE(prepared.ok());
    for (int repetition = 0; repetition < 2; ++repetition) {
      auto report = session->Execute(*prepared);
      ASSERT_TRUE(report.ok());
      ExpectReportsIdentical(*legacy, *report);
    }
  }
}

// ---------- PreparedQuery lifetime across interleavings ----------

TEST(SessionTest, PreparedQueryStaysValidAcrossInterleavedExecutions) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "virtual-clock property; sim backend only";
  }
  Portfolio p = MakePortfolio();
  auto session = Session::Create(&p.set, &p.st);
  ASSERT_TRUE(session.ok());

  auto first = session->Prepare(xmark::kYhooQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto baseline = session->Execute(*first);
  ASSERT_TRUE(baseline.ok());

  // Interleave executions of other queries — across several evaluators
  // — between uses of `first`. The old handle must keep producing the
  // identical report.
  const char* others[] = {xmark::kGoogSellQuery, xmark::kMerillQuery,
                          "[//market[name = \"NASDAQ\"]]",
                          "[not(//stock[code = \"MSFT\"])]"};
  std::vector<PreparedQuery> other_handles;
  for (const char* text : others) {
    auto prepared = session->Prepare(text);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    other_handles.push_back(std::move(*prepared));
  }
  for (const std::string& name : EvaluatorRegistry::Instance().Names()) {
    for (const PreparedQuery& other : other_handles) {
      auto report = session->Execute(other, {.evaluator = name});
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
    auto again = session->Execute(*first);
    ASSERT_TRUE(again.ok());
    ExpectReportsIdentical(*baseline, *again);
  }
}

TEST(SessionTest, PreparedTextAndFingerprintExposed) {
  Portfolio p = MakePortfolio();
  auto session = Session::Create(&p.set, &p.st);
  ASSERT_TRUE(session.ok());
  auto prepared = session->Prepare(xmark::kYhooQuery);
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->valid());
  EXPECT_EQ(prepared->text(), xmark::kYhooQuery);
  EXPECT_GT(prepared->query_bytes(), 0u);
  // Same normal form => same fingerprint, from text or from a QList.
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  auto prepared2 = session->Prepare(std::move(q));
  ASSERT_TRUE(prepared2.ok());
  EXPECT_EQ(prepared->fingerprint(), prepared2->fingerprint());
}

// ---------- Cross-session and error handling ----------

TEST(SessionTest, RejectsHandlesFromOtherSessions) {
  Portfolio p = MakePortfolio();
  auto session_a = Session::Create(&p.set, &p.st);
  auto session_b = Session::Create(&p.set, &p.st);
  ASSERT_TRUE(session_a.ok());
  ASSERT_TRUE(session_b.ok());
  auto prepared = session_a->Prepare(xmark::kYhooQuery);
  ASSERT_TRUE(prepared.ok());
  auto cross = session_b->Execute(*prepared);
  ASSERT_FALSE(cross.ok());
  EXPECT_NE(cross.status().message().find("different Session"),
            std::string::npos);
  // An empty handle is rejected too.
  EXPECT_FALSE(session_a->Execute(PreparedQuery()).ok());
}

TEST(SessionTest, ExecuteUnknownEvaluatorListsNames) {
  Portfolio p = MakePortfolio();
  auto session = Session::Create(&p.set, &p.st);
  ASSERT_TRUE(session.ok());
  auto prepared = session->Prepare(xmark::kYhooQuery);
  ASSERT_TRUE(prepared.ok());
  auto report = session->Execute(*prepared, {.evaluator = "bogus"});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("parbox"), std::string::npos);
}

TEST(SessionTest, ParseErrorsCarryQueryTextAndByteOffset) {
  Portfolio p = MakePortfolio();
  auto session = Session::Create(&p.set, &p.st);
  ASSERT_TRUE(session.ok());
  auto prepared = session->Prepare("[//stock[code = ]]");
  ASSERT_FALSE(prepared.ok());
  const std::string& message = prepared.status().message();
  // The offending query and the failing byte are both named.
  EXPECT_NE(message.find("[//stock[code = ]]"), std::string::npos)
      << message;
  EXPECT_NE(message.find("byte"), std::string::npos) << message;
  EXPECT_NE(message.find("offset"), std::string::npos) << message;
}

TEST(SessionTest, OwningSessionKeepsDeploymentAlive) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok());
  auto session = Session::Create(std::move(*set), std::move(*st));
  ASSERT_TRUE(session.ok());
  // The session owns set/st now; handles reference session state only.
  auto prepared = session->Prepare(xmark::kYhooQuery);
  ASSERT_TRUE(prepared.ok());
  auto report = session->Execute(*prepared);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->answer);
}

TEST(SessionTest, PlanIsSharedAndInvalidatable) {
  Portfolio p = MakePortfolio();
  auto session = Session::Create(&p.set, &p.st);
  ASSERT_TRUE(session.ok());
  auto plan_a = session->plan();
  auto plan_b = session->plan();
  EXPECT_EQ(plan_a.get(), plan_b.get());  // cached
  EXPECT_FALSE(plan_a->site_fragments.empty());
  session->InvalidatePlan();
  auto plan_c = session->plan();
  EXPECT_NE(plan_a.get(), plan_c.get());  // recomputed
  // The old snapshot stays alive and intact for in-flight holders.
  EXPECT_EQ(plan_a->site_fragments.size(), plan_c->site_fragments.size());
}

}  // namespace
}  // namespace parbox::core
