#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/algorithms.h"
#include "core/view.h"
#include "fragment/delta.h"
#include "fragment/strategies.h"
#include "service/query_service.h"
#include "xml/parser.h"
#include "service/workload.h"
#include "testutil.h"
#include "xmark/portfolio.h"
#include "xmark/queries.h"
#include "xpath/fingerprint.h"
#include "xpath/normalize.h"

namespace parbox {
namespace {

using service::ClosedLoopOptions;
using service::QueryService;
using service::ServiceOptions;
using service::ServiceReport;
using service::Workload;
using service::WorkloadSpec;

xpath::NormQuery Compile(const char* text) {
  auto q = xpath::CompileQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

// ---- Fingerprints ------------------------------------------------------

TEST(FingerprintTest, SameTextSameFingerprint) {
  xpath::NormQuery a = Compile("[//stock[code = \"GOOG\"]]");
  xpath::NormQuery b = Compile("[//stock[code = \"GOOG\"]]");
  EXPECT_EQ(xpath::CanonicalQueryBytes(a), xpath::CanonicalQueryBytes(b));
  EXPECT_EQ(xpath::FingerprintQuery(a), xpath::FingerprintQuery(b));
}

TEST(FingerprintTest, DistinctQueriesDiffer) {
  const char* texts[] = {"[//a]", "[//b]", "[//a[b]]", "[/a/b]",
                         "[//a and //b]"};
  std::vector<xpath::QueryFingerprint> fps;
  for (const char* text : texts) {
    fps.push_back(xpath::FingerprintQuery(Compile(text)));
  }
  for (size_t i = 0; i < fps.size(); ++i) {
    for (size_t j = i + 1; j < fps.size(); ++j) {
      EXPECT_NE(fps[i], fps[j]) << texts[i] << " vs " << texts[j];
    }
  }
}

TEST(FingerprintTest, ToStringIsHex) {
  xpath::QueryFingerprint fp = xpath::FingerprintQuery(Compile("[//a]"));
  EXPECT_EQ(fp.ToString().size(), 32u);
}

// ---- Distribution ------------------------------------------------------

TEST(DistributionTest, Percentiles) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.Add(i);
  EXPECT_DOUBLE_EQ(d.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(d.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(d.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(d.mean(), 50.5);
  EXPECT_EQ(d.count(), 100u);
}

// ---- Service vs standalone ParBoX -------------------------------------

// Batched concurrent serving must answer exactly what a standalone
// RunParBoX answers, on adversarial random fragmentations.
TEST(QueryServiceTest, BatchedAnswersMatchSequentialParBoX) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(seed, 80, 5);
    Rng rng(seed * 977);

    std::vector<std::unique_ptr<xpath::QualExpr>> asts;
    for (int i = 0; i < 6; ++i) {
      asts.push_back(testutil::RandomQual(&rng, 3));
    }

    std::vector<bool> expected;
    for (const auto& ast : asts) {
      xpath::NormQuery q = xpath::Normalize(*ast);
      auto report = core::RunParBoX(scenario.set, scenario.st, q);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      expected.push_back(report->answer);
    }

    QueryService svc(&scenario.set, &scenario.st);
    for (const auto& ast : asts) {
      // Every submission twice: dedup must not change answers.
      ASSERT_TRUE(svc.Submit(xpath::Normalize(*ast), 0.0).ok());
      ASSERT_TRUE(svc.Submit(xpath::Normalize(*ast), 0.0).ok());
    }
    svc.Run();
    ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();
    ASSERT_EQ(svc.outcomes().size(), asts.size() * 2);
    for (const auto& outcome : svc.outcomes()) {
      EXPECT_EQ(outcome.answer, expected[outcome.query_id / 2])
          << "seed " << seed << " query " << outcome.query_id;
    }
  }
}

// ---- Batching ----------------------------------------------------------

TEST(QueryServiceTest, BatchSharesVisitsAndDedupsIdenticalQueries) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = frag::SourceTree::Create(*set,
                                     frag::AssignOneSitePerFragment(*set));
  ASSERT_TRUE(st.ok());

  QueryService svc(&*set, &*st);
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
  ASSERT_TRUE(svc.Submit(Compile(xmark::kGoogSellQuery), 0.0).ok());
  svc.Run();

  ServiceReport report = svc.BuildReport();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.rounds, 1u);               // one batch round
  EXPECT_EQ(report.unique_evaluations, 2u);   // YHOO evaluated once
  EXPECT_EQ(report.shared_evaluations, 1u);
  // One visit per site for the whole batch, ParBoX's per-query bound.
  for (uint64_t visits : svc.backend().visits()) {
    EXPECT_LE(visits, 1u);
  }
}

// ---- Result cache ------------------------------------------------------

TEST(QueryServiceTest, CacheHitAnswersWithoutSiteVisits) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = frag::SourceTree::Create(*set,
                                     frag::AssignOneSitePerFragment(*set));
  ASSERT_TRUE(st.ok());

  QueryService svc(&*set, &*st);
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 1u);
  const bool first_answer = svc.outcomes()[0].answer;
  const uint64_t bytes_before = svc.backend().traffic().total_bytes();
  std::vector<uint64_t> visits_before = svc.backend().visits();

  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), svc.now()).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 2u);
  const service::QueryOutcome& hit = svc.outcomes()[1];
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.answer, first_answer);
  // No site visited, nothing on the network.
  EXPECT_EQ(svc.backend().visits(), visits_before);
  EXPECT_EQ(svc.backend().traffic().total_bytes(), bytes_before);
  EXPECT_EQ(svc.BuildReport().cache_hits, 1u);
}

// A content update must invalidate exactly the cache entries whose
// triplet for the updated fragment changed — and leave the rest.
TEST(QueryServiceTest, ViewUpdateInvalidatesExactlyAffectedEntries) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  std::vector<frag::SiteId> sites = frag::AssignOneSitePerFragment(*set);
  xpath::NormQuery view_query = Compile(xmark::kYhooQuery);
  auto view = core::MaterializedView::Create(&*set, sites, &view_query);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  QueryService svc(&*set, &view->source_tree());
  ASSERT_TRUE(svc.AttachView(&*view).ok());

  // Cache two answers: one the update will affect, one it cannot.
  ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), 0.0).ok());
  ASSERT_TRUE(svc.Submit(Compile("[//broker]"), 0.0).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 2u);
  EXPECT_FALSE(svc.outcomes()[0].answer);  // no <zzz> anywhere
  EXPECT_TRUE(svc.outcomes()[1].answer);
  ASSERT_EQ(svc.cache_size(), 2u);

  // Insert <zzz> deep inside fragment F1 (not at the fragment root, so
  // the root triplet of unrelated queries is untouched).
  frag::FragmentId f1 = 1;
  xml::Node* parent = nullptr;
  for (xml::Node* c = set->fragment(f1).root->first_child; c != nullptr;
       c = c->next_sibling) {
    if (c->is_element()) {
      parent = c;
      break;
    }
  }
  ASSERT_NE(parent, nullptr);
  auto inserted = view->InsNode(f1, parent, "zzz");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  // Exactly the [//zzz] entry is gone.
  EXPECT_EQ(svc.cache_size(), 1u);
  EXPECT_EQ(svc.BuildReport().cache_invalidations, 1u);

  // Re-asking [//zzz] is a miss and sees the new document.
  ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), svc.now()).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 3u);
  EXPECT_FALSE(svc.outcomes()[2].cache_hit);
  EXPECT_TRUE(svc.outcomes()[2].answer);

  // [//broker] still answers from cache.
  ASSERT_TRUE(svc.Submit(Compile("[//broker]"), svc.now()).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 4u);
  EXPECT_TRUE(svc.outcomes()[3].cache_hit);
  EXPECT_TRUE(svc.outcomes()[3].answer);
}

// ---- Live updates through ApplyDelta -----------------------------------

// Exact invalidation at answer granularity: a delta evicts exactly the
// entries whose answer changed; entries whose triplet changed but
// whose answer stood are refreshed in place and keep serving hits.
TEST(QueryServiceTest, DeltaEvictsOnlyAnswerChangingEntries) {
  auto doc = xml::ParseXml(
      "<r><s><stock>GOOG</stock></s><t><broker/></t></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = frag::FragmentSet::FromDocument(std::move(*doc));
  frag::FragmentSet set = std::move(*set_result);
  xml::Node* s_node = xml::FindFirstElement(set.fragment(0).root, "s");
  xml::Node* t_node = xml::FindFirstElement(set.fragment(0).root, "t");
  auto f_s = set.Split(0, s_node);
  auto f_t = set.Split(0, t_node);
  ASSERT_TRUE(f_s.ok() && f_t.ok());
  auto st = frag::SourceTree::Create(set,
                                     frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());

  QueryService svc(&set, &*st);
  ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), 0.0).ok());      // false
  ASSERT_TRUE(svc.Submit(Compile("[//stock]"), 0.0).ok());    // true
  ASSERT_TRUE(svc.Submit(Compile("[//broker]"), 0.0).ok());   // true
  svc.Run();
  ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();
  ASSERT_EQ(svc.cache_size(), 3u);

  // Delta 1 flips [//zzz] only: exactly that entry goes.
  auto applied =
      svc.ApplyDelta(frag::Delta::InsertSubtree(*f_s, s_node, "zzz"));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(svc.cache_size(), 2u);
  EXPECT_EQ(svc.BuildReport().cache_invalidations, 1u);

  // Delta 2 adds a second <stock> where there was none: the triplet
  // of f_t under [//stock] changes, the answer does not — the entry
  // must be refreshed, not evicted.
  ASSERT_TRUE(
      svc.ApplyDelta(frag::Delta::InsertSubtree(*f_t, t_node, "stock"))
          .ok());
  EXPECT_EQ(svc.cache_size(), 2u);
  EXPECT_EQ(svc.BuildReport().cache_invalidations, 1u);
  EXPECT_GE(svc.BuildReport().cache_refreshes, 1u);

  // [//stock] and [//broker] still answer from cache, correctly;
  // [//zzz] re-evaluates against the updated document.
  ASSERT_TRUE(svc.Submit(Compile("[//stock]"), svc.now()).ok());
  ASSERT_TRUE(svc.Submit(Compile("[//broker]"), svc.now()).ok());
  ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), svc.now()).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 6u);
  EXPECT_TRUE(svc.outcomes()[3].cache_hit);
  EXPECT_TRUE(svc.outcomes()[3].answer);
  EXPECT_TRUE(svc.outcomes()[4].cache_hit);
  EXPECT_TRUE(svc.outcomes()[4].answer);
  EXPECT_FALSE(svc.outcomes()[5].cache_hit);
  EXPECT_TRUE(svc.outcomes()[5].answer);

  // Every answer the service ever gave matches a fresh ParBoX run on
  // the document state it answered for (spot-check the final state).
  auto fresh = core::RunParBoX(set, *st, Compile("[//zzz]"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->answer);
}

// Reads interleaved with updates: deltas applied from completion
// callbacks and mid-round (while site work is in flight) must never
// let the cache serve a stale answer.
TEST(QueryServiceTest, ConcurrentReadsInterleavedWithApply) {
  auto doc = xml::ParseXml("<r><s><a>t0</a></s><t><b/></t></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = frag::FragmentSet::FromDocument(std::move(*doc));
  frag::FragmentSet set = std::move(*set_result);
  xml::Node* s_node = xml::FindFirstElement(set.fragment(0).root, "s");
  auto f_s = set.Split(0, s_node);
  ASSERT_TRUE(f_s.ok());
  auto st = frag::SourceTree::Create(set,
                                     frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());

  QueryService svc(&set, &*st);

  // A delta lands mid-round, after the sites evaluated [//zzz] (both
  // site visits happen by ~3.1e-4 on the default network) but before
  // the coordinator composes: the racing round's pre-update result
  // must not enter the cache (epoch guard), and a submission arriving
  // *after* the delta must not ride the stale in-flight round.
  ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), 0.0).ok());
  bool mid_round_applied = false;
  svc.backend().ScheduleAt(3.5e-4, [&] {
    auto applied =
        svc.ApplyDelta(frag::Delta::InsertSubtree(*f_s, s_node, "zzz"));
    EXPECT_TRUE(applied.ok()) << applied.status().ToString();
    mid_round_applied = true;
  });
  svc.backend().ScheduleAt(3.6e-4, [&] {
    ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), svc.now()).ok());
  });
  svc.Run();
  ASSERT_TRUE(mid_round_applied);
  ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();
  ASSERT_EQ(svc.outcomes().size(), 2u);
  // On the sim's deterministic clock the racing read provably
  // evaluated before the delta and answered false. On a real-time
  // backend the race is genuine — the in-flight read may land on
  // either side of the update (the documented contract) — so only the
  // sim pins its answer. Either way the post-delta reader must see
  // the insert, not the stale round.
  if (testutil::DefaultBackendIsSim()) {
    EXPECT_FALSE(svc.outcomes()[0].answer);
  }
  EXPECT_TRUE(svc.outcomes()[1].answer);
  EXPECT_FALSE(svc.outcomes()[1].cache_hit);

  // The cache, too, answers the post-update truth from here on.
  ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), svc.now()).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 3u);
  EXPECT_TRUE(svc.outcomes()[2].answer);

  // Updates from completion callbacks: each completion applies a delta
  // flipping the answer, then resubmits; every resubmission must see
  // the flip.
  int flips = 0;
  xml::Node* zzz_node = nullptr;
  std::function<void(const service::QueryOutcome&)> flip_loop =
      [&](const service::QueryOutcome& outcome) {
        if (flips >= 4) return;
        ++flips;
        if (outcome.answer) {
          zzz_node =
              xml::FindFirstElement(set.fragment(*f_s).root, "zzz");
          ASSERT_NE(zzz_node, nullptr);
          ASSERT_TRUE(
              svc.ApplyDelta(frag::Delta::DeleteSubtree(*f_s, zzz_node))
                  .ok());
        } else {
          ASSERT_TRUE(
              svc.ApplyDelta(
                     frag::Delta::InsertSubtree(*f_s, s_node, "zzz"))
                  .ok());
        }
        ASSERT_TRUE(
            svc.Submit(Compile("[//zzz]"), svc.now(), flip_loop).ok());
      };
  ASSERT_TRUE(svc.Submit(Compile("[//zzz]"), svc.now(), flip_loop).ok());
  svc.Run();
  ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();

  // Each outcome alternates with the flips; the last one reflects the
  // final document state, and a fresh ParBoX run agrees.
  ASSERT_EQ(svc.outcomes().size(), 3u + 5u);
  const bool final_answer = svc.outcomes().back().answer;
  auto fresh = core::RunParBoX(set, *st, Compile("[//zzz]"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->answer, final_answer);
  for (size_t i = 3; i + 1 < svc.outcomes().size(); ++i) {
    EXPECT_NE(svc.outcomes()[i].answer, svc.outcomes()[i + 1].answer)
        << "outcome " << i << " did not observe the interleaved flip";
  }
}

// A service built over a const deployment is read-only: ApplyDelta
// reports FailedPrecondition instead of mutating.
TEST(QueryServiceTest, ConstServiceRejectsApplyDelta) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = frag::SourceTree::Create(*set,
                                     frag::AssignOneSitePerFragment(*set));
  ASSERT_TRUE(st.ok());
  const frag::FragmentSet* read_only = &*set;
  QueryService svc(read_only, &*st);
  auto applied = svc.ApplyDelta(frag::Delta::Retext(
      set->root_fragment(), set->fragment(set->root_fragment()).root,
      "x"));
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

// ---- Workload drivers --------------------------------------------------

TEST(WorkloadTest, ClosedLoopServesEverythingAndMatchesParBoX) {
  testutil::RandomScenario scenario = testutil::MakeRandomScenario(11, 150, 6);
  auto workload = Workload::Make(WorkloadSpec{.distinct_queries = 4});
  ASSERT_TRUE(workload.ok());

  // Standalone answers and sequential cost per portfolio entry.
  std::vector<bool> expected;
  std::vector<double> makespans;
  for (size_t i = 0; i < workload->size(); ++i) {
    auto q = workload->Materialize(i);
    ASSERT_TRUE(q.ok());
    auto report = core::RunParBoX(scenario.set, scenario.st, *q);
    ASSERT_TRUE(report.ok());
    expected.push_back(report->answer);
    makespans.push_back(report->makespan_seconds);
  }

  QueryService svc(&scenario.set, &scenario.st);
  ClosedLoopOptions options;
  options.num_queries = 24;
  options.concurrency = 8;
  options.seed = 7;
  std::vector<size_t> indices;
  auto report = RunClosedLoop(&svc, *workload, options, &indices);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->completed, 24u);
  ASSERT_EQ(indices.size(), 24u);

  // Outcomes arrive in completion order; query ids are submission
  // order, which is the order indices were drawn in.
  std::vector<bool> answer_by_id(indices.size());
  for (const auto& outcome : svc.outcomes()) {
    answer_by_id[outcome.query_id] = outcome.answer;
  }
  double sequential_seconds = 0.0;
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(answer_by_id[i], expected[indices[i]]) << "submission " << i;
    sequential_seconds += makespans[indices[i]];
  }
  // Serving concurrently must beat one-at-a-time ParBoX runs — on the
  // sim only, where makespans are virtual and deterministic. On proc
  // the socket round trips dwarf these micro-workloads; on threads
  // both sides are real wall clock on millisecond-scale runs, which
  // flakes under parallel ctest load (same reason LazyTest's makespan
  // comparison is sim-scoped).
  if (testutil::DefaultBackendIsSim()) {
    EXPECT_LT(report->makespan_seconds, sequential_seconds);
  }
  EXPECT_GT(report->cache_hits + report->shared_evaluations, 0u);
}

// ---- Multi-query fusion and cache subsumption --------------------------

/// A fusable/subsumable family over the random-document alphabet:
/// `variant` conjoins a label qualifier onto `base`'s chain, so
/// normalization makes base's FULL QList the first entries of
/// variant's (the conjunction's left operand is consed first) —
/// variant's cached equation system answers base by truncation.
struct ChainFamily {
  std::string base;
  std::string deeper;   ///< base + one qualifier
  std::string deepest;  ///< base + two qualifiers
};

ChainFamily RandomChainFamily(Rng* rng) {
  std::string chain;
  const int steps = 2 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < steps; ++i) {
    chain += (i == 0 ? "//" : "/") + testutil::RandomLabel(rng);
  }
  const std::string q1 = " and label() = " + testutil::RandomLabel(rng);
  const std::string q2 = " and label() = " + testutil::RandomLabel(rng);
  return ChainFamily{"[" + chain + "]", "[" + chain + q1 + "]",
                     "[" + chain + q1 + q2 + "]"};
}

TEST(QueryServiceTest, SubsumptionAnswersWithoutSiteVisits) {
  testutil::RandomScenario scenario =
      testutil::MakeRandomScenario(41, 120, 5);
  Rng rng(41);
  ChainFamily family = RandomChainFamily(&rng);
  auto expected = core::RunParBoX(scenario.set, scenario.st,
                                  Compile(family.base.c_str()));
  ASSERT_TRUE(expected.ok());

  QueryService svc(&scenario.set, &scenario.st);
  // Cache the longer query the normal way (one round).
  ASSERT_TRUE(svc.Submit(Compile(family.deeper.c_str()), 0.0).ok());
  svc.Run();
  ASSERT_EQ(svc.outcomes().size(), 1u);

  const uint64_t bytes_before = svc.backend().traffic().total_bytes();
  const std::vector<uint64_t> visits_before = svc.backend().visits();
  ASSERT_TRUE(svc.Submit(Compile(family.base.c_str()), svc.now()).ok());
  svc.Run();
  ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();
  ASSERT_EQ(svc.outcomes().size(), 2u);
  const service::QueryOutcome& hit = svc.outcomes()[1];
  // Answered by re-solving the cached entry's truncated system: a
  // cache hit of the subsumption kind, zero site visits, nothing on
  // the network — and the exact standalone answer.
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.subsumption_hit);
  EXPECT_EQ(hit.answer, expected->answer);
  EXPECT_EQ(svc.backend().visits(), visits_before);
  EXPECT_EQ(svc.backend().traffic().total_bytes(), bytes_before);
  ServiceReport report = svc.BuildReport();
  EXPECT_EQ(report.subsumption_hits, 1u);
  EXPECT_EQ(report.cache_hits, 1u);
  // The subsumption answer is a first-class entry now: resubmitting
  // the base exact-hits it.
  ASSERT_TRUE(svc.Submit(Compile(family.base.c_str()), svc.now()).ok());
  svc.Run();
  EXPECT_TRUE(svc.outcomes()[2].cache_hit);
  EXPECT_FALSE(svc.outcomes()[2].subsumption_hit);
}

TEST(QueryServiceTest, SubsumptionDisabledEvaluatesNormally) {
  testutil::RandomScenario scenario =
      testutil::MakeRandomScenario(41, 120, 5);
  Rng rng(41);
  ChainFamily family = RandomChainFamily(&rng);

  ServiceOptions options;
  options.enable_subsumption = false;
  QueryService svc(&scenario.set, &scenario.st, options);
  ASSERT_TRUE(svc.Submit(Compile(family.deeper.c_str()), 0.0).ok());
  svc.Run();
  const std::vector<uint64_t> visits_before = svc.backend().visits();
  ASSERT_TRUE(svc.Submit(Compile(family.base.c_str()), svc.now()).ok());
  svc.Run();
  ASSERT_TRUE(svc.status().ok());
  // Ablation: the prefix query runs a real round.
  EXPECT_FALSE(svc.outcomes()[1].cache_hit);
  EXPECT_FALSE(svc.outcomes()[1].subsumption_hit);
  EXPECT_NE(svc.backend().visits(), visits_before);
  EXPECT_EQ(svc.BuildReport().subsumption_hits, 0u);

  auto expected = core::RunParBoX(scenario.set, scenario.st,
                                  Compile(family.base.c_str()));
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(svc.outcomes()[1].answer, expected->answer);
}

// Property: subsumption-served answers equal a fresh standalone
// RunParBoX — across random scenarios, chained subsumption (deepest
// cached, then each prefix level served by truncation), and document
// deltas maintaining the truncation-derived entries.
TEST(QueryServiceTest, SubsumptionPropertyMatchesFreshParBoX) {
  const int trials = 8 * testutil::TrialMultiplier();
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = 5000 + trial * 13;
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(seed, 120, 5);
    Rng rng(seed * 31 + 7);
    ChainFamily family = RandomChainFamily(&rng);

    QueryService svc(&scenario.set, &scenario.st);
    ASSERT_TRUE(svc.Submit(Compile(family.deepest.c_str()), 0.0).ok());
    svc.Run();

    // Both shorter levels must be served by subsumption, correctly.
    for (const std::string& text : {family.deeper, family.base}) {
      auto expected =
          core::RunParBoX(scenario.set, scenario.st, Compile(text.c_str()));
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(svc.Submit(Compile(text.c_str()), svc.now()).ok());
      svc.Run();
      ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();
      const service::QueryOutcome& out = svc.outcomes().back();
      EXPECT_TRUE(out.subsumption_hit) << "seed " << seed << " " << text;
      EXPECT_EQ(out.answer, expected->answer)
          << "seed " << seed << " " << text;
    }

    // Mutate the document: Sec. 5 maintenance must keep (or evict)
    // the truncation-derived entries so answers stay fresh.
    for (int d = 0; d < 3; ++d) {
      ASSERT_TRUE(
          svc.ApplyDelta(testutil::RandomDelta(&scenario.set, &rng)).ok());
    }
    for (const std::string& text :
         {family.base, family.deeper, family.deepest}) {
      auto expected =
          core::RunParBoX(scenario.set, scenario.st, Compile(text.c_str()));
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(svc.Submit(Compile(text.c_str()), svc.now()).ok());
      svc.Run();
      ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();
      EXPECT_EQ(svc.outcomes().back().answer, expected->answer)
          << "seed " << seed << " post-delta " << text;
    }
  }
}

// Fused cache maintenance: a delta's re-evaluation cost scales with
// touched fragments (one fused walk each), not with cache size.
TEST(QueryServiceTest, MaintenanceOpsScaleWithFragmentsNotCacheSize) {
  auto populate = [](QueryService* svc, int entries) {
    for (int v = 0; v < entries; ++v) {
      // One family: shared 8-step chain, divergent qualifiers.
      auto q = xmark::MakeFamilyQuery(8, v);
      ASSERT_TRUE(q.ok());
      ASSERT_TRUE(svc->Submit(std::move(*q), svc->now()).ok());
    }
    svc->Run();
  };

  // Two identical documents; only the cache population differs.
  testutil::RandomScenario big = testutil::MakeRandomScenario(77, 150, 5);
  testutil::RandomScenario small = testutil::MakeRandomScenario(77, 150, 5);
  QueryService svc_big(&big.set, &big.st);
  QueryService svc_small(&small.set, &small.st);
  populate(&svc_big, 12);
  populate(&svc_small, 2);
  ASSERT_EQ(svc_big.cache_size(), 12u);
  ASSERT_EQ(svc_small.cache_size(), 2u);

  // Identical deltas (same rng seed over identical sets).
  Rng rng_big(99), rng_small(99);
  const uint64_t ops_big0 = svc_big.BuildReport().total_ops;
  const uint64_t ops_small0 = svc_small.BuildReport().total_ops;
  const uint64_t walks_big0 = svc_big.BuildReport().fused_walks;
  ASSERT_TRUE(
      svc_big.ApplyDelta(testutil::RandomDelta(&big.set, &rng_big)).ok());
  ASSERT_TRUE(
      svc_small.ApplyDelta(testutil::RandomDelta(&small.set, &rng_small))
          .ok());
  const uint64_t ops_big = svc_big.BuildReport().total_ops - ops_big0;
  const uint64_t ops_small =
      svc_small.BuildReport().total_ops - ops_small0;
  // One fused walk refreshed the whole cache for the one touched
  // fragment...
  EXPECT_EQ(svc_big.BuildReport().fused_walks - walks_big0, 1u);
  // ...so a 6x bigger cache costs well under 3x the eval ops (the
  // shared chain prefix is walked once; only qualifiers multiply).
  // Without fusion the ratio would be ~6x.
  ASSERT_GT(ops_small, 0u);
  EXPECT_LT(static_cast<double>(ops_big) / static_cast<double>(ops_small),
            3.0);
}

// Ablation: fusion off must change eval-op counts only — answers,
// visits, and wire traffic are bit-identical (the fused kernel is
// id-exact, and items enter the reply parcel in the same order).
TEST(QueryServiceTest, FusionAblationIdenticalAnswersVisitsAndBytes) {
  for (uint64_t seed : {3u, 9u}) {
    testutil::RandomScenario a = testutil::MakeRandomScenario(seed, 120, 5);
    testutil::RandomScenario b = testutil::MakeRandomScenario(seed, 120, 5);
    ServiceOptions fused_on;
    ServiceOptions fused_off;
    fused_off.enable_fusion = false;
    QueryService svc_on(&a.set, &a.st, fused_on);
    QueryService svc_off(&b.set, &b.st, fused_off);

    Rng rng(seed * 5 + 1);
    ChainFamily family = RandomChainFamily(&rng);
    for (QueryService* svc : {&svc_on, &svc_off}) {
      // One burst round of fusable queries plus an unrelated one.
      ASSERT_TRUE(svc->Submit(Compile(family.base.c_str()), 0.0).ok());
      ASSERT_TRUE(svc->Submit(Compile(family.deeper.c_str()), 0.0).ok());
      ASSERT_TRUE(svc->Submit(Compile(family.deepest.c_str()), 0.0).ok());
      ASSERT_TRUE(svc->Submit(Compile("[not(//a[b])]"), 0.0).ok());
      svc->Run();
      ASSERT_TRUE(svc->status().ok()) << svc->status().ToString();
    }

    ASSERT_EQ(svc_on.outcomes().size(), svc_off.outcomes().size());
    for (size_t i = 0; i < svc_on.outcomes().size(); ++i) {
      EXPECT_EQ(svc_on.outcomes()[i].answer, svc_off.outcomes()[i].answer)
          << "seed " << seed << " query " << i;
    }
    EXPECT_EQ(svc_on.backend().visits(), svc_off.backend().visits());
    EXPECT_EQ(svc_on.backend().traffic().total_bytes(),
              svc_off.backend().traffic().total_bytes());
    ServiceReport on = svc_on.BuildReport();
    ServiceReport off = svc_off.BuildReport();
    EXPECT_GT(on.fused_walks, 0u);
    EXPECT_EQ(off.fused_walks, 0u);
    EXPECT_GT(on.cse_shared_exprs, 0u);
    EXPECT_LT(on.total_ops, off.total_ops) << "seed " << seed;
  }
}

TEST(WorkloadTest, FamilyPortfolioFusesAndMatchesParBoX) {
  testutil::RandomScenario scenario =
      testutil::MakeRandomScenario(19, 150, 6);
  auto workload = Workload::Make(WorkloadSpec{
      .distinct_queries = 8, .family_variants = 4, .family_chain_steps = 3});
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  std::vector<bool> expected;
  for (size_t i = 0; i < workload->size(); ++i) {
    auto q = workload->Materialize(i);
    ASSERT_TRUE(q.ok());
    auto report = core::RunParBoX(scenario.set, scenario.st, *q);
    ASSERT_TRUE(report.ok());
    expected.push_back(report->answer);
  }

  QueryService svc(&scenario.set, &scenario.st);
  ClosedLoopOptions options;
  options.num_queries = 32;
  options.concurrency = 16;
  options.seed = 5;
  std::vector<size_t> indices;
  auto report = RunClosedLoop(&svc, *workload, options, &indices);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->completed, 32u);
  for (const auto& outcome : svc.outcomes()) {
    EXPECT_EQ(outcome.answer, expected[indices[outcome.query_id]])
        << "submission " << outcome.query_id;
  }
  // Family batches actually fuse: walks ran and prefix entries were
  // shared across lanes.
  EXPECT_GT(report->fused_walks, 0u);
  EXPECT_GT(report->cse_shared_exprs, 0u);
  EXPECT_GT(report->batch_width.count(), 0u);
}

TEST(WorkloadTest, OpenLoopPoissonArrivalsComplete) {
  testutil::RandomScenario scenario = testutil::MakeRandomScenario(3, 100, 4);
  auto workload = Workload::Make(WorkloadSpec{.distinct_queries = 3});
  ASSERT_TRUE(workload.ok());

  QueryService svc(&scenario.set, &scenario.st);
  service::OpenLoopOptions options;
  options.num_queries = 16;
  options.arrival_rate_qps = 2000.0;
  auto report = RunOpenLoop(&svc, *workload, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->completed, 16u);
  EXPECT_EQ(report->latency.count(), 16u);
  EXPECT_GT(report->throughput_qps, 0.0);
  EXPECT_GE(report->latency.Percentile(99),
            report->latency.Percentile(50));
}

}  // namespace
}  // namespace parbox
