#include <gtest/gtest.h>

#include "core/view.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xmark/portfolio.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::FragmentId;
using frag::FragmentSet;

struct ViewFixture {
  FragmentSet set;
  xpath::NormQuery query;
};

ViewFixture MakePortfolioFixture(std::string_view query_text) {
  auto set = xmark::BuildPortfolioFragments();
  EXPECT_TRUE(set.ok());
  auto q = xpath::CompileQuery(query_text);
  EXPECT_TRUE(q.ok());
  return ViewFixture{std::move(*set), std::move(*q)};
}

TEST(ViewTest, MaterializesInitialAnswer) {
  ViewFixture fx = MakePortfolioFixture(xmark::kYhooQuery);
  auto view =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->answer());
}

TEST(ViewTest, InsNodeFlipsAnswer) {
  // Query for a stock that does not exist yet; insert it; refresh.
  ViewFixture fx = MakePortfolioFixture("[//stock[code = \"MSFT\"]]");
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  ASSERT_TRUE(view_result.ok());
  MaterializedView view = std::move(*view_result);
  EXPECT_FALSE(view.answer());

  // insNode a <stock><code>MSFT</code></stock> under F3's market.
  xml::Node* market = fx.set.fragment(3).root;
  auto stock = view.InsNode(3, market, "stock");
  ASSERT_TRUE(stock.ok());
  auto code = view.InsNode(3, *stock, "code", "MSFT");
  ASSERT_TRUE(code.ok());

  auto report = view.Refresh(3);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(view.answer());
  EXPECT_EQ(report->algorithm, "ViewRefresh[changed]");
  EXPECT_EQ(*view.RecomputeFromScratch(), view.answer());
}

TEST(ViewTest, DelNodeFlipsAnswerBack) {
  ViewFixture fx = MakePortfolioFixture("[//stock[code = \"IBM\"]]");
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  EXPECT_TRUE(view.answer());

  // IBM lives in F0 (the NYSE market).
  xml::Node* ibm_code = nullptr;
  std::vector<xml::Node*> stack{fx.set.fragment(0).root};
  while (!stack.empty()) {
    xml::Node* n = stack.back();
    stack.pop_back();
    if (n->is_element() && n->label() == "stock") {
      if (xml::FindFirstElement(n, "code") != nullptr &&
          xml::DirectTextEquals(*xml::FindFirstElement(n, "code"), "IBM")) {
        ibm_code = n;
      }
    }
    for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  ASSERT_NE(ibm_code, nullptr);
  ASSERT_TRUE(view.DelNode(0, ibm_code).ok());
  auto report = view.Refresh(0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(view.answer());
}

TEST(ViewTest, RefreshOnlyVisitsTheUpdatedFragmentsSite) {
  ViewFixture fx = MakePortfolioFixture(xmark::kYhooQuery);
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  auto stock = view.InsNode(3, fx.set.fragment(3).root, "stock");
  ASSERT_TRUE(stock.ok());
  auto report = view.Refresh(3);
  ASSERT_TRUE(report.ok());
  // Fragment 3 lives at site 2; sites 0 (the view site) and 1 are not
  // visited for fragment work.
  EXPECT_EQ(report->visits_per_site, (std::vector<uint64_t>{0, 0, 1}));
}

TEST(ViewTest, IrrelevantUpdateKeepsTripletAndSkipsResolve) {
  ViewFixture fx = MakePortfolioFixture(xmark::kYhooQuery);
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  // Inserting an unrelated element does not change any sub-query value
  // at F3's root.
  auto node = view.InsNode(3, fx.set.fragment(3).root, "unrelated");
  ASSERT_TRUE(node.ok());
  auto report = view.Refresh(3);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "ViewRefresh[unchanged]");
  EXPECT_TRUE(view.answer());
}

TEST(ViewTest, RefreshTrafficIndependentOfUpdateSize) {
  ViewFixture fx = MakePortfolioFixture(xmark::kYhooQuery);
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  // Small update.
  auto n1 = view.InsNode(3, fx.set.fragment(3).root, "x");
  ASSERT_TRUE(n1.ok());
  auto small = view.Refresh(3);
  ASSERT_TRUE(small.ok());
  // Large update: 200 inserted nodes.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(view.InsNode(3, fx.set.fragment(3).root, "y").ok());
  }
  auto large = view.Refresh(3);
  ASSERT_TRUE(large.ok());
  // Traffic (one triplet either way) does not scale with the update.
  EXPECT_LT(large->network_bytes, 2 * small->network_bytes + 64);
}

TEST(ViewTest, DelNodeGuards) {
  ViewFixture fx = MakePortfolioFixture(xmark::kYhooQuery);
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  // Cannot delete a fragment root.
  EXPECT_FALSE(view.DelNode(1, fx.set.fragment(1).root).ok());
  // Cannot delete a subtree containing a virtual node (F1 holds F2's
  // placeholder as a direct child of its broker root).
  xml::Node* placeholder = frag::FindVirtualRef(fx.set, 1, 2);
  ASSERT_NE(placeholder, nullptr);
  EXPECT_FALSE(view.DelNode(1, placeholder).ok());
  // Unknown fragments are rejected too.
  EXPECT_FALSE(view.DelNode(99, placeholder).ok());
}

TEST(ViewTest, SplitFragmentsKeepsAnswer) {
  // Example 5.1: insert a new stock into F0, then split at the market.
  ViewFixture fx = MakePortfolioFixture(xmark::kYhooQuery);
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  bool before = view.answer();

  xml::Node* nyse = xml::FindFirstElement(fx.set.fragment(0).root, "market");
  ASSERT_NE(nyse, nullptr);
  auto f4 = view.SplitFragments(0, nyse, /*new_site=*/3);
  ASSERT_TRUE(f4.ok()) << f4.status().ToString();
  EXPECT_EQ(view.answer(), before);
  EXPECT_EQ(view.source_tree().site_of(*f4), 3);
  EXPECT_TRUE(fx.set.Validate().ok());
  EXPECT_EQ(*view.RecomputeFromScratch(), before);
}

TEST(ViewTest, MergeFragmentsKeepsAnswer) {
  ViewFixture fx = MakePortfolioFixture(xmark::kYhooQuery);
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  bool before = view.answer();
  ASSERT_TRUE(view.MergeFragments(2).ok());
  EXPECT_EQ(view.answer(), before);
  EXPECT_EQ(fx.set.live_count(), 3u);
  EXPECT_EQ(*view.RecomputeFromScratch(), before);
}

TEST(ViewTest, SplitThenContentUpdateThenMerge) {
  ViewFixture fx = MakePortfolioFixture("[//stock[code = \"HPQ\"]]");
  auto view_result =
      MaterializedView::Create(&fx.set, {0, 1, 2, 2}, &fx.query);
  MaterializedView view = std::move(*view_result);
  EXPECT_FALSE(view.answer());

  xml::Node* nyse = xml::FindFirstElement(fx.set.fragment(0).root, "market");
  auto f4 = view.SplitFragments(0, nyse, 3);
  ASSERT_TRUE(f4.ok());
  auto stock = view.InsNode(*f4, fx.set.fragment(*f4).root, "stock");
  ASSERT_TRUE(stock.ok());
  ASSERT_TRUE(view.InsNode(*f4, *stock, "code", "HPQ").ok());
  ASSERT_TRUE(view.Refresh(*f4).ok());
  EXPECT_TRUE(view.answer());

  ASSERT_TRUE(view.MergeFragments(*f4).ok());
  EXPECT_TRUE(view.answer());
  EXPECT_EQ(*view.RecomputeFromScratch(), true);
}

// Property: a random sequence of updates + refreshes keeps the view
// consistent with from-scratch evaluation.
class ViewPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewPropertyTest, IncrementalEqualsRecompute) {
  Rng rng(GetParam());
  auto scenario = testutil::MakeRandomScenario(GetParam() + 500, 80, 4);
  auto ast = testutil::RandomQual(&rng, 3);
  xpath::NormQuery q = xpath::Normalize(*ast);

  std::vector<frag::SiteId> sites(scenario.set.table_size());
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i] = scenario.st.site_of(static_cast<FragmentId>(i));
  }
  auto view_result = MaterializedView::Create(&scenario.set, sites, &q);
  ASSERT_TRUE(view_result.ok()) << view_result.status().ToString();
  MaterializedView view = std::move(*view_result);

  for (int step = 0; step < 12; ++step) {
    auto live = scenario.set.live_ids();
    FragmentId f = live[rng.Uniform(live.size())];
    xml::Node* root = scenario.set.fragment(f).root;
    // Insert under a random element of the fragment.
    std::vector<xml::Node*> elements;
    std::vector<xml::Node*> stack{root};
    while (!stack.empty()) {
      xml::Node* n = stack.back();
      stack.pop_back();
      if (n->is_element()) elements.push_back(n);
      for (xml::Node* c = n->first_child; c != nullptr;
           c = c->next_sibling) {
        stack.push_back(c);
      }
    }
    xml::Node* target = elements[rng.Uniform(elements.size())];
    if (rng.Bernoulli(0.7)) {
      auto inserted = view.InsNode(f, target, testutil::RandomLabel(&rng),
                                   testutil::RandomText(&rng));
      ASSERT_TRUE(inserted.ok());
    } else if (target != root && xml::CountVirtuals(target) == 0) {
      ASSERT_TRUE(view.DelNode(f, target).ok());
    }
    ASSERT_TRUE(view.Refresh(f).ok());

    // Oracle: full reassembly + centralized evaluation.
    auto whole = scenario.set.Reassemble();
    ASSERT_TRUE(whole.ok());
    auto expected = xpath::EvalBoolean(*whole->root(), q);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(view.answer(), *expected)
        << "seed " << GetParam() << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace parbox::core
