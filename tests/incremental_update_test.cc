// The incremental update pipeline (fragment/delta.h + Session::Apply /
// ExecuteIncremental) checked against a differential oracle: after any
// sequence of random deltas, the incremental answer must be
// bit-identical to a from-scratch run of *every* registered evaluator
// on the updated document. Also: locality (a delta run visits only
// dirty sites, metered under the "update" traffic tag) and writability
// rules.
//
// Randomized suites run with fixed seeds by default; set
// PARBOX_TEST_TRIALS=<k> to multiply the delta count per seed (the
// `ctest -L extended` jobs do).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/evaluator.h"
#include "core/session.h"
#include "fragment/delta.h"
#include "testutil.h"
#include "xml/parser.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::Delta;
using frag::FragmentId;
using frag::FragmentSet;
using frag::SourceTree;

using testutil::TrialMultiplier;

// ---- The differential oracle -------------------------------------------

// Apply N random deltas per seed; after each, the incremental answer
// (for two long-lived prepared queries) must equal a from-scratch run
// of every registered evaluator on the mutated document. At the
// default multiplier this is 8 seeds x 26 deltas = 208 >= 200 seeded
// trials per evaluator.
TEST(IncrementalUpdateTest, DifferentialOracleAcrossAllEvaluators) {
  const std::vector<std::string> names =
      EvaluatorRegistry::Instance().Names();
  ASSERT_FALSE(names.empty());
  const int deltas_per_seed = 26 * TrialMultiplier();
  size_t trials = 0;

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(seed + 500, /*max_elements=*/70,
                                     /*splits=*/5);
    Rng rng(seed * 7919 + 1);

    auto session = Session::Create(&scenario.set, &scenario.st);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE(session->writable());

    std::vector<PreparedQuery> prepared;
    for (int i = 0; i < 2; ++i) {
      auto p =
          session->Prepare(xpath::Normalize(*testutil::RandomQual(&rng, 3)));
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      prepared.push_back(std::move(*p));
    }

    for (int d = 0; d < deltas_per_seed; ++d) {
      Delta delta = testutil::RandomDelta(&scenario.set, &rng);
      auto applied = session->Apply(delta);
      ASSERT_TRUE(applied.ok())
          << "seed " << seed << " delta " << d << " ("
          << frag::DeltaKindName(delta.kind)
          << "): " << applied.status().ToString();
      ASSERT_TRUE(scenario.set.Validate().ok());

      for (const PreparedQuery& p : prepared) {
        auto incremental = session->ExecuteIncremental(p);
        ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

        // From-scratch oracle: a fresh read-only session over the
        // mutated deployment, every registered evaluator.
        auto oracle = Session::Create(
            static_cast<const FragmentSet*>(&scenario.set), &scenario.st);
        ASSERT_TRUE(oracle.ok());
        auto oracle_q = oracle->Prepare(&p.query());
        ASSERT_TRUE(oracle_q.ok());
        for (const std::string& name : names) {
          auto reference =
              oracle->Execute(*oracle_q, {.evaluator = name});
          ASSERT_TRUE(reference.ok()) << reference.status().ToString();
          ASSERT_EQ(incremental->answer, reference->answer)
              << "seed " << seed << " delta " << d << " ("
              << frag::DeltaKindName(delta.kind) << ") evaluator " << name
              << " incremental " << incremental->algorithm;
        }
      }
      ++trials;
    }
  }
  EXPECT_GE(trials, 200u * static_cast<size_t>(TrialMultiplier()));
}

// ---- Locality and traffic accounting -----------------------------------

TEST(IncrementalUpdateTest, DeltaRunVisitsOnlyDirtySites) {
  auto doc = xml::ParseXml(
      "<r><s><a>t0</a><b/></s><t><c>t1</c></t><u><d/></u></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  // Three sub-fragments on three distinct sites.
  xml::Node* s_node = xml::FindFirstElement(set.fragment(0).root, "s");
  xml::Node* t_node = xml::FindFirstElement(set.fragment(0).root, "t");
  xml::Node* u_node = xml::FindFirstElement(set.fragment(0).root, "u");
  auto f_s = set.Split(0, s_node);
  auto f_t = set.Split(0, t_node);
  auto f_u = set.Split(0, u_node);
  ASSERT_TRUE(f_s.ok() && f_t.ok() && f_u.ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());

  auto session = Session::Create(&set, &*st);
  ASSERT_TRUE(session.ok());
  auto prepared = session->Prepare("[//a or //zzz]");
  ASSERT_TRUE(prepared.ok());

  // Seed pass: a full ParBoX-shaped run, every site visited once.
  auto seeded = session->ExecuteIncremental(*prepared);
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->algorithm, "IncrementalParBoX[full]");
  EXPECT_TRUE(seeded->answer);
  EXPECT_EQ(seeded->total_visits(), 4u);

  // One delta in fragment f_t: only f_t's site may be revisited, and
  // the update crosses the wire under the "update" tag.
  auto applied = session->Apply(
      Delta::InsertSubtree(*f_t, set.fragment(*f_t).root, "zzz"));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(session->DirtyFragments(*prepared),
            std::vector<FragmentId>{*f_t});

  auto delta_run = session->ExecuteIncremental(*prepared);
  ASSERT_TRUE(delta_run.ok());
  EXPECT_EQ(delta_run->algorithm, "IncrementalParBoX[delta]");
  EXPECT_TRUE(delta_run->answer);
  EXPECT_EQ(delta_run->total_visits(), 1u);
  EXPECT_EQ(session->backend().visits_at(st->site_of(*f_t)), 1u);
  const sim::TrafficStats& traffic = session->backend().traffic();
  EXPECT_EQ(traffic.messages_with_tag("update"), 1u);
  EXPECT_EQ(traffic.messages_with_tag("triplet"), 1u);
  EXPECT_EQ(traffic.messages_with_tag("query"), 0u);
  EXPECT_GE(traffic.bytes_with_tag("update"), applied->wire_bytes);

  // Nothing dirty now: a clean re-execute answers at the coordinator
  // with zero visits and zero traffic.
  auto clean = session->ExecuteIncremental(*prepared);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->algorithm, "IncrementalParBoX[clean]");
  EXPECT_TRUE(clean->answer);
  EXPECT_EQ(clean->total_visits(), 0u);
  EXPECT_EQ(clean->network_messages, 0u);
}

// ---- Targeted semantic flips -------------------------------------------

TEST(IncrementalUpdateTest, EveryDeltaKindFlipsAnswersCorrectly) {
  auto doc = xml::ParseXml("<r><s><a>cold</a></s></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  xml::Node* s_node = xml::FindFirstElement(set.fragment(0).root, "s");
  auto f = set.Split(0, s_node);
  ASSERT_TRUE(f.ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());

  auto session = Session::Create(&set, &*st);
  ASSERT_TRUE(session.ok());
  auto hot = session->Prepare("[//a/text() = \"hot\"]");
  auto renamed = session->Prepare("[//e]");
  ASSERT_TRUE(hot.ok() && renamed.ok());

  // Every step checks the incremental answer against fresh ParBoX.
  auto check = [&](const PreparedQuery& q, bool expected) {
    auto inc = session->ExecuteIncremental(q);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_EQ(inc->answer, expected);
    auto fresh = RunParBoX(set, *st, q.query());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh->answer, inc->answer);
  };

  check(*hot, false);
  xml::Node* a_node = xml::FindFirstElement(set.fragment(*f).root, "a");
  ASSERT_NE(a_node, nullptr);

  // retext: "cold" -> "hot".
  ASSERT_TRUE(session->Apply(Delta::Retext(*f, a_node, "hot")).ok());
  check(*hot, true);

  // rename-label: <a> -> <e>; [//a/text()="hot"] off, [//e] on.
  check(*renamed, false);
  ASSERT_TRUE(session->Apply(Delta::RenameLabel(*f, a_node, "e")).ok());
  check(*hot, false);
  check(*renamed, true);

  // insert-subtree: a fresh <a>hot</a> satisfies the text query again.
  auto inserted = session->Apply(
      Delta::InsertSubtree(*f, set.fragment(*f).root, "a", "hot"));
  ASSERT_TRUE(inserted.ok());
  check(*hot, true);

  // delete-subtree: removing it flips the answer back off.
  ASSERT_TRUE(
      session->Apply(Delta::DeleteSubtree(*f, inserted->node)).ok());
  check(*hot, false);
  check(*renamed, true);
}

// ---- Writability and state hygiene -------------------------------------

TEST(IncrementalUpdateTest, ReadOnlySessionRejectsApply) {
  auto doc = xml::ParseXml("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  auto st = SourceTree::Create(set, frag::AssignAllToOneSite(set));
  ASSERT_TRUE(st.ok());

  const FragmentSet* read_only = &set;
  auto session = Session::Create(read_only, &*st);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->writable());
  auto applied = session->Apply(
      Delta::Retext(0, set.fragment(0).root, "x"));
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IncrementalUpdateTest, FailedDeltaLeavesDocumentAndStateUntouched) {
  testutil::RandomScenario scenario = testutil::MakeRandomScenario(7, 60, 3);
  auto session = Session::Create(&scenario.set, &scenario.st);
  ASSERT_TRUE(session.ok());
  auto prepared = session->Prepare("[//a]");
  ASSERT_TRUE(prepared.ok());
  auto before = session->ExecuteIncremental(*prepared);
  ASSERT_TRUE(before.ok());

  // Target a node of fragment 0 but claim another fragment: rejected.
  FragmentId other = scenario.set.live_ids().back();
  ASSERT_NE(other, scenario.set.root_fragment());
  auto bad = session->Apply(Delta::Retext(
      other, scenario.set.fragment(scenario.set.root_fragment()).root,
      "t0"));
  ASSERT_FALSE(bad.ok());

  // Nothing went dirty; the next run is a clean coordinator lookup.
  auto after = session->ExecuteIncremental(*prepared);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->algorithm, "IncrementalParBoX[clean]");
  EXPECT_EQ(after->answer, before->answer);
}

}  // namespace
}  // namespace parbox::core
