// Observability suite: trace spans, the metrics registry, and the
// stats sink — unit semantics plus the serving-stack integration
// contracts:
//
//   * determinism — a seeded sim serving run's span log is
//     byte-identical across repeats (golden property, not a golden
//     file: two fresh runs must agree exactly);
//   * backend equivalence — the span *structure* (names, parenting,
//     per-site counts) is the same on the sim and the thread pool;
//     only timestamps differ;
//   * meter equivalence — the service-recorded wire counters match the
//     substrate's own TrafficStats, tag by tag, on both backends;
//   * a single traced query produces the full causal tree: query ->
//     admission.wait -> round -> per-site site.eval -> solve, with
//     non-zero durations.
//
// Runs under `ctest -L backends` (and re-runs whole with
// PARBOX_BACKEND=threads); tests that assert virtual-clock properties
// construct an explicit "sim" backend, so nothing here skips.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "fragment/strategies.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "testutil.h"
#include "xmark/portfolio.h"
#include "xpath/normalize.h"

namespace parbox {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::StatsSink;
using obs::StatsSinkOptions;
using obs::TraceEvent;
using obs::Tracer;
using service::QueryService;
using service::ServiceOptions;
using service::ServiceReport;

xpath::NormQuery Compile(const char* text) {
  auto q = xpath::CompileQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

// ---- MetricsRegistry ---------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  const auto c = registry.Intern("requests", MetricsRegistry::Kind::kCounter);
  const auto g = registry.Intern("queue_depth", MetricsRegistry::Kind::kGauge);
  const auto h =
      registry.Intern("latency", MetricsRegistry::Kind::kHistogram);

  registry.Add(c, 3);
  registry.Increment(c);
  registry.Set(g, 17.5);
  registry.Observe(h, 0.25);
  registry.Observe(h, 0.75);

  EXPECT_EQ(registry.CounterValue(c), 4u);
  EXPECT_EQ(registry.CounterValue("requests"), 4u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("queue_depth"), 17.5);
  const obs::Histogram merged = registry.HistogramValue(h);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.sum(), 1.0);

  // Re-interning an existing name returns the same id.
  EXPECT_EQ(registry.Intern("requests", MetricsRegistry::Kind::kCounter), c);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("requests"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("queue_depth"), 17.5);
  EXPECT_EQ(snap.histograms.at("latency").count, 2u);

  // Reset forgets values; interned ids stay valid.
  registry.Reset();
  EXPECT_EQ(registry.CounterValue(c), 0u);
  registry.Increment(c);
  EXPECT_EQ(registry.CounterValue("requests"), 1u);
}

TEST(MetricsRegistryTest, SnapshotDelta) {
  MetricsRegistry registry;
  registry.AddCounter("a", 10);
  MetricsSnapshot base = registry.Snapshot();
  registry.AddCounter("a", 5);
  registry.AddCounter("b", 2);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counters.at("a"), 5u);
  EXPECT_EQ(delta.counters.at("b"), 2u);
}

TEST(MetricsRegistryTest, LocalCounterValueSeesOwnWrites) {
  MetricsRegistry registry;
  const auto c = registry.Intern("n", MetricsRegistry::Kind::kCounter);
  registry.Add(c, 7);
  EXPECT_EQ(registry.LocalCounterValue(c), 7u);
}

// The histogram replaces Distribution in the service report; the two
// must agree exactly (same exact-sample nearest-rank semantics).
TEST(MetricsRegistryTest, HistogramMatchesDistribution) {
  obs::Histogram h;
  Distribution d;
  Rng rng(7);
  for (int i = 0; i < 257; ++i) {
    const double v = static_cast<double>(rng.Next64() % 10000) / 100.0;
    h.Add(v);
    d.Add(v);
  }
  for (double pct : {0.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(pct), d.Percentile(pct)) << pct;
  }
  EXPECT_DOUBLE_EQ(h.mean(), d.mean());
  EXPECT_EQ(h.count(), d.count());
  EXPECT_EQ(h.Summary("ms", 1e3), d.Summary("ms", 1e3));
}

// Beyond kExactSamples observations the histogram switches to a
// fixed-size reservoir: memory stays bounded, scalar moments stay
// exact, and percentiles become estimates over the retained sample.
TEST(MetricsRegistryTest, HistogramReservoirBoundsMemory) {
  obs::Histogram h;
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) {
    // 1..100000 in a shuffled-ish deterministic order.
    h.Add(static_cast<double>((i * 48271) % n + 1));
  }
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.retained(), obs::Histogram::kExactSamples);
  EXPECT_FALSE(h.exact());
  // Scalar moments never degrade to estimates.
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(n));
  EXPECT_DOUBLE_EQ(h.mean(), (static_cast<double>(n) + 1.0) / 2.0);
  // Percentiles are estimates over 4096 uniform draws; for a uniform
  // population the relative error stays small.
  EXPECT_NEAR(h.Percentile(50), static_cast<double>(n) / 2.0,
              static_cast<double>(n) * 0.05);
  EXPECT_NEAR(h.Percentile(99), static_cast<double>(n) * 0.99,
              static_cast<double>(n) * 0.05);
}

TEST(MetricsRegistryTest, HistogramReservoirIsDeterministic) {
  // Fixed-seed replacement stream: identical runs keep identical
  // reservoirs (differential suites compare report strings).
  obs::Histogram a, b;
  for (size_t i = 0; i < 20000; ++i) {
    const double v = static_cast<double>((i * 92717) % 1000);
    a.Add(v);
    b.Add(v);
  }
  EXPECT_EQ(a.Summary("ms", 1e3), b.Summary("ms", 1e3));
}

TEST(MetricsRegistryTest, HistogramMergeStaysExactWhenSmall) {
  obs::Histogram a, b;
  Distribution d;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(rng.Next64() % 1000);
    (i % 2 == 0 ? a : b).Add(v);
  }
  // The union fits the exact regime, so merged stats must match the
  // single-stream Distribution exactly.
  obs::Histogram merged;
  merged.Merge(a);
  merged.Merge(b);
  Rng rng2(11);
  for (int i = 0; i < 100; ++i) {
    d.Add(static_cast<double>(rng2.Next64() % 1000));
  }
  EXPECT_TRUE(merged.exact());
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_DOUBLE_EQ(merged.mean(), d.mean());
  EXPECT_DOUBLE_EQ(merged.min(), d.min());
  EXPECT_DOUBLE_EQ(merged.max(), d.max());
  EXPECT_DOUBLE_EQ(merged.Percentile(50), d.Percentile(50));
}

TEST(MetricsRegistryTest, HistogramMergeIntoReservoirKeepsMoments) {
  obs::Histogram big, small;
  const size_t n = 50000;
  for (size_t i = 0; i < n; ++i) {
    big.Add(static_cast<double>(i % 1000));
  }
  for (int i = 0; i < 10; ++i) small.Add(5000.0 + i);
  const double big_sum = big.sum();
  big.Merge(small);
  EXPECT_EQ(big.count(), n + 10);
  EXPECT_EQ(big.retained(), obs::Histogram::kExactSamples);
  EXPECT_DOUBLE_EQ(big.max(), 5009.0);
  EXPECT_DOUBLE_EQ(big.min(), 0.0);
  EXPECT_DOUBLE_EQ(big.sum(), big_sum + small.sum());

  // The other direction: exact receiver, reservoir donor.
  obs::Histogram fresh;
  fresh.Add(-7.0);
  fresh.Merge(big);
  EXPECT_EQ(fresh.count(), n + 11);
  EXPECT_DOUBLE_EQ(fresh.min(), -7.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 5009.0);
  EXPECT_EQ(fresh.retained(), obs::Histogram::kExactSamples);
}

// ---- Tracer ------------------------------------------------------------

TEST(TracerTest, RecordCollectBreakdown) {
  Tracer tracer;
  const uint64_t trace = tracer.MintTraceId();
  const uint64_t root = tracer.MintSpanId();

  TraceEvent e;
  e.name = "query";
  e.trace_id = trace;
  e.span_id = root;
  e.ts_seconds = 0.0;
  e.dur_seconds = 2.0;
  tracer.Record(e);

  TraceEvent child;
  child.name = "solve";
  child.trace_id = trace;
  child.span_id = tracer.MintSpanId();
  child.parent_id = root;
  child.ts_seconds = 0.5;
  child.dur_seconds = 1.0;
  tracer.Record(child);

  TraceEvent instant;
  instant.name = "cache.hit";
  instant.trace_id = trace;
  instant.parent_id = root;
  instant.ts_seconds = 1.0;
  tracer.Record(instant);

  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::string breakdown = tracer.Breakdown(trace);
  EXPECT_NE(breakdown.find("query"), std::string::npos);
  EXPECT_NE(breakdown.find("solve"), std::string::npos);
  EXPECT_NE(breakdown.find("cache.hit"), std::string::npos);
  // The child renders beneath (after) its parent.
  EXPECT_LT(breakdown.find("query"), breakdown.find("solve"));

  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant

  tracer.Reset();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, DisabledAndCapped) {
  Tracer::Options options;
  options.max_events = 2;
  Tracer tracer(options);
  for (int i = 0; i < 5; ++i) {
    TraceEvent e;
    e.name = "x";
    e.trace_id = 1;
    tracer.Record(std::move(e));
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, ScopedContextRestores) {
  EXPECT_FALSE(obs::CurrentTraceContext().active());
  {
    obs::ScopedTraceContext scope({.trace_id = 9, .span_id = 4});
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, 9u);
    {
      obs::ScopedTraceContext inner({.trace_id = 2, .span_id = 1});
      EXPECT_EQ(obs::CurrentTraceContext().trace_id, 2u);
    }
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, 9u);
  }
  EXPECT_FALSE(obs::CurrentTraceContext().active());
}

// ---- StatsSink ---------------------------------------------------------

TEST(StatsSinkTest, DueAtOncePerInterval) {
  StatsSinkOptions due_options;
  due_options.interval_seconds = 1.0;
  StatsSink sink(due_options);
  EXPECT_FALSE(sink.DueAt(10.0));  // first call initializes
  EXPECT_FALSE(sink.DueAt(10.5));
  EXPECT_TRUE(sink.DueAt(11.0));
  EXPECT_FALSE(sink.DueAt(11.2));  // already ticked this interval
  EXPECT_TRUE(sink.DueAt(12.5));
}

TEST(StatsSinkTest, LinesRingAndSlowQueries) {
  std::vector<std::string> streamed;
  StatsSinkOptions options;
  options.max_lines = 2;
  options.write = [&streamed](const std::string& line) {
    streamed.push_back(line);
  };
  StatsSink sink(options);
  sink.Line("one");
  sink.Line("two");
  sink.Line("three");
  ASSERT_EQ(sink.lines().size(), 2u);  // ring dropped "one"
  EXPECT_EQ(sink.lines().front(), "two");
  EXPECT_EQ(streamed.size(), 3u);  // streaming saw everything

  sink.SlowQuery("doc", 12, 34, 0.25, 5.0);
  EXPECT_EQ(sink.slow_queries(), 1u);
  const std::string& slow = sink.lines().back();
  EXPECT_NE(slow.find("[doc]"), std::string::npos);
  EXPECT_NE(slow.find("q=12"), std::string::npos);
  EXPECT_NE(slow.find("trace=34"), std::string::npos);
  sink.SlowQuery("doc", 13, 0, 0.25, 5.0);
  EXPECT_NE(sink.lines().back().find("trace=-"), std::string::npos);
}

// ---- Serving integration ----------------------------------------------

struct Scenario {
  frag::FragmentSet set;
  frag::SourceTree st;
};

Scenario MakePortfolio() {
  auto set = xmark::BuildPortfolioFragments();
  EXPECT_TRUE(set.ok());
  auto st = frag::SourceTree::Create(*set,
                                     frag::AssignOneSitePerFragment(*set));
  EXPECT_TRUE(st.ok());
  return Scenario{std::move(*set), std::move(*st)};
}

/// Serve a small mixed workload (one repeat => one cache hit) against
/// a fresh service over `*scenario`; the service outlives the call so
/// tests can inspect outcomes.
std::unique_ptr<QueryService> ServeMixed(Scenario* scenario,
                                         const std::string& backend,
                                         Tracer* tracer) {
  ServiceOptions options;
  options.backend = backend;
  options.tracer = tracer;
  auto svc = std::make_unique<QueryService>(&scenario->set, &scenario->st,
                                            options);
  EXPECT_TRUE(svc->Submit(Compile(xmark::kYhooQuery), 0.0).ok());
  EXPECT_TRUE(svc->Submit(Compile(xmark::kGoogSellQuery), 0.0).ok());
  svc->Run();
  EXPECT_TRUE(svc->Submit(Compile(xmark::kYhooQuery), 1.0).ok());  // hit
  svc->Run();
  EXPECT_TRUE(svc->status().ok()) << svc->status().ToString();
  return svc;
}

/// The structural skeleton of a span log: (name, category,
/// has-duration) multiset — identical across backends; timestamps are
/// not compared.
std::multiset<std::string> Skeleton(const std::vector<TraceEvent>& events) {
  std::multiset<std::string> shape;
  for (const TraceEvent& e : events) {
    shape.insert(std::string(e.name) + "|" + e.category + "|" +
                 (e.dur_seconds < 0 ? "i" : "X"));
  }
  return shape;
}

TEST(TracingIntegrationTest, SingleQueryProducesFullSpanTree) {
  for (const char* backend : {"sim", "threads:2", "proc:2"}) {
    SCOPED_TRACE(backend);
    Scenario scenario = MakePortfolio();
    ServiceOptions options;
    options.backend = backend;
    Tracer tracer;
    options.tracer = &tracer;
    QueryService svc(&scenario.set, &scenario.st, options);
    ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
    svc.Run();
    ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();

    ASSERT_EQ(svc.outcomes().size(), 1u);
    const uint64_t trace_id = svc.outcomes()[0].trace_id;
    ASSERT_NE(trace_id, 0u);

    const std::vector<TraceEvent> events = tracer.Collect();
    std::map<std::string, const TraceEvent*> by_name;
    std::map<uint64_t, const TraceEvent*> by_span;
    size_t site_evals = 0;
    for (const TraceEvent& e : events) {
      ASSERT_EQ(e.trace_id, trace_id) << e.name;
      by_name.emplace(e.name, &e);
      if (e.span_id != 0) by_span.emplace(e.span_id, &e);
      if (e.name == "site.eval") ++site_evals;
    }

    // The causal chain: query -> admission.wait and query -> round ->
    // ... -> solve, with non-zero durations on every link.
    for (const char* name : {"query", "admission.wait", "round", "solve"}) {
      ASSERT_TRUE(by_name.count(name)) << name;
      EXPECT_GT(by_name.at(name)->dur_seconds, 0.0) << name;
    }
    // One evaluation per site (ParBoX's bound), each parented under
    // the round through its query send.
    EXPECT_EQ(site_evals,
              static_cast<size_t>(scenario.st.num_sites()));
    EXPECT_EQ(by_name.at("admission.wait")->parent_id,
              by_name.at("query")->span_id);
    EXPECT_EQ(by_name.at("round")->parent_id,
              by_name.at("query")->span_id);
    // solve is reachable from the round by walking parents.
    const TraceEvent* cursor = by_name.at("solve");
    bool reached_round = false;
    while (cursor != nullptr && cursor->parent_id != 0) {
      auto it = by_span.find(cursor->parent_id);
      cursor = it == by_span.end() ? nullptr : it->second;
      if (cursor == by_name.at("round")) {
        reached_round = true;
        break;
      }
    }
    EXPECT_TRUE(reached_round);
  }
}

TEST(TracingIntegrationTest, SimTraceIsDeterministic) {
  Scenario s1 = MakePortfolio(), s2 = MakePortfolio();
  Tracer a, b;
  ServeMixed(&s1, "sim", &a);
  ServeMixed(&s2, "sim", &b);
  EXPECT_EQ(a.ToChromeJson(), b.ToChromeJson());
  EXPECT_EQ(a.Breakdown(1), b.Breakdown(1));
  EXPECT_GT(a.event_count(), 0u);
}

TEST(TracingIntegrationTest, SpanStructureMatchesAcrossBackends) {
  // Three-way: the proc backend carries trace ids across process
  // boundaries as wire bytes, so its span log must have the same
  // skeleton as the in-process backends'.
  Scenario s1 = MakePortfolio(), s2 = MakePortfolio(), s3 = MakePortfolio();
  Tracer sim_tracer, threads_tracer, proc_tracer;
  ServeMixed(&s1, "sim", &sim_tracer);
  ServeMixed(&s2, "threads:2", &threads_tracer);
  ServeMixed(&s3, "proc:2", &proc_tracer);
  const auto sim_shape = Skeleton(sim_tracer.Collect());
  const auto threads_shape = Skeleton(threads_tracer.Collect());
  const auto proc_shape = Skeleton(proc_tracer.Collect());
  EXPECT_EQ(sim_shape, threads_shape);
  EXPECT_EQ(sim_shape, proc_shape);
  EXPECT_GT(sim_shape.size(), 0u);
}

TEST(TracingIntegrationTest, CacheHitEmitsInstantNotRound) {
  Tracer tracer;
  Scenario scenario = MakePortfolio();
  ServiceOptions options;
  options.backend = "sim";
  options.tracer = &tracer;
  QueryService svc(&scenario.set, &scenario.st, options);
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
  svc.Run();
  tracer.Reset();
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 1.0).ok());
  svc.Run();
  bool saw_hit = false;
  for (const TraceEvent& e : tracer.Collect()) {
    EXPECT_NE(e.name, "round");  // no re-evaluation
    if (e.name == "cache.hit") saw_hit = true;
  }
  EXPECT_TRUE(saw_hit);
}

TEST(MetricsIntegrationTest, RegistryMatchesTrafficStats) {
  for (const char* backend : {"sim", "threads:2", "proc:2"}) {
    SCOPED_TRACE(backend);
    Scenario scenario = MakePortfolio();
    ServiceOptions options;
    options.backend = backend;
    QueryService svc(&scenario.set, &scenario.st, options);
    ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
    ASSERT_TRUE(svc.Submit(Compile(xmark::kGoogSellQuery), 0.0).ok());
    svc.Run();
    ASSERT_TRUE(svc.status().ok()) << svc.status().ToString();

    // The service-recorded wire counters must equal the substrate's
    // own meters, which SnapshotMetrics injects as "exec." gauges.
    MetricsSnapshot snap = svc.SnapshotMetrics();
    for (const char* tag : {"query", "triplet"}) {
      const std::string counter = std::string("net.") + tag + ".bytes";
      const std::string gauge = "exec." + counter;
      ASSERT_TRUE(snap.counters.count(counter)) << counter;
      ASSERT_TRUE(snap.gauges.count(gauge)) << gauge;
      EXPECT_EQ(static_cast<double>(snap.counters.at(counter)),
                snap.gauges.at(gauge))
          << tag;
      const std::string msgs = std::string("net.") + tag + ".messages";
      EXPECT_EQ(static_cast<double>(snap.counters.at(msgs)),
                snap.gauges.at("exec." + msgs))
          << tag;
    }
    // Counter cross-checks against the report.
    ServiceReport report = svc.BuildReport();
    EXPECT_EQ(snap.counters.at("service.completed"), report.completed);
    EXPECT_EQ(snap.counters.at("service.rounds"), report.rounds);
    EXPECT_EQ(static_cast<double>(snap.gauges.at("exec.visits")),
              static_cast<double>(report.total_visits));
    // Snapshotting twice must not double-count the injected gauges.
    MetricsSnapshot again = svc.SnapshotMetrics();
    EXPECT_EQ(again.gauges.at("exec.net.query.bytes"),
              snap.gauges.at("exec.net.query.bytes"));
  }
}

TEST(MetricsIntegrationTest, ReportCarriesAdmissionWait) {
  Scenario scenario = MakePortfolio();
  ServiceOptions options;
  options.backend = "sim";
  QueryService svc(&scenario.set, &scenario.st, options);
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
  ASSERT_TRUE(svc.Submit(Compile(xmark::kGoogSellQuery), 0.0).ok());
  svc.Run();
  ServiceReport report = svc.BuildReport();
  // Both queries waited out the batch window before their round.
  ASSERT_EQ(report.admission_wait.count(), 2u);
  EXPECT_GT(report.admission_wait.max(), 0.0);
  EXPECT_NE(report.ToString().find("admission wait"), std::string::npos);

  // Merging reports pools the samples (the catalog aggregate path).
  ServiceReport other = svc.BuildReport();
  other.admission_wait.Merge(report.admission_wait);
  EXPECT_EQ(other.admission_wait.count(), 4u);
}

TEST(MetricsIntegrationTest, SinkEmitsIntervalAndSlowQueryLines) {
  Scenario scenario = MakePortfolio();
  StatsSinkOptions sink_options;
  sink_options.interval_seconds = 1e-4;
  sink_options.slow_query_seconds = 1e-9;  // everything is "slow"
  StatsSink sink(sink_options);
  Tracer tracer;
  ServiceOptions options;
  options.backend = "sim";
  options.sink = &sink;
  options.tracer = &tracer;
  QueryService svc(&scenario.set, &scenario.st, options);
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 0.0).ok());
  ASSERT_TRUE(svc.Submit(Compile(xmark::kGoogSellQuery), 0.0).ok());
  svc.Run();
  ASSERT_TRUE(svc.Submit(Compile(xmark::kYhooQuery), 1.0).ok());
  svc.Run();
  svc.FlushStats();

  EXPECT_GE(sink.slow_queries(), 2u);
  bool saw_interval = false, saw_trace = false;
  for (const std::string& line : sink.lines()) {
    if (line.find("qps=") != std::string::npos) saw_interval = true;
    if (line.find("trace=") != std::string::npos &&
        line.find("trace=-") == std::string::npos) {
      saw_trace = true;
    }
  }
  EXPECT_TRUE(saw_interval);
  EXPECT_TRUE(saw_trace);  // slow-query lines carry real trace ids
}

TEST(MetricsIntegrationTest, OutcomesCarryTraceIds) {
  Scenario scenario = MakePortfolio();
  Tracer tracer;
  std::unique_ptr<QueryService> svc = ServeMixed(&scenario, "sim", &tracer);
  ASSERT_EQ(svc->outcomes().size(), 3u);
  std::set<uint64_t> trace_ids;
  for (const auto& outcome : svc->outcomes()) {
    EXPECT_NE(outcome.trace_id, 0u);
    trace_ids.insert(outcome.trace_id);
  }
  // Three submissions, three distinct traces (the cache hit is its
  // own trace referencing no round).
  EXPECT_EQ(trace_ids.size(), 3u);
}

}  // namespace
}  // namespace parbox
