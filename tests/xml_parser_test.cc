#include <gtest/gtest.h>

#include "common/rng.h"
#include "xmark/generator.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace parbox::xml {
namespace {

Result<Document> Parse(std::string_view s) { return ParseXml(s); }

TEST(XmlParserTest, MinimalDocument) {
  auto doc = Parse("<a/>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root()->label(), "a");
  EXPECT_EQ(doc->root()->first_child, nullptr);
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto doc = Parse("<r><a>hi</a><b><c>x</c></b></r>");
  ASSERT_TRUE(doc.ok());
  Node* r = doc->root();
  EXPECT_EQ(CountElements(r), 4u);
  EXPECT_TRUE(DirectTextEquals(*r->first_child, "hi"));
}

TEST(XmlParserTest, XmlDeclarationAndComments) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?>\n<!-- hello -->\n<r><!-- inner -->x</r>\n"
      "<!-- trailing -->");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(DirectTextEquals(*doc->root(), "x"));
}

TEST(XmlParserTest, EntitiesDecoded) {
  auto doc = Parse("<r>a &amp; b &lt;c&gt; &quot;d&quot; &apos;e&apos;</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(DirectTextEquals(*doc->root(), "a & b <c> \"d\" 'e'"));
}

TEST(XmlParserTest, NumericCharacterReferences) {
  auto doc = Parse("<r>&#65;&#x42;</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(DirectTextEquals(*doc->root(), "AB"));
}

TEST(XmlParserTest, MultibyteCharacterReference) {
  auto doc = Parse("<r>&#233;</r>");  // é => 2-byte UTF-8
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(DirectTextEquals(*doc->root(), "\xC3\xA9"));
}

TEST(XmlParserTest, CdataPreservedVerbatim) {
  auto doc = Parse("<r><![CDATA[a <b> & c]]></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(DirectTextEquals(*doc->root(), "a <b> & c"));
}

TEST(XmlParserTest, AttributesBecomeAtChildren) {
  auto doc = Parse("<item id=\"i7\" lang='en'>x</item>");
  ASSERT_TRUE(doc.ok());
  Node* item = doc->root();
  Node* id = item->first_child;
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->label(), "@id");
  EXPECT_TRUE(DirectTextEquals(*id, "i7"));
  EXPECT_EQ(id->next_sibling->label(), "@lang");
}

TEST(XmlParserTest, VirtualNodeRoundTrip) {
  Document doc;
  Node* r = doc.NewElement("r");
  doc.set_root(r);
  doc.AppendChild(r, doc.NewVirtual(5));
  std::string text = WriteXml(r);
  EXPECT_NE(text.find("parbox:virtual"), std::string::npos);
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->root()->first_child->is_virtual());
  EXPECT_EQ(parsed->root()->first_child->fragment_ref, 5);
}

TEST(XmlParserTest, WhitespaceTextSkippedByDefault) {
  auto doc = Parse("<r>\n  <a/>\n  <b/>\n</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(CountNodes(doc->root()), 3u);  // no whitespace text nodes
}

TEST(XmlParserTest, WhitespaceTextKeptOnRequest) {
  ParseOptions options;
  options.skip_whitespace_text = false;
  auto doc = ParseXml("<r> <a/> </r>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(CountNodes(doc->root()), 4u);
}

struct BadInput {
  const char* name;
  const char* text;
};

class XmlParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserErrorTest, Rejected) {
  auto doc = Parse(GetParam().text);
  EXPECT_FALSE(doc.ok()) << "input accepted: " << GetParam().text;
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        BadInput{"Empty", ""},
        BadInput{"NoRoot", "   \n  "},
        BadInput{"UnclosedTag", "<a>"},
        BadInput{"MismatchedClose", "<a></b>"},
        BadInput{"TrailingContent", "<a/><b/>"},
        BadInput{"BareText", "hello"},
        BadInput{"UnterminatedString", "<a b=\"c/>"},
        BadInput{"MissingEquals", "<a b \"c\"/>"},
        BadInput{"UnknownEntity", "<a>&bogus;</a>"},
        BadInput{"UnterminatedEntity", "<a>&amp</a>"},
        BadInput{"UnterminatedCdata", "<a><![CDATA[x</a>"},
        BadInput{"DtdRejected", "<!DOCTYPE a><a/>"},
        BadInput{"BadCharRef", "<a>&#xFFFFFFFF;</a>"},
        BadInput{"GarbageChar", "<a>]]</a>#"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(XmlParserTest, ErrorMessagesCarryPosition) {
  auto doc = Parse("<a>\n<b></c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("2:"), std::string::npos)
      << doc.status().ToString();
}

// The parser walks with an explicit stack, so document depth is
// bounded by memory, not the call stack: nesting that used to trip a
// recursion cap (and would overflow a recursive parser's stack well
// before 100k) parses fine.
TEST(XmlParserTest, DeepNestingParsesWithoutOverflow) {
  constexpr int kDepth = 100000;
  std::string open, close;
  for (int i = 0; i < kDepth; ++i) {
    open += "<a>";
    close += "</a>";
  }
  auto doc = Parse(open + "<b>leaf</b>" + close);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  int depth = 0;
  const Node* n = doc->root();
  while (n != nullptr && n->is_element() && n->label() == "a") {
    ++depth;
    n = n->first_child;
  }
  EXPECT_EQ(depth, kDepth);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->label(), "b");
}

// ---------- Writer ----------

TEST(XmlWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeText("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(XmlWriterTest, SelfClosingForEmptyElements) {
  Document doc;
  doc.set_root(doc.NewElement("empty"));
  EXPECT_EQ(WriteXml(doc.root()), "<empty/>");
}

TEST(XmlWriterTest, SerializedSizeMatchesOutput) {
  Document doc;
  Node* r = doc.NewElement("r");
  doc.set_root(r);
  Node* a = doc.NewElement("a");
  doc.AppendChild(a, doc.NewText("x & y"));
  doc.AppendChild(r, a);
  doc.AppendChild(r, doc.NewVirtual(3));
  EXPECT_EQ(SerializedSize(r), WriteXml(r).size());
}

TEST(XmlWriterTest, IndentedOutputStillParses) {
  Document doc;
  Node* r = doc.NewElement("r");
  doc.set_root(r);
  Node* a = doc.NewElement("a");
  doc.AppendChild(r, a);
  doc.AppendChild(a, doc.NewElement("b"));
  doc.AppendChild(r, doc.NewElement("c"));
  WriteOptions options;
  options.indent = true;
  std::string text = WriteXml(r, options);
  EXPECT_NE(text.find('\n'), std::string::npos);
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreeEquals(doc.root(), parsed->root()));
}

// ---------- Round-trip properties ----------

class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, WriteParseWriteIsStable) {
  Rng rng(GetParam());
  Document doc = xmark::GenerateRandomSmallDocument(120, &rng);
  std::string once = WriteXml(doc.root());
  auto parsed = Parse(once);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreeEquals(doc.root(), parsed->root()))
      << "seed " << GetParam();
  EXPECT_EQ(WriteXml(parsed->root()), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Range<uint64_t>(0, 25));

TEST(RoundTripTest, GeneratedXmarkSiteParses) {
  Rng rng(99);
  Document doc;
  xmark::SiteOptions options;
  options.target_bytes = 20000;
  options.marker = "m0";
  doc.set_root(xmark::GenerateSite(&doc, options, &rng));
  std::string text = WriteXml(doc.root());
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreeEquals(doc.root(), parsed->root()));
}

}  // namespace
}  // namespace parbox::xml
