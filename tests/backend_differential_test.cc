// The ExecBackend contract, held to by differential testing: the
// deterministic simulation is the oracle, and the real backends — the
// in-process thread pool ("threads") and the multi-process site
// daemons ("proc:2") — must agree with it bit-for-bit wherever the
// quantity is defined on both: answers, per-site visits, network bytes
// and messages, kernel ops, equation-system sizes, and the per-tag
// traffic breakdown. (Virtual times and event counts are sim-defined
// and excluded.)
//
// Covers every registered evaluator, ExecuteIncremental across random
// delta sequences (the seeded-trial harness of
// incremental_update_test.cc), and QueryService answer streams; plus
// the registry's unknown-spec UX.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "core/evaluator.h"
#include "core/session.h"
#include "exec/backend.h"
#include "fragment/delta.h"
#include "fragment/placement.h"
#include "fragment/strategies.h"
#include "service/catalog_service.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "testutil.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::FragmentSet;
using testutil::TrialMultiplier;

/// The real (non-sim) backends every differential below holds to the
/// sim oracle.
const std::vector<std::string>& RealBackends() {
  static const std::vector<std::string> kBackends = {"threads", "proc:2"};
  return kBackends;
}

/// The cross-backend comparable slice of a RunReport.
void ExpectReportsAgree(const RunReport& sim, const RunReport& threads,
                        const std::string& context) {
  EXPECT_EQ(sim.answer, threads.answer) << context;
  EXPECT_EQ(sim.algorithm, threads.algorithm) << context;
  EXPECT_EQ(sim.total_ops, threads.total_ops) << context;
  EXPECT_EQ(sim.network_bytes, threads.network_bytes) << context;
  EXPECT_EQ(sim.network_messages, threads.network_messages) << context;
  EXPECT_EQ(sim.visits_per_site, threads.visits_per_site) << context;
  EXPECT_EQ(sim.eq_system_entries, threads.eq_system_entries) << context;
  for (const auto& [name, value] : sim.stats.counters()) {
    if (name.rfind("net.", 0) == 0) {
      EXPECT_EQ(value, threads.stats.Get(name)) << context << " " << name;
    }
  }
}

TEST(BackendDifferentialTest, AllEvaluatorsBitIdenticalAcrossBackends) {
  const std::vector<std::string> names =
      EvaluatorRegistry::Instance().Names();
  ASSERT_FALSE(names.empty());
  size_t trials = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(seed + 900, /*max_elements=*/90,
                                     /*splits=*/6);
    auto sim = Session::Create(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        SessionOptions{.backend = "sim"});
    ASSERT_TRUE(sim.ok());
    std::vector<std::unique_ptr<Session>> real;
    for (const std::string& backend : RealBackends()) {
      auto session = Session::Create(
          static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
          SessionOptions{.backend = backend});
      ASSERT_TRUE(session.ok()) << backend << ": "
                                << session.status().ToString();
      real.push_back(std::make_unique<Session>(std::move(*session)));
    }

    Rng rng(seed * 31 + 7);
    for (int i = 0; i < 3; ++i) {
      auto ast = testutil::RandomQual(&rng, 3);
      xpath::NormQuery q = xpath::Normalize(*ast);
      auto sim_q = sim->Prepare(&q);
      ASSERT_TRUE(sim_q.ok());
      std::vector<PreparedQuery> real_q;
      for (auto& session : real) {
        auto prepared = session->Prepare(&q);
        ASSERT_TRUE(prepared.ok());
        real_q.push_back(std::move(*prepared));
      }
      for (const std::string& name : names) {
        auto sim_report = sim->Execute(*sim_q, {.evaluator = name});
        ASSERT_TRUE(sim_report.ok()) << sim_report.status().ToString();
        for (size_t b = 0; b < real.size(); ++b) {
          auto real_report =
              real[b]->Execute(real_q[b], {.evaluator = name});
          ASSERT_TRUE(real_report.ok()) << real_report.status().ToString();
          ExpectReportsAgree(*sim_report, *real_report,
                             "seed " + std::to_string(seed) + " backend " +
                                 RealBackends()[b] + " evaluator " + name +
                                 " query " + xpath::ToString(*ast));
          ++trials;
        }
      }
    }
  }
  EXPECT_GE(trials, 6u * 3u * RealBackends().size() * names.size());
}

// ExecuteIncremental across random delta sequences: two identically
// seeded deployments, one per backend, mutated in lockstep; every
// incremental run (full, delta, and clean paths all occur) must agree
// on the comparable report slice — including the "update" traffic tag
// and per-site visits, which prove the thread pool revisits exactly
// the dirty sites the sim does.
TEST(BackendDifferentialTest, IncrementalRunsBitIdenticalAcrossBackends) {
  const int deltas_per_seed = 12 * TrialMultiplier();
  for (const std::string& backend : RealBackends()) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      testutil::RandomScenario for_sim =
          testutil::MakeRandomScenario(seed + 950, 70, 5);
      testutil::RandomScenario for_real =
          testutil::MakeRandomScenario(seed + 950, 70, 5);

      auto sim = Session::Create(&for_sim.set, &for_sim.st,
                                 SessionOptions{.backend = "sim"});
      auto real = Session::Create(&for_real.set, &for_real.st,
                                  SessionOptions{.backend = backend});
      ASSERT_TRUE(sim.ok() && real.ok());
      ASSERT_TRUE(sim->writable() && real->writable());

      Rng rng_sim(seed * 131 + 17);
      Rng rng_real(seed * 131 + 17);
      auto sim_q = sim->Prepare(
          xpath::Normalize(*testutil::RandomQual(&rng_sim, 3)));
      auto real_q = real->Prepare(
          xpath::Normalize(*testutil::RandomQual(&rng_real, 3)));
      ASSERT_TRUE(sim_q.ok() && real_q.ok());

      for (int d = 0; d < deltas_per_seed; ++d) {
        // Identical RNG streams over identical documents pick identical
        // deltas; apply one to each deployment.
        frag::Delta delta_sim =
            testutil::RandomDelta(&for_sim.set, &rng_sim);
        frag::Delta delta_real =
            testutil::RandomDelta(&for_real.set, &rng_real);
        ASSERT_EQ(delta_sim.kind, delta_real.kind);
        ASSERT_TRUE(sim->Apply(delta_sim).ok());
        ASSERT_TRUE(real->Apply(delta_real).ok());

        auto sim_report = sim->ExecuteIncremental(*sim_q);
        auto real_report = real->ExecuteIncremental(*real_q);
        ASSERT_TRUE(sim_report.ok()) << sim_report.status().ToString();
        ASSERT_TRUE(real_report.ok()) << real_report.status().ToString();
        ExpectReportsAgree(*sim_report, *real_report,
                           backend + " seed " + std::to_string(seed) +
                               " delta " + std::to_string(d));

        // Every other delta, also compare the clean path (a re-run with
        // nothing dirty).
        if (d % 2 == 1) {
          auto sim_clean = sim->ExecuteIncremental(*sim_q);
          auto real_clean = real->ExecuteIncremental(*real_q);
          ASSERT_TRUE(sim_clean.ok() && real_clean.ok());
          EXPECT_EQ(sim_clean->algorithm, "IncrementalParBoX[clean]");
          ExpectReportsAgree(*sim_clean, *real_clean,
                             backend + " clean after seed " +
                                 std::to_string(seed) + " delta " +
                                 std::to_string(d));
        }
      }
    }
  }
}

TEST(BackendDifferentialTest, ServiceAnswerStreamsAgreeAcrossBackends) {
  testutil::RandomScenario scenario =
      testutil::MakeRandomScenario(1234, 120, 6);
  auto workload =
      service::Workload::Make({.distinct_queries = 8, .min_qlist_size = 2});
  ASSERT_TRUE(workload.ok());

  auto serve = [&](const std::string& backend) {
    service::ServiceOptions options;
    options.backend = backend;
    service::QueryService svc(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        options);
    auto report = service::RunOpenLoop(
        &svc, *workload, {.num_queries = 64, .seed = 99});
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(svc.status().ok()) << svc.status().ToString();
    // Answers by submission id (completion order may differ).
    std::vector<std::pair<uint64_t, bool>> answers;
    for (const service::QueryOutcome& outcome : svc.outcomes()) {
      answers.emplace_back(outcome.query_id, outcome.answer);
    }
    std::sort(answers.begin(), answers.end());
    return answers;
  };

  auto sim_answers = serve("sim");
  ASSERT_EQ(sim_answers.size(), 64u);
  for (const std::string& backend : RealBackends()) {
    EXPECT_EQ(sim_answers, serve(backend)) << backend;
  }
}

// Fused rounds: multi-query fusion and cache subsumption are pure
// evaluation-cost optimizations, so with fusion toggled the service
// must produce bit-identical answers, per-site visits, and wire bytes
// on every backend — only kernel ops (and hence makespans) may move.
// And with fusion ON, all backends must still agree with the sim on
// the whole comparable slice, ops included.
TEST(BackendDifferentialTest, FusedRoundsBitIdenticalAcrossBackends) {
  auto workload = service::Workload::Make({.distinct_queries = 12,
                                           .family_variants = 4,
                                           .family_chain_steps = 3});
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  struct ServedSlice {
    std::vector<std::pair<uint64_t, bool>> answers;
    std::vector<uint64_t> visits;
    uint64_t bytes = 0;
    uint64_t messages = 0;
    uint64_t ops = 0;
    uint64_t fused_walks = 0;
    uint64_t subsumption_hits = 0;
  };
  auto serve = [&](const std::string& backend, bool fusion) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(4321, 120, 6);
    service::ServiceOptions options;
    options.backend = backend;
    options.enable_fusion = fusion;
    service::QueryService svc(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        options);
    // One burst: every family round is a fused multi-lane batch, and
    // zipf re-draws of a family's base exercise subsumption.
    auto report = service::RunOpenLoop(
        &svc, *workload, {.num_queries = 48, .seed = 7});
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    ServedSlice s;
    for (const service::QueryOutcome& outcome : svc.outcomes()) {
      s.answers.emplace_back(outcome.query_id, outcome.answer);
    }
    std::sort(s.answers.begin(), s.answers.end());
    s.visits = svc.backend().visits();
    s.bytes = svc.backend().traffic().total_bytes();
    s.messages = svc.backend().traffic().total_messages();
    s.ops = report->total_ops;
    s.fused_walks = report->fused_walks;
    s.subsumption_hits = report->subsumption_hits;
    return s;
  };

  const ServedSlice oracle = serve("sim", /*fusion=*/true);
  ASSERT_EQ(oracle.answers.size(), 48u);
  EXPECT_GT(oracle.fused_walks, 0u);

  // Ablation on the oracle backend: fusion changes ops only.
  const ServedSlice unfused = serve("sim", /*fusion=*/false);
  EXPECT_EQ(oracle.answers, unfused.answers);
  EXPECT_EQ(oracle.visits, unfused.visits);
  EXPECT_EQ(oracle.bytes, unfused.bytes);
  EXPECT_EQ(oracle.messages, unfused.messages);
  EXPECT_EQ(unfused.fused_walks, 0u);
  EXPECT_EQ(oracle.subsumption_hits, unfused.subsumption_hits);
  EXPECT_LT(oracle.ops, unfused.ops);

  for (const std::string& backend : RealBackends()) {
    // Real backends, fusion on: full comparable slice matches the sim.
    const ServedSlice fused = serve(backend, /*fusion=*/true);
    EXPECT_EQ(oracle.answers, fused.answers) << backend;
    EXPECT_EQ(oracle.visits, fused.visits) << backend;
    EXPECT_EQ(oracle.bytes, fused.bytes) << backend;
    EXPECT_EQ(oracle.messages, fused.messages) << backend;
    EXPECT_EQ(oracle.ops, fused.ops) << backend;
    EXPECT_EQ(oracle.fused_walks, fused.fused_walks) << backend;
    EXPECT_EQ(oracle.subsumption_hits, fused.subsumption_hits) << backend;

    // And the on/off ablation holds off-sim too.
    const ServedSlice off = serve(backend, /*fusion=*/false);
    EXPECT_EQ(fused.answers, off.answers) << backend;
    EXPECT_EQ(fused.visits, off.visits) << backend;
    EXPECT_EQ(fused.bytes, off.bytes) << backend;
  }
}

// Fair-share admission is a pure scheduling policy: it reorders when
// batch rounds dispatch, never what they compute. Replaying one
// pre-drawn cross-document plan with the scheduler on and off must
// yield bit-identical per-document answer streams — on the sim oracle
// and on every real backend.
TEST(BackendDifferentialTest, FairShareSchedulerBitIdenticalAcrossBackends) {
  auto workload = service::Workload::Make({.distinct_queries = 6,
                                           .min_qlist_size = 2,
                                           .hot_multiplier = 8.0});
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  const std::vector<std::string> docs = {"hot", "cold1", "cold2"};
  const service::CrossDocPlan plan = service::MakeCrossDocPlan(
      *workload, docs.size(),
      {.num_queries = 42, .arrival_rate_qps = 3000.0, .seed = 61});

  auto serve = [&](const std::string& backend, bool fair) {
    catalog::CatalogOptions cat_options;
    cat_options.backend = backend;
    auto cat = catalog::Catalog::Create(cat_options);
    EXPECT_TRUE(cat.ok()) << cat.status().ToString();
    for (size_t di = 0; di < docs.size(); ++di) {
      Rng rng(300 + di);
      xml::Document doc =
          xmark::GenerateRandomSmallDocument(120, &rng);
      auto set = frag::FragmentSet::FromDocument(std::move(doc));
      EXPECT_TRUE(set.ok());
      EXPECT_TRUE(frag::RandomSplits(&*set, 5, &rng).ok());
      auto placement = frag::Placement::Create(
          *set, frag::AssignOneSitePerFragment(*set));
      EXPECT_TRUE(placement.ok());
      EXPECT_TRUE(
          (*cat)
              ->Open(docs[di], std::move(*set), std::move(*placement))
              .ok());
    }
    service::ServiceOptions options;
    options.enable_fair_share = fair;
    options.fair_share.max_in_flight = 2;  // tight: rounds must queue
    auto svc = service::CatalogService::Create(cat->get(), options);
    EXPECT_TRUE(svc.ok()) << svc.status().ToString();
    if (fair) {
      // Skewed weights and a per-tenant cap, so the policy reorders
      // dispatches as hard as it can.
      EXPECT_TRUE((*svc)
                      ->ConfigureTenant(
                          "hot", service::TenantConfig{.weight = 4.0})
                      .ok());
      EXPECT_TRUE((*svc)
                      ->ConfigureTenant("cold1",
                                        service::TenantConfig{
                                            .weight = 1.0,
                                            .max_in_flight = 1})
                      .ok());
    }
    auto report = service::RunCrossDocOpenLoop(svc->get(), *workload,
                                               docs, plan);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    std::map<std::string, std::vector<std::pair<uint64_t, bool>>> answers;
    for (const std::string& d : docs) {
      const service::QueryService* qs = (*svc)->document_service(d);
      EXPECT_NE(qs, nullptr);
      auto& a = answers[d];
      for (const service::QueryOutcome& o : qs->outcomes()) {
        a.emplace_back(o.query_id, o.answer);
      }
      std::sort(a.begin(), a.end());
    }
    return answers;
  };

  const auto oracle = serve("sim", /*fair=*/true);
  size_t total = 0;
  for (const auto& [doc, answers] : oracle) total += answers.size();
  ASSERT_EQ(total, 42u);

  // Ablation on the oracle backend: policy off, same answers.
  EXPECT_EQ(oracle, serve("sim", /*fair=*/false));

  for (const std::string& backend : RealBackends()) {
    EXPECT_EQ(oracle, serve(backend, /*fair=*/true)) << backend;
    EXPECT_EQ(oracle, serve(backend, /*fair=*/false)) << backend;
  }
}

TEST(BackendDifferentialTest, UnknownBackendErrorsListRegistered) {
  testutil::RandomScenario scenario = testutil::MakeRandomScenario(7, 40, 2);
  auto session = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "quantum"});
  ASSERT_FALSE(session.ok());
  const std::string message = session.status().ToString();
  EXPECT_NE(message.find("quantum"), std::string::npos) << message;
  EXPECT_NE(message.find("sim"), std::string::npos) << message;
  EXPECT_NE(message.find("threads"), std::string::npos) << message;
  EXPECT_NE(message.find("proc"), std::string::npos) << message;

  auto bad_arg = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "threads:zero"});
  ASSERT_FALSE(bad_arg.ok());

  // The proc spec grammar rejects junk with the grammar in the
  // message, and the registry can report it (parboxq --list).
  auto bad_proc = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "proc:zero"});
  ASSERT_FALSE(bad_proc.ok());
  EXPECT_NE(bad_proc.status().ToString().find("proc[:N[,tcp]]"),
            std::string::npos)
      << bad_proc.status().ToString();
  EXPECT_EQ(exec::ExecBackendRegistry::Instance().Grammar("proc"),
            "proc[:N[,tcp]]");

  auto counted = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "threads:3"});
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->backend().name(), "threads");

  // QueryService::Create validates the same spec at construction
  // time, with the same grammar in the error.
  service::ServiceOptions bad_options;
  bad_options.backend = "proc:zero";
  auto bad_svc = service::QueryService::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      bad_options);
  ASSERT_FALSE(bad_svc.ok());
  EXPECT_NE(bad_svc.status().ToString().find("proc[:N[,tcp]]"),
            std::string::npos)
      << bad_svc.status().ToString();
}

}  // namespace
}  // namespace parbox::core
