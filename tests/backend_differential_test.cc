// The ExecBackend contract, held to by differential testing: the
// deterministic simulation is the oracle, and the thread-pool backend
// must agree with it bit-for-bit wherever the quantity is defined on
// both — answers, per-site visits, network bytes and messages, kernel
// ops, equation-system sizes, and the per-tag traffic breakdown.
// (Virtual times and event counts are sim-defined and excluded.)
//
// Covers every registered evaluator, ExecuteIncremental across random
// delta sequences (the seeded-trial harness of
// incremental_update_test.cc), and QueryService answer streams; plus
// the registry's unknown-spec UX.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/session.h"
#include "exec/backend.h"
#include "fragment/delta.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "testutil.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::FragmentSet;
using testutil::TrialMultiplier;

/// The cross-backend comparable slice of a RunReport.
void ExpectReportsAgree(const RunReport& sim, const RunReport& threads,
                        const std::string& context) {
  EXPECT_EQ(sim.answer, threads.answer) << context;
  EXPECT_EQ(sim.algorithm, threads.algorithm) << context;
  EXPECT_EQ(sim.total_ops, threads.total_ops) << context;
  EXPECT_EQ(sim.network_bytes, threads.network_bytes) << context;
  EXPECT_EQ(sim.network_messages, threads.network_messages) << context;
  EXPECT_EQ(sim.visits_per_site, threads.visits_per_site) << context;
  EXPECT_EQ(sim.eq_system_entries, threads.eq_system_entries) << context;
  for (const auto& [name, value] : sim.stats.counters()) {
    if (name.rfind("net.", 0) == 0) {
      EXPECT_EQ(value, threads.stats.Get(name)) << context << " " << name;
    }
  }
}

TEST(BackendDifferentialTest, AllEvaluatorsBitIdenticalAcrossBackends) {
  const std::vector<std::string> names =
      EvaluatorRegistry::Instance().Names();
  ASSERT_FALSE(names.empty());
  size_t trials = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    testutil::RandomScenario scenario =
        testutil::MakeRandomScenario(seed + 900, /*max_elements=*/90,
                                     /*splits=*/6);
    auto sim = Session::Create(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        SessionOptions{.backend = "sim"});
    auto threads = Session::Create(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        SessionOptions{.backend = "threads"});
    ASSERT_TRUE(sim.ok() && threads.ok());

    Rng rng(seed * 31 + 7);
    for (int i = 0; i < 3; ++i) {
      auto ast = testutil::RandomQual(&rng, 3);
      xpath::NormQuery q = xpath::Normalize(*ast);
      auto sim_q = sim->Prepare(&q);
      auto thr_q = threads->Prepare(&q);
      ASSERT_TRUE(sim_q.ok() && thr_q.ok());
      for (const std::string& name : names) {
        auto sim_report = sim->Execute(*sim_q, {.evaluator = name});
        auto thr_report = threads->Execute(*thr_q, {.evaluator = name});
        ASSERT_TRUE(sim_report.ok()) << sim_report.status().ToString();
        ASSERT_TRUE(thr_report.ok()) << thr_report.status().ToString();
        ExpectReportsAgree(*sim_report, *thr_report,
                           "seed " + std::to_string(seed) + " evaluator " +
                               name + " query " + xpath::ToString(*ast));
        ++trials;
      }
    }
  }
  EXPECT_GE(trials, 6u * 3u * names.size());
}

// ExecuteIncremental across random delta sequences: two identically
// seeded deployments, one per backend, mutated in lockstep; every
// incremental run (full, delta, and clean paths all occur) must agree
// on the comparable report slice — including the "update" traffic tag
// and per-site visits, which prove the thread pool revisits exactly
// the dirty sites the sim does.
TEST(BackendDifferentialTest, IncrementalRunsBitIdenticalAcrossBackends) {
  const int deltas_per_seed = 12 * TrialMultiplier();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomScenario for_sim =
        testutil::MakeRandomScenario(seed + 950, 70, 5);
    testutil::RandomScenario for_threads =
        testutil::MakeRandomScenario(seed + 950, 70, 5);

    auto sim = Session::Create(&for_sim.set, &for_sim.st,
                               SessionOptions{.backend = "sim"});
    auto threads = Session::Create(&for_threads.set, &for_threads.st,
                                   SessionOptions{.backend = "threads"});
    ASSERT_TRUE(sim.ok() && threads.ok());
    ASSERT_TRUE(sim->writable() && threads->writable());

    Rng rng_sim(seed * 131 + 17);
    Rng rng_thr(seed * 131 + 17);
    auto sim_q =
        sim->Prepare(xpath::Normalize(*testutil::RandomQual(&rng_sim, 3)));
    auto thr_q = threads->Prepare(
        xpath::Normalize(*testutil::RandomQual(&rng_thr, 3)));
    ASSERT_TRUE(sim_q.ok() && thr_q.ok());

    for (int d = 0; d < deltas_per_seed; ++d) {
      // Identical RNG streams over identical documents pick identical
      // deltas; apply one to each deployment.
      frag::Delta delta_sim = testutil::RandomDelta(&for_sim.set, &rng_sim);
      frag::Delta delta_thr =
          testutil::RandomDelta(&for_threads.set, &rng_thr);
      ASSERT_EQ(delta_sim.kind, delta_thr.kind);
      ASSERT_TRUE(sim->Apply(delta_sim).ok());
      ASSERT_TRUE(threads->Apply(delta_thr).ok());

      auto sim_report = sim->ExecuteIncremental(*sim_q);
      auto thr_report = threads->ExecuteIncremental(*thr_q);
      ASSERT_TRUE(sim_report.ok()) << sim_report.status().ToString();
      ASSERT_TRUE(thr_report.ok()) << thr_report.status().ToString();
      ExpectReportsAgree(
          *sim_report, *thr_report,
          "seed " + std::to_string(seed) + " delta " + std::to_string(d));

      // Every other delta, also compare the clean path (a re-run with
      // nothing dirty).
      if (d % 2 == 1) {
        auto sim_clean = sim->ExecuteIncremental(*sim_q);
        auto thr_clean = threads->ExecuteIncremental(*thr_q);
        ASSERT_TRUE(sim_clean.ok() && thr_clean.ok());
        EXPECT_EQ(sim_clean->algorithm, "IncrementalParBoX[clean]");
        ExpectReportsAgree(*sim_clean, *thr_clean,
                           "clean after seed " + std::to_string(seed) +
                               " delta " + std::to_string(d));
      }
    }
  }
}

TEST(BackendDifferentialTest, ServiceAnswerStreamsAgreeAcrossBackends) {
  testutil::RandomScenario scenario =
      testutil::MakeRandomScenario(1234, 120, 6);
  auto workload =
      service::Workload::Make({.distinct_queries = 8, .min_qlist_size = 2});
  ASSERT_TRUE(workload.ok());

  auto serve = [&](const std::string& backend) {
    service::ServiceOptions options;
    options.backend = backend;
    service::QueryService svc(
        static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
        options);
    auto report = service::RunOpenLoop(
        &svc, *workload, {.num_queries = 64, .seed = 99});
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(svc.status().ok()) << svc.status().ToString();
    // Answers by submission id (completion order may differ).
    std::vector<std::pair<uint64_t, bool>> answers;
    for (const service::QueryOutcome& outcome : svc.outcomes()) {
      answers.emplace_back(outcome.query_id, outcome.answer);
    }
    std::sort(answers.begin(), answers.end());
    return answers;
  };

  auto sim_answers = serve("sim");
  auto thr_answers = serve("threads");
  ASSERT_EQ(sim_answers.size(), 64u);
  EXPECT_EQ(sim_answers, thr_answers);
}

TEST(BackendDifferentialTest, UnknownBackendErrorsListRegistered) {
  testutil::RandomScenario scenario = testutil::MakeRandomScenario(7, 40, 2);
  auto session = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "quantum"});
  ASSERT_FALSE(session.ok());
  const std::string message = session.status().ToString();
  EXPECT_NE(message.find("quantum"), std::string::npos) << message;
  EXPECT_NE(message.find("sim"), std::string::npos) << message;
  EXPECT_NE(message.find("threads"), std::string::npos) << message;

  auto bad_arg = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "threads:zero"});
  ASSERT_FALSE(bad_arg.ok());

  auto counted = Session::Create(
      static_cast<const FragmentSet*>(&scenario.set), &scenario.st,
      SessionOptions{.backend = "threads:3"});
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->backend().name(), "threads");
}

}  // namespace
}  // namespace parbox::core
