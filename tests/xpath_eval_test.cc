#include <gtest/gtest.h>

#include "common/rng.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xmark/portfolio.h"
#include "xml/parser.h"
#include "xpath/ast.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"
#include "xpath/parser.h"
#include "xpath/reference_eval.h"

namespace parbox::xpath {
namespace {

bool EvalOn(std::string_view xml_text, std::string_view query_text) {
  auto doc = xml::ParseXml(xml_text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  auto q = CompileQuery(query_text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto result = EvalBoolean(*doc->root(), *q);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(EvalTest, EpsIsAlwaysTrue) {
  EXPECT_TRUE(EvalOn("<r/>", "[.]"));
}

TEST(EvalTest, LabelTestAtContext) {
  EXPECT_TRUE(EvalOn("<r/>", "[label() = r]"));
  EXPECT_FALSE(EvalOn("<r/>", "[label() = x]"));
}

TEST(EvalTest, ChildStep) {
  EXPECT_TRUE(EvalOn("<r><a/></r>", "[a]"));
  EXPECT_FALSE(EvalOn("<r><b/></r>", "[a]"));
  EXPECT_FALSE(EvalOn("<r><b><a/></b></r>", "[a]"));  // child, not desc
}

TEST(EvalTest, WildcardStep) {
  EXPECT_TRUE(EvalOn("<r><z/></r>", "[*]"));
  EXPECT_FALSE(EvalOn("<r>text only</r>", "[*]"));
}

TEST(EvalTest, DescendantAxisIncludesDeepNodes) {
  EXPECT_TRUE(EvalOn("<r><b><c><a/></c></b></r>", "[//a]"));
  EXPECT_FALSE(EvalOn("<r><b><c/></b></r>", "[//a]"));
}

TEST(EvalTest, DescendantOrSelfSemantics) {
  // // is descendant-or-self: r//a finds a directly below r, and
  // .//. is satisfied by the context itself.
  EXPECT_TRUE(EvalOn("<r><a/></r>", "[.//a]"));
  EXPECT_TRUE(EvalOn("<r/>", "[.//.]"));
}

TEST(EvalTest, PathChains) {
  EXPECT_TRUE(EvalOn("<r><a><b/></a></r>", "[a/b]"));
  EXPECT_FALSE(EvalOn("<r><a/><b/></r>", "[a/b]"));
  EXPECT_TRUE(EvalOn("<r><x><a><y><b/></y></a></x></r>", "[//a//b]"));
}

TEST(EvalTest, TextEquality) {
  EXPECT_TRUE(EvalOn("<r><code>GOOG</code></r>",
                     "[code/text() = \"GOOG\"]"));
  EXPECT_FALSE(EvalOn("<r><code>YHOO</code></r>",
                      "[code/text() = \"GOOG\"]"));
  // Sugar form.
  EXPECT_TRUE(EvalOn("<r><code>GOOG</code></r>", "[code = \"GOOG\"]"));
}

TEST(EvalTest, TextIsDirectContentOnly) {
  // The text of <a> is only its direct text children.
  EXPECT_FALSE(EvalOn("<r><a><b>X</b></a></r>", "[a/text() = \"X\"]"));
  EXPECT_TRUE(EvalOn("<r><a><b>X</b></a></r>", "[a/b/text() = \"X\"]"));
}

TEST(EvalTest, BooleanConnectives) {
  const char* doc = "<r><a/><b/></r>";
  EXPECT_TRUE(EvalOn(doc, "[a and b]"));
  EXPECT_FALSE(EvalOn(doc, "[a and c]"));
  EXPECT_TRUE(EvalOn(doc, "[a or c]"));
  EXPECT_FALSE(EvalOn(doc, "[c or d]"));
  EXPECT_TRUE(EvalOn(doc, "[not(c)]"));
  EXPECT_FALSE(EvalOn(doc, "[not(a)]"));
  EXPECT_TRUE(EvalOn(doc, "[not(not(a))]"));
}

TEST(EvalTest, QualifiersFilterPathNodes) {
  const char* doc =
      "<r><stock><code>GOOG</code><sell>376</sell></stock>"
      "<stock><code>YHOO</code><sell>35</sell></stock></r>";
  EXPECT_TRUE(EvalOn(doc, "[//stock[code = \"GOOG\" and sell = \"376\"]]"));
  EXPECT_FALSE(EvalOn(doc, "[//stock[code = \"YHOO\" and sell = \"376\"]]"));
  EXPECT_TRUE(EvalOn(doc, "[//stock[not(code = \"GOOG\")]]"));
}

TEST(EvalTest, IntroductionQueryOverPortfolio) {
  // Sec. 1: does GOOG reach a selling price of 376? In Fig. 1(b) the
  // sells are 373 and 372, so the answer is false; 373 exists.
  xml::Document doc = xmark::BuildPortfolioDocument();
  auto q1 = CompileQuery("[//stock[code = \"GOOG\" and sell = \"376\"]]");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(*EvalBoolean(*doc.root(), *q1));
  auto q2 = CompileQuery("[//stock[code = \"GOOG\" and sell = \"373\"]]");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(*EvalBoolean(*doc.root(), *q2));
}

TEST(EvalTest, Example21QueryIsTrueOnPortfolio) {
  xml::Document doc = xmark::BuildPortfolioDocument();
  auto q = CompileQuery(xmark::kYhooQuery);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*EvalBoolean(*doc.root(), *q));
}

TEST(EvalTest, MerillQueryOverPortfolio) {
  xml::Document doc = xmark::BuildPortfolioDocument();
  auto q = CompileQuery(xmark::kMerillQuery);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*EvalBoolean(*doc.root(), *q));
}

TEST(EvalTest, CountersTrackWork) {
  auto doc = xml::ParseXml("<r><a/><b/><c/></r>");
  auto q = CompileQuery("[//a]");
  ASSERT_TRUE(doc.ok() && q.ok());
  EvalCounters counters;
  ASSERT_TRUE(EvalBoolean(*doc->root(), *q, &counters).ok());
  EXPECT_EQ(counters.elements, 4u);
  EXPECT_EQ(counters.ops, 4u * q->size());
}

TEST(EvalTest, RejectsVirtualNodes) {
  xml::Document doc;
  xml::Node* r = doc.NewElement("r");
  doc.set_root(r);
  doc.AppendChild(r, doc.NewVirtual(1));
  auto q = CompileQuery("[//a]");
  ASSERT_TRUE(q.ok());
  auto result = EvalBoolean(*r, *q);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EvalTest, RejectsNonElementRoot) {
  xml::Document doc;
  xml::Node* t = doc.NewText("x");
  auto q = CompileQuery("[.]");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(EvalBoolean(*t, *q).ok());
}

TEST(EvalTest, DeepChainDoesNotOverflowStack) {
  // 50k nested elements would overflow a recursive evaluator.
  xml::Document doc;
  xml::Node* cur = doc.NewElement("n");
  doc.set_root(cur);
  for (int i = 0; i < 50000; ++i) {
    xml::Node* next = doc.NewElement("n");
    doc.AppendChild(cur, next);
    cur = next;
  }
  doc.AppendChild(cur, doc.NewElement("leaf"));
  auto q = CompileQuery("[//leaf]");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*EvalBoolean(*doc.root(), *q));
}

// ---------- Reference evaluator ----------

TEST(ReferenceEvalTest, PathSetsAreInDocumentOrderAndDeduped) {
  auto doc = xml::ParseXml("<r><a><b/></a><a><b/><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  auto q = ParseQuery("//b");
  ASSERT_TRUE(q.ok());
  auto nodes = ReferencePathEval(*(*q)->path, *doc->root());
  EXPECT_EQ(nodes.size(), 3u);
}

TEST(ReferenceEvalTest, AgreesOnPaperQueries) {
  xml::Document doc = xmark::BuildPortfolioDocument();
  for (const char* text :
       {xmark::kGoogSellQuery, xmark::kYhooQuery, xmark::kMerillQuery}) {
    auto ast = ParseQuery(text);
    ASSERT_TRUE(ast.ok());
    NormQuery q = Normalize(**ast);
    EXPECT_EQ(ReferenceEval(**ast, *doc.root()),
              *EvalBoolean(*doc.root(), q))
        << text;
  }
}

// The central correctness property: the production evaluator
// (normalize + vector bottomUp) agrees with the naive reference
// interpreter on random documents x random queries.
class EvalAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvalAgreementTest, ProductionMatchesReference) {
  Rng rng(GetParam());
  xml::Document doc = xmark::GenerateRandomSmallDocument(
      20 + static_cast<int>(rng.Uniform(120)), &rng);
  for (int i = 0; i < 25; ++i) {
    auto ast = testutil::RandomQual(&rng, 3);
    NormQuery q = Normalize(*ast);
    ASSERT_TRUE(q.IsWellFormed()) << ToString(*ast);
    auto fast = EvalBoolean(*doc.root(), q);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    bool slow = ReferenceEval(*ast, *doc.root());
    EXPECT_EQ(*fast, slow) << "seed " << GetParam() << " query "
                           << ToString(*ast) << "\nQList:\n" << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalAgreementTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace parbox::xpath
