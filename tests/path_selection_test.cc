// Tests for the data-selection extension: path queries returning node
// sets, matches threading through multiple fragments.

#include <gtest/gtest.h>

#include "boolexpr/expr.h"
#include "core/path_selection.h"
#include "fragment/strategies.h"
#include "testutil.h"
#include "xmark/portfolio.h"
#include "xml/parser.h"
#include "xpath/parser.h"
#include "xpath/reference_eval.h"

namespace parbox::core {
namespace {

using frag::FragmentId;
using frag::FragmentSet;
using frag::SourceTree;

struct Deployed {
  FragmentSet set;
  SourceTree st;
};

Deployed Portfolio() {
  auto set = xmark::BuildPortfolioFragments();
  EXPECT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  EXPECT_TRUE(st.ok());
  return Deployed{std::move(*set), std::move(*st)};
}

TEST(PathSelectionTest, SelectsAllStocksAcrossFragments) {
  Deployed d = Portfolio();
  auto result = RunPathSelection(d.set, d.st, "//stock");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Fig. 1(b): five stocks — 1 in F0 (IBM), 2 in F2, 2 in F3.
  EXPECT_EQ(result->total_selected, 5u);
  EXPECT_EQ(result->selected_by_fragment[0].size(), 1u);
  EXPECT_EQ(result->selected_by_fragment[1].size(), 0u);
  EXPECT_EQ(result->selected_by_fragment[2].size(), 2u);
  EXPECT_EQ(result->selected_by_fragment[3].size(), 2u);
  for (const xml::Node* n : result->AllSelected()) {
    EXPECT_EQ(n->label(), "stock");
  }
}

TEST(PathSelectionTest, ChildStepsCrossFragmentBoundaries) {
  Deployed d = Portfolio();
  // /portofolio/broker/market: brokers live in F0 and F1, markets in
  // F0, F2 and F3 — each match crosses at least one boundary.
  auto result =
      RunPathSelection(d.set, d.st, "[/portofolio/broker/market]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_selected, 3u);
  for (const xml::Node* n : result->AllSelected()) {
    EXPECT_EQ(n->label(), "market");
  }
}

TEST(PathSelectionTest, QualifiedPathFiltersRemotely) {
  Deployed d = Portfolio();
  // Markets that trade GOOG: F2 (Merill Lynch NASDAQ) and F3 (Bache
  // NASDAQ), but not the NYSE market in F0.
  auto result = RunPathSelection(
      d.set, d.st, "//market[stock/code = \"GOOG\"]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_selected, 2u);
  EXPECT_EQ(result->selected_by_fragment[2].size(), 1u);
  EXPECT_EQ(result->selected_by_fragment[3].size(), 1u);
}

TEST(PathSelectionTest, QualifierEvidenceInAnotherFragment) {
  Deployed d = Portfolio();
  // Brokers trading YHOO: the broker element is F1's root; the
  // evidence is two fragments deeper (F2).
  auto result = RunPathSelection(
      d.set, d.st, "//broker[.//stock/code/text() = \"YHOO\"]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->total_selected, 1u);
  EXPECT_EQ(result->selected_by_fragment[1].size(), 1u);
}

TEST(PathSelectionTest, SelfPathSelectsRoot) {
  Deployed d = Portfolio();
  auto result = RunPathSelection(d.set, d.st, "[.]");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->total_selected, 1u);
  EXPECT_EQ(result->AllSelected()[0], d.set.fragment(0).root);
}

TEST(PathSelectionTest, EmptyResultReportsFalse) {
  Deployed d = Portfolio();
  auto result = RunPathSelection(d.set, d.st, "//nonexistent");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_selected, 0u);
  EXPECT_FALSE(result->report.answer);
}

TEST(PathSelectionTest, AtMostTwoVisitsPerSite) {
  Deployed d = Portfolio();
  auto result = RunPathSelection(d.set, d.st, "//stock");
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->report.max_visits_per_site(), 2u);
  // Sites untouched by any match still get their up-pass visit.
  for (uint64_t visits : result->report.visits_per_site) {
    EXPECT_GE(visits, 1u);
  }
}

TEST(PathSelectionTest, WildcardAndDescendantCombinations) {
  auto doc = xml::ParseXml(
      "<r><a><b><c/></b></a><a><c/></a><d><c><c/></c></d></r>");
  ASSERT_TRUE(doc.ok());
  auto set_result = FragmentSet::FromDocument(std::move(*doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(
      set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a")).ok());
  ASSERT_TRUE(
      set.Split(0, xml::FindFirstElement(set.fragment(0).root, "d")).ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());

  struct Case {
    const char* path;
    size_t expected;
  };
  for (const Case& c : {Case{"//c", 4}, Case{"*/c", 2}, Case{"*", 3},
                        Case{"a/b/c", 1}, Case{"//b//c", 1},
                        Case{"d//c", 2}, Case{".//.", 9}}) {
    auto result = RunPathSelection(set, *st, c.path);
    ASSERT_TRUE(result.ok()) << c.path;
    EXPECT_EQ(result->total_selected, c.expected) << c.path;
  }
}

TEST(PathSelectionTest, BooleanQueryRejected) {
  Deployed d = Portfolio();
  auto result = RunPathSelection(d.set, d.st, "[//a and //b]");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Property: selection equals the reference path evaluator over the
// reassembled tree (counts compared; pointers differ by construction).
class PathSelectionPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathSelectionPropertyTest, MatchesReferencePathSemantics) {
  Rng rng(GetParam() * 613 + 11);
  auto scenario = testutil::MakeRandomScenario(GetParam() + 4000, 70, 4);
  for (int i = 0; i < 6; ++i) {
    auto path = testutil::RandomPath(&rng, 3);
    xpath::SelectionQuery selection = xpath::NormalizeSelection(*path);
    if (selection.query.size() >
        static_cast<size_t>(bexpr::VarId::kMaxQueryIndex)) {
      continue;
    }
    auto result = RunPathSelection(scenario.set, scenario.st, selection);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    auto whole = scenario.set.Reassemble();
    ASSERT_TRUE(whole.ok());
    auto expected = xpath::ReferencePathEval(*path, *whole->root());
    EXPECT_EQ(result->total_selected, expected.size())
        << "seed " << GetParam() << " path " << xpath::ToString(*path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathSelectionPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace parbox::core
