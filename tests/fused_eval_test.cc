// Fused multi-query evaluation: the batch kernel must be *id-exact* —
// every lane's triplet carries the same consed ExprIds a solo
// PartialEvalFragment of that query produces in the same factory —
// and its accounting must charge only non-shared entries.

#include <gtest/gtest.h>

#include <vector>

#include "boolexpr/expr.h"
#include "core/partial_eval.h"
#include "testutil.h"
#include "xmark/queries.h"
#include "xpath/eval_batch.h"
#include "xpath/fingerprint.h"
#include "xpath/normalize.h"

namespace parbox::core {
namespace {

using frag::FragmentSet;
using frag::SourceTree;

xpath::NormQuery Compile(std::string_view text) {
  auto q = xpath::CompileQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

xpath::NormQuery Family(int steps, int variant) {
  auto q = xmark::MakeFamilyQuery(steps, variant);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

// ---------- Batch layout ----------

TEST(EvalBatchTest, FamilyMembersShareTheBasePrefix) {
  const xpath::NormQuery base = Family(4, -1);
  const xpath::NormQuery v0 = Family(4, 0);
  const xpath::NormQuery v1 = Family(4, 1);

  // The base's FULL QList is a literal prefix of each variant's.
  EXPECT_TRUE(xpath::IsQListPrefix(base, v0));
  EXPECT_TRUE(xpath::IsQListPrefix(base, v1));
  EXPECT_FALSE(xpath::IsQListPrefix(v0, v1));  // divergent qualifiers
  EXPECT_EQ(xpath::CommonQListPrefix(v0, v1), base.size());

  auto batch = xpath::MakeEvalBatch({&v0, &v1, &base});
  ASSERT_EQ(batch.lanes.size(), 3u);
  // Lane 0 has no earlier lane to borrow from.
  EXPECT_EQ(batch.lanes[0].donor, -1);
  EXPECT_EQ(batch.lanes[0].shared, 0u);
  // v1 shares the base prefix with v0; base is a full-prefix lane.
  EXPECT_EQ(batch.lanes[1].donor, 0);
  EXPECT_EQ(batch.lanes[1].shared, base.size());
  EXPECT_EQ(batch.lanes[2].donor, 0);
  EXPECT_EQ(batch.lanes[2].shared, base.size());
  EXPECT_EQ(batch.lanes[2].width, base.size());  // copies everything
  EXPECT_EQ(batch.total_width, v0.size() + v1.size() + base.size());
  EXPECT_EQ(batch.max_width, v0.size());
}

TEST(EvalBatchTest, UnrelatedQueriesGetNoDonor) {
  // a's QList starts with Eps (path qual), b's with LabelIs: no
  // common prefix, so the second lane evaluates everything itself.
  const xpath::NormQuery a = Compile("[//regions/africa]");
  const xpath::NormQuery b = Compile("[not(label() = nosuchlabel)]");
  EXPECT_EQ(xpath::CommonQListPrefix(a, b), 0u);
  auto batch = xpath::MakeEvalBatch({&a, &b});
  EXPECT_EQ(batch.lanes[1].donor, -1);
  EXPECT_EQ(batch.lanes[1].shared, 0u);
}

// ---------- Prefix digests ----------

TEST(PrefixDigestTest, MatchesIffPrefixesMatch) {
  const xpath::NormQuery base = Family(5, -1);
  const xpath::NormQuery v0 = Family(5, 0);
  const xpath::NormQuery other = Family(6, -1);

  // The variant's prefix digest at |base| equals the base's own
  // full-entry digest (the subsumption probe key).
  EXPECT_EQ(xpath::PrefixDigest(v0, base.size()),
            xpath::PrefixDigest(base, base.size()));
  // Length is folded in: a shorter prefix never aliases a longer one.
  EXPECT_NE(xpath::PrefixDigest(v0, base.size()),
            xpath::PrefixDigest(v0, v0.size()));
  // Different chains diverge.
  EXPECT_NE(xpath::PrefixDigest(other, base.size()),
            xpath::PrefixDigest(base, base.size()));

  const auto all = xpath::AllPrefixDigests(v0);
  ASSERT_EQ(all.size(), v0.size());
  for (size_t len = 1; len <= v0.size(); ++len) {
    EXPECT_EQ(all[len - 1], xpath::PrefixDigest(v0, len)) << len;
  }
}

// ---------- Id-exactness against solo walks ----------

struct Scenario {
  FragmentSet set;
  SourceTree st;
};

Scenario MakeScenario(uint64_t seed) {
  auto sc = testutil::MakeRandomScenario(seed, /*max_elements=*/400,
                                         /*splits=*/6);
  return Scenario{std::move(sc.set), std::move(sc.st)};
}

void ExpectFusedMatchesSolo(const std::vector<const xpath::NormQuery*>& qs,
                            uint64_t seed) {
  Scenario sc = MakeScenario(seed);
  const auto batch = BuildFusedBatch(qs);

  for (frag::FragmentId f : sc.set.live_ids()) {
    // Solo walks first, then the fused walk, all in ONE factory: the
    // fused triplets must resolve to the very same ExprIds (no new
    // interning) — that is the cross-query CSE claim made literal.
    bexpr::ExprFactory factory;
    std::vector<bexpr::FragmentEquations> solo;
    xpath::EvalCounters solo_counters;
    for (const xpath::NormQuery* q : qs) {
      solo.push_back(
          PartialEvalFragment(&factory, *q, sc.set, f, &solo_counters));
    }
    const uint64_t nodes_before = factory.total_nodes();

    xpath::EvalCounters fused_counters;
    xpath::BatchEvalStats stats;
    auto fused = PartialEvalFragmentBatch(&factory, batch, sc.set, f,
                                          &fused_counters, &stats);
    EXPECT_EQ(factory.total_nodes(), nodes_before)
        << "fused walk interned formulas the solo walks did not";

    ASSERT_EQ(fused.size(), qs.size());
    for (size_t k = 0; k < qs.size(); ++k) {
      EXPECT_EQ(fused[k].fragment, f);
      EXPECT_EQ(fused[k].v, solo[k].v) << "lane " << k;
      EXPECT_EQ(fused[k].cv, solo[k].cv) << "lane " << k;
      EXPECT_EQ(fused[k].dv, solo[k].dv) << "lane " << k;
    }

    // Accounting: one element charge per node per walk; the fused op
    // count plus donor-copied slots re-derives the per-lane total.
    EXPECT_EQ(solo_counters.elements,
              fused_counters.elements * qs.size());
    EXPECT_EQ(fused_counters.ops + stats.shared_entries,
              solo_counters.ops);
    size_t total_shared = 0;
    for (const auto& lane : batch.lanes) total_shared += lane.shared;
    if (total_shared > 0) {
      // With any real sharing the fused walk must do strictly less.
      EXPECT_LT(fused_counters.ops, solo_counters.ops);
    }
  }
}

TEST(FusedEvalTest, FamilyBatchIsIdExact) {
  std::vector<xpath::NormQuery> qs;
  for (int v = -1; v < 5; ++v) qs.push_back(Family(6, v));
  std::vector<const xpath::NormQuery*> ptrs;
  for (const auto& q : qs) ptrs.push_back(&q);
  ExpectFusedMatchesSolo(ptrs, /*seed=*/17);
}

TEST(FusedEvalTest, FullPrefixLaneIsIdExact) {
  // The base placed AFTER a variant: its whole QList is donor-copied,
  // zero per-node evaluation of its own.
  xpath::NormQuery v0 = Family(5, 0);
  xpath::NormQuery base = Family(5, -1);
  ExpectFusedMatchesSolo({&v0, &base}, /*seed=*/23);
}

TEST(FusedEvalTest, UnrelatedBatchIsIdExact) {
  xpath::NormQuery a = Compile("[//item/description]");
  xpath::NormQuery b = Compile("[not(//regions/africa)]");
  xpath::NormQuery c = Compile("[label() = site and //parlist]");
  ExpectFusedMatchesSolo({&a, &b, &c}, /*seed=*/31);
}

TEST(FusedEvalTest, RandomQualBatchesAreIdExact) {
  Rng rng(404);
  for (int trial = 0; trial < 6 * testutil::TrialMultiplier(); ++trial) {
    std::vector<xpath::NormQuery> qs;
    for (int k = 0; k < 4; ++k) {
      auto ast = testutil::RandomQual(&rng, /*depth=*/3);
      qs.push_back(xpath::Normalize(*ast));
    }
    std::vector<const xpath::NormQuery*> ptrs;
    for (const auto& q : qs) ptrs.push_back(&q);
    ExpectFusedMatchesSolo(ptrs, /*seed=*/1000 + trial);
  }
}

TEST(FusedEvalTest, SingleLaneDegeneratesToSolo) {
  xpath::NormQuery q = Family(4, 2);
  ExpectFusedMatchesSolo({&q}, /*seed=*/7);
}

}  // namespace
}  // namespace parbox::core
