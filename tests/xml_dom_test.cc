#include <gtest/gtest.h>

#include "xml/dom.h"

namespace parbox::xml {
namespace {

Document SmallDoc() {
  // <r><a>hi</a><b/><a><c/></a></r>
  Document doc;
  Node* r = doc.NewElement("r");
  doc.set_root(r);
  Node* a1 = doc.NewElement("a");
  doc.AppendChild(a1, doc.NewText("hi"));
  doc.AppendChild(r, a1);
  doc.AppendChild(r, doc.NewElement("b"));
  Node* a2 = doc.NewElement("a");
  doc.AppendChild(a2, doc.NewElement("c"));
  doc.AppendChild(r, a2);
  return doc;
}

TEST(DomTest, NodeKindsAndAccessors) {
  Document doc;
  Node* e = doc.NewElement("item");
  Node* t = doc.NewText("42");
  Node* v = doc.NewVirtual(7);
  EXPECT_TRUE(e->is_element());
  EXPECT_EQ(e->label(), "item");
  EXPECT_EQ(e->text(), "");
  EXPECT_TRUE(t->is_text());
  EXPECT_EQ(t->text(), "42");
  EXPECT_EQ(t->label(), "");
  EXPECT_TRUE(v->is_virtual());
  EXPECT_EQ(v->fragment_ref, 7);
}

TEST(DomTest, AppendChildLinksSiblings) {
  Document doc = SmallDoc();
  Node* r = doc.root();
  ASSERT_NE(r->first_child, nullptr);
  EXPECT_EQ(r->first_child->label(), "a");
  EXPECT_EQ(r->first_child->next_sibling->label(), "b");
  EXPECT_EQ(r->last_child->label(), "a");
  EXPECT_EQ(r->last_child->prev_sibling->label(), "b");
  EXPECT_EQ(ValidateLinks(r).ToString(), "ok");
}

TEST(DomTest, InsertBeforePositions) {
  Document doc;
  Node* r = doc.NewElement("r");
  doc.set_root(r);
  Node* b = doc.NewElement("b");
  doc.AppendChild(r, b);
  Node* a = doc.NewElement("a");
  doc.InsertBefore(r, a, b);
  Node* c = doc.NewElement("c");
  doc.InsertBefore(r, c, nullptr);  // acts as append
  EXPECT_EQ(r->first_child, a);
  EXPECT_EQ(a->next_sibling, b);
  EXPECT_EQ(b->next_sibling, c);
  EXPECT_EQ(ValidateLinks(r).ToString(), "ok");
}

TEST(DomTest, DetachMiddleChild) {
  Document doc = SmallDoc();
  Node* r = doc.root();
  Node* b = r->first_child->next_sibling;
  doc.Detach(b);
  EXPECT_EQ(b->parent, nullptr);
  EXPECT_EQ(r->first_child->next_sibling->label(), "a");
  EXPECT_EQ(CountNodes(r), 5u);  // r, a(hi text), a, c
  EXPECT_EQ(ValidateLinks(r).ToString(), "ok");
}

TEST(DomTest, DetachFirstAndLast) {
  Document doc = SmallDoc();
  Node* r = doc.root();
  doc.Detach(r->first_child);
  doc.Detach(r->last_child);
  ASSERT_NE(r->first_child, nullptr);
  EXPECT_EQ(r->first_child, r->last_child);
  EXPECT_EQ(r->first_child->label(), "b");
  EXPECT_EQ(ValidateLinks(r).ToString(), "ok");
}

TEST(DomTest, DetachRootClearsDocumentRoot) {
  Document doc = SmallDoc();
  doc.Detach(doc.root());
  EXPECT_EQ(doc.root(), nullptr);
}

TEST(DomTest, Counts) {
  Document doc = SmallDoc();
  EXPECT_EQ(CountNodes(doc.root()), 6u);
  EXPECT_EQ(CountElements(doc.root()), 5u);
  EXPECT_EQ(CountVirtuals(doc.root()), 0u);
  EXPECT_EQ(TreeDepth(doc.root()), 3u);
  EXPECT_EQ(CountNodes(nullptr), 0u);
  EXPECT_EQ(TreeDepth(nullptr), 0u);
}

TEST(DomTest, CountVirtualsFindsPlaceholders) {
  Document doc;
  Node* r = doc.NewElement("r");
  doc.set_root(r);
  doc.AppendChild(r, doc.NewVirtual(1));
  Node* mid = doc.NewElement("m");
  doc.AppendChild(r, mid);
  doc.AppendChild(mid, doc.NewVirtual(2));
  EXPECT_EQ(CountVirtuals(r), 2u);
}

TEST(DomTest, DeepCopyEqualsOriginal) {
  Document doc = SmallDoc();
  Document other;
  Node* copy = other.DeepCopy(doc.root());
  other.set_root(copy);
  EXPECT_TRUE(TreeEquals(doc.root(), copy));
  EXPECT_EQ(ValidateLinks(copy).ToString(), "ok");
  // Copies are independent nodes.
  EXPECT_NE(doc.root(), copy);
}

TEST(DomTest, TreeEqualsDetectsDifferences) {
  Document a = SmallDoc();
  Document b = SmallDoc();
  EXPECT_TRUE(TreeEquals(a.root(), b.root()));
  // Change a label.
  Document c = SmallDoc();
  Node* extra = c.NewElement("z");
  c.AppendChild(c.root(), extra);
  EXPECT_FALSE(TreeEquals(a.root(), c.root()));
  // Null handling.
  EXPECT_TRUE(TreeEquals(nullptr, nullptr));
  EXPECT_FALSE(TreeEquals(a.root(), nullptr));
}

TEST(DomTest, DirectTextEqualsSingleChild) {
  Document doc;
  Node* e = doc.NewElement("code");
  doc.AppendChild(e, doc.NewText("GOOG"));
  EXPECT_TRUE(DirectTextEquals(*e, "GOOG"));
  EXPECT_FALSE(DirectTextEquals(*e, "GOO"));
  EXPECT_FALSE(DirectTextEquals(*e, "GOOGL"));
  EXPECT_EQ(DirectText(*e), "GOOG");
}

TEST(DomTest, DirectTextConcatenatesAcrossElements) {
  Document doc;
  Node* e = doc.NewElement("p");
  doc.AppendChild(e, doc.NewText("ab"));
  Node* inner = doc.NewElement("i");
  doc.AppendChild(inner, doc.NewText("IGNORED"));
  doc.AppendChild(e, inner);
  doc.AppendChild(e, doc.NewText("cd"));
  EXPECT_TRUE(DirectTextEquals(*e, "abcd"));
  EXPECT_FALSE(DirectTextEquals(*e, "abIGNOREDcd"));
  EXPECT_EQ(DirectText(*e), "abcd");
}

TEST(DomTest, DirectTextOnEmptyElement) {
  Document doc;
  Node* e = doc.NewElement("empty");
  EXPECT_TRUE(DirectTextEquals(*e, ""));
  EXPECT_FALSE(DirectTextEquals(*e, "x"));
}

TEST(DomTest, DirectTextOnTextNode) {
  Document doc;
  Node* t = doc.NewText("v");
  EXPECT_TRUE(DirectTextEquals(*t, "v"));
  EXPECT_FALSE(DirectTextEquals(*t, ""));
}

TEST(DomTest, FindFirstElementDocumentOrder) {
  Document doc = SmallDoc();
  Node* a = FindFirstElement(doc.root(), "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, doc.root()->first_child);
  EXPECT_EQ(FindFirstElement(doc.root(), "nope"), nullptr);
  // Matches the root itself.
  EXPECT_EQ(FindFirstElement(doc.root(), "r"), doc.root());
}

TEST(DomTest, ValidateLinksCatchesCorruption) {
  Document doc = SmallDoc();
  Node* r = doc.root();
  r->first_child->parent = nullptr;  // corrupt
  EXPECT_FALSE(ValidateLinks(r).ok());
}

TEST(DomTest, ArenaBytesGrowWithContent) {
  Document doc;
  doc.set_root(doc.NewElement("r"));
  size_t before = doc.arena_bytes();
  for (int i = 0; i < 100; ++i) {
    doc.AppendChild(doc.root(), doc.NewElement("child"));
  }
  EXPECT_GT(doc.arena_bytes(), before);
}

TEST(DomTest, MoveDocumentKeepsNodesValid) {
  Document doc = SmallDoc();
  Node* r = doc.root();
  Document moved = std::move(doc);
  EXPECT_EQ(moved.root(), r);
  EXPECT_EQ(CountElements(moved.root()), 5u);
}

}  // namespace
}  // namespace parbox::xml
