#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.h"
#include "sim/event_loop.h"
#include "sim/traffic.h"

namespace parbox::sim {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.At(2.0, [&] { order.push_back(2); });
  loop.At(1.0, [&] { order.push_back(1); });
  loop.At(3.0, [&] { order.push_back(3); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 3.0);
  EXPECT_EQ(loop.events_run(), 3u);
}

TEST(EventLoopTest, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.At(1.0, [&, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ReentrantScheduling) {
  EventLoop loop;
  std::vector<double> times;
  loop.At(1.0, [&] {
    times.push_back(loop.now());
    loop.After(0.5, [&] { times.push_back(loop.now()); });
  });
  loop.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(ClusterTest, ComputeChargesDuration) {
  NetworkParams params;
  params.site_ops_per_second = 1000.0;
  Cluster cluster(2, params);
  double done_at = -1;
  cluster.Compute(0, 500, [&] { done_at = cluster.now(); });
  cluster.Run();
  EXPECT_DOUBLE_EQ(done_at, 0.5);
  EXPECT_DOUBLE_EQ(cluster.busy_seconds(0), 0.5);
  EXPECT_DOUBLE_EQ(cluster.busy_seconds(1), 0.0);
}

TEST(ClusterTest, SiteSerializesItsQueue) {
  NetworkParams params;
  params.site_ops_per_second = 1000.0;
  Cluster cluster(1, params);
  std::vector<double> finish;
  cluster.Compute(0, 1000, [&] { finish.push_back(cluster.now()); });
  cluster.Compute(0, 1000, [&] { finish.push_back(cluster.now()); });
  cluster.Run();
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_DOUBLE_EQ(finish[0], 1.0);
  EXPECT_DOUBLE_EQ(finish[1], 2.0);  // FIFO, not parallel
}

TEST(ClusterTest, SitesRunInParallel) {
  NetworkParams params;
  params.site_ops_per_second = 1000.0;
  Cluster cluster(2, params);
  double makespan_contrib = 0;
  cluster.Compute(0, 1000, [&] {});
  cluster.Compute(1, 1000, [&] {});
  double makespan = cluster.Run();
  (void)makespan_contrib;
  EXPECT_DOUBLE_EQ(makespan, 1.0);  // not 2.0
  EXPECT_DOUBLE_EQ(cluster.total_busy_seconds(), 2.0);
}

TEST(ClusterTest, SendChargesLatencyAndBandwidth) {
  NetworkParams params;
  params.latency_seconds = 0.1;
  params.bandwidth_bytes_per_second = 100.0;
  Cluster cluster(2, params);
  double arrival = -1;
  cluster.Send(0, 1, 50, "data", [&] { arrival = cluster.now(); });
  cluster.Run();
  EXPECT_DOUBLE_EQ(arrival, 0.1 + 0.5);
  EXPECT_EQ(cluster.traffic().total_bytes(), 50u);
  EXPECT_EQ(cluster.traffic().total_messages(), 1u);
  EXPECT_EQ(cluster.traffic().bytes_with_tag("data"), 50u);
  EXPECT_EQ(cluster.traffic().bytes_into(1), 50u);
}

TEST(ClusterTest, LocalSendIsFreeAndUntracked) {
  Cluster cluster(2);
  bool delivered = false;
  cluster.Send(1, 1, 1 << 20, "data", [&] { delivered = true; });
  double makespan = cluster.Run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(makespan, 0.0);
  EXPECT_EQ(cluster.traffic().total_bytes(), 0u);
}

TEST(ClusterTest, VisitAccounting) {
  Cluster cluster(3);
  cluster.RecordVisit(1);
  cluster.RecordVisit(1);
  cluster.RecordVisit(2);
  EXPECT_EQ(cluster.visits(0), 0u);
  EXPECT_EQ(cluster.visits(1), 2u);
  EXPECT_EQ(cluster.visits(2), 1u);
  EXPECT_EQ(cluster.all_visits(), (std::vector<uint64_t>{0, 2, 1}));
}

TEST(ClusterTest, PipelinedRequestReplyTiming) {
  // request (latency only) -> compute -> reply: classic round trip.
  NetworkParams params;
  params.latency_seconds = 0.25;
  params.bandwidth_bytes_per_second = 1e9;
  params.site_ops_per_second = 100.0;
  Cluster cluster(2, params);
  double reply_at = -1;
  cluster.Send(0, 1, 0, "request", [&] {
    cluster.Compute(1, 100, [&] {
      cluster.Send(1, 0, 0, "reply", [&] { reply_at = cluster.now(); });
    });
  });
  cluster.Run();
  EXPECT_DOUBLE_EQ(reply_at, 0.25 + 1.0 + 0.25);
}

TEST(TrafficTest, TagAggregation) {
  TrafficStats traffic;
  traffic.Record(0, 1, 10, "query");
  traffic.Record(0, 2, 20, "query");
  traffic.Record(1, 0, 5, "triplet");
  EXPECT_EQ(traffic.total_bytes(), 35u);
  EXPECT_EQ(traffic.total_messages(), 3u);
  EXPECT_EQ(traffic.bytes_with_tag("query"), 30u);
  EXPECT_EQ(traffic.bytes_with_tag("nope"), 0u);
  std::string s = traffic.ToString();
  EXPECT_NE(s.find("query"), std::string::npos);
}

}  // namespace
}  // namespace parbox::sim
