// Coverage for fragment/strategies.cc: the FT1/FT2/FT3 fragment-tree
// shapes the experiments carve (Fig. 6), determinism of the seeded
// random fragmenter, and the site-assignment invariants the
// coordinator placement relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fragment/fragment.h"
#include "fragment/strategies.h"
#include "xmark/generator.h"

namespace parbox {
namespace {

frag::FragmentSet SplitLabeled(xml::Document doc, const char* label) {
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  auto created = frag::SplitAtAllLabeled(&*set, label);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_TRUE(set->Validate().ok());
  return std::move(*set);
}

// ---- Fragment-tree shapes (Fig. 6) -------------------------------------

// FT1, the star: every site fragment is a direct sub-fragment of F0
// and has no sub-fragments of its own.
TEST(StrategiesTest, StarSplitYieldsFT1Shape) {
  // The generator emits a document root plus kSites <site> subtrees;
  // splitting at "site" leaves F0 = the root shell with every site
  // fragment as a direct sub-fragment.
  const int kSites = 8;
  frag::FragmentSet set = SplitLabeled(
      xmark::GenerateStarDocument(kSites, 4096, /*seed=*/11), "site");
  ASSERT_EQ(set.live_count(), static_cast<size_t>(kSites) + 1);

  const frag::Fragment& root = set.fragment(set.root_fragment());
  EXPECT_EQ(root.parent, frag::kNoFragment);
  EXPECT_EQ(root.children.size(), static_cast<size_t>(kSites));
  for (frag::FragmentId f : set.live_ids()) {
    if (f == set.root_fragment()) continue;
    EXPECT_EQ(set.fragment(f).parent, set.root_fragment());
    EXPECT_TRUE(set.fragment(f).children.empty());
  }
}

// FT2, the chain: F_{i+1} is the only sub-fragment of F_i.
TEST(StrategiesTest, ChainSplitYieldsFT2Shape) {
  const int kDepth = 6;
  frag::FragmentSet set = SplitLabeled(
      xmark::GenerateChainDocument(kDepth, 4096, /*seed=*/12), "site");
  ASSERT_EQ(set.live_count(), static_cast<size_t>(kDepth));

  frag::FragmentId f = set.root_fragment();
  int length = 1;
  while (!set.fragment(f).children.empty()) {
    ASSERT_EQ(set.fragment(f).children.size(), 1u) << "fragment " << f;
    const frag::FragmentId child = set.fragment(f).children[0];
    EXPECT_EQ(set.fragment(child).parent, f);
    f = child;
    ++length;
  }
  EXPECT_EQ(length, kDepth);
}

// FT3, the bushy mix of Fig. 6: the fragment tree reproduces the
// generator topology 0 -> {1,2,3}, 1 -> {4,5}, 2 -> {6}, 3 -> {7}.
TEST(StrategiesTest, BushySplitYieldsFT3Shape) {
  const std::vector<std::vector<int>> topology = {{1, 2, 3}, {4, 5}, {6},
                                                  {7},       {},     {},
                                                  {},        {}};
  frag::FragmentSet set = SplitLabeled(
      xmark::GenerateTreeDocument(topology,
                                  std::vector<uint64_t>(8, 2048),
                                  /*seed=*/13),
      "site");
  ASSERT_EQ(set.live_count(), 8u);

  // Child-count multiset per depth matches the topology. (Fragment ids
  // are assigned in split order, outermost first, so map fragments to
  // topology nodes by walking the fragment tree from the root.)
  std::vector<size_t> expected;
  for (const auto& children : topology) expected.push_back(children.size());
  std::vector<size_t> actual;
  for (frag::FragmentId f : set.live_ids()) {
    actual.push_back(set.fragment(f).children.size());
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);

  // The root has exactly the topology's fan-out and depth 2 below it.
  EXPECT_EQ(set.fragment(set.root_fragment()).children.size(), 3u);
}

// ---- RandomSplits determinism ------------------------------------------

// The same seed must produce the same fragmentation: identical created
// ids and identical per-fragment element counts.
TEST(StrategiesTest, RandomSplitsDeterministicUnderFixedSeed) {
  auto make = [](uint64_t seed) {
    Rng doc_rng(7);
    xml::Document doc = xmark::GenerateRandomSmallDocument(200, &doc_rng);
    auto set = frag::FragmentSet::FromDocument(std::move(doc));
    EXPECT_TRUE(set.ok());
    Rng rng(seed);
    auto created = frag::RandomSplits(&*set, 6, &rng);
    EXPECT_TRUE(created.ok());
    return std::make_pair(std::move(*set), std::move(*created));
  };

  auto [set_a, created_a] = make(42);
  auto [set_b, created_b] = make(42);
  EXPECT_EQ(created_a, created_b);
  ASSERT_EQ(set_a.live_count(), set_b.live_count());
  for (frag::FragmentId f : set_a.live_ids()) {
    EXPECT_EQ(set_a.FragmentElements(f), set_b.FragmentElements(f))
        << "fragment " << f;
    EXPECT_EQ(set_a.fragment(f).parent, set_b.fragment(f).parent);
    EXPECT_EQ(set_a.fragment(f).children, set_b.fragment(f).children);
  }

  // A different seed diverges (on a 200-element document the candidate
  // pool is large enough that collision would be a miracle).
  auto [set_c, created_c] = make(43);
  bool same = set_c.live_count() == set_a.live_count();
  if (same) {
    for (frag::FragmentId f : set_a.live_ids()) {
      same = same && set_a.FragmentElements(f) == set_c.FragmentElements(f);
    }
  }
  EXPECT_FALSE(same);
}

// RandomSplits respects min_elements and stops when candidates run out.
TEST(StrategiesTest, RandomSplitsStopsWhenCandidatesRunOut) {
  Rng doc_rng(3);
  xml::Document doc = xmark::GenerateRandomSmallDocument(12, &doc_rng);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  ASSERT_TRUE(set.ok());
  Rng rng(5);
  auto created = frag::RandomSplits(&*set, 1000, &rng,
                                    /*min_elements=*/2);
  ASSERT_TRUE(created.ok());
  EXPECT_LT(created->size(), 1000u);
  EXPECT_TRUE(set->Validate().ok());
}

// ---- Site assignments --------------------------------------------------

// AssignRoundRobin pins the root fragment to site 0 (the coordinator)
// and keeps every other fragment off it, within [1, num_sites).
TEST(StrategiesTest, AssignRoundRobinPinsRootToSiteZero) {
  Rng doc_rng(9);
  xml::Document doc = xmark::GenerateRandomSmallDocument(150, &doc_rng);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  ASSERT_TRUE(set.ok());
  Rng rng(2);
  ASSERT_TRUE(frag::RandomSplits(&*set, 7, &rng).ok());

  for (int num_sites : {1, 2, 3, 5}) {
    const std::vector<frag::SiteId> site_of =
        frag::AssignRoundRobin(*set, num_sites);
    EXPECT_EQ(site_of[set->root_fragment()], 0)
        << num_sites << " sites";
    for (frag::FragmentId f : set->live_ids()) {
      EXPECT_GE(site_of[f], 0);
      EXPECT_LT(site_of[f], num_sites);
      if (num_sites > 1 && f != set->root_fragment()) {
        EXPECT_NE(site_of[f], 0) << "fragment " << f << " shares the "
                                    "coordinator site";
      }
    }
  }
}

TEST(StrategiesTest, AssignOneSitePerFragmentIsDenseAndDisjoint) {
  Rng doc_rng(4);
  xml::Document doc = xmark::GenerateRandomSmallDocument(100, &doc_rng);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  ASSERT_TRUE(set.ok());
  Rng rng(8);
  ASSERT_TRUE(frag::RandomSplits(&*set, 5, &rng).ok());

  const std::vector<frag::SiteId> site_of =
      frag::AssignOneSitePerFragment(*set);
  std::vector<frag::SiteId> seen;
  for (frag::FragmentId f : set->live_ids()) seen.push_back(site_of[f]);
  std::sort(seen.begin(), seen.end());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<frag::SiteId>(i));
  }
}

}  // namespace
}  // namespace parbox
