// Fair-share serving integration suite: the DWRR admission scheduler
// wired through CatalogService/QueryService, driven by the
// cross-document workload planner.
//
//   * Answer exactness — scheduler on vs off over the SAME pre-drawn
//     cross-document plan yields identical per-document answer
//     streams (the scheduler moves WHEN rounds start, never what they
//     compute); the cross-backend legs live in
//     backend_differential_test.cc.
//   * Report consistency — the aggregate report's per-document rows
//     reconcile with each document's own report: completions sum,
//     percentiles match, qps rows sum to the aggregate rate.
//   * Admission edge cases — a same-timestamp burst wider than
//     max_batch_queries spills into ceil(n/max) rounds; zero-weight
//     tenants are rejected at configuration time with a useful error.
//   * The update priority lane applies deltas ahead of a read
//     backlog, and reads serialized after the update see its effect.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "fragment/delta.h"
#include "fragment/placement.h"
#include "fragment/strategies.h"
#include "service/catalog_service.h"
#include "service/query_service.h"
#include "service/scheduler.h"
#include "service/workload.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xpath/normalize.h"

namespace parbox {
namespace {

using catalog::Catalog;
using catalog::CatalogOptions;
using service::CatalogService;
using service::CrossDocPlan;
using service::QueryService;
using service::ServiceOptions;
using service::ServiceReport;
using service::TenantConfig;
using service::Workload;

/// A catalog of `num_docs` deterministic random documents named
/// "d0".."dN-1", plus a service over them with the given options.
struct FairDeployment {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<CatalogService> service;
  std::vector<std::string> docs;
};

FairDeployment MakeFairDeployment(size_t num_docs,
                                  const ServiceOptions& options,
                                  const std::string& backend = "sim") {
  FairDeployment d;
  CatalogOptions cat_options;
  cat_options.backend = backend;
  auto cat = Catalog::Create(cat_options);
  EXPECT_TRUE(cat.ok()) << cat.status().ToString();
  d.catalog = std::move(*cat);
  for (size_t i = 0; i < num_docs; ++i) {
    Rng rng(900 + i);
    xml::Document doc = xmark::GenerateRandomSmallDocument(120, &rng);
    auto set = frag::FragmentSet::FromDocument(std::move(doc));
    EXPECT_TRUE(set.ok());
    EXPECT_TRUE(frag::RandomSplits(&*set, 5, &rng).ok());
    auto placement = frag::Placement::Create(
        *set, frag::AssignOneSitePerFragment(*set));
    EXPECT_TRUE(placement.ok());
    const std::string name = "d" + std::to_string(i);
    EXPECT_TRUE(d.catalog
                    ->Open(name, std::move(*set), std::move(*placement))
                    .ok());
    d.docs.push_back(name);
  }
  auto svc = CatalogService::Create(d.catalog.get(), options);
  EXPECT_TRUE(svc.ok()) << svc.status().ToString();
  d.service = std::move(*svc);
  return d;
}

Workload MakeSkewedWorkload() {
  auto workload = Workload::Make({.distinct_queries = 6,
                                  .min_qlist_size = 2,
                                  .hot_multiplier = 8.0});
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return std::move(*workload);
}

/// Per-document (query_id, answer) streams, sorted by id.
std::map<std::string, std::vector<std::pair<uint64_t, bool>>> AnswersByDoc(
    const FairDeployment& d) {
  std::map<std::string, std::vector<std::pair<uint64_t, bool>>> out;
  for (const std::string& doc : d.docs) {
    const QueryService* qs = d.service->document_service(doc);
    EXPECT_NE(qs, nullptr);
    auto& answers = out[doc];
    for (const service::QueryOutcome& o : qs->outcomes()) {
      answers.emplace_back(o.query_id, o.answer);
    }
    std::sort(answers.begin(), answers.end());
  }
  return out;
}

// ---- Answer exactness ---------------------------------------------------

TEST(FairShareServiceTest, SchedulerOnOffAnswersIdentical) {
  const Workload workload = MakeSkewedWorkload();
  const CrossDocPlan plan = service::MakeCrossDocPlan(
      workload, 3,
      {.num_queries = 60, .arrival_rate_qps = 3000.0, .seed = 17});

  auto run = [&](bool fair) {
    ServiceOptions options;
    options.enable_fair_share = fair;
    options.fair_share.max_in_flight = 1;  // maximal contention
    FairDeployment d = MakeFairDeployment(3, options);
    if (fair) {
      EXPECT_TRUE(d.service
                      ->ConfigureTenant("d0", TenantConfig{.weight = 4.0})
                      .ok());
    }
    auto report =
        service::RunCrossDocOpenLoop(d.service.get(), workload, d.docs, plan);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::make_pair(AnswersByDoc(d), report->sched_deferred);
  };

  const auto [fair_answers, fair_deferred] = run(true);
  const auto [fifo_answers, fifo_deferred] = run(false);
  EXPECT_EQ(fair_answers, fifo_answers);
  // The policy actually engaged: with one dispatch slot and 3
  // documents, rounds had to queue.
  EXPECT_GT(fair_deferred, 0u);
  EXPECT_EQ(fifo_deferred, 0u) << "FIFO baseline has no scheduler";
}

// ---- Report consistency (per-doc rows vs aggregate) ---------------------

TEST(FairShareServiceTest, PerDocumentRowsReconcileWithAggregate) {
  const Workload workload = MakeSkewedWorkload();
  const CrossDocPlan plan = service::MakeCrossDocPlan(
      workload, 3,
      {.num_queries = 48, .arrival_rate_qps = 2000.0, .seed = 23});

  ServiceOptions options;
  options.enable_fair_share = true;
  options.fair_share.max_in_flight = 2;
  FairDeployment d = MakeFairDeployment(3, options);
  auto report =
      service::RunCrossDocOpenLoop(d.service.get(), workload, d.docs, plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->per_document.size(), d.docs.size());
  size_t sum_completed = 0;
  double sum_qps = 0.0;
  uint64_t sum_deferred = 0;
  for (const ServiceReport::DocumentRow& row : report->per_document) {
    SCOPED_TRACE(row.name);
    const QueryService* qs = d.service->document_service(row.name);
    ASSERT_NE(qs, nullptr);
    const ServiceReport own = qs->BuildReport();
    EXPECT_EQ(row.completed, own.completed);
    if (own.completed > 0) {
      EXPECT_DOUBLE_EQ(row.p50_seconds, own.latency.Percentile(50));
      EXPECT_DOUBLE_EQ(row.p99_seconds, own.latency.Percentile(99));
    }
    EXPECT_EQ(row.sched_deferred, own.sched_deferred);
    sum_completed += row.completed;
    sum_qps += row.qps;
    sum_deferred += row.sched_deferred;
  }
  EXPECT_EQ(sum_completed, report->completed);
  EXPECT_EQ(sum_completed, plan.items.size());
  EXPECT_EQ(sum_deferred, report->sched_deferred);
  // Rows share the aggregate makespan, so their rates sum to it.
  EXPECT_NEAR(sum_qps, report->throughput_qps,
              1e-9 * std::max(1.0, report->throughput_qps));
  // The report prints the rows (the human-facing contract).
  const std::string text = report->ToString();
  EXPECT_NE(text.find("per-document:"), std::string::npos) << text;
  EXPECT_NE(text.find("d0"), std::string::npos) << text;
}

// ---- Admission edge cases -----------------------------------------------

TEST(FairShareServiceTest, SameTimestampBurstSpillsIntoExtraRounds) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "round widths are timing-dependent off the sim";
  }
  // 100 DISTINCT queries, all arriving at t=0, max_batch_queries=64:
  // admission must cut the batch at 64 and spill the remaining 36
  // into a second round — never drop or exceed the cap.
  testutil::RandomScenario scenario =
      testutil::MakeRandomScenario(777, 120, 6);
  ServiceOptions options;
  options.max_batch_queries = 64;
  auto svc = QueryService::Create(
      static_cast<const frag::FragmentSet*>(&scenario.set), &scenario.st,
      options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  Rng rng(91);
  std::vector<xpath::QueryFingerprint> fps;
  size_t submitted = 0;
  while (submitted < 100) {
    auto ast = testutil::RandomQual(&rng, 3);
    xpath::NormQuery q = xpath::Normalize(*ast);
    const xpath::QueryFingerprint fp = xpath::FingerprintQuery(q);
    bool dup = false;
    for (const auto& seen : fps) dup = dup || seen == fp;
    if (dup) continue;  // distinct: no dedup, every query widens a batch
    fps.push_back(fp);
    ASSERT_TRUE((*svc)->Submit(std::move(q), 0.0).ok());
    ++submitted;
  }
  (*svc)->Run();
  ASSERT_TRUE((*svc)->status().ok()) << (*svc)->status().ToString();

  const ServiceReport report = (*svc)->BuildReport();
  EXPECT_EQ(report.completed, 100u);
  EXPECT_EQ(report.rounds, 2u);
  EXPECT_EQ(report.batch_width.count(), 2u);
  EXPECT_DOUBLE_EQ(report.batch_width.max(), 64.0);
  EXPECT_DOUBLE_EQ(report.batch_width.min(), 36.0);
}

TEST(FairShareServiceTest, ZeroWeightTenantRejectedUsefully) {
  ServiceOptions options;
  options.enable_fair_share = true;
  FairDeployment d = MakeFairDeployment(2, options);

  const Status zero =
      d.service->ConfigureTenant("d0", TenantConfig{.weight = 0.0});
  EXPECT_FALSE(zero.ok());
  EXPECT_NE(zero.message().find("max_in_flight"), std::string::npos)
      << "the error should name the right throttling knob: "
      << zero.ToString();
  EXPECT_FALSE(
      d.service->ConfigureTenant("d1", TenantConfig{.weight = -3.0}).ok());
  EXPECT_FALSE(
      d.service->ConfigureTenant("nope", TenantConfig{}).ok());

  // Fair share off: configuring a tenant fails loudly, not silently.
  FairDeployment fifo = MakeFairDeployment(1, ServiceOptions{});
  const Status off = fifo.service->ConfigureTenant("d0", TenantConfig{});
  EXPECT_FALSE(off.ok());
  EXPECT_NE(off.message().find("enable_fair_share"), std::string::npos)
      << off.ToString();
}

// ---- Update priority lane -----------------------------------------------

TEST(FairShareServiceTest, UpdateLaneAppliesAheadOfReadBacklog) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "relies on deterministic virtual-time ordering";
  }
  ServiceOptions options;
  options.enable_fair_share = true;
  options.fair_share.max_in_flight = 1;
  FairDeployment d = MakeFairDeployment(2, options);
  QueryService* qs = d.service->document_service("d0");
  ASSERT_NE(qs, nullptr);

  // A query that can only be true once the update lands: no document
  // element is labelled "zzz" before the insert.
  auto probe = xpath::CompileQuery("[//zzz]");
  ASSERT_TRUE(probe.ok());

  // Pile distinct read rounds onto both documents (slot contention),
  // then an update behind them in submission order but with an
  // earlier-or-equal arrival: the priority lane applies it without
  // waiting for the backlog to drain.
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    auto ast = testutil::RandomQual(&rng, 3);
    ASSERT_TRUE(d.service
                    ->Submit("d" + std::to_string(i % 2),
                             xpath::Normalize(*ast), 0.0)
                    .ok());
  }
  frag::FragmentSet* set = d.catalog->Find("d0")->mutable_set();
  const frag::FragmentId root_fragment = *set->live_ids().begin();
  bool applied = false;
  Status apply_status = Status::OK();
  d.service->SubmitDelta(
      "d0",
      frag::Delta::InsertSubtree(root_fragment,
                                 set->fragment(root_fragment).root, "zzz"),
      /*arrival_seconds=*/0.0,
      [&](const Result<frag::AppliedDelta>& r) {
        applied = true;
        apply_status = r.status();
      });
  // A probe submitted well after the update's arrival must see it.
  ASSERT_TRUE(d.service->Submit("d0", std::move(*probe), 0.5).ok());

  d.service->Run();
  ASSERT_TRUE(d.service->status().ok())
      << d.service->status().ToString();
  EXPECT_TRUE(applied);
  EXPECT_TRUE(apply_status.ok()) << apply_status.ToString();
  const auto& outcomes = qs->outcomes();
  ASSERT_FALSE(outcomes.empty());
  // The probe is the last-submitted query on d0.
  uint64_t max_id = 0;
  bool probe_answer = false;
  for (const service::QueryOutcome& o : outcomes) {
    if (o.query_id >= max_id) {
      max_id = o.query_id;
      probe_answer = o.answer;
    }
  }
  EXPECT_TRUE(probe_answer) << "probe did not observe the update";
}

TEST(FairShareServiceTest, SubmitDeltaUnknownDocumentFails) {
  ServiceOptions options;
  options.enable_fair_share = true;
  FairDeployment d = MakeFairDeployment(1, options);
  EXPECT_FALSE(
      d.service
          ->SubmitDelta("ghost", frag::Delta::Retext(0, nullptr, "x"), 0.0)
          .ok());
}

}  // namespace
}  // namespace parbox
