#include <gtest/gtest.h>

#include "xpath/ast.h"
#include "xpath/lexer.h"
#include "xpath/parser.h"

namespace parbox::xpath {
namespace {

// ---------- Lexer ----------

TEST(LexerTest, AllTokenKinds) {
  auto tokens = Tokenize("[ ] ( ) / // * . = ! name \"str\" text() label()");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kLBracket, TokenKind::kRBracket, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kSlash, TokenKind::kDoubleSlash,
                TokenKind::kStar, TokenKind::kDot, TokenKind::kEquals,
                TokenKind::kBang, TokenKind::kName, TokenKind::kString,
                TokenKind::kTextFn, TokenKind::kLabelFn, TokenKind::kEnd}));
}

TEST(LexerTest, SingleAndDoubleQuotes) {
  auto tokens = Tokenize("'single' \"double\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "single");
  EXPECT_EQ((*tokens)[1].text, "double");
}

TEST(LexerTest, TextAsLabelWhenNotFunction) {
  auto tokens = Tokenize("text");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kName);
  EXPECT_EQ((*tokens)[0].text, "text");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  auto result = Tokenize("a § b");
  EXPECT_FALSE(result.ok());
}

// ---------- Parser: structure ----------

std::unique_ptr<QualExpr> MustParse(std::string_view text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status().ToString();
  return q.ok() ? std::move(*q) : nullptr;
}

TEST(QueryParserTest, SimplePath) {
  auto q = MustParse("a/b");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, QualKind::kPath);
  EXPECT_EQ(q->path->kind, PathKind::kChildSeq);
}

TEST(QueryParserTest, OptionalBrackets) {
  EXPECT_EQ(ToString(*MustParse("[//a]")), ToString(*MustParse("//a")));
}

TEST(QueryParserTest, LeadingSlashAddressesTheRootElement) {
  // Document-node semantics: /portofolio tests the root's own label.
  auto q = MustParse("/portofolio/broker");
  EXPECT_EQ(ToString(*q), "[.[label() = portofolio]/broker]");
}

TEST(QueryParserTest, LeadingSlashWildcardIsSelf) {
  auto q = MustParse("/*/a");
  EXPECT_EQ(ToString(*q), "[./a]");
}

TEST(QueryParserTest, LeadingDoubleSlash) {
  auto q = MustParse("//stock");
  ASSERT_EQ(q->kind, QualKind::kPath);
  EXPECT_EQ(q->path->kind, PathKind::kDescSeq);
  EXPECT_EQ(q->path->left->kind, PathKind::kSelf);
}

TEST(QueryParserTest, TextFunctionComparison) {
  auto q = MustParse("[//code/text() = \"GOOG\"]");
  EXPECT_EQ(q->kind, QualKind::kTextEquals);
  EXPECT_EQ(q->str, "GOOG");
}

TEST(QueryParserTest, EqualsSugarMeansTextEquals) {
  auto q = MustParse("[name = \"Bache\"]");
  EXPECT_EQ(q->kind, QualKind::kTextEquals);
  EXPECT_EQ(q->str, "Bache");
}

TEST(QueryParserTest, UnquotedValueAfterEquals) {
  auto q = MustParse("[code = GOOG]");
  EXPECT_EQ(q->kind, QualKind::kTextEquals);
  EXPECT_EQ(q->str, "GOOG");
}

TEST(QueryParserTest, LabelFunction) {
  auto q = MustParse("[label() = stock]");
  EXPECT_EQ(q->kind, QualKind::kLabelEquals);
  EXPECT_EQ(q->str, "stock");
}

TEST(QueryParserTest, BooleanPrecedenceOrBelowAnd) {
  auto q = MustParse("[a or b and c]");
  ASSERT_EQ(q->kind, QualKind::kOr);
  EXPECT_EQ(q->b->kind, QualKind::kAnd);
}

TEST(QueryParserTest, ParenthesesOverridePrecedence) {
  auto q = MustParse("[(a or b) and c]");
  ASSERT_EQ(q->kind, QualKind::kAnd);
  EXPECT_EQ(q->a->kind, QualKind::kOr);
}

TEST(QueryParserTest, NotFunctionAndBang) {
  auto q1 = MustParse("[not(a)]");
  auto q2 = MustParse("[!a]");
  EXPECT_EQ(q1->kind, QualKind::kNot);
  EXPECT_EQ(ToString(*q1), ToString(*q2));
}

TEST(QueryParserTest, QualifiersNest) {
  auto q = MustParse("[//broker[//stock/code/text() = \"GOOG\" and "
                     "not(//stock/code/text() = \"YHOO\")]]");
  ASSERT_EQ(q->kind, QualKind::kPath);
  ASSERT_EQ(q->path->kind, PathKind::kDescSeq);
  EXPECT_EQ(q->path->right->kind, PathKind::kQualified);
}

TEST(QueryParserTest, MultipleQualifiersOnOneStep) {
  auto q = MustParse("[a[b][c]]");
  ASSERT_EQ(q->kind, QualKind::kPath);
  const PathExpr* p = q->path.get();
  ASSERT_EQ(p->kind, PathKind::kQualified);
  EXPECT_EQ(p->left->kind, PathKind::kQualified);
}

TEST(QueryParserTest, WildcardAndSelfSteps) {
  auto q = MustParse("[*/./a]");
  EXPECT_EQ(q->kind, QualKind::kPath);
  EXPECT_EQ(ToString(*q), "[*/./a]");
}

TEST(QueryParserTest, PaperQueriesParse) {
  MustParse("[//stock[code = \"GOOG\" and sell = \"376\"]]");
  MustParse("[/portofolio/broker/name = \"Merill Lynch\"]");
  MustParse("[//stock[code/text() = \"YHOO\"]]");
}

// ---------- Parser: errors ----------

class QueryParserErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryParserErrorTest, Rejected) {
  auto q = ParseQuery(GetParam());
  EXPECT_FALSE(q.ok()) << "accepted: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, QueryParserErrorTest,
    ::testing::Values("", "[", "[a", "a]", "[a and]", "[and a]", "[not a]",
                      "[a or]", "a//", "a/", "[a[b]", "(a", "[label() stock]",
                      "[//a/text()]", "[a = ]", "[not]", "[or]", "//[a]",
                      "a b"));

TEST(QueryParserTest, ReservedWordsRejectedAsLabels) {
  EXPECT_FALSE(ParseQuery("[//and]").ok());
  EXPECT_FALSE(ParseQuery("[//or]").ok());
  EXPECT_FALSE(ParseQuery("[not/x]").ok());
}

// ---------- ToString round trip ----------

class QueryToStringTest : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryToStringTest, ParseRenderParseFixpoint) {
  auto q1 = ParseQuery(GetParam());
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  std::string rendered = ToString(**q1);
  auto q2 = ParseQuery(rendered);
  ASSERT_TRUE(q2.ok()) << rendered << " -> " << q2.status().ToString();
  EXPECT_EQ(ToString(**q2), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, QueryToStringTest,
    ::testing::Values("[//a]", "[a/b//c]", "[a[b = \"x\"] and not(c)]",
                      "[label() = z or //y/text() = \"v\"]",
                      "[*[.//q] or (a and b)]",
                      "[//stock[code = \"GOOG\" and sell = \"376\"]]"));

}  // namespace
}  // namespace parbox::xpath
