// Scale + chaos suite (tests/chaos_harness.h): million-node documents
// served through a CatalogService while placement moves, rebalances,
// content deltas, daemon SIGKILLs, and injected network faults storm
// the full surface — with every answer held bit-identical to a
// quiescent sim oracle, and the metering/recovery/cache invariants
// checked inline by the harness.
//
// Replay a failing seed by running the storm test with
// --gtest_filter=ChaosStormTest.* and reading the seed off the
// SCOPED_TRACE lines; the schedule is pure data (MakeSchedule(seed)).

#include <gtest/gtest.h>

#include <cstdint>

#include "chaos_harness.h"

namespace parbox::chaostest {
namespace {

ChaosConfig SmallConfig(uint64_t seed) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.backend = "sim";
  cfg.inject = true;  // moves/rebalances run; kills skip on sim
  cfg.phases = 5;
  return cfg;
}

/// The storm must always contain at least one daemon kill; schedules
/// whose action rolls happened to skip it get one appended onto the
/// last phase (kill phases carry no deltas — see the harness).
void EnsureKillPhase(ChaosSchedule* schedule) {
  for (const ChaosPhase& p : schedule->phases) {
    if (p.kill_daemon >= 0) return;
  }
  ChaosPhase& last = schedule->phases.back();
  last.kill_daemon = 0;
  last.moves.clear();
  last.rebalance_doc = -1;
  for (auto& seeds : last.delta_seeds) seeds.clear();
  last.stale_check.assign(last.stale_check.size(), -1);
}

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  const ChaosConfig a = SmallConfig(7);
  EXPECT_EQ(Describe(MakeSchedule(a)), Describe(MakeSchedule(a)));
  const ChaosConfig b = SmallConfig(8);
  EXPECT_NE(Describe(MakeSchedule(a)), Describe(MakeSchedule(b)));
}

TEST(ChaosScheduleTest, KillPhasesCarryNoDeltas) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    const ChaosSchedule s = MakeSchedule(SmallConfig(seed));
    for (const ChaosPhase& p : s.phases) {
      if (p.kill_daemon < 0) continue;
      for (const auto& seeds : p.delta_seeds) EXPECT_TRUE(seeds.empty());
      for (int check : p.stale_check) EXPECT_EQ(check, -1);
    }
  }
}

// Satellite: seeded determinism — the same seed must produce the same
// schedule AND the same answer stream across independent executions.
TEST(ChaosHarnessTest, SameSeedSameAnswerStream) {
  const ChaosConfig cfg = SmallConfig(21);
  const ChaosSchedule schedule = MakeSchedule(cfg);
  const RunResult first = ExecuteChaosRun(cfg, schedule);
  const RunResult second = ExecuteChaosRun(cfg, schedule);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  ASSERT_FALSE(first.answers.empty());
  EXPECT_EQ(first.answers, second.answers);
}

// Moves and rebalances are answer-invariant: the same schedule with
// injection on and off yields bit-identical streams (sim substrate,
// so this also pins the differential machinery itself).
TEST(ChaosHarnessTest, InjectionIsAnswerInvariantOnSim) {
  const ChaosConfig chaos = SmallConfig(33);
  const ChaosSchedule schedule = MakeSchedule(chaos);
  const RunResult stormy = ExecuteChaosRun(chaos, schedule);
  ChaosConfig quiet = chaos;
  quiet.inject = false;
  const RunResult calm = ExecuteChaosRun(quiet, schedule);
  ASSERT_TRUE(stormy.ok);
  ASSERT_TRUE(calm.ok);
  ASSERT_EQ(stormy.answers.size(), calm.answers.size());
  EXPECT_EQ(stormy.answers, calm.answers);
}

// The tentpole: a million-node, 10k-fragment XMark document (plus a
// control document on the same substrate) served through proc:2 under
// a full-surface fault storm — concurrent query stream, delta churn,
// live moves/rebalances, daemon SIGKILL/respawn, injected drops/
// delays/duplicates — differentially against a quiescent sim run.
TEST(ChaosStormTest, MillionNodeFaultStormAnswersExact) {
  for (const uint64_t seed : {uint64_t{1337}, uint64_t{4242},
                              uint64_t{9001}}) {
    SCOPED_TRACE("storm seed " + std::to_string(seed));
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.backend = "proc:2";
    chaos.inject = true;
    chaos.net_faults = true;
    chaos.main_sites = 10050;
    chaos.nodes_per_site = 100;
    chaos.control_sites = 50;
    chaos.phases = 6;
    chaos.queries_per_phase = 3;
    ChaosSchedule schedule = MakeSchedule(chaos);
    EnsureKillPhase(&schedule);

    const RunResult stormy = ExecuteChaosRun(chaos, schedule);
    EXPECT_GE(stormy.main_nodes, 1000000u);
    EXPECT_GE(stormy.main_fragments, 10000u);
    EXPECT_GE(stormy.kills, 1);
    EXPECT_GT(stormy.faults_injected, 0u);
    ASSERT_TRUE(stormy.ok);

    ChaosConfig oracle = chaos;
    oracle.backend = "sim";
    oracle.inject = false;
    oracle.net_faults = false;
    const RunResult calm = ExecuteChaosRun(oracle, schedule);
    ASSERT_TRUE(calm.ok);

    ASSERT_EQ(stormy.answers.size(), calm.answers.size());
    EXPECT_EQ(stormy.answers, calm.answers)
        << "answers diverged from the quiescent oracle under seed "
        << seed;
  }
}

}  // namespace
}  // namespace parbox::chaostest
