#include <gtest/gtest.h>

#include "boolexpr/expr.h"
#include "core/algorithms.h"
#include "core/partial_eval.h"
#include "testutil.h"
#include "xmark/generator.h"
#include "xmark/portfolio.h"
#include "xmark/queries.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"
#include "xpath/reference_eval.h"

namespace parbox::core {
namespace {

using frag::FragmentId;
using frag::FragmentSet;
using frag::SourceTree;

struct Portfolio {
  FragmentSet set;
  SourceTree st;
};

/// The paper's deployment: F0 -> S0, F1 -> S1, F2,F3 -> S2 (NASDAQ).
Portfolio MakePortfolio() {
  auto set = xmark::BuildPortfolioFragments();
  EXPECT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  EXPECT_TRUE(st.ok());
  return Portfolio{std::move(*set), std::move(*st)};
}

xpath::NormQuery Compile(std::string_view text) {
  auto q = xpath::CompileQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

// ---------- The paper's running example ----------

TEST(PaperExampleTest, Example33AnswerIsTrue) {
  // Example 3.3: the YHOO query over the fragmented portfolio
  // evaluates to true (YHOO lives in fragment F2 at the NASDAQ site).
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  auto report = RunParBoX(p.set, p.st, q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->answer);
}

TEST(PaperExampleTest, IntroductionSellQueryIsFalse) {
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kGoogSellQuery);
  auto report = RunParBoX(p.set, p.st, q);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->answer);
}

TEST(PaperExampleTest, AllAlgorithmsAgreeOnPortfolioQueries) {
  for (const char* text : {xmark::kGoogSellQuery, xmark::kYhooQuery,
                           xmark::kMerillQuery,
                           "[//market[name = \"NASDAQ\"]]",
                           "[//stock[code = \"IBM\" and sell = \"78\"]]",
                           "[not(//stock[code = \"MSFT\"])]"}) {
    Portfolio p = MakePortfolio();
    xpath::NormQuery q = Compile(text);
    auto whole = p.set.Reassemble();
    ASSERT_TRUE(whole.ok());
    bool expected = *xpath::EvalBoolean(*whole->root(), q);
    auto reports = RunAllAlgorithms(p.set, p.st, q);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    for (const RunReport& r : *reports) {
      EXPECT_EQ(r.answer, expected) << text << " via " << r.algorithm;
    }
  }
}

TEST(PaperExampleTest, ParBoXVisitsEachSiteOnce) {
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  auto report = RunParBoX(p.set, p.st, q);
  ASSERT_TRUE(report.ok());
  // Site S2 holds two fragments but is still visited only once.
  EXPECT_EQ(report->visits_per_site, (std::vector<uint64_t>{1, 1, 1}));
}

TEST(PaperExampleTest, NaiveDistributedVisitsPerFragment) {
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  auto report = RunNaiveDistributed(p.set, p.st, q);
  ASSERT_TRUE(report.ok());
  // "site S2 needs to be visited twice, since it holds F2 and F3".
  EXPECT_EQ(report->visits_per_site, (std::vector<uint64_t>{1, 1, 2}));
}

// ---------- Partial evaluation internals (Example 3.2 flavor) ----------

TEST(PartialEvalTest, LeafFragmentsAreVariableFree) {
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  bexpr::ExprFactory factory;
  for (FragmentId leaf : {2, 3}) {
    auto eq = PartialEvalFragment(&factory, q, p.set, leaf, nullptr);
    for (const auto& vec : {eq.v, eq.cv, eq.dv}) {
      for (bexpr::ExprId e : vec) {
        EXPECT_TRUE(factory.CollectVars(e).empty())
            << "leaf F" << leaf << " produced " << factory.ToString(e);
      }
    }
  }
}

TEST(PartialEvalTest, InnerFragmentsReferenceOnlyTheirChildren) {
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  bexpr::ExprFactory factory;
  // F1's variables must all refer to F2; F0's to F1 and F3.
  auto eq1 = PartialEvalFragment(&factory, q, p.set, 1, nullptr);
  for (bexpr::ExprId e : eq1.v) {
    for (const bexpr::VarId& var : factory.CollectVars(e)) {
      EXPECT_EQ(var.fragment, 2);
    }
  }
  auto eq0 = PartialEvalFragment(&factory, q, p.set, 0, nullptr);
  for (bexpr::ExprId e : eq0.dv) {
    for (const bexpr::VarId& var : factory.CollectVars(e)) {
      EXPECT_TRUE(var.fragment == 1 || var.fragment == 3);
    }
  }
}

TEST(PartialEvalTest, YhooAnswerComesFromF2ViaF1) {
  // Example 3.3: the answer entry of V_F0 is (roughly) dy | dz — the
  // disjunction of F1's and F3's DV variables; F3 resolves it to
  // false, F1 forwards to F2 which resolves it to true.
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  bexpr::ExprFactory factory;
  auto eq0 = PartialEvalFragment(&factory, q, p.set, 0, nullptr);
  bexpr::ExprId answer = eq0.v[q.root()];
  auto vars = factory.CollectVars(answer);
  ASSERT_FALSE(vars.empty());
  bool mentions_f1 = false;
  for (const auto& var : vars) mentions_f1 |= var.fragment == 1;
  EXPECT_TRUE(mentions_f1) << factory.ToString(answer);
}

TEST(PartialEvalTest, CountersChargeElementsTimesQList) {
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  bexpr::ExprFactory factory;
  xpath::EvalCounters counters;
  PartialEvalFragment(&factory, q, p.set, 2, &counters);
  EXPECT_EQ(counters.elements, p.set.FragmentElements(2));
  EXPECT_EQ(counters.ops, counters.elements * q.size());
}

TEST(PartialEvalTest, BoolEvalFragmentMatchesResolvedParBoX) {
  // Evaluating F1 with F2's resolved vectors must match what the
  // formula path computes.
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  // Resolve F2 directly (it is variable-free).
  ResolvedVectors f2;
  {
    auto leaf = BoolEvalFragment(
        q, p.set, 2,
        [](FragmentId) -> const ResolvedVectors& {
          static ResolvedVectors kEmpty;
          ADD_FAILURE() << "leaf fragment asked for children";
          return kEmpty;
        },
        nullptr);
    f2 = leaf;
  }
  auto f1 = BoolEvalFragment(
      q, p.set, 1,
      [&](FragmentId id) -> const ResolvedVectors& {
        EXPECT_EQ(id, 2);
        return f2;
      },
      nullptr);
  // The YHOO stock is below F1 (inside F2): DV at F1's root is true.
  EXPECT_TRUE(f1.dv[q.root()]);
  EXPECT_TRUE(f2.dv[q.root()]);
}

// ---------- Cross-algorithm agreement on random scenarios ----------

class AgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AgreementTest, AllAlgorithmsMatchTheOracle) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  auto scenario = testutil::MakeRandomScenario(
      seed, 30 + static_cast<int>(rng.Uniform(150)),
      1 + static_cast<int>(rng.Uniform(7)));
  auto whole = scenario.set.Reassemble();
  ASSERT_TRUE(whole.ok());
  for (int i = 0; i < 8; ++i) {
    auto ast = testutil::RandomQual(&rng, 3);
    xpath::NormQuery q = xpath::Normalize(*ast);
    bool expected = xpath::ReferenceEval(*ast, *whole->root());
    auto reports = RunAllAlgorithms(scenario.set, scenario.st, q);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    for (const RunReport& r : *reports) {
      EXPECT_EQ(r.answer, expected)
          << "seed " << seed << " algorithm " << r.algorithm << " query "
          << xpath::ToString(*ast);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementTest,
                         ::testing::Range<uint64_t>(0, 30));

// Selection must also agree: an element is selected iff the reference
// evaluator says the predicate holds there.

// ---------- Fig. 4 complexity table, measured ----------

TEST(ComplexityTest, ParBoXMaxOneVisitEverywhere) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto scenario = testutil::MakeRandomScenario(seed, 120, 6);
    xpath::NormQuery q = Compile("[//a[b] or .//c/text() = \"t1\"]");
    auto report = RunParBoX(scenario.set, scenario.st, q);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->max_visits_per_site(), 1u) << "seed " << seed;
  }
}

TEST(ComplexityTest, NaiveDistributedVisitsEqualFragmentsPerSite) {
  auto scenario = testutil::MakeRandomScenario(11, 150, 5);
  xpath::NormQuery q = Compile("[//a]");
  auto report = RunNaiveDistributed(scenario.set, scenario.st, q);
  ASSERT_TRUE(report.ok());
  for (int s = 0; s < scenario.st.num_sites(); ++s) {
    EXPECT_EQ(report->visits_per_site[s],
              scenario.st.fragments_at(s).size());
  }
}

TEST(ComplexityTest, ParBoXTrafficIndependentOfDataSize) {
  // Same fragmentation shape and query, 8x the data: ParBoX's traffic
  // must not grow (it depends only on |q| and card(F)), while
  // NaiveCentralized's grows with |T|.
  xpath::NormQuery q = Compile("[//item[name] and //person]");
  uint64_t parbox_bytes[2], central_bytes[2];
  int idx = 0;
  for (uint64_t bytes_per_site : {4000ull, 32000ull}) {
    xml::Document doc = xmark::GenerateStarDocument(4, bytes_per_site, 5);
    auto set_result = FragmentSet::FromDocument(std::move(doc));
    FragmentSet set = std::move(*set_result);
    ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
    auto st =
        SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
    ASSERT_TRUE(st.ok());
    auto parbox = RunParBoX(set, *st, q);
    auto central = RunNaiveCentralized(set, *st, q);
    ASSERT_TRUE(parbox.ok() && central.ok());
    parbox_bytes[idx] = parbox->network_bytes;
    central_bytes[idx] = central->network_bytes;
    ++idx;
  }
  // Allow a tiny wobble from formula shapes; rule out growth with |T|.
  EXPECT_LT(parbox_bytes[1], parbox_bytes[0] * 2);
  EXPECT_GT(central_bytes[1], central_bytes[0] * 4);
}

TEST(ComplexityTest, FullDistShipsLessThanParBoX) {
  // FullDistParBoX never ships variables, so its triplet traffic is
  // smaller (the paper reports about half).
  xml::Document doc = xmark::GenerateChainDocument(6, 8000, 3);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  xpath::NormQuery q = Compile("[//item[name and payment]]");
  auto parbox = RunParBoX(set, *st, q);
  auto fulldist = RunFullDistParBoX(set, *st, q);
  ASSERT_TRUE(parbox.ok() && fulldist.ok());
  uint64_t parbox_triplets = 0, fulldist_triplets = 0;
  // Compare the triplet streams only (FullDist pays extra for the
  // source-tree broadcast, which is O(card(F))).
  parbox_triplets = parbox->network_bytes;
  fulldist_triplets = fulldist->network_bytes;
  EXPECT_LT(fulldist_triplets, parbox_triplets);
}

TEST(ComplexityTest, ParBoXParallelismBeatsSequentialTraversal) {
  if (!testutil::DefaultBackendIsSim()) {
    GTEST_SKIP() << "virtual-clock property; sim backend only";
  }
  // Equal fragments on distinct sites: ParBoX's makespan should be
  // well under NaiveDistributed's strictly serialized one.
  xml::Document doc = xmark::GenerateStarDocument(8, 20000, 17);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  xpath::NormQuery q = Compile("[//person[creditcard]]");
  auto parbox = RunParBoX(set, *st, q);
  auto naive = RunNaiveDistributed(set, *st, q);
  ASSERT_TRUE(parbox.ok() && naive.ok());
  EXPECT_LT(parbox->makespan_seconds, naive->makespan_seconds / 3.0);
  // But total computation is comparable (within 2x).
  EXPECT_LT(parbox->total_compute_seconds,
            2.0 * naive->total_compute_seconds + 1e-9);
}

// ---------- Hybrid tipping point ----------

TEST(HybridTest, NormalFragmentationUsesParBoX) {
  // A realistic corpus: card(F) = 5 is far below |T|/|q|.
  xml::Document doc = xmark::GenerateStarDocument(4, 8000, 2);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  xpath::NormQuery q = Compile("[//item[name]]");
  auto report = RunHybridParBoX(set, *st, q);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "HybridParBoX[ParBoX]");
}

TEST(HybridTest, TinyTreeBelowTippingPointFallsBack) {
  // The paper's 24-element portfolio with card(F)=4 and |q|~8 sits at
  // card(F) >= |T|/|q|: shipping the data is genuinely cheaper.
  Portfolio p = MakePortfolio();
  xpath::NormQuery q = Compile(xmark::kYhooQuery);
  ASSERT_GE(p.set.live_count(), p.set.TotalElements() / q.size());
  auto report = RunHybridParBoX(p.set, p.st, q);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "HybridParBoX[NaiveCentralized]");
}

TEST(HybridTest, PathologicalFragmentationFallsBack) {
  // Fragment nearly every element: card(F) approaches |T|, far beyond
  // |T|/|q|, so Hybrid must choose NaiveCentralized.
  Rng rng(5);
  xml::Document doc = xmark::GenerateRandomSmallDocument(60, &rng);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::RandomSplits(&set, 40, &rng, 1).ok());
  auto st = SourceTree::Create(set, frag::AssignRoundRobin(set, 4));
  ASSERT_TRUE(st.ok());
  xpath::NormQuery q = Compile("[//a/b/c/d]");
  ASSERT_GE(set.live_count(), set.TotalElements() / q.size());
  auto report = RunHybridParBoX(set, *st, q);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "HybridParBoX[NaiveCentralized]");
}

// ---------- Lazy behaviour ----------

TEST(LazyTest, StopsAtRootWhenAnswerIsThere) {
  // Chain of 5 fragments; marker v0 lives in the root fragment. Lazy
  // must evaluate only depth 0 (visits at deeper sites: zero).
  xml::Document doc = xmark::GenerateChainDocument(5, 4000, 23);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  auto q = xmark::MakeMarkerQuery("v0");
  ASSERT_TRUE(q.ok());
  auto report = RunLazyParBoX(set, *st, *q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->answer);
  // The paper's first step covers the coordinator plus depth 1: "only
  // 2 machines evaluate q_F0"; the three deeper sites stay idle.
  EXPECT_EQ(report->total_visits(), 2u);
}

TEST(LazyTest, DescendsUntilSatisfied) {
  xml::Document doc = xmark::GenerateChainDocument(5, 4000, 23);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  auto q = xmark::MakeMarkerQuery("v4");  // deepest fragment
  ASSERT_TRUE(q.ok());
  auto lazy = RunLazyParBoX(set, *st, *q);
  auto parbox = RunParBoX(set, *st, *q);
  ASSERT_TRUE(lazy.ok() && parbox.ok());
  EXPECT_TRUE(lazy->answer);
  EXPECT_EQ(lazy->total_visits(), 5u);  // had to touch every depth
  // Sequential depth-stepping is slower end-to-end than ParBoX. A
  // virtual-clock property: on the thread pool both makespans are
  // real microseconds apart and scheduler noise can invert them.
  if (testutil::DefaultBackendIsSim()) {
    EXPECT_GT(lazy->makespan_seconds, parbox->makespan_seconds);
  }
}

TEST(LazyTest, SavesComputationWhenSatisfiedEarly) {
  xml::Document doc = xmark::GenerateChainDocument(6, 6000, 29);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(frag::SplitAtAllLabeled(&set, "site").ok());
  auto st = SourceTree::Create(set, frag::AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  auto q = xmark::MakeMarkerQuery("v1");
  ASSERT_TRUE(q.ok());
  auto lazy = RunLazyParBoX(set, *st, *q);
  auto parbox = RunParBoX(set, *st, *q);
  ASSERT_TRUE(lazy.ok() && parbox.ok());
  EXPECT_TRUE(lazy->answer);
  EXPECT_LT(lazy->total_ops, parbox->total_ops);
}

// ---------- Engine validation ----------

TEST(EngineTest, MismatchedSourceTreeRejected) {
  Portfolio p = MakePortfolio();
  // A source tree built from a *different* fragment set (fewer ids).
  auto other = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(other->Merge(2).ok());
  auto st = SourceTree::Create(*other, {0, 1, -1, 1});
  ASSERT_TRUE(st.ok());
  xpath::NormQuery q = Compile("[//a]");
  // Same root id here, so this passes the cheap check; but running
  // with a coherent but different set is the caller's bug we cannot
  // always catch. What we *must* catch: empty/malformed queries.
  xpath::NormQuery empty;
  auto report = RunParBoX(p.set, p.st, empty);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace parbox::core
