#include <gtest/gtest.h>

#include "common/rng.h"
#include "xmark/generator.h"
#include "xmark/portfolio.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace parbox::xmark {
namespace {

TEST(GeneratorTest, DeterministicFromSeed) {
  xml::Document a = GenerateStarDocument(3, 5000, 42);
  xml::Document b = GenerateStarDocument(3, 5000, 42);
  EXPECT_TRUE(xml::TreeEquals(a.root(), b.root()));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  xml::Document a = GenerateStarDocument(2, 5000, 1);
  xml::Document b = GenerateStarDocument(2, 5000, 2);
  EXPECT_FALSE(xml::TreeEquals(a.root(), b.root()));
}

TEST(GeneratorTest, SizeTargetsRoughlyMet) {
  for (uint64_t target : {10000ull, 50000ull, 200000ull}) {
    Rng rng(7);
    xml::Document doc;
    SiteOptions options;
    options.target_bytes = target;
    doc.set_root(GenerateSite(&doc, options, &rng));
    uint64_t actual = xml::SerializedSize(doc.root());
    EXPECT_GT(actual, target / 2) << target;
    EXPECT_LT(actual, target * 2) << target;
  }
}

TEST(GeneratorTest, SizeScalesWithTarget) {
  Rng rng1(5), rng2(5);
  xml::Document small, large;
  SiteOptions so;
  so.target_bytes = 5000;
  small.set_root(GenerateSite(&small, so, &rng1));
  so.target_bytes = 80000;
  large.set_root(GenerateSite(&large, so, &rng2));
  EXPECT_GT(xml::CountElements(large.root()),
            4 * xml::CountElements(small.root()));
}

TEST(GeneratorTest, StarShape) {
  xml::Document doc = GenerateStarDocument(5, 2000, 9);
  EXPECT_EQ(doc.root()->label(), "xmark");
  int sites = 0;
  for (xml::Node* c = doc.root()->first_child; c != nullptr;
       c = c->next_sibling) {
    EXPECT_EQ(c->label(), "site");
    ++sites;
  }
  EXPECT_EQ(sites, 5);
}

TEST(GeneratorTest, MarkersAreFindable) {
  xml::Document doc = GenerateStarDocument(3, 2000, 11);
  int found = 0;
  std::vector<xml::Node*> stack{doc.root()};
  while (!stack.empty()) {
    xml::Node* n = stack.back();
    stack.pop_back();
    if (n->is_element() && n->label() == "marker") {
      std::string text = xml::DirectText(*n);
      EXPECT_EQ(text[0], 'm');
      ++found;
    }
    for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  EXPECT_EQ(found, 3);
}

TEST(GeneratorTest, ChainNestsViaHistory) {
  xml::Document doc = GenerateChainDocument(4, 1500, 13);
  // Walk down: site -> history -> site -> ... 4 sites deep.
  xml::Node* site = doc.root();
  for (int depth = 0; depth < 4; ++depth) {
    ASSERT_NE(site, nullptr) << "depth " << depth;
    EXPECT_EQ(site->label(), "site");
    xml::Node* marker = xml::FindFirstElement(site, "marker");
    ASSERT_NE(marker, nullptr);
    EXPECT_TRUE(xml::DirectTextEquals(*marker,
                                      "v" + std::to_string(depth)));
    // Find the history child, then the nested site.
    xml::Node* history = nullptr;
    for (xml::Node* c = site->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element() && c->label() == "history") history = c;
    }
    site = history != nullptr && history->first_child != nullptr
               ? history->first_child
               : nullptr;
  }
}

TEST(GeneratorTest, TreeDocumentFollowsTopology) {
  // FT3-like: 0 -> {1, 2}, 1 -> {3}.
  std::vector<std::vector<int>> children = {{1, 2}, {3}, {}, {}};
  std::vector<uint64_t> sizes = {2000, 4000, 2000, 1000};
  xml::Document doc = GenerateTreeDocument(children, sizes, 21);
  EXPECT_EQ(doc.root()->label(), "site");
  // Root's history holds sites 1 and 2.
  xml::Node* history = xml::FindFirstElement(doc.root(), "history");
  ASSERT_NE(history, nullptr);
  int nested = 0;
  for (xml::Node* c = history->first_child; c != nullptr;
       c = c->next_sibling) {
    if (c->label() == "site") ++nested;
  }
  EXPECT_EQ(nested, 2);
}

TEST(GeneratorTest, RandomSmallDocumentRespectsBudget) {
  Rng rng(31);
  for (int budget : {1, 5, 50, 200}) {
    xml::Document doc = GenerateRandomSmallDocument(budget, &rng);
    EXPECT_LE(xml::CountElements(doc.root()),
              static_cast<size_t>(budget));
    EXPECT_GE(xml::CountElements(doc.root()), 1u);
    EXPECT_TRUE(xml::ValidateLinks(doc.root()).ok());
  }
}

TEST(PortfolioDocTest, MatchesFig1b) {
  xml::Document doc = BuildPortfolioDocument();
  EXPECT_EQ(doc.root()->label(), "portofolio");
  // Two brokers, three markets, five stocks.
  size_t brokers = 0, markets = 0, stocks = 0;
  std::vector<xml::Node*> stack{doc.root()};
  while (!stack.empty()) {
    xml::Node* n = stack.back();
    stack.pop_back();
    if (n->label() == "broker") ++brokers;
    if (n->label() == "market") ++markets;
    if (n->label() == "stock") ++stocks;
    for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  EXPECT_EQ(brokers, 2u);
  EXPECT_EQ(markets, 3u);
  EXPECT_EQ(stocks, 5u);
}

}  // namespace
}  // namespace parbox::xmark
