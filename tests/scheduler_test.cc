// FairScheduler unit suite: the DWRR admission policy in isolation
// (no backend, no documents) — dispatch callbacks are plain lambdas
// recording into vectors, so every policy property is assertable
// synchronously:
//
//   * config validation rejects zero / negative / non-finite / tiny
//     weights with messages that say what to fix;
//   * free slots dispatch immediately (and Enqueue reports it);
//   * the update lane bypasses queues and caps entirely;
//   * per-tenant order is FIFO, and per-tenant caps hold even when
//     global slots are free;
//   * under a contended slot, dispatches interleave proportionally to
//     weight (the tentpole property: 3:1 weights yield a 3:1 dispatch
//     ratio, not FIFO starvation, and not the 1:1 flattening a naive
//     cursor-advance under a tight slot cap would give);
//   * the work-conserving shortcut lets a lone tenant run at full
//     slot speed regardless of its weight.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "service/scheduler.h"

namespace parbox {
namespace {

using service::FairScheduler;
using service::FairSchedulerOptions;
using service::TenantConfig;
using service::ValidateTenantConfig;

using Lane = FairScheduler::Lane;

TEST(TenantConfigTest, DefaultIsValid) {
  EXPECT_TRUE(ValidateTenantConfig(TenantConfig{}).ok());
}

TEST(TenantConfigTest, RejectsZeroWeight) {
  TenantConfig config;
  config.weight = 0.0;
  const Status status = ValidateTenantConfig(config);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("positive"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("max_in_flight"), std::string::npos)
      << "the error should point at the cap as the throttling knob: "
      << status.ToString();
}

TEST(TenantConfigTest, RejectsNegativeWeight) {
  TenantConfig config;
  config.weight = -2.5;
  EXPECT_FALSE(ValidateTenantConfig(config).ok());
}

TEST(TenantConfigTest, RejectsNonFiniteWeight) {
  TenantConfig config;
  config.weight = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateTenantConfig(config).ok());
  config.weight = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateTenantConfig(config).ok());
}

TEST(TenantConfigTest, RejectsVanishinglySmallWeight) {
  TenantConfig config;
  config.weight = 1e-9;
  const Status status = ValidateTenantConfig(config);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("1e-6"), std::string::npos)
      << status.ToString();
}

TEST(TenantConfigTest, AddTenantRejectsInvalidConfig) {
  FairScheduler sched;
  TenantConfig config;
  config.weight = 0.0;
  EXPECT_FALSE(sched.AddTenant("t", config).ok());
  EXPECT_EQ(sched.num_tenants(), 0u);
}

TEST(FairSchedulerTest, FreeSlotsDispatchImmediately) {
  FairSchedulerOptions options;
  options.max_in_flight = 2;
  FairScheduler sched(options);
  auto a = sched.AddTenant("a", {});
  ASSERT_TRUE(a.ok());

  int ran = 0;
  EXPECT_TRUE(sched.Enqueue(*a, Lane::kRead, 1, [&] { ++ran; }));
  EXPECT_TRUE(sched.Enqueue(*a, Lane::kRead, 1, [&] { ++ran; }));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.total_in_flight(), 2u);

  // Both slots taken: the third queues until a finish frees one.
  EXPECT_FALSE(sched.Enqueue(*a, Lane::kRead, 1, [&] { ++ran; }));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.Stats(*a).queue_depth, 1u);
  sched.OnUnitFinished(*a);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sched.Stats(*a).queue_depth, 0u);
  EXPECT_EQ(sched.Stats(*a).deferred, 1u);
}

TEST(FairSchedulerTest, UpdateLaneBypassesFullSlots) {
  FairSchedulerOptions options;
  options.max_in_flight = 1;
  FairScheduler sched(options);
  auto a = sched.AddTenant("a", {});
  ASSERT_TRUE(a.ok());

  int reads = 0;
  ASSERT_TRUE(sched.Enqueue(*a, Lane::kRead, 1, [&] { ++reads; }));
  EXPECT_FALSE(sched.Enqueue(*a, Lane::kRead, 1, [&] { ++reads; }));

  // The slot is full and a read is queued; an update still runs now,
  // holds no slot, and does not jump the read past its turn.
  int updates = 0;
  EXPECT_TRUE(sched.Enqueue(*a, Lane::kUpdate, 1, [&] { ++updates; }));
  EXPECT_EQ(updates, 1);
  EXPECT_EQ(reads, 1);
  EXPECT_EQ(sched.total_in_flight(), 1u);
}

TEST(FairSchedulerTest, PerTenantOrderIsFifo) {
  FairSchedulerOptions options;
  options.max_in_flight = 1;
  FairScheduler sched(options);
  auto a = sched.AddTenant("a", {});
  ASSERT_TRUE(a.ok());

  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.Enqueue(*a, Lane::kRead, 1, [&order, i] { order.push_back(i); });
  }
  for (int i = 0; i < 5; ++i) sched.OnUnitFinished(*a);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FairSchedulerTest, PerTenantCapHoldsWithFreeGlobalSlots) {
  FairSchedulerOptions options;
  options.max_in_flight = 8;
  FairScheduler sched(options);
  TenantConfig capped;
  capped.max_in_flight = 2;
  auto a = sched.AddTenant("a", capped);
  ASSERT_TRUE(a.ok());

  int ran = 0;
  for (int i = 0; i < 5; ++i) {
    sched.Enqueue(*a, Lane::kRead, 1, [&] { ++ran; });
  }
  // Global slots are plentiful; the tenant's own cap pins it at 2.
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.Stats(*a).in_flight, 2u);
  EXPECT_EQ(sched.Stats(*a).queue_depth, 3u);
  sched.OnUnitFinished(*a);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sched.Stats(*a).in_flight, 2u);
}

TEST(FairSchedulerTest, ReconfigureRaisingCapPumpsQueue) {
  FairSchedulerOptions options;
  options.max_in_flight = 8;
  FairScheduler sched(options);
  TenantConfig capped;
  capped.max_in_flight = 1;
  auto a = sched.AddTenant("a", capped);
  ASSERT_TRUE(a.ok());

  int ran = 0;
  for (int i = 0; i < 3; ++i) {
    sched.Enqueue(*a, Lane::kRead, 1, [&] { ++ran; });
  }
  EXPECT_EQ(ran, 1);
  TenantConfig wide;
  wide.max_in_flight = 0;  // uncapped
  ASSERT_TRUE(sched.Reconfigure(*a, wide).ok());
  EXPECT_EQ(ran, 3);
  EXPECT_FALSE(sched.Reconfigure(*a, TenantConfig{.weight = -1.0}).ok());
  EXPECT_FALSE(sched.Reconfigure(99, TenantConfig{}).ok());
}

/// Fill every slot with sentinel units, enqueue `per_tenant` cost-1
/// units for each tenant, then free slots one at a time and record
/// which tenant each freed slot went to.
std::vector<std::string> DrainContended(FairScheduler* sched,
                                        std::vector<FairScheduler::TenantId>
                                            tenants,
                                        size_t per_tenant, size_t drains) {
  std::vector<std::string> order;
  // One sentinel occupies the single slot so everything else queues.
  sched->Enqueue(tenants[0], Lane::kRead, 1, [] {});
  std::vector<FairScheduler::TenantId> finished;
  for (size_t i = 0; i < per_tenant; ++i) {
    for (FairScheduler::TenantId t : tenants) {
      sched->Enqueue(t, Lane::kRead, 1, [&order, &finished, sched, t] {
        order.push_back(sched->Stats(t).name);
        finished.push_back(t);
      });
    }
  }
  // The sentinel belongs to tenants[0]; afterwards finish whichever
  // unit the previous pump dispatched.
  FairScheduler::TenantId next = tenants[0];
  for (size_t i = 0; i < drains; ++i) {
    const size_t before = finished.size();
    sched->OnUnitFinished(next);
    if (finished.size() == before) break;  // queues drained
    next = finished.back();
  }
  return order;
}

TEST(FairSchedulerTest, WeightsShapeDispatchRatioUnderContention) {
  FairSchedulerOptions options;
  options.max_in_flight = 1;
  FairScheduler sched(options);
  auto heavy = sched.AddTenant("heavy", TenantConfig{.weight = 3.0});
  auto light = sched.AddTenant("light", TenantConfig{.weight = 1.0});
  ASSERT_TRUE(heavy.ok() && light.ok());

  const std::vector<std::string> order =
      DrainContended(&sched, {*heavy, *light}, /*per_tenant=*/24,
                     /*drains=*/24);
  ASSERT_EQ(order.size(), 24u);
  const size_t heavy_count = static_cast<size_t>(
      std::count(order.begin(), order.end(), "heavy"));
  // 3:1 weights over 24 contended dispatches: heavy gets 18, light 6.
  // Allow one rotation of slack for the startup transient.
  EXPECT_NEAR(static_cast<double>(heavy_count), 18.0, 3.0)
      << "dispatch order was not ~3:1";
  // Both made progress — weighted sharing, not starvation.
  EXPECT_GT(heavy_count, 0u);
  EXPECT_LT(heavy_count, 24u);
}

TEST(FairSchedulerTest, EqualWeightsAlternate) {
  FairSchedulerOptions options;
  options.max_in_flight = 1;
  FairScheduler sched(options);
  auto a = sched.AddTenant("a", {});
  auto b = sched.AddTenant("b", {});
  ASSERT_TRUE(a.ok() && b.ok());

  const std::vector<std::string> order =
      DrainContended(&sched, {*a, *b}, /*per_tenant=*/8, /*drains=*/16);
  ASSERT_EQ(order.size(), 16u);
  EXPECT_EQ(std::count(order.begin(), order.end(), "a"), 8);
  EXPECT_EQ(std::count(order.begin(), order.end(), "b"), 8);
}

TEST(FairSchedulerTest, CostWeighsAgainstDeficit) {
  // Two equal-weight tenants; one submits cost-4 units, the other
  // cost-1: the cheap tenant should dispatch ~4x as many units.
  FairSchedulerOptions options;
  options.max_in_flight = 1;
  FairScheduler sched(options);
  auto wide = sched.AddTenant("wide", {});
  auto narrow = sched.AddTenant("narrow", {});
  ASSERT_TRUE(wide.ok() && narrow.ok());

  std::vector<std::string> order;
  std::vector<FairScheduler::TenantId> finished;
  sched.Enqueue(*wide, Lane::kRead, 1, [] {});  // sentinel holds the slot
  for (int i = 0; i < 20; ++i) {
    sched.Enqueue(*wide, Lane::kRead, 4, [&, t = *wide] {
      order.push_back("wide");
      finished.push_back(t);
    });
    sched.Enqueue(*narrow, Lane::kRead, 1, [&, t = *narrow] {
      order.push_back("narrow");
      finished.push_back(t);
    });
  }
  FairScheduler::TenantId next = *wide;
  for (int i = 0; i < 20; ++i) {
    const size_t before = finished.size();
    sched.OnUnitFinished(next);
    if (finished.size() == before) break;
    next = finished.back();
  }
  ASSERT_EQ(order.size(), 20u);
  const auto narrow_count =
      std::count(order.begin(), order.end(), "narrow");
  EXPECT_NEAR(static_cast<double>(narrow_count), 16.0, 3.0)
      << "cost-1 units should dispatch ~4x as often as cost-4";
}

TEST(FairSchedulerTest, LoneTenantRunsAtSlotSpeed) {
  // Work-conserving: with no competition, a tiny weight must not slow
  // the only queue down — every freed slot dispatches immediately.
  FairSchedulerOptions options;
  options.max_in_flight = 1;
  FairScheduler sched(options);
  auto a = sched.AddTenant("a", TenantConfig{.weight = 1e-6});
  ASSERT_TRUE(a.ok());

  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    sched.Enqueue(*a, Lane::kRead, 64, [&] { ++ran; });
  }
  EXPECT_EQ(ran, 1);
  for (int i = 0; i < 9; ++i) sched.OnUnitFinished(*a);
  EXPECT_EQ(ran, 10);
}

TEST(FairSchedulerTest, StatsTrackQueueAndPeaks) {
  FairSchedulerOptions options;
  options.max_in_flight = 1;
  FairScheduler sched(options);
  auto a = sched.AddTenant("a", {});
  ASSERT_TRUE(a.ok());

  for (int i = 0; i < 4; ++i) sched.Enqueue(*a, Lane::kRead, 1, [] {});
  auto stats = sched.Stats(*a);
  EXPECT_EQ(stats.name, "a");
  EXPECT_EQ(stats.enqueued, 4u);
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(stats.deferred, 3u);
  EXPECT_EQ(stats.queue_depth, 3u);
  EXPECT_EQ(stats.peak_queue_depth, 3u);
  EXPECT_EQ(stats.in_flight, 1u);
  for (int i = 0; i < 4; ++i) sched.OnUnitFinished(*a);
  stats = sched.Stats(*a);
  EXPECT_EQ(stats.dispatched, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.peak_queue_depth, 3u);
  EXPECT_EQ(sched.total_in_flight(), 0u);
}

TEST(FairSchedulerTest, UnknownTenantDegradesToImmediateDispatch) {
  FairScheduler sched;
  int ran = 0;
  EXPECT_TRUE(sched.Enqueue(42, Lane::kRead, 1, [&] { ++ran; }));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sched.total_in_flight(), 0u);
  sched.OnUnitFinished(42);  // must not underflow or crash
}

}  // namespace
}  // namespace parbox
