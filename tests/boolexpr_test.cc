#include <gtest/gtest.h>

#include "boolexpr/expr.h"
#include "boolexpr/serialize.h"
#include "boolexpr/solver.h"
#include "common/rng.h"

namespace parbox::bexpr {
namespace {

VarId V(int32_t fragment, int32_t index = 0) {
  return VarId{fragment, VectorKind::kV, index};
}
VarId DV(int32_t fragment, int32_t index = 0) {
  return VarId{fragment, VectorKind::kDV, index};
}

// ---------- VarId packing ----------

TEST(VarIdTest, PackUnpackRoundTrip) {
  for (int32_t frag : {0, 1, 7, 1000, 100000}) {
    for (VectorKind kind : {VectorKind::kV, VectorKind::kDV}) {
      for (int32_t idx : {0, 1, 255, VarId::kMaxQueryIndex}) {
        VarId original{frag, kind, idx};
        VarId round = VarId::Unpack(original.Pack());
        EXPECT_EQ(round.fragment, frag);
        EXPECT_EQ(round.kind, kind);
        EXPECT_EQ(round.query_index, idx);
      }
    }
  }
}

TEST(VarIdTest, DistinctIdsDistinctPacks) {
  EXPECT_NE(V(1, 2).Pack(), V(2, 1).Pack());
  EXPECT_NE(V(1, 2).Pack(), DV(1, 2).Pack());
}

TEST(VarIdTest, ToStringShowsKind) {
  EXPECT_EQ(V(3, 7).ToString(), "v3.7");
  EXPECT_EQ(DV(3, 7).ToString(), "dv3.7");
}

// ---------- Constant folding (the compFm cases) ----------

TEST(ExprTest, ConstantsAreFixedIds) {
  ExprFactory f;
  EXPECT_EQ(f.False(), kFalseExpr);
  EXPECT_EQ(f.True(), kTrueExpr);
  EXPECT_EQ(f.FromBool(false), kFalseExpr);
  EXPECT_EQ(f.FromBool(true), kTrueExpr);
  EXPECT_TRUE(f.is_const(f.True()));
  EXPECT_TRUE(f.const_value(f.True()));
  EXPECT_FALSE(f.const_value(f.False()));
}

TEST(ExprTest, ConstConstFolding) {
  // compFm case c0: both operands are truth values.
  ExprFactory f;
  EXPECT_EQ(f.And(f.True(), f.True()), f.True());
  EXPECT_EQ(f.And(f.True(), f.False()), f.False());
  EXPECT_EQ(f.Or(f.False(), f.False()), f.False());
  EXPECT_EQ(f.Or(f.True(), f.False()), f.True());
  EXPECT_EQ(f.Not(f.True()), f.False());
  EXPECT_EQ(f.Not(f.False()), f.True());
}

TEST(ExprTest, ConstFormulaFolding) {
  // compFm cases c1/c2: one truth value, one formula.
  ExprFactory f;
  ExprId x = f.Var(V(1));
  EXPECT_EQ(f.And(f.True(), x), x);
  EXPECT_EQ(f.And(x, f.True()), x);
  EXPECT_EQ(f.And(f.False(), x), f.False());
  EXPECT_EQ(f.Or(f.False(), x), x);
  EXPECT_EQ(f.Or(x, f.True()), f.True());
}

TEST(ExprTest, Idempotence) {
  ExprFactory f;
  ExprId x = f.Var(V(1));
  EXPECT_EQ(f.And(x, x), x);
  EXPECT_EQ(f.Or(x, x), x);
}

TEST(ExprTest, DoubleNegation) {
  ExprFactory f;
  ExprId x = f.Var(V(1));
  EXPECT_EQ(f.Not(f.Not(x)), x);
}

TEST(ExprTest, ComplementCancellation) {
  ExprFactory f;
  ExprId x = f.Var(V(1));
  EXPECT_EQ(f.And(x, f.Not(x)), f.False());
  EXPECT_EQ(f.Or(x, f.Not(x)), f.True());
}

TEST(ExprTest, HashConsingSharesStructure) {
  ExprFactory f;
  ExprId a = f.Var(V(1));
  ExprId b = f.Var(V(2));
  ExprId e1 = f.And(a, b);
  ExprId e2 = f.And(b, a);  // commutative => same canonical node
  EXPECT_EQ(e1, e2);
  ExprId e3 = f.Or(f.And(a, b), f.And(b, a));
  EXPECT_EQ(e3, e1);  // Or(x, x) == x
}

TEST(ExprTest, FlatteningAssociativity) {
  ExprFactory f;
  ExprId a = f.Var(V(1));
  ExprId b = f.Var(V(2));
  ExprId c = f.Var(V(3));
  EXPECT_EQ(f.And(f.And(a, b), c), f.And(a, f.And(b, c)));
  EXPECT_EQ(f.Or(f.Or(a, b), c), f.Or(a, f.Or(b, c)));
}

TEST(ExprTest, NaryConstructors) {
  ExprFactory f;
  std::vector<ExprId> vars = {f.Var(V(1)), f.Var(V(2)), f.Var(V(3))};
  ExprId all = f.AndN(vars);
  EXPECT_EQ(f.op(all), ExprOp::kAnd);
  EXPECT_EQ(f.children(all).size(), 3u);
  std::vector<ExprId> none;
  EXPECT_EQ(f.AndN(none), f.True());  // empty conjunction
  EXPECT_EQ(f.OrN(none), f.False());  // empty disjunction
}

TEST(ExprTest, VarIntrospection) {
  ExprFactory f;
  ExprId x = f.Var(V(9, 4));
  EXPECT_EQ(f.op(x), ExprOp::kVar);
  EXPECT_EQ(f.var(x).fragment, 9);
  EXPECT_EQ(f.var(x).query_index, 4);
  EXPECT_EQ(f.Var(V(9, 4)), x);  // interned
}

TEST(ExprTest, NodeCountIsDagAware) {
  ExprFactory f;
  ExprId a = f.Var(V(1));
  ExprId b = f.Var(V(2));
  ExprId shared = f.And(a, b);
  ExprId top = f.Or(shared, f.Not(shared));
  // top is Or(x, !x) => true by cancellation!
  EXPECT_EQ(top, f.True());
  ExprId top2 = f.Or(shared, f.And(a, f.Not(b)));
  // nodes: a, b, and(a,b), !b, and(a,!b), or => 6.
  EXPECT_EQ(f.NodeCount(top2), 6u);
}

TEST(ExprTest, CollectVarsSortedAndDeduped) {
  ExprFactory f;
  ExprId e = f.And(f.Or(f.Var(V(2)), f.Var(V(1))),
                   f.Or(f.Var(V(1)), f.Var(DV(2))));
  std::vector<VarId> vars = f.CollectVars(e);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0].ToString(), "v1.0");
  EXPECT_EQ(vars[1].ToString(), "v2.0");
  EXPECT_EQ(vars[2].ToString(), "dv2.0");
}

TEST(ExprTest, ToStringReadable) {
  ExprFactory f;
  ExprId e = f.And(f.Var(V(1)), f.Not(f.Var(DV(2))));
  std::string s = f.ToString(e);
  EXPECT_NE(s.find("v1.0"), std::string::npos);
  EXPECT_NE(s.find("!dv2.0"), std::string::npos);
  EXPECT_NE(s.find("&"), std::string::npos);
}

// ---------- Evaluation / substitution ----------

TEST(ExprEvalTest, FullAssignment) {
  ExprFactory f;
  ExprId e = f.Or(f.And(f.Var(V(1)), f.Var(V(2))), f.Not(f.Var(V(3))));
  Assignment a;
  a.Set(V(1), true);
  a.Set(V(2), false);
  a.Set(V(3), true);
  EXPECT_FALSE(*f.Eval(e, a));
  a.Set(V(2), true);
  EXPECT_TRUE(*f.Eval(e, a));
}

TEST(ExprEvalTest, MissingVariableIsUnresolved) {
  ExprFactory f;
  ExprId e = f.Var(V(1));
  Assignment empty;
  auto result = f.Eval(e, empty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnresolved);
}

TEST(ExprEvalTest, KleeneShortCircuits) {
  ExprFactory f;
  Assignment a;
  a.Set(V(1), false);
  // false AND unknown == false; true OR unknown == true.
  EXPECT_EQ(f.EvalPartial(f.And(f.Var(V(1)), f.Var(V(2))), a), Tri::kFalse);
  a.Set(V(1), true);
  EXPECT_EQ(f.EvalPartial(f.Or(f.Var(V(1)), f.Var(V(2))), a), Tri::kTrue);
  EXPECT_EQ(f.EvalPartial(f.And(f.Var(V(1)), f.Var(V(2))), a),
            Tri::kUnknown);
  EXPECT_EQ(f.EvalPartial(f.Not(f.Var(V(2))), a), Tri::kUnknown);
}

TEST(ExprEvalTest, SubstituteReplacesAndSimplifies) {
  ExprFactory f;
  ExprId e = f.And(f.Var(V(1)), f.Or(f.Var(V(2)), f.Var(V(3))));
  Assignment a;
  a.Set(V(2), false);
  ExprId sub = f.Substitute(e, a);
  // (v1 & (false | v3)) == v1 & v3.
  EXPECT_EQ(sub, f.And(f.Var(V(1)), f.Var(V(3))));
  a.Set(V(1), true);
  a.Set(V(3), true);
  EXPECT_EQ(f.Substitute(e, a), f.True());
}

TEST(ExprEvalTest, SubstituteEmptyAssignmentIsIdentity) {
  ExprFactory f;
  ExprId e = f.Or(f.Var(V(1)), f.Not(f.Var(V(2))));
  Assignment empty;
  EXPECT_EQ(f.Substitute(e, empty), e);
}

// Property: EvalPartial under a total assignment equals Eval, and
// Substitute then Eval equals direct Eval, on random formulas.
class ExprPropertyTest : public ::testing::TestWithParam<uint64_t> {};

ExprId RandomExpr(ExprFactory* f, Rng* rng, int depth) {
  int pick = static_cast<int>(rng->Uniform(depth <= 0 ? 3 : 6));
  switch (pick) {
    case 0:
      return f->FromBool(rng->Bernoulli(0.5));
    case 1:
    case 2:
      return f->Var(V(static_cast<int32_t>(rng->Uniform(4)),
                      static_cast<int32_t>(rng->Uniform(3))));
    case 3:
      return f->Not(RandomExpr(f, rng, depth - 1));
    case 4:
      return f->And(RandomExpr(f, rng, depth - 1),
                    RandomExpr(f, rng, depth - 1));
    default:
      return f->Or(RandomExpr(f, rng, depth - 1),
                   RandomExpr(f, rng, depth - 1));
  }
}

TEST_P(ExprPropertyTest, SubstituteConsistentWithEval) {
  Rng rng(GetParam());
  ExprFactory f;
  for (int trial = 0; trial < 50; ++trial) {
    ExprId e = RandomExpr(&f, &rng, 5);
    Assignment full;
    for (int32_t frag = 0; frag < 4; ++frag) {
      for (int32_t idx = 0; idx < 3; ++idx) {
        full.Set(V(frag, idx), rng.Bernoulli(0.5));
        full.Set(DV(frag, idx), rng.Bernoulli(0.5));
      }
    }
    Result<bool> direct = f.Eval(e, full);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(f.EvalPartial(e, full),
              *direct ? Tri::kTrue : Tri::kFalse);
    ExprId substituted = f.Substitute(e, full);
    ASSERT_TRUE(f.is_const(substituted)) << f.ToString(substituted);
    EXPECT_EQ(f.const_value(substituted), *direct);
  }
}

TEST_P(ExprPropertyTest, SerializationRoundTrip) {
  Rng rng(GetParam() + 1000);
  ExprFactory source;
  std::vector<ExprId> roots;
  for (int i = 0; i < 10; ++i) {
    roots.push_back(RandomExpr(&source, &rng, 4));
  }
  std::string wire = SerializeExprs(source, roots);
  ExprFactory target;
  auto decoded = DeserializeExprs(&target, wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), roots.size());
  // Semantically identical: same value under every assignment we try.
  for (int trial = 0; trial < 20; ++trial) {
    Assignment a;
    for (int32_t frag = 0; frag < 4; ++frag) {
      for (int32_t idx = 0; idx < 3; ++idx) {
        a.Set(V(frag, idx), rng.Bernoulli(0.5));
        a.Set(DV(frag, idx), rng.Bernoulli(0.5));
      }
    }
    for (size_t i = 0; i < roots.size(); ++i) {
      EXPECT_EQ(*source.Eval(roots[i], a), *target.Eval((*decoded)[i], a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST(SerializeTest, EmptyRootsRoundTrip) {
  ExprFactory f;
  std::vector<ExprId> none;
  std::string wire = SerializeExprs(f, none);
  ExprFactory g;
  auto decoded = DeserializeExprs(&g, wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SerializeTest, SharedStructureEncodedOnce) {
  ExprFactory f;
  ExprId x = f.Var(V(1));
  ExprId y = f.Var(V(2));
  ExprId shared = f.And(x, y);
  std::vector<ExprId> once = {shared};
  std::vector<ExprId> thrice = {shared, shared, shared};
  // Repeating a root costs only a back-reference, not a re-encode.
  EXPECT_LT(SerializeExprs(f, thrice).size(),
            3 * SerializeExprs(f, once).size());
}

TEST(SerializeTest, GarbageRejected) {
  ExprFactory f;
  EXPECT_FALSE(DeserializeExprs(&f, "\xff\xff\xff").ok());
  EXPECT_FALSE(DeserializeExprs(&f, "").ok());
}

TEST(SerializeTest, TruncationRejected) {
  ExprFactory f;
  ExprId e = f.And(f.Var(V(1)), f.Var(V(2)));
  std::vector<ExprId> one = {e};
  std::string wire = SerializeExprs(f, one);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    ExprFactory g;
    EXPECT_FALSE(DeserializeExprs(&g, wire.substr(0, cut)).ok())
        << "prefix of length " << cut << " accepted";
  }
}

// ---------- Solver ----------

TEST(SolverTest, SingleFragmentSystem) {
  ExprFactory f;
  std::vector<FragmentEquations> eqs(1);
  eqs[0].fragment = 0;
  eqs[0].v = {f.True(), f.False()};
  eqs[0].cv = {f.False(), f.False()};
  eqs[0].dv = {f.True(), f.False()};
  std::vector<std::vector<int32_t>> children = {{}};
  auto answer = SolveForAnswer(&f, eqs, children, 0, 0);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(*answer);
  EXPECT_FALSE(*SolveForAnswer(&f, eqs, children, 0, 1));
}

TEST(SolverTest, ChainUnification) {
  // F0 <- F1 <- F2; F0's answer is F1's dv which is F2's v.
  ExprFactory f;
  std::vector<FragmentEquations> eqs(3);
  eqs[0].fragment = 0;
  eqs[0].v = {f.Var(DV(1))};
  eqs[0].cv = {f.Var(V(1))};
  eqs[0].dv = {f.Var(DV(1))};
  eqs[1].fragment = 1;
  eqs[1].v = {f.Var(V(2))};
  eqs[1].cv = {f.Var(V(2))};
  eqs[1].dv = {f.Var(V(2))};
  eqs[2].fragment = 2;
  eqs[2].v = {f.True()};
  eqs[2].cv = {f.False()};
  eqs[2].dv = {f.True()};
  std::vector<std::vector<int32_t>> children = {{1}, {2}, {}};
  auto assignment = SolveBottomUp(&f, eqs, children, 0);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  EXPECT_EQ(assignment->Get(V(0)), std::make_optional(true));
  EXPECT_EQ(assignment->Get(DV(1)), std::make_optional(true));
}

TEST(SolverTest, DanglingVariableFails) {
  ExprFactory f;
  std::vector<FragmentEquations> eqs(1);
  eqs[0].fragment = 0;
  eqs[0].v = {f.Var(V(42))};  // references a non-child fragment
  eqs[0].cv = {f.False()};
  eqs[0].dv = {f.False()};
  std::vector<std::vector<int32_t>> children = {{}};
  auto answer = SolveForAnswer(&f, eqs, children, 0, 0);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnresolved);
}

TEST(SolverTest, MisindexedEquationsFail) {
  ExprFactory f;
  std::vector<FragmentEquations> eqs(1);
  eqs[0].fragment = 5;  // wrong slot
  eqs[0].v = {f.True()};
  eqs[0].cv = {f.False()};
  eqs[0].dv = {f.True()};
  std::vector<std::vector<int32_t>> children = {{}};
  EXPECT_FALSE(SolveForAnswer(&f, eqs, children, 0, 0).ok());
}

TEST(SolverTest, PartialSolveReportsUnknownUntilDataArrives) {
  ExprFactory f;
  std::vector<FragmentEquations> eqs(2);
  eqs[0].fragment = 0;
  eqs[0].v = {f.Var(V(1))};
  eqs[0].cv = {f.Var(V(1))};
  eqs[0].dv = {f.Var(DV(1))};
  eqs[1].fragment = 1;
  eqs[1].v = {f.True()};
  eqs[1].cv = {f.False()};
  eqs[1].dv = {f.True()};
  std::vector<std::vector<int32_t>> children = {{1}, {}};

  std::vector<const FragmentEquations*> only_root = {&eqs[0], nullptr};
  EXPECT_EQ(SolvePartial(&f, only_root, children, 0, 0), Tri::kUnknown);

  std::vector<const FragmentEquations*> both = {&eqs[0], &eqs[1]};
  EXPECT_EQ(SolvePartial(&f, both, children, 0, 0), Tri::kTrue);
}

TEST(SolverTest, PartialSolveDeterminedWithoutChildren) {
  // Root's answer doesn't depend on the child: lazy can stop early.
  ExprFactory f;
  std::vector<FragmentEquations> eqs(2);
  eqs[0].fragment = 0;
  eqs[0].v = {f.Or(f.True(), f.Var(V(1)))};  // folds to true
  eqs[0].cv = {f.Var(V(1))};
  eqs[0].dv = {f.True()};
  eqs[1].fragment = 1;
  std::vector<std::vector<int32_t>> children = {{1}, {}};
  std::vector<const FragmentEquations*> only_root = {&eqs[0], nullptr};
  EXPECT_EQ(SolvePartial(&f, only_root, children, 0, 0), Tri::kTrue);
}

}  // namespace
}  // namespace parbox::bexpr
