#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "fragment/fragment.h"
#include "fragment/placement.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "xmark/generator.h"
#include "xmark/portfolio.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace parbox::frag {
namespace {

FragmentSet SetFrom(std::string_view xml_text) {
  auto doc = xml::ParseXml(xml_text);
  EXPECT_TRUE(doc.ok());
  auto set = FragmentSet::FromDocument(std::move(*doc));
  EXPECT_TRUE(set.ok());
  return std::move(*set);
}

TEST(FragmentTest, SingleFragmentFromDocument) {
  FragmentSet set = SetFrom("<r><a/><b/></r>");
  EXPECT_EQ(set.live_count(), 1u);
  EXPECT_EQ(set.root_fragment(), 0);
  EXPECT_EQ(set.fragment(0).parent, kNoFragment);
  EXPECT_TRUE(set.Validate().ok());
}

TEST(FragmentTest, RejectsEmptyDocument) {
  xml::Document doc;
  EXPECT_FALSE(FragmentSet::FromDocument(std::move(doc)).ok());
}

TEST(FragmentTest, SplitCreatesVirtualNode) {
  FragmentSet set = SetFrom("<r><a><c/></a><b/></r>");
  xml::Node* a = xml::FindFirstElement(set.fragment(0).root, "a");
  auto id = set.Split(0, a);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 1);
  EXPECT_EQ(set.live_count(), 2u);
  EXPECT_EQ(set.fragment(1).parent, 0);
  EXPECT_EQ(set.fragment(0).children, std::vector<FragmentId>{1});
  // The placeholder sits where <a> was.
  xml::Node* first = set.fragment(0).root->first_child;
  EXPECT_TRUE(first->is_virtual());
  EXPECT_EQ(first->fragment_ref, 1);
  EXPECT_TRUE(set.Validate().ok());
}

TEST(FragmentTest, SplitErrors) {
  FragmentSet set = SetFrom("<r><a/></r>");
  // Not the root of the fragment.
  EXPECT_FALSE(set.Split(0, set.fragment(0).root).ok());
  // Null / non-element.
  EXPECT_FALSE(set.Split(0, nullptr).ok());
  // Dead fragment id.
  xml::Node* a = xml::FindFirstElement(set.fragment(0).root, "a");
  EXPECT_FALSE(set.Split(7, a).ok());
}

TEST(FragmentTest, SplitNodeFromWrongFragmentRejected) {
  FragmentSet set = SetFrom("<r><a><c/></a></r>");
  xml::Node* a = xml::FindFirstElement(set.fragment(0).root, "a");
  ASSERT_TRUE(set.Split(0, a).ok());
  // <c> now lives in fragment 1, not 0.
  xml::Node* c = xml::FindFirstElement(set.fragment(1).root, "c");
  EXPECT_FALSE(set.Split(0, c).ok());
  EXPECT_TRUE(set.Split(1, c).ok());
}

TEST(FragmentTest, NestedSplitReparentsSubFragments) {
  // Split <a>, then split <outer> (which contains the virtual node for
  // <a>'s fragment): the sub-fragment must re-parent.
  FragmentSet set = SetFrom("<r><outer><a><c/></a><d/></outer></r>");
  xml::Node* a = xml::FindFirstElement(set.fragment(0).root, "a");
  ASSERT_TRUE(set.Split(0, a).ok());  // F1 = <a>
  xml::Node* outer = xml::FindFirstElement(set.fragment(0).root, "outer");
  auto f2 = set.Split(0, outer);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(set.fragment(1).parent, *f2);
  EXPECT_EQ(set.fragment(*f2).children, std::vector<FragmentId>{1});
  EXPECT_TRUE(set.fragment(0).children == std::vector<FragmentId>{*f2});
  EXPECT_TRUE(set.Validate().ok());
}

TEST(FragmentTest, ReassembleRestoresOriginal) {
  auto original = xml::ParseXml("<r><a><c>t</c></a><b><d/></b></r>");
  ASSERT_TRUE(original.ok());
  xml::Document copy;
  copy.set_root(copy.DeepCopy(original->root()));

  auto set_result = FragmentSet::FromDocument(std::move(*original));
  ASSERT_TRUE(set_result.ok());
  FragmentSet set = std::move(*set_result);
  set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a")).value();
  set.Split(0, xml::FindFirstElement(set.fragment(0).root, "b")).value();
  set.Split(1, xml::FindFirstElement(set.fragment(1).root, "c")).value();

  auto whole = set.Reassemble();
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(xml::TreeEquals(copy.root(), whole->root()));
}

TEST(FragmentTest, MergeInversesSplit) {
  auto original = xml::ParseXml("<r><a><c/></a><b/></r>");
  ASSERT_TRUE(original.ok());
  xml::Document copy;
  copy.set_root(copy.DeepCopy(original->root()));

  auto set_result = FragmentSet::FromDocument(std::move(*original));
  FragmentSet set = std::move(*set_result);
  auto f1 = set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a"));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(set.Merge(*f1).ok());
  EXPECT_EQ(set.live_count(), 1u);
  EXPECT_FALSE(set.is_live(*f1));
  EXPECT_TRUE(set.Validate().ok());
  EXPECT_TRUE(xml::TreeEquals(copy.root(), set.fragment(0).root));
}

TEST(FragmentTest, MergePromotesGrandchildren) {
  FragmentSet set = SetFrom("<r><a><c><e/></c></a></r>");
  auto f1 = set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a"));
  auto f2 = set.Split(*f1, xml::FindFirstElement(set.fragment(*f1).root, "c"));
  ASSERT_TRUE(f2.ok());
  // Merge the middle fragment: F2 becomes a child of F0.
  ASSERT_TRUE(set.Merge(*f1).ok());
  EXPECT_EQ(set.fragment(*f2).parent, 0);
  EXPECT_EQ(set.fragment(0).children, std::vector<FragmentId>{*f2});
  EXPECT_TRUE(set.Validate().ok());
}

TEST(FragmentTest, MergeRootRejected) {
  FragmentSet set = SetFrom("<r><a/></r>");
  EXPECT_FALSE(set.Merge(0).ok());
}

TEST(FragmentTest, SizesAndBytes) {
  FragmentSet set = SetFrom("<r><a><c/><d/></a><b/></r>");
  size_t total_before = set.TotalElements();
  EXPECT_EQ(total_before, 5u);
  auto f1 = set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a"));
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(set.FragmentElements(0), 2u);  // r, b
  EXPECT_EQ(set.FragmentElements(*f1), 3u);
  EXPECT_EQ(set.TotalElements(), total_before);  // splits are disjoint
  EXPECT_GT(set.FragmentSerializedBytes(0), 0u);
}

TEST(FragmentTest, FindVirtualRef) {
  FragmentSet set = SetFrom("<r><a/></r>");
  auto f1 = set.Split(0, xml::FindFirstElement(set.fragment(0).root, "a"));
  xml::Node* v = FindVirtualRef(set, 0, *f1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->fragment_ref, *f1);
  EXPECT_EQ(FindVirtualRef(set, 0, 99), nullptr);
}

// ---------- Portfolio fragmentation (the paper's Fig. 2) ----------

TEST(PortfolioTest, FourFragmentsAsInFig2) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->live_count(), 4u);
  // Fragment tree: F1 and F3 are children of F0; F2 is a child of F1.
  EXPECT_EQ(set->fragment(1).parent, 0);
  EXPECT_EQ(set->fragment(2).parent, 1);
  EXPECT_EQ(set->fragment(3).parent, 0);
  // F2 and F3 are leaf fragments.
  EXPECT_TRUE(set->fragment(2).children.empty());
  EXPECT_TRUE(set->fragment(3).children.empty());
}

TEST(PortfolioTest, ReassemblesToOriginalDocument) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto whole = set->Reassemble();
  ASSERT_TRUE(whole.ok());
  xml::Document original = xmark::BuildPortfolioDocument();
  EXPECT_TRUE(xml::TreeEquals(original.root(), whole->root()));
}

TEST(PortfolioTest, FragmentContentsMatchPaper) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  // F1 is Merill Lynch's broker; its market subtree (F2) is virtual.
  EXPECT_EQ(set->fragment(1).root->label(), "broker");
  EXPECT_NE(xml::FindFirstElement(set->fragment(1).root, "name"), nullptr);
  EXPECT_EQ(xml::FindFirstElement(set->fragment(1).root, "market"), nullptr);
  // F2 holds GOOG and YHOO; F3 holds AAPL and GOOG.
  EXPECT_NE(xml::FindFirstElement(set->fragment(2).root, "code"), nullptr);
  EXPECT_EQ(xml::CountVirtuals(set->fragment(2).root), 0u);
  EXPECT_EQ(set->fragment(3).root->label(), "market");
}

// ---------- Source tree ----------

TEST(SourceTreeTest, PaperAssignment) {
  // Fig. 2(b): F0 -> S0, F1 -> S1, F2 -> S2, F3 -> S2.
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto st = SourceTree::Create(*set, {0, 1, 2, 2});
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(st->num_sites(), 3);
  EXPECT_EQ(st->site_of(3), 2);
  EXPECT_EQ(st->fragments_at(2), (std::vector<FragmentId>{2, 3}));
  EXPECT_EQ(st->depth_of(0), 0);
  EXPECT_EQ(st->depth_of(1), 1);
  EXPECT_EQ(st->depth_of(2), 2);
  EXPECT_EQ(st->depth_of(3), 1);
  EXPECT_EQ(st->max_depth(), 2);
  EXPECT_EQ(st->fragments_at_depth(1), (std::vector<FragmentId>{1, 3}));
  EXPECT_EQ(st->parent_of(2), 1);
}

TEST(SourceTreeTest, MissingSiteRejected) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(SourceTree::Create(*set, {0, 1, -1, 2}).ok());
  EXPECT_FALSE(SourceTree::Create(*set, {0}).ok());
}

// ---------- Strategies ----------

TEST(StrategiesTest, SplitAtAllLabeled) {
  xml::Document doc = xmark::GenerateStarDocument(4, 4000, 7);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  auto created = SplitAtAllLabeled(&set, "site");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->size(), 4u);
  EXPECT_EQ(set.live_count(), 5u);
  for (FragmentId f : *created) {
    EXPECT_EQ(set.fragment(f).root->label(), "site");
    EXPECT_EQ(set.fragment(f).parent, 0);
  }
  EXPECT_TRUE(set.Validate().ok());
}

TEST(StrategiesTest, SplitAtAllLabeledChainNests) {
  xml::Document doc = xmark::GenerateChainDocument(4, 3000, 7);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  // The root itself is a <site>; the three nested ones split out,
  // forming a chain F0 <- F1 <- F2 <- F3.
  auto created = SplitAtAllLabeled(&set, "site");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(set.live_count(), 4u);
  auto st = SourceTree::Create(set, AssignOneSitePerFragment(set));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->max_depth(), 3);
}

TEST(StrategiesTest, RandomSplitsRespectBudget) {
  Rng rng(3);
  xml::Document doc = xmark::GenerateRandomSmallDocument(200, &rng);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  auto created = RandomSplits(&set, 6, &rng);
  ASSERT_TRUE(created.ok());
  EXPECT_LE(created->size(), 6u);
  EXPECT_TRUE(set.Validate().ok());
  auto whole = set.Reassemble();
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(xml::CountElements(whole->root()), set.TotalElements());
}

TEST(StrategiesTest, Assignments) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto per_fragment = AssignOneSitePerFragment(*set);
  EXPECT_EQ(per_fragment, (std::vector<SiteId>{0, 1, 2, 3}));
  auto one_site = AssignAllToOneSite(*set);
  EXPECT_EQ(one_site, (std::vector<SiteId>{0, 0, 0, 0}));
  auto rr = AssignRoundRobin(*set, 3);
  EXPECT_EQ(rr[set->root_fragment()], 0);
  for (FragmentId f : set->live_ids()) {
    EXPECT_GE(rr[f], 0);
    EXPECT_LT(rr[f], 3);
  }
}

// ---- Placement: the mutable h -----------------------------------------

TEST(PlacementTest, CreateValidatesLikeSourceTree) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  // Too-short table rejected.
  EXPECT_FALSE(Placement::Create(*set, {0, 1}).ok());
  // Live fragment without a site rejected.
  EXPECT_FALSE(Placement::Create(*set, {0, -1, 1, 2}).ok());
  // Assignment naming a site beyond num_sites rejected.
  EXPECT_FALSE(Placement::Create(*set, {0, 1, 2, 3}, 3).ok());

  auto p = Placement::Create(*set, {0, 1, 2, 3});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->num_sites(), 4);
  EXPECT_EQ(p->epoch(), 0u);
  // Extra idle sites are allowed (room to migrate into).
  auto roomy = Placement::Create(*set, {0, 1, 2, 3}, 6);
  ASSERT_TRUE(roomy.ok());
  EXPECT_EQ(roomy->num_sites(), 6);
}

TEST(PlacementTest, MoveValidatesAndBumpsEpoch) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto p = Placement::Create(*set, {0, 1, 2, 3});
  ASSERT_TRUE(p.ok());

  // The root fragment is pinned to the coordinator.
  EXPECT_FALSE(p->Move(*set, set->root_fragment(), 1).ok());
  // Dead fragment / out-of-range site rejected.
  EXPECT_FALSE(p->Move(*set, 99, 1).ok());
  EXPECT_FALSE(p->Move(*set, 1, 4).ok());
  EXPECT_FALSE(p->Move(*set, 1, -1).ok());
  EXPECT_EQ(p->epoch(), 0u);

  // A no-op move is OK but bumps nothing.
  ASSERT_TRUE(p->Move(*set, 1, 1).ok());
  EXPECT_EQ(p->epoch(), 0u);

  ASSERT_TRUE(p->Move(*set, 1, 3).ok());
  EXPECT_EQ(p->epoch(), 1u);
  EXPECT_EQ(p->site_of(1), 3);
  ASSERT_TRUE(p->Move(*set, 2, 3).ok());
  EXPECT_EQ(p->epoch(), 2u);
}

TEST(PlacementTest, SnapshotStampsEpochAndKeepsSiteCount) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto p = Placement::Create(*set, {0, 1, 2, 3});
  ASSERT_TRUE(p.ok());

  auto st0 = p->Snapshot(*set);
  ASSERT_TRUE(st0.ok());
  EXPECT_EQ(st0->placement_epoch(), 0u);
  EXPECT_EQ(st0->num_sites(), 4);

  // Moving fragment 3 onto site 0 empties site 3; the snapshot must
  // keep the placement's 4 sites anyway (the substrate was sized for
  // them), and carry the new epoch.
  ASSERT_TRUE(p->Move(*set, 3, 0).ok());
  auto st1 = p->Snapshot(*set);
  ASSERT_TRUE(st1.ok());
  EXPECT_EQ(st1->placement_epoch(), 1u);
  EXPECT_EQ(st1->num_sites(), 4);
  EXPECT_EQ(st1->site_of(3), 0);
  EXPECT_TRUE(st1->fragments_at(3).empty());
  // The older snapshot is untouched (immutable view semantics).
  EXPECT_EQ(st0->site_of(3), 3);
}

TEST(PlacementTest, AssignCoversFragmentsMintedBySplit) {
  FragmentSet set = SetFrom("<r><a><b><c/></b></a></r>");
  auto p = Placement::Create(set, {0}, 2);
  ASSERT_TRUE(p.ok());
  xml::Node* b = xml::FindFirstElement(set.fragment(0).root, "b");
  auto f = set.Split(0, b);
  ASSERT_TRUE(f.ok());
  // The new fragment has no site yet: Snapshot must fail until Assign.
  EXPECT_FALSE(p->Snapshot(set).ok());
  ASSERT_TRUE(p->Assign(set, *f, 1).ok());
  EXPECT_EQ(p->epoch(), 1u);
  auto st = p->Snapshot(set);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->site_of(*f), 1);
}

// ---- Load-aware rebalance ----------------------------------------------

TEST(PlacementTest, ProposeRebalanceShiftsLoadOffHotSite) {
  // 1 + 6 fragments; the root alone on site 0, everything else piled
  // onto site 1 of a 4-site placement.
  Rng rng(17);
  xml::Document doc = xmark::GenerateRandomSmallDocument(300, &rng);
  auto set_result = FragmentSet::FromDocument(std::move(doc));
  FragmentSet set = std::move(*set_result);
  ASSERT_TRUE(RandomSplits(&set, 6, &rng).ok());
  std::vector<SiteId> site_of(set.table_size(), 1);
  site_of[set.root_fragment()] = 0;
  auto p = Placement::Create(set, std::move(site_of), 4);
  ASSERT_TRUE(p.ok());

  // Observed load: site 1 got all the visits and bytes.
  std::vector<uint64_t> visits = {1, 60, 0, 0};
  std::vector<uint64_t> bytes = {512, 1 << 20, 0, 0};
  const std::vector<ProposedMove> moves =
      ProposeRebalance(set, *p, visits, bytes, {});
  ASSERT_FALSE(moves.empty());
  for (const ProposedMove& m : moves) {
    EXPECT_NE(m.fragment, set.root_fragment());
    EXPECT_EQ(m.from, 1);
    EXPECT_NE(m.to, 1);
    EXPECT_GE(m.to, 0);
    EXPECT_LT(m.to, 4);
  }
  // Deterministic: the same inputs propose the same plan.
  const std::vector<ProposedMove> again =
      ProposeRebalance(set, *p, visits, bytes, {});
  ASSERT_EQ(moves.size(), again.size());
  for (size_t i = 0; i < moves.size(); ++i) {
    EXPECT_EQ(moves[i].fragment, again[i].fragment);
    EXPECT_EQ(moves[i].to, again[i].to);
  }
  // max_moves is honored.
  EXPECT_LE(ProposeRebalance(set, *p, visits, bytes, {.max_moves = 1})
                .size(),
            1u);
  // Balanced load proposes nothing.
  EXPECT_TRUE(ProposeRebalance(set, *p, {5, 5, 5, 5}, {0, 0, 0, 0}, {})
                  .empty());
}

TEST(PlacementTest, FeedPublishesEpochsAndDedupsMoves) {
  auto set = xmark::BuildPortfolioFragments();
  ASSERT_TRUE(set.ok());
  auto p = Placement::Create(*set, {0, 1, 2, 3});
  ASSERT_TRUE(p.ok());
  PlacementFeed feed;
  auto snap = [&] {
    auto st = p->Snapshot(*set);
    EXPECT_TRUE(st.ok());
    return std::make_shared<const SourceTree>(std::move(*st));
  };
  feed.Publish(snap(), {});
  EXPECT_EQ(feed.epoch(), 1u);
  const uint64_t seen = feed.epoch();

  ASSERT_TRUE(p->Move(*set, 1, 3).ok());
  feed.Publish(snap(), {1});
  ASSERT_TRUE(p->Move(*set, 2, 3).ok());
  feed.Publish(snap(), {2});
  ASSERT_TRUE(p->Move(*set, 1, 2).ok());
  feed.Publish(snap(), {1});

  EXPECT_EQ(feed.epoch(), 4u);
  EXPECT_EQ(feed.MovedSince(seen), (std::vector<FragmentId>{1, 2}));
  EXPECT_EQ(feed.MovedSince(3), (std::vector<FragmentId>{1}));
  EXPECT_TRUE(feed.MovedSince(4).empty());
  EXPECT_EQ(feed.snapshot()->site_of(1), 2);
}

// Satellite of the scale work: an integer-width guard. Splitting a
// 10'000-site star document yields virtual refs across the whole id
// range in one serialized fragment; writing and reparsing must round-
// trip every id exactly — this is the scale where a narrow counter or
// length field in the writer/parser path would first fold ids onto
// each other.
TEST(FragmentScaleTest, TenThousandFragmentDocumentRoundTripsIds) {
  xml::Document doc = xmark::GenerateScaledStarDocument(
      /*num_sites=*/10050, /*nodes_per_site=*/4, /*seed=*/11);
  auto set = FragmentSet::FromDocument(std::move(doc));
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(SplitAtAllLabeled(&*set, "site").ok());
  ASSERT_GE(set->live_count(), 10000u);
  ASSERT_TRUE(set->Validate().ok());

  // In-order virtual refs of a subtree, iteratively (10k-wide tree).
  auto refs_of = [](const xml::Node* root) {
    std::vector<xml::FragmentId> refs;
    std::vector<const xml::Node*> stack{root};
    while (!stack.empty()) {
      const xml::Node* n = stack.back();
      stack.pop_back();
      if (n->is_virtual()) refs.push_back(n->fragment_ref);
      for (const xml::Node* c = n->last_child; c != nullptr;
           c = c->prev_sibling) {
        stack.push_back(c);
      }
    }
    return refs;
  };

  const xml::Node* root = set->fragment(set->root_fragment()).root;
  const std::string text = xml::WriteXml(root);
  auto reparsed = xml::ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const std::vector<xml::FragmentId> before = refs_of(root);
  const std::vector<xml::FragmentId> after = refs_of(reparsed->root());
  ASSERT_EQ(before.size(), set->live_count() - 1);
  EXPECT_EQ(before, after);

  // And the top of FragmentId's range survives verbatim.
  xml::Document tiny;
  xml::Node* r = tiny.NewElement("r");
  tiny.set_root(r);
  tiny.AppendChild(
      r, tiny.NewVirtual(std::numeric_limits<xml::FragmentId>::max()));
  auto round = xml::ParseXml(xml::WriteXml(r));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->root()->first_child->fragment_ref,
            std::numeric_limits<xml::FragmentId>::max());
}

}  // namespace
}  // namespace parbox::frag
