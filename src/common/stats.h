// Lightweight named counters, RocksDB-Statistics style.
//
// Modules record what they did (nodes visited, formula ops, bytes sent)
// into a StatsRegistry owned by the current run; tests and benchmarks
// read the counters back to verify the paper's complexity claims
// empirically rather than trusting the analysis.

#ifndef PARBOX_COMMON_STATS_H_
#define PARBOX_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>

namespace parbox {

/// A bag of monotonically increasing named counters.
class StatsRegistry {
 public:
  void Add(const std::string& name, uint64_t delta) {
    counters_[name] += delta;
  }
  void Increment(const std::string& name) { Add(name, 1); }

  /// 0 if never touched.
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() { counters_.clear(); }

  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }

  /// Multi-line "name = value" dump, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace parbox

#endif  // PARBOX_COMMON_STATS_H_
