// Lightweight named counters, RocksDB-Statistics style.
//
// Modules record what they did (nodes visited, formula ops, bytes sent)
// into a StatsRegistry owned by the current run; tests and benchmarks
// read the counters back to verify the paper's complexity claims
// empirically rather than trusting the analysis.

#ifndef PARBOX_COMMON_STATS_H_
#define PARBOX_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace parbox {

/// A sample of real-valued observations (latencies, sizes) answering
/// mean and percentile questions — the service-level complement to the
/// counter registry below. Percentiles use the nearest-rank method on
/// a lazily sorted copy, so Add stays O(1).
class Distribution {
 public:
  void Add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  size_t count() const { return values_.size(); }
  double sum() const;
  double mean() const { return values_.empty() ? 0.0 : sum() / count(); }
  double min() const;
  double max() const;

  /// Nearest-rank percentile, `pct` in [0, 100]. 0 on an empty sample.
  double Percentile(double pct) const;

  /// Pool `other`'s observations into this sample (aggregate service
  /// reports across documents).
  void Merge(const Distribution& other) {
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    sorted_ = false;
  }

  /// "n=.. mean=.. p50=.. p95=.. p99=.. max=.." with `unit` appended
  /// to each value (e.g. "ms") and values multiplied by `scale`
  /// (e.g. 1e3 to print seconds as milliseconds).
  std::string Summary(const std::string& unit = "",
                      double scale = 1.0) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// A bag of monotonically increasing named counters.
class StatsRegistry {
 public:
  void Add(const std::string& name, uint64_t delta) {
    counters_[name] += delta;
  }
  void Increment(const std::string& name) { Add(name, 1); }

  /// 0 if never touched.
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() { counters_.clear(); }

  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }

  /// Multi-line "name = value" dump, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace parbox

#endif  // PARBOX_COMMON_STATS_H_
