// Status / Result: exception-free error handling for the parbox library.
//
// Follows the RocksDB/Arrow convention: fallible operations return a
// `Status` (or a `Result<T>` carrying a value), never throw. Call sites
// either propagate with PARBOX_RETURN_IF_ERROR or assert success in
// contexts where failure is a programming error.

#ifndef PARBOX_COMMON_STATUS_H_
#define PARBOX_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace parbox {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< Input text (XML or XPath) failed to parse.
  kNotFound,          ///< Referenced entity (node, fragment, site) missing.
  kFailedPrecondition,///< Operation not valid in the current state.
  kUnresolved,        ///< A Boolean equation system did not fully resolve.
  kInternal,          ///< Invariant violation inside the library.
};

/// Human-readable name of a StatusCode ("ok", "parse error", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
class Status {
 public:
  /// Successful status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unresolved(std::string m) {
    return Status(StatusCode::kUnresolved, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or a failure Status. T must be movable.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return some_t;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: allows `return Status::ParseError(..)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace parbox

/// Propagate a non-OK Status to the caller.
#define PARBOX_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::parbox::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluate `rexpr` (a Result<T>), propagate failure, else bind the value.
#define PARBOX_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto PARBOX_CONCAT_(_res_, __LINE__) = (rexpr);                  \
  if (!PARBOX_CONCAT_(_res_, __LINE__).ok())                       \
    return PARBOX_CONCAT_(_res_, __LINE__).status();               \
  lhs = std::move(PARBOX_CONCAT_(_res_, __LINE__)).value()

#define PARBOX_CONCAT_IMPL_(a, b) a##b
#define PARBOX_CONCAT_(a, b) PARBOX_CONCAT_IMPL_(a, b)

#endif  // PARBOX_COMMON_STATUS_H_
