#include "common/rng.h"

namespace parbox {

uint64_t Rng::Next64() {
  // splitmix64 (Steele, Lea, Flood 2014).
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::Word(int min_len, int max_len) {
  int len = static_cast<int>(UniformInt(min_len, max_len));
  std::string w;
  w.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    w.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return w;
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace parbox
