// Arena: a bump allocator for DOM nodes.
//
// XML documents allocate millions of small nodes with identical
// lifetime (the whole document). A bump arena makes allocation a
// pointer increment, keeps nodes cache-adjacent in traversal order, and
// frees everything at once when the document dies. Objects allocated
// here must be trivially destructible (their destructors never run).

#ifndef PARBOX_COMMON_ARENA_H_
#define PARBOX_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace parbox {

/// Block-chained bump allocator. Not thread-safe; one arena per owner.
class Arena {
 public:
  explicit Arena(size_t block_bytes = 1 << 20) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw aligned allocation of `n` bytes.
  void* Allocate(size_t n, size_t align = alignof(std::max_align_t));

  /// Construct a T in the arena. T's destructor will never run.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T> ||
                      // Containers of arena pointers are fine to leak.
                      true,
                  "arena objects are never destroyed");
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Copy a string into the arena; returns a stable view.
  const char* CopyString(const char* data, size_t size);

  /// Total bytes handed out (excludes block slack).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace parbox

#endif  // PARBOX_COMMON_ARENA_H_
