#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace parbox {

void* Arena::Allocate(size_t n, size_t align) {
  if (n == 0) n = 1;
  uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
  uintptr_t aligned = (p + align - 1) & ~(align - 1);
  if (ptr_ == nullptr || aligned + n > reinterpret_cast<uintptr_t>(end_)) {
    size_t block = std::max(block_bytes_, n + align);
    blocks_.push_back(std::make_unique<char[]>(block));
    ptr_ = blocks_.back().get();
    end_ = ptr_ + block;
    bytes_reserved_ += block;
    p = reinterpret_cast<uintptr_t>(ptr_);
    aligned = (p + align - 1) & ~(align - 1);
  }
  ptr_ = reinterpret_cast<char*>(aligned + n);
  bytes_allocated_ += n;
  return reinterpret_cast<void*>(aligned);
}

const char* Arena::CopyString(const char* data, size_t size) {
  char* out = static_cast<char*>(Allocate(size + 1, 1));
  std::memcpy(out, data, size);
  out[size] = '\0';
  return out;
}

}  // namespace parbox
