#include "common/bytes.h"

#include <cstdio>

namespace parbox {

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else if (bytes < 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace parbox
