// Deterministic pseudo-random number generation.
//
// All randomized components of the library (the XMark-like generator,
// fragmentation strategies, property tests) take an explicit Rng so that
// every run is reproducible from a seed. The generator is splitmix64 — a
// tiny, fast, high-quality 64-bit mixer — rather than std::mt19937 so
// the stream is identical across standard library implementations.

#ifndef PARBOX_COMMON_RNG_H_
#define PARBOX_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace parbox {

/// Seedable, copyable, deterministic random number generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Index into a discrete distribution given non-negative weights.
  /// Precondition: at least one weight is positive.
  size_t Weighted(const std::vector<double>& weights);

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derive an independent generator (for parallel sub-streams).
  Rng Fork();

 private:
  uint64_t state_;
};

}  // namespace parbox

#endif  // PARBOX_COMMON_RNG_H_
