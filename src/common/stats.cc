#include "common/stats.h"

#include <sstream>

namespace parbox {

std::string StatsRegistry::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << " = " << value << "\n";
  }
  return out.str();
}

}  // namespace parbox
