#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace parbox {

double Distribution::sum() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

double Distribution::min() const {
  return values_.empty()
             ? 0.0
             : *std::min_element(values_.begin(), values_.end());
}

double Distribution::max() const {
  return values_.empty()
             ? 0.0
             : *std::max_element(values_.begin(), values_.end());
}

void Distribution::EnsureSorted() const {
  if (sorted_) return;
  std::sort(values_.begin(), values_.end());
  sorted_ = true;
}

double Distribution::Percentile(double pct) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  pct = std::clamp(pct, 0.0, 100.0);
  // Nearest rank: the smallest value with at least pct% of the sample
  // at or below it.
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(values_.size())));
  if (rank == 0) rank = 1;
  return values_[rank - 1];
}

std::string Distribution::Summary(const std::string& unit,
                                  double scale) const {
  std::ostringstream out;
  out << "n=" << count();
  auto put = [&](const char* name, double v) {
    out << " " << name << "=" << v * scale << unit;
  };
  put("mean", mean());
  put("p50", Percentile(50));
  put("p95", Percentile(95));
  put("p99", Percentile(99));
  put("max", max());
  return out.str();
}

std::string StatsRegistry::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << " = " << value << "\n";
  }
  return out.str();
}

}  // namespace parbox
