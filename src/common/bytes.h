// Small formatting helpers shared by benchmarks and reports.

#ifndef PARBOX_COMMON_BYTES_H_
#define PARBOX_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace parbox {

/// "512 B", "25.0 MB", "1.5 GB"...
std::string HumanBytes(uint64_t bytes);

/// "1.234 s", "12.3 ms", "450 us"...
std::string HumanSeconds(double seconds);

}  // namespace parbox

#endif  // PARBOX_COMMON_BYTES_H_
