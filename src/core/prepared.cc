#include "core/prepared.h"

#include <sstream>

namespace parbox::core {

std::string PreparedQueryToString(const PreparedQuery& q) {
  if (!q.valid()) return "PreparedQuery{empty}";
  std::ostringstream out;
  out << "PreparedQuery{fp=" << q.fingerprint().ToString()
      << ", |QList|=" << q.query().size() << ", wire=" << q.query_bytes()
      << " B";
  if (!q.text().empty()) out << ", text=\"" << q.text() << "\"";
  out << "}";
  return out.str();
}

}  // namespace parbox::core
