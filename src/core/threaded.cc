#include "core/threaded.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "boolexpr/expr.h"
#include "boolexpr/serialize.h"
#include "boolexpr/solver.h"
#include "core/partial_eval.h"
#include "xpath/eval.h"

namespace parbox::core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// What one site ships back: per fragment, the serialized triplet.
struct SiteResult {
  std::vector<std::pair<frag::FragmentId, std::string>> triplets;
  double seconds = 0.0;
  uint64_t ops = 0;
};

}  // namespace

Result<ThreadedReport> RunParBoXThreads(const frag::FragmentSet& set,
                                        const frag::SourceTree& st,
                                        const xpath::NormQuery& q,
                                        const ThreadedOptions& options) {
  if (!q.IsWellFormed()) {
    return Status::InvalidArgument("query QList is not well-formed");
  }
  const auto start = std::chrono::steady_clock::now();

  // Stage 1: the participating sites.
  std::vector<frag::SiteId> sites;
  for (frag::SiteId s = 0; s < st.num_sites(); ++s) {
    if (!st.fragments_at(s).empty()) sites.push_back(s);
  }

  // Stage 2: parallel partial evaluation, one thread per site, each
  // with a private factory. A counting semaphore (poor man's, via
  // atomic ticket) caps concurrency when requested.
  std::vector<SiteResult> results(sites.size());
  const int cap = options.max_threads > 0
                      ? options.max_threads
                      : static_cast<int>(sites.size());
  std::atomic<size_t> next_site{0};
  auto worker = [&]() {
    for (;;) {
      const size_t slot = next_site.fetch_add(1);
      if (slot >= sites.size()) return;
      const frag::SiteId s = sites[slot];
      const auto site_start = std::chrono::steady_clock::now();
      bexpr::ExprFactory factory;  // site-private
      SiteResult& out = results[slot];
      for (frag::FragmentId f : st.fragments_at(s)) {
        xpath::EvalCounters counters;
        bexpr::FragmentEquations eq =
            PartialEvalFragment(&factory, q, set, f, &counters);
        out.ops += counters.ops;
        std::vector<bexpr::ExprId> roots;
        roots.insert(roots.end(), eq.v.begin(), eq.v.end());
        roots.insert(roots.end(), eq.cv.begin(), eq.cv.end());
        roots.insert(roots.end(), eq.dv.begin(), eq.dv.end());
        out.triplets.emplace_back(f, bexpr::SerializeExprs(factory, roots));
      }
      out.seconds = SecondsSince(site_start);
    }
  };
  std::vector<std::thread> pool;
  const int threads =
      std::min<int>(cap, static_cast<int>(sites.size()));
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Stage 3: deserialize into the coordinator's factory and solve.
  bexpr::ExprFactory coordinator;
  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  ThreadedReport report;
  const size_t n = q.size();
  for (SiteResult& site : results) {
    report.sum_site_seconds += site.seconds;
    report.total_ops += site.ops;
    for (auto& [f, wire] : site.triplets) {
      report.wire_bytes += wire.size();
      PARBOX_ASSIGN_OR_RETURN(std::vector<bexpr::ExprId> roots,
                              bexpr::DeserializeExprs(&coordinator, wire));
      if (roots.size() != 3 * n) {
        return Status::Internal("triplet with unexpected arity");
      }
      bexpr::FragmentEquations& eq = equations[f];
      eq.fragment = f;
      eq.v.assign(roots.begin(), roots.begin() + n);
      eq.cv.assign(roots.begin() + n, roots.begin() + 2 * n);
      eq.dv.assign(roots.begin() + 2 * n, roots.end());
    }
  }
  PARBOX_ASSIGN_OR_RETURN(
      bool answer,
      bexpr::SolveForAnswer(&coordinator, equations, set.ChildrenTable(),
                            set.root_fragment(), q.root()));
  report.answer = answer;
  report.sites_used = static_cast<int>(sites.size());
  report.wall_seconds = SecondsSince(start);
  return report;
}

}  // namespace parbox::core
