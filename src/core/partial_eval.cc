#include "core/partial_eval.h"

#include "boolexpr/serialize.h"

namespace parbox::core {

bexpr::FragmentEquations PartialEvalFragment(bexpr::ExprFactory* factory,
                                             const xpath::NormQuery& q,
                                             const frag::FragmentSet& set,
                                             frag::FragmentId f,
                                             xpath::EvalCounters* counters) {
  const size_t n = q.size();
  xpath::ExprDomain dom{factory};
  auto vectors = xpath::BottomUpEval(
      dom, q, *set.fragment(f).root,
      [&](const xml::Node& vnode, std::vector<bexpr::ExprId>* v,
          std::vector<bexpr::ExprId>* dv) {
        // One fresh variable per vector entry of the sub-fragment
        // (decoupling the dependency between partial evaluations).
        v->resize(n);
        dv->resize(n);
        for (size_t i = 0; i < n; ++i) {
          (*v)[i] = factory->Var({vnode.fragment_ref, bexpr::VectorKind::kV,
                                  static_cast<int32_t>(i)});
          (*dv)[i] = factory->Var({vnode.fragment_ref,
                                   bexpr::VectorKind::kDV,
                                   static_cast<int32_t>(i)});
        }
      },
      counters);
  bexpr::FragmentEquations eq;
  eq.fragment = f;
  eq.v = std::move(vectors.v);
  eq.cv = std::move(vectors.cv);
  eq.dv = std::move(vectors.dv);
  return eq;
}

xpath::EvalBatch BuildFusedBatch(
    const std::vector<const xpath::NormQuery*>& queries) {
  return xpath::MakeEvalBatch(queries);
}

std::vector<bexpr::FragmentEquations> PartialEvalFragmentBatch(
    bexpr::ExprFactory* factory, const xpath::EvalBatch& batch,
    const frag::FragmentSet& set, frag::FragmentId f,
    xpath::EvalCounters* counters, xpath::BatchEvalStats* stats) {
  const size_t n = batch.max_width;
  xpath::ExprDomain dom{factory};
  auto vectors = xpath::BottomUpEvalBatch(
      dom, batch, *set.fragment(f).root,
      [&](const xml::Node& vnode, std::vector<bexpr::ExprId>* v,
          std::vector<bexpr::ExprId>* dv) {
        // Lane-local variable identity: entry i of EVERY lane reads
        // Var{fragment_ref, kind, i}, exactly as each lane's solo walk
        // would. The systems are solved per lane, so the shared names
        // never mix across queries — and the sharing is what turns
        // cross-query CSE into plain hash-consing.
        v->resize(n);
        dv->resize(n);
        for (size_t i = 0; i < n; ++i) {
          (*v)[i] = factory->Var({vnode.fragment_ref, bexpr::VectorKind::kV,
                                  static_cast<int32_t>(i)});
          (*dv)[i] = factory->Var({vnode.fragment_ref,
                                   bexpr::VectorKind::kDV,
                                   static_cast<int32_t>(i)});
        }
      },
      counters, stats);
  std::vector<bexpr::FragmentEquations> out(vectors.size());
  for (size_t k = 0; k < vectors.size(); ++k) {
    out[k].fragment = f;
    out[k].v = std::move(vectors[k].v);
    out[k].cv = std::move(vectors[k].cv);
    out[k].dv = std::move(vectors[k].dv);
  }
  return out;
}

std::vector<bexpr::FragmentEquations> PartialEvalFragmentBatch(
    bexpr::ExprFactory* factory,
    const std::vector<const xpath::NormQuery*>& queries,
    const frag::FragmentSet& set, frag::FragmentId f,
    xpath::EvalCounters* counters, xpath::BatchEvalStats* stats) {
  return PartialEvalFragmentBatch(factory, BuildFusedBatch(queries), set, f,
                                  counters, stats);
}

ResolvedVectors BoolEvalFragment(
    const xpath::NormQuery& q, const frag::FragmentSet& set,
    frag::FragmentId f,
    const std::function<const ResolvedVectors&(frag::FragmentId)>&
        child_vectors,
    xpath::EvalCounters* counters) {
  xpath::BoolDomain dom;
  auto vectors = xpath::BottomUpEval(
      dom, q, *set.fragment(f).root,
      [&](const xml::Node& vnode, std::vector<bool>* v,
          std::vector<bool>* dv) {
        const ResolvedVectors& resolved = child_vectors(vnode.fragment_ref);
        *v = resolved.v;
        *dv = resolved.dv;
      },
      counters);
  ResolvedVectors out;
  out.v = std::move(vectors.v);
  out.dv = std::move(vectors.dv);
  return out;
}

uint64_t TripletWireBytes(const bexpr::ExprFactory& factory,
                          const bexpr::FragmentEquations& eq) {
  std::vector<bexpr::ExprId> roots;
  roots.reserve(eq.v.size() * 3);
  roots.insert(roots.end(), eq.v.begin(), eq.v.end());
  roots.insert(roots.end(), eq.cv.begin(), eq.cv.end());
  roots.insert(roots.end(), eq.dv.begin(), eq.dv.end());
  return bexpr::SerializedExprsSize(factory, roots);
}

}  // namespace parbox::core
