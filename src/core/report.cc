#include "core/report.h"

#include <algorithm>
#include <sstream>

#include "common/bytes.h"

namespace parbox::core {

uint64_t RunReport::max_visits_per_site() const {
  uint64_t best = 0;
  for (uint64_t v : visits_per_site) best = std::max(best, v);
  return best;
}

uint64_t RunReport::total_visits() const {
  uint64_t total = 0;
  for (uint64_t v : visits_per_site) total += v;
  return total;
}

std::string RunReport::ToString() const {
  std::ostringstream out;
  out << algorithm << ": answer=" << (answer ? "true" : "false")
      << " runtime=" << HumanSeconds(makespan_seconds)
      << " total_compute=" << HumanSeconds(total_compute_seconds)
      << " traffic=" << HumanBytes(network_bytes) << " ("
      << network_messages << " msgs)"
      << " max_visits=" << max_visits_per_site();
  return out.str();
}

std::string RunReport::Detailed() const {
  std::ostringstream out;
  out << ToString() << "\n  ops=" << total_ops
      << " eq_entries=" << eq_system_entries << "\n  visits:";
  for (size_t s = 0; s < visits_per_site.size(); ++s) {
    out << " S" << s << "=" << visits_per_site[s];
  }
  return out.str();
}

}  // namespace parbox::core
