#include "core/evaluator.h"

#include <algorithm>

namespace parbox::core {

EvaluatorRegistry& EvaluatorRegistry::Instance() {
  static EvaluatorRegistry* registry = new EvaluatorRegistry();
  return *registry;
}

void EvaluatorRegistry::Register(int order, Factory factory) {
  Entry entry{std::string(factory()->name()), order, factory};
  auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry,
      [](const Entry& a, const Entry& b) {
        return std::tie(a.order, a.name) < std::tie(b.order, b.name);
      });
  entries_.insert(pos, std::move(entry));
}

std::vector<std::string> EvaluatorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

std::unique_ptr<Evaluator> EvaluatorRegistry::Create(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.factory();
  }
  return nullptr;
}

Result<std::unique_ptr<Evaluator>> EvaluatorRegistry::CreateOrError(
    std::string_view name) const {
  std::unique_ptr<Evaluator> evaluator = Create(name);
  if (evaluator == nullptr) {
    return Status::InvalidArgument("unknown evaluator \"" +
                                   std::string(name) +
                                   "\"; registered: " + NamesJoined());
  }
  return evaluator;
}

std::string EvaluatorRegistry::NamesJoined(char sep) const {
  std::string joined;
  for (const Entry& e : entries_) {
    if (!joined.empty()) joined.push_back(sep);
    joined += e.name;
  }
  return joined;
}

EvaluatorRegistry::Registrar::Registrar(int order, Factory factory) {
  EvaluatorRegistry::Instance().Register(order, factory);
}

}  // namespace parbox::core
