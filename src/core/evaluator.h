// Evaluator: the strategy interface behind Session::Execute.
//
// Each of the distributed evaluation algorithms of Secs. 3 and 4 is an
// Evaluator — a stateless strategy object that runs on an Engine the
// Session has already prepared (validated query, per-site partition
// plan, fresh virtual clock). Algorithms self-register in the
// EvaluatorRegistry under a stable name, so everything that used to
// hand-maintain a list of the six algorithms (RunAllAlgorithms, the
// bench engine switches, parboxq's flag parsing) is a registry lookup:
//
//   for (const std::string& name : EvaluatorRegistry::Instance().Names())
//     session.Execute(prepared, {.evaluator = name});

#ifndef PARBOX_CORE_EVALUATOR_H_
#define PARBOX_CORE_EVALUATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/report.h"

namespace parbox::core {

class Engine;

/// One evaluation strategy. Implementations are stateless: all per-run
/// state lives in the Engine, so one instance may serve many runs.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Registry key and CLI spelling, e.g. "parbox".
  virtual std::string_view name() const = 0;
  /// Display name used in RunReport::algorithm, e.g. "ParBoX".
  virtual std::string_view display_name() const = 0;
  /// One-line description for usage listings.
  virtual std::string_view description() const = 0;

  /// Evaluate the engine's prepared query. The engine's cluster is at
  /// virtual time 0 and the implementation drives it to completion.
  virtual Result<RunReport> Run(Engine& eng) const = 0;
};

/// Name -> factory registry of every linked-in evaluator.
class EvaluatorRegistry {
 public:
  using Factory = std::unique_ptr<Evaluator> (*)();

  static EvaluatorRegistry& Instance();

  /// Register under the evaluator's own name() (the factory is
  /// invoked once to read it, so the key cannot drift from the
  /// implementation); `order` fixes the canonical position in Names()
  /// (registration happens at static-init time in unspecified
  /// translation-unit order, so an explicit rank keeps listings and
  /// RunAllAlgorithms deterministic).
  void Register(int order, Factory factory);

  /// All registered names, in canonical order.
  std::vector<std::string> Names() const;

  /// Instantiate by name; nullptr if unknown.
  std::unique_ptr<Evaluator> Create(std::string_view name) const;

  /// Instantiate by name; unknown names get an InvalidArgument Status
  /// listing every registered name.
  Result<std::unique_ptr<Evaluator>> CreateOrError(
      std::string_view name) const;

  /// "name1|name2|..." in canonical order (usage strings).
  std::string NamesJoined(char sep = '|') const;

  /// Static-init helper: constructing one registers the evaluator.
  struct Registrar {
    Registrar(int order, Factory factory);
  };

 private:
  struct Entry {
    std::string name;
    int order;
    Factory factory;
  };
  std::vector<Entry> entries_;  // kept sorted by (order, name)
};

/// Self-registration: expands to a file-local static whose constructor
/// adds `Type` to the registry, keyed by Type's own name(), at rank
/// `order`.
#define PARBOX_REGISTER_EVALUATOR(order, Type)                        \
  static const ::parbox::core::EvaluatorRegistry::Registrar           \
      parbox_evaluator_registrar_##Type(                              \
          order, []() -> std::unique_ptr<::parbox::core::Evaluator> { \
            return std::make_unique<Type>();                          \
          })

}  // namespace parbox::core

#endif  // PARBOX_CORE_EVALUATOR_H_
