// RunReport: everything a distributed evaluation run reveals about
// itself — the answer plus the measured quantities the paper's
// complexity table (Fig. 4) talks about: per-site visits, total and
// parallel computation, and communication.

#ifndef PARBOX_CORE_REPORT_H_
#define PARBOX_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace parbox::core {

struct RunReport {
  std::string algorithm;
  bool answer = false;

  /// Virtual elapsed time — the "Runtime(Sec.)" axis of Figs. 7-13.
  double makespan_seconds = 0.0;
  /// Sum of busy time across sites ("total computation", T rows of
  /// Fig. 4). makespan << total indicates parallelism.
  double total_compute_seconds = 0.0;
  /// Abstract kernel operations (element x QList-entry) across sites.
  uint64_t total_ops = 0;

  /// Bytes and messages on the network (local hand-offs excluded).
  uint64_t network_bytes = 0;
  uint64_t network_messages = 0;

  /// visits_per_site[s] = how many times site s was contacted to do
  /// fragment work. ParBoX guarantees max 1.
  std::vector<uint64_t> visits_per_site;
  uint64_t max_visits_per_site() const;
  uint64_t total_visits() const;

  /// Size of the Boolean equation system solved at composition time
  /// (number of vector entries shipped as formulas).
  uint64_t eq_system_entries = 0;

  /// Fine-grained counters: traffic broken down by message kind
  /// ("net.query.bytes", "net.triplet.bytes", "net.data.bytes", ...),
  /// simulator events, interned formula nodes.
  StatsRegistry stats;

  /// One-line summary; `Detailed` adds per-site visits.
  std::string ToString() const;
  std::string Detailed() const;
};

}  // namespace parbox::core

#endif  // PARBOX_CORE_REPORT_H_
