// NaiveDistributed (Sec. 3): the centralized single-traversal algorithm
// customized to follow the source tree. The traversal is inherently
// sequential — a fragment cannot finish before every sub-fragment has
// been fully evaluated — so fragments are processed in post-order of
// the fragment tree, control hopping from site to site. A site is
// visited once per fragment it stores (twice for site S2 in the
// paper's running example), and no parallelism is available.

#include <functional>
#include <unordered_set>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/partial_eval.h"

namespace parbox::core {

namespace {
constexpr uint64_t kControlBytes = 64;

/// Children-first ordering of live fragments.
std::vector<frag::FragmentId> FragmentPostOrder(const frag::SourceTree& st) {
  std::vector<frag::FragmentId> order;
  std::vector<std::pair<frag::FragmentId, bool>> stack{
      {st.root_fragment(), false}};
  while (!stack.empty()) {
    auto [f, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      order.push_back(f);
      continue;
    }
    stack.emplace_back(f, true);
    for (frag::FragmentId c : st.children_of(f)) stack.emplace_back(c, false);
  }
  return order;
}

class NaiveDistributedEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "distributed"; }
  std::string_view display_name() const override {
    return "NaiveDistributed";
  }
  std::string_view description() const override {
    return "sequential bottom-up traversal, one visit per fragment";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(1, NaiveDistributedEvaluator);

Result<RunReport> NaiveDistributedEvaluator::Run(Engine& eng) const {
  const frag::FragmentSet& set = eng.set();
  const frag::SourceTree& st = eng.st();
  const xpath::NormQuery& q = eng.q();
  exec::ExecBackend& backend = eng.backend();
  const sim::SiteId coord = eng.coordinator();
  const std::vector<frag::FragmentId> order = FragmentPostOrder(st);
  const size_t n = q.size();

  // The traversal is one strictly sequential chain of control hops, so
  // this state — though touched from successive site contexts — is
  // race-free on any backend: every access is ordered by the
  // happens-before edges of the hops themselves.
  std::vector<ResolvedVectors> resolved(set.table_size());
  std::unordered_set<sim::SiteId> contacted;
  bool answer = false;

  // Bool vectors (V and DV) carried with each control hop.
  const uint64_t result_bytes = 8 + (2 * n + 7) / 8;

  // Sequential chain: evaluate order[i], then hop to order[i+1].
  std::function<void(size_t)> process = [&](size_t i) {
    if (i == order.size()) {
      // Control has returned to the coordinator with the root resolved.
      answer = resolved[st.root_fragment()].v[q.root()];
      return;
    }
    frag::FragmentId f = order[i];
    sim::SiteId s = st.site_of(f);
    sim::SiteId prev = i == 0 ? coord : st.site_of(order[i - 1]);
    // The hop carries the query on a site's first contact (the bound
    // O(|q|·card(F)) in Fig. 4 comes from these payloads).
    uint64_t hop_bytes = kControlBytes + result_bytes;
    if (contacted.insert(s).second) hop_bytes += eng.query_bytes();
    backend.Send(prev, s, exec::Parcel::OfSize(hop_bytes), "control",
                 [&, f, s, i](exec::Parcel) {
      backend.RecordVisit(s);  // one visit per fragment stored here
      xpath::EvalCounters counters;
      ResolvedVectors vectors = BoolEvalFragment(
          q, set, f,
          [&](frag::FragmentId child) -> const ResolvedVectors& {
            return resolved[child];
          },
          &counters);
      eng.AddOps(counters.ops);
      resolved[f] = std::move(vectors);
      backend.Compute(s, counters.ops, [&, i]() { process(i + 1); });
    });
  };
  process(0);

  backend.Drain();
  return eng.Finish(std::string(display_name()), answer, 0);
}

}  // namespace

}  // namespace parbox::core
