// ParBoX on real threads.
//
// The simulated cluster (sim/cluster.h) gives deterministic figures;
// this runner demonstrates the same algorithm with genuine
// parallelism: one OS thread per participating site, a private
// ExprFactory per site (no shared mutable state during evaluation),
// and triplets crossing "the network" through the real wire codec —
// the coordinator deserializes them into its own factory before
// solving, exactly as distinct processes would.
//
// Use it when embedding parbox as a centralized store's query engine
// (the PDOM scenario of Sec. 1): fragments of a large document are
// evaluated by a thread pool instead of remote machines.

#ifndef PARBOX_CORE_THREADED_H_
#define PARBOX_CORE_THREADED_H_

#include <cstdint>

#include "common/status.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "xpath/qlist.h"

namespace parbox::core {

struct ThreadedOptions {
  /// Cap on concurrently running site threads (0 = one per site).
  int max_threads = 0;
};

struct ThreadedReport {
  bool answer = false;
  /// Real elapsed wall time of the parallel phase + composition.
  double wall_seconds = 0.0;
  /// Sum of per-site evaluation wall times (the "total computation").
  double sum_site_seconds = 0.0;
  int sites_used = 0;
  uint64_t total_ops = 0;
  /// Bytes of serialized triplets that crossed between factories.
  uint64_t wire_bytes = 0;
};

/// Evaluate `q` at the root of the fragmented tree using one thread
/// per site. Semantically identical to RunParBoX.
Result<ThreadedReport> RunParBoXThreads(const frag::FragmentSet& set,
                                        const frag::SourceTree& st,
                                        const xpath::NormQuery& q,
                                        const ThreadedOptions& options = {});

}  // namespace parbox::core

#endif  // PARBOX_CORE_THREADED_H_
