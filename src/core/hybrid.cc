// Hybrid ParBoX (Sec. 4): ParBoX for ordinary decompositions, but when
// the fragmentation is pathological — so many fragments that shipping
// O(|q|) bytes per fragment exceeds shipping the tree itself — fall
// back to NaiveCentralized. The tipping point compares card(F) against
// |T|/|q|.

#include "core/engine.h"

namespace parbox::core {

Result<RunReport> RunHybridParBoX(const frag::FragmentSet& set,
                                  const frag::SourceTree& st,
                                  const xpath::NormQuery& q,
                                  const EngineOptions& options) {
  // The decision uses only catalogue-level statistics (fragment count
  // and total size), which a deployment tracks anyway; it costs no
  // network traffic.
  const double card_f = static_cast<double>(set.live_count());
  const double tipping =
      static_cast<double>(set.TotalElements()) / static_cast<double>(q.size());
  const bool use_parbox = card_f < tipping;

  Result<RunReport> report = use_parbox
                                 ? RunParBoX(set, st, q, options)
                                 : RunNaiveCentralized(set, st, q, options);
  if (!report.ok()) return report.status();
  report->algorithm = std::string("HybridParBoX[") +
                      (use_parbox ? "ParBoX" : "NaiveCentralized") + "]";
  return report;
}

}  // namespace parbox::core
