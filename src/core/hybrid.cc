// Hybrid ParBoX (Sec. 4): ParBoX for ordinary decompositions, but when
// the fragmentation is pathological — so many fragments that shipping
// O(|q|) bytes per fragment exceeds shipping the tree itself — fall
// back to NaiveCentralized. The tipping point compares card(F) against
// |T|/|q|.

#include <memory>

#include "core/engine.h"
#include "core/evaluator.h"

namespace parbox::core {

namespace {

class HybridParBoXEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "hybrid"; }
  std::string_view display_name() const override { return "HybridParBoX"; }
  std::string_view description() const override {
    return "ParBoX, falling back to central for pathological "
           "fragmentations";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(3, HybridParBoXEvaluator);

Result<RunReport> HybridParBoXEvaluator::Run(Engine& eng) const {
  // The decision uses only catalogue-level statistics (fragment count
  // and total size), which a deployment tracks anyway; it costs no
  // network traffic.
  const double card_f = static_cast<double>(eng.set().live_count());
  const double tipping = static_cast<double>(eng.set().TotalElements()) /
                         static_cast<double>(eng.q().size());
  const bool use_parbox = card_f < tipping;

  std::unique_ptr<Evaluator> delegate =
      EvaluatorRegistry::Instance().Create(use_parbox ? "parbox"
                                                      : "central");
  Result<RunReport> report = delegate->Run(eng);
  if (!report.ok()) return report.status();
  report->algorithm = std::string(display_name()) + "[" +
                      (use_parbox ? "ParBoX" : "NaiveCentralized") + "]";
  return report;
}

}  // namespace

}  // namespace parbox::core
