// The legacy Run* surface, shrunk to thin wrappers over the Session /
// PreparedQuery / EvaluatorRegistry API: create a throwaway session,
// prepare, execute. Kept for one-shot callers and compatibility; hot
// paths should hold a Session (see core/session.h).

#include "core/algorithms.h"

#include <memory>
#include <string>

#include "core/evaluator.h"
#include "core/session.h"

namespace parbox::core {

namespace {

Result<RunReport> RunOnce(std::string_view evaluator,
                          const frag::FragmentSet& set,
                          const frag::SourceTree& st,
                          const xpath::NormQuery& q,
                          const EngineOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(
      Session session,
      Session::Create(&set, &st, SessionOptions{options.network}));
  PARBOX_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(&q));
  return session.Execute(prepared, {.evaluator = std::string(evaluator)});
}

}  // namespace

Result<RunReport> RunNaiveCentralized(const frag::FragmentSet& set,
                                      const frag::SourceTree& st,
                                      const xpath::NormQuery& q,
                                      const EngineOptions& options) {
  return RunOnce("central", set, st, q, options);
}

Result<RunReport> RunNaiveDistributed(const frag::FragmentSet& set,
                                      const frag::SourceTree& st,
                                      const xpath::NormQuery& q,
                                      const EngineOptions& options) {
  return RunOnce("distributed", set, st, q, options);
}

Result<RunReport> RunParBoX(const frag::FragmentSet& set,
                            const frag::SourceTree& st,
                            const xpath::NormQuery& q,
                            const EngineOptions& options) {
  return RunOnce("parbox", set, st, q, options);
}

Result<RunReport> RunHybridParBoX(const frag::FragmentSet& set,
                                  const frag::SourceTree& st,
                                  const xpath::NormQuery& q,
                                  const EngineOptions& options) {
  return RunOnce("hybrid", set, st, q, options);
}

Result<RunReport> RunFullDistParBoX(const frag::FragmentSet& set,
                                    const frag::SourceTree& st,
                                    const xpath::NormQuery& q,
                                    const EngineOptions& options) {
  return RunOnce("fulldist", set, st, q, options);
}

Result<RunReport> RunLazyParBoX(const frag::FragmentSet& set,
                                const frag::SourceTree& st,
                                const xpath::NormQuery& q,
                                const EngineOptions& options) {
  return RunOnce("lazy", set, st, q, options);
}

Result<std::vector<RunReport>> RunAllAlgorithms(
    const frag::FragmentSet& set, const frag::SourceTree& st,
    const xpath::NormQuery& q, const EngineOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(
      Session session,
      Session::Create(&set, &st, SessionOptions{options.network}));
  PARBOX_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(&q));
  std::vector<RunReport> reports;
  for (const std::string& name : EvaluatorRegistry::Instance().Names()) {
    PARBOX_ASSIGN_OR_RETURN(RunReport report,
                            session.Execute(prepared, {.evaluator = name}));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace parbox::core
