// Shared plumbing for the evaluator implementations (internal header).

#ifndef PARBOX_CORE_ENGINE_H_
#define PARBOX_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "boolexpr/expr.h"
#include "core/report.h"
#include "core/session.h"
#include "exec/backend.h"

namespace parbox::core {

/// Per-run state every evaluator needs, assembled by Session::Execute:
/// views of the session's long-lived pieces (deployment, execution
/// backend, factory, partition plan) plus bookkeeping for the report.
/// The query is already validated and the backend is rewound by the
/// time an Evaluator sees the engine.
///
/// Evaluators drive the run through backend() under the execution-
/// context contract of exec/backend.h: site-context formula work
/// interns into backend().site_factory(s), factory-relative payloads
/// cross as Coded parcels (exec/codec.h), and factory() — the
/// session's — is touched only in coordinator context.
class Engine {
 public:
  Engine(Session* session, const xpath::NormQuery& q, uint64_t query_bytes,
         std::shared_ptr<const SitePlan> plan);

  const frag::FragmentSet& set() const { return session_->set(); }
  const frag::SourceTree& st() const { return session_->st(); }
  const xpath::NormQuery& q() const { return *q_; }
  exec::ExecBackend& backend() { return session_->backend(); }
  /// The coordinator's (session's) factory: composition and solving.
  bexpr::ExprFactory& factory() { return session_->factory(); }
  /// Pre-partitioned per-site work and the solver's children table,
  /// prepared once per deployment instead of per run.
  const SitePlan& plan() const { return *plan_; }

  /// The coordinating site = the site storing the root fragment.
  sim::SiteId coordinator() const { return coordinator_; }
  /// Wire size of the query (the |q| factor in traffic bounds).
  uint64_t query_bytes() const { return query_bytes_; }

  /// Safe from any execution context (site work accumulates ops on
  /// worker threads under ThreadPoolBackend).
  void AddOps(uint64_t ops) {
    total_ops_.fetch_add(ops, std::memory_order_relaxed);
  }

  /// Assemble the report from the backend's measurements.
  RunReport Finish(std::string algorithm, bool answer,
                   uint64_t eq_system_entries);

 private:
  Session* session_;
  const xpath::NormQuery* q_;
  std::shared_ptr<const SitePlan> plan_;
  sim::SiteId coordinator_;
  uint64_t query_bytes_;
  std::atomic<uint64_t> total_ops_{0};
};

}  // namespace parbox::core

#endif  // PARBOX_CORE_ENGINE_H_
