// Shared plumbing for the algorithm implementations (internal header).

#ifndef PARBOX_CORE_ENGINE_H_
#define PARBOX_CORE_ENGINE_H_

#include <string>

#include "boolexpr/expr.h"
#include "core/algorithms.h"

namespace parbox::core {

/// Per-run state every algorithm needs: the simulated cluster, a
/// formula factory, and bookkeeping for the report.
class Engine {
 public:
  /// Validates inputs (well-formed query, query width within the
  /// variable encoding, consistent site assignment).
  static Result<Engine> Create(const frag::FragmentSet& set,
                               const frag::SourceTree& st,
                               const xpath::NormQuery& q,
                               const EngineOptions& options);

  Engine(Engine&&) = default;

  const frag::FragmentSet& set() const { return *set_; }
  const frag::SourceTree& st() const { return *st_; }
  const xpath::NormQuery& q() const { return *q_; }
  sim::Cluster& cluster() { return cluster_; }
  bexpr::ExprFactory& factory() { return factory_; }

  /// The coordinating site = the site storing the root fragment.
  sim::SiteId coordinator() const { return coordinator_; }
  /// Wire size of the query (the |q| factor in traffic bounds).
  uint64_t query_bytes() const { return query_bytes_; }

  void AddOps(uint64_t ops) { total_ops_ += ops; }

  /// Run the event loop and assemble the report.
  RunReport Finish(std::string algorithm, bool answer,
                   uint64_t eq_system_entries);

 private:
  Engine(const frag::FragmentSet& set, const frag::SourceTree& st,
         const xpath::NormQuery& q, const EngineOptions& options);

  const frag::FragmentSet* set_;
  const frag::SourceTree* st_;
  const xpath::NormQuery* q_;
  sim::Cluster cluster_;
  bexpr::ExprFactory factory_;
  sim::SiteId coordinator_;
  uint64_t query_bytes_;
  uint64_t total_ops_ = 0;
};

}  // namespace parbox::core

#endif  // PARBOX_CORE_ENGINE_H_
