// Legacy one-shot entry points: the distributed Boolean XPath
// evaluation algorithms of Secs. 3 and 4, all sharing one signature.
//
// These are thin compatibility wrappers: each call builds a throwaway
// core::Session, prepares the query, and executes the matching
// registered Evaluator (core/evaluator.h). Code evaluating the same
// query — or the same deployment — more than once should hold a
// Session and a PreparedQuery instead (core/session.h): prepared
// re-execution skips parse/validate/partition/cluster setup and
// reuses interned formulas across runs.
//
// Every algorithm evaluates the normalized query `q` at the root of the
// fragmented tree `set`, distributed per the source tree `st`, inside a
// freshly simulated cluster, and reports the answer together with the
// measured cost profile (RunReport).
//
//   RunNaiveCentralized  — ship all fragments to the coordinator, then
//                          evaluate centrally. O(|T|) traffic.
//   RunNaiveDistributed  — sequential distributed bottom-up traversal;
//                          a site is visited once per fragment it holds.
//   RunParBoX            — the paper's algorithm: parallel partial
//                          evaluation, formulas shipped, equation system
//                          solved at the coordinator. Each site visited
//                          exactly once; O(|q|·card(F)) traffic.
//   RunHybridParBoX      — ParBoX, but falls back to NaiveCentralized
//                          when card(F) >= |T|/|q| (pathological
//                          fragmentations).
//   RunFullDistParBoX    — composition distributed over the source
//                          tree: resolved (variable-free) triplets flow
//                          bottom-up; no coordinator bottleneck.
//   RunLazyParBoX        — evaluates fragments depth-by-depth, stopping
//                          as soon as the answer is determined; trades
//                          elapsed time for total computation.

#ifndef PARBOX_CORE_ALGORITHMS_H_
#define PARBOX_CORE_ALGORITHMS_H_

#include "common/status.h"
#include "core/report.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "sim/cluster.h"
#include "xpath/qlist.h"

namespace parbox::core {

struct EngineOptions {
  sim::NetworkParams network;
};

Result<RunReport> RunNaiveCentralized(const frag::FragmentSet& set,
                                      const frag::SourceTree& st,
                                      const xpath::NormQuery& q,
                                      const EngineOptions& options = {});

Result<RunReport> RunNaiveDistributed(const frag::FragmentSet& set,
                                      const frag::SourceTree& st,
                                      const xpath::NormQuery& q,
                                      const EngineOptions& options = {});

Result<RunReport> RunParBoX(const frag::FragmentSet& set,
                            const frag::SourceTree& st,
                            const xpath::NormQuery& q,
                            const EngineOptions& options = {});

Result<RunReport> RunHybridParBoX(const frag::FragmentSet& set,
                                  const frag::SourceTree& st,
                                  const xpath::NormQuery& q,
                                  const EngineOptions& options = {});

Result<RunReport> RunFullDistParBoX(const frag::FragmentSet& set,
                                    const frag::SourceTree& st,
                                    const xpath::NormQuery& q,
                                    const EngineOptions& options = {});

Result<RunReport> RunLazyParBoX(const frag::FragmentSet& set,
                                const frag::SourceTree& st,
                                const xpath::NormQuery& q,
                                const EngineOptions& options = {});

/// Every registered evaluator, in EvaluatorRegistry::Names() order
/// (testing/demo convenience). One Session, one Prepare, N Executes.
Result<std::vector<RunReport>> RunAllAlgorithms(
    const frag::FragmentSet& set, const frag::SourceTree& st,
    const xpath::NormQuery& q, const EngineOptions& options = {});

}  // namespace parbox::core

#endif  // PARBOX_CORE_ALGORITHMS_H_
