// Session: the compile-once / execute-many entry point to the
// distributed evaluation engines.
//
// Where the legacy Run* free functions of core/algorithms.h rebuild a
// simulated cluster, re-validate inputs, and leave callers to re-parse
// the query on every call, a Session owns the long-lived pieces for
// its lifetime:
//
//   * the deployment — FragmentSet + SourceTree (owned, or borrowed
//     from a caller that outlives the session),
//   * one exec::ExecBackend — the execution substrate (the simulated
//     cluster by default, a real thread pool with {.backend =
//     "threads"}), rewound (not reallocated) per execution, so every
//     simulated report is bit-identical to a fresh standalone run,
//   * one hash-consing bexpr::ExprFactory, so formulas interned by one
//     execution are reused by every later one,
//   * the per-site partition plan (which sites hold which fragments,
//     plus the solver's children table), computed lazily and shared by
//     executions and by QueryService batch rounds.
//
// The pattern (prepared statements of production query engines):
//
//   auto session = core::Session::Create(std::move(set), std::move(st));
//   auto q = session->Prepare("[//stock[code = \"GOOG\"]]");
//   for (...) auto report = session->Execute(*q);            // hot path
//   auto lazy = session->Execute(*q, {.evaluator = "lazy"}); // any engine
//
// Execute dispatches through the EvaluatorRegistry (core/evaluator.h);
// the hot path skips parse, normalize, validation, fingerprinting,
// cluster construction, and partition planning.
//
// Updates: a session over a *mutable* deployment (owning Create, or
// Create from a non-const FragmentSet*) accepts typed content deltas:
//
//   session->Apply(frag::Delta::InsertSubtree(f, parent, "stock"));
//   auto report = session->ExecuteIncremental(*q);  // revisits only f
//
// Apply marks exactly the touched fragment dirty; ExecuteIncremental
// re-runs partial evaluation on dirty fragments only (one "update"
// message to each dirty site, one triplet back), reuses the cached
// triplet formulas of every clean fragment — hash-consing makes an
// unchanged fragment's formulas bit-identical across runs — and
// re-solves the equation system at the coordinator. Answers are
// always identical to a from-scratch run; the whole delta pipeline is
// metered on the simulated cluster like any other evaluation. Route
// every mutation of the deployment through Apply: out-of-band edits
// (e.g. a MaterializedView sharing the set) leave the cached triplets
// stale. Fragmentation changes (split/merge) invalidate the cached
// state wholesale via InvalidatePlan, and the next ExecuteIncremental
// falls back to a full pass.

#ifndef PARBOX_CORE_SESSION_H_
#define PARBOX_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "boolexpr/expr.h"
#include "boolexpr/solver.h"
#include "common/status.h"
#include "core/prepared.h"
#include "core/report.h"
#include "exec/backend.h"
#include "exec/host.h"
#include "fragment/delta.h"
#include "fragment/fragment.h"
#include "fragment/placement.h"
#include "fragment/source_tree.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "xpath/fingerprint.h"
#include "xpath/qlist.h"

namespace parbox::core {

struct SessionOptions {
  sim::NetworkParams network{};
  /// Execution substrate, by ExecBackendRegistry spec: "sim" (the
  /// deterministic simulated cluster — the default, and the oracle
  /// every other backend is held to), "threads" (a real worker pool,
  /// one per hardware thread), "threads:8", ... Defaults to
  /// $PARBOX_BACKEND when set. Unknown specs fail Create (or the
  /// first Execute, for the non-validating constructors) with the
  /// registered backends listed.
  std::string backend = exec::DefaultBackendSpec();
  /// When set, the session joins this shared multi-document substrate
  /// (catalog serving) instead of standing up a dedicated backend: its
  /// sites become a fresh namespace on the host (`backend` is then
  /// ignored — the host already chose the substrate). The host must
  /// outlive the session.
  exec::BackendHost* host = nullptr;
  /// When non-null, the session wraps its backend in an
  /// obs::TracingBackend reporting here (must outlive the session);
  /// when null — the default unless $PARBOX_TRACE is set — tracing is
  /// structurally absent from the execution path.
  obs::Tracer* tracer = obs::DefaultTracer();
};

struct ExecOptions {
  /// EvaluatorRegistry name; Execute fails with the registered names
  /// listed if unknown.
  std::string evaluator = "parbox";
};

/// The per-site partition of the deployment: which sites participate
/// (hold at least one fragment) and with which fragments, plus the
/// fragment-children table the equation solver walks. Snapshotted by
/// shared_ptr so in-flight work survives a mid-run re-fragmentation.
struct SitePlan {
  std::vector<std::pair<sim::SiteId, std::vector<frag::FragmentId>>>
      site_fragments;
  std::vector<std::vector<int32_t>> children;
};

class Session {
 public:
  /// Validating factories. The owning overload takes the deployment;
  /// the borrowing ones require `*set` / `*st` to outlive the session.
  /// Owning and mutable-borrowing sessions accept Apply(delta); a
  /// session borrowing a const deployment is read-only.
  static Result<Session> Create(frag::FragmentSet set, frag::SourceTree st,
                                const SessionOptions& options = {});
  static Result<Session> Create(const frag::FragmentSet* set,
                                const frag::SourceTree* st,
                                const SessionOptions& options = {});
  static Result<Session> Create(frag::FragmentSet* set,
                                const frag::SourceTree* st,
                                const SessionOptions& options = {});

  /// Borrowing constructors without deployment validation — for
  /// embedders (QueryService) that already hold a checked deployment.
  /// Prefer the Create() factories. The mutable overload enables
  /// Apply(delta).
  Session(const frag::FragmentSet* set, const frag::SourceTree* st,
          const SessionOptions& options = {});
  Session(frag::FragmentSet* set, const frag::SourceTree* st,
          const SessionOptions& options = {});

  Session(Session&&) = default;
  Session& operator=(Session&&) = delete;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- Prepare: compile once ----

  /// Parse + normalize + validate + fingerprint `query_text`. Parse and
  /// validation failures carry the offending query text and byte offset.
  Result<PreparedQuery> Prepare(std::string_view query_text);
  /// Prepare an already-normalized query (takes ownership).
  Result<PreparedQuery> Prepare(xpath::NormQuery query);
  /// Prepare a caller-owned query; `*query` must outlive the handle.
  Result<PreparedQuery> Prepare(const xpath::NormQuery* query);

  // ---- Execute: many times ----

  /// Evaluate `query` with the named evaluator on a rewound cluster.
  /// The report is bit-identical to a fresh standalone run of the same
  /// algorithm (the one session-lifetime stat, formula.interned_nodes,
  /// reflects the shared factory). Rejects handles from other sessions.
  Result<RunReport> Execute(const PreparedQuery& query,
                            const ExecOptions& options = {});

  // ---- Updates: apply deltas, re-execute incrementally ----

  /// True iff this session may mutate its deployment (owning, or
  /// created from a non-const FragmentSet*).
  bool writable() const { return mutable_set_ != nullptr; }

  /// Validate and apply a typed content delta to the deployment, and
  /// mark the touched fragment dirty for every query's incremental
  /// state. Fails with FailedPrecondition on a read-only session; on
  /// any failure the document is untouched.
  Result<frag::AppliedDelta> Apply(const frag::Delta& delta);

  /// Delta-driven re-evaluation of `query`: re-run partial evaluation
  /// only on the fragments dirtied (by Apply) since this query's last
  /// incremental run, reuse the cached triplet formulas of every clean
  /// fragment, and re-solve the equation system at the coordinator.
  /// The first call per fingerprint (or the first after a
  /// fragmentation change) is a full ParBoX-shaped pass that seeds the
  /// cached triplets. The answer is always identical to a from-scratch
  /// run of any registered evaluator. The report's algorithm field
  /// names the path taken: IncrementalParBoX[full|delta|clean].
  Result<RunReport> ExecuteIncremental(const PreparedQuery& query);

  /// Fragments an ExecuteIncremental of `query` would re-evaluate now.
  std::vector<frag::FragmentId> DirtyFragments(
      const PreparedQuery& query) const;

  /// Drop every query's cached incremental state (next incremental
  /// runs are full passes). Also done by InvalidatePlan.
  void InvalidateIncrementalState();

  // ---- Long-lived state ----

  const frag::FragmentSet& set() const { return *set_; }
  const frag::SourceTree& st() const { return *st_; }
  /// The execution substrate (exec/backend.h): the simulated cluster
  /// by default, a real thread pool under {.backend = "threads"}.
  exec::ExecBackend& backend() { return *backend_; }
  const exec::ExecBackend& backend() const { return *backend_; }
  bexpr::ExprFactory& factory() { return *factory_; }
  const bexpr::ExprFactory& factory() const { return *factory_; }
  /// The tracer execute spans report to; nullptr when tracing is
  /// structurally absent (SessionOptions::tracer was null).
  obs::Tracer* tracer() const { return tracer_; }
  /// The site storing the root fragment.
  sim::SiteId coordinator() const {
    return st_->site_of(st_->root_fragment());
  }

  /// OK unless the non-validating constructors were given an invalid
  /// backend spec (the validating Create factories surface this
  /// directly; Execute and embedders check it on use).
  const Status& backend_status() const { return backend_status_; }

  /// Current partition plan (computed on first use, then reused).
  /// Catches up on the placement feed first (SyncPlacement).
  std::shared_ptr<const SitePlan> plan();
  /// The deployment was re-fragmented or re-placed: recompute the plan
  /// on next use. Holders of the old shared_ptr keep their snapshot.
  void InvalidatePlan();
  /// Follow a source tree rebuilt elsewhere (view maintenance). The
  /// new tree must describe the same FragmentSet. Invalidates the plan.
  void RebindSourceTree(const frag::SourceTree* st);

  // ---- Placement subscription (catalog documents) ----

  /// Subscribe to a catalog document's placement feed. From here on,
  /// plan() (and therefore every Execute*) first catches up on Move
  /// epochs: rebind the current snapshot, recompute the per-site plan,
  /// and append one dirty-log *migration record* per moved fragment —
  /// WITHOUT re-seeding retained incremental state (a Move changes no
  /// fragment content, so cached triplets stay valid; only the moved
  /// fragments re-ship their state, via the metered "update" message
  /// of the next ExecuteIncremental, and visit counts stay bounded by
  /// the moved-fragment count).
  void FollowPlacement(std::shared_ptr<const frag::PlacementFeed> feed);
  /// Catch up on the followed feed now (plan() does this implicitly).
  void SyncPlacement();
  /// Catch up on backend site recovery now (plan() does this
  /// implicitly). Backends whose sites hold real remote state (the
  /// `proc` process backend) bump a site's RecoveryEpoch when its
  /// daemon restarts and loses everything it was shipped; this
  /// re-ships the site's live fragments — content over the metered
  /// "migrate" path, plus one migration dirty record per fragment for
  /// retained incremental state, exactly the catalog Move path — and
  /// drains the backend so the next Execute starts quiescent.
  void SyncRecovery();

 private:
  /// Per-fingerprint state ExecuteIncremental maintains: the triplet
  /// equations of the last run (reused verbatim for clean fragments),
  /// how far into the session's dirty log that run got, and the epoch
  /// of the fragmentation it was computed under.
  struct IncrementalState {
    std::vector<bexpr::FragmentEquations> equations;
    size_t log_pos = 0;
    uint64_t refrag_epoch = 0;
    bool valid = false;
    bool answer = false;
  };

  /// One Apply record: which fragment went dirty and the delta's wire
  /// size (what shipping the update to the owning site costs).
  struct DirtyRecord {
    frag::FragmentId fragment = frag::kNoFragment;
    uint64_t wire_bytes = 0;
  };

  /// Query-level validation shared by every Prepare overload;
  /// `text` (if non-empty) is attached to failure messages.
  Status ValidateQuery(const xpath::NormQuery& q,
                       std::string_view text) const;
  Result<PreparedQuery> Finalize(PreparedQuery q, std::string_view text);
  /// Shared Execute/ExecuteIncremental handle checks.
  Status CheckHandle(const PreparedQuery& query) const;
  /// True iff `state` cannot be reused (never seeded, or computed
  /// under a different fragmentation).
  bool NeedsFullPass(const IncrementalState& state) const;
  /// Dirty records since `state` last ran, deduplicated, live only.
  std::vector<DirtyRecord> CollectDirty(const IncrementalState& state) const;

  /// Owned-deployment storage (null for borrowing sessions). Stable
  /// addresses across Session moves, so set_/st_ never dangle.
  std::unique_ptr<frag::FragmentSet> owned_set_;
  std::unique_ptr<const frag::SourceTree> owned_st_;
  const frag::FragmentSet* set_;
  const frag::SourceTree* st_;
  /// Non-null iff the session may mutate the deployment (Apply).
  frag::FragmentSet* mutable_set_ = nullptr;
  /// Heap-held so the address the backend composes triplets into stays
  /// stable across Session moves.
  std::unique_ptr<bexpr::ExprFactory> factory_;
  /// The substrate runs execute on; never null (an invalid options
  /// spec falls back to the sim and surfaces `backend_status_` on the
  /// validating factories and on first Execute).
  std::unique_ptr<exec::ExecBackend> backend_;
  Status backend_status_ = Status::OK();
  obs::Tracer* tracer_ = nullptr;
  std::shared_ptr<const SitePlan> plan_;
  /// Handed to every PreparedQuery; survives Session moves, so Execute
  /// can tell its own handles from another session's.
  std::shared_ptr<const int> ticket_;

  /// Placement subscription (FollowPlacement): the feed, the last
  /// epoch caught up to, and the snapshot keeping st_ alive across
  /// publishes.
  std::shared_ptr<const frag::PlacementFeed> placement_feed_;
  uint64_t placement_epoch_seen_ = 0;
  std::shared_ptr<const frag::SourceTree> snapshot_hold_;

  /// Last backend RecoveryEpoch observed per site (SyncRecovery).
  /// Sites first seen at epoch E start AT E: their content ships (or
  /// shipped) on the current daemon incarnation, so nothing re-ships.
  std::vector<uint64_t> recovery_seen_;

  /// Log of fragments dirtied by Apply; each query's incremental
  /// state remembers its own *absolute* position in it, so one log
  /// serves any number of queries exactly. Positions are absolute
  /// (monotonic since session start); `log_base_` is the absolute
  /// position of dirty_log_.front(), letting Apply compact the
  /// prefix every consumer has passed without renumbering anyone.
  std::vector<DirtyRecord> dirty_log_;
  size_t log_base_ = 0;
  /// Absolute log position an in-flight ExecuteIncremental has read
  /// up to but not yet committed; Apply's compaction never crosses
  /// it. SIZE_MAX (no pin) outside a run.
  size_t exec_log_floor_ = SIZE_MAX;
  /// Bumped by InvalidatePlan (fragmentation changes, source-tree
  /// rebinds): incremental states from older epochs re-seed fully.
  uint64_t refrag_epoch_ = 0;
  std::unordered_map<xpath::QueryFingerprint, IncrementalState,
                     xpath::QueryFingerprintHash>
      inc_states_;
};

}  // namespace parbox::core

#endif  // PARBOX_CORE_SESSION_H_
