// Session: the compile-once / execute-many entry point to the
// distributed evaluation engines.
//
// Where the legacy Run* free functions of core/algorithms.h rebuild a
// simulated cluster, re-validate inputs, and leave callers to re-parse
// the query on every call, a Session owns the long-lived pieces for
// its lifetime:
//
//   * the deployment — FragmentSet + SourceTree (owned, or borrowed
//     from a caller that outlives the session),
//   * one sim::Cluster, rewound (not reallocated) per execution, so
//     every report is bit-identical to a fresh standalone run,
//   * one hash-consing bexpr::ExprFactory, so formulas interned by one
//     execution are reused by every later one,
//   * the per-site partition plan (which sites hold which fragments,
//     plus the solver's children table), computed lazily and shared by
//     executions and by QueryService batch rounds.
//
// The pattern (prepared statements of production query engines):
//
//   auto session = core::Session::Create(std::move(set), std::move(st));
//   auto q = session->Prepare("[//stock[code = \"GOOG\"]]");
//   for (...) auto report = session->Execute(*q);            // hot path
//   auto lazy = session->Execute(*q, {.evaluator = "lazy"}); // any engine
//
// Execute dispatches through the EvaluatorRegistry (core/evaluator.h);
// the hot path skips parse, normalize, validation, fingerprinting,
// cluster construction, and partition planning.

#ifndef PARBOX_CORE_SESSION_H_
#define PARBOX_CORE_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "boolexpr/expr.h"
#include "common/status.h"
#include "core/prepared.h"
#include "core/report.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "sim/cluster.h"
#include "xpath/qlist.h"

namespace parbox::core {

struct SessionOptions {
  sim::NetworkParams network;
};

struct ExecOptions {
  /// EvaluatorRegistry name; Execute fails with the registered names
  /// listed if unknown.
  std::string evaluator = "parbox";
};

/// The per-site partition of the deployment: which sites participate
/// (hold at least one fragment) and with which fragments, plus the
/// fragment-children table the equation solver walks. Snapshotted by
/// shared_ptr so in-flight work survives a mid-run re-fragmentation.
struct SitePlan {
  std::vector<std::pair<sim::SiteId, std::vector<frag::FragmentId>>>
      site_fragments;
  std::vector<std::vector<int32_t>> children;
};

class Session {
 public:
  /// Validating factories. The owning overload takes the deployment;
  /// the borrowing one requires `*set` / `*st` to outlive the session.
  static Result<Session> Create(frag::FragmentSet set, frag::SourceTree st,
                                const SessionOptions& options = {});
  static Result<Session> Create(const frag::FragmentSet* set,
                                const frag::SourceTree* st,
                                const SessionOptions& options = {});

  /// Borrowing constructor without deployment validation — for embedders
  /// (QueryService) that already hold a checked deployment. Prefer the
  /// Create() factories.
  Session(const frag::FragmentSet* set, const frag::SourceTree* st,
          const SessionOptions& options = {});

  Session(Session&&) = default;
  Session& operator=(Session&&) = delete;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- Prepare: compile once ----

  /// Parse + normalize + validate + fingerprint `query_text`. Parse and
  /// validation failures carry the offending query text and byte offset.
  Result<PreparedQuery> Prepare(std::string_view query_text);
  /// Prepare an already-normalized query (takes ownership).
  Result<PreparedQuery> Prepare(xpath::NormQuery query);
  /// Prepare a caller-owned query; `*query` must outlive the handle.
  Result<PreparedQuery> Prepare(const xpath::NormQuery* query);

  // ---- Execute: many times ----

  /// Evaluate `query` with the named evaluator on a rewound cluster.
  /// The report is bit-identical to a fresh standalone run of the same
  /// algorithm (the one session-lifetime stat, formula.interned_nodes,
  /// reflects the shared factory). Rejects handles from other sessions.
  Result<RunReport> Execute(const PreparedQuery& query,
                            const ExecOptions& options = {});

  // ---- Long-lived state ----

  const frag::FragmentSet& set() const { return *set_; }
  const frag::SourceTree& st() const { return *st_; }
  sim::Cluster& cluster() { return cluster_; }
  const sim::Cluster& cluster() const { return cluster_; }
  bexpr::ExprFactory& factory() { return factory_; }
  const bexpr::ExprFactory& factory() const { return factory_; }
  /// The site storing the root fragment.
  sim::SiteId coordinator() const {
    return st_->site_of(st_->root_fragment());
  }

  /// Current partition plan (computed on first use, then reused).
  std::shared_ptr<const SitePlan> plan();
  /// The deployment was re-fragmented or re-placed: recompute the plan
  /// on next use. Holders of the old shared_ptr keep their snapshot.
  void InvalidatePlan();
  /// Follow a source tree rebuilt elsewhere (view maintenance). The
  /// new tree must describe the same FragmentSet. Invalidates the plan.
  void RebindSourceTree(const frag::SourceTree* st);

 private:
  /// Query-level validation shared by every Prepare overload;
  /// `text` (if non-empty) is attached to failure messages.
  Status ValidateQuery(const xpath::NormQuery& q,
                       std::string_view text) const;
  Result<PreparedQuery> Finalize(PreparedQuery q, std::string_view text);

  /// Owned-deployment storage (null for borrowing sessions). Stable
  /// addresses across Session moves, so set_/st_ never dangle.
  std::unique_ptr<const frag::FragmentSet> owned_set_;
  std::unique_ptr<const frag::SourceTree> owned_st_;
  const frag::FragmentSet* set_;
  const frag::SourceTree* st_;
  sim::Cluster cluster_;
  bexpr::ExprFactory factory_;
  std::shared_ptr<const SitePlan> plan_;
  /// Handed to every PreparedQuery; survives Session moves, so Execute
  /// can tell its own handles from another session's.
  std::shared_ptr<const int> ticket_;
};

}  // namespace parbox::core

#endif  // PARBOX_CORE_SESSION_H_
