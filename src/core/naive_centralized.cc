// NaiveCentralized (Sec. 3): collect every fragment at the coordinator
// and run the optimal centralized algorithm over the reassembled tree.
// Computation is optimal (O(|q|·|T|)) but O(|T|) bytes cross the
// network on *every* query — the cost Fig. 7 shows dominating.

#include "core/engine.h"
#include "core/evaluator.h"
#include "xpath/eval.h"

namespace parbox::core {

namespace {
/// Size of the coordinator's "send me your fragments" request.
constexpr uint64_t kRequestBytes = 64;

class NaiveCentralizedEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "central"; }
  std::string_view display_name() const override {
    return "NaiveCentralized";
  }
  std::string_view description() const override {
    return "ship all fragments to the coordinator, evaluate centrally";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(0, NaiveCentralizedEvaluator);

Result<RunReport> NaiveCentralizedEvaluator::Run(Engine& eng) const {
  const frag::FragmentSet& set = eng.set();
  const xpath::NormQuery& q = eng.q();
  exec::ExecBackend& backend = eng.backend();
  const sim::SiteId coord = eng.coordinator();

  size_t pending = eng.plan().site_fragments.size();

  bool answer = false;
  Status failure = Status::OK();

  // Runs in coordinator context, after the last "data" delivery.
  auto evaluate = [&]() {
    // All data is local now: reassemble and evaluate centrally.
    Result<xml::Document> whole = set.Reassemble();
    if (!whole.ok()) {
      failure = whole.status();
      return;
    }
    xpath::EvalCounters counters;
    Result<bool> result = xpath::EvalBoolean(*whole->root(), q, &counters);
    if (!result.ok()) {
      failure = result.status();
      return;
    }
    eng.AddOps(counters.ops);
    bool value = *result;
    backend.Compute(coord, counters.ops, [&, value]() { answer = value; });
  };

  for (const auto& [s, fragments] : eng.plan().site_fragments) {
    backend.RecordVisit(s);
    backend.Send(coord, s, exec::Parcel::OfSize(kRequestBytes), "request",
                 [&, s, &fragments = fragments](exec::Parcel) {
      // Site context: size the payload a real deployment would ship
      // (the coordinator reads the shared fragment store directly).
      uint64_t data_bytes = 0;
      for (frag::FragmentId f : fragments) {
        data_bytes += set.FragmentSerializedBytes(f);
      }
      backend.Send(s, coord, exec::Parcel::OfSize(data_bytes), "data",
                   [&](exec::Parcel) {
        if (--pending == 0) evaluate();
      });
    });
  }

  backend.Drain();
  PARBOX_RETURN_IF_ERROR(failure);
  return eng.Finish(std::string(display_name()), answer, 0);
}

}  // namespace

}  // namespace parbox::core
