// NaiveCentralized (Sec. 3): collect every fragment at the coordinator
// and run the optimal centralized algorithm over the reassembled tree.
// Computation is optimal (O(|q|·|T|)) but O(|T|) bytes cross the
// network on *every* query — the cost Fig. 7 shows dominating.

#include "core/engine.h"
#include "xpath/eval.h"

namespace parbox::core {

namespace {
/// Size of the coordinator's "send me your fragments" request.
constexpr uint64_t kRequestBytes = 64;
}  // namespace

Result<RunReport> RunNaiveCentralized(const frag::FragmentSet& set,
                                      const frag::SourceTree& st,
                                      const xpath::NormQuery& q,
                                      const EngineOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(Engine eng, Engine::Create(set, st, q, options));
  sim::Cluster& cluster = eng.cluster();
  const sim::SiteId coord = eng.coordinator();

  size_t pending = 0;
  for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
    if (!st.fragments_at(s).empty()) ++pending;
  }

  bool answer = false;
  Status failure = Status::OK();

  auto evaluate = [&]() {
    // All data is local now: reassemble and evaluate centrally.
    Result<xml::Document> whole = set.Reassemble();
    if (!whole.ok()) {
      failure = whole.status();
      return;
    }
    xpath::EvalCounters counters;
    Result<bool> result = xpath::EvalBoolean(*whole->root(), q, &counters);
    if (!result.ok()) {
      failure = result.status();
      return;
    }
    eng.AddOps(counters.ops);
    bool value = *result;
    cluster.Compute(coord, counters.ops, [&, value]() { answer = value; });
  };

  for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
    if (st.fragments_at(s).empty()) continue;
    cluster.RecordVisit(s);
    cluster.Send(coord, s, kRequestBytes, "request", [&, s]() {
      uint64_t data_bytes = 0;
      for (frag::FragmentId f : st.fragments_at(s)) {
        data_bytes += set.FragmentSerializedBytes(f);
      }
      cluster.Send(s, coord, data_bytes, "data", [&]() {
        if (--pending == 0) evaluate();
      });
    });
  }

  cluster.Run();
  PARBOX_RETURN_IF_ERROR(failure);
  return eng.Finish("NaiveCentralized", answer, 0);
}

}  // namespace parbox::core
