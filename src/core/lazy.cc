// LazyParBoX (Sec. 4): evaluate fragments in increasing depth of the
// source tree, stopping as soon as the collected partial answers
// determine the query — saving total computation when, e.g., the query
// is already satisfied near the root. Per step, each site evaluates
// only its fragments at the current depth, so parallelism is limited
// to one level at a time; the elapsed time may be far worse than
// ParBoX's (Figs. 9-11).
//
// Whether the answer is determined is a three-valued (Kleene) question:
// unevaluated fragments contribute "unknown" to the equation system.

#include <functional>
#include <memory>
#include <unordered_set>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/partial_eval.h"
#include "exec/codec.h"

namespace parbox::core {

namespace {
constexpr uint64_t kRequestBytes = 64;

class LazyParBoXEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "lazy"; }
  std::string_view display_name() const override { return "LazyParBoX"; }
  std::string_view description() const override {
    return "depth-by-depth evaluation, stops once the answer is "
           "determined";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(5, LazyParBoXEvaluator);

Result<RunReport> LazyParBoXEvaluator::Run(Engine& eng) const {
  const frag::FragmentSet& set = eng.set();
  const frag::SourceTree& st = eng.st();
  const xpath::NormQuery& q = eng.q();
  exec::ExecBackend& backend = eng.backend();
  const sim::SiteId coord = eng.coordinator();
  const size_t n = q.size();

  // Coordinator-context state: triplets land here (decoded into the
  // session factory), and step() recursion runs here.
  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  std::vector<const bexpr::FragmentEquations*> available(set.table_size(),
                                                         nullptr);
  std::unordered_set<sim::SiteId> contacted;
  size_t pending = 0;
  size_t evaluated = 0;
  bool answer = false;
  bool done = false;
  Status failure = Status::OK();

  std::function<void(int)> step = [&](int depth) {
    // The first traversal step covers the coordinator's fragments AND
    // depth 1 ("LazyParBoX initially evaluates a query only in the
    // coordinator and in the fragments of depth 1", Sec. 4).
    std::vector<frag::FragmentId> frontier = st.fragments_at_depth(depth);
    if (depth == 0 && st.max_depth() >= 1) {
      for (frag::FragmentId f : st.fragments_at_depth(1)) {
        frontier.push_back(f);
      }
    }
    pending = frontier.size();
    for (frag::FragmentId f : frontier) {
      const sim::SiteId s = st.site_of(f);
      backend.RecordVisit(s);
      // The query itself travels only on a site's first contact.
      uint64_t bytes = kRequestBytes;
      if (contacted.insert(s).second) bytes += eng.query_bytes();
      backend.Send(coord, s, exec::Parcel::OfSize(bytes), "query",
                   [&, f, s, depth](exec::Parcel) {
        xpath::EvalCounters counters;
        bexpr::ExprFactory& site_factory = backend.site_factory(s);
        auto eq = std::make_shared<bexpr::FragmentEquations>(
            PartialEvalFragment(&site_factory, q, set, f, &counters));
        eng.AddOps(counters.ops);
        exec::Parcel parcel = exec::MakeTripletParcel(site_factory, eq);
        backend.Compute(s, counters.ops,
                        [&, s, depth,
                         parcel = std::move(parcel)]() mutable {
          backend.Send(s, coord, std::move(parcel), "triplet",
                       [&, depth](exec::Parcel delivered) {
            Result<bexpr::FragmentEquations> got =
                exec::TakeTriplet(std::move(delivered), &eng.factory());
            if (!got.ok()) {
              failure = got.status();
              return;
            }
            equations[got->fragment] = std::move(*got);
            available[got->fragment] = &equations[got->fragment];
            ++evaluated;
            if (--pending != 0) return;
            // All of this depth collected: try to answer.
            const uint64_t solve_ops = n * evaluated;
            eng.AddOps(solve_ops);
            backend.Compute(coord, solve_ops, [&, depth]() {
              bexpr::Tri t = bexpr::SolvePartial(
                  &eng.factory(), available, eng.plan().children,
                  set.root_fragment(), q.root());
              if (t != bexpr::Tri::kUnknown) {
                answer = t == bexpr::Tri::kTrue;
                done = true;
              } else if ((depth == 0 ? 1 : depth) < st.max_depth()) {
                step(depth == 0 ? 2 : depth + 1);
              }
              // depth == max_depth with Unknown cannot happen: with all
              // fragments available the system fully resolves.
            });
          });
        });
      });
    }
  };
  step(0);

  backend.Drain();
  PARBOX_RETURN_IF_ERROR(failure);
  if (!done) {
    return Status::Internal("LazyParBoX terminated without an answer");
  }
  return eng.Finish(std::string(display_name()), answer,
                    3 * n * evaluated);
}

}  // namespace

}  // namespace parbox::core
