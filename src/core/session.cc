#include "core/session.h"

#include <cctype>
#include <cstdlib>

#include "core/engine.h"
#include "core/evaluator.h"
#include "xpath/fingerprint.h"
#include "xpath/normalize.h"

namespace parbox::core {

namespace {

/// Pull the byte offset out of a parser/lexer message ("... at offset
/// 12"). Returns std::string::npos when the message carries none.
size_t ExtractOffset(const std::string& message) {
  constexpr std::string_view kMarker = " at offset ";
  const size_t pos = message.rfind(kMarker);
  if (pos == std::string::npos) return std::string::npos;
  const size_t digits = pos + kMarker.size();
  if (digits >= message.size() ||
      !std::isdigit(static_cast<unsigned char>(message[digits]))) {
    return std::string::npos;
  }
  return static_cast<size_t>(std::strtoull(message.c_str() + digits,
                                           nullptr, 10));
}

/// Attach the offending query to a parse/normalize/validation failure,
/// pointing at the failing byte when the message names an offset.
/// Engine-level errors used to surface with no query context at all.
Status AttachQueryContext(const Status& status, std::string_view text) {
  if (status.ok() || text.empty()) return status;
  std::string message = status.message();
  message += " | query: \"";
  message += text;
  message += "\"";
  const size_t offset = ExtractOffset(status.message());
  if (offset != std::string::npos && offset <= text.size()) {
    constexpr size_t kWindow = 16;
    std::string_view rest = text.substr(offset);
    message += " | byte " + std::to_string(offset) + " is at: \"";
    message += rest.substr(0, kWindow);
    if (rest.size() > kWindow) message += "...";
    message += "\"";
  }
  return Status(status.code(), std::move(message));
}

Status ValidateDeployment(const frag::FragmentSet& set,
                          const frag::SourceTree& st) {
  if (st.root_fragment() != set.root_fragment()) {
    return Status::InvalidArgument(
        "source tree does not match the fragment set");
  }
  if (st.num_sites() < 1) {
    return Status::InvalidArgument("no sites in the source tree");
  }
  return Status::OK();
}

}  // namespace

Session::Session(const frag::FragmentSet* set, const frag::SourceTree* st,
                 const SessionOptions& options)
    : set_(set),
      st_(st),
      cluster_(st->num_sites(), options.network),
      ticket_(std::make_shared<int>(0)) {}

Result<Session> Session::Create(const frag::FragmentSet* set,
                                const frag::SourceTree* st,
                                const SessionOptions& options) {
  PARBOX_RETURN_IF_ERROR(ValidateDeployment(*set, *st));
  return Session(set, st, options);
}

Result<Session> Session::Create(frag::FragmentSet set, frag::SourceTree st,
                                const SessionOptions& options) {
  PARBOX_RETURN_IF_ERROR(ValidateDeployment(set, st));
  auto owned_set = std::make_unique<const frag::FragmentSet>(std::move(set));
  auto owned_st = std::make_unique<const frag::SourceTree>(std::move(st));
  Session session(owned_set.get(), owned_st.get(), options);
  session.owned_set_ = std::move(owned_set);
  session.owned_st_ = std::move(owned_st);
  return session;
}

Status Session::ValidateQuery(const xpath::NormQuery& q,
                              std::string_view text) const {
  if (!q.IsWellFormed()) {
    return AttachQueryContext(
        Status::InvalidArgument("query QList is not well-formed"), text);
  }
  if (q.size() > static_cast<size_t>(bexpr::VarId::kMaxQueryIndex) + 1) {
    return AttachQueryContext(
        Status::InvalidArgument(
            "query has more sub-queries than the variable encoding "
            "supports"),
        text);
  }
  return Status::OK();
}

Result<PreparedQuery> Session::Finalize(PreparedQuery q,
                                        std::string_view text) {
  PARBOX_RETURN_IF_ERROR(ValidateQuery(*q.query_, text));
  q.fp_ = xpath::FingerprintQuery(*q.query_);
  q.query_bytes_ = q.query_->SerializedSizeBytes();
  q.text_ = std::string(text);
  q.ticket_ = ticket_;
  return q;
}

Result<PreparedQuery> Session::Prepare(std::string_view query_text) {
  Result<xpath::NormQuery> compiled = xpath::CompileQuery(query_text);
  if (!compiled.ok()) {
    return AttachQueryContext(compiled.status(), query_text);
  }
  PreparedQuery q;
  q.owned_ =
      std::make_shared<const xpath::NormQuery>(std::move(*compiled));
  q.query_ = q.owned_.get();
  return Finalize(std::move(q), query_text);
}

Result<PreparedQuery> Session::Prepare(xpath::NormQuery query) {
  PreparedQuery q;
  q.owned_ = std::make_shared<const xpath::NormQuery>(std::move(query));
  q.query_ = q.owned_.get();
  return Finalize(std::move(q), {});
}

Result<PreparedQuery> Session::Prepare(const xpath::NormQuery* query) {
  PreparedQuery q;
  q.query_ = query;
  return Finalize(std::move(q), {});
}

Result<RunReport> Session::Execute(const PreparedQuery& query,
                                   const ExecOptions& options) {
  if (!query.valid()) {
    return Status::InvalidArgument("PreparedQuery is empty");
  }
  if (query.ticket_ != ticket_) {
    return Status::InvalidArgument(
        "PreparedQuery was prepared by a different Session");
  }
  PARBOX_ASSIGN_OR_RETURN(
      std::unique_ptr<Evaluator> evaluator,
      EvaluatorRegistry::Instance().CreateOrError(options.evaluator));
  std::shared_ptr<const SitePlan> p = plan();
  cluster_.Reset();
  Engine eng(this, *query.query_, query.query_bytes_, std::move(p));
  return evaluator->Run(eng);
}

std::shared_ptr<const SitePlan> Session::plan() {
  if (plan_ == nullptr) {
    auto p = std::make_shared<SitePlan>();
    p->children = set_->ChildrenTable();
    for (sim::SiteId s = 0; s < st_->num_sites(); ++s) {
      if (!st_->fragments_at(s).empty()) {
        p->site_fragments.emplace_back(s, st_->fragments_at(s));
      }
    }
    plan_ = std::move(p);
  }
  return plan_;
}

void Session::InvalidatePlan() { plan_ = nullptr; }

void Session::RebindSourceTree(const frag::SourceTree* st) {
  st_ = st;
  InvalidatePlan();
}

}  // namespace parbox::core
