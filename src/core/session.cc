#include "core/session.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <unordered_map>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/partial_eval.h"
#include "exec/codec.h"
#include "exec/sim_backend.h"
#include "obs/trace_backend.h"
#include "xpath/fingerprint.h"
#include "xpath/normalize.h"

namespace parbox::core {

namespace {

/// Pull the byte offset out of a parser/lexer message ("... at offset
/// 12"). Returns std::string::npos when the message carries none.
size_t ExtractOffset(const std::string& message) {
  constexpr std::string_view kMarker = " at offset ";
  const size_t pos = message.rfind(kMarker);
  if (pos == std::string::npos) return std::string::npos;
  const size_t digits = pos + kMarker.size();
  if (digits >= message.size() ||
      !std::isdigit(static_cast<unsigned char>(message[digits]))) {
    return std::string::npos;
  }
  return static_cast<size_t>(std::strtoull(message.c_str() + digits,
                                           nullptr, 10));
}

/// Attach the offending query to a parse/normalize/validation failure,
/// pointing at the failing byte when the message names an offset.
/// Engine-level errors used to surface with no query context at all.
Status AttachQueryContext(const Status& status, std::string_view text) {
  if (status.ok() || text.empty()) return status;
  std::string message = status.message();
  message += " | query: \"";
  message += text;
  message += "\"";
  const size_t offset = ExtractOffset(status.message());
  if (offset != std::string::npos && offset <= text.size()) {
    constexpr size_t kWindow = 16;
    std::string_view rest = text.substr(offset);
    message += " | byte " + std::to_string(offset) + " is at: \"";
    message += rest.substr(0, kWindow);
    if (rest.size() > kWindow) message += "...";
    message += "\"";
  }
  return Status(status.code(), std::move(message));
}

Status ValidateDeployment(const frag::FragmentSet& set,
                          const frag::SourceTree& st) {
  if (st.root_fragment() != set.root_fragment()) {
    return Status::InvalidArgument(
        "source tree does not match the fragment set");
  }
  if (st.num_sites() < 1) {
    return Status::InvalidArgument("no sites in the source tree");
  }
  return Status::OK();
}

}  // namespace

Session::Session(const frag::FragmentSet* set, const frag::SourceTree* st,
                 const SessionOptions& options)
    : set_(set),
      st_(st),
      factory_(std::make_unique<bexpr::ExprFactory>()),
      ticket_(std::make_shared<int>(0)) {
  exec::BackendConfig config;
  config.num_sites = st->num_sites();
  config.coordinator = st->site_of(st->root_fragment());
  config.network = options.network;
  config.coordinator_factory = factory_.get();
  Result<std::unique_ptr<exec::ExecBackend>> backend =
      options.host != nullptr
          ? options.host->AddNamespace(config)
          : exec::ExecBackendRegistry::Instance().CreateOrError(
                options.backend, config);
  if (backend.ok()) {
    backend_ = std::move(*backend);
  } else {
    // Constructors cannot fail; fall back to the sim and surface the
    // spec error from the validating factories / the first Execute.
    backend_status_ = backend.status();
    backend_ = std::make_unique<exec::SimBackend>(config);
  }
  if (options.tracer != nullptr) {
    // Tracing present: decorate the substrate. When no tracer is
    // configured (the default), the execution path is structurally the
    // undecorated backend — zero per-call cost.
    tracer_ = options.tracer;
    backend_ = std::make_unique<obs::TracingBackend>(std::move(backend_),
                                                     tracer_);
  }
}

Session::Session(frag::FragmentSet* set, const frag::SourceTree* st,
                 const SessionOptions& options)
    : Session(static_cast<const frag::FragmentSet*>(set), st, options) {
  mutable_set_ = set;
}

Result<Session> Session::Create(const frag::FragmentSet* set,
                                const frag::SourceTree* st,
                                const SessionOptions& options) {
  PARBOX_RETURN_IF_ERROR(ValidateDeployment(*set, *st));
  Session session(set, st, options);
  PARBOX_RETURN_IF_ERROR(session.backend_status_);
  return session;
}

Result<Session> Session::Create(frag::FragmentSet* set,
                                const frag::SourceTree* st,
                                const SessionOptions& options) {
  PARBOX_RETURN_IF_ERROR(ValidateDeployment(*set, *st));
  Session session(set, st, options);
  PARBOX_RETURN_IF_ERROR(session.backend_status_);
  return session;
}

Result<Session> Session::Create(frag::FragmentSet set, frag::SourceTree st,
                                const SessionOptions& options) {
  PARBOX_RETURN_IF_ERROR(ValidateDeployment(set, st));
  auto owned_set = std::make_unique<frag::FragmentSet>(std::move(set));
  auto owned_st = std::make_unique<const frag::SourceTree>(std::move(st));
  Session session(owned_set.get(), owned_st.get(), options);
  PARBOX_RETURN_IF_ERROR(session.backend_status_);
  session.owned_set_ = std::move(owned_set);
  session.owned_st_ = std::move(owned_st);
  return session;
}

Status Session::ValidateQuery(const xpath::NormQuery& q,
                              std::string_view text) const {
  if (!q.IsWellFormed()) {
    return AttachQueryContext(
        Status::InvalidArgument("query QList is not well-formed"), text);
  }
  if (q.size() > static_cast<size_t>(bexpr::VarId::kMaxQueryIndex) + 1) {
    return AttachQueryContext(
        Status::InvalidArgument(
            "query has more sub-queries than the variable encoding "
            "supports"),
        text);
  }
  return Status::OK();
}

Result<PreparedQuery> Session::Finalize(PreparedQuery q,
                                        std::string_view text) {
  PARBOX_RETURN_IF_ERROR(ValidateQuery(*q.query_, text));
  q.fp_ = xpath::FingerprintQuery(*q.query_);
  q.query_bytes_ = q.query_->SerializedSizeBytes();
  q.text_ = std::string(text);
  q.ticket_ = ticket_;
  return q;
}

Result<PreparedQuery> Session::Prepare(std::string_view query_text) {
  Result<xpath::NormQuery> compiled = xpath::CompileQuery(query_text);
  if (!compiled.ok()) {
    return AttachQueryContext(compiled.status(), query_text);
  }
  PreparedQuery q;
  q.owned_ =
      std::make_shared<const xpath::NormQuery>(std::move(*compiled));
  q.query_ = q.owned_.get();
  return Finalize(std::move(q), query_text);
}

Result<PreparedQuery> Session::Prepare(xpath::NormQuery query) {
  PreparedQuery q;
  q.owned_ = std::make_shared<const xpath::NormQuery>(std::move(query));
  q.query_ = q.owned_.get();
  return Finalize(std::move(q), {});
}

Result<PreparedQuery> Session::Prepare(const xpath::NormQuery* query) {
  PreparedQuery q;
  q.query_ = query;
  return Finalize(std::move(q), {});
}

Status Session::CheckHandle(const PreparedQuery& query) const {
  if (!query.valid()) {
    return Status::InvalidArgument("PreparedQuery is empty");
  }
  if (query.ticket_ != ticket_) {
    return Status::InvalidArgument(
        "PreparedQuery was prepared by a different Session");
  }
  return Status::OK();
}

Result<RunReport> Session::Execute(const PreparedQuery& query,
                                   const ExecOptions& options) {
  PARBOX_RETURN_IF_ERROR(backend_status_);
  PARBOX_RETURN_IF_ERROR(CheckHandle(query));
  PARBOX_ASSIGN_OR_RETURN(
      std::unique_ptr<Evaluator> evaluator,
      EvaluatorRegistry::Instance().CreateOrError(options.evaluator));
  std::shared_ptr<const SitePlan> p = plan();
  backend_->Reset();
  Engine eng(this, *query.query_, query.query_bytes_, std::move(p));
  if (tracer_ == nullptr || !tracer_->enabled()) {
    return evaluator->Run(eng);
  }
  // Root span for a standalone execution: everything the evaluator
  // issues (broadcast sends, per-site computes, triplet replies)
  // parents beneath it via the ambient context.
  const obs::TraceContext ctx{tracer_->MintTraceId(),
                              tracer_->MintSpanId()};
  obs::ScopedTraceContext scope(ctx);
  const double t0 = backend_->now();
  Result<RunReport> report = evaluator->Run(eng);
  obs::TraceEvent e;
  e.name = "execute";
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.site = backend_->coordinator();
  e.ts_seconds = t0;
  e.dur_seconds = backend_->now() - t0;
  e.args.emplace_back("evaluator", options.evaluator);
  tracer_->Record(std::move(e));
  return report;
}

// ---- Updates -----------------------------------------------------------

Result<frag::AppliedDelta> Session::Apply(const frag::Delta& delta) {
  if (!writable()) {
    return Status::FailedPrecondition(
        "session borrows a const deployment; Apply needs an owning or "
        "mutable-borrowing session");
  }
  // The exclusive side of the backend's document lock: under a real
  // thread pool, in-flight site work reads the document on worker
  // threads, and the mutation must not land mid-traversal. On the
  // single-threaded sim this runs the mutation directly.
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  const double apply_t0 = traced ? backend_->now() : 0.0;
  std::optional<Result<frag::AppliedDelta>> applied_or;
  backend_->MutateExclusive(
      [&] { applied_or.emplace(frag::ApplyDelta(mutable_set_, delta)); });
  PARBOX_ASSIGN_OR_RETURN(frag::AppliedDelta applied,
                          std::move(*applied_or));
  if (traced) {
    // Child of the ambient context when one is active (a service-level
    // delta.apply span), a root span of its own otherwise.
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    obs::TraceEvent e;
    e.name = "session.apply";
    e.trace_id = ctx.active() ? ctx.trace_id : tracer_->MintTraceId();
    e.span_id = tracer_->MintSpanId();
    e.parent_id = ctx.span_id;
    e.site = backend_->coordinator();
    e.ts_seconds = apply_t0;
    e.dur_seconds = backend_->now() - apply_t0;
    e.args.emplace_back("fragment", std::to_string(applied.fragment));
    e.args.emplace_back("bytes", std::to_string(applied.wire_bytes));
    tracer_->Record(std::move(e));
  }
  dirty_log_.push_back({applied.fragment, applied.wire_bytes});
  // Compact the prefix every consumer has passed, so a long-lived
  // writer (e.g. a QueryService applying deltas forever without ever
  // running incrementally) keeps the log bounded by its unconsumed
  // suffix. Positions are absolute, so nobody needs renumbering.
  // Only states that will actually read the log pin records: a state
  // due for a full pass (never seeded, or staled by a fragmentation
  // change) never reads it. An in-flight ExecuteIncremental pins its
  // snapshot so a mid-run Apply cannot compact records it has not
  // committed past yet.
  const size_t log_end = log_base_ + dirty_log_.size();
  size_t min_pos = std::min(log_end, exec_log_floor_);
  for (auto& [fp, state] : inc_states_) {
    (void)fp;
    if (NeedsFullPass(state)) continue;
    // A state that has fallen far behind (unconsumed suffix several
    // times the fragment table) would re-evaluate most fragments
    // anyway; demote it to a full re-seed instead of letting it pin
    // the log forever — e.g. a query executed once and never again.
    if (log_end - state.log_pos > 4 * set_->table_size()) {
      state.valid = false;
      continue;
    }
    min_pos = std::min(min_pos, state.log_pos);
  }
  if (min_pos > log_base_) {
    dirty_log_.erase(
        dirty_log_.begin(),
        dirty_log_.begin() + static_cast<long>(min_pos - log_base_));
    log_base_ = min_pos;
  }
  return applied;
}

bool Session::NeedsFullPass(const IncrementalState& state) const {
  return !state.valid || state.refrag_epoch != refrag_epoch_ ||
         state.equations.size() != set_->table_size();
}

std::vector<Session::DirtyRecord> Session::CollectDirty(
    const IncrementalState& state) const {
  std::vector<DirtyRecord> dirty;
  const size_t start =
      state.log_pos > log_base_ ? state.log_pos - log_base_ : 0;
  // First-seen order, deduped by fragment via an index map — a linear
  // rescan of `dirty` per record is quadratic under the delta storms
  // the chaos suite applies at 10k+ fragments.
  std::unordered_map<frag::FragmentId, size_t> at;
  at.reserve(dirty_log_.size() - start);
  for (size_t i = start; i < dirty_log_.size(); ++i) {
    const DirtyRecord& rec = dirty_log_[i];
    if (!set_->is_live(rec.fragment)) continue;
    auto [it, inserted] = at.try_emplace(rec.fragment, dirty.size());
    if (inserted) {
      dirty.push_back(rec);
    } else {
      dirty[it->second].wire_bytes += rec.wire_bytes;
    }
  }
  return dirty;
}

std::vector<frag::FragmentId> Session::DirtyFragments(
    const PreparedQuery& query) const {
  auto it = inc_states_.find(query.fingerprint());
  if (it == inc_states_.end() || NeedsFullPass(it->second)) {
    return set_->live_ids();  // no reusable state: a full pass is due
  }
  std::vector<frag::FragmentId> out;
  for (const DirtyRecord& rec : CollectDirty(it->second)) {
    out.push_back(rec.fragment);
  }
  return out;
}

void Session::InvalidateIncrementalState() { inc_states_.clear(); }

Result<RunReport> Session::ExecuteIncremental(const PreparedQuery& query) {
  PARBOX_RETURN_IF_ERROR(backend_status_);
  PARBOX_RETURN_IF_ERROR(CheckHandle(query));
  std::shared_ptr<const SitePlan> p = plan();
  backend_->Reset();
  Engine eng(this, *query.query_, query.query_bytes_, std::move(p));
  exec::ExecBackend& backend = *backend_;
  const xpath::NormQuery& q = *query.query_;
  const sim::SiteId coord = eng.coordinator();
  IncrementalState& state = inc_states_[query.fp_];

  // Root span for the incremental run; active through the coordinator
  // sends below, so the whole delta pipeline parents beneath it.
  obs::TraceContext trace_ctx;
  std::optional<obs::ScopedTraceContext> trace_scope;
  double trace_t0 = 0.0;
  if (tracer_ != nullptr && tracer_->enabled()) {
    trace_ctx = {tracer_->MintTraceId(), tracer_->MintSpanId()};
    trace_scope.emplace(trace_ctx);
    trace_t0 = backend.now();
  }

  // Reusable state requires the same fragmentation it was computed
  // under: a split/merge (refrag epoch bump, or a resized fragment
  // table) invalidates every cached triplet's variable structure.
  const bool full = NeedsFullPass(state);
  // Deltas applied *during* the run (by event-loop callbacks) land
  // after this absolute snapshot and stay dirty for the next run; the
  // floor keeps a mid-run Apply's compaction from crossing it before
  // the state commits below.
  const size_t log_snapshot = log_base_ + dirty_log_.size();
  exec_log_floor_ = log_snapshot;

  bool answer = false;
  bool solved = false;
  Status failure = Status::OK();
  const char* mode = "full";
  // Outstanding triplet deliveries; decremented by event-loop lambdas
  // inside cluster_.Run(), so it must outlive both branches below.
  size_t pending = 0;

  // Stage 3 (shared by the full and delta paths): one bottom-up solve
  // of the retained equation system at the coordinator.
  auto solve = [&]() {
    const uint64_t solve_ops = q.size() * set_->live_count();
    eng.AddOps(solve_ops);
    if (tracer_ != nullptr) tracer_->SetNextComputeName("solve");
    backend.Compute(coord, solve_ops, [&]() {
      Result<bool> result = bexpr::SolveForAnswer(
          factory_.get(), state.equations, eng.plan().children,
          set_->root_fragment(), q.root());
      if (result.ok()) {
        answer = *result;
        solved = true;
      } else {
        failure = result.status();
      }
    });
  };

  // Stage 2, per fragment (shared by both branches): partially
  // evaluate `f` at site `s` — in `s`'s execution context, into `s`'s
  // factory — charge the compute, ship the triplet to the coordinator
  // through the parcel codec, retain it (ids valid in the session
  // factory), and solve once the last one lands. The retained clean
  // triplets stay sound under the thread pool for the same reason as
  // on the sim: deserializing a structurally identical formula into
  // the session's hash-consing factory reproduces bit-identical
  // ExprIds, so reusing stored ids *is* re-evaluation minus the work.
  auto eval_fragment = [&](sim::SiteId s, frag::FragmentId f) {
    xpath::EvalCounters counters;
    bexpr::ExprFactory& site_factory = backend.site_factory(s);
    auto eq = std::make_shared<bexpr::FragmentEquations>(
        PartialEvalFragment(&site_factory, q, *set_, f, &counters));
    eng.AddOps(counters.ops);
    exec::Parcel parcel = exec::MakeTripletParcel(site_factory, eq);
    if (tracer_ != nullptr) tracer_->SetNextComputeName("site.eval");
    backend.Compute(s, counters.ops,
                    [&, s, parcel = std::move(parcel)]() mutable {
      backend.Send(s, coord, std::move(parcel), "triplet",
                   [&](exec::Parcel delivered) {
        Result<bexpr::FragmentEquations> got =
            exec::TakeTriplet(std::move(delivered), factory_.get());
        if (!got.ok()) {
          failure = got.status();
          return;
        }
        state.equations[got->fragment] = std::move(*got);
        if (--pending == 0) solve();
      });
    });
  };

  if (full) {
    // Seed pass: the ParBoX flow, with the triplets retained for later
    // delta runs.
    state.equations.assign(set_->table_size(), bexpr::FragmentEquations{});
    pending = set_->live_count();
    for (const auto& [s, fragments] : eng.plan().site_fragments) {
      backend.RecordVisit(s);
      backend.Send(coord, s, exec::Parcel::OfSize(eng.query_bytes()),
                   "query", [&, s, &fragments = fragments](exec::Parcel) {
        for (frag::FragmentId f : fragments) eval_fragment(s, f);
      });
    }
  } else {
    std::vector<DirtyRecord> dirty = CollectDirty(state);
    if (dirty.empty()) {
      // Nothing changed since the last run: the retained answer
      // stands; one coordinator-local lookup, zero site visits.
      mode = "clean";
      const uint64_t lookup_ops = 16 + q.size();
      eng.AddOps(lookup_ops);
      const bool cached = state.answer;
      if (tracer_ != nullptr) tracer_->SetNextComputeName("cache.lookup");
      backend.Compute(coord, lookup_ops, [&answer, &solved, cached]() {
        answer = cached;
        solved = true;
      });
    } else {
      // Delta pass: ship each dirty site one "update" message carrying
      // the deltas it has not seen; it re-evaluates only its dirty
      // fragments and ships the fresh triplets back. Clean fragments'
      // retained formulas are reused verbatim (hash-consing keeps
      // their ExprIds bit-stable across runs).
      mode = "delta";
      struct SiteWork {
        sim::SiteId site;
        std::vector<frag::FragmentId> fragments;
        uint64_t update_bytes = 0;
      };
      auto work = std::make_shared<std::vector<SiteWork>>();
      std::unordered_map<sim::SiteId, size_t> site_at;
      site_at.reserve(dirty.size());
      for (const DirtyRecord& rec : dirty) {
        const sim::SiteId s = st_->site_of(rec.fragment);
        auto [it, inserted] = site_at.try_emplace(s, work->size());
        if (inserted) {
          work->push_back({s, {rec.fragment}, rec.wire_bytes});
        } else {
          SiteWork& w = (*work)[it->second];
          w.fragments.push_back(rec.fragment);
          w.update_bytes += rec.wire_bytes;
        }
        ++pending;
      }
      for (size_t wi = 0; wi < work->size(); ++wi) {
        const SiteWork& w = (*work)[wi];
        const sim::SiteId s = w.site;
        backend.RecordVisit(s);
        // 16 bytes name the query (its fingerprint) the site should
        // re-evaluate the dirty fragments under.
        backend.Send(coord, s,
                     exec::Parcel::OfSize(w.update_bytes + 16), "update",
                     [&, work, wi, s](exec::Parcel) {
          for (frag::FragmentId f : (*work)[wi].fragments) {
            eval_fragment(s, f);
          }
        });
      }
    }
  }

  backend.Drain();
  if (trace_ctx.active()) {
    obs::TraceEvent e;
    e.name = "execute.incremental";
    e.trace_id = trace_ctx.trace_id;
    e.span_id = trace_ctx.span_id;
    e.site = coord;
    e.ts_seconds = trace_t0;
    e.dur_seconds = backend.now() - trace_t0;
    e.args.emplace_back("mode", mode);
    tracer_->Record(std::move(e));
  }
  exec_log_floor_ = SIZE_MAX;
  state.log_pos = log_snapshot;
  state.refrag_epoch = refrag_epoch_;
  if (failure.ok() && solved) {
    state.valid = true;
    state.answer = answer;
  } else {
    state.valid = false;  // a broken run must not seed reuse
  }
  PARBOX_RETURN_IF_ERROR(failure);
  if (!solved) {
    return Status::Internal("incremental run finished without an answer");
  }
  const uint64_t entries =
      std::string_view(mode) == "clean"
          ? 0
          : 3 * static_cast<uint64_t>(q.size()) * set_->live_count();
  return eng.Finish(std::string("IncrementalParBoX[") + mode + "]", answer,
                    entries);
}

void Session::FollowPlacement(
    std::shared_ptr<const frag::PlacementFeed> feed) {
  placement_feed_ = std::move(feed);
  placement_epoch_seen_ = placement_feed_->epoch();
  if (std::shared_ptr<const frag::SourceTree> snap =
          placement_feed_->snapshot()) {
    snapshot_hold_ = std::move(snap);
    st_ = snapshot_hold_.get();
    plan_ = nullptr;
  }
}

void Session::SyncPlacement() {
  if (placement_feed_ == nullptr ||
      placement_feed_->epoch() == placement_epoch_seen_) {
    return;
  }
  const std::vector<frag::FragmentId> moved =
      placement_feed_->MovedSince(placement_epoch_seen_);
  placement_epoch_seen_ = placement_feed_->epoch();
  snapshot_hold_ = placement_feed_->snapshot();
  st_ = snapshot_hold_.get();
  // A Move changes no content: the plan re-partitions, but the refrag
  // epoch does NOT bump — retained incremental triplets stay valid,
  // and only the moved fragments go dirty. The 16 bytes are the
  // migration control record (fragment id, new site, epoch) the next
  // incremental "update" message carries; the fragment's *content*
  // already lives at the new site (the catalog ships it at Move time,
  // metered under the "migrate" tag).
  plan_ = nullptr;
  // Only already-seeded incremental states ever read these records; a
  // state seeded after the move starts from a full pass at the current
  // log position. With no such consumer, skip the append so a
  // read-only serving session's log stays empty across moves.
  bool any_reusable = false;
  for (const auto& [fp, state] : inc_states_) {
    (void)fp;
    any_reusable = any_reusable || !NeedsFullPass(state);
  }
  if (!any_reusable) return;
  for (frag::FragmentId f : moved) {
    if (set_->is_live(f)) dirty_log_.push_back({f, 16});
  }
}

void Session::SyncRecovery() {
  exec::ExecBackend* backend = backend_.get();
  const sim::SiteId num_sites = st_->num_sites();
  bool shipped = false;
  bool any_reusable = false;
  for (const auto& [fp, state] : inc_states_) {
    (void)fp;
    any_reusable = any_reusable || !NeedsFullPass(state);
  }
  for (sim::SiteId s = 0; s < num_sites; ++s) {
    const uint64_t epoch = backend->RecoveryEpoch(s);
    if (static_cast<size_t>(s) >= recovery_seen_.size()) {
      recovery_seen_.resize(static_cast<size_t>(s) + 1, 0);
      recovery_seen_[static_cast<size_t>(s)] = epoch;
      continue;
    }
    if (epoch == recovery_seen_[static_cast<size_t>(s)]) continue;
    recovery_seen_[static_cast<size_t>(s)] = epoch;
    // The site's daemon restarted since we last looked: everything it
    // held is gone. Re-ship exactly this site's live fragments — the
    // content as a metered "migrate" transfer out of the coordinator's
    // context, and (for retained incremental state only, mirroring
    // SyncPlacement) a migration dirty record so the next incremental
    // run re-ships f's triplet state too.
    const sim::SiteId coord = coordinator();
    for (frag::FragmentId f : st_->fragments_at(s)) {
      if (!set_->is_live(f)) continue;
      const uint64_t bytes = set_->FragmentSerializedBytes(f);
      backend->Compute(coord, 0, [backend, coord, s, bytes] {
        backend->Send(coord, s, exec::Parcel::OfSize(bytes), "migrate",
                      [](exec::Parcel) {});
      });
      if (any_reusable) dirty_log_.push_back({f, 16});
      shipped = true;
    }
  }
  // Complete the transfers here: Execute resets the backend right
  // after plan(), and Reset requires quiescence.
  if (shipped) backend->Drain();
}

std::shared_ptr<const SitePlan> Session::plan() {
  SyncPlacement();
  SyncRecovery();
  if (plan_ == nullptr) {
    auto p = std::make_shared<SitePlan>();
    p->children = set_->ChildrenTable();
    for (sim::SiteId s = 0; s < st_->num_sites(); ++s) {
      if (!st_->fragments_at(s).empty()) {
        p->site_fragments.emplace_back(s, st_->fragments_at(s));
      }
    }
    plan_ = std::move(p);
  }
  return plan_;
}

void Session::InvalidatePlan() {
  plan_ = nullptr;
  // A plan invalidation means the fragmentation (or placement)
  // changed shape; retained triplet systems no longer line up with
  // the children table, so incremental states re-seed fully.
  ++refrag_epoch_;
}

void Session::RebindSourceTree(const frag::SourceTree* st) {
  st_ = st;
  // The root fragment may live on a different site now; deliveries to
  // the coordinator must follow it.
  backend_->SetCoordinator(st->site_of(st->root_fragment()));
  InvalidatePlan();
}

}  // namespace parbox::core
