// Data-selection queries (the Sec. 8 extension).
//
// The conclusions sketch an extension of ParBoX "capable of processing
// data selection XPath queries with the performance guarantee that
// each site is visited at most twice". This module implements that
// two-pass scheme for node-predicate selections — "return every
// element where the Boolean qualifier q holds":
//
//   Pass 1 (upward):   identical to ParBoX, except each site also
//       *retains locally* a per-element formula sel(v) = V_v(q) for its
//       fragments. Only the usual O(|q|) triplets travel.
//   Solve:             the coordinator solves the equation system,
//       yielding truth values for every (fragment, V/DV, entry)
//       variable.
//   Pass 2 (downward): the coordinator ships each site the resolved
//       values of the variables its fragments used (O(|q|·card(F_j))
//       bits); sites substitute into the retained formulas and report
//       their selected nodes.
//
// Per-site visits: 1 (query) + 1 (resolved values) = 2. Traffic beyond
// the unavoidable result ids stays independent of |T|.

#ifndef PARBOX_CORE_SELECTION_H_
#define PARBOX_CORE_SELECTION_H_

#include <vector>

#include "core/algorithms.h"
#include "xml/dom.h"

namespace parbox::core {

struct SelectionResult {
  /// Selected elements, grouped by fragment id (table-indexed).
  std::vector<std::vector<const xml::Node*>> selected_by_fragment;
  size_t total_selected = 0;
  RunReport report;

  /// Flattened list of all selected nodes.
  std::vector<const xml::Node*> AllSelected() const;
};

/// Evaluate the node predicate `q` (an XBL qualifier interpreted at
/// every element) over the fragmented tree and return all elements
/// where it holds.
Result<SelectionResult> RunSelectionParBoX(const frag::FragmentSet& set,
                                           const frag::SourceTree& st,
                                           const xpath::NormQuery& q,
                                           const EngineOptions& options = {});

}  // namespace parbox::core

#endif  // PARBOX_CORE_SELECTION_H_
