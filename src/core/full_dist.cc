// FullDistParBoX (Sec. 4): removes the coordinator bottleneck by
// distributing stage 3 over the participating sites. Every site holds
// a copy of the (small) source tree. Partial evaluation still runs in
// parallel everywhere; afterwards *resolved* triplets — no variables,
// children already substituted — flow bottom-up along the source tree,
// each hop unifying one fragment's equations locally (procedure
// evalDistrST). Traffic is lower than ParBoX's because variables never
// travel; the price is that a site is activated once per fragment it
// stores.
//
// Backend discipline: a fragment's formulas live in its own site's
// factory and are both built and resolved there; only variable-free
// truth values cross between sites (Plain parcels), landing in the
// receiving site's assignment. Per-fragment flags and equation slots
// are touched exclusively in the owning site's context.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "boolexpr/serialize.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "core/partial_eval.h"
#include "exec/backend.h"

namespace parbox::core {

namespace {

/// The variable-free (V, DV) truth values of one resolved fragment —
/// what a hop ships to the parent's site.
struct ResolvedValues {
  frag::FragmentId fragment = frag::kNoFragment;
  std::vector<char> v;
  std::vector<char> dv;
};

class FullDistParBoXEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "fulldist"; }
  std::string_view display_name() const override {
    return "FullDistParBoX";
  }
  std::string_view description() const override {
    return "composition distributed bottom-up over the source tree";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(4, FullDistParBoXEvaluator);

Result<RunReport> FullDistParBoXEvaluator::Run(Engine& eng) const {
  const frag::FragmentSet& set = eng.set();
  const frag::SourceTree& st = eng.st();
  const xpath::NormQuery& q = eng.q();
  exec::ExecBackend& backend = eng.backend();
  const size_t n = q.size();

  // Per-fragment state, owned by the fragment's site context.
  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  std::vector<char> eval_done(set.table_size(), 0);
  std::vector<char> resolve_done(set.table_size(), 0);
  std::vector<size_t> children_pending(set.table_size(), 0);
  for (frag::FragmentId f : st.live_fragments()) {
    children_pending[f] = st.children_of(f).size();
  }
  // Per-site assignments: resolved (V, DV) values of the sub-fragments
  // whose hops have landed here. Each slot is touched only in its own
  // site's context.
  std::vector<bexpr::Assignment> site_assignment(
      static_cast<size_t>(st.num_sites()));
  bool answer = false;
  std::mutex failure_mutex;  // sites can fail concurrently
  Status failure = Status::OK();
  auto fail = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(failure_mutex);
    if (failure.ok()) failure = status;
  };

  // Resolve fragment f once its own evaluation and all children are in.
  // Always runs in f's site context.
  std::function<void(frag::FragmentId)> try_resolve =
      [&](frag::FragmentId f) {
        if (resolve_done[f] || !eval_done[f] || children_pending[f] != 0) {
          return;
        }
        resolve_done[f] = 1;
        const sim::SiteId s = st.site_of(f);
        // Local unification (evalST restricted to this fragment).
        const uint64_t unify_ops = n * (1 + st.children_of(f).size());
        eng.AddOps(unify_ops);
        backend.Compute(s, unify_ops, [&, f, s]() {
          bexpr::ExprFactory& factory = backend.site_factory(s);
          const bexpr::Assignment& assignment =
              site_assignment[static_cast<size_t>(s)];
          bexpr::FragmentEquations& eq = equations[f];
          auto values = std::make_shared<ResolvedValues>();
          values->fragment = f;
          std::vector<bexpr::ExprId> resolved_consts;
          resolved_consts.reserve(3 * n);
          bool resolved_ok = true;
          auto resolve_vec = [&](std::vector<bexpr::ExprId>& vec,
                                 std::vector<char>* out) {
            for (size_t i = 0; i < vec.size(); ++i) {
              Result<bool> value = factory.Eval(vec[i], assignment);
              if (!value.ok()) {
                fail(value.status());
                resolved_ok = false;
                return;
              }
              vec[i] = factory.FromBool(*value);
              resolved_consts.push_back(vec[i]);
              if (out != nullptr) out->push_back(*value ? 1 : 0);
            }
          };
          resolve_vec(eq.v, &values->v);
          if (resolved_ok) resolve_vec(eq.cv, nullptr);
          if (resolved_ok) resolve_vec(eq.dv, &values->dv);
          if (!resolved_ok) return;

          if (f == st.root_fragment()) {
            // The root resolves at the coordinator's site.
            answer = q.root() < static_cast<int32_t>(values->v.size()) &&
                     values->v[static_cast<size_t>(q.root())] != 0;
            return;
          }
          // Ship the variable-free triplet to the parent fragment's
          // site; only truth values travel, never formulas.
          const frag::FragmentId parent = st.parent_of(f);
          const sim::SiteId parent_site = st.site_of(parent);
          const uint64_t bytes =
              bexpr::SerializedExprsSize(factory, resolved_consts);
          backend.Send(s, parent_site,
                       exec::Parcel::Plain(std::move(values), bytes),
                       "triplet",
                       [&, parent, parent_site](exec::Parcel parcel) {
                         auto got = parcel.local<ResolvedValues>();
                         bexpr::Assignment& target =
                             site_assignment[static_cast<size_t>(
                                 parent_site)];
                         for (size_t i = 0; i < got->v.size(); ++i) {
                           target.Set({got->fragment, bexpr::VectorKind::kV,
                                       static_cast<int32_t>(i)},
                                      got->v[i] != 0);
                         }
                         for (size_t i = 0; i < got->dv.size(); ++i) {
                           target.Set({got->fragment,
                                       bexpr::VectorKind::kDV,
                                       static_cast<int32_t>(i)},
                                      got->dv[i] != 0);
                         }
                         --children_pending[parent];
                         try_resolve(parent);
                       });
        });
      };

  // Phase A: broadcast the query; evaluate fragments locally. The
  // paper assumes every participating site already holds a copy of the
  // (small) source tree, so S_T is not shipped per query.
  for (const auto& [s, fragments] : eng.plan().site_fragments) {
    backend.Send(eng.coordinator(), s,
                 exec::Parcel::OfSize(eng.query_bytes()), "query",
                 [&, s, &fragments = fragments](exec::Parcel) {
      for (frag::FragmentId f : fragments) {
        backend.RecordVisit(s);  // one activation per local fragment
        xpath::EvalCounters counters;
        equations[f] = PartialEvalFragment(&backend.site_factory(s), q,
                                           set, f, &counters);
        eng.AddOps(counters.ops);
        backend.Compute(s, counters.ops, [&, f]() {
          eval_done[f] = 1;
          try_resolve(f);
        });
      }
    });
  }

  backend.Drain();
  PARBOX_RETURN_IF_ERROR(failure);
  return eng.Finish(std::string(display_name()), answer,
                    3 * n * set.live_count());
}

}  // namespace

}  // namespace parbox::core
