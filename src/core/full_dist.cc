// FullDistParBoX (Sec. 4): removes the coordinator bottleneck by
// distributing stage 3 over the participating sites. Every site holds
// a copy of the (small) source tree. Partial evaluation still runs in
// parallel everywhere; afterwards *resolved* triplets — no variables,
// children already substituted — flow bottom-up along the source tree,
// each hop unifying one fragment's equations locally (procedure
// evalDistrST). Traffic is lower than ParBoX's because variables never
// travel; the price is that a site is activated once per fragment it
// stores.

#include <functional>
#include <memory>
#include <optional>

#include "boolexpr/serialize.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "core/partial_eval.h"

namespace parbox::core {

namespace {

class FullDistParBoXEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "fulldist"; }
  std::string_view display_name() const override {
    return "FullDistParBoX";
  }
  std::string_view description() const override {
    return "composition distributed bottom-up over the source tree";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(4, FullDistParBoXEvaluator);

Result<RunReport> FullDistParBoXEvaluator::Run(Engine& eng) const {
  const frag::FragmentSet& set = eng.set();
  const frag::SourceTree& st = eng.st();
  const xpath::NormQuery& q = eng.q();
  sim::Cluster& cluster = eng.cluster();
  const sim::SiteId coord = eng.coordinator();
  const size_t n = q.size();

  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  std::vector<bool> eval_done(set.table_size(), false);
  std::vector<bool> resolve_done(set.table_size(), false);
  std::vector<size_t> children_pending(set.table_size(), 0);
  for (frag::FragmentId f : st.live_fragments()) {
    children_pending[f] = st.children_of(f).size();
  }
  bexpr::Assignment assignment;  // resolved (V, DV) values, grows upward
  bool answer = false;
  Status failure = Status::OK();

  // Resolve fragment f once its own evaluation and all children are in.
  std::function<void(frag::FragmentId)> try_resolve =
      [&](frag::FragmentId f) {
        if (resolve_done[f] || !eval_done[f] || children_pending[f] != 0) {
          return;
        }
        resolve_done[f] = true;
        const sim::SiteId s = st.site_of(f);
        // Local unification (evalST restricted to this fragment).
        const uint64_t unify_ops = n * (1 + st.children_of(f).size());
        eng.AddOps(unify_ops);
        cluster.Compute(s, unify_ops, [&, f, s]() {
          bexpr::FragmentEquations& eq = equations[f];
          std::vector<bexpr::ExprId> resolved_consts;
          resolved_consts.reserve(3 * n);
          auto resolve_vec = [&](std::vector<bexpr::ExprId>& vec,
                                 std::optional<bexpr::VectorKind> kind) {
            for (size_t i = 0; i < vec.size(); ++i) {
              Result<bool> value = eng.factory().Eval(vec[i], assignment);
              if (!value.ok()) {
                failure = value.status();
                return;
              }
              vec[i] = eng.factory().FromBool(*value);
              resolved_consts.push_back(vec[i]);
              if (kind.has_value()) {
                assignment.Set({f, *kind, static_cast<int32_t>(i)}, *value);
              }
            }
          };
          resolve_vec(eq.v, bexpr::VectorKind::kV);
          resolve_vec(eq.cv, std::nullopt);
          resolve_vec(eq.dv, bexpr::VectorKind::kDV);
          if (!failure.ok()) return;

          if (f == st.root_fragment()) {
            answer = assignment.Get({f, bexpr::VectorKind::kV, q.root()})
                         .value_or(false);
            return;
          }
          // Ship the variable-free triplet to the parent fragment's site.
          const frag::FragmentId parent = st.parent_of(f);
          const uint64_t bytes =
              bexpr::SerializeExprs(eng.factory(), resolved_consts).size();
          cluster.Send(s, st.site_of(parent), bytes, "triplet",
                       [&, parent]() {
                         --children_pending[parent];
                         try_resolve(parent);
                       });
        });
      };

  // Phase A: broadcast the query; evaluate fragments locally. The
  // paper assumes every participating site already holds a copy of the
  // (small) source tree, so S_T is not shipped per query.
  for (const auto& [s, fragments] : eng.plan().site_fragments) {
    cluster.Send(coord, s, eng.query_bytes(), "query", [&, s]() {
      for (frag::FragmentId f : fragments) {
        cluster.RecordVisit(s);  // one activation per local fragment
        xpath::EvalCounters counters;
        equations[f] =
            PartialEvalFragment(&eng.factory(), q, set, f, &counters);
        eng.AddOps(counters.ops);
        cluster.Compute(s, counters.ops, [&, f]() {
          eval_done[f] = true;
          try_resolve(f);
        });
      }
    });
  }

  cluster.Run();
  PARBOX_RETURN_IF_ERROR(failure);
  return eng.Finish(std::string(display_name()), answer,
                    3 * n * set.live_count());
}

}  // namespace

}  // namespace parbox::core
