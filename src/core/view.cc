#include "core/view.h"

#include <algorithm>

#include "core/partial_eval.h"
#include "exec/sim_backend.h"
#include "xpath/eval.h"

namespace parbox::core {

Result<MaterializedView> MaterializedView::Create(
    frag::FragmentSet* set, std::vector<frag::SiteId> site_of_fragment,
    const xpath::NormQuery* q, const EngineOptions& options) {
  if (set == nullptr || q == nullptr) {
    return Status::InvalidArgument("set and query must be non-null");
  }
  if (!q->IsWellFormed()) {
    return Status::InvalidArgument("query QList is not well-formed");
  }
  MaterializedView view(set, q, options);
  view.site_of_ = std::move(site_of_fragment);
  PARBOX_RETURN_IF_ERROR(view.RebuildSourceTree());
  view.equations_.resize(set->table_size());
  for (frag::FragmentId f : set->live_ids()) {
    uint64_t ops = 0;
    view.RecomputeTriplet(f, &ops);
  }
  PARBOX_RETURN_IF_ERROR(view.Resolve());
  return view;
}

Status MaterializedView::RebuildSourceTree() {
  site_of_.resize(set_->table_size(), -1);
  PARBOX_ASSIGN_OR_RETURN(frag::SourceTree st,
                          frag::SourceTree::Create(*set_, site_of_));
  st_ = std::move(st);
  return Status::OK();
}

bool MaterializedView::RecomputeTriplet(frag::FragmentId f, uint64_t* ops) {
  xpath::EvalCounters counters;
  bexpr::FragmentEquations eq =
      PartialEvalFragment(&factory_, *q_, *set_, f, &counters);
  *ops += counters.ops;
  if (static_cast<size_t>(f) >= equations_.size()) {
    equations_.resize(set_->table_size());
  }
  bexpr::FragmentEquations& cached = equations_[f];
  // Formulas are hash-consed in one factory, so triplet equality is
  // element-wise id equality.
  const bool unchanged = cached.fragment == f && cached.v == eq.v &&
                         cached.cv == eq.cv && cached.dv == eq.dv;
  cached = std::move(eq);
  return !unchanged;
}

Status MaterializedView::Resolve() {
  PARBOX_ASSIGN_OR_RETURN(
      bool answer,
      bexpr::SolveForAnswer(&factory_, equations_, set_->ChildrenTable(),
                            set_->root_fragment(), q_->root()));
  answer_ = answer;
  return Status::OK();
}

Result<xml::Node*> MaterializedView::InsNode(frag::FragmentId f,
                                             xml::Node* parent,
                                             std::string_view label,
                                             std::string_view text) {
  if (!set_->is_live(f)) return Status::NotFound("no such fragment");
  if (parent == nullptr || !parent->is_element()) {
    return Status::InvalidArgument("insNode target must be an element");
  }
  xml::Document* storage = set_->mutable_storage();
  xml::Node* node = storage->NewElement(label);
  if (!text.empty()) storage->AppendChild(node, storage->NewText(text));
  storage->AppendChild(parent, node);
  NotifyContentUpdate(f);
  return node;
}

Status MaterializedView::DelNode(frag::FragmentId f, xml::Node* v) {
  if (!set_->is_live(f)) return Status::NotFound("no such fragment");
  if (v == nullptr) return Status::InvalidArgument("null node");
  if (v == set_->fragment(f).root) {
    return Status::InvalidArgument("cannot delete the fragment root");
  }
  if (xml::CountVirtuals(v) != 0) {
    return Status::FailedPrecondition(
        "subtree references sub-fragments; merge them first");
  }
  set_->mutable_storage()->Detach(v);
  NotifyContentUpdate(f);
  return Status::OK();
}

Result<RunReport> MaterializedView::Refresh(frag::FragmentId f) {
  if (!set_->is_live(f)) return Status::NotFound("no such fragment");
  const sim::SiteId view_site = st_.site_of(st_.root_fragment());
  const sim::SiteId frag_site = st_.site_of(f);
  // Maintenance is metered on a throwaway deterministic cluster; views
  // reach it through SimBackend like everything else above src/exec/.
  exec::BackendConfig config;
  config.num_sites = st_.num_sites();
  config.coordinator = view_site;
  config.network = options_.network;
  config.coordinator_factory = &factory_;
  exec::SimBackend backend(config);
  sim::Cluster& cluster = *backend.sim_cluster();

  uint64_t total_ops = 0;
  bool changed = false;
  Status failure = Status::OK();

  // Only the site storing F_j is visited; it re-evaluates F_j alone.
  cluster.RecordVisit(frag_site);
  cluster.Send(view_site, frag_site, 64, "request", [&]() {
    uint64_t ops = 0;
    changed = RecomputeTriplet(f, &ops);
    total_ops += ops;
    const uint64_t bytes = TripletWireBytes(factory_, equations_[f]);
    cluster.Compute(frag_site, ops, [&, bytes]() {
      cluster.Send(frag_site, view_site, bytes, "triplet", [&]() {
        if (!changed) return;  // identical triplet: answer stands
        const uint64_t solve_ops = q_->size() * set_->live_count();
        total_ops += solve_ops;
        cluster.Compute(view_site, solve_ops, [&]() {
          Status st = Resolve();
          if (!st.ok()) failure = st;
        });
      });
    });
  });
  cluster.Run();
  PARBOX_RETURN_IF_ERROR(failure);

  RunReport report;
  report.algorithm = changed ? "ViewRefresh[changed]"
                             : "ViewRefresh[unchanged]";
  report.answer = answer_;
  report.makespan_seconds = cluster.now();
  report.total_compute_seconds = cluster.total_busy_seconds();
  report.total_ops = total_ops;
  report.network_bytes = cluster.traffic().total_bytes();
  report.network_messages = cluster.traffic().total_messages();
  report.visits_per_site = cluster.all_visits();
  report.eq_system_entries = 3 * q_->size();
  return report;
}

Result<frag::FragmentId> MaterializedView::SplitFragments(
    frag::FragmentId f, xml::Node* at, frag::SiteId new_site) {
  if (new_site < 0) return Status::InvalidArgument("bad site id");
  PARBOX_ASSIGN_OR_RETURN(frag::FragmentId new_id, set_->Split(f, at));
  site_of_.resize(set_->table_size(), -1);
  site_of_[new_id] = new_site;
  PARBOX_RETURN_IF_ERROR(RebuildSourceTree());
  equations_.resize(set_->table_size());
  // Only the split fragment's site computes: two fresh triplets, one
  // for the shrunken F_j and one for the carved-out fragment. The
  // answer provably does not change; re-solving is skipped.
  uint64_t ops = 0;
  RecomputeTriplet(f, &ops);
  RecomputeTriplet(new_id, &ops);
  NotifyFragmentationUpdate(f);
  NotifyFragmentationUpdate(new_id);
  return new_id;
}

Status MaterializedView::MergeFragments(frag::FragmentId child) {
  if (!set_->is_live(child)) return Status::NotFound("no such fragment");
  const frag::FragmentId parent = set_->fragment(child).parent;
  PARBOX_RETURN_IF_ERROR(set_->Merge(child));
  PARBOX_RETURN_IF_ERROR(RebuildSourceTree());
  equations_[child] = bexpr::FragmentEquations{};
  uint64_t ops = 0;
  RecomputeTriplet(parent, &ops);
  NotifyFragmentationUpdate(child);
  NotifyFragmentationUpdate(parent);
  return Status::OK();
}

Result<bool> MaterializedView::RecomputeFromScratch() {
  uint64_t ops = 0;
  for (frag::FragmentId f : set_->live_ids()) RecomputeTriplet(f, &ops);
  PARBOX_RETURN_IF_ERROR(Resolve());
  return answer_;
}

}  // namespace parbox::core
