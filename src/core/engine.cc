#include "core/engine.h"

namespace parbox::core {

Engine::Engine(Session* session, const xpath::NormQuery& q,
               uint64_t query_bytes, std::shared_ptr<const SitePlan> plan)
    : session_(session),
      q_(&q),
      plan_(std::move(plan)),
      coordinator_(session->coordinator()),
      query_bytes_(query_bytes) {}

RunReport Engine::Finish(std::string algorithm, bool answer,
                         uint64_t eq_system_entries) {
  exec::ExecBackend& backend = session_->backend();
  RunReport report;
  report.algorithm = std::move(algorithm);
  report.answer = answer;
  report.makespan_seconds = backend.now();
  report.total_compute_seconds = backend.total_busy_seconds();
  report.total_ops = total_ops_.load(std::memory_order_relaxed);
  const sim::TrafficStats& traffic = backend.traffic();
  report.network_bytes = traffic.total_bytes();
  report.network_messages = traffic.total_messages();
  report.visits_per_site = backend.visits();
  report.eq_system_entries = eq_system_entries;
  for (const auto& [tag, bytes] : traffic.bytes_by_tag()) {
    report.stats.Add("net." + tag + ".bytes", bytes);
  }
  backend.AddBackendStats(&report.stats);
  report.stats.Add("formula.interned_nodes",
                   session_->factory().total_nodes());
  return report;
}

}  // namespace parbox::core
