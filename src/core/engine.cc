#include "core/engine.h"

namespace parbox::core {

Engine::Engine(Session* session, const xpath::NormQuery& q,
               uint64_t query_bytes, std::shared_ptr<const SitePlan> plan)
    : session_(session),
      q_(&q),
      plan_(std::move(plan)),
      coordinator_(session->coordinator()),
      query_bytes_(query_bytes) {}

RunReport Engine::Finish(std::string algorithm, bool answer,
                         uint64_t eq_system_entries) {
  sim::Cluster& cluster = session_->cluster();
  RunReport report;
  report.algorithm = std::move(algorithm);
  report.answer = answer;
  report.makespan_seconds = cluster.now();
  report.total_compute_seconds = cluster.total_busy_seconds();
  report.total_ops = total_ops_;
  report.network_bytes = cluster.traffic().total_bytes();
  report.network_messages = cluster.traffic().total_messages();
  report.visits_per_site = cluster.all_visits();
  report.eq_system_entries = eq_system_entries;
  for (const auto& [tag, bytes] : cluster.traffic().bytes_by_tag()) {
    report.stats.Add("net." + tag + ".bytes", bytes);
  }
  report.stats.Add("sim.events", cluster.loop().events_run());
  report.stats.Add("formula.interned_nodes",
                   session_->factory().total_nodes());
  return report;
}

}  // namespace parbox::core
