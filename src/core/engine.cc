#include "core/engine.h"

namespace parbox::core {

Engine::Engine(const frag::FragmentSet& set, const frag::SourceTree& st,
               const xpath::NormQuery& q, const EngineOptions& options)
    : set_(&set),
      st_(&st),
      q_(&q),
      cluster_(st.num_sites(), options.network),
      coordinator_(st.site_of(st.root_fragment())),
      query_bytes_(q.SerializedSizeBytes()) {}

Result<Engine> Engine::Create(const frag::FragmentSet& set,
                              const frag::SourceTree& st,
                              const xpath::NormQuery& q,
                              const EngineOptions& options) {
  if (!q.IsWellFormed()) {
    return Status::InvalidArgument("query QList is not well-formed");
  }
  if (q.size() > static_cast<size_t>(bexpr::VarId::kMaxQueryIndex) + 1) {
    return Status::InvalidArgument(
        "query has more sub-queries than the variable encoding supports");
  }
  if (st.root_fragment() != set.root_fragment()) {
    return Status::InvalidArgument(
        "source tree does not match the fragment set");
  }
  if (st.num_sites() < 1) {
    return Status::InvalidArgument("no sites in the source tree");
  }
  return Engine(set, st, q, options);
}

Result<std::vector<RunReport>> RunAllAlgorithms(const frag::FragmentSet& set,
                                                const frag::SourceTree& st,
                                                const xpath::NormQuery& q,
                                                const EngineOptions& options) {
  std::vector<RunReport> reports;
  using Fn = Result<RunReport> (*)(const frag::FragmentSet&,
                                   const frag::SourceTree&,
                                   const xpath::NormQuery&,
                                   const EngineOptions&);
  constexpr Fn kAll[] = {RunNaiveCentralized, RunNaiveDistributed, RunParBoX,
                         RunHybridParBoX, RunFullDistParBoX, RunLazyParBoX};
  for (Fn fn : kAll) {
    PARBOX_ASSIGN_OR_RETURN(RunReport report, fn(set, st, q, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

RunReport Engine::Finish(std::string algorithm, bool answer,
                         uint64_t eq_system_entries) {
  RunReport report;
  report.algorithm = std::move(algorithm);
  report.answer = answer;
  report.makespan_seconds = cluster_.now();
  report.total_compute_seconds = cluster_.total_busy_seconds();
  report.total_ops = total_ops_;
  report.network_bytes = cluster_.traffic().total_bytes();
  report.network_messages = cluster_.traffic().total_messages();
  report.visits_per_site = cluster_.all_visits();
  report.eq_system_entries = eq_system_entries;
  for (const auto& [tag, bytes] : cluster_.traffic().bytes_by_tag()) {
    report.stats.Add("net." + tag + ".bytes", bytes);
  }
  report.stats.Add("sim.events", cluster_.loop().events_run());
  report.stats.Add("formula.interned_nodes", factory_.total_nodes());
  return report;
}

}  // namespace parbox::core
