// Incremental maintenance of Boolean XPath views (Sec. 5).
//
// A materialized view M(q, T) caches (S_T, ans) — the source tree and
// the query's answer — augmented (as the paper's algorithm requires)
// with the per-fragment vector triplets. On updates:
//
//   * insNode/delNode change only fragment F_j's contents. The view
//     re-runs bottomUp on F_j alone, at F_j's site; if the returned
//     triplet is unchanged the answer stands, otherwise one local
//     evalST pass recomputes it. No other site or fragment is touched,
//     and the traffic (one triplet) depends on neither |T| nor the
//     update size.
//   * splitFragments/mergeFragments change the fragmentation but never
//     the answer; only the source tree and the triplets of the
//     affected fragments are refreshed.
//
// Every maintenance operation returns a RunReport so benchmarks and
// tests can verify the locality claims empirically.

#ifndef PARBOX_CORE_VIEW_H_
#define PARBOX_CORE_VIEW_H_

#include <functional>
#include <string_view>
#include <vector>

#include "boolexpr/expr.h"
#include "boolexpr/solver.h"
#include "core/algorithms.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"

namespace parbox::core {

/// Observer for view update operations. A QueryService's result cache
/// registers one so document changes can invalidate exactly the cached
/// answers they affect (service/query_service.h).
struct UpdateListener {
  /// insNode/delNode landed in fragment `f`: its content changed, so
  /// any answer derived from f's old triplet is suspect.
  std::function<void(frag::FragmentId)> on_content_update;
  /// splitFragments/mergeFragments touched fragment `f`: its triplet
  /// is re-cut but, per Sec. 5, no query answer changes.
  std::function<void(frag::FragmentId)> on_fragmentation_update;
};

class MaterializedView {
 public:
  /// Materialize the view: evaluates `q` over `*set` (ParBoX-style) and
  /// caches the state. `set` and `q` must outlive the view; the view
  /// becomes the owner of all fragmentation changes to `*set`.
  static Result<MaterializedView> Create(
      frag::FragmentSet* set, std::vector<frag::SiteId> site_of_fragment,
      const xpath::NormQuery* q, const EngineOptions& options = {});

  MaterializedView(MaterializedView&&) = default;
  MaterializedView& operator=(MaterializedView&&) = default;

  bool answer() const { return answer_; }
  const frag::SourceTree& source_tree() const { return st_; }
  /// The fragment set this view maintains (identity check for
  /// observers that must share it).
  const frag::FragmentSet* fragment_set() const { return set_; }

  /// Register the (single) update observer. Callbacks fire after the
  /// corresponding update has been applied to the fragment set.
  void SetUpdateListener(UpdateListener listener) {
    listener_ = std::move(listener);
  }

  // ---- Content updates ----

  /// insNode(A, v): insert a new element labelled `label` as a child of
  /// `parent` (a node of fragment `f`). If `text` is non-empty the new
  /// element gets a text child. Returns the inserted node. The view is
  /// stale until Refresh(f) is called.
  Result<xml::Node*> InsNode(frag::FragmentId f, xml::Node* parent,
                             std::string_view label,
                             std::string_view text = {});

  /// delNode(v): delete node `v` (and its subtree) from fragment `f`.
  /// Fails if the subtree contains virtual nodes (merge them first) or
  /// if `v` is the fragment root.
  Status DelNode(frag::FragmentId f, xml::Node* v);

  /// Re-establish the view after a batch of content updates localized
  /// in fragment `f`: re-evaluates only F_j, compares triplets, and
  /// re-solves the cached system only when they differ.
  Result<RunReport> Refresh(frag::FragmentId f);

  // ---- Fragmentation updates ----

  /// splitFragments(v): carve the subtree at `at` out of fragment `f`
  /// into a new fragment stored at `new_site`. The answer is unchanged;
  /// the source tree and the two affected triplets are refreshed.
  Result<frag::FragmentId> SplitFragments(frag::FragmentId f, xml::Node* at,
                                          frag::SiteId new_site);

  /// mergeFragments: splice sub-fragment `child` back into its parent
  /// and refresh the parent's triplet.
  Status MergeFragments(frag::FragmentId child);

  /// Recompute the answer from scratch (testing aid; what incremental
  /// maintenance avoids).
  Result<bool> RecomputeFromScratch();

 private:
  MaterializedView(frag::FragmentSet* set, const xpath::NormQuery* q,
                   const EngineOptions& options)
      : set_(set), q_(q), options_(options) {}

  Status RebuildSourceTree();
  /// Partially evaluate fragment `f` and overwrite its cached triplet.
  /// Returns true if the triplet changed.
  bool RecomputeTriplet(frag::FragmentId f, uint64_t* ops);
  /// Solve the cached system; updates answer_.
  Status Resolve();

  void NotifyContentUpdate(frag::FragmentId f) {
    if (listener_.on_content_update) listener_.on_content_update(f);
  }
  void NotifyFragmentationUpdate(frag::FragmentId f) {
    if (listener_.on_fragmentation_update) {
      listener_.on_fragmentation_update(f);
    }
  }

  frag::FragmentSet* set_;
  const xpath::NormQuery* q_;
  EngineOptions options_;
  UpdateListener listener_;
  std::vector<frag::SiteId> site_of_;
  frag::SourceTree st_;
  bexpr::ExprFactory factory_;
  std::vector<bexpr::FragmentEquations> equations_;
  bool answer_ = false;
};

}  // namespace parbox::core

#endif  // PARBOX_CORE_VIEW_H_
