// Per-fragment evaluation kernels used by the distributed algorithms.
//
// PartialEvalFragment is Procedure evalQual/bottomUp of Fig. 3 run at a
// participating site: it evaluates the whole QList over one fragment in
// the formula domain, introducing a fresh variable for each (V, DV)
// entry of each virtual node, and returns the triplet of vectors for
// the fragment root — the site's "partial answer".
//
// BoolEvalFragment is the same traversal in the truth-value domain,
// with sub-fragment results supplied by the caller — the building block
// of NaiveDistributed, where children are fully evaluated before their
// parent.

#ifndef PARBOX_CORE_PARTIAL_EVAL_H_
#define PARBOX_CORE_PARTIAL_EVAL_H_

#include <functional>
#include <vector>

#include "boolexpr/expr.h"
#include "boolexpr/solver.h"
#include "fragment/fragment.h"
#include "xpath/eval.h"
#include "xpath/eval_batch.h"
#include "xpath/qlist.h"

namespace parbox::core {

/// Partially evaluate `q` over fragment `f`. Variables are named after
/// the sub-fragments they stand for.
bexpr::FragmentEquations PartialEvalFragment(bexpr::ExprFactory* factory,
                                             const xpath::NormQuery& q,
                                             const frag::FragmentSet& set,
                                             frag::FragmentId f,
                                             xpath::EvalCounters* counters);

/// Lay out `queries` for fused evaluation (donor-prefix scan; see
/// xpath/eval_batch.h). Build once per batch, reuse across fragments.
/// The queries must outlive the returned batch.
xpath::EvalBatch BuildFusedBatch(
    const std::vector<const xpath::NormQuery*>& queries);

/// Partially evaluate every query of `batch` over fragment `f` in ONE
/// bottom-up walk, returning one FragmentEquations per lane (in lane
/// order, each with .fragment = f). Variable naming matches
/// PartialEvalFragment exactly — entry i of every lane reads the same
/// Var{fragment_ref, kind, i} — so each lane's triplet is bit-identical
/// (same ExprIds) to a solo PartialEvalFragment of that query in the
/// same factory. `counters->ops` charges only non-shared entries;
/// donor-copied slots accumulate in `stats->shared_entries`.
std::vector<bexpr::FragmentEquations> PartialEvalFragmentBatch(
    bexpr::ExprFactory* factory, const xpath::EvalBatch& batch,
    const frag::FragmentSet& set, frag::FragmentId f,
    xpath::EvalCounters* counters,
    xpath::BatchEvalStats* stats = nullptr);

/// Convenience overload: build the batch and evaluate in one call.
std::vector<bexpr::FragmentEquations> PartialEvalFragmentBatch(
    bexpr::ExprFactory* factory,
    const std::vector<const xpath::NormQuery*>& queries,
    const frag::FragmentSet& set, frag::FragmentId f,
    xpath::EvalCounters* counters,
    xpath::BatchEvalStats* stats = nullptr);

/// Truth-value vectors (V, DV) for already-evaluated fragments.
struct ResolvedVectors {
  std::vector<bool> v;
  std::vector<bool> dv;
};

/// Evaluate `q` over fragment `f` in the Boolean domain;
/// `child_vectors(k)` must return the resolved vectors of sub-fragment
/// `k`.
ResolvedVectors BoolEvalFragment(
    const xpath::NormQuery& q, const frag::FragmentSet& set,
    frag::FragmentId f,
    const std::function<const ResolvedVectors&(frag::FragmentId)>&
        child_vectors,
    xpath::EvalCounters* counters);

/// Wire size of a fragment's triplet (V, CV, DV serialized together) —
/// what the site ships to the coordinator.
uint64_t TripletWireBytes(const bexpr::ExprFactory& factory,
                          const bexpr::FragmentEquations& eq);

}  // namespace parbox::core

#endif  // PARBOX_CORE_PARTIAL_EVAL_H_
