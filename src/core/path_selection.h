// Distributed data-selection XPath (the full Sec. 8 extension).
//
// RunSelectionParBoX (selection.h) answers "which nodes satisfy this
// predicate". This module answers the more general question the
// paper's conclusions sketch: given a *path* p, return every node
// reachable from the root via p — where a single match may thread
// through several fragments — with each site visited at most twice.
//
// Two passes:
//
//   Up   — ordinary ParBoX: every site partially evaluates the
//          path-compiled QList (whose endpoint is a kMark) over its
//          fragments, ships triplets, and the coordinator solves the
//          Boolean system, yielding V/DV truth values for every
//          fragment root. During this pass each site retains, locally,
//          the per-element V vectors of its fragments.
//   Down — match contexts flow root-to-leaves along the fragment tree:
//          a context bit (node, q_i) means "a partial match from the
//          document root arrives here needing sub-query q_i". Contexts
//          propagate through a fragment using the retained V vectors
//          (Seq consumes a satisfied qualifier, Child steps to
//          children, Desc floods downward); reaching the kMark selects
//          the node. Bits crossing a virtual node become the child
//          fragment's root context, shipped to its site.
//
// Each site is activated once per pass. Traffic: the usual ParBoX
// triplets upward, O(|q|) context bits per fragment edge downward,
// plus the unavoidable result ids.

#ifndef PARBOX_CORE_PATH_SELECTION_H_
#define PARBOX_CORE_PATH_SELECTION_H_

#include <vector>

#include "core/algorithms.h"
#include "xml/dom.h"
#include "xpath/normalize.h"

namespace parbox::core {

struct PathSelectionResult {
  /// Selected elements, grouped by fragment id (table-indexed).
  std::vector<std::vector<const xml::Node*>> selected_by_fragment;
  size_t total_selected = 0;
  RunReport report;

  std::vector<const xml::Node*> AllSelected() const;
};

/// Select all nodes reachable from the root of the fragmented tree via
/// the compiled selection path.
Result<PathSelectionResult> RunPathSelection(
    const frag::FragmentSet& set, const frag::SourceTree& st,
    const xpath::SelectionQuery& selection,
    const EngineOptions& options = {});

/// Convenience: compile `path_text` (e.g. "//broker/stock") and run.
Result<PathSelectionResult> RunPathSelection(
    const frag::FragmentSet& set, const frag::SourceTree& st,
    std::string_view path_text, const EngineOptions& options = {});

}  // namespace parbox::core

#endif  // PARBOX_CORE_PATH_SELECTION_H_
