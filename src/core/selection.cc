#include "core/selection.h"

#include <memory>
#include <mutex>

#include "boolexpr/solver.h"
#include "core/engine.h"
#include "core/partial_eval.h"
#include "exec/codec.h"
#include "xpath/eval.h"

namespace parbox::core {

std::vector<const xml::Node*> SelectionResult::AllSelected() const {
  std::vector<const xml::Node*> out;
  for (const auto& group : selected_by_fragment) {
    out.insert(out.end(), group.begin(), group.end());
  }
  return out;
}

namespace {

/// Per-fragment retained state: each element's selection formula (ids
/// into the owning site's factory; built and evaluated only in that
/// site's context).
struct RetainedFormulas {
  std::vector<std::pair<const xml::Node*, bexpr::ExprId>> per_node;
};

}  // namespace

Result<SelectionResult> RunSelectionParBoX(const frag::FragmentSet& set,
                                           const frag::SourceTree& st,
                                           const xpath::NormQuery& q,
                                           const EngineOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(
      Session session,
      Session::Create(&set, &st, SessionOptions{options.network}));
  PARBOX_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(&q));
  Engine eng(&session, q, prepared.query_bytes(), session.plan());
  exec::ExecBackend& backend = session.backend();
  const sim::SiteId coord = eng.coordinator();
  const size_t n = q.size();

  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  std::vector<RetainedFormulas> retained(set.table_size());
  SelectionResult result;
  result.selected_by_fragment.resize(set.table_size());
  size_t pending_up = set.live_count();
  size_t pending_down = 0;
  // Written once at the coordinator before pass 2's sends, read-only
  // in every site context afterwards (ordered by the deliveries).
  bexpr::Assignment assignment;
  std::mutex failure_mutex;  // pass-2 sites can fail concurrently
  Status failure = Status::OK();

  // ---- Pass 2: ship resolved variable values, collect selections ----
  auto downward = [&]() {
    for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
      if (st.fragments_at(s).empty()) continue;
      ++pending_down;
      backend.RecordVisit(s);  // second (and last) visit of this site
      // Resolved values for the variables this site's fragments used:
      // 2 bits per (child fragment, entry).
      uint64_t child_entries = 0;
      for (frag::FragmentId f : st.fragments_at(s)) {
        child_entries += st.children_of(f).size() * n;
      }
      const uint64_t bytes = 16 + (2 * child_entries + 7) / 8;
      backend.Send(coord, s, exec::Parcel::OfSize(bytes), "values",
                   [&, s](exec::Parcel) {
        uint64_t ops = 0;
        uint64_t selected_here = 0;
        for (frag::FragmentId f : st.fragments_at(s)) {
          for (auto& [node, formula] : retained[f].per_node) {
            ++ops;
            bexpr::Tri value = backend.site_factory(s).EvalPartial(
                formula, assignment);
            if (value == bexpr::Tri::kUnknown) {
              std::lock_guard<std::mutex> lock(failure_mutex);
              if (failure.ok()) {
                failure = Status::Internal(
                    "selection formula unresolved after pass 2");
              }
              return;
            }
            if (value == bexpr::Tri::kTrue) {
              result.selected_by_fragment[f].push_back(node);
              ++selected_here;
            }
          }
        }
        eng.AddOps(ops);
        backend.Compute(s, ops, [&, s, selected_here]() {
          // The selected node ids are the query result; 8 bytes each.
          backend.Send(s, coord,
                       exec::Parcel::OfSize(8 + 8 * selected_here),
                       "result", [&](exec::Parcel) { --pending_down; });
        });
      });
    }
  };

  // ---- Solve at the coordinator, then start pass 2 ----
  auto compose = [&]() {
    const uint64_t solve_ops = n * set.live_count();
    eng.AddOps(solve_ops);
    backend.Compute(coord, solve_ops, [&]() {
      Result<bexpr::Assignment> solved =
          bexpr::SolveBottomUp(&eng.factory(), equations,
                               set.ChildrenTable(), set.root_fragment());
      if (!solved.ok()) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (failure.ok()) failure = solved.status();
        return;
      }
      assignment = std::move(*solved);
      downward();
    });
  };

  // ---- Pass 1: ParBoX partial evaluation + per-node retention ----
  for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
    if (st.fragments_at(s).empty()) continue;
    backend.RecordVisit(s);  // first visit
    backend.Send(coord, s, exec::Parcel::OfSize(eng.query_bytes()),
                 "query", [&, s](exec::Parcel) {
      for (frag::FragmentId f : st.fragments_at(s)) {
        bexpr::ExprFactory& site_factory = backend.site_factory(s);
        xpath::EvalCounters counters;
        xpath::ExprDomain dom{&site_factory};
        auto vectors = xpath::BottomUpEvalHooked(
            dom, q, *set.fragment(f).root,
            [&](const xml::Node& vnode, std::vector<bexpr::ExprId>* v,
                std::vector<bexpr::ExprId>* dv) {
              v->resize(n);
              dv->resize(n);
              for (size_t i = 0; i < n; ++i) {
                (*v)[i] = site_factory.Var(
                    {vnode.fragment_ref, bexpr::VectorKind::kV,
                     static_cast<int32_t>(i)});
                (*dv)[i] = site_factory.Var(
                    {vnode.fragment_ref, bexpr::VectorKind::kDV,
                     static_cast<int32_t>(i)});
              }
            },
            [&](const xml::Node& node,
                const std::vector<bexpr::ExprId>& vv) {
              retained[f].per_node.emplace_back(&node, vv[q.root()]);
            },
            &counters);
        eng.AddOps(counters.ops);
        auto eq = std::make_shared<bexpr::FragmentEquations>();
        eq->fragment = f;
        eq->v = std::move(vectors.v);
        eq->cv = std::move(vectors.cv);
        eq->dv = std::move(vectors.dv);
        exec::Parcel parcel = exec::MakeTripletParcel(site_factory, eq);
        backend.Compute(s, counters.ops,
                        [&, s, parcel = std::move(parcel)]() mutable {
          backend.Send(s, coord, std::move(parcel), "triplet",
                       [&](exec::Parcel delivered) {
            Result<bexpr::FragmentEquations> got =
                exec::TakeTriplet(std::move(delivered), &eng.factory());
            if (!got.ok()) {
              std::lock_guard<std::mutex> lock(failure_mutex);
              if (failure.ok()) failure = got.status();
              return;
            }
            equations[got->fragment] = std::move(*got);
            if (--pending_up == 0) compose();
          });
        });
      }
    });
  }

  backend.Drain();
  PARBOX_RETURN_IF_ERROR(failure);
  for (const auto& group : result.selected_by_fragment) {
    result.total_selected += group.size();
  }
  result.report = eng.Finish("SelectionParBoX", result.total_selected > 0,
                             3 * n * set.live_count());
  return result;
}

}  // namespace parbox::core
