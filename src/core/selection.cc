#include "core/selection.h"

#include <memory>

#include "boolexpr/solver.h"
#include "core/engine.h"
#include "core/partial_eval.h"
#include "xpath/eval.h"

namespace parbox::core {

std::vector<const xml::Node*> SelectionResult::AllSelected() const {
  std::vector<const xml::Node*> out;
  for (const auto& group : selected_by_fragment) {
    out.insert(out.end(), group.begin(), group.end());
  }
  return out;
}

namespace {

/// Per-fragment retained state: each element's selection formula.
struct RetainedFormulas {
  std::vector<std::pair<const xml::Node*, bexpr::ExprId>> per_node;
};

}  // namespace

Result<SelectionResult> RunSelectionParBoX(const frag::FragmentSet& set,
                                           const frag::SourceTree& st,
                                           const xpath::NormQuery& q,
                                           const EngineOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(
      Session session,
      Session::Create(&set, &st, SessionOptions{options.network}));
  PARBOX_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(&q));
  Engine eng(&session, q, prepared.query_bytes(), session.plan());
  sim::Cluster& cluster = eng.cluster();
  const sim::SiteId coord = eng.coordinator();
  const size_t n = q.size();

  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  std::vector<RetainedFormulas> retained(set.table_size());
  SelectionResult result;
  result.selected_by_fragment.resize(set.table_size());
  size_t pending_up = set.live_count();
  size_t pending_down = 0;
  bexpr::Assignment assignment;
  Status failure = Status::OK();

  // ---- Pass 2: ship resolved variable values, collect selections ----
  auto downward = [&]() {
    for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
      if (st.fragments_at(s).empty()) continue;
      ++pending_down;
      cluster.RecordVisit(s);  // second (and last) visit of this site
      // Resolved values for the variables this site's fragments used:
      // 2 bits per (child fragment, entry).
      uint64_t child_entries = 0;
      for (frag::FragmentId f : st.fragments_at(s)) {
        child_entries += st.children_of(f).size() * n;
      }
      const uint64_t bytes = 16 + (2 * child_entries + 7) / 8;
      cluster.Send(coord, s, bytes, "values", [&, s]() {
        uint64_t ops = 0;
        uint64_t selected_here = 0;
        for (frag::FragmentId f : st.fragments_at(s)) {
          for (auto& [node, formula] : retained[f].per_node) {
            ++ops;
            bexpr::Tri value =
                eng.factory().EvalPartial(formula, assignment);
            if (value == bexpr::Tri::kUnknown) {
              failure = Status::Internal(
                  "selection formula unresolved after pass 2");
              return;
            }
            if (value == bexpr::Tri::kTrue) {
              result.selected_by_fragment[f].push_back(node);
              ++selected_here;
            }
          }
        }
        eng.AddOps(ops);
        cluster.Compute(s, ops, [&, s, selected_here]() {
          // The selected node ids are the query result; 8 bytes each.
          cluster.Send(s, coord, 8 + 8 * selected_here, "result",
                       [&]() { --pending_down; });
        });
      });
    }
  };

  // ---- Solve at the coordinator, then start pass 2 ----
  auto compose = [&]() {
    const uint64_t solve_ops = n * set.live_count();
    eng.AddOps(solve_ops);
    cluster.Compute(coord, solve_ops, [&]() {
      Result<bexpr::Assignment> solved =
          bexpr::SolveBottomUp(&eng.factory(), equations,
                               set.ChildrenTable(), set.root_fragment());
      if (!solved.ok()) {
        failure = solved.status();
        return;
      }
      assignment = std::move(*solved);
      downward();
    });
  };

  // ---- Pass 1: ParBoX partial evaluation + per-node retention ----
  for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
    if (st.fragments_at(s).empty()) continue;
    cluster.RecordVisit(s);  // first visit
    cluster.Send(coord, s, eng.query_bytes(), "query", [&, s]() {
      for (frag::FragmentId f : st.fragments_at(s)) {
        xpath::EvalCounters counters;
        xpath::ExprDomain dom{&eng.factory()};
        auto vectors = xpath::BottomUpEvalHooked(
            dom, q, *set.fragment(f).root,
            [&](const xml::Node& vnode, std::vector<bexpr::ExprId>* v,
                std::vector<bexpr::ExprId>* dv) {
              v->resize(n);
              dv->resize(n);
              for (size_t i = 0; i < n; ++i) {
                (*v)[i] = eng.factory().Var(
                    {vnode.fragment_ref, bexpr::VectorKind::kV,
                     static_cast<int32_t>(i)});
                (*dv)[i] = eng.factory().Var(
                    {vnode.fragment_ref, bexpr::VectorKind::kDV,
                     static_cast<int32_t>(i)});
              }
            },
            [&](const xml::Node& node,
                const std::vector<bexpr::ExprId>& vv) {
              retained[f].per_node.emplace_back(&node, vv[q.root()]);
            },
            &counters);
        eng.AddOps(counters.ops);
        bexpr::FragmentEquations eq;
        eq.fragment = f;
        eq.v = std::move(vectors.v);
        eq.cv = std::move(vectors.cv);
        eq.dv = std::move(vectors.dv);
        const uint64_t bytes = TripletWireBytes(eng.factory(), eq);
        equations[f] = std::move(eq);
        cluster.Compute(s, counters.ops, [&, s, bytes]() {
          cluster.Send(s, coord, bytes, "triplet", [&]() {
            if (--pending_up == 0) compose();
          });
        });
      }
    });
  }

  cluster.Run();
  PARBOX_RETURN_IF_ERROR(failure);
  for (const auto& group : result.selected_by_fragment) {
    result.total_selected += group.size();
  }
  result.report = eng.Finish("SelectionParBoX", result.total_selected > 0,
                             3 * n * set.live_count());
  return result;
}

}  // namespace parbox::core
