#include "core/path_selection.h"

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>

#include "boolexpr/solver.h"
#include "core/engine.h"
#include "core/partial_eval.h"
#include "exec/codec.h"
#include "xpath/eval.h"

namespace parbox::core {

std::vector<const xml::Node*> PathSelectionResult::AllSelected() const {
  std::vector<const xml::Node*> out;
  for (const auto& group : selected_by_fragment) {
    out.insert(out.end(), group.begin(), group.end());
  }
  return out;
}

namespace {

using frag::FragmentId;
using xpath::NormKind;
using xpath::NormQuery;
using xpath::SubQueryId;

/// Output of the downward pass over one fragment.
struct DownOutput {
  std::vector<const xml::Node*> selected;
  /// Root context bits for each sub-fragment a match crosses into.
  std::unordered_map<FragmentId, std::vector<char>> child_ctx;
  uint64_t ops = 0;
};

/// Propagate match contexts through fragment `f`, starting from
/// `root_ctx` (bit i = "a partial match arrives at the fragment root
/// needing sub-query i"). `values` resolves the (V, DV) vectors of
/// f's sub-fragments (from the upward pass).
DownOutput PropagateDown(const NormQuery& q,
                         const frag::FragmentSet& set, FragmentId f,
                         const std::vector<char>& root_ctx,
                         const bexpr::Assignment& values) {
  const size_t n = q.size();
  DownOutput out;

  // Re-derive every element's V vector in the truth domain (the second
  // visit's recomputation; sub-fragment values come from `values`).
  std::unordered_map<const xml::Node*, std::vector<char>> v_of;
  xpath::BoolDomain dom;
  xpath::EvalCounters counters;
  xpath::BottomUpEvalHooked(
      dom, q, *set.fragment(f).root,
      [&](const xml::Node& vnode, std::vector<bool>* v,
          std::vector<bool>* dv) {
        v->resize(n);
        dv->resize(n);
        for (size_t i = 0; i < n; ++i) {
          (*v)[i] = values
                        .Get({vnode.fragment_ref, bexpr::VectorKind::kV,
                              static_cast<int32_t>(i)})
                        .value_or(false);
          (*dv)[i] = values
                         .Get({vnode.fragment_ref, bexpr::VectorKind::kDV,
                               static_cast<int32_t>(i)})
                         .value_or(false);
        }
      },
      [&](const xml::Node& node, const std::vector<bool>& vv) {
        std::vector<char> bits(n);
        for (size_t i = 0; i < n; ++i) bits[i] = vv[i] ? 1 : 0;
        v_of.emplace(&node, std::move(bits));
      },
      &counters);
  out.ops = counters.ops;

  // Context worklist. A (node, i) bit is processed at most once.
  std::unordered_map<const xml::Node*, std::vector<char>> ctx;
  std::vector<std::pair<const xml::Node*, SubQueryId>> work;
  auto push = [&](const xml::Node* node, SubQueryId i) {
    std::vector<char>& bits = ctx[node];
    if (bits.empty()) bits.assign(n, 0);
    if (bits[i]) return;
    bits[i] = 1;
    work.emplace_back(node, i);
  };
  auto push_child_ctx = [&](FragmentId child, SubQueryId i) {
    std::vector<char>& bits = out.child_ctx[child];
    if (bits.empty()) bits.assign(n, 0);
    bits[i] = 1;
  };

  const xml::Node* froot = set.fragment(f).root;
  for (size_t i = 0; i < root_ctx.size(); ++i) {
    if (root_ctx[i]) push(froot, static_cast<SubQueryId>(i));
  }

  while (!work.empty()) {
    auto [v, i] = work.back();
    work.pop_back();
    ++out.ops;
    const NormQuery::SubQuery& sq = q.at(i);
    const std::vector<char>& vbits = v_of.at(v);
    switch (sq.kind) {
      case NormKind::kMark:
        out.selected.push_back(v);  // the ctx bit dedups
        break;
      case NormKind::kSeq:
        // ǫ[q_a]/q_b: the qualifier must hold here for the match to
        // continue along the spine.
        if (vbits[sq.a]) push(v, sq.b);
        break;
      case NormKind::kChild:
        for (const xml::Node* w = v->first_child; w != nullptr;
             w = w->next_sibling) {
          if (w->is_element()) {
            if (v_of.at(w)[sq.a]) push(w, sq.a);
          } else if (w->is_virtual()) {
            if (values
                    .Get({w->fragment_ref, bexpr::VectorKind::kV, sq.a})
                    .value_or(false)) {
              push_child_ctx(w->fragment_ref, sq.a);
            }
          }
        }
        break;
      case NormKind::kDesc:
        // Matches may land here or anywhere below: consume at this
        // node if the operand holds, and flood the Desc bit downward
        // (into sub-fragments only where the upward pass proved a
        // match exists).
        if (vbits[sq.a]) push(v, sq.a);
        for (const xml::Node* w = v->first_child; w != nullptr;
             w = w->next_sibling) {
          if (w->is_element()) {
            push(w, i);
          } else if (w->is_virtual()) {
            if (values
                    .Get({w->fragment_ref, bexpr::VectorKind::kDV, sq.a})
                    .value_or(false)) {
              push_child_ctx(w->fragment_ref, i);
            }
          }
        }
        break;
      default:
        // Boolean leaves/connectives carry no spine continuation.
        break;
    }
  }
  return out;
}

}  // namespace

Result<PathSelectionResult> RunPathSelection(
    const frag::FragmentSet& set, const frag::SourceTree& st,
    const xpath::SelectionQuery& selection, const EngineOptions& options) {
  const NormQuery& q = selection.query;
  PARBOX_ASSIGN_OR_RETURN(
      Session session,
      Session::Create(&set, &st, SessionOptions{options.network}));
  PARBOX_ASSIGN_OR_RETURN(PreparedQuery prepared, session.Prepare(&q));
  Engine eng(&session, q, prepared.query_bytes(), session.plan());
  exec::ExecBackend& backend = session.backend();
  const sim::SiteId coord = eng.coordinator();
  const size_t n = q.size();

  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  PathSelectionResult result;
  result.selected_by_fragment.resize(set.table_size());
  size_t pending_up = set.live_count();
  // Written once at the coordinator, read-only in every site context
  // of the down pass (ordered by the context deliveries).
  bexpr::Assignment values;
  // The down pass fans out over independent branches, which may run
  // concurrently on a parallel backend: the per-site second-visit gate
  // must be atomic.
  std::vector<std::atomic<char>> down_visited(
      static_cast<size_t>(st.num_sites()));
  Status failure = Status::OK();  // written in coordinator context only

  // ---- Down pass: context arrives at fragment f ----
  std::function<void(FragmentId, std::shared_ptr<std::vector<char>>)>
      deliver_ctx = [&](FragmentId f,
                        std::shared_ptr<std::vector<char>> ctx_bits) {
        const sim::SiteId s = st.site_of(f);
        if (down_visited[static_cast<size_t>(s)].exchange(1) == 0) {
          backend.RecordVisit(s);  // the site's second (and last) visit
        }
        DownOutput down =
            PropagateDown(q, set, f, *ctx_bits, values);
        eng.AddOps(down.ops);
        result.selected_by_fragment[f] = std::move(down.selected);
        const auto child_ctx =
            std::make_shared<std::unordered_map<FragmentId,
                                                std::vector<char>>>(
                std::move(down.child_ctx));
        backend.Compute(s, down.ops, [&, s, f, child_ctx]() {
          // Result ids go back to the coordinator (8 bytes per node).
          backend.Send(
              s, coord,
              exec::Parcel::OfSize(
                  8 + 8 * result.selected_by_fragment[f].size()),
              "result", [](exec::Parcel) {});
          // Contexts continue to the sub-fragments a match crosses.
          for (auto& [child, bits] : *child_ctx) {
            auto boxed =
                std::make_shared<std::vector<char>>(std::move(bits));
            const uint64_t bytes = 8 + (n + 7) / 8;
            backend.Send(s, st.site_of(child),
                         exec::Parcel::OfSize(bytes), "context",
                         [&, child, boxed](exec::Parcel) {
                           deliver_ctx(child, boxed);
                         });
          }
        });
      };

  // ---- Solve, then kick off the down pass at the root fragment ----
  auto compose = [&]() {
    const uint64_t solve_ops = n * set.live_count();
    eng.AddOps(solve_ops);
    backend.Compute(coord, solve_ops, [&]() {
      Result<bexpr::Assignment> solved =
          bexpr::SolveBottomUp(&eng.factory(), equations,
                               set.ChildrenTable(), set.root_fragment());
      if (!solved.ok()) {
        failure = solved.status();
        return;
      }
      values = std::move(*solved);
      auto root_ctx = std::make_shared<std::vector<char>>(n, 0);
      (*root_ctx)[q.root()] = 1;
      const uint64_t bytes = 8 + (n + 7) / 8;
      backend.Send(coord, st.site_of(set.root_fragment()),
                   exec::Parcel::OfSize(bytes), "context",
                   [&, root_ctx](exec::Parcel) {
                     deliver_ctx(set.root_fragment(), root_ctx);
                   });
    });
  };

  // ---- Up pass: plain ParBoX ----
  for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
    if (st.fragments_at(s).empty()) continue;
    backend.RecordVisit(s);  // first visit
    backend.Send(coord, s, exec::Parcel::OfSize(eng.query_bytes()),
                 "query", [&, s](exec::Parcel) {
      for (FragmentId f : st.fragments_at(s)) {
        xpath::EvalCounters counters;
        bexpr::ExprFactory& site_factory = backend.site_factory(s);
        auto eq = std::make_shared<bexpr::FragmentEquations>(
            PartialEvalFragment(&site_factory, q, set, f, &counters));
        eng.AddOps(counters.ops);
        exec::Parcel parcel = exec::MakeTripletParcel(site_factory, eq);
        backend.Compute(s, counters.ops,
                        [&, s, parcel = std::move(parcel)]() mutable {
          backend.Send(s, coord, std::move(parcel), "triplet",
                       [&](exec::Parcel delivered) {
            Result<bexpr::FragmentEquations> got =
                exec::TakeTriplet(std::move(delivered), &eng.factory());
            if (!got.ok()) {
              failure = got.status();
              return;
            }
            equations[got->fragment] = std::move(*got);
            if (--pending_up == 0) compose();
          });
        });
      }
    });
  }

  backend.Drain();
  PARBOX_RETURN_IF_ERROR(failure);
  for (const auto& group : result.selected_by_fragment) {
    result.total_selected += group.size();
  }
  result.report = eng.Finish("PathSelectionParBoX",
                             result.total_selected > 0,
                             3 * n * set.live_count());
  return result;
}

Result<PathSelectionResult> RunPathSelection(const frag::FragmentSet& set,
                                             const frag::SourceTree& st,
                                             std::string_view path_text,
                                             const EngineOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(xpath::SelectionQuery selection,
                          xpath::CompileSelection(path_text));
  return RunPathSelection(set, st, selection, options);
}

}  // namespace parbox::core
