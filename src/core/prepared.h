// PreparedQuery: a query compiled once by Session::Prepare and
// executable many times via Session::Execute.
//
// Prepare does everything that is per-query rather than per-execution —
// parse, normalize, QList construction, validation against the
// session's deployment, canonical fingerprinting, wire-size
// measurement — so repeated executions pay none of it. A PreparedQuery
// is bound to the Session that prepared it (Execute rejects handles
// from other sessions) and stays valid for the session's lifetime, across
// any number of interleaved executions of other queries.
//
// Handles are cheap to copy: the compiled QList is shared, not cloned.

#ifndef PARBOX_CORE_PREPARED_H_
#define PARBOX_CORE_PREPARED_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xpath/fingerprint.h"
#include "xpath/qlist.h"

namespace parbox::core {

class Session;

class PreparedQuery {
 public:
  /// Empty handle; valid() is false until assigned from a Prepare call.
  PreparedQuery() = default;

  bool valid() const { return query_ != nullptr; }

  /// The compiled, validated normal form. Precondition: valid().
  const xpath::NormQuery& query() const { return *query_; }

  /// Canonical digest of the normal form (cache / dedup key).
  const xpath::QueryFingerprint& fingerprint() const { return fp_; }

  /// Bytes to ship the query to a site (the |q| in traffic bounds).
  uint64_t query_bytes() const { return query_bytes_; }

  /// The surface text this was prepared from; empty when prepared from
  /// an already-compiled NormQuery.
  const std::string& text() const { return text_; }

 private:
  friend class Session;

  const xpath::NormQuery* query_ = nullptr;
  /// Set when the handle owns its compiled form (Prepare from text or
  /// from a NormQuery rvalue); null when borrowing a caller-owned query.
  std::shared_ptr<const xpath::NormQuery> owned_;
  xpath::QueryFingerprint fp_;
  uint64_t query_bytes_ = 0;
  std::string text_;
  /// Identity of the preparing Session (stable across Session moves).
  std::shared_ptr<const int> ticket_;
};

/// One-line summary (fingerprint, QList size, wire bytes, text).
std::string PreparedQueryToString(const PreparedQuery& q);

}  // namespace parbox::core

#endif  // PARBOX_CORE_PREPARED_H_
