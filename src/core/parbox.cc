// Algorithm ParBoX (Fig. 3): the paper's main contribution.
//
// Stage 1: the coordinator identifies, from the source tree, every
//          site holding at least one fragment and ships it the query.
// Stage 2: all sites partially evaluate the query over each of their
//          fragments in parallel (sites run concurrently; fragments on
//          one site serialize) and ship back the (V, CV, DV) triplets.
// Stage 3: the coordinator solves the resulting system of Boolean
//          equations with one bottom-up pass of the source tree.
//
// Guarantees (verified by tests): one visit per site; traffic
// O(|q|·card(F)) independent of |T|; total computation O(|q|·(|T| +
// card(F))).

#include <memory>

#include "core/engine.h"
#include "core/partial_eval.h"

namespace parbox::core {

Result<RunReport> RunParBoX(const frag::FragmentSet& set,
                            const frag::SourceTree& st,
                            const xpath::NormQuery& q,
                            const EngineOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(Engine eng, Engine::Create(set, st, q, options));
  sim::Cluster& cluster = eng.cluster();
  const sim::SiteId coord = eng.coordinator();

  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  size_t pending = set.live_count();
  bool answer = false;
  Status failure = Status::OK();

  // Stage 3, run once every triplet has arrived.
  auto compose = [&]() {
    const uint64_t solve_ops = q.size() * set.live_count();
    eng.AddOps(solve_ops);
    cluster.Compute(coord, solve_ops, [&]() {
      Result<bool> result =
          bexpr::SolveForAnswer(&eng.factory(), equations,
                                set.ChildrenTable(), set.root_fragment(),
                                q.root());
      if (result.ok()) {
        answer = *result;
      } else {
        failure = result.status();
      }
    });
  };

  // Stages 1 and 2.
  for (sim::SiteId s = 0; s < st.num_sites(); ++s) {
    if (st.fragments_at(s).empty()) continue;
    cluster.RecordVisit(s);  // the only visit this site will get
    cluster.Send(coord, s, eng.query_bytes(), "query", [&, s]() {
      for (frag::FragmentId f : st.fragments_at(s)) {
        // The real partial evaluation happens here; its measured cost
        // is charged to the site's serialized compute queue.
        xpath::EvalCounters counters;
        auto eq = std::make_shared<bexpr::FragmentEquations>(
            PartialEvalFragment(&eng.factory(), q, set, f, &counters));
        eng.AddOps(counters.ops);
        const uint64_t bytes = TripletWireBytes(eng.factory(), *eq);
        cluster.Compute(s, counters.ops, [&, s, eq, bytes]() {
          cluster.Send(s, coord, bytes, "triplet", [&, eq]() {
            equations[eq->fragment] = std::move(*eq);
            if (--pending == 0) compose();
          });
        });
      }
    });
  }

  cluster.Run();
  PARBOX_RETURN_IF_ERROR(failure);
  return eng.Finish("ParBoX", answer, 3 * q.size() * set.live_count());
}

}  // namespace parbox::core
