// Algorithm ParBoX (Fig. 3): the paper's main contribution.
//
// Stage 1: the coordinator identifies, from the prepared site plan,
//          every site holding at least one fragment and ships it the
//          query.
// Stage 2: all sites partially evaluate the query over each of their
//          fragments in parallel (sites run concurrently; fragments on
//          one site serialize) and ship back the (V, CV, DV) triplets.
// Stage 3: the coordinator solves the resulting system of Boolean
//          equations with one bottom-up pass of the source tree.
//
// Guarantees (verified by tests): one visit per site; traffic
// O(|q|·card(F)) independent of |T|; total computation O(|q|·(|T| +
// card(F))).
//
// Runs on any ExecBackend: site work interns into the site's factory
// and triplets cross to the coordinator as Coded parcels, so on a real
// thread pool stage 2 is genuine parallelism with the wire codec in
// between, while on the sim every event is bit-identical to the
// pre-backend figures.

#include <memory>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/partial_eval.h"
#include "exec/codec.h"

namespace parbox::core {

namespace {

class ParBoXEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "parbox"; }
  std::string_view display_name() const override { return "ParBoX"; }
  std::string_view description() const override {
    return "parallel partial evaluation, one visit per site (Fig. 3)";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(2, ParBoXEvaluator);

Result<RunReport> ParBoXEvaluator::Run(Engine& eng) const {
  const frag::FragmentSet& set = eng.set();
  const xpath::NormQuery& q = eng.q();
  exec::ExecBackend& backend = eng.backend();
  const sim::SiteId coord = eng.coordinator();

  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  size_t pending = set.live_count();
  bool answer = false;
  Status failure = Status::OK();

  // Stage 3, run once every triplet has arrived. The solver walks the
  // plan's pre-built children table instead of rebuilding it per run.
  auto compose = [&]() {
    const uint64_t solve_ops = q.size() * set.live_count();
    eng.AddOps(solve_ops);
    backend.Compute(coord, solve_ops, [&]() {
      Result<bool> result =
          bexpr::SolveForAnswer(&eng.factory(), equations,
                                eng.plan().children, set.root_fragment(),
                                q.root());
      if (result.ok()) {
        answer = *result;
      } else {
        failure = result.status();
      }
    });
  };

  // Stages 1 and 2, over the pre-partitioned per-site plan.
  for (const auto& [s, fragments] : eng.plan().site_fragments) {
    backend.RecordVisit(s);  // the only visit this site will get
    backend.Send(coord, s, exec::Parcel::OfSize(eng.query_bytes()),
                 "query", [&, s, &fragments = fragments](exec::Parcel) {
      for (frag::FragmentId f : fragments) {
        // The real partial evaluation happens here, in the site's
        // context and into the site's factory; its measured cost is
        // charged to the site's serialized compute queue.
        xpath::EvalCounters counters;
        bexpr::ExprFactory& site_factory = backend.site_factory(s);
        auto eq = std::make_shared<bexpr::FragmentEquations>(
            PartialEvalFragment(&site_factory, q, set, f, &counters));
        eng.AddOps(counters.ops);
        exec::Parcel parcel = exec::MakeTripletParcel(site_factory, eq);
        backend.Compute(s, counters.ops,
                        [&, s, parcel = std::move(parcel)]() mutable {
          backend.Send(s, coord, std::move(parcel), "triplet",
                       [&](exec::Parcel delivered) {
            Result<bexpr::FragmentEquations> got =
                exec::TakeTriplet(std::move(delivered), &eng.factory());
            if (!got.ok()) {
              failure = got.status();
              return;
            }
            equations[got->fragment] = std::move(*got);
            if (--pending == 0) compose();
          });
        });
      }
    });
  }

  backend.Drain();
  PARBOX_RETURN_IF_ERROR(failure);
  return eng.Finish(std::string(display_name()), answer,
                    3 * q.size() * set.live_count());
}

}  // namespace

}  // namespace parbox::core
