// Algorithm ParBoX (Fig. 3): the paper's main contribution.
//
// Stage 1: the coordinator identifies, from the prepared site plan,
//          every site holding at least one fragment and ships it the
//          query.
// Stage 2: all sites partially evaluate the query over each of their
//          fragments in parallel (sites run concurrently; fragments on
//          one site serialize) and ship back the (V, CV, DV) triplets.
// Stage 3: the coordinator solves the resulting system of Boolean
//          equations with one bottom-up pass of the source tree.
//
// Guarantees (verified by tests): one visit per site; traffic
// O(|q|·card(F)) independent of |T|; total computation O(|q|·(|T| +
// card(F))).

#include <memory>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/partial_eval.h"

namespace parbox::core {

namespace {

class ParBoXEvaluator final : public Evaluator {
 public:
  std::string_view name() const override { return "parbox"; }
  std::string_view display_name() const override { return "ParBoX"; }
  std::string_view description() const override {
    return "parallel partial evaluation, one visit per site (Fig. 3)";
  }
  Result<RunReport> Run(Engine& eng) const override;
};

PARBOX_REGISTER_EVALUATOR(2, ParBoXEvaluator);

Result<RunReport> ParBoXEvaluator::Run(Engine& eng) const {
  const frag::FragmentSet& set = eng.set();
  const xpath::NormQuery& q = eng.q();
  sim::Cluster& cluster = eng.cluster();
  const sim::SiteId coord = eng.coordinator();

  std::vector<bexpr::FragmentEquations> equations(set.table_size());
  size_t pending = set.live_count();
  bool answer = false;
  Status failure = Status::OK();

  // Stage 3, run once every triplet has arrived. The solver walks the
  // plan's pre-built children table instead of rebuilding it per run.
  auto compose = [&]() {
    const uint64_t solve_ops = q.size() * set.live_count();
    eng.AddOps(solve_ops);
    cluster.Compute(coord, solve_ops, [&]() {
      Result<bool> result =
          bexpr::SolveForAnswer(&eng.factory(), equations,
                                eng.plan().children, set.root_fragment(),
                                q.root());
      if (result.ok()) {
        answer = *result;
      } else {
        failure = result.status();
      }
    });
  };

  // Stages 1 and 2, over the pre-partitioned per-site plan.
  for (const auto& [s, fragments] : eng.plan().site_fragments) {
    cluster.RecordVisit(s);  // the only visit this site will get
    cluster.Send(coord, s, eng.query_bytes(), "query", [&, s]() {
      for (frag::FragmentId f : fragments) {
        // The real partial evaluation happens here; its measured cost
        // is charged to the site's serialized compute queue.
        xpath::EvalCounters counters;
        auto eq = std::make_shared<bexpr::FragmentEquations>(
            PartialEvalFragment(&eng.factory(), q, set, f, &counters));
        eng.AddOps(counters.ops);
        const uint64_t bytes = TripletWireBytes(eng.factory(), *eq);
        cluster.Compute(s, counters.ops, [&, s, eq, bytes]() {
          cluster.Send(s, coord, bytes, "triplet", [&, eq]() {
            equations[eq->fragment] = std::move(*eq);
            if (--pending == 0) compose();
          });
        });
      }
    });
  }

  cluster.Run();
  PARBOX_RETURN_IF_ERROR(failure);
  return eng.Finish(std::string(display_name()), answer,
                    3 * q.size() * set.live_count());
}

}  // namespace

}  // namespace parbox::core
