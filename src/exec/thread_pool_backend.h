// ThreadPoolBackend: the ExecBackend on real OS threads.
//
// The PDOM scenario of Sec. 1 — parbox as the query kernel of a
// centralized store — wants genuine parallelism, not a virtual clock:
// fragments of one large document evaluated by a persistent worker
// pool. This backend supplies the same substrate contract the
// deterministic simulation does, so every evaluator, the incremental
// update path, and QueryService rounds run on it unchanged:
//
//   * Persistent workers. N threads started once and reused across
//     executions (Session::Execute resets meters, not the pool). Sites
//     are sharded over workers (site -> worker = site mod N, the
//     coordinator site excepted), and each worker owns one pinned
//     hash-consing ExprFactory: site-context formula work never shares
//     mutable state across threads.
//   * Coordinator = the draining thread. Deliveries to the coordinator
//     site run on the thread inside Drain(), against the session's
//     factory — composition, solving, caching and report state stay
//     single-threaded, exactly as evaluators were written.
//   * Real wire codec. A Coded parcel crossing factory domains is
//     serialized in the sender's (worker's) context and decoded by the
//     receiver into its own factory — what distinct processes would do.
//     Same-factory hand-offs (the coordinator's own fragments) skip the
//     codec, like sim local delivery.
//   * Lock-free handoff. Mailboxes are Treiber stacks pushed with a
//     release CAS and drained by their single consumer with one
//     acquire exchange (reversed to FIFO); the mutex/cv pair only
//     parks an idle consumer. Queue operations carry the
//     happens-before edges the context contract promises.
//   * Race-free metering. Traffic is recorded into the *sending*
//     context's per-executor TrafficStats (the contract says Send runs
//     in `from`'s context) and merged once quiescent; visits are
//     relaxed atomics; busy time is measured per worker.
//   * Updates vs. in-flight reads. Worker tasks hold a shared document
//     lock; MutateExclusive (Session::Apply, QueryService::ApplyDelta)
//     takes the exclusive side, so a delta never lands mid-traversal.
//
// The clock is real: now() is seconds since Reset, timers fire on it,
// and Drain's return value is genuine wall time — the number
// bench_x9_backend_throughput gates. Virtual-time figures stay the
// sim's job; answers, visits, bytes, messages and ops are identical
// across backends (tests/backend_differential_test.cc).

#ifndef PARBOX_EXEC_THREAD_POOL_BACKEND_H_
#define PARBOX_EXEC_THREAD_POOL_BACKEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "exec/backend.h"

namespace parbox::exec {

class ThreadPoolBackend final : public ExecBackend {
 public:
  ThreadPoolBackend(const BackendConfig& config, int num_workers);
  ~ThreadPoolBackend() override;

  std::string_view name() const override { return "threads"; }
  int num_sites() const override { return num_sites_; }
  SiteId coordinator() const override { return coordinator_; }
  void SetCoordinator(SiteId site) override;
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Multi-document hosting: a fresh block of sites sharded over the
  /// SAME worker pool; `base + coordinator` joins the coordinator
  /// context (the Drain()ing thread) with `coordinator_factory` as its
  /// formula domain. Requires quiescence.
  Result<SiteId> AddNamespace(
      int num_sites, SiteId coordinator,
      bexpr::ExprFactory* coordinator_factory) override;

  bexpr::ExprFactory& site_factory(SiteId site) override {
    // Coordinator sites (one per hosted namespace) compose into their
    // own session's factory; worker sites intern into the worker's.
    if (bexpr::ExprFactory* f = coord_factory_of(site)) return *f;
    return *executor_of(site)->factory;
  }

  void Compute(SiteId site, uint64_t ops, Task done) override;
  void Send(SiteId from, SiteId to, Parcel parcel, std::string_view tag,
            DeliverFn deliver) override;
  void RecordVisit(SiteId site) override {
    visits_[static_cast<size_t>(site)].fetch_add(1,
                                                 std::memory_order_relaxed);
  }

  void ScheduleAt(double when, Task task) override;
  double now() const override;

  double Drain() override;
  void Reset() override;

  void MutateExclusive(const Task& mutate) override {
    std::unique_lock<std::shared_mutex> lock(doc_mutex_);
    mutate();
  }

  const sim::TrafficStats& traffic() const override;
  std::vector<uint64_t> visits() const override;
  uint64_t visits_at(SiteId site) const override {
    return visits_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }
  double total_busy_seconds() const override;
  void AddBackendStats(StatsRegistry* stats) const override;

 private:
  /// One execution context: a mailbox plus everything the context owns
  /// (factory, traffic meter, busy clock). Index -1 = the coordinator
  /// (consumer: the thread inside Drain); 0..N-1 = workers.
  struct Executor {
    struct TaskNode {
      Task task;
      TaskNode* next = nullptr;
    };
    /// Lock-free MPSC handoff: producers push with a release CAS; the
    /// one consumer takes the whole stack with an acquire exchange.
    std::atomic<TaskNode*> incoming{nullptr};
    /// Parking only — pushes into an empty mailbox notify.
    std::mutex m;
    std::condition_variable cv;

    bexpr::ExprFactory* factory = nullptr;  ///< owned for workers
    std::unique_ptr<bexpr::ExprFactory> owned_factory;
    sim::TrafficStats traffic;
    double busy_seconds = 0.0;     ///< written by the consumer only
    uint64_t tasks_run = 0;        ///< written by the consumer only
  };

  struct Timer {
    double when = 0.0;
    uint64_t seq = 0;
    Task task;
    bool operator>(const Timer& other) const {
      return std::tie(when, seq) > std::tie(other.when, other.seq);
    }
  };

  Executor* executor_of(SiteId site) {
    if (workers_.empty() || is_coordinator_site(site)) return &coord_;
    return workers_[static_cast<size_t>(site) % workers_.size()].get();
  }
  const Executor* executor_of(SiteId site) const {
    return const_cast<ThreadPoolBackend*>(this)->executor_of(site);
  }
  bool is_coordinator_site(SiteId site) const {
    return site >= 0 && static_cast<size_t>(site) < coord_factory_.size() &&
           coord_factory_[static_cast<size_t>(site)] != nullptr;
  }
  bexpr::ExprFactory* coord_factory_of(SiteId site) const {
    return site >= 0 && static_cast<size_t>(site) < coord_factory_.size()
               ? coord_factory_[static_cast<size_t>(site)]
               : nullptr;
  }

  /// Push onto `ex`'s mailbox (lock-free), waking its consumer if it
  /// might be parked. Accounts the task in outstanding_.
  void Enqueue(Executor* ex, Task task);
  /// Pop everything pushed so far, restoring FIFO order. Returns the
  /// head of a singly linked chain (caller runs + deletes).
  static Executor::TaskNode* TakeAll(Executor* ex);
  /// Run one drained chain in `ex`'s context. `locked` adds the shared
  /// document lock around each task (worker contexts).
  void RunChain(Executor* ex, Executor::TaskNode* chain, bool locked);
  void WorkerLoop(Executor* ex);
  void NotifyCoordinator();

  int num_sites_;
  SiteId coordinator_;
  Executor coord_;
  std::vector<std::unique_ptr<Executor>> workers_;
  std::vector<std::thread> threads_;
  /// Per site: the hosting session's factory for coordinator sites,
  /// nullptr for worker sites. Indexed by global site id; grown only
  /// while quiescent (AddNamespace).
  std::vector<bexpr::ExprFactory*> coord_factory_;
  /// One hosted namespace's site block; SetCoordinator re-homes
  /// within the block containing the named site, so re-homing one
  /// namespace never disturbs another's coordinator.
  struct Range {
    SiteId base = 0;
    int num_sites = 0;
    SiteId coordinator = 0;
  };
  std::vector<Range> ranges_;
  /// deque, not vector: AddNamespace grows it without relocating the
  /// atomics live RecordVisit calls may already reference.
  std::deque<std::atomic<uint64_t>> visits_;

  /// Tasks enqueued but not yet finished, across every executor; 0
  /// with empty mailboxes and timer heap means quiescent.
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<bool> stop_{false};

  /// Site-work shared / mutation exclusive (see MutateExclusive).
  std::shared_mutex doc_mutex_;

  /// Coordinator-context timers (admission windows, arrivals), on the
  /// real clock. Touched only by the coordinator thread.
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      timers_;
  uint64_t next_timer_seq_ = 0;

  std::chrono::steady_clock::time_point epoch_;

  /// Merged-traffic cache for traffic(); rebuilt when quiescent.
  mutable sim::TrafficStats merged_traffic_;
};

}  // namespace parbox::exec

#endif  // PARBOX_EXEC_THREAD_POOL_BACKEND_H_
