#include "exec/host.h"

namespace parbox::exec {

Result<std::unique_ptr<BackendHost>> BackendHost::Create(
    std::string_view spec, const sim::NetworkParams& network) {
  BackendConfig config;
  config.num_sites = 0;   // namespaces grow the substrate on demand
  config.coordinator = -1;
  config.network = network;
  config.coordinator_factory = nullptr;
  PARBOX_ASSIGN_OR_RETURN(
      std::unique_ptr<ExecBackend> backend,
      ExecBackendRegistry::Instance().CreateOrError(spec, config));
  auto host = std::unique_ptr<BackendHost>(new BackendHost());
  host->spec_ = std::string(spec);
  host->backend_ = std::move(backend);
  return host;
}

Result<std::unique_ptr<ExecBackend>> BackendHost::AddNamespace(
    const BackendConfig& config) {
  PARBOX_ASSIGN_OR_RETURN(
      SiteId base,
      backend_->AddNamespace(config.num_sites, config.coordinator,
                             config.coordinator_factory));
  const std::string prefix = "d" + std::to_string(next_namespace_++) + ".";
  return std::unique_ptr<ExecBackend>(
      new NamespaceBackend(backend_.get(), base, config.num_sites,
                           config.coordinator, prefix));
}

NamespaceBackend::NamespaceBackend(ExecBackend* shared, SiteId base,
                                   int num_sites, SiteId coordinator,
                                   std::string prefix)
    : shared_(shared),
      base_(base),
      num_sites_(num_sites),
      coordinator_(coordinator),
      prefix_(std::move(prefix)) {
  CaptureBaseline();
}

void NamespaceBackend::SetCoordinator(SiteId site) {
  coordinator_ = site;
  shared_->SetCoordinator(base_ + site);
}

void NamespaceBackend::Send(SiteId from, SiteId to, Parcel parcel,
                            std::string_view tag, DeliverFn deliver) {
  // The namespace prefix makes this view's share of the substrate's
  // merged traffic exactly separable; traffic() strips it again.
  std::string prefixed = prefix_;
  prefixed += tag;
  shared_->Send(base_ + from, base_ + to, std::move(parcel), prefixed,
                std::move(deliver));
}

void NamespaceBackend::CaptureBaseline() {
  clock_base_ = shared_->now();
  baseline_busy_ = shared_->total_busy_seconds();
  baseline_visits_.assign(static_cast<size_t>(num_sites_), 0);
  baseline_into_.assign(static_cast<size_t>(num_sites_), 0);
  const sim::TrafficStats& t = shared_->traffic();
  for (int s = 0; s < num_sites_; ++s) {
    baseline_visits_[static_cast<size_t>(s)] =
        shared_->visits_at(base_ + s);
    baseline_into_[static_cast<size_t>(s)] = t.bytes_into(base_ + s);
  }
  baseline_tags_.clear();
  for (size_t i = 0; i < t.tag_count(); ++i) {
    const std::string_view tag = t.tag_name(i);
    if (tag.substr(0, prefix_.size()) != prefix_) continue;
    baseline_tags_[std::string(tag)] = {t.tag_bytes(i), t.tag_messages(i)};
  }
}

const sim::TrafficStats& NamespaceBackend::traffic() const {
  scoped_.Reset();
  const sim::TrafficStats& t = shared_->traffic();
  for (size_t i = 0; i < t.tag_count(); ++i) {
    const std::string_view tag = t.tag_name(i);
    if (tag.substr(0, prefix_.size()) != prefix_) continue;
    uint64_t base_bytes = 0;
    uint64_t base_msgs = 0;
    if (auto it = baseline_tags_.find(tag); it != baseline_tags_.end()) {
      base_bytes = it->second.first;
      base_msgs = it->second.second;
    }
    const uint64_t bytes = t.tag_bytes(i) - base_bytes;
    const uint64_t messages = t.tag_messages(i) - base_msgs;
    // Skip all-baseline tags: a dedicated backend's Reset forgets its
    // tag registry, so the scoped view must not report phantom
    // zero-count tags from before the local rewind.
    if (bytes == 0 && messages == 0) continue;
    scoped_.AddTagCounts(tag.substr(prefix_.size()), bytes, messages);
  }
  for (int s = 0; s < num_sites_; ++s) {
    const uint64_t into = t.bytes_into(base_ + s) -
                          baseline_into_[static_cast<size_t>(s)];
    if (into > 0) scoped_.AddBytesInto(s, into);
  }
  return scoped_;
}

std::vector<uint64_t> NamespaceBackend::visits() const {
  std::vector<uint64_t> out(static_cast<size_t>(num_sites_), 0);
  for (int s = 0; s < num_sites_; ++s) {
    out[static_cast<size_t>(s)] = shared_->visits_at(base_ + s) -
                                  baseline_visits_[static_cast<size_t>(s)];
  }
  return out;
}

}  // namespace parbox::exec
