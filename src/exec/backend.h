// ExecBackend: the pluggable execution substrate under Session, the
// evaluators, and QueryService.
//
// Every distributed algorithm in this repository needs the same three
// things from whatever actually runs it: dispatch per-site work units,
// transport payloads (serialized triplets, control hops) between sites
// and the coordinator, and meter traffic / visits / clock. ExecBackend
// captures exactly that, so one evaluator implementation runs on
//
//   * SimBackend        — the deterministic simulated cluster
//                         (sim/cluster.h): virtual clock, bit-identical
//                         figures; the differential oracle; and
//   * ThreadPoolBackend — a persistent OS-thread worker pool: genuine
//                         parallelism for the PDOM scenario of Sec. 1,
//                         where parbox is the query kernel of a
//                         centralized store.
//
// ## The execution-context contract
//
// Each site has an *execution context*. A backend guarantees:
//
//   1. Tasks of one site never run concurrently with each other (a
//      site's compute queue is serial, as in the paper's Experiment 4).
//   2. `Send(from, to, ...)`'s deliver callback runs in `to`'s context;
//      `Compute(site, ...)`'s done callback runs in `site`'s context.
//   3. `Send` and `Compute` must be invoked from `from`'s / the
//      enclosing context (the coordinator's, before Drain) — true of
//      every evaluator, and what lets ThreadPoolBackend keep metering
//      lock-free.
//   4. Formula work performed in a site's context must intern into
//      `site_factory(site)`. On SimBackend every site shares the
//      session's factory; on ThreadPoolBackend each worker owns one,
//      and the coordinator site uses the session's.
//   5. Payloads holding factory-relative data (ExprIds) must be built
//      with Parcel::Coded so the backend can run the wire codec when a
//      message crosses factory domains. Enqueue/dequeue pairs establish
//      happens-before, so plain data handed off through parcels (or
//      written strictly before a Send and read only after its
//      delivery) needs no further synchronization.
//
// Evaluator code that follows the contract is substrate-agnostic; the
// differential suite (tests/backend_differential_test.cc) holds every
// registered evaluator to bit-identical answers on both backends.

#ifndef PARBOX_EXEC_BACKEND_H_
#define PARBOX_EXEC_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "boolexpr/expr.h"
#include "common/stats.h"
#include "common/status.h"
#include "sim/cluster.h"
#include "sim/traffic.h"

namespace parbox::exec {

using SiteId = sim::SiteId;

/// A message payload crossing between execution contexts. Always knows
/// its wire size (what the transport meters); carries the content as a
/// typed local value, as wire bytes, or both:
///
///   * OfSize  — metering only; the receiver reconstructs the content
///               from shared state (query broadcasts, control hops).
///   * Plain   — a typed value with no factory-relative ids; crosses by
///               value on every backend (e.g. resolved bool vectors).
///   * Coded   — a typed value holding ExprIds plus its wire encoder.
///               Backends whose sender and receiver share a factory
///               pass the value through; others call Encode() in the
///               *sender's* context and deliver bytes the receiver
///               decodes into its own factory (exec/codec.h).
class Parcel {
 public:
  Parcel() = default;

  static Parcel OfSize(uint64_t wire_bytes) {
    Parcel p;
    p.wire_bytes_ = wire_bytes;
    return p;
  }

  template <typename T>
  static Parcel Plain(std::shared_ptr<T> value, uint64_t wire_bytes) {
    Parcel p;
    p.local_ = std::static_pointer_cast<void>(std::move(value));
    p.wire_bytes_ = wire_bytes;
    return p;
  }

  template <typename T>
  static Parcel Coded(std::shared_ptr<T> value, uint64_t wire_bytes,
                      std::function<std::string()> encode) {
    Parcel p;
    p.local_ = std::static_pointer_cast<void>(std::move(value));
    p.wire_bytes_ = wire_bytes;
    p.encode_ = std::move(encode);
    return p;
  }

  /// Receiver-side reconstruction of a parcel whose content arrived as
  /// wire bytes from another process (exec/process_backend.h): behaves
  /// exactly like a Coded parcel after Encode() — the receiver's
  /// Take* codec decodes it into its own factory.
  static Parcel FromWire(std::string wire, uint64_t wire_bytes) {
    Parcel p;
    p.wire_ = std::move(wire);
    p.has_wire_ = true;
    p.wire_bytes_ = wire_bytes;
    return p;
  }

  /// Bytes this payload occupies on the wire (the metered quantity;
  /// envelope framing such as tags or routing ids is not counted,
  /// matching sim::Cluster's accounting).
  uint64_t wire_bytes() const { return wire_bytes_; }

  bool has_local() const { return local_ != nullptr; }
  template <typename T>
  std::shared_ptr<T> local() const {
    return std::static_pointer_cast<T>(local_);
  }

  bool has_wire() const { return has_wire_; }
  const std::string& wire() const { return wire_; }

  /// True iff this parcel holds factory-relative data that must run
  /// the wire codec to cross into a different factory's context.
  bool needs_encoding() const { return encode_ != nullptr; }

  /// Backend-side, sender context: materialize the wire bytes and drop
  /// the local value (its ids are meaningless to the receiver).
  void Encode() {
    if (!encode_) return;
    wire_ = encode_();
    has_wire_ = true;
    local_.reset();
    encode_ = nullptr;
  }

  /// Trace metadata (obs/trace.h): stamped by the sender's tracing
  /// layer, read back in the destination's context to re-establish the
  /// message's causal context. Rides the parcel across every backend
  /// unchanged; 0 means untraced. Not counted in wire_bytes (like the
  /// tag/routing envelope).
  void set_trace(uint64_t trace_id, uint64_t span_id) {
    trace_id_ = trace_id;
    trace_span_ = span_id;
  }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t trace_span() const { return trace_span_; }

 private:
  std::shared_ptr<void> local_;
  std::function<std::string()> encode_;
  std::string wire_;
  uint64_t wire_bytes_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t trace_span_ = 0;
  bool has_wire_ = false;
};

/// Everything a backend needs to stand up a deployment's substrate.
struct BackendConfig {
  int num_sites = 1;
  /// The site storing the root fragment; deliveries to it run in the
  /// coordinator's context (the thread that calls Drain).
  SiteId coordinator = 0;
  sim::NetworkParams network{};
  /// The coordinator's (session's) hash-consing factory; triplets are
  /// composed and solved here. Must outlive the backend AND keep its
  /// address (Session heap-holds it so moves don't relocate it).
  bexpr::ExprFactory* coordinator_factory = nullptr;
};

class ExecBackend {
 public:
  using Task = std::function<void()>;
  using DeliverFn = std::function<void(Parcel)>;

  virtual ~ExecBackend() = default;

  /// Registry name ("sim", "threads").
  virtual std::string_view name() const = 0;
  virtual int num_sites() const = 0;
  virtual SiteId coordinator() const = 0;
  /// The deployment was re-placed (source-tree rebind): deliveries to
  /// the new coordinator site run in coordinator context from now on.
  /// On a multi-namespace backend, `site` re-homes the coordinator of
  /// the namespace containing it. Only between runs (the backend must
  /// be quiescent).
  virtual void SetCoordinator(SiteId site) = 0;

  /// Multi-document hosting: grow the substrate by `num_sites` fresh
  /// global sites forming a new namespace, so several deployments
  /// share one worker pool / one virtual clock instead of standing up
  /// one cluster each. `coordinator` (namespace-local) names the site
  /// whose deliveries must run in coordinator context, with formula
  /// work interned into `*coordinator_factory` (the owning session's;
  /// must outlive the backend and keep its address). Returns the
  /// namespace's base global site id — the namespace's local site s is
  /// global site base + s. Requires quiescence. Backends that cannot
  /// host more than their construction-time sites return
  /// FailedPrecondition (the default).
  virtual Result<SiteId> AddNamespace(int num_sites, SiteId coordinator,
                                      bexpr::ExprFactory* coordinator_factory);

  /// Factory for formula work performed in `site`'s context.
  virtual bexpr::ExprFactory& site_factory(SiteId site) = 0;

  /// Enqueue `ops` abstract kernel operations on `site`'s serial
  /// queue; `done` runs in `site`'s context after them.
  virtual void Compute(SiteId site, uint64_t ops, Task done) = 0;

  /// Transport `parcel` from `from` to `to`; `deliver` runs in `to`'s
  /// context. Local (from == to) hand-offs are free and unmetered.
  virtual void Send(SiteId from, SiteId to, Parcel parcel,
                    std::string_view tag, DeliverFn deliver) = 0;

  /// Count a work-initiating contact of `site` (safe from any context).
  virtual void RecordVisit(SiteId site) = 0;

  /// Run `task` in coordinator context once now() >= `when`. Must be
  /// called from coordinator context (admission windows, arrivals).
  virtual void ScheduleAt(double when, Task task) = 0;
  /// The backend clock: virtual seconds on the sim, real seconds since
  /// Reset on the thread pool.
  virtual double now() const = 0;

  /// Drive all outstanding work (and due timers) to completion; blocks
  /// the calling (coordinator) thread and returns the makespan.
  virtual double Drain() = 0;

  /// Rewind meters and clock to a fresh state between executions.
  /// Interned site-factory formulas persist, mirroring the session
  /// factory's lifetime. Requires quiescence (after Drain).
  virtual void Reset() = 0;

  /// Run `mutate` exclusively against in-flight site work: site-context
  /// tasks hold a shared document lock, `mutate` the exclusive one.
  /// A single-threaded backend runs it directly. Call from coordinator
  /// context only.
  virtual void MutateExclusive(const Task& mutate) = 0;

  // ---- Metering (stable once quiescent) ----

  /// Merged traffic across every context.
  virtual const sim::TrafficStats& traffic() const = 0;
  virtual std::vector<uint64_t> visits() const = 0;
  virtual uint64_t visits_at(SiteId site) const = 0;
  /// Sum of busy time across sites (virtual on sim, measured on
  /// threads) — the "total computation" rows of Fig. 4.
  virtual double total_busy_seconds() const = 0;
  /// Backend-specific report counters ("sim.events", "exec.tasks").
  virtual void AddBackendStats(StatsRegistry* stats) const = 0;

  /// Monotonic per-site recovery counter: bumped when the remote
  /// state backing `site`'s context was lost (the process backend's
  /// hosting daemon restarted). Consumers (Session::plan) snapshot
  /// epochs and re-ship a site's fragment state when its epoch
  /// advances. In-process backends' site state cannot vanish, so the
  /// default is a constant 0.
  virtual uint64_t RecoveryEpoch(SiteId site) const {
    (void)site;
    return 0;
  }

  /// The underlying deterministic cluster, or nullptr when this
  /// backend is not the simulation (tests that assert virtual-clock
  /// specifics guard on this).
  virtual sim::Cluster* sim_cluster() { return nullptr; }
};

/// Name -> factory registry of every linked-in backend, mirroring the
/// EvaluatorRegistry UX: unknown specs error with the registered names
/// listed.
class ExecBackendRegistry {
 public:
  /// `arg` is the spec suffix after ':' ("8" in "threads:8"), empty
  /// when absent.
  using Factory = Result<std::unique_ptr<ExecBackend>> (*)(
      const BackendConfig& config, std::string_view arg);

  static ExecBackendRegistry& Instance();

  /// `grammar` is the full spec grammar shown to users ("threads[:W]",
  /// "proc[:N[,tcp]]"); equal to `name` when the backend takes no
  /// options.
  void Register(int order, std::string name, std::string grammar,
                Factory factory);

  std::vector<std::string> Names() const;
  std::string NamesJoined(char sep = '|') const;
  /// The registered spec grammar for `name` (`name` itself if unknown).
  std::string Grammar(std::string_view name) const;

  /// Create from a spec "name" or "name:arg". Unknown names get an
  /// InvalidArgument listing every registered backend.
  Result<std::unique_ptr<ExecBackend>> CreateOrError(
      std::string_view spec, const BackendConfig& config) const;

  struct Registrar {
    Registrar(int order, std::string name, std::string grammar,
              Factory factory);
  };

 private:
  struct Entry {
    std::string name;
    std::string grammar;
    int order;
    Factory factory;
  };
  std::vector<Entry> entries_;  // kept sorted by (order, name)
};

#define PARBOX_REGISTER_EXEC_BACKEND(order, name, grammar, factory)  \
  static const ::parbox::exec::ExecBackendRegistry::Registrar        \
      parbox_exec_backend_registrar_##order(order, name, grammar, factory)

/// The session-default backend spec: $PARBOX_BACKEND if set (the
/// `ctest -L backends` jobs run existing suites under "threads" this
/// way), else "sim".
std::string DefaultBackendSpec();

}  // namespace parbox::exec

#endif  // PARBOX_EXEC_BACKEND_H_
