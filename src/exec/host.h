// BackendHost: one shared execution substrate hosting many documents.
//
// A catalog serving N documents must not stand up N clusters / N
// thread pools. The host owns ONE underlying ExecBackend (sim or
// threads, by registry spec) created with zero sites; every document
// (in fact, every Session joining the host) registers a *namespace* —
// a fresh block of global sites via ExecBackend::AddNamespace — and
// receives a NamespaceBackend: an ExecBackend view scoped to that
// block. Through the view,
//
//   * site ids translate local <-> global (local site s = global
//     base + s), so Session, the evaluators, and QueryService run
//     unchanged;
//   * traffic tags are namespace-prefixed on the wire ("d3.query"),
//     which makes the shared substrate's merged meters exactly
//     separable: the view's traffic()/visits()/now() present ONLY its
//     namespace's share, with tags unprefixed again — byte-identical
//     to what a dedicated backend would have metered (the
//     tests/catalog_test.cc differential);
//   * Reset() is local: the view snapshots baselines (meters + clock)
//     instead of rewinding the substrate under its neighbors, so
//     Session::Execute's rewind-per-run contract holds per namespace;
//   * Drain() drives the WHOLE substrate (work is shared; any
//     namespace's drain finishes everyone's outstanding work) and
//     reports the namespace-relative makespan.
//
// Lifetime: the host must outlive every view it handed out; views are
// owned by their sessions (Session's usual backend slot). Namespaces
// are never recycled — a closed document's sites simply go idle, a
// deliberate simplification (site ids are virtual; idle sim sites cost
// nothing, and thread-pool sites are sharded onto the same fixed
// workers regardless).

#ifndef PARBOX_EXEC_HOST_H_
#define PARBOX_EXEC_HOST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/backend.h"

namespace parbox::exec {

class BackendHost {
 public:
  /// Stand up the shared substrate from a registry spec ("sim",
  /// "threads[:N]"). Bad specs (unknown name, threads:0) fail HERE —
  /// catalog construction time — with the registered backends listed.
  static Result<std::unique_ptr<BackendHost>> Create(
      std::string_view spec, const sim::NetworkParams& network = {});

  /// Register a namespace of `config.num_sites` sites whose local
  /// `config.coordinator` runs in coordinator context against
  /// `config.coordinator_factory`, and return the scoped view. Called
  /// by Session when SessionOptions::host is set. Requires quiescence.
  Result<std::unique_ptr<ExecBackend>> AddNamespace(
      const BackendConfig& config);

  /// The underlying shared substrate (drive it directly to drain all
  /// documents at once).
  ExecBackend& backend() { return *backend_; }
  const ExecBackend& backend() const { return *backend_; }

  const std::string& spec() const { return spec_; }
  int num_namespaces() const { return next_namespace_; }

 private:
  BackendHost() = default;

  std::string spec_;
  std::unique_ptr<ExecBackend> backend_;
  int next_namespace_ = 0;
};

/// The scoped view one namespace sees (see file comment). Exposed for
/// tests; normal code receives it as a plain ExecBackend.
class NamespaceBackend final : public ExecBackend {
 public:
  /// `*shared` must outlive this view. `base` is the namespace's first
  /// global site id, `prefix` its traffic-tag prefix ("d3.").
  NamespaceBackend(ExecBackend* shared, SiteId base, int num_sites,
                   SiteId coordinator, std::string prefix);

  std::string_view name() const override { return shared_->name(); }
  int num_sites() const override { return num_sites_; }
  SiteId coordinator() const override { return coordinator_; }
  void SetCoordinator(SiteId site) override;

  bexpr::ExprFactory& site_factory(SiteId site) override {
    return shared_->site_factory(base_ + site);
  }

  void Compute(SiteId site, uint64_t ops, Task done) override {
    shared_->Compute(base_ + site, ops, std::move(done));
  }
  void Send(SiteId from, SiteId to, Parcel parcel, std::string_view tag,
            DeliverFn deliver) override;
  void RecordVisit(SiteId site) override {
    shared_->RecordVisit(base_ + site);
  }

  void ScheduleAt(double when, Task task) override {
    shared_->ScheduleAt(when + clock_base_, std::move(task));
  }
  double now() const override { return shared_->now() - clock_base_; }

  double Drain() override { return shared_->Drain() - clock_base_; }
  /// Local rewind: snapshots baselines instead of resetting the shared
  /// substrate under the other namespaces.
  void Reset() override { CaptureBaseline(); }

  void MutateExclusive(const Task& mutate) override {
    shared_->MutateExclusive(mutate);
  }

  const sim::TrafficStats& traffic() const override;
  std::vector<uint64_t> visits() const override;
  uint64_t visits_at(SiteId site) const override {
    return shared_->visits_at(base_ + site) -
           baseline_visits_[static_cast<size_t>(site)];
  }
  double total_busy_seconds() const override {
    // Busy time is per worker, not per namespace, on the thread pool;
    // this is the substrate's busy share since the last local Reset.
    return shared_->total_busy_seconds() - baseline_busy_;
  }
  void AddBackendStats(StatsRegistry* stats) const override {
    shared_->AddBackendStats(stats);
  }

  sim::Cluster* sim_cluster() override { return shared_->sim_cluster(); }

  uint64_t RecoveryEpoch(SiteId site) const override {
    return shared_->RecoveryEpoch(base_ + site);
  }

  SiteId base() const { return base_; }
  const std::string& tag_prefix() const { return prefix_; }

 private:
  void CaptureBaseline();

  ExecBackend* shared_;
  SiteId base_;
  int num_sites_;
  SiteId coordinator_;
  std::string prefix_;

  /// Meter/clock baselines as of construction or the last Reset();
  /// every read subtracts them, making the view behave like a freshly
  /// reset dedicated backend.
  double clock_base_ = 0.0;
  double baseline_busy_ = 0.0;
  std::vector<uint64_t> baseline_visits_;
  std::vector<uint64_t> baseline_into_;
  /// Prefixed tag -> (bytes, messages) at baseline.
  std::map<std::string, std::pair<uint64_t, uint64_t>, std::less<>>
      baseline_tags_;

  /// traffic()'s scoped view, rebuilt on demand (quiescent reads only,
  /// like every backend meter).
  mutable sim::TrafficStats scoped_;
};

}  // namespace parbox::exec

#endif  // PARBOX_EXEC_HOST_H_
