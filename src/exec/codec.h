// Parcel codecs for the payloads that hold factory-relative ids.
//
// Triplets — the (V, CV, DV) formula vectors a site ships back — are
// ExprIds into the *site's* factory. On a backend whose sites share
// one factory (SimBackend) the typed value passes through; when the
// message crosses factory domains (ThreadPoolBackend worker ->
// coordinator) the parcel's encoder runs bexpr::SerializeExprs in the
// sender's context and the receiver decodes into its own factory —
// exactly what distinct processes would do.
//
// Metering: a triplet parcel's wire size is SerializedExprsSize of its
// 3·|q| roots (the quantity every figure charges); the fragment id and
// batch framing ride the message envelope, uncounted, like tags.

#ifndef PARBOX_EXEC_CODEC_H_
#define PARBOX_EXEC_CODEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "boolexpr/expr.h"
#include "boolexpr/solver.h"
#include "common/status.h"
#include "exec/backend.h"

namespace parbox::exec {

/// Wire size of one fragment's triplet (what TripletWireBytes in
/// core/partial_eval.h reports; duplicated here so exec/ does not
/// depend on core/).
uint64_t TripletWireSize(const bexpr::ExprFactory& factory,
                         const bexpr::FragmentEquations& eq);

/// Parcel carrying one fragment's triplet out of `factory` (the
/// sending context's).
Parcel MakeTripletParcel(const bexpr::ExprFactory& factory,
                         std::shared_ptr<bexpr::FragmentEquations> eq);

/// Receiving side: the triplet, with ids valid in `*factory` (the
/// receiving context's). Decodes the wire bytes when the parcel
/// crossed factories; otherwise moves the local value out.
Result<bexpr::FragmentEquations> TakeTriplet(Parcel parcel,
                                             bexpr::ExprFactory* factory);

/// A round's worth of triplets from one site: one item per
/// (work unit, fragment) pair. `key` is caller-defined routing (the
/// unique-query index of a QueryService round); the fragment id rides
/// in eq.fragment. Items may be empty triplets (a fragment that died
/// between plan snapshot and evaluation) — they cross and decode as
/// such.
struct TripletBatch {
  struct Item {
    uint64_t key = 0;
    /// Slot the receiver stores the triplet in (eq.fragment is -1 for
    /// an empty triplet, so the slot travels separately).
    int32_t slot = -1;
    bexpr::FragmentEquations eq;
  };
  std::vector<Item> items;
};

/// Parcel carrying a site's whole batch; wire size = the sum of the
/// per-item triplet sizes (identical to shipping them singly).
Parcel MakeTripletBatchParcel(const bexpr::ExprFactory& factory,
                              std::shared_ptr<TripletBatch> batch);

Result<TripletBatch> TakeTripletBatch(Parcel parcel,
                                      bexpr::ExprFactory* factory);

}  // namespace parbox::exec

#endif  // PARBOX_EXEC_CODEC_H_
