// SimBackend: the deterministic simulated cluster behind the
// ExecBackend interface.
//
// A thin adapter over sim::Cluster — every verb forwards to the same
// cluster primitive the evaluators used to call directly, so event
// sequences, virtual times, traffic and visit counts are bit-identical
// to the pre-backend figures. All sites of a namespace share that
// namespace's (session's) hash-consing factory, and parcels pass their
// typed local value straight through: nothing is serialized that was
// not serialized before. This backend is the differential oracle the
// thread pool is held to.
//
// Multi-document hosting (AddNamespace): the cluster grows by a block
// of fresh sites per namespace; each block is pinned to its own
// session factory, and blocks never exchange messages, so several
// documents share one virtual clock and one event loop while their
// figures stay exactly those of dedicated clusters.

#ifndef PARBOX_EXEC_SIM_BACKEND_H_
#define PARBOX_EXEC_SIM_BACKEND_H_

#include <string>
#include <vector>

#include "exec/backend.h"
#include "sim/cluster.h"

namespace parbox::exec {

class SimBackend final : public ExecBackend {
 public:
  explicit SimBackend(const BackendConfig& config)
      : cluster_(config.num_sites, config.network),
        coordinator_(config.coordinator) {
    if (config.num_sites > 0) {
      ranges_.push_back(Range{0, config.num_sites, config.coordinator,
                              config.coordinator_factory});
    }
  }

  std::string_view name() const override { return "sim"; }
  int num_sites() const override { return cluster_.num_sites(); }
  SiteId coordinator() const override { return coordinator_; }
  void SetCoordinator(SiteId site) override {
    coordinator_ = site;
    if (Range* r = range_of(site)) r->coordinator = site;
  }

  Result<SiteId> AddNamespace(
      int num_sites, SiteId coordinator,
      bexpr::ExprFactory* coordinator_factory) override {
    if (num_sites < 1) {
      return Status::InvalidArgument("namespace needs at least one site");
    }
    const SiteId base = cluster_.num_sites();
    cluster_.Grow(num_sites);
    ranges_.push_back(
        Range{base, num_sites, base + coordinator, coordinator_factory});
    if (ranges_.size() == 1) coordinator_ = base + coordinator;
    return base;
  }

  bexpr::ExprFactory& site_factory(SiteId site) override {
    // On the sim every site of a namespace shares the namespace's
    // session factory (the single-factory semantics the figures were
    // recorded under); namespaces never read each other's.
    Range* r = range_of(site);
    return *(r != nullptr ? r->factory : ranges_.front().factory);
  }

  void Compute(SiteId site, uint64_t ops, Task done) override {
    cluster_.Compute(site, ops, std::move(done));
  }

  void Send(SiteId from, SiteId to, Parcel parcel, std::string_view tag,
            DeliverFn deliver) override {
    cluster_.Send(from, to, parcel.wire_bytes(), tag,
                  [deliver = std::move(deliver),
                   parcel = std::move(parcel)]() mutable {
                    deliver(std::move(parcel));
                  });
  }

  void RecordVisit(SiteId site) override { cluster_.RecordVisit(site); }

  void ScheduleAt(double when, Task task) override {
    cluster_.loop().At(when, std::move(task));
  }
  double now() const override { return cluster_.now(); }

  double Drain() override { return cluster_.Run(); }
  void Reset() override { cluster_.Reset(); }

  void MutateExclusive(const Task& mutate) override { mutate(); }

  const sim::TrafficStats& traffic() const override {
    return cluster_.traffic();
  }
  std::vector<uint64_t> visits() const override {
    return cluster_.all_visits();
  }
  uint64_t visits_at(SiteId site) const override {
    return cluster_.visits(site);
  }
  double total_busy_seconds() const override {
    return cluster_.total_busy_seconds();
  }
  void AddBackendStats(StatsRegistry* stats) const override {
    stats->Add("sim.events", cluster_.loop().events_run());
  }

  sim::Cluster* sim_cluster() override { return &cluster_; }

 private:
  /// One namespace's block of sites and its pinned session factory.
  struct Range {
    SiteId base = 0;
    int num_sites = 0;
    SiteId coordinator = 0;
    bexpr::ExprFactory* factory = nullptr;
  };

  Range* range_of(SiteId site) {
    for (Range& r : ranges_) {
      if (site >= r.base && site < r.base + r.num_sites) return &r;
    }
    return nullptr;
  }

  sim::Cluster cluster_;
  SiteId coordinator_;
  std::vector<Range> ranges_;
};

}  // namespace parbox::exec

#endif  // PARBOX_EXEC_SIM_BACKEND_H_
