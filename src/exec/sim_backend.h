// SimBackend: the deterministic simulated cluster behind the
// ExecBackend interface.
//
// A thin adapter over sim::Cluster — every verb forwards to the same
// cluster primitive the evaluators used to call directly, so event
// sequences, virtual times, traffic and visit counts are bit-identical
// to the pre-backend figures. All sites share the coordinator's
// (session's) hash-consing factory, and parcels pass their typed local
// value straight through: nothing is serialized that was not
// serialized before. This backend is the differential oracle the
// thread pool is held to.

#ifndef PARBOX_EXEC_SIM_BACKEND_H_
#define PARBOX_EXEC_SIM_BACKEND_H_

#include <string>
#include <vector>

#include "exec/backend.h"
#include "sim/cluster.h"

namespace parbox::exec {

class SimBackend final : public ExecBackend {
 public:
  explicit SimBackend(const BackendConfig& config)
      : cluster_(config.num_sites, config.network),
        coordinator_(config.coordinator),
        factory_(config.coordinator_factory) {}

  std::string_view name() const override { return "sim"; }
  int num_sites() const override { return cluster_.num_sites(); }
  SiteId coordinator() const override { return coordinator_; }
  void SetCoordinator(SiteId site) override { coordinator_ = site; }

  bexpr::ExprFactory& site_factory(SiteId) override { return *factory_; }

  void Compute(SiteId site, uint64_t ops, Task done) override {
    cluster_.Compute(site, ops, std::move(done));
  }

  void Send(SiteId from, SiteId to, Parcel parcel, std::string_view tag,
            DeliverFn deliver) override {
    cluster_.Send(from, to, parcel.wire_bytes(), tag,
                  [deliver = std::move(deliver),
                   parcel = std::move(parcel)]() mutable {
                    deliver(std::move(parcel));
                  });
  }

  void RecordVisit(SiteId site) override { cluster_.RecordVisit(site); }

  void ScheduleAt(double when, Task task) override {
    cluster_.loop().At(when, std::move(task));
  }
  double now() const override { return cluster_.now(); }

  double Drain() override { return cluster_.Run(); }
  void Reset() override { cluster_.Reset(); }

  void MutateExclusive(const Task& mutate) override { mutate(); }

  const sim::TrafficStats& traffic() const override {
    return cluster_.traffic();
  }
  std::vector<uint64_t> visits() const override {
    return cluster_.all_visits();
  }
  uint64_t visits_at(SiteId site) const override {
    return cluster_.visits(site);
  }
  double total_busy_seconds() const override {
    return cluster_.total_busy_seconds();
  }
  void AddBackendStats(StatsRegistry* stats) const override {
    stats->Add("sim.events", cluster_.loop().events_run());
  }

  sim::Cluster* sim_cluster() override { return &cluster_; }

 private:
  sim::Cluster cluster_;
  SiteId coordinator_;
  bexpr::ExprFactory* factory_;
};

}  // namespace parbox::exec

#endif  // PARBOX_EXEC_SIM_BACKEND_H_
