#include "exec/codec.h"

#include <cstring>

#include "boolexpr/serialize.h"

namespace parbox::exec {

namespace {

std::vector<bexpr::ExprId> TripletRoots(const bexpr::FragmentEquations& eq) {
  std::vector<bexpr::ExprId> roots;
  roots.reserve(eq.v.size() + eq.cv.size() + eq.dv.size());
  roots.insert(roots.end(), eq.v.begin(), eq.v.end());
  roots.insert(roots.end(), eq.cv.begin(), eq.cv.end());
  roots.insert(roots.end(), eq.dv.begin(), eq.dv.end());
  return roots;
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU32(std::string_view* data, uint32_t* v) {
  if (data->size() < 4) return false;
  std::memcpy(v, data->data(), 4);
  data->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* data, uint64_t* v) {
  if (data->size() < 8) return false;
  std::memcpy(v, data->data(), 8);
  data->remove_prefix(8);
  return true;
}

/// Roots (3n of them, possibly none) back into a triplet.
Status SplitRoots(std::vector<bexpr::ExprId> roots, int32_t fragment,
                  bexpr::FragmentEquations* eq) {
  if (roots.size() % 3 != 0) {
    return Status::Internal("triplet with unexpected arity");
  }
  const size_t n = roots.size() / 3;
  eq->fragment = fragment;
  eq->v.assign(roots.begin(), roots.begin() + n);
  eq->cv.assign(roots.begin() + n, roots.begin() + 2 * n);
  eq->dv.assign(roots.begin() + 2 * n, roots.end());
  return Status::OK();
}

}  // namespace

uint64_t TripletWireSize(const bexpr::ExprFactory& factory,
                         const bexpr::FragmentEquations& eq) {
  return bexpr::SerializedExprsSize(factory, TripletRoots(eq));
}

Parcel MakeTripletParcel(const bexpr::ExprFactory& factory,
                         std::shared_ptr<bexpr::FragmentEquations> eq) {
  const uint64_t bytes = TripletWireSize(factory, *eq);
  const bexpr::ExprFactory* f = &factory;
  std::shared_ptr<bexpr::FragmentEquations> held = eq;
  return Parcel::Coded(std::move(eq), bytes, [f, held]() {
    std::string wire;
    PutU32(&wire, static_cast<uint32_t>(held->fragment));
    wire += bexpr::SerializeExprs(*f, TripletRoots(*held));
    return wire;
  });
}

Result<bexpr::FragmentEquations> TakeTriplet(Parcel parcel,
                                             bexpr::ExprFactory* factory) {
  if (parcel.has_local()) {
    return std::move(*parcel.local<bexpr::FragmentEquations>());
  }
  if (!parcel.has_wire()) {
    return Status::Internal("triplet parcel carries neither value nor wire");
  }
  std::string_view data = parcel.wire();
  uint32_t fragment = 0;
  if (!GetU32(&data, &fragment)) {
    return Status::Internal("truncated triplet parcel");
  }
  PARBOX_ASSIGN_OR_RETURN(std::vector<bexpr::ExprId> roots,
                          bexpr::DeserializeExprs(factory, data));
  bexpr::FragmentEquations eq;
  PARBOX_RETURN_IF_ERROR(
      SplitRoots(std::move(roots), static_cast<int32_t>(fragment), &eq));
  return eq;
}

Parcel MakeTripletBatchParcel(const bexpr::ExprFactory& factory,
                              std::shared_ptr<TripletBatch> batch) {
  uint64_t bytes = 0;
  for (const TripletBatch::Item& item : batch->items) {
    bytes += TripletWireSize(factory, item.eq);
  }
  const bexpr::ExprFactory* f = &factory;
  std::shared_ptr<TripletBatch> held = batch;
  return Parcel::Coded(std::move(batch), bytes, [f, held]() {
    std::string wire;
    PutU32(&wire, static_cast<uint32_t>(held->items.size()));
    for (const TripletBatch::Item& item : held->items) {
      PutU64(&wire, item.key);
      PutU32(&wire, static_cast<uint32_t>(item.slot));
      PutU32(&wire, static_cast<uint32_t>(item.eq.fragment));
      const std::string payload =
          bexpr::SerializeExprs(*f, TripletRoots(item.eq));
      PutU32(&wire, static_cast<uint32_t>(payload.size()));
      wire += payload;
    }
    return wire;
  });
}

Result<TripletBatch> TakeTripletBatch(Parcel parcel,
                                      bexpr::ExprFactory* factory) {
  if (parcel.has_local()) {
    return std::move(*parcel.local<TripletBatch>());
  }
  if (!parcel.has_wire()) {
    return Status::Internal("batch parcel carries neither value nor wire");
  }
  std::string_view data = parcel.wire();
  uint32_t count = 0;
  if (!GetU32(&data, &count)) {
    return Status::Internal("truncated triplet batch parcel");
  }
  TripletBatch batch;
  batch.items.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    TripletBatch::Item& item = batch.items[i];
    uint32_t slot = 0;
    uint32_t fragment = 0;
    uint32_t payload_size = 0;
    if (!GetU64(&data, &item.key) || !GetU32(&data, &slot) ||
        !GetU32(&data, &fragment) || !GetU32(&data, &payload_size) ||
        data.size() < payload_size) {
      return Status::Internal("truncated triplet batch parcel");
    }
    item.slot = static_cast<int32_t>(slot);
    PARBOX_ASSIGN_OR_RETURN(
        std::vector<bexpr::ExprId> roots,
        bexpr::DeserializeExprs(factory, data.substr(0, payload_size)));
    data.remove_prefix(payload_size);
    PARBOX_RETURN_IF_ERROR(SplitRoots(std::move(roots),
                                      static_cast<int32_t>(fragment),
                                      &item.eq));
  }
  return batch;
}

}  // namespace parbox::exec
