#include "exec/sim_backend.h"

#include <memory>

namespace parbox::exec {

namespace {

Result<std::unique_ptr<ExecBackend>> MakeSimBackend(
    const BackendConfig& config, std::string_view arg) {
  if (!arg.empty()) {
    return Status::InvalidArgument(
        "backend \"sim\" takes no argument (got \"" + std::string(arg) +
        "\")");
  }
  return std::unique_ptr<ExecBackend>(new SimBackend(config));
}

}  // namespace

PARBOX_REGISTER_EXEC_BACKEND(0, "sim", "sim", MakeSimBackend);

}  // namespace parbox::exec
