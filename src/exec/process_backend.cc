#include "exec/process_backend.h"

#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/socket.h"

extern char** environ;

namespace parbox::exec {

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::atoi(v);
}

/// All coordinator-side frames draw from endpoint 0; daemons use
/// (index << 1) | 1 — the two directions of every link fault
/// independently from one seed.
constexpr uint64_t kCoordinatorEndpoint = 0;

}  // namespace

uint64_t ProcessBackend::next_listener_id_ = 0;

double ProcessBackend::mono() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProcessBackend::Options ProcessBackend::Options::FromEnv() {
  Options options;
  options.fault_seed = net::FaultInjector::SeedFromEnv();
  options.request_timeout =
      EnvInt("PARBOX_NET_TIMEOUT_MS", 200) / 1000.0;
  if (options.request_timeout <= 0) options.request_timeout = 0.2;
  options.max_retries = std::max(1, EnvInt("PARBOX_NET_RETRIES", 5));
  options.heartbeat_interval =
      std::max(1, EnvInt("PARBOX_NET_HEARTBEAT_MS", 500)) / 1000.0;
  options.liveness_timeout = options.heartbeat_interval * 10.0;
  if (const char* dir = std::getenv("PARBOX_SITED_LOG_DIR");
      dir != nullptr && dir[0] != '\0') {
    options.log_dir = dir;
  }
  if (const char* addrs = std::getenv("PARBOX_SITED_ADDRS");
      addrs != nullptr && addrs[0] != '\0') {
    std::string_view rest = addrs;
    while (!rest.empty()) {
      const size_t comma = rest.find(',');
      std::string_view addr = rest.substr(0, comma);
      if (!addr.empty()) options.connect_addrs.emplace_back(addr);
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
  }
  if (const char* bin = std::getenv("PARBOX_SITED_BIN");
      bin != nullptr && bin[0] != '\0') {
    options.sited_bin = bin;
  } else {
    // Default: the `sited` binary alongside the running executable
    // (all build targets land in the build root).
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
      buf[n] = '\0';
      std::string path(buf);
      const size_t slash = path.rfind('/');
      if (slash != std::string::npos) {
        const std::string candidate = path.substr(0, slash) + "/sited";
        if (access(candidate.c_str(), X_OK) == 0) {
          options.sited_bin = candidate;
        }
      }
    }
  }
  return options;
}

ProcessBackend::ProcessBackend(const BackendConfig& config,
                               const Options& options)
    : num_sites_(config.num_sites),
      coordinator_(config.coordinator),
      options_(options),
      coord_factory_(static_cast<size_t>(std::max(config.num_sites, 0)),
                     nullptr),
      visits_(static_cast<size_t>(std::max(config.num_sites, 0)), 0),
      epoch_(mono()) {
  default_coord_factory_ = config.coordinator_factory;
  if (config.coordinator >= 0 && config.coordinator < config.num_sites) {
    coord_factory_[static_cast<size_t>(config.coordinator)] =
        config.coordinator_factory;
    ranges_.push_back(Range{0, config.num_sites, config.coordinator});
  }
}

ProcessBackend::~ProcessBackend() {
  for (auto& link : links_) {
    if (link->conn != nullptr) link->conn->Close();
    if (link->pid > 0) {
      kill(link->pid, SIGTERM);
      waitpid(link->pid, nullptr, 0);
      link->pid = -1;
    }
  }
  if (listener_ >= 0) net::CloseFd(listener_);
}

Result<std::unique_ptr<ExecBackend>> ProcessBackend::Make(
    const BackendConfig& config, const Options& options) {
  std::unique_ptr<ProcessBackend> backend(
      new ProcessBackend(config, options));
  PARBOX_RETURN_IF_ERROR(backend->Start());
  return std::unique_ptr<ExecBackend>(std::move(backend));
}

Status ProcessBackend::Start() {
  const net::FaultInjector injector(options_.fault_seed,
                                    kCoordinatorEndpoint);
  if (!options_.connect_addrs.empty()) {
    // Connect mode: standalone daemons the operator runs (`sited
    // --listen=...`); they must already be up.
    for (size_t i = 0; i < options_.connect_addrs.size(); ++i) {
      auto link = std::make_unique<DaemonLink>();
      link->index = static_cast<int>(i);
      link->addr = options_.connect_addrs[i];
      link->conn = std::make_unique<net::Conn>(injector);
      links_.push_back(std::move(link));
    }
  } else {
    if (options_.num_daemons < 1 || options_.num_daemons > 64) {
      return Status::InvalidArgument(
          "process backend needs 1..64 daemons");
    }
    if (options_.sited_bin.empty()) {
      return Status::FailedPrecondition(
          "backend \"proc\" needs the `sited` daemon binary: build the "
          "sited target (expected next to the running executable) or "
          "set PARBOX_SITED_BIN");
    }
    listen_addr_ =
        options_.tcp
            ? std::string("127.0.0.1:0")
            : "@parbox." + std::to_string(getpid()) + "." +
                  std::to_string(next_listener_id_++);
    PARBOX_ASSIGN_OR_RETURN(listener_, net::Listen(listen_addr_));
    PARBOX_ASSIGN_OR_RETURN(listen_addr_,
                            net::ListenAddress(listener_, listen_addr_));
    for (int d = 0; d < options_.num_daemons; ++d) {
      auto link = std::make_unique<DaemonLink>();
      link->index = d;
      links_.push_back(std::move(link));
      PARBOX_RETURN_IF_ERROR(SpawnDaemon(links_.back().get()));
    }
  }
  shard_factory_.clear();
  for (size_t d = 0; d < links_.size(); ++d) {
    shard_factory_.push_back(std::make_unique<bexpr::ExprFactory>());
  }
  daemon_epoch_.assign(links_.size(), 0);
  daemon_stats_.assign(links_.size(), net::DaemonStats{});
  for (auto& link : links_) {
    if (!link->addr.empty()) Redial(link.get());
  }
  Status up = PumpUntil(
      [this] {
        for (const auto& link : links_) {
          if (!link->hello) return false;
        }
        return true;
      },
      10.0);
  if (!up.ok()) {
    return Status::FailedPrecondition(
        "backend \"proc\": site daemons failed to come up: " +
        up.ToString());
  }
  return Status::OK();
}

Status ProcessBackend::SpawnDaemon(DaemonLink* link) {
  static uint64_t spawn_counter = 0;
  std::vector<std::string> args;
  args.push_back(options_.sited_bin);
  args.push_back("--connect=" + listen_addr_);
  args.push_back("--index=" + std::to_string(link->index));
  if (!options_.log_dir.empty()) {
    args.push_back("--log=" + options_.log_dir + "/sited-" +
                   std::to_string(link->index) + "-" +
                   std::to_string(spawn_counter++) + ".log");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc = posix_spawn(&pid, options_.sited_bin.c_str(), nullptr,
                             nullptr, argv.data(), environ);
  if (rc != 0) {
    return Status::Internal("posix_spawn " + options_.sited_bin + ": " +
                            std::strerror(rc));
  }
  link->pid = pid;
  link->hello = false;
  link->last_rx = mono();
  return Status::OK();
}

void ProcessBackend::Redial(DaemonLink* link) {
  auto fd = net::Connect(link->addr, 0.25);
  if (fd.ok()) {
    link->conn->Adopt(*fd);
    link->last_rx = mono();
    // hello arrives from the daemon; until then the link is not live.
  } else {
    ++link->consecutive_failures;
    link->next_redial =
        mono() + 0.05 * static_cast<double>(
                            1u << std::min(link->consecutive_failures, 5));
  }
}

void ProcessBackend::Fatal(const std::string& why) {
  if (fatal_.ok()) fatal_ = Status::Internal("process backend: " + why);
}

void ProcessBackend::DeclareDead(DaemonLink* link, const char* why) {
  if (link->conn != nullptr && link->conn->connected()) {
    link->prior_frames += link->conn->frames_sent();
    link->prior_dropped += link->conn->faults_dropped();
    link->prior_delayed += link->conn->faults_delayed();
    link->prior_duplicated += link->conn->faults_duplicated();
    link->conn->Close();
  }
  link->hello = false;
  if (!link->addr.empty()) {
    // Connect mode: redial forever with bounded backoff — a
    // standalone daemon may come back whenever its operator restarts
    // it, and our pending requests wait for it.
    ++link->consecutive_failures;
    link->next_redial =
        mono() + 0.05 * static_cast<double>(
                            1u << std::min(link->consecutive_failures, 5));
    return;
  }
  ++link->consecutive_failures;
  if (link->consecutive_failures > options_.max_respawns) {
    Fatal("daemon " + std::to_string(link->index) + " unreachable after " +
          std::to_string(options_.max_respawns) + " respawns (" + why +
          ")");
    return;
  }
  if (link->pid > 0) {
    kill(link->pid, SIGKILL);
    waitpid(link->pid, nullptr, 0);
    link->pid = -1;
  }
  if (Status s = SpawnDaemon(link); !s.ok()) Fatal(s.ToString());
}

void ProcessBackend::OnHello(DaemonLink* link, const net::Frame& frame) {
  link->hello = true;
  link->consecutive_failures = 0;
  link->last_rx = mono();
  const uint64_t nonce = frame.seq;
  if (link->nonce != 0) {
    ++reconnects_;
    if (nonce != link->nonce) {
      // A different process answered: the daemon's in-memory site
      // state (pinned factories, shipped fragments) is gone. Surface
      // it through RecoveryEpoch so sessions re-ship.
      ++daemon_epoch_[static_cast<size_t>(link->index)];
    }
  }
  link->nonce = nonce;
  // Retransmit everything in flight: at-least-once + daemon dedup
  // makes blind retransmission safe, and a restarted daemon needs the
  // frames its predecessor lost.
  const double t = mono();
  for (auto& [seq, req] : link->pending) {
    req.attempts = 1;
    req.deadline = t + options_.request_timeout;
    link->conn->SendFrame(req.frame, 1,
                          /*faultable=*/req.deliver != nullptr, t);
  }
}

void ProcessBackend::OnFrame(DaemonLink* link, net::Frame frame) {
  link->last_rx = mono();
  switch (static_cast<net::FrameType>(frame.type)) {
    case net::FrameType::kHello:
      OnHello(link, frame);
      return;
    case net::FrameType::kPong:
      return;
    case net::FrameType::kParcelResp:
    case net::FrameType::kStatsResp:
    case net::FrameType::kResetResp: {
      auto it = link->pending.find(frame.seq);
      if (it == link->pending.end()) {
        ++dup_acks_;  // late duplicate of an already-completed request
        return;
      }
      PendingReq req = std::move(it->second);
      link->pending.erase(it);
      ++acked_;
      rtt_micros_ +=
          static_cast<uint64_t>((mono() - req.first_send) * 1e6);
      if (req.control != nullptr) {
        req.control(frame);
        return;
      }
      Parcel delivered;
      if ((frame.flags & net::kFrameFlagHasPayload) != 0) {
        // The content crossed the socket twice; rebuild the parcel
        // from the echoed bytes — the receiver decodes them into its
        // own factory, exactly as with any cross-factory delivery.
        delivered =
            Parcel::FromWire(std::move(frame.payload), frame.wire_bytes);
      } else {
        delivered = std::move(req.parcel);
      }
      delivered.set_trace(frame.trace_id, frame.trace_span);
      ready_.push_back([deliver = std::move(req.deliver),
                        parcel = std::move(delivered)]() mutable {
        deliver(std::move(parcel));
      });
      return;
    }
    default:
      return;  // unknown frame types are ignored (forward compat)
  }
}

ProcessBackend::DaemonLink* ProcessBackend::route_of(SiteId from,
                                                     SiteId to) {
  if (!is_coordinator_site(to)) return links_[daemon_of(to)].get();
  if (!is_coordinator_site(from)) return links_[daemon_of(from)].get();
  return nullptr;
}

uint32_t ProcessBackend::shard_key_of(SiteId to) const {
  // Coordinator sites' formulas belong to their session's factory
  // domain (one per hosted namespace); worker sites share their
  // daemon's shadow domain. The daemon pins one factory per key.
  if (is_coordinator_site(to)) return static_cast<uint32_t>(to);
  return 0x80000000u | static_cast<uint32_t>(daemon_of(to));
}

bexpr::ExprFactory& ProcessBackend::site_factory(SiteId site) {
  if (site >= 0 && static_cast<size_t>(site) < coord_factory_.size() &&
      coord_factory_[static_cast<size_t>(site)] != nullptr) {
    return *coord_factory_[static_cast<size_t>(site)];
  }
  return *shard_factory_[static_cast<size_t>(daemon_of(site))];
}

void ProcessBackend::Compute(SiteId site, uint64_t, Task done) {
  // Sites' serial queues collapse onto one FIFO (single-threaded
  // coordinator loop): global FIFO order implies per-site FIFO order.
  (void)site;
  ready_.push_back(std::move(done));
}

void ProcessBackend::Send(SiteId from, SiteId to, Parcel parcel,
                          std::string_view tag, DeliverFn deliver) {
  if (from != to) {
    // Logical metering, identical to every backend: the parcel's wire
    // size once per Send. Transport framing/retries are separate
    // (AddBackendStats) so traffic stays bit-identical to the sim.
    traffic_.Record(from, to, parcel.wire_bytes(), tag);
  }
  if (parcel.needs_encoding() && &site_factory(from) != &site_factory(to)) {
    parcel.Encode();
  }
  DaemonLink* link = from == to ? nullptr : route_of(from, to);
  if (link == nullptr) {
    ready_.push_back([deliver = std::move(deliver),
                      parcel = std::move(parcel)]() mutable {
      deliver(std::move(parcel));
    });
    return;
  }
  PendingReq req;
  net::Frame& frame = req.frame;
  frame.type = static_cast<uint8_t>(net::FrameType::kParcelReq);
  frame.seq = link->next_seq++;
  frame.src = static_cast<uint32_t>(from);
  frame.dest = static_cast<uint32_t>(to);
  frame.shard_base = shard_key_of(to);
  frame.wire_bytes = parcel.wire_bytes();
  frame.trace_id = parcel.trace_id();
  frame.trace_span = parcel.trace_span();
  frame.tag = std::string(tag);
  if (parcel.has_wire()) {
    frame.flags = net::kFrameFlagHasPayload | net::kFrameFlagCoded;
    frame.payload = parcel.wire();
  }
  req.parcel = std::move(parcel);
  req.deliver = std::move(deliver);
  const double t = mono();
  req.first_send = t;
  req.deadline = t + options_.request_timeout;
  auto [it, inserted] = link->pending.emplace(frame.seq, std::move(req));
  assert(inserted);
  ++link->parcels_since_stats;
  stats_dirty_ = true;
  if (link->conn != nullptr && link->conn->connected() && link->hello) {
    link->conn->SendFrame(it->second.frame, 1, /*faultable=*/true, t);
  }
}

void ProcessBackend::SetCoordinator(SiteId site) {
  Range* range = nullptr;
  for (Range& r : ranges_) {
    if (site >= r.base && site < r.base + r.num_sites) range = &r;
  }
  const SiteId old_site =
      range != nullptr ? range->coordinator : coordinator_;
  bexpr::ExprFactory* factory =
      old_site >= 0 && static_cast<size_t>(old_site) < coord_factory_.size()
          ? coord_factory_[static_cast<size_t>(old_site)]
          : nullptr;
  if (old_site >= 0 &&
      static_cast<size_t>(old_site) < coord_factory_.size()) {
    coord_factory_[static_cast<size_t>(old_site)] = nullptr;
  }
  if (range != nullptr) range->coordinator = site;
  if (range == nullptr || range == &ranges_.front()) coordinator_ = site;
  if (site >= 0) {
    if (static_cast<size_t>(site) >= coord_factory_.size()) {
      coord_factory_.resize(static_cast<size_t>(site) + 1, nullptr);
    }
    coord_factory_[static_cast<size_t>(site)] =
        factory != nullptr ? factory : default_coord_factory_;
  }
}

Result<SiteId> ProcessBackend::AddNamespace(
    int num_sites, SiteId coordinator,
    bexpr::ExprFactory* coordinator_factory) {
  assert(AllAcked() && ready_.empty() && "AddNamespace requires quiescence");
  if (num_sites < 1) {
    return Status::InvalidArgument("namespace needs at least one site");
  }
  if (coordinator < 0 || coordinator >= num_sites) {
    return Status::InvalidArgument(
        "namespace coordinator outside [0, num_sites)");
  }
  if (coordinator_factory == nullptr) {
    return Status::InvalidArgument("namespace needs a coordinator factory");
  }
  const SiteId base = num_sites_;
  num_sites_ += num_sites;
  coord_factory_.resize(static_cast<size_t>(num_sites_), nullptr);
  coord_factory_[static_cast<size_t>(base + coordinator)] =
      coordinator_factory;
  visits_.resize(static_cast<size_t>(num_sites_), 0);
  ranges_.push_back(Range{base, num_sites, base + coordinator});
  if (coordinator_ < 0) {
    coordinator_ = base + coordinator;
    default_coord_factory_ = coordinator_factory;
  }
  return base;
}

void ProcessBackend::ScheduleAt(double when, Task task) {
  timers_.push(Timer{when, next_timer_seq_++, std::move(task)});
}

double ProcessBackend::now() const { return mono() - epoch_; }

bool ProcessBackend::AllAcked() const {
  for (const auto& link : links_) {
    if (!link->pending.empty()) return false;
  }
  return true;
}

void ProcessBackend::RunReady() {
  while (!ready_.empty()) {
    Task task = std::move(ready_.front());
    ready_.pop_front();
    const double start = mono();
    task();
    busy_seconds_ += mono() - start;
    ++tasks_run_;
  }
}

void ProcessBackend::RequestDaemonStats() {
  stats_dirty_ = false;
  for (auto& link : links_) {
    if (link->parcels_since_stats == 0) continue;
    link->parcels_since_stats = 0;
    const int index = link->index;
    EnqueueControl(link.get(), net::FrameType::kStatsReq,
                   [this, index](const net::Frame& frame) {
                     net::DaemonStats stats;
                     if (stats.Decode(frame.payload)) {
                       daemon_stats_[static_cast<size_t>(index)] =
                           std::move(stats);
                     }
                   });
  }
}

uint64_t ProcessBackend::EnqueueControl(
    DaemonLink* link, net::FrameType type,
    std::function<void(const net::Frame&)> done) {
  PendingReq req;
  req.frame.type = static_cast<uint8_t>(type);
  req.frame.seq = link->next_seq++;
  req.control = std::move(done);
  const double t = mono();
  req.first_send = t;
  req.deadline = t + options_.request_timeout;
  const uint64_t seq = req.frame.seq;
  auto [it, inserted] = link->pending.emplace(seq, std::move(req));
  assert(inserted);
  if (link->conn != nullptr && link->conn->connected() && link->hello) {
    link->conn->SendFrame(it->second.frame, 1, /*faultable=*/false, t);
  }
  return seq;
}

void ProcessBackend::Step(double max_wait) {
  const double t = mono();
  double next_due = t + std::max(0.0, max_wait);

  for (auto& link : links_) {
    net::Conn* conn = link->conn.get();
    const bool live =
        conn != nullptr && conn->connected() && link->hello;
    if (conn != nullptr && conn->connected() && conn->has_delayed()) {
      next_due = std::min(next_due, conn->PumpDelayed(t));
    }
    if (live) {
      bool died = false;
      for (auto& [seq, req] : link->pending) {
        if (req.deadline <= t) {
          if (req.attempts > static_cast<uint32_t>(options_.max_retries)) {
            ++timeouts_;
            DeclareDead(link.get(), "request retries exhausted");
            died = true;
            break;
          }
          ++req.attempts;
          ++retries_;
          req.deadline =
              t + options_.request_timeout *
                      static_cast<double>(1u << std::min(req.attempts, 6u));
          conn->SendFrame(req.frame, req.attempts,
                          /*faultable=*/req.deliver != nullptr, t);
        }
        next_due = std::min(next_due, req.deadline);
      }
      if (!died && !link->pending.empty()) {
        if (t - link->last_rx > options_.heartbeat_interval &&
            t - link->last_ping > options_.heartbeat_interval) {
          net::Frame ping;
          ping.type = static_cast<uint8_t>(net::FrameType::kPing);
          ping.seq = link->next_seq++;
          conn->SendFrame(ping, 1, /*faultable=*/false, t);
          link->last_ping = t;
        }
        if (t - link->last_rx > options_.liveness_timeout) {
          DeclareDead(link.get(), "liveness timeout");
        }
      }
    } else if (!link->addr.empty() &&
               (conn == nullptr || !conn->connected())) {
      if (t >= link->next_redial) Redial(link.get());
      next_due = std::min(next_due, link->next_redial);
    }
  }

  // ---- poll ----
  struct FdRef {
    int what;  // 0 = listener, 1 = pending accept, 2 = link
    size_t index;
  };
  std::vector<pollfd> fds;
  std::vector<FdRef> refs;
  if (listener_ >= 0) {
    fds.push_back(pollfd{listener_, POLLIN, 0});
    refs.push_back(FdRef{0, 0});
  }
  for (size_t i = 0; i < pending_accepts_.size(); ++i) {
    fds.push_back(pollfd{pending_accepts_[i]->fd(), POLLIN, 0});
    refs.push_back(FdRef{1, i});
  }
  for (size_t i = 0; i < links_.size(); ++i) {
    net::Conn* conn = links_[i]->conn.get();
    if (conn == nullptr || !conn->connected()) continue;
    short events = POLLIN;
    if (conn->wants_write()) events |= POLLOUT;
    fds.push_back(pollfd{conn->fd(), events, 0});
    refs.push_back(FdRef{2, i});
  }
  int timeout_ms =
      static_cast<int>(std::max(0.0, (next_due - mono()) * 1000.0));
  timeout_ms = std::min(timeout_ms, 1000);
  if (fds.empty()) {
    if (timeout_ms > 0) usleep(static_cast<useconds_t>(timeout_ms) * 1000);
    return;
  }
  const int n = poll(fds.data(), static_cast<nfds_t>(fds.size()),
                     timeout_ms);
  if (n < 0) return;

  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    const FdRef ref = refs[i];
    if (ref.what == 0) {
      for (;;) {
        auto fd = net::Accept(listener_);
        if (!fd.ok() || *fd < 0) break;
        auto conn = std::make_unique<net::Conn>(net::FaultInjector(
            options_.fault_seed, kCoordinatorEndpoint));
        conn->Adopt(*fd);
        pending_accepts_.push_back(std::move(conn));
      }
    } else if (ref.what == 1) {
      net::Conn* conn = pending_accepts_[ref.index].get();
      if (!conn->ReadReady()) {
        conn->Close();
        continue;
      }
      net::Frame frame;
      while (conn->connected() && conn->NextFrame(&frame)) {
        if (static_cast<net::FrameType>(frame.type) ==
                net::FrameType::kHello &&
            frame.src < links_.size()) {
          DaemonLink* link = links_[frame.src].get();
          if (link->conn != nullptr) {
            link->prior_frames += link->conn->frames_sent();
            link->prior_dropped += link->conn->faults_dropped();
            link->prior_delayed += link->conn->faults_delayed();
            link->prior_duplicated += link->conn->faults_duplicated();
          }
          link->conn = std::move(pending_accepts_[ref.index]);
          OnHello(link, frame);
          // Anything buffered behind the HELLO dispatches normally.
          net::Frame more;
          while (link->conn->NextFrame(&more)) {
            OnFrame(link, std::move(more));
          }
          break;
        }
      }
    } else {
      DaemonLink* link = links_[ref.index].get();
      net::Conn* conn = link->conn.get();
      if (conn == nullptr || !conn->connected()) continue;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        if (!conn->ReadReady()) {
          // Distinguish a malformed stream (corrupt/oversize length
          // prefix) from a plain close: the former is surfaced as a
          // frame error — the link resets and redials, the retry
          // protocol re-sends, and the answer path never sees it.
          if (!conn->read_error_reason().empty()) {
            ++frame_errors_;
            std::fprintf(stderr,
                         "parbox: daemon %d link: malformed frame (%s); "
                         "resetting connection\n",
                         link->index, conn->read_error_reason().c_str());
            DeclareDead(link, "malformed frame");
          } else {
            DeclareDead(link, "connection closed");
          }
          continue;
        }
        net::Frame frame;
        while (link->conn != nullptr && link->conn->connected() &&
               link->conn->NextFrame(&frame)) {
          OnFrame(link, std::move(frame));
        }
      }
      if (link->conn != nullptr && link->conn->connected() &&
          !link->conn->FlushWrites()) {
        DeclareDead(link, "write failed");
      }
    }
  }
  // Drop closed pending accepts.
  for (size_t i = 0; i < pending_accepts_.size();) {
    if (pending_accepts_[i] == nullptr ||
        !pending_accepts_[i]->connected()) {
      pending_accepts_.erase(pending_accepts_.begin() +
                             static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

Status ProcessBackend::PumpUntil(const std::function<bool()>& done,
                                 double timeout) {
  const double deadline = mono() + timeout;
  while (!done()) {
    if (!fatal_.ok()) return fatal_;
    if (mono() >= deadline) {
      return Status::Internal("process backend: timed out after " +
                              std::to_string(timeout) + "s");
    }
    Step(0.05);
  }
  return Status::OK();
}

double ProcessBackend::Drain() {
  for (;;) {
    bool progressed = false;
    if (!ready_.empty()) {
      RunReady();
      progressed = true;
    }
    while (!timers_.empty() && timers_.top().when <= now()) {
      Task task = std::move(const_cast<Timer&>(timers_.top()).task);
      timers_.pop();
      const double start = mono();
      task();
      busy_seconds_ += mono() - start;
      ++tasks_run_;
      progressed = true;
    }
    if (progressed) continue;
    if (!fatal_.ok()) {
      std::fprintf(stderr, "parbox: %s\n", fatal_.ToString().c_str());
      std::abort();  // the contract has no failure path for Drain
    }
    if (AllAcked()) {
      if (!timers_.empty()) {
        Step(std::max(0.0, timers_.top().when - now()));
        continue;
      }
      if (stats_dirty_) {
        // Quiescent: collect the daemons' own meters so post-run
        // reads (MergedDaemonStats, AddBackendStats) are stable.
        RequestDaemonStats();
        continue;
      }
      break;
    }
    double wait = 0.05;
    if (!timers_.empty()) {
      wait = std::min(wait, std::max(0.0, timers_.top().when - now()));
    }
    Step(wait);
  }
  return now();
}

void ProcessBackend::Reset() {
  assert(AllAcked() && ready_.empty() &&
         "Reset requires quiescence (call after Drain)");
  assert(timers_.empty() && "Reset with timers pending");
  traffic_.Reset();
  std::fill(visits_.begin(), visits_.end(), 0);
  busy_seconds_ = 0.0;
  tasks_run_ = 0;
  next_timer_seq_ = 0;
  // Rewind the daemons' meters too (their shard factories persist,
  // mirroring the "interned site-factory formulas persist" contract).
  for (auto& link : links_) {
    EnqueueControl(link.get(), net::FrameType::kResetReq,
                   [](const net::Frame&) {});
  }
  if (Status s = PumpUntil([this] { return AllAcked(); }, 30.0);
      !s.ok()) {
    Fatal("daemon meter reset failed: " + s.ToString());
  }
  for (auto& stats : daemon_stats_) stats = net::DaemonStats{};
  stats_dirty_ = false;
  epoch_ = mono();
}

uint64_t ProcessBackend::RecoveryEpoch(SiteId site) const {
  if (site < 0 || links_.empty() || is_coordinator_site(site)) return 0;
  return daemon_epoch_[static_cast<size_t>(daemon_of(site))];
}

pid_t ProcessBackend::daemon_pid(int index) const {
  if (index < 0 || static_cast<size_t>(index) >= links_.size()) return -1;
  return links_[static_cast<size_t>(index)]->pid;
}

uint64_t ProcessBackend::frames_sent() const {
  uint64_t total = 0;
  for (const auto& link : links_) {
    total += link->prior_frames;
    if (link->conn != nullptr) total += link->conn->frames_sent();
  }
  return total;
}

uint64_t ProcessBackend::faults_injected() const {
  uint64_t total = 0;
  for (const auto& link : links_) {
    total += link->prior_dropped + link->prior_delayed +
             link->prior_duplicated;
    if (link->conn != nullptr) {
      total += link->conn->faults_dropped() +
               link->conn->faults_delayed() +
               link->conn->faults_duplicated();
    }
  }
  return total;
}

net::DaemonStats ProcessBackend::MergedDaemonStats() const {
  net::DaemonStats merged;
  for (const auto& stats : daemon_stats_) merged.MergeFrom(stats);
  return merged;
}

void ProcessBackend::AddBackendStats(StatsRegistry* stats) const {
  stats->Add("exec.tasks", tasks_run_);
  stats->Add("proc.daemons", static_cast<uint64_t>(links_.size()));
  stats->Add("proc.frames", frames_sent());
  stats->Add("proc.acked", acked_);
  stats->Add("proc.retries", retries_);
  stats->Add("proc.reconnects", reconnects_);
  stats->Add("proc.frame_errors", frame_errors_);
  stats->Add("proc.dup_acks", dup_acks_);
  stats->Add("proc.rtt_micros", rtt_micros_);
  stats->Add("proc.faults", faults_injected());
  const net::DaemonStats merged = MergedDaemonStats();
  stats->Add("proc.daemon.parcels", merged.parcels);
  stats->Add("proc.daemon.dedup_hits", merged.dedup_hits);
  stats->Add("proc.daemon.decoded", merged.decoded_payloads);
  stats->Add("proc.daemon.decode_errors", merged.decode_errors);
}

namespace {

Result<std::unique_ptr<ExecBackend>> MakeProcessBackend(
    const BackendConfig& config, std::string_view arg) {
  ProcessBackend::Options options = ProcessBackend::Options::FromEnv();
  // Spec grammar: proc | proc:N | proc:N,tcp | proc:tcp
  std::string_view rest = arg;
  bool bad = false;
  if (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view head = rest.substr(0, comma);
    std::string_view tail =
        comma == std::string_view::npos ? std::string_view{}
                                        : rest.substr(comma + 1);
    if (head == "tcp" && tail.empty()) {
      options.tcp = true;
    } else {
      int parsed = 0;
      const auto [ptr, ec] =
          std::from_chars(head.data(), head.data() + head.size(), parsed);
      if (ec != std::errc() || ptr != head.data() + head.size() ||
          parsed < 1 || parsed > 64) {
        bad = true;
      } else {
        options.num_daemons = parsed;
      }
      if (!tail.empty() && tail != "tcp") bad = true;
      if (tail == "tcp") options.tcp = true;
    }
  }
  if (bad) {
    return Status::InvalidArgument(
        "backend \"proc\" takes a site-daemon count 1..64 with an "
        "optional \",tcp\" transport suffix — proc[:N[,tcp]] (got \"" +
        std::string(arg) + "\")");
  }
  return ProcessBackend::Make(config, options);
}

}  // namespace

PARBOX_REGISTER_EXEC_BACKEND(2, "proc", "proc[:N[,tcp]]", MakeProcessBackend);

}  // namespace parbox::exec
