#include "exec/thread_pool_backend.h"

#include <algorithm>
#include <cassert>
#include <charconv>

namespace parbox::exec {

namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ThreadPoolBackend::ThreadPoolBackend(const BackendConfig& config,
                                     int num_workers)
    : num_sites_(config.num_sites),
      coordinator_(config.coordinator),
      coord_factory_(static_cast<size_t>(std::max(config.num_sites, 0)),
                     nullptr),
      visits_(static_cast<size_t>(config.num_sites)),
      epoch_(std::chrono::steady_clock::now()) {
  coord_.factory = config.coordinator_factory;
  if (config.coordinator >= 0 && config.coordinator < config.num_sites) {
    coord_factory_[static_cast<size_t>(config.coordinator)] =
        config.coordinator_factory;
    ranges_.push_back(Range{0, config.num_sites, config.coordinator});
  }
  const int n = std::max(1, num_workers);
  workers_.reserve(static_cast<size_t>(n));
  threads_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    auto ex = std::make_unique<Executor>();
    ex->owned_factory = std::make_unique<bexpr::ExprFactory>();
    ex->factory = ex->owned_factory.get();
    workers_.push_back(std::move(ex));
  }
  for (int w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(workers_[w].get()); });
  }
}

ThreadPoolBackend::~ThreadPoolBackend() {
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->m);
    worker->cv.notify_one();
  }
  for (std::thread& t : threads_) t.join();
  // Free anything still queued (a destructor racing in-flight work is
  // a caller bug, but the nodes must not leak).
  for (auto& worker : workers_) {
    Executor::TaskNode* node = worker->incoming.exchange(nullptr);
    while (node != nullptr) {
      Executor::TaskNode* next = node->next;
      delete node;
      node = next;
    }
  }
  Executor::TaskNode* node = coord_.incoming.exchange(nullptr);
  while (node != nullptr) {
    Executor::TaskNode* next = node->next;
    delete node;
    node = next;
  }
}

void ThreadPoolBackend::Enqueue(Executor* ex, Task task) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  auto* node = new Executor::TaskNode{std::move(task), nullptr};
  Executor::TaskNode* head = ex->incoming.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!ex->incoming.compare_exchange_weak(head, node,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  if (head == nullptr) {
    // Empty -> non-empty transition: the consumer may be parked.
    std::lock_guard<std::mutex> lock(ex->m);
    ex->cv.notify_one();
  }
}

ThreadPoolBackend::Executor::TaskNode* ThreadPoolBackend::TakeAll(
    Executor* ex) {
  Executor::TaskNode* chain =
      ex->incoming.exchange(nullptr, std::memory_order_acquire);
  // The stack is LIFO by push; reverse for the FIFO order a site's
  // serialized compute queue promises.
  Executor::TaskNode* fifo = nullptr;
  while (chain != nullptr) {
    Executor::TaskNode* next = chain->next;
    chain->next = fifo;
    fifo = chain;
    chain = next;
  }
  return fifo;
}

void ThreadPoolBackend::RunChain(Executor* ex, Executor::TaskNode* chain,
                                 bool locked) {
  while (chain != nullptr) {
    Executor::TaskNode* next = chain->next;
    const auto start = std::chrono::steady_clock::now();
    if (locked) {
      std::shared_lock<std::shared_mutex> doc(doc_mutex_);
      chain->task();
    } else {
      chain->task();
    }
    ex->busy_seconds +=
        SecondsBetween(start, std::chrono::steady_clock::now());
    ++ex->tasks_run;
    delete chain;
    chain = next;
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      NotifyCoordinator();
    }
  }
}

void ThreadPoolBackend::WorkerLoop(Executor* ex) {
  for (;;) {
    Executor::TaskNode* chain = TakeAll(ex);
    if (chain == nullptr) {
      std::unique_lock<std::mutex> lock(ex->m);
      ex->cv.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               ex->incoming.load(std::memory_order_acquire) != nullptr;
      });
      if (ex->incoming.load(std::memory_order_acquire) == nullptr) return;
      continue;
    }
    RunChain(ex, chain, /*locked=*/true);
  }
}

void ThreadPoolBackend::NotifyCoordinator() {
  std::lock_guard<std::mutex> lock(coord_.m);
  coord_.cv.notify_one();
}

void ThreadPoolBackend::Compute(SiteId site, uint64_t, Task done) {
  // Real time is measured, not synthesized from ops: the enqueued task
  // runs as soon as the site's serial queue reaches it.
  Enqueue(executor_of(site), std::move(done));
}

void ThreadPoolBackend::Send(SiteId from, SiteId to, Parcel parcel,
                             std::string_view tag, DeliverFn deliver) {
  Executor* src = executor_of(from);
  Executor* dst = executor_of(to);
  if (from != to) {
    // Contract: Send runs in `from`'s context, so src's meter is ours.
    src->traffic.Record(from, to, parcel.wire_bytes(), tag);
  }
  // Factory domains are per *site*, not per executor: coordinator
  // sites of different hosted namespaces share the coordinator
  // executor but compose into their own sessions' factories.
  if (parcel.needs_encoding() && &site_factory(from) != &site_factory(to)) {
    parcel.Encode();  // the real wire codec, in the sender's context
  }
  Enqueue(dst, [deliver = std::move(deliver),
                parcel = std::move(parcel)]() mutable {
    deliver(std::move(parcel));
  });
}

void ThreadPoolBackend::SetCoordinator(SiteId site) {
  // Re-home coordinator-ness within the namespace containing `site`
  // (a view rebind moved the root fragment): that namespace's old
  // coordinator site becomes a worker site, the new one joins the
  // Drain()ing context with the same session factory. Other hosted
  // namespaces' coordinators are untouched.
  Range* range = nullptr;
  for (Range& r : ranges_) {
    if (site >= r.base && site < r.base + r.num_sites) range = &r;
  }
  const SiteId old_site = range != nullptr ? range->coordinator : coordinator_;
  bexpr::ExprFactory* factory = coord_factory_of(old_site);
  if (old_site >= 0 &&
      static_cast<size_t>(old_site) < coord_factory_.size()) {
    coord_factory_[static_cast<size_t>(old_site)] = nullptr;
  }
  if (range != nullptr) range->coordinator = site;
  if (range == nullptr || range == &ranges_.front()) coordinator_ = site;
  if (site >= 0) {
    if (static_cast<size_t>(site) >= coord_factory_.size()) {
      coord_factory_.resize(static_cast<size_t>(site) + 1, nullptr);
    }
    coord_factory_[static_cast<size_t>(site)] =
        factory != nullptr ? factory : coord_.factory;
  }
}

Result<SiteId> ThreadPoolBackend::AddNamespace(
    int num_sites, SiteId coordinator,
    bexpr::ExprFactory* coordinator_factory) {
  assert(outstanding_.load(std::memory_order_acquire) == 0 &&
         "AddNamespace requires quiescence");
  if (num_sites < 1) {
    return Status::InvalidArgument("namespace needs at least one site");
  }
  if (coordinator < 0 || coordinator >= num_sites) {
    return Status::InvalidArgument(
        "namespace coordinator outside [0, num_sites)");
  }
  if (coordinator_factory == nullptr) {
    return Status::InvalidArgument(
        "namespace needs a coordinator factory");
  }
  const SiteId base = num_sites_;
  num_sites_ += num_sites;
  coord_factory_.resize(static_cast<size_t>(num_sites_), nullptr);
  coord_factory_[static_cast<size_t>(base + coordinator)] =
      coordinator_factory;
  visits_.resize(static_cast<size_t>(num_sites_));
  ranges_.push_back(Range{base, num_sites, base + coordinator});
  if (coordinator_ < 0) {
    coordinator_ = base + coordinator;
    coord_.factory = coordinator_factory;
  }
  return base;
}

void ThreadPoolBackend::ScheduleAt(double when, Task task) {
  timers_.push(Timer{when, next_timer_seq_++, std::move(task)});
}

double ThreadPoolBackend::now() const {
  return SecondsBetween(epoch_, std::chrono::steady_clock::now());
}

double ThreadPoolBackend::Drain() {
  for (;;) {
    bool progressed = false;
    Executor::TaskNode* chain = TakeAll(&coord_);
    if (chain != nullptr) {
      // Coordinator tasks run unlocked: they are serialized with any
      // MutateExclusive by construction (same thread).
      RunChain(&coord_, chain, /*locked=*/false);
      progressed = true;
    }
    while (!timers_.empty() && timers_.top().when <= now()) {
      Task task = std::move(const_cast<Timer&>(timers_.top()).task);
      timers_.pop();
      const auto start = std::chrono::steady_clock::now();
      task();
      coord_.busy_seconds +=
          SecondsBetween(start, std::chrono::steady_clock::now());
      ++coord_.tasks_run;
      progressed = true;
    }
    if (progressed) continue;

    std::unique_lock<std::mutex> lock(coord_.m);
    if (coord_.incoming.load(std::memory_order_acquire) != nullptr) {
      continue;
    }
    if (outstanding_.load(std::memory_order_acquire) == 0) {
      if (timers_.empty()) break;
      // Quiescent but a timer is pending: sleep straight to it.
      coord_.cv.wait_until(
          lock, epoch_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 timers_.top().when)));
      continue;
    }
    // Work is in flight on the workers; wake on handoff or completion
    // (the timeout is a belt-and-braces fallback, not the signal
    // path) — but never sleep past a pending timer's deadline, or
    // admission windows would slip while rounds are in flight.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
    if (!timers_.empty()) {
      const auto timer_deadline =
          epoch_ +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timers_.top().when));
      if (timer_deadline < deadline) deadline = timer_deadline;
    }
    coord_.cv.wait_until(lock, deadline);
  }
  return now();
}

void ThreadPoolBackend::Reset() {
  assert(outstanding_.load(std::memory_order_acquire) == 0 &&
         "Reset requires quiescence (call after Drain)");
  assert(timers_.empty() && "Reset with timers pending");
  coord_.traffic.Reset();
  coord_.busy_seconds = 0.0;
  coord_.tasks_run = 0;
  for (auto& worker : workers_) {
    worker->traffic.Reset();
    worker->busy_seconds = 0.0;
    worker->tasks_run = 0;
  }
  for (auto& v : visits_) v.store(0, std::memory_order_relaxed);
  next_timer_seq_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

const sim::TrafficStats& ThreadPoolBackend::traffic() const {
  // Per-context meters merged on demand; only meaningful (and only
  // safe) once quiescent, like every other metering read.
  merged_traffic_.Reset();
  merged_traffic_.Merge(coord_.traffic);
  for (const auto& worker : workers_) {
    merged_traffic_.Merge(worker->traffic);
  }
  return merged_traffic_;
}

std::vector<uint64_t> ThreadPoolBackend::visits() const {
  std::vector<uint64_t> out(visits_.size());
  for (size_t i = 0; i < visits_.size(); ++i) {
    out[i] = visits_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double ThreadPoolBackend::total_busy_seconds() const {
  double total = coord_.busy_seconds;
  for (const auto& worker : workers_) total += worker->busy_seconds;
  return total;
}

void ThreadPoolBackend::AddBackendStats(StatsRegistry* stats) const {
  uint64_t tasks = coord_.tasks_run;
  for (const auto& worker : workers_) tasks += worker->tasks_run;
  stats->Add("exec.tasks", tasks);
  stats->Add("exec.workers", static_cast<uint64_t>(workers_.size()));
}

namespace {

Result<std::unique_ptr<ExecBackend>> MakeThreadPoolBackend(
    const BackendConfig& config, std::string_view arg) {
  int workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (!arg.empty()) {
    int parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), parsed);
    if (ec != std::errc() || ptr != arg.data() + arg.size() ||
        parsed < 1 || parsed > 1024) {
      return Status::InvalidArgument(
          "backend \"threads\" takes a worker count 1..1024 (got \"" +
          std::string(arg) + "\")");
    }
    workers = parsed;
  }
  return std::unique_ptr<ExecBackend>(
      new ThreadPoolBackend(config, workers));
}

}  // namespace

PARBOX_REGISTER_EXEC_BACKEND(1, "threads", "threads[:W]", MakeThreadPoolBackend);

}  // namespace parbox::exec
