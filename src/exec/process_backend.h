// ProcessBackend: the ExecBackend whose sites live in separate
// processes — a coordinator plus N `sited` site daemons connected by
// Unix-domain (default) or TCP sockets, making the paper's
// "distributed" literal instead of simulated.
//
// ## Division of labor
//
// The ExecBackend contract hands site work to backends as C++
// closures over coordinator-process state (fragment sets, engines,
// round buffers) — closures cannot cross a process boundary. The
// process backend therefore splits the two planes the contract
// bundles:
//
//   * Control/compute plane — per-site serial execution contexts run
//     in the coordinator process, single-threaded inside Drain()'s
//     poll loop, each daemon's sites backed by a coordinator-side
//     shadow ExprFactory (exactly the factory-domain layout the
//     thread pool gives its workers).
//   * Data plane — every parcel between distinct sites crosses a real
//     socket. The frame (net/wire.h) carries the parcel's tag, wire
//     size, trace ids, and — for Coded parcels that crossed factory
//     domains — the actual codec bytes. The daemon hosting the
//     destination site dedups, meters, decodes the payload into its
//     own pinned per-shard ExprFactory (the shipped formulas live
//     remotely), and echoes the payload; the coordinator rebuilds the
//     delivered parcel from the echoed bytes. Delivery happens only
//     after the round trip — remote I/O is on the critical path, as
//     EMBANKS-style cost models assume.
//
// Metering stays coordinator-side and logical (bytes = the parcel's
// wire size, once per Send, like every backend), so answers, visits,
// traffic and per-tag breakdowns are bit-identical to the sim oracle —
// the backend-differential suite holds proc to that. Transport
// overhead (frames, retries, RTT) is reported separately via
// AddBackendStats, and the daemons' own meters come back in
// STATS_RESP frames for cross-checking (net_test.cc).
//
// ## Robustness state machine
//
//   pending request --timeout--> retransmit (same seq, attempt+1,
//        exponential backoff) --max_retries--> declare link dead
//   link dead --spawn mode--> SIGKILL + respawn `sited`, await HELLO
//             --connect mode--> redial with backoff
//   HELLO with a NEW boot nonce --> the daemon's in-memory state is
//        gone: bump the daemon's sites' RecoveryEpoch (Session::plan
//        re-ships their fragments via the migration dirty-record
//        path) and retransmit every pending request
//   liveness: PING after heartbeat_interval of request silence;
//        liveness_timeout without any bytes --> declare dead
//
// The protocol is at-least-once end to end: retransmissions reuse
// their seq, daemons dedup by seq (re-ack without re-meter), the
// coordinator drops duplicate acks — so the deterministic fault
// injector (PARBOX_NET_FAULTS=seed, net/faults.h) can drop, delay and
// duplicate data-plane frames without changing any observable result.
//
// Spec grammar: proc[:N[,tcp]] — N daemons (default 2), Unix-domain
// sockets unless ",tcp" (127.0.0.1, ephemeral ports). Environment:
//   PARBOX_SITED_BIN      sited binary (default: alongside /proc/self/exe)
//   PARBOX_SITED_ADDRS    comma list of standalone daemons to connect
//                         to instead of spawning (overrides N)
//   PARBOX_SITED_LOG_DIR  daemon log directory (spawn mode)
//   PARBOX_NET_TIMEOUT_MS request timeout base (default 200)
//   PARBOX_NET_RETRIES    retransmits before declaring dead (default 5)
//   PARBOX_NET_HEARTBEAT_MS  liveness probe interval (default 500)
//   PARBOX_NET_FAULTS     fault-injection seed (0/unset = off)

#ifndef PARBOX_EXEC_PROCESS_BACKEND_H_
#define PARBOX_EXEC_PROCESS_BACKEND_H_

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <tuple>
#include <vector>

#include "exec/backend.h"
#include "net/conn.h"
#include "net/wire.h"

namespace parbox::exec {

class ProcessBackend final : public ExecBackend {
 public:
  struct Options {
    int num_daemons = 2;
    bool tcp = false;
    /// Non-empty = connect mode: dial these standalone daemons
    /// instead of spawning (count overrides num_daemons).
    std::vector<std::string> connect_addrs;
    double request_timeout = 0.2;      ///< seconds; doubles per retry
    int max_retries = 5;
    double heartbeat_interval = 0.5;   ///< PING after this much silence
    double liveness_timeout = 5.0;     ///< silence -> link dead
    int max_respawns = 8;              ///< consecutive failures -> fatal
    uint64_t fault_seed = 0;
    std::string sited_bin;             ///< resolved in FromEnv
    std::string log_dir;

    /// Defaults + the PARBOX_* environment knobs above.
    static Options FromEnv();
  };

  /// Spawns (or connects) the daemon fleet and completes the HELLO
  /// handshake; fails with the underlying reason (missing sited
  /// binary, nobody listening, handshake timeout) instead of
  /// constructing a dead backend.
  static Result<std::unique_ptr<ExecBackend>> Make(
      const BackendConfig& config, const Options& options);

  ~ProcessBackend() override;

  std::string_view name() const override { return "proc"; }
  int num_sites() const override { return num_sites_; }
  SiteId coordinator() const override { return coordinator_; }
  void SetCoordinator(SiteId site) override;
  Result<SiteId> AddNamespace(
      int num_sites, SiteId coordinator,
      bexpr::ExprFactory* coordinator_factory) override;

  bexpr::ExprFactory& site_factory(SiteId site) override;

  void Compute(SiteId site, uint64_t ops, Task done) override;
  void Send(SiteId from, SiteId to, Parcel parcel, std::string_view tag,
            DeliverFn deliver) override;
  void RecordVisit(SiteId site) override {
    ++visits_[static_cast<size_t>(site)];
  }

  void ScheduleAt(double when, Task task) override;
  double now() const override;

  double Drain() override;
  void Reset() override;

  void MutateExclusive(const Task& mutate) override { mutate(); }

  const sim::TrafficStats& traffic() const override { return traffic_; }
  std::vector<uint64_t> visits() const override { return visits_; }
  uint64_t visits_at(SiteId site) const override {
    return visits_[static_cast<size_t>(site)];
  }
  double total_busy_seconds() const override { return busy_seconds_; }
  void AddBackendStats(StatsRegistry* stats) const override;

  uint64_t RecoveryEpoch(SiteId site) const override;

  // ---- Introspection (tests, tools) ----

  int num_daemons() const { return static_cast<int>(links_.size()); }
  /// Spawn mode: the daemon's pid (kill it to exercise recovery);
  /// -1 in connect mode.
  pid_t daemon_pid(int index) const;
  uint64_t reconnects() const { return reconnects_; }
  uint64_t retries() const { return retries_; }
  /// Links torn down because the inbound byte stream was malformed
  /// (oversize/corrupt length prefix, truncated sections) — the
  /// connection is reset and redialed, the retry protocol re-sends,
  /// and the reason lands in "proc.frame_errors" + stderr.
  uint64_t frame_errors() const { return frame_errors_; }
  uint64_t frames_sent() const;
  uint64_t faults_injected() const;
  /// Merged daemon-reported meters as of the last quiescent Drain —
  /// what the daemons saw cross the wire, after dedup. net_test holds
  /// this byte-identical to the coordinator's logical traffic().
  net::DaemonStats MergedDaemonStats() const;

 private:
  struct PendingReq {
    net::Frame frame;   ///< as sent; retransmitted verbatim (same seq)
    Parcel parcel;      ///< original (keeps the local value for Plain)
    DeliverFn deliver;  ///< parcel requests
    std::function<void(const net::Frame&)> control;  ///< STATS/RESET
    uint32_t attempts = 1;
    double deadline = 0.0;    ///< mono time of the next retransmit
    double first_send = 0.0;  ///< mono, for RTT accounting
  };

  struct DaemonLink {
    int index = 0;
    std::unique_ptr<net::Conn> conn;
    std::string addr;      ///< connect mode target; empty = spawned
    pid_t pid = -1;
    uint64_t nonce = 0;    ///< last HELLO nonce; 0 = never connected
    bool hello = false;    ///< handshake complete on current conn
    uint64_t next_seq = 1;
    std::map<uint64_t, PendingReq> pending;
    double last_rx = 0.0;
    double last_ping = 0.0;
    double next_redial = 0.0;
    int consecutive_failures = 0;
    uint64_t parcels_since_stats = 0;
    /// Counters of predecessor connections (a respawned daemon's
    /// accepted socket replaces the Conn object).
    uint64_t prior_frames = 0;
    uint64_t prior_dropped = 0;
    uint64_t prior_delayed = 0;
    uint64_t prior_duplicated = 0;
  };

  struct Range {
    SiteId base = 0;
    int num_sites = 0;
    SiteId coordinator = 0;
  };

  struct Timer {
    double when = 0.0;
    uint64_t seq = 0;
    Task task;
    bool operator>(const Timer& other) const {
      return std::tie(when, seq) > std::tie(other.when, other.seq);
    }
  };

  ProcessBackend(const BackendConfig& config, const Options& options);
  Status Start();

  // Monotonic wall seconds (process-wide base); now() is mono() minus
  // the Reset epoch, while the net layer stays on mono so Reset never
  // shifts in-flight deadlines.
  static double mono();

  bool is_coordinator_site(SiteId site) const {
    return site >= 0 && static_cast<size_t>(site) < coord_factory_.size() &&
           coord_factory_[static_cast<size_t>(site)] != nullptr;
  }
  int daemon_of(SiteId site) const {
    return static_cast<int>(static_cast<size_t>(site) % links_.size());
  }
  /// The link a from->to parcel is routed through: the daemon hosting
  /// the non-coordinator endpoint (destination preferred); nullptr
  /// when both endpoints are coordinator-context (local hand-off).
  DaemonLink* route_of(SiteId from, SiteId to);
  /// Factory-domain key the daemon pins a shard factory under.
  uint32_t shard_key_of(SiteId to) const;

  Status SpawnDaemon(DaemonLink* link);
  void Redial(DaemonLink* link);
  void DeclareDead(DaemonLink* link, const char* why);
  void OnHello(DaemonLink* link, const net::Frame& frame);
  void OnFrame(DaemonLink* link, net::Frame frame);
  uint64_t EnqueueControl(DaemonLink* link, net::FrameType type,
                          std::function<void(const net::Frame&)> done);
  void RequestDaemonStats();

  /// One iteration of the event loop: retries, liveness, respawns,
  /// poll (up to `max_wait` seconds), socket I/O, frame dispatch.
  void Step(double max_wait);
  /// Drive the loop until `done()` or `timeout` seconds; the returned
  /// status reports a timeout or an accumulated fatal error.
  Status PumpUntil(const std::function<bool()>& done, double timeout);
  bool AllAcked() const;
  void RunReady();
  void Fatal(const std::string& why);

  int num_sites_;
  SiteId coordinator_;
  Options options_;
  std::vector<bexpr::ExprFactory*> coord_factory_;
  std::vector<Range> ranges_;
  bexpr::ExprFactory* default_coord_factory_ = nullptr;
  /// One coordinator-side shadow factory per daemon: the factory
  /// domain of that daemon's sites' execution contexts.
  std::vector<std::unique_ptr<bexpr::ExprFactory>> shard_factory_;

  std::vector<std::unique_ptr<DaemonLink>> links_;
  int listener_ = -1;
  std::string listen_addr_;
  /// Accepted but not yet HELLO-identified connections (spawn mode).
  std::vector<std::unique_ptr<net::Conn>> pending_accepts_;

  /// The single-threaded execution contexts: FIFO of runnable tasks
  /// (site deliveries, compute dones, completed-parcel deliveries).
  std::deque<Task> ready_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      timers_;
  uint64_t next_timer_seq_ = 0;

  sim::TrafficStats traffic_;
  std::vector<uint64_t> visits_;
  double busy_seconds_ = 0.0;
  uint64_t tasks_run_ = 0;
  double epoch_ = 0.0;  ///< mono() at construction / last Reset

  /// Per-daemon recovery epochs (RecoveryEpoch() fans them out to the
  /// daemon's sites): bumped when a HELLO announces a new boot nonce.
  std::vector<uint64_t> daemon_epoch_;

  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t frame_errors_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t acked_ = 0;
  uint64_t dup_acks_ = 0;
  uint64_t rtt_micros_ = 0;
  bool stats_dirty_ = false;
  std::vector<net::DaemonStats> daemon_stats_;
  Status fatal_ = Status::OK();

  static uint64_t next_listener_id_;
};

}  // namespace parbox::exec

#endif  // PARBOX_EXEC_PROCESS_BACKEND_H_
