#include "exec/backend.h"

#include <algorithm>
#include <cstdlib>

namespace parbox::exec {

Result<SiteId> ExecBackend::AddNamespace(int num_sites, SiteId coordinator,
                                         bexpr::ExprFactory* coordinator_factory) {
  (void)num_sites;
  (void)coordinator;
  (void)coordinator_factory;
  return Status::FailedPrecondition(
      "backend \"" + std::string(name()) +
      "\" does not host multiple site namespaces");
}

ExecBackendRegistry& ExecBackendRegistry::Instance() {
  static ExecBackendRegistry* registry = new ExecBackendRegistry();
  return *registry;
}

void ExecBackendRegistry::Register(int order, std::string name,
                                   std::string grammar, Factory factory) {
  Entry entry{std::move(name), std::move(grammar), order, factory};
  auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry,
      [](const Entry& a, const Entry& b) {
        return std::tie(a.order, a.name) < std::tie(b.order, b.name);
      });
  entries_.insert(pos, std::move(entry));
}

std::vector<std::string> ExecBackendRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

std::string ExecBackendRegistry::NamesJoined(char sep) const {
  std::string joined;
  for (const Entry& e : entries_) {
    if (!joined.empty()) joined += sep;
    joined += e.name;
  }
  return joined;
}

Result<std::unique_ptr<ExecBackend>> ExecBackendRegistry::CreateOrError(
    std::string_view spec, const BackendConfig& config) const {
  std::string_view name = spec;
  std::string_view arg;
  if (const size_t colon = spec.find(':'); colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    arg = spec.substr(colon + 1);
  }
  for (const Entry& e : entries_) {
    if (e.name == name) return e.factory(config, arg);
  }
  return Status::InvalidArgument("unknown execution backend \"" +
                                 std::string(spec) + "\"; registered: " +
                                 NamesJoined());
}

std::string ExecBackendRegistry::Grammar(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.grammar;
  }
  return std::string(name);
}

ExecBackendRegistry::Registrar::Registrar(int order, std::string name,
                                          std::string grammar,
                                          Factory factory) {
  ExecBackendRegistry::Instance().Register(order, std::move(name),
                                           std::move(grammar), factory);
}

std::string DefaultBackendSpec() {
  if (const char* spec = std::getenv("PARBOX_BACKEND");
      spec != nullptr && spec[0] != '\0') {
    return spec;
  }
  return "sim";
}

}  // namespace parbox::exec
