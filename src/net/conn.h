// One framed, nonblocking connection: read side feeds a FrameReader,
// write side is a per-connection queue flushed on POLLOUT, and every
// outgoing frame passes the fault injector (net/faults.h) unless it is
// protocol-critical (HELLO, PING/PONG).
//
// Shared by both ends of a link — the coordinator's DaemonLink
// (exec/process_backend.cc) and the daemon's coordinator connection
// (net/daemon.cc). Single-threaded: each side's poll loop is the only
// caller.

#ifndef PARBOX_NET_CONN_H_
#define PARBOX_NET_CONN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/faults.h"
#include "net/wire.h"

namespace parbox::net {

class Conn {
 public:
  explicit Conn(FaultInjector injector) : injector_(injector) {}
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  ~Conn() { Close(); }

  /// Take ownership of a connected fd; the previous connection's
  /// buffers, queues, and delayed frames are discarded (stale frames
  /// of a dead connection must not leak into its successor).
  void Adopt(int fd);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Queue one frame. `faultable` frames consult the injector (drop /
  /// delay / duplicate); `attempt` is the requester's 1-based send
  /// count for the seq (retransmissions become harder to fault, see
  /// net/faults.h). A frame that does not fit the wire format
  /// (FrameFitsWire) is rejected — counted in frames_rejected(), never
  /// queued — so a corrupt length prefix is never written.
  void SendFrame(const Frame& frame, uint32_t attempt, bool faultable,
                 double now);

  /// POLLOUT wanted (queued bytes remain).
  bool wants_write() const { return !wq_.empty(); }
  /// Write as much of the queue as the socket accepts; false on a
  /// connection-fatal error.
  bool FlushWrites();
  /// Drain readable bytes into the frame reader; false on EOF/error or
  /// a malformed stream (see read_error_reason()).
  bool ReadReady();
  /// Pop the next complete inbound frame.
  bool NextFrame(Frame* out) { return reader_.Next(out); }
  /// Why the inbound stream was rejected ("" when it wasn't): the
  /// frame reader's latched diagnostic, surfaced so the owner can say
  /// more than "connection closed" when tearing the link down.
  const std::string& read_error_reason() const {
    return reader_.error_reason();
  }

  /// Move delayed frames whose time has come into the write queue;
  /// returns the earliest still-pending due time (or +inf).
  double PumpDelayed(double now);
  bool has_delayed() const { return !delayed_.empty(); }

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_rejected() const { return frames_rejected_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t faults_dropped() const { return faults_dropped_; }
  uint64_t faults_delayed() const { return faults_delayed_; }
  uint64_t faults_duplicated() const { return faults_duplicated_; }

 private:
  void Queue(std::string bytes);

  int fd_ = -1;
  FrameReader reader_;
  /// Write queue: encoded frames; wq_off_ is the partial-write offset
  /// into the front element.
  std::deque<std::string> wq_;
  size_t wq_off_ = 0;
  struct Delayed {
    double due = 0.0;
    std::string bytes;
  };
  std::vector<Delayed> delayed_;
  FaultInjector injector_;

  uint64_t frames_sent_ = 0;
  uint64_t frames_rejected_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t faults_dropped_ = 0;
  uint64_t faults_delayed_ = 0;
  uint64_t faults_duplicated_ = 0;
};

}  // namespace parbox::net

#endif  // PARBOX_NET_CONN_H_
