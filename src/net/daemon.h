// The site-daemon loop behind the `sited` binary: one process hosting
// site shards of a parbox deployment, speaking the frame protocol of
// net/wire.h over a socket to a coordinator (exec/process_backend.h).
//
// What a daemon does with a PARCEL_REQ:
//   * dedup by (connection, seq) — the protocol is at-least-once, so a
//     retried frame is re-acked but never re-metered or re-decoded;
//   * meter the parcel (per-tag bytes/messages, per-site received
//     bytes) — the STATS_RESP report the coordinator merges, and the
//     quantity net_test.cc holds byte-identical to the coordinator's
//     own logical meters;
//   * if the payload is codec wire bytes (a triplet / triplet batch
//     that crossed factory domains), decode it into the shard's pinned
//     hash-consing ExprFactory — the shipped formulas genuinely live
//     in this process; shards are keyed by the factory-domain id the
//     frame carries and created on first sight;
//   * echo the payload in the PARCEL_RESP — the bytes cross the socket
//     back, and the coordinator reconstructs the delivered parcel from
//     them (the round trip IS the transport, not a simulation of one).
//
// Two modes:
//   * connect mode (`sited --connect=ADDR --index=K`): dial the
//     coordinator's listener, serve until EOF, exit — the auto-spawn
//     lifecycle, where the coordinator owns restarts;
//   * listen mode (`sited --listen=ADDR`): accept coordinators one at
//     a time forever — standalone daemons a coordinator reaches via
//     PARBOX_SITED_ADDRS.
//
// In-memory state (factories, meters) lives for the process: a
// restarted daemon announces a fresh boot nonce in HELLO, which is how
// the coordinator knows to re-ship fragments.

#ifndef PARBOX_NET_DAEMON_H_
#define PARBOX_NET_DAEMON_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace parbox::net {

struct DaemonOptions {
  /// Exactly one of connect_addr / listen_addr is set.
  std::string connect_addr;
  std::string listen_addr;
  /// Which daemon of the coordinator's fleet this is (HELLO.src).
  int index = 0;
  /// Fault-injection seed for this daemon's outbound frames (0 off).
  uint64_t fault_seed = 0;
  /// Optional log stream (not owned); nullptr = silent.
  std::FILE* log = nullptr;
};

/// Run the daemon loop; returns the process exit code (0 on orderly
/// coordinator EOF in connect mode; listen mode only returns on error).
int RunSiteDaemon(const DaemonOptions& options);

}  // namespace parbox::net

#endif  // PARBOX_NET_DAEMON_H_
