// Thin socket helpers under the process backend: address parsing,
// nonblocking listen/connect/accept. Three address forms:
//
//   "@name"        Linux abstract Unix-domain socket (no filesystem
//                  residue — what the coordinator's auto-spawned
//                  daemons use)
//   "/path/sock"   filesystem Unix-domain socket (anything with '/')
//   "host:port"    TCP over IPv4 (127.0.0.1:0 picks an ephemeral port;
//                  ListenAddress recovers the bound port)
//
// All fds come back nonblocking with SIGPIPE suppressed per send; the
// single-threaded poll loops in exec/process_backend.cc and
// net/daemon.cc are the only consumers.

#ifndef PARBOX_NET_SOCKET_H_
#define PARBOX_NET_SOCKET_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace parbox::net {

/// True iff `addr` is a TCP "host:port" form (vs a Unix-domain one).
bool IsTcpAddress(std::string_view addr);

/// Bind + listen on `addr`, returning the nonblocking listener fd.
Result<int> Listen(std::string_view addr);

/// The address a Listen() fd is actually bound to — equal to the input
/// except for TCP port 0, where the kernel-assigned port is filled in.
Result<std::string> ListenAddress(int fd, std::string_view requested);

/// Accept one pending connection (nonblocking listener); returns the
/// nonblocking connection fd, or -1 when nothing is pending.
Result<int> Accept(int listen_fd);

/// Connect to `addr`, waiting up to `timeout_seconds` for the
/// handshake; returns a nonblocking connected fd. Fails (rather than
/// blocks) when nobody listens — callers own the retry loop.
Result<int> Connect(std::string_view addr, double timeout_seconds);

/// write() wrapper: bytes written (possibly 0 on EAGAIN), -1 on a
/// connection-fatal error. Never raises SIGPIPE.
long SendSome(int fd, const char* data, size_t n);

/// read() wrapper: bytes read, 0 on EAGAIN, -1 on EOF or a
/// connection-fatal error.
long RecvSome(int fd, char* buf, size_t n);

void CloseFd(int fd);

}  // namespace parbox::net

#endif  // PARBOX_NET_SOCKET_H_
