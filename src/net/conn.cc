#include "net/conn.h"

#include <limits>

#include "net/socket.h"

namespace parbox::net {

void Conn::Adopt(int fd) {
  Close();
  fd_ = fd;
  reader_ = FrameReader();
  wq_.clear();
  wq_off_ = 0;
  delayed_.clear();
}

void Conn::Close() {
  if (fd_ >= 0) {
    CloseFd(fd_);
    fd_ = -1;
  }
  wq_.clear();
  wq_off_ = 0;
  delayed_.clear();
}

void Conn::Queue(std::string bytes) {
  bytes_sent_ += bytes.size();
  ++frames_sent_;
  wq_.push_back(std::move(bytes));
}

void Conn::SendFrame(const Frame& frame, uint32_t attempt, bool faultable,
                     double now) {
  if (fd_ < 0) return;  // disconnected: the retry protocol re-sends
  if (!FrameFitsWire(frame)) {
    ++frames_rejected_;
    return;
  }
  std::string bytes = EncodeFrame(frame);
  if (faultable && injector_.enabled()) {
    const FaultDecision d = injector_.Decide(frame.seq, attempt);
    switch (d.action) {
      case FaultAction::kDrop:
        ++faults_dropped_;
        return;
      case FaultAction::kDelay:
        ++faults_delayed_;
        delayed_.push_back({now + d.delay_seconds, std::move(bytes)});
        return;
      case FaultAction::kDuplicate:
        ++faults_duplicated_;
        delayed_.push_back({now + d.delay_seconds, bytes});
        break;  // and deliver the original now
      case FaultAction::kDeliver:
        break;
    }
  }
  Queue(std::move(bytes));
}

bool Conn::FlushWrites() {
  while (!wq_.empty()) {
    const std::string& front = wq_.front();
    const long n = SendSome(fd_, front.data() + wq_off_,
                            front.size() - wq_off_);
    if (n < 0) return false;
    if (n == 0) return true;  // kernel buffer full; wait for POLLOUT
    wq_off_ += static_cast<size_t>(n);
    if (wq_off_ == front.size()) {
      wq_.pop_front();
      wq_off_ = 0;
    }
  }
  return true;
}

bool Conn::ReadReady() {
  char buf[64 * 1024];
  for (;;) {
    const long n = RecvSome(fd_, buf, sizeof(buf));
    if (n < 0) return false;
    if (n == 0) break;
    bytes_received_ += static_cast<uint64_t>(n);
    reader_.Feed(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  return !reader_.error();
}

double Conn::PumpDelayed(double now) {
  double next = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].due <= now) {
      Queue(std::move(delayed_[i].bytes));
      delayed_[i] = std::move(delayed_.back());
      delayed_.pop_back();
    } else {
      if (delayed_[i].due < next) next = delayed_[i].due;
      ++i;
    }
  }
  return next;
}

}  // namespace parbox::net
