#include "net/daemon.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "boolexpr/expr.h"
#include "boolexpr/serialize.h"
#include "net/conn.h"
#include "net/socket.h"
#include "net/wire.h"

namespace parbox::net {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Log(std::FILE* log, const char* fmt, ...) {
  if (log == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::fprintf(log, "[sited %.3f] ", Now());
  std::vfprintf(log, fmt, args);
  std::fprintf(log, "\n");
  std::fflush(log);
  va_end(args);
}

/// Per-connection at-least-once receive window: seqs <= floor are all
/// processed; the sparse set holds processed seqs above it. Seqs are
/// assigned monotonically by the sender, so the floor advances and the
/// set stays tiny (out-of-order arrivals are only injector delays).
class SeqDedup {
 public:
  /// True iff `seq` is new (and records it).
  bool CheckAndRecord(uint64_t seq) {
    if (seq <= floor_ || above_.count(seq) != 0) return false;
    above_.insert(seq);
    while (above_.count(floor_ + 1) != 0) {
      above_.erase(floor_ + 1);
      ++floor_;
    }
    return true;
  }

 private:
  uint64_t floor_ = 0;
  std::set<uint64_t> above_;
};

/// One daemon's whole in-memory site state: pinned per-shard
/// factories plus the meters STATS_RESP reports. Lives for the
/// process — a restart loses it, which the boot nonce announces.
struct SiteState {
  /// Factory-domain id (the coordinator's shard key) -> the pinned
  /// hash-consing factory the shipped formulas are interned into.
  std::map<uint32_t, std::unique_ptr<bexpr::ExprFactory>> shards;
  DaemonStats stats;
  std::map<std::string, std::pair<uint64_t, uint64_t>> tag_counts;
  std::map<uint32_t, uint64_t> bytes_into;

  bexpr::ExprFactory* shard(uint32_t base) {
    auto& slot = shards[base];
    if (slot == nullptr) slot = std::make_unique<bexpr::ExprFactory>();
    return slot.get();
  }

  std::string EncodeStats() const {
    DaemonStats out = stats;
    out.tag_counts.assign(tag_counts.begin(), tag_counts.end());
    out.bytes_into.assign(bytes_into.begin(), bytes_into.end());
    return out.Encode();
  }

  void ResetMeters() {
    stats = DaemonStats{};
    tag_counts.clear();
    bytes_into.clear();
    // Shard factories persist, mirroring ExecBackend::Reset's
    // "interned site-factory formulas persist" contract.
  }
};

/// Decode a codec payload into the shard factory. The payload is one
/// of the two exec/codec.h images — a single triplet (u32 fragment +
/// serialized exprs) or a batch — distinguished by trying each; a
/// payload matching neither counts as a decode error (the coordinator
/// still gets the echo; the real receiver surfaces any corruption).
bool DecodePayload(std::string_view payload, bexpr::ExprFactory* factory) {
  {
    ByteReader r(payload);
    (void)r.U32();  // fragment id
    if (r.ok() &&
        bexpr::DeserializeExprs(factory, payload.substr(4)).ok()) {
      return true;
    }
  }
  ByteReader r(payload);
  const uint32_t count = r.U32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    (void)r.U64();  // key
    (void)r.U32();  // slot
    (void)r.U32();  // fragment
    const uint32_t size = r.U32();
    std::string_view exprs = r.Bytes(size);
    if (!r.ok() || !bexpr::DeserializeExprs(factory, exprs).ok()) {
      return false;
    }
  }
  return r.ok() && r.remaining() == 0;
}

/// Handle one inbound frame; queues any response on `conn`. Returns
/// false when the frame type is unknown (connection poisoned).
bool HandleFrame(const Frame& frame, SiteState* state, SeqDedup* dedup,
                 Conn* conn, std::FILE* log) {
  state->stats.frames_received++;
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kParcelReq: {
      const bool fresh = dedup->CheckAndRecord(frame.seq);
      if (fresh) {
        state->stats.parcels++;
        auto& counts = state->tag_counts[frame.tag];
        counts.first += frame.wire_bytes;
        counts.second += 1;
        state->bytes_into[frame.dest] += frame.wire_bytes;
        if ((frame.flags & kFrameFlagCoded) != 0 &&
            (frame.flags & kFrameFlagHasPayload) != 0) {
          if (DecodePayload(frame.payload,
                            state->shard(frame.shard_base))) {
            state->stats.decoded_payloads++;
          } else {
            state->stats.decode_errors++;
            Log(log, "decode error: seq=%" PRIu64 " tag=%s payload=%zu",
                frame.seq, frame.tag.c_str(), frame.payload.size());
          }
        }
      } else {
        state->stats.dedup_hits++;
      }
      Frame resp = frame;
      resp.type = static_cast<uint8_t>(FrameType::kParcelResp);
      // A re-requested ack always flies (attempt escalation): the
      // coordinator's bounded retry budget converges under any seed.
      conn->SendFrame(resp, fresh ? 1 : kAlwaysDeliverAttempt,
                      /*faultable=*/true, Now());
      return true;
    }
    case FrameType::kPing: {
      Frame pong;
      pong.type = static_cast<uint8_t>(FrameType::kPong);
      pong.seq = frame.seq;
      conn->SendFrame(pong, 1, /*faultable=*/false, Now());
      return true;
    }
    case FrameType::kStatsReq: {
      Frame resp;
      resp.type = static_cast<uint8_t>(FrameType::kStatsResp);
      resp.seq = frame.seq;
      resp.flags = kFrameFlagHasPayload;
      resp.payload = state->EncodeStats();
      conn->SendFrame(resp, 1, /*faultable=*/false, Now());
      return true;
    }
    case FrameType::kResetReq: {
      state->ResetMeters();
      Frame resp;
      resp.type = static_cast<uint8_t>(FrameType::kResetResp);
      resp.seq = frame.seq;
      conn->SendFrame(resp, 1, /*faultable=*/false, Now());
      return true;
    }
    default:
      Log(log, "unknown frame type %u seq=%" PRIu64,
          static_cast<unsigned>(frame.type), frame.seq);
      return false;
  }
}

/// Serve one established connection until EOF/error. Returns true on
/// orderly EOF.
bool ServeConnection(Conn* conn, SiteState* state, std::FILE* log) {
  SeqDedup dedup;
  for (;;) {
    pollfd pfd{conn->fd(), POLLIN, 0};
    if (conn->wants_write()) pfd.events |= POLLOUT;
    int timeout_ms = -1;
    if (conn->has_delayed()) {
      const double due = conn->PumpDelayed(Now());
      if (due < std::numeric_limits<double>::infinity()) {
        timeout_ms = std::max(1, static_cast<int>((due - Now()) * 1000));
      }
    }
    const int n = poll(&pfd, 1, timeout_ms);
    conn->PumpDelayed(Now());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      if (!conn->ReadReady()) {
        if (!conn->read_error_reason().empty()) {
          Log(log, "malformed frame from coordinator (%s); dropping "
                   "connection",
              conn->read_error_reason().c_str());
        } else {
          Log(log, "coordinator disconnected");
        }
        return true;
      }
      Frame frame;
      while (conn->NextFrame(&frame)) {
        if (!HandleFrame(frame, state, &dedup, conn, log)) return false;
      }
    }
    if (!conn->FlushWrites()) {
      Log(log, "write failed; dropping connection");
      return true;
    }
  }
}

uint64_t BootNonce() {
  const uint64_t t = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  uint64_t x = t ^ (static_cast<uint64_t>(getpid()) << 32);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  if (x == 0) x = 1;  // nonce 0 means "never seen"
  return x;
}

void SendHello(Conn* conn, int index, uint64_t nonce) {
  Frame hello;
  hello.type = static_cast<uint8_t>(FrameType::kHello);
  hello.seq = nonce;
  hello.src = static_cast<uint32_t>(index);
  conn->SendFrame(hello, 1, /*faultable=*/false, Now());
}

}  // namespace

int RunSiteDaemon(const DaemonOptions& options) {
  SiteState state;
  const uint64_t nonce = BootNonce();
  // Direction bit 1 = daemon->coordinator, so the two ends of a link
  // draw independent fault streams from one seed.
  const FaultInjector injector(
      options.fault_seed,
      (static_cast<uint64_t>(options.index) << 1) | 1u);

  if (!options.connect_addr.empty()) {
    // Connect mode: the coordinator just spawned us; it may still be
    // setting up, so dial with retries before giving up.
    int fd = -1;
    const double deadline = Now() + 10.0;
    for (;;) {
      auto connected = Connect(options.connect_addr, 1.0);
      if (connected.ok()) {
        fd = *connected;
        break;
      }
      if (Now() >= deadline) {
        Log(options.log, "connect %s failed: %s",
            options.connect_addr.c_str(),
            connected.status().ToString().c_str());
        return 1;
      }
      usleep(20 * 1000);
    }
    Conn conn(injector);
    conn.Adopt(fd);
    SendHello(&conn, options.index, nonce);
    Log(options.log, "daemon %d up (pid %d, nonce %" PRIx64 ") -> %s",
        options.index, getpid(), nonce, options.connect_addr.c_str());
    return ServeConnection(&conn, &state, options.log) ? 0 : 1;
  }

  // Listen mode: accept coordinators one at a time, forever.
  auto listener = Listen(options.listen_addr);
  if (!listener.ok()) {
    Log(options.log, "listen %s failed: %s", options.listen_addr.c_str(),
        listener.status().ToString().c_str());
    return 1;
  }
  Log(options.log, "daemon %d listening on %s (pid %d, nonce %" PRIx64 ")",
      options.index, options.listen_addr.c_str(), getpid(), nonce);
  for (;;) {
    pollfd pfd{*listener, POLLIN, 0};
    if (poll(&pfd, 1, -1) < 0 && errno != EINTR) return 1;
    auto accepted = Accept(*listener);
    if (!accepted.ok()) return 1;
    if (*accepted < 0) continue;
    Conn conn(injector);
    conn.Adopt(*accepted);
    SendHello(&conn, options.index, nonce);
    Log(options.log, "coordinator connected");
    if (!ServeConnection(&conn, &state, options.log)) return 1;
  }
}

}  // namespace parbox::net
