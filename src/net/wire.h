// Wire format of the process backend (exec/process_backend.h): the
// length-prefixed frames a parbox coordinator and its site daemons
// (`sited`) exchange over Unix-domain or TCP sockets.
//
// Every frame is
//
//   [u32 body_len][body]
//
// with a fixed little-endian body header followed by two
// variable-length sections (tag, payload):
//
//   u8  type         FrameType
//   u64 seq          per-connection, assigned by the requester
//   u32 src          sending site (PARCEL_*), daemon index (HELLO)
//   u32 dest         destination site (PARCEL_*)
//   u32 shard_base   factory-domain key of the destination shard
//   u64 wire_bytes   the parcel's metered payload size
//   u64 trace_id     obs/trace.h context — trace metadata crosses the
//   u64 trace_span   process boundary as real wire bytes, not POD
//   u8  flags        kFrameFlag* bits
//   u16 tag_len      } tag bytes follow the header,
//   u32 payload_len  } payload bytes follow the tag
//
// Unused header fields of control frames (PING, STATS_*, ...) are
// zero. HELLO reuses seq for the daemon's boot nonce — the value whose
// change tells a reconnecting coordinator that the daemon's in-memory
// site state (pinned factories, meters) was lost and fragments must be
// re-shipped.
//
// The request/response protocol on top is at-least-once: requests are
// retried with the SAME seq after a timeout, receivers deduplicate by
// seq, so drops/delays/duplicates (net/faults.h injects all three)
// never double-deliver or double-meter. See exec/process_backend.h for
// the full state machine.

#ifndef PARBOX_NET_WIRE_H_
#define PARBOX_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parbox::net {

enum class FrameType : uint8_t {
  kHello = 1,       ///< daemon -> coordinator on connect (seq = nonce)
  kParcelReq = 2,   ///< coordinator -> daemon: a parcel crossing sites
  kParcelResp = 3,  ///< daemon -> coordinator: ack, payload echoed
  kPing = 4,        ///< liveness probe (either direction)
  kPong = 5,
  kStatsReq = 6,    ///< coordinator -> daemon: report your meters
  kStatsResp = 7,   ///< payload = DaemonStats::Encode()
  kResetReq = 8,    ///< coordinator -> daemon: rewind meters
  kResetResp = 9,
};

/// Frame.flags bits.
inline constexpr uint8_t kFrameFlagHasPayload = 1;  ///< payload is content
inline constexpr uint8_t kFrameFlagCoded = 2;       ///< payload is codec wire

struct Frame {
  uint8_t type = 0;
  uint64_t seq = 0;
  uint32_t src = 0;
  uint32_t dest = 0;
  uint32_t shard_base = 0;
  uint64_t wire_bytes = 0;
  uint64_t trace_id = 0;
  uint64_t trace_span = 0;
  uint8_t flags = 0;
  std::string tag;
  std::string payload;
};

/// Frames larger than this are a protocol error (no parcel payload
/// comes close; guards the reader against a corrupt length prefix).
inline constexpr uint32_t kMaxFrameBody = 64u << 20;

/// True when `frame`'s variable sections fit the wire format: tag no
/// longer than a u16 counts, whole body within kMaxFrameBody. A frame
/// that fails this must not be encoded — the u16/u32 length fields
/// would silently truncate and desynchronize the peer's reader.
bool FrameFitsWire(const Frame& frame);

/// The whole frame, length prefix included. Returns "" when
/// !FrameFitsWire(frame) — callers (Conn::SendFrame) reject oversize
/// frames instead of putting a corrupt length on the wire.
std::string EncodeFrame(const Frame& frame);

/// Incremental decoder over a byte stream: feed whatever the socket
/// produced, pop complete frames. A malformed frame (oversized length,
/// truncated sections) puts the reader into a latched error state
/// without buffering or allocating anything for the bogus length;
/// error_reason() says what was rejected. Recovery is per-connection:
/// tearing the connection down and re-Adopt()ing a fresh socket resets
/// the reader, and the retry protocol re-sends anything lost.
class FrameReader {
 public:
  void Feed(const char* data, size_t n);
  /// Pop the next complete frame into `*out`; false when no complete
  /// frame is buffered (or the stream is in the error state).
  bool Next(Frame* out);
  bool error() const { return error_; }
  /// Human-readable cause of the latched error ("" when !error()).
  const std::string& error_reason() const { return error_reason_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  bool FailStream(std::string reason);

  std::string buf_;
  size_t pos_ = 0;
  bool error_ = false;
  std::string error_reason_;
};

// ---- Primitive little-endian helpers (shared with the stats blob) --

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);

/// Bounds-checked sequential reads; any overrun latches !ok().
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}
  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  std::string_view Bytes(size_t n);
  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size(); }

 private:
  std::string_view data_;
  bool ok_ = true;
};

/// What a site daemon meters and reports back (STATS_RESP payload):
/// per-tag traffic it carried (bytes, messages — after seq dedup, so
/// retried frames count once, exactly like the coordinator's logical
/// meters), per-site received bytes, and the transport counters.
struct DaemonStats {
  uint64_t frames_received = 0;
  uint64_t parcels = 0;        ///< distinct PARCEL_REQs processed
  uint64_t dedup_hits = 0;     ///< duplicate REQs re-acked, not re-metered
  uint64_t decoded_payloads = 0;  ///< codec payloads interned into a shard
  uint64_t decode_errors = 0;
  std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>>
      tag_counts;  ///< tag -> (bytes, messages)
  std::vector<std::pair<uint32_t, uint64_t>> bytes_into;  ///< site -> bytes

  std::string Encode() const;
  /// False on a malformed blob (`*this` is then unspecified).
  bool Decode(std::string_view data);
  void MergeFrom(const DaemonStats& other);
};

}  // namespace parbox::net

#endif  // PARBOX_NET_WIRE_H_
