#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <charconv>
#include <cstddef>
#include <cstring>

namespace parbox::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Fill a sockaddr_un for "@abstract" or "/path" forms. Abstract names
/// ('@' -> leading NUL) are Linux-only but leave no filesystem residue,
/// which is why the auto-spawn path uses them.
Result<std::pair<sockaddr_un, socklen_t>> UnixSockaddr(
    std::string_view addr) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (addr.size() + 1 > sizeof(sa.sun_path)) {
    return Status::InvalidArgument("unix socket address too long: \"" +
                                   std::string(addr) + "\"");
  }
  socklen_t len;
  if (!addr.empty() && addr[0] == '@') {
    sa.sun_path[0] = '\0';
    std::memcpy(sa.sun_path + 1, addr.data() + 1, addr.size() - 1);
    len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                 addr.size());
  } else {
    std::memcpy(sa.sun_path, addr.data(), addr.size());
    len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                 addr.size() + 1);
  }
  return std::make_pair(sa, len);
}

Result<std::pair<sockaddr_in, socklen_t>> TcpSockaddr(
    std::string_view addr) {
  const size_t colon = addr.rfind(':');
  const std::string host(addr.substr(0, colon));
  const std::string_view port_str = addr.substr(colon + 1);
  int port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_str.data(), port_str.data() + port_str.size(), port);
  if (ec != std::errc() || ptr != port_str.data() + port_str.size() ||
      port < 0 || port > 65535) {
    return Status::InvalidArgument("bad TCP port in \"" +
                                   std::string(addr) + "\"");
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host in \"" +
                                   std::string(addr) + "\"");
  }
  return std::make_pair(sa, static_cast<socklen_t>(sizeof(sa)));
}

}  // namespace

bool IsTcpAddress(std::string_view addr) {
  // Unix forms are "@name" or contain '/'; everything with a ':' and
  // neither marker is "host:port".
  return !addr.empty() && addr[0] != '@' &&
         addr.find('/') == std::string_view::npos &&
         addr.find(':') != std::string_view::npos;
}

Result<int> Listen(std::string_view addr) {
  const bool tcp = IsTcpAddress(addr);
  const int fd = socket(tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (tcp) {
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    auto sa = TcpSockaddr(addr);
    if (!sa.ok()) {
      CloseFd(fd);
      return sa.status();
    }
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa->first), sa->second) < 0) {
      CloseFd(fd);
      return Errno("bind " + std::string(addr));
    }
  } else {
    auto sa = UnixSockaddr(addr);
    if (!sa.ok()) {
      CloseFd(fd);
      return sa.status();
    }
    if (!addr.empty() && addr[0] != '@') unlink(std::string(addr).c_str());
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa->first), sa->second) < 0) {
      CloseFd(fd);
      return Errno("bind " + std::string(addr));
    }
  }
  if (listen(fd, 64) < 0) {
    CloseFd(fd);
    return Errno("listen " + std::string(addr));
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  return fd;
}

Result<std::string> ListenAddress(int fd, std::string_view requested) {
  if (!IsTcpAddress(requested)) return std::string(requested);
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    return Errno("getsockname");
  }
  char host[INET_ADDRSTRLEN];
  if (inet_ntop(AF_INET, &sa.sin_addr, host, sizeof(host)) == nullptr) {
    return Errno("inet_ntop");
  }
  return std::string(host) + ":" + std::to_string(ntohs(sa.sin_port));
}

Result<int> Accept(int listen_fd) {
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return -1;
    }
    return Errno("accept");
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> Connect(std::string_view addr, double timeout_seconds) {
  const bool tcp = IsTcpAddress(addr);
  const int fd = socket(tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  int rc;
  if (tcp) {
    auto sa = TcpSockaddr(addr);
    if (!sa.ok()) {
      CloseFd(fd);
      return sa.status();
    }
    rc = connect(fd, reinterpret_cast<sockaddr*>(&sa->first), sa->second);
  } else {
    auto sa = UnixSockaddr(addr);
    if (!sa.ok()) {
      CloseFd(fd);
      return sa.status();
    }
    rc = connect(fd, reinterpret_cast<sockaddr*>(&sa->first), sa->second);
  }
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int n =
        poll(&pfd, 1, static_cast<int>(timeout_seconds * 1000.0));
    if (n <= 0) {
      CloseFd(fd);
      return Status::Internal("connect " + std::string(addr) +
                              ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CloseFd(fd);
      errno = err;
      return Errno("connect " + std::string(addr));
    }
  } else if (rc < 0) {
    CloseFd(fd);
    return Errno("connect " + std::string(addr));
  }
  if (tcp) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

long SendSome(int fd, const char* data, size_t n) {
  const ssize_t rc = send(fd, data, n, MSG_NOSIGNAL);
  if (rc >= 0) return rc;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

long RecvSome(int fd, char* buf, size_t n) {
  const ssize_t rc = recv(fd, buf, n, 0);
  if (rc > 0) return rc;
  if (rc == 0) return -1;  // orderly EOF is connection-fatal too
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

void CloseFd(int fd) {
  if (fd >= 0) close(fd);
}

}  // namespace parbox::net
