#include "net/faults.h"

#include <cstdlib>

namespace parbox::net {

namespace {

/// splitmix64: cheap, well-mixed, and stable across platforms — the
/// determinism contract is "same seed, same faults", so no libc RNG.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultDecision FaultInjector::Decide(uint64_t seq, uint32_t attempt) const {
  FaultDecision decision;
  if (seed_ == 0) return decision;
  const uint64_t h = Mix(Mix(Mix(seed_) ^ endpoint_) ^
                         (seq * 0x100000001b3ull + attempt));
  const uint32_t roll = static_cast<uint32_t>(h % 100);
  // 12% drop, 10% delay, 6% duplicate, 72% clean — aggressive enough
  // that a 64-query stream exercises every path, tame enough that the
  // attempt-3 exemption below keeps retry counts within budget.
  if (roll < 12) {
    if (attempt < kAlwaysDeliverAttempt) {
      decision.action = FaultAction::kDrop;
    }
  } else if (roll < 22) {
    decision.action = attempt < kAlwaysDeliverAttempt
                          ? FaultAction::kDelay
                          : FaultAction::kDeliver;
    decision.delay_seconds = 0.001 + static_cast<double>((h >> 32) % 8) /
                                         1000.0;  // 1..8 ms
  } else if (roll < 28) {
    decision.action = FaultAction::kDuplicate;
    decision.delay_seconds =
        0.001 + static_cast<double>((h >> 32) % 4) / 1000.0;
  }
  return decision;
}

uint64_t FaultInjector::SeedFromEnv() {
  const char* env = std::getenv("PARBOX_NET_FAULTS");
  if (env == nullptr || env[0] == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

}  // namespace parbox::net
