// Deterministic frame-level fault injection (PARBOX_NET_FAULTS=seed).
//
// The process backend's chaos path — drops, delays, duplicated frames
// — must be testable in CI, so faults are not random: the decision for
// a frame is a pure hash of (seed, endpoint id, frame seq, attempt
// counter). Two runs with the same seed inject the same faults at the
// same protocol points, and seed 0 (or an unset env) disables the hook
// entirely.
//
// Guarantees that keep a faulty run convergent and fast:
//   * only PARCEL/STATS/RESET frames are faulted — HELLO and the
//     PING/PONG liveness probes always fly, so fault injection
//     exercises the retry path, never the reconnect path;
//   * an attempt counter >= kAlwaysDeliverAttempt is never dropped:
//     the bounded retry budget of exec/process_backend.cc always
//     suffices, no matter the seed.

#ifndef PARBOX_NET_FAULTS_H_
#define PARBOX_NET_FAULTS_H_

#include <cstdint>

namespace parbox::net {

/// Retries from this attempt on are exempt from drops/delays (see
/// file comment). The coordinator's retry budget must exceed it.
inline constexpr uint32_t kAlwaysDeliverAttempt = 3;

enum class FaultAction : uint8_t {
  kDeliver = 0,
  kDrop = 1,
  kDelay = 2,      ///< deliver after delay_seconds
  kDuplicate = 3,  ///< deliver now AND again after delay_seconds
};

struct FaultDecision {
  FaultAction action = FaultAction::kDeliver;
  double delay_seconds = 0.0;
};

class FaultInjector {
 public:
  /// `seed` 0 disables; `endpoint` distinguishes the two directions of
  /// a link (coordinator mixes the daemon index, daemons mix their own
  /// index + a direction bit) so both sides fault independently but
  /// deterministically.
  FaultInjector(uint64_t seed, uint64_t endpoint)
      : seed_(seed), endpoint_(endpoint) {}

  bool enabled() const { return seed_ != 0; }

  /// The fate of one send of frame `seq`, `attempt` (1-based, counts
  /// retransmissions of the same seq).
  FaultDecision Decide(uint64_t seq, uint32_t attempt) const;

  /// The process-wide seed: $PARBOX_NET_FAULTS parsed once (0 when
  /// unset/empty/unparseable).
  static uint64_t SeedFromEnv();

 private:
  uint64_t seed_;
  uint64_t endpoint_;
};

}  // namespace parbox::net

#endif  // PARBOX_NET_FAULTS_H_
