#include "net/wire.h"

#include <cstring>

namespace parbox::net {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint8_t ByteReader::U8() {
  if (data_.size() < 1) {
    ok_ = false;
    return 0;
  }
  uint8_t v = static_cast<uint8_t>(data_[0]);
  data_.remove_prefix(1);
  return v;
}

uint16_t ByteReader::U16() {
  if (data_.size() < 2) {
    ok_ = false;
    return 0;
  }
  uint16_t v;
  std::memcpy(&v, data_.data(), 2);
  data_.remove_prefix(2);
  return v;
}

uint32_t ByteReader::U32() {
  if (data_.size() < 4) {
    ok_ = false;
    return 0;
  }
  uint32_t v;
  std::memcpy(&v, data_.data(), 4);
  data_.remove_prefix(4);
  return v;
}

uint64_t ByteReader::U64() {
  if (data_.size() < 8) {
    ok_ = false;
    return 0;
  }
  uint64_t v;
  std::memcpy(&v, data_.data(), 8);
  data_.remove_prefix(8);
  return v;
}

std::string_view ByteReader::Bytes(size_t n) {
  if (data_.size() < n) {
    ok_ = false;
    return {};
  }
  std::string_view v = data_.substr(0, n);
  data_.remove_prefix(n);
  return v;
}

bool FrameFitsWire(const Frame& frame) {
  if (frame.tag.size() > 0xffff) return false;
  const uint64_t body =
      52 + static_cast<uint64_t>(frame.tag.size()) + frame.payload.size();
  return body <= kMaxFrameBody;
}

std::string EncodeFrame(const Frame& frame) {
  if (!FrameFitsWire(frame)) return {};
  std::string body;
  body.reserve(52 + frame.tag.size() + frame.payload.size());
  PutU8(&body, frame.type);
  PutU64(&body, frame.seq);
  PutU32(&body, frame.src);
  PutU32(&body, frame.dest);
  PutU32(&body, frame.shard_base);
  PutU64(&body, frame.wire_bytes);
  PutU64(&body, frame.trace_id);
  PutU64(&body, frame.trace_span);
  PutU8(&body, frame.flags);
  PutU16(&body, static_cast<uint16_t>(frame.tag.size()));
  PutU32(&body, static_cast<uint32_t>(frame.payload.size()));
  body += frame.tag;
  body += frame.payload;

  std::string out;
  out.reserve(4 + body.size());
  PutU32(&out, static_cast<uint32_t>(body.size()));
  out += body;
  return out;
}

void FrameReader::Feed(const char* data, size_t n) {
  if (error_) return;
  // Compact the consumed prefix before growing (keeps the buffer at
  // roughly one frame of slack instead of the whole stream).
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

bool FrameReader::FailStream(std::string reason) {
  error_ = true;
  error_reason_ = std::move(reason);
  // Release the buffer: nothing behind a corrupt length is decodable,
  // and holding bytes for an impossible frame is exactly the
  // unbounded-allocation path this guards against.
  buf_.clear();
  buf_.shrink_to_fit();
  pos_ = 0;
  return false;
}

bool FrameReader::Next(Frame* out) {
  if (error_) return false;
  const size_t avail = buf_.size() - pos_;
  if (avail < 4) return false;
  uint32_t body_len;
  std::memcpy(&body_len, buf_.data() + pos_, 4);
  if (body_len > kMaxFrameBody) {
    return FailStream("frame body length " + std::to_string(body_len) +
                      " exceeds the " + std::to_string(kMaxFrameBody) +
                      "-byte cap");
  }
  if (body_len < 52) {
    return FailStream("frame body length " + std::to_string(body_len) +
                      " is below the 52-byte fixed header");
  }
  if (avail < 4 + static_cast<size_t>(body_len)) return false;

  ByteReader r(std::string_view(buf_).substr(pos_ + 4, body_len));
  out->type = r.U8();
  out->seq = r.U64();
  out->src = r.U32();
  out->dest = r.U32();
  out->shard_base = r.U32();
  out->wire_bytes = r.U64();
  out->trace_id = r.U64();
  out->trace_span = r.U64();
  out->flags = r.U8();
  const uint16_t tag_len = r.U16();
  const uint32_t payload_len = r.U32();
  out->tag = std::string(r.Bytes(tag_len));
  out->payload = std::string(r.Bytes(payload_len));
  if (!r.ok() || r.remaining() != 0) {
    return FailStream("frame sections disagree with the body length");
  }
  pos_ += 4 + body_len;
  return true;
}

std::string DaemonStats::Encode() const {
  std::string out;
  PutU64(&out, frames_received);
  PutU64(&out, parcels);
  PutU64(&out, dedup_hits);
  PutU64(&out, decoded_payloads);
  PutU64(&out, decode_errors);
  PutU32(&out, static_cast<uint32_t>(tag_counts.size()));
  for (const auto& [tag, counts] : tag_counts) {
    PutU16(&out, static_cast<uint16_t>(tag.size()));
    out += tag;
    PutU64(&out, counts.first);
    PutU64(&out, counts.second);
  }
  PutU32(&out, static_cast<uint32_t>(bytes_into.size()));
  for (const auto& [site, bytes] : bytes_into) {
    PutU32(&out, site);
    PutU64(&out, bytes);
  }
  return out;
}

bool DaemonStats::Decode(std::string_view data) {
  ByteReader r(data);
  frames_received = r.U64();
  parcels = r.U64();
  dedup_hits = r.U64();
  decoded_payloads = r.U64();
  decode_errors = r.U64();
  const uint32_t ntags = r.U32();
  tag_counts.clear();
  for (uint32_t i = 0; i < ntags && r.ok(); ++i) {
    const uint16_t len = r.U16();
    std::string tag(r.Bytes(len));
    const uint64_t bytes = r.U64();
    const uint64_t msgs = r.U64();
    tag_counts.emplace_back(std::move(tag), std::make_pair(bytes, msgs));
  }
  const uint32_t nsites = r.U32();
  bytes_into.clear();
  for (uint32_t i = 0; i < nsites && r.ok(); ++i) {
    const uint32_t site = r.U32();
    const uint64_t bytes = r.U64();
    bytes_into.emplace_back(site, bytes);
  }
  return r.ok() && r.remaining() == 0;
}

void DaemonStats::MergeFrom(const DaemonStats& other) {
  frames_received += other.frames_received;
  parcels += other.parcels;
  dedup_hits += other.dedup_hits;
  decoded_payloads += other.decoded_payloads;
  decode_errors += other.decode_errors;
  for (const auto& [tag, counts] : other.tag_counts) {
    bool found = false;
    for (auto& [mine, mine_counts] : tag_counts) {
      if (mine == tag) {
        mine_counts.first += counts.first;
        mine_counts.second += counts.second;
        found = true;
        break;
      }
    }
    if (!found) tag_counts.emplace_back(tag, counts);
  }
  for (const auto& [site, bytes] : other.bytes_into) {
    bool found = false;
    for (auto& [mine, mine_bytes] : bytes_into) {
      if (mine == site) {
        mine_bytes += bytes;
        found = true;
        break;
      }
    }
    if (!found) bytes_into.emplace_back(site, bytes);
  }
}

}  // namespace parbox::net
