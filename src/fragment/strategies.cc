#include "fragment/strategies.h"

#include <utility>

namespace parbox::frag {

namespace {

/// All (fragment, node) split candidates: elements of live fragments
/// that are not the fragment's own root and whose in-fragment subtree
/// has at least `min_elements` elements.
std::vector<std::pair<FragmentId, xml::Node*>> SplitCandidates(
    const FragmentSet& set, size_t min_elements) {
  std::vector<std::pair<FragmentId, xml::Node*>> out;
  for (FragmentId f : set.live_ids()) {
    std::vector<xml::Node*> stack{set.fragment(f).root};
    while (!stack.empty()) {
      xml::Node* n = stack.back();
      stack.pop_back();
      if (n->is_element() && n != set.fragment(f).root &&
          xml::CountElements(n) >= min_elements) {
        out.emplace_back(f, n);
      }
      for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
        stack.push_back(c);
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<FragmentId>> SplitAtAllLabeled(FragmentSet* set,
                                                  std::string_view label) {
  std::vector<FragmentId> created;
  for (;;) {
    // Re-scan after every split: splitting moves inner matches into the
    // new fragment, so the owning fragment id must be recomputed.
    FragmentId owner = kNoFragment;
    xml::Node* target = nullptr;
    for (FragmentId f : set->live_ids()) {
      std::vector<xml::Node*> stack{set->fragment(f).root};
      while (!stack.empty() && target == nullptr) {
        xml::Node* n = stack.back();
        stack.pop_back();
        if (n->is_element() && n->label() == label &&
            n != set->fragment(f).root) {
          owner = f;
          target = n;
          break;
        }
        for (xml::Node* c = n->first_child; c != nullptr;
             c = c->next_sibling) {
          stack.push_back(c);
        }
      }
      if (target != nullptr) break;
    }
    if (target == nullptr) return created;
    PARBOX_ASSIGN_OR_RETURN(FragmentId id, set->Split(owner, target));
    created.push_back(id);
  }
}

Result<std::vector<FragmentId>> RandomSplits(FragmentSet* set, int count,
                                             Rng* rng, size_t min_elements) {
  std::vector<FragmentId> created;
  for (int i = 0; i < count; ++i) {
    auto candidates = SplitCandidates(*set, min_elements);
    if (candidates.empty()) break;
    auto [f, node] = candidates[rng->Uniform(candidates.size())];
    PARBOX_ASSIGN_OR_RETURN(FragmentId id, set->Split(f, node));
    created.push_back(id);
  }
  return created;
}

std::vector<SiteId> AssignOneSitePerFragment(const FragmentSet& set) {
  std::vector<SiteId> site_of(set.table_size(), -1);
  SiteId next = 0;
  for (FragmentId f : set.live_ids()) site_of[f] = next++;
  return site_of;
}

std::vector<SiteId> AssignRoundRobin(const FragmentSet& set, int num_sites) {
  std::vector<SiteId> site_of(set.table_size(), -1);
  site_of[set.root_fragment()] = 0;
  SiteId next = num_sites > 1 ? 1 : 0;
  for (FragmentId f : set.live_ids()) {
    if (f == set.root_fragment()) continue;
    site_of[f] = next;
    next = (next + 1) % num_sites;
    if (next == 0 && num_sites > 1) next = 1;
  }
  return site_of;
}

std::vector<SiteId> AssignAllToOneSite(const FragmentSet& set) {
  std::vector<SiteId> site_of(set.table_size(), -1);
  for (FragmentId f : set.live_ids()) site_of[f] = 0;
  return site_of;
}

}  // namespace parbox::frag
