#include "fragment/strategies.h"

#include <unordered_map>
#include <utility>

namespace parbox::frag {

namespace {

/// All (fragment, node) split candidates: elements of live fragments
/// that are not the fragment's own root and whose in-fragment subtree
/// has at least `min_elements` elements. One post-order pass per
/// fragment computes every subtree's element count (the per-candidate
/// xml::CountElements it replaces was O(n) per node — quadratic on the
/// deep/large documents the scale suite generates).
std::vector<std::pair<FragmentId, xml::Node*>> SplitCandidates(
    const FragmentSet& set, size_t min_elements) {
  std::vector<std::pair<FragmentId, xml::Node*>> out;
  for (FragmentId f : set.live_ids()) {
    std::vector<xml::Node*> order;  // discovery order; reversed has
                                    // children before parents
    std::vector<xml::Node*> walk{set.fragment(f).root};
    while (!walk.empty()) {
      xml::Node* n = walk.back();
      walk.pop_back();
      order.push_back(n);
      for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
        walk.push_back(c);
      }
    }
    // Processing `order` in reverse guarantees children before parents.
    std::unordered_map<const xml::Node*, size_t> subtree_elements;
    subtree_elements.reserve(order.size());
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      xml::Node* n = *it;
      size_t total = n->is_element() ? 1 : 0;
      for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
        total += subtree_elements[c];
      }
      subtree_elements[n] = total;
    }
    for (xml::Node* n : order) {
      if (n->is_element() && n != set.fragment(f).root &&
          subtree_elements[n] >= min_elements) {
        out.emplace_back(f, n);
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<FragmentId>> SplitAtAllLabeled(FragmentSet* set,
                                                  std::string_view label) {
  // One pass per initial fragment builds the match forest (each
  // match's parent = its nearest enclosing match); splitting the
  // forest in level order assigns exactly the fragment ids the old
  // rescan-after-every-split loop did — a split moved nested matches
  // into the new (highest-id, scanned-last) fragment, which is level
  // order — without its O(matches x nodes) rescans.
  struct Match {
    xml::Node* node;
    FragmentId owner;          // fragment to split from
    std::vector<size_t> kids;  // nested matches, discovery order
  };
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<Match> matches;
  std::vector<size_t> queue;  // level-order worklist (head index below)
  for (FragmentId f : set->live_ids()) {
    std::vector<std::pair<xml::Node*, size_t>> stack{
        {set->fragment(f).root, kNone}};
    while (!stack.empty()) {
      auto [n, enclosing] = stack.back();
      stack.pop_back();
      size_t inside = enclosing;
      if (n->is_element() && n->label() == label &&
          n != set->fragment(f).root) {
        inside = matches.size();
        matches.push_back(Match{n, f, {}});
        if (enclosing == kNone) {
          queue.push_back(inside);
        } else {
          matches[enclosing].kids.push_back(inside);
        }
      }
      for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
        stack.push_back({c, inside});
      }
    }
  }

  std::vector<FragmentId> created;
  created.reserve(matches.size());
  for (size_t head = 0; head < queue.size(); ++head) {
    Match& m = matches[queue[head]];
    PARBOX_ASSIGN_OR_RETURN(FragmentId id, set->Split(m.owner, m.node));
    created.push_back(id);
    for (size_t kid : m.kids) {
      matches[kid].owner = id;  // nested matches now live in the new one
      queue.push_back(kid);
    }
  }
  return created;
}

Result<std::vector<FragmentId>> RandomSplits(FragmentSet* set, int count,
                                             Rng* rng, size_t min_elements) {
  std::vector<FragmentId> created;
  for (int i = 0; i < count; ++i) {
    auto candidates = SplitCandidates(*set, min_elements);
    if (candidates.empty()) break;
    auto [f, node] = candidates[rng->Uniform(candidates.size())];
    PARBOX_ASSIGN_OR_RETURN(FragmentId id, set->Split(f, node));
    created.push_back(id);
  }
  return created;
}

std::vector<SiteId> AssignOneSitePerFragment(const FragmentSet& set) {
  std::vector<SiteId> site_of(set.table_size(), -1);
  SiteId next = 0;
  for (FragmentId f : set.live_ids()) site_of[f] = next++;
  return site_of;
}

std::vector<SiteId> AssignRoundRobin(const FragmentSet& set, int num_sites) {
  std::vector<SiteId> site_of(set.table_size(), -1);
  site_of[set.root_fragment()] = 0;
  SiteId next = num_sites > 1 ? 1 : 0;
  for (FragmentId f : set.live_ids()) {
    if (f == set.root_fragment()) continue;
    site_of[f] = next;
    next = (next + 1) % num_sites;
    if (next == 0 && num_sites > 1) next = 1;
  }
  return site_of;
}

std::vector<SiteId> AssignAllToOneSite(const FragmentSet& set) {
  std::vector<SiteId> site_of(set.table_size(), -1);
  for (FragmentId f : set.live_ids()) site_of[f] = 0;
  return site_of;
}

}  // namespace parbox::frag
