#include "fragment/fragment.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "xml/writer.h"

namespace parbox::frag {

Result<FragmentSet> FragmentSet::FromDocument(xml::Document&& doc) {
  if (doc.root() == nullptr || !doc.root()->is_element()) {
    return Status::InvalidArgument("document must have an element root");
  }
  FragmentSet set;
  set.storage_ = std::move(doc);
  Fragment f;
  f.id = 0;
  f.root = set.storage_.root();
  set.fragments_.push_back(std::move(f));
  set.root_fragment_ = 0;
  set.live_count_ = 1;
  return set;
}

std::vector<FragmentId> FragmentSet::live_ids() const {
  std::vector<FragmentId> out;
  for (const Fragment& f : fragments_) {
    if (f.alive) out.push_back(f.id);
  }
  return out;
}

std::vector<std::vector<int32_t>> FragmentSet::ChildrenTable() const {
  std::vector<std::vector<int32_t>> table(fragments_.size());
  for (const Fragment& f : fragments_) {
    if (f.alive) {
      table[f.id].assign(f.children.begin(), f.children.end());
    }
  }
  return table;
}

Result<FragmentId> FragmentSet::Split(FragmentId j, xml::Node* at) {
  if (!is_live(j)) return Status::NotFound("no such live fragment");
  Fragment& parent = fragments_[j];
  if (at == nullptr || !at->is_element()) {
    return Status::InvalidArgument("split point must be an element");
  }
  if (at == parent.root) {
    return Status::InvalidArgument(
        "cannot split a fragment at its own root");
  }
  // `at` must belong to fragment j: walk up to j's root without
  // crossing another fragment root.
  for (const xml::Node* n = at->parent;; n = n->parent) {
    if (n == nullptr) return Status::InvalidArgument("node not in fragment");
    if (n == parent.root) break;
  }

  // Ids are int32; past this the cast below would wrap negative and
  // alias tombstone/"no fragment" sentinels.
  if (fragments_.size() >=
      static_cast<size_t>(std::numeric_limits<FragmentId>::max())) {
    return Status::FailedPrecondition("fragment table full (2^31-1 ids)");
  }
  FragmentId new_id = static_cast<FragmentId>(fragments_.size());
  xml::Node* placeholder = storage_.NewVirtual(new_id);
  xml::Node* at_parent = at->parent;
  xml::Node* at_next = at->next_sibling;
  storage_.Detach(at);
  storage_.InsertBefore(at_parent, placeholder, at_next);

  Fragment child;
  child.id = new_id;
  child.root = at;
  child.parent = j;

  // Sub-fragments referenced from inside the carved subtree now hang
  // off the new fragment.
  std::vector<xml::Node*> stack{at};
  while (!stack.empty()) {
    xml::Node* n = stack.back();
    stack.pop_back();
    if (n->is_virtual()) {
      FragmentId moved = n->fragment_ref;
      child.children.push_back(moved);
      fragments_[moved].parent = new_id;
      auto& siblings = parent.children;
      siblings.erase(std::find(siblings.begin(), siblings.end(), moved));
    }
    for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  parent.children.push_back(new_id);
  fragments_.push_back(std::move(child));
  ++live_count_;
  return new_id;
}

Status FragmentSet::Merge(FragmentId child_id) {
  if (!is_live(child_id)) return Status::NotFound("no such live fragment");
  Fragment& child = fragments_[child_id];
  if (child.parent == kNoFragment) {
    return Status::InvalidArgument("cannot merge the root fragment");
  }
  Fragment& parent = fragments_[child.parent];
  xml::Node* placeholder = FindVirtualRef(*this, parent.id, child_id);
  if (placeholder == nullptr) {
    return Status::Internal("virtual node for sub-fragment not found");
  }
  xml::Node* ph_parent = placeholder->parent;
  xml::Node* ph_next = placeholder->next_sibling;
  storage_.Detach(placeholder);
  storage_.InsertBefore(ph_parent, child.root, ph_next);

  // The child's sub-fragments become the parent's.
  auto& siblings = parent.children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), child_id));
  for (FragmentId grandchild : child.children) {
    fragments_[grandchild].parent = parent.id;
    siblings.push_back(grandchild);
  }
  child.alive = false;
  child.root = nullptr;
  child.children.clear();
  --live_count_;
  return Status::OK();
}

Result<xml::Document> FragmentSet::Reassemble() const {
  xml::Document out;
  struct Item {
    const xml::Node* src;
    xml::Node* dst_parent;
  };
  std::vector<Item> stack{{fragment(root_fragment_).root, nullptr}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const xml::Node* src = item.src;
    if (src->is_virtual()) {
      if (!is_live(src->fragment_ref)) {
        return Status::Internal("dangling virtual reference");
      }
      // Continue from the sub-fragment's root, attached in place.
      stack.push_back({fragment(src->fragment_ref).root, item.dst_parent});
      continue;
    }
    xml::Node* copy = src->is_text() ? out.NewText(src->text())
                                     : out.NewElement(src->label());
    if (item.dst_parent == nullptr) {
      out.set_root(copy);
    } else {
      out.AppendChild(item.dst_parent, copy);
    }
    for (const xml::Node* c = src->last_child; c != nullptr;
         c = c->prev_sibling) {
      stack.push_back({c, copy});
    }
  }
  return out;
}

size_t FragmentSet::FragmentElements(FragmentId id) const {
  if (!is_live(id)) return 0;
  return xml::CountElements(fragments_[id].root);
}

size_t FragmentSet::TotalElements() const {
  size_t total = 0;
  for (const Fragment& f : fragments_) {
    if (f.alive) total += xml::CountElements(f.root);
  }
  return total;
}

uint64_t FragmentSet::FragmentSerializedBytes(FragmentId id) const {
  if (!is_live(id)) return 0;
  return xml::SerializedSize(fragments_[id].root);
}

Status FragmentSet::Validate() const {
  if (!is_live(root_fragment_)) {
    return Status::Internal("root fragment is dead");
  }
  size_t live_seen = 0;
  for (const Fragment& f : fragments_) {
    if (!f.alive) continue;
    ++live_seen;
    if (f.root == nullptr || !f.root->is_element()) {
      return Status::Internal("live fragment without element root");
    }
    PARBOX_RETURN_IF_ERROR(xml::ValidateLinks(f.root));
    // Virtual refs in this fragment must exactly match its child list.
    std::unordered_set<FragmentId> refs;
    std::vector<const xml::Node*> stack{f.root};
    while (!stack.empty()) {
      const xml::Node* n = stack.back();
      stack.pop_back();
      if (n->is_virtual()) {
        if (!is_live(n->fragment_ref)) {
          return Status::Internal("virtual node references dead fragment");
        }
        if (!refs.insert(n->fragment_ref).second) {
          return Status::Internal("duplicate virtual reference");
        }
      }
      for (const xml::Node* c = n->first_child; c != nullptr;
           c = c->next_sibling) {
        stack.push_back(c);
      }
    }
    if (refs.size() != f.children.size()) {
      return Status::Internal("child list size mismatch");
    }
    for (FragmentId c : f.children) {
      if (refs.count(c) == 0) {
        return Status::Internal("child list / virtual refs mismatch");
      }
      if (!is_live(c) || fragments_[c].parent != f.id) {
        return Status::Internal("child fragment parent mismatch");
      }
    }
    if (f.id == root_fragment_) {
      if (f.parent != kNoFragment) {
        return Status::Internal("root fragment has a parent");
      }
    } else if (!is_live(f.parent)) {
      return Status::Internal("fragment parent is dead");
    }
  }
  if (live_seen != live_count_) {
    return Status::Internal("live_count_ out of sync");
  }
  return Status::OK();
}

xml::Node* FindVirtualRef(const FragmentSet& set, FragmentId parent,
                          FragmentId child) {
  if (!set.is_live(parent)) return nullptr;
  std::vector<xml::Node*> stack{set.fragment(parent).root};
  while (!stack.empty()) {
    xml::Node* n = stack.back();
    stack.pop_back();
    if (n->is_virtual() && n->fragment_ref == child) return n;
    for (xml::Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  return nullptr;
}

}  // namespace parbox::frag
