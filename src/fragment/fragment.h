// Tree fragmentation (Sec. 2.1): a document decomposed into disjoint
// fragments forming a fragment tree.
//
// A FragmentSet owns one backing Document whose nodes are partitioned
// among fragments. Where a sub-fragment F_k was cut out of its parent
// F_j, F_j holds a *virtual node* leaf whose `fragment_ref` names F_k —
// "while traversing F_j, reaching the virtual node F_k means jump to
// fragment F_k to continue" (paper, Sec. 2.1).
//
// No constraints are imposed on the fragmentation: fragments nest
// arbitrarily, appear at any level, and have any size — splits and
// merges (the paper's splitFragments/mergeFragments update operations)
// are O(1) pointer surgery on the backing document.
//
// Fragment ids are stable across splits/merges (dead fragments leave
// tombstones), which materialized views rely on.

#ifndef PARBOX_FRAGMENT_FRAGMENT_H_
#define PARBOX_FRAGMENT_FRAGMENT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/dom.h"

namespace parbox::frag {

using xml::FragmentId;
using xml::kNoFragment;

/// One fragment: a subtree of the backing document whose leaves may be
/// virtual nodes referencing its direct sub-fragments.
struct Fragment {
  FragmentId id = kNoFragment;
  xml::Node* root = nullptr;
  FragmentId parent = kNoFragment;
  std::vector<FragmentId> children;  ///< direct sub-fragments
  bool alive = true;
};

/// A fragmented document.
class FragmentSet {
 public:
  /// Start with the whole document as a single root fragment (F0).
  /// Takes ownership of the document.
  static Result<FragmentSet> FromDocument(xml::Document&& doc);

  FragmentSet(FragmentSet&&) = default;
  FragmentSet& operator=(FragmentSet&&) = default;

  FragmentId root_fragment() const { return root_fragment_; }

  /// Count of live fragments — the paper's card(F).
  size_t live_count() const { return live_count_; }
  /// Size of the fragment table including tombstones; live fragment ids
  /// are < table_size().
  size_t table_size() const { return fragments_.size(); }

  const Fragment& fragment(FragmentId id) const { return fragments_[id]; }
  bool is_live(FragmentId id) const {
    return id >= 0 && static_cast<size_t>(id) < fragments_.size() &&
           fragments_[id].alive;
  }

  /// Live fragment ids in ascending order.
  std::vector<FragmentId> live_ids() const;

  /// children_of[f] = direct sub-fragments of f (indexed by id over the
  /// whole table; dead fragments have empty lists). This is the shape
  /// evalST solves over.
  std::vector<std::vector<int32_t>> ChildrenTable() const;

  /// splitFragments(v): carve the subtree rooted at `at` (an element of
  /// live fragment `j`, not j's own root) out into a new fragment,
  /// leaving a virtual node in its place. Returns the new fragment id.
  Result<FragmentId> Split(FragmentId j, xml::Node* at);

  /// mergeFragments(v): splice sub-fragment `child` back into its
  /// parent fragment, replacing the corresponding virtual node. The
  /// child's own sub-fragments become sub-fragments of the parent.
  Status Merge(FragmentId child);

  /// The document this set would reassemble to: a fresh deep copy with
  /// every virtual node replaced by its sub-fragment's subtree.
  Result<xml::Document> Reassemble() const;

  /// Element count of a fragment (excludes its sub-fragments).
  size_t FragmentElements(FragmentId id) const;
  /// Total elements across live fragments — |T|.
  size_t TotalElements() const;

  /// Serialized size of one fragment, virtual nodes included — what
  /// NaiveCentralized ships for it.
  uint64_t FragmentSerializedBytes(FragmentId id) const;

  /// Structural invariants: every virtual node references a live child
  /// fragment, parent/child tables agree, fragments are disjoint.
  Status Validate() const;

  /// Mutable access for update operations (insNode/delNode). The caller
  /// must keep node membership within the fragment.
  xml::Document* mutable_storage() { return &storage_; }
  Fragment* mutable_fragment(FragmentId id) { return &fragments_[id]; }

 private:
  FragmentSet() = default;

  xml::Document storage_;
  std::vector<Fragment> fragments_;
  FragmentId root_fragment_ = kNoFragment;
  size_t live_count_ = 0;
};

/// Find the virtual node inside fragment `parent` that references
/// fragment `child`; nullptr if absent.
xml::Node* FindVirtualRef(const FragmentSet& set, FragmentId parent,
                          FragmentId child);

}  // namespace parbox::frag

#endif  // PARBOX_FRAGMENT_FRAGMENT_H_
