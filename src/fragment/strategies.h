// Fragmentation and site-assignment strategies.
//
// The experiments use three fragment-tree shapes (Fig. 6): FT1 — a
// star, every fragment a direct sub-fragment of F0; FT2 — a chain,
// F_{i+1} a sub-fragment of F_i (version histories); FT3 — a bushy
// mix. These helpers carve such shapes out of generated documents, and
// produce the site assignments the experiments need.

#ifndef PARBOX_FRAGMENT_STRATEGIES_H_
#define PARBOX_FRAGMENT_STRATEGIES_H_

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"

namespace parbox::frag {

/// Split at every element with the given label (fragment roots are not
/// re-split). Returns the new fragment ids, outermost first. Used to
/// carve generator-produced markers ("site", "history", ...) into
/// fragments.
Result<std::vector<FragmentId>> SplitAtAllLabeled(FragmentSet* set,
                                                  std::string_view label);

/// Perform `count` random splits at elements whose in-fragment subtree
/// has at least `min_elements` elements. Returns the ids created (may
/// be fewer than `count` if candidates run out).
Result<std::vector<FragmentId>> RandomSplits(FragmentSet* set, int count,
                                             Rng* rng,
                                             size_t min_elements = 2);

/// h: fragment i -> site i (re-indexed densely over live fragments).
std::vector<SiteId> AssignOneSitePerFragment(const FragmentSet& set);

/// h: live fragments round-robin over `num_sites` sites; the root
/// fragment always lands on site 0 (the coordinator).
std::vector<SiteId> AssignRoundRobin(const FragmentSet& set, int num_sites);

/// h: everything on site 0 (Fig. 13's single-site experiment).
std::vector<SiteId> AssignAllToOneSite(const FragmentSet& set);

}  // namespace parbox::frag

#endif  // PARBOX_FRAGMENT_STRATEGIES_H_
