// Placement: the paper's mapping h from fragments to sites (Sec. 2.1)
// as a first-class MUTABLE object.
//
// The algorithms need only the source tree S_T = fragment-tree shape +
// h; historically h was a frozen vector baked into an immutable
// SourceTree. A serving catalog needs to patch h while serving:
// re-home a fragment from an overloaded site (Move), and cover
// fragments minted by splits (Assign). Every mutation bumps a
// placement *epoch*; Snapshot() freezes the current h into a cheap
// immutable SourceTree stamped with that epoch, which is what sessions
// and services actually evaluate against.
//
// A Move changes no answer — fragment content and the fragment tree
// are untouched, only h — so retained state (cached answers, triplet
// systems) stays valid; subscribers merely re-ship the moved
// fragments' state to the new site (core::Session treats a move as a
// dirty-log record, not a re-seed).
//
// The root fragment is pinned: its site is the coordinator every
// evaluator composes at, and the execution substrate homes that site's
// deliveries in coordinator context. Moving it is a re-deployment, not
// a live migration, and Move rejects it.
//
// PlacementFeed is the pub/sub channel between the catalog (publisher
// of Move epochs) and sessions (subscribers that catch up lazily
// before planning). Single-threaded by contract: publishes and reads
// happen in coordinator context, like every other control-plane
// operation.

#ifndef PARBOX_FRAGMENT_PLACEMENT_H_
#define PARBOX_FRAGMENT_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"

namespace parbox::frag {

class Placement {
 public:
  Placement() = default;

  /// `site_of_fragment` is indexed by fragment id (table-sized, like
  /// the strategies.h assignments). Every live fragment needs a site
  /// in [0, num_sites); `num_sites` 0 derives max assigned site + 1.
  static Result<Placement> Create(const FragmentSet& set,
                                  std::vector<SiteId> site_of_fragment,
                                  int32_t num_sites = 0);

  int32_t num_sites() const { return num_sites_; }
  /// Bumped by every successful Move/Assign. Snapshots carry it.
  uint64_t epoch() const { return epoch_; }
  FragmentId root_fragment() const { return root_; }
  SiteId site_of(FragmentId f) const { return site_of_[f]; }
  const std::vector<SiteId>& site_table() const { return site_of_; }

  /// Live migration: re-home live fragment `f` to `site`. Rejects dead
  /// fragments, sites outside [0, num_sites), and the root fragment
  /// (pinned to the coordinator). Moving a fragment to the site it
  /// already occupies is a no-op (OK, no epoch bump).
  Status Move(const FragmentSet& set, FragmentId f, SiteId site);

  /// Cover a fragment minted by a split (or re-home one on merge
  /// cleanup): grows the table to the set's, assigns, bumps the epoch.
  /// Unlike Move this is part of a re-fragmentation flow — callers
  /// invalidate retained state themselves (Session::InvalidatePlan).
  Status Assign(const FragmentSet& set, FragmentId f, SiteId site);

  /// Freeze the current h into an immutable SourceTree stamped with
  /// this placement's epoch and num_sites.
  Result<SourceTree> Snapshot(const FragmentSet& set) const;

 private:
  FragmentId root_ = kNoFragment;
  int32_t num_sites_ = 0;
  uint64_t epoch_ = 0;
  std::vector<SiteId> site_of_;
};

// ---- Load-aware rebalancing --------------------------------------------

struct RebalanceOptions {
  /// Stop once the hottest site's load is within (1 + tolerance) of
  /// the mean site load.
  double tolerance = 0.25;
  /// At most this many moves per proposal.
  size_t max_moves = 8;
  /// A site visit (work-initiating contact) weighs this many received
  /// bytes when folding TrafficStats visit and byte counts into one
  /// load number.
  uint64_t visit_cost_bytes = 4096;
};

struct ProposedMove {
  FragmentId fragment = kNoFragment;
  SiteId from = -1;
  SiteId to = -1;
};

/// Greedy load-aware rebalance proposal. Per-site load folds the
/// observed visit and received-byte counts (ExecBackend::visits(),
/// TrafficStats::bytes_into — vectors may be shorter than num_sites;
/// missing entries read 0); a fragment's share of its site's load is
/// estimated by its element share. Repeatedly shifts the
/// closest-to-half-the-gap fragment (never the root; deterministic
/// lowest-id tie-break) from the hottest to the coldest site until the
/// load is within tolerance or max_moves is reached. Pure planning —
/// apply the result through Placement::Move / a catalog's Move path.
std::vector<ProposedMove> ProposeRebalance(
    const FragmentSet& set, const Placement& placement,
    const std::vector<uint64_t>& site_visits,
    const std::vector<uint64_t>& site_bytes_in,
    const RebalanceOptions& options = {});

// ---- Placement change feed ---------------------------------------------

/// Pub/sub channel for placement changes: the catalog publishes one
/// entry per Move epoch; subscribers (core::Session) poll epoch() and
/// catch up with MovedSince before planning. Snapshots are shared_ptr
/// so a subscriber that has not caught up yet keeps its old source
/// tree alive.
class PlacementFeed {
 public:
  /// Publisher side: install `snapshot` as current and record which
  /// fragments moved into this epoch. The initial publish (document
  /// open) passes an empty `moved`.
  void Publish(std::shared_ptr<const SourceTree> snapshot,
               std::vector<FragmentId> moved);

  uint64_t epoch() const { return epoch_; }
  std::shared_ptr<const SourceTree> snapshot() const { return snapshot_; }

  /// Fragments moved by every publish after `since_epoch`, de-duplicated,
  /// ascending id.
  std::vector<FragmentId> MovedSince(uint64_t since_epoch) const;

 private:
  struct Entry {
    uint64_t epoch = 0;
    std::vector<FragmentId> moved;
  };

  uint64_t epoch_ = 0;
  std::shared_ptr<const SourceTree> snapshot_;
  std::vector<Entry> log_;
};

}  // namespace parbox::frag

#endif  // PARBOX_FRAGMENT_PLACEMENT_H_
