#include "fragment/source_tree.h"

#include <algorithm>

namespace parbox::frag {

Result<SourceTree> SourceTree::Create(const FragmentSet& set,
                                      std::vector<SiteId> site_of_fragment) {
  SourceTree st;
  size_t table = set.table_size();
  if (site_of_fragment.size() < table) {
    return Status::InvalidArgument(
        "site assignment smaller than the fragment table");
  }
  st.root_ = set.root_fragment();
  st.site_of_ = std::move(site_of_fragment);
  st.parent_.assign(table, kNoFragment);
  st.children_.assign(table, {});
  st.depth_.assign(table, 0);
  st.live_ = set.live_ids();

  SiteId max_site = -1;
  for (FragmentId f : st.live_) {
    if (st.site_of_[f] < 0) {
      return Status::InvalidArgument("live fragment without a site");
    }
    max_site = std::max(max_site, st.site_of_[f]);
    const Fragment& frag = set.fragment(f);
    st.parent_[f] = frag.parent;
    st.children_[f].assign(frag.children.begin(), frag.children.end());
  }
  st.num_sites_ = max_site + 1;
  st.fragments_at_.assign(st.num_sites_, {});
  for (FragmentId f : st.live_) {
    st.fragments_at_[st.site_of_[f]].push_back(f);
  }

  // Depths via BFS from the root fragment.
  std::vector<FragmentId> frontier{st.root_};
  int depth = 0;
  size_t visited = 0;
  while (!frontier.empty()) {
    std::vector<FragmentId> next;
    for (FragmentId f : frontier) {
      st.depth_[f] = depth;
      ++visited;
      for (FragmentId c : st.children_[f]) next.push_back(c);
    }
    st.max_depth_ = depth;
    ++depth;
    frontier = std::move(next);
  }
  if (visited != st.live_.size()) {
    return Status::InvalidArgument(
        "fragment tree is not connected from the root");
  }
  return st;
}

Result<SourceTree> SourceTree::Create(const FragmentSet& set,
                                      std::vector<SiteId> site_of_fragment,
                                      int32_t num_sites,
                                      uint64_t placement_epoch) {
  PARBOX_ASSIGN_OR_RETURN(SourceTree st,
                          Create(set, std::move(site_of_fragment)));
  if (num_sites < st.num_sites_) {
    return Status::InvalidArgument(
        "placement names fewer sites than its assignment uses");
  }
  st.num_sites_ = num_sites;
  st.fragments_at_.resize(num_sites);
  st.placement_epoch_ = placement_epoch;
  return st;
}

std::vector<FragmentId> SourceTree::fragments_at_depth(int d) const {
  std::vector<FragmentId> out;
  for (FragmentId f : live_) {
    if (depth_[f] == d) out.push_back(f);
  }
  return out;
}

}  // namespace parbox::frag
