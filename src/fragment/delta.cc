#include "fragment/delta.h"

namespace parbox::frag {

std::string_view DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kInsertSubtree:
      return "insert-subtree";
    case DeltaKind::kDeleteSubtree:
      return "delete-subtree";
    case DeltaKind::kRenameLabel:
      return "rename-label";
    case DeltaKind::kRetext:
      return "retext";
  }
  return "unknown";
}

Delta Delta::InsertSubtree(FragmentId f, xml::Node* parent,
                           std::string label, std::string text) {
  Delta d;
  d.kind = DeltaKind::kInsertSubtree;
  d.fragment = f;
  d.node = parent;
  d.label = std::move(label);
  d.text = std::move(text);
  return d;
}

Delta Delta::DeleteSubtree(FragmentId f, xml::Node* node) {
  Delta d;
  d.kind = DeltaKind::kDeleteSubtree;
  d.fragment = f;
  d.node = node;
  return d;
}

Delta Delta::RenameLabel(FragmentId f, xml::Node* node, std::string label) {
  Delta d;
  d.kind = DeltaKind::kRenameLabel;
  d.fragment = f;
  d.node = node;
  d.label = std::move(label);
  return d;
}

Delta Delta::Retext(FragmentId f, xml::Node* node, std::string text) {
  Delta d;
  d.kind = DeltaKind::kRetext;
  d.fragment = f;
  d.node = node;
  d.text = std::move(text);
  return d;
}

uint64_t DeltaWireBytes(const Delta& delta) {
  // kind (1) + fragment id (4) + a node-path surrogate (8) + payload.
  return 13 + delta.label.size() + delta.text.size();
}

bool NodeInFragment(const FragmentSet& set, FragmentId f,
                    const xml::Node* node) {
  if (!set.is_live(f) || node == nullptr) return false;
  const xml::Node* frag_root = set.fragment(f).root;
  // Fragment roots are detached (parent == nullptr), so the upward
  // walk from any member node ends exactly at its fragment's root.
  for (const xml::Node* n = node; n != nullptr; n = n->parent) {
    if (n == frag_root) return true;
  }
  return false;
}

Result<AppliedDelta> ApplyDelta(FragmentSet* set, const Delta& delta) {
  if (set == nullptr) return Status::InvalidArgument("null fragment set");
  if (!set->is_live(delta.fragment)) {
    return Status::NotFound("delta targets a dead or unknown fragment");
  }
  if (delta.node == nullptr) {
    return Status::InvalidArgument("delta targets a null node");
  }
  if (!NodeInFragment(*set, delta.fragment, delta.node)) {
    return Status::InvalidArgument(
        "delta node is not a member of the named fragment");
  }

  xml::Document* storage = set->mutable_storage();
  AppliedDelta applied;
  applied.kind = delta.kind;
  applied.fragment = delta.fragment;
  applied.wire_bytes = DeltaWireBytes(delta);

  switch (delta.kind) {
    case DeltaKind::kInsertSubtree: {
      if (!delta.node->is_element()) {
        return Status::InvalidArgument(
            "insert-subtree parent must be an element");
      }
      if (delta.label.empty()) {
        return Status::InvalidArgument("insert-subtree needs a label");
      }
      xml::Node* element = storage->NewElement(delta.label);
      if (!delta.text.empty()) {
        storage->AppendChild(element, storage->NewText(delta.text));
      }
      storage->AppendChild(delta.node, element);
      applied.node = element;
      return applied;
    }
    case DeltaKind::kDeleteSubtree: {
      if (delta.node == set->fragment(delta.fragment).root) {
        return Status::InvalidArgument(
            "cannot delete the fragment root with a content delta; "
            "merge the fragment into its parent instead");
      }
      if (xml::CountVirtuals(delta.node) != 0) {
        return Status::FailedPrecondition(
            "subtree references sub-fragments; merge them first");
      }
      storage->Detach(delta.node);
      applied.node = nullptr;
      return applied;
    }
    case DeltaKind::kRenameLabel: {
      if (delta.node->is_virtual()) {
        return Status::InvalidArgument(
            "cannot rename a virtual node: its label belongs to the "
            "sub-fragment root stored at another site");
      }
      if (!delta.node->is_element()) {
        return Status::InvalidArgument(
            "rename-label target must be an element");
      }
      if (delta.label.empty()) {
        return Status::InvalidArgument("rename-label needs a label");
      }
      storage->SetLabel(delta.node, delta.label);
      applied.node = delta.node;
      return applied;
    }
    case DeltaKind::kRetext: {
      if (delta.node->is_virtual()) {
        return Status::InvalidArgument(
            "cannot retext a virtual node: its content lives in the "
            "sub-fragment stored at another site");
      }
      if (!delta.node->is_element()) {
        return Status::InvalidArgument("retext target must be an element");
      }
      // Replace the element's direct text children with one text node
      // (or none when the new text is empty).
      for (xml::Node* c = delta.node->first_child; c != nullptr;) {
        xml::Node* next = c->next_sibling;
        if (c->is_text()) storage->Detach(c);
        c = next;
      }
      if (!delta.text.empty()) {
        storage->AppendChild(delta.node, storage->NewText(delta.text));
      }
      applied.node = delta.node;
      return applied;
    }
  }
  return Status::InvalidArgument("unknown delta kind");
}

}  // namespace parbox::frag
