// The source tree S_T (Sec. 2.1): which site stores which fragment.
//
// The paper's algorithms require *only* this structure — no DTD, no
// statistics, no knowledge of fragment contents. It is a snapshot of
// the fragment tree's shape plus the mapping function h from fragments
// to sites; rebuild (or patch) it after splits/merges.

#ifndef PARBOX_FRAGMENT_SOURCE_TREE_H_
#define PARBOX_FRAGMENT_SOURCE_TREE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fragment/fragment.h"

namespace parbox::frag {

/// Identifies a machine in the (simulated) cluster.
using SiteId = int32_t;

class SourceTree {
 public:
  /// Empty source tree (no fragments); assign via Create.
  SourceTree() = default;

  /// `site_of_fragment` is indexed by fragment id (table-sized; entries
  /// for dead fragments ignored). Every live fragment needs a site in
  /// [0, num_sites).
  static Result<SourceTree> Create(const FragmentSet& set,
                                   std::vector<SiteId> site_of_fragment);

  /// Placement::Snapshot's entry point: like Create above, but the
  /// site count is pinned to the placement's (sites may be empty) and
  /// the snapshot is stamped with the placement epoch it froze.
  static Result<SourceTree> Create(const FragmentSet& set,
                                   std::vector<SiteId> site_of_fragment,
                                   int32_t num_sites,
                                   uint64_t placement_epoch);

  int32_t num_sites() const { return num_sites_; }
  /// Epoch of the Placement this snapshot froze (0 for trees built
  /// straight from a site vector).
  uint64_t placement_epoch() const { return placement_epoch_; }
  FragmentId root_fragment() const { return root_; }

  SiteId site_of(FragmentId f) const { return site_of_[f]; }
  const std::vector<FragmentId>& fragments_at(SiteId s) const {
    return fragments_at_[s];
  }

  FragmentId parent_of(FragmentId f) const { return parent_[f]; }
  const std::vector<FragmentId>& children_of(FragmentId f) const {
    return children_[f];
  }
  /// Children table for the Boolean-equation solver.
  const std::vector<std::vector<int32_t>>& children_table() const {
    return children_;
  }

  /// Depth of a fragment in the fragment tree (root = 0).
  int depth_of(FragmentId f) const { return depth_[f]; }
  int max_depth() const { return max_depth_; }
  /// Live fragments at exactly depth `d`, ascending id.
  std::vector<FragmentId> fragments_at_depth(int d) const;

  /// Live fragments, ascending id.
  const std::vector<FragmentId>& live_fragments() const { return live_; }

  /// Bytes to ship a copy of S_T to a site (FullDistParBoX's overhead):
  /// one (parent, site) pair per fragment.
  uint64_t SerializedSizeBytes() const { return 1 + 8 * live_.size(); }

 private:
  FragmentId root_ = kNoFragment;
  int32_t num_sites_ = 0;
  uint64_t placement_epoch_ = 0;
  int max_depth_ = 0;
  std::vector<SiteId> site_of_;
  std::vector<std::vector<FragmentId>> fragments_at_;
  std::vector<FragmentId> parent_;
  std::vector<std::vector<FragmentId>> children_;
  std::vector<int> depth_;
  std::vector<FragmentId> live_;
};

}  // namespace parbox::frag

#endif  // PARBOX_FRAGMENT_SOURCE_TREE_H_
