// Typed document updates (deltas) over a fragmented tree.
//
// A Delta is the unit of change the incremental evaluation pipeline
// understands: the paper's insNode/delNode content updates plus two
// in-place edits (relabel an element, replace an element's direct
// text). Every delta is *content-local to exactly one fragment* — it
// never moves a fragment boundary, so the source tree, the site
// partition plan, and the solver's children table all stay valid, and
// only the touched fragment's (V, CV, DV) triplet can change.
// Fragmentation changes (splitFragments/mergeFragments) are a
// different operation class and stay on FragmentSet / MaterializedView.
//
// ApplyDelta validates before mutating: a delta that would cross a
// fragment boundary (delete a subtree holding virtual nodes, rename a
// virtual node, touch a node outside the named fragment) is rejected
// and the document is untouched.

#ifndef PARBOX_FRAGMENT_DELTA_H_
#define PARBOX_FRAGMENT_DELTA_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "fragment/fragment.h"
#include "xml/dom.h"

namespace parbox::frag {

enum class DeltaKind : uint8_t {
  kInsertSubtree,  ///< new element (with optional text) under `node`
  kDeleteSubtree,  ///< detach `node` and its whole subtree
  kRenameLabel,    ///< relabel the element `node` in place
  kRetext,         ///< replace `node`'s direct text children
};

std::string_view DeltaKindName(DeltaKind kind);

/// One typed update, targeted at a node of one fragment. Construct via
/// the named factories; `fragment` names the fragment `node` belongs
/// to (ApplyDelta verifies the membership claim).
struct Delta {
  DeltaKind kind = DeltaKind::kInsertSubtree;
  FragmentId fragment = kNoFragment;
  /// Insert: the parent element. Delete: the subtree root to remove.
  /// Rename/retext: the element edited in place.
  xml::Node* node = nullptr;
  std::string label;  ///< insert: new element's label; rename: new label
  std::string text;   ///< insert: optional text child; retext: new text

  static Delta InsertSubtree(FragmentId f, xml::Node* parent,
                             std::string label, std::string text = {});
  static Delta DeleteSubtree(FragmentId f, xml::Node* node);
  static Delta RenameLabel(FragmentId f, xml::Node* node, std::string label);
  static Delta Retext(FragmentId f, xml::Node* node, std::string text);
};

/// What ApplyDelta did: the one fragment whose content changed (the
/// dirty fragment incremental re-evaluation must revisit) and the node
/// of interest (the inserted element for kInsertSubtree, the edited
/// element for rename/retext, nullptr for kDeleteSubtree).
struct AppliedDelta {
  DeltaKind kind = DeltaKind::kInsertSubtree;
  FragmentId fragment = kNoFragment;
  xml::Node* node = nullptr;
  /// Wire size of the delta message a coordinator ships to the
  /// fragment's site (kind + target path surrogate + payload).
  uint64_t wire_bytes = 0;
};

/// Bytes to ship `delta` to the owning site.
uint64_t DeltaWireBytes(const Delta& delta);

/// True iff `node` belongs to live fragment `f`: walking parents from
/// `node` terminates at f's root (fragment roots are detached subtree
/// roots, so the walk cannot escape into another fragment).
bool NodeInFragment(const FragmentSet& set, FragmentId f,
                    const xml::Node* node);

/// Validate and apply `delta` to `*set`. On success exactly fragment
/// `delta.fragment` changed content; on failure nothing changed.
///
/// Rejections, each a distinct failure updates can expose:
///   * target fragment dead or node not a member of it,
///   * insert under a non-element (text or virtual) parent,
///   * delete of the fragment root (the fragment would vanish — that
///     is mergeFragments' job, not a content delta's),
///   * delete of a subtree containing virtual nodes (would orphan
///     sub-fragments),
///   * rename/retext of a non-element — in particular a *virtual*
///     node, which has no label of its own: its label lives at the
///     sub-fragment's root, at another site.
Result<AppliedDelta> ApplyDelta(FragmentSet* set, const Delta& delta);

}  // namespace parbox::frag

#endif  // PARBOX_FRAGMENT_DELTA_H_
