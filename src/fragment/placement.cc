#include "fragment/placement.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace parbox::frag {

Result<Placement> Placement::Create(const FragmentSet& set,
                                    std::vector<SiteId> site_of_fragment,
                                    int32_t num_sites) {
  if (site_of_fragment.size() < set.table_size()) {
    return Status::InvalidArgument(
        "site assignment smaller than the fragment table");
  }
  SiteId max_site = -1;
  for (FragmentId f : set.live_ids()) {
    if (site_of_fragment[f] < 0) {
      return Status::InvalidArgument("live fragment without a site");
    }
    max_site = std::max(max_site, site_of_fragment[f]);
  }
  if (num_sites == 0) num_sites = max_site + 1;
  if (max_site >= num_sites) {
    return Status::InvalidArgument(
        "assignment names site " + std::to_string(max_site) +
        " but the placement has " + std::to_string(num_sites) + " sites");
  }
  Placement p;
  p.root_ = set.root_fragment();
  p.num_sites_ = num_sites;
  p.site_of_ = std::move(site_of_fragment);
  return p;
}

Status Placement::Move(const FragmentSet& set, FragmentId f, SiteId site) {
  if (!set.is_live(f) ||
      static_cast<size_t>(f) >= site_of_.size()) {
    return Status::InvalidArgument("Move targets a dead fragment");
  }
  if (site < 0 || site >= num_sites_) {
    return Status::InvalidArgument(
        "Move targets site " + std::to_string(site) + " outside [0, " +
        std::to_string(num_sites_) + ")");
  }
  if (f == root_) {
    return Status::InvalidArgument(
        "the root fragment is pinned to the coordinator site; moving it "
        "is a re-deployment, not a live migration");
  }
  if (site_of_[f] == site) return Status::OK();  // no-op, no epoch bump
  site_of_[f] = site;
  ++epoch_;
  return Status::OK();
}

Status Placement::Assign(const FragmentSet& set, FragmentId f, SiteId site) {
  if (!set.is_live(f)) {
    return Status::InvalidArgument("Assign targets a dead fragment");
  }
  if (site < 0 || site >= num_sites_) {
    return Status::InvalidArgument(
        "Assign targets site " + std::to_string(site) + " outside [0, " +
        std::to_string(num_sites_) + ")");
  }
  if (site_of_.size() < set.table_size()) {
    site_of_.resize(set.table_size(), -1);
  }
  site_of_[f] = site;
  ++epoch_;
  return Status::OK();
}

Result<SourceTree> Placement::Snapshot(const FragmentSet& set) const {
  return SourceTree::Create(set, site_of_, num_sites_, epoch_);
}

std::vector<ProposedMove> ProposeRebalance(
    const FragmentSet& set, const Placement& placement,
    const std::vector<uint64_t>& site_visits,
    const std::vector<uint64_t>& site_bytes_in,
    const RebalanceOptions& options) {
  const int32_t n = placement.num_sites();
  std::vector<ProposedMove> moves;
  if (n < 2) return moves;

  auto metered = [](const std::vector<uint64_t>& v, int32_t s) {
    return s >= 0 && static_cast<size_t>(s) < v.size() ? v[s] : uint64_t{0};
  };
  std::vector<double> load(static_cast<size_t>(n), 0.0);
  for (int32_t s = 0; s < n; ++s) {
    load[s] = static_cast<double>(metered(site_visits, s)) *
                  static_cast<double>(options.visit_cost_bytes) +
              static_cast<double>(metered(site_bytes_in, s));
  }
  double total = 0.0;
  for (double l : load) total += l;
  if (total <= 0.0) return moves;
  const double mean = total / n;

  // Working copy of h and of each site's estimated per-fragment load
  // split: a fragment carries its element share of its site's load.
  // Element counts and per-site movable lists are computed ONCE —
  // FragmentElements walks the fragment's subtree, and calling it per
  // candidate per move iteration (as this loop once did) is quadratic
  // at the 10k-fragment scale the chaos suite serves.
  std::vector<SiteId> site_of = placement.site_table();
  const std::vector<FragmentId> live = set.live_ids();
  std::vector<double> elements_of(site_of.size(), 0.0);
  std::vector<double> site_elements(static_cast<size_t>(n), 0.0);
  std::vector<std::vector<FragmentId>> movable_at(static_cast<size_t>(n));
  for (FragmentId f : live) {
    elements_of[f] = static_cast<double>(set.FragmentElements(f)) + 1.0;
    site_elements[site_of[f]] += elements_of[f];
    if (f != placement.root_fragment()) {
      movable_at[site_of[f]].push_back(f);
    }
  }
  auto fragment_load = [&](FragmentId f) {
    const SiteId s = site_of[f];
    return load[s] * elements_of[f] / site_elements[s];
  };

  while (moves.size() < options.max_moves) {
    int32_t cold = 0;
    for (int32_t s = 1; s < n; ++s) {
      if (load[s] < load[cold]) cold = s;
    }
    // The hottest overloaded site that actually holds a movable
    // fragment — the absolute hottest may be the coordinator, whose
    // only fragment (the root) is pinned.
    int32_t hot = -1;
    for (int32_t s = 0; s < n; ++s) {
      if (s == cold || load[s] <= mean * (1.0 + options.tolerance)) {
        continue;
      }
      if (!movable_at[s].empty() && (hot < 0 || load[s] > load[hot])) {
        hot = s;
      }
    }
    if (hot < 0) break;  // balanced, or every hot fragment is pinned
    const double gap = load[hot] - load[cold];

    // The movable fragment on the hot site whose estimated load lands
    // closest to half the gap (overshooting a full gap would just swap
    // the imbalance); lowest id breaks ties deterministically.
    FragmentId best = kNoFragment;
    double best_score = 0.0;
    for (FragmentId f : movable_at[hot]) {
      const double score = std::abs(fragment_load(f) - gap / 2.0);
      if (best == kNoFragment || score < best_score ||
          (score == best_score && f < best)) {
        best = f;
        best_score = score;
      }
    }
    if (best == kNoFragment) break;  // unreachable given the hot scan

    const double moved_load = fragment_load(best);
    // Only move if it strictly improves the pair's peak load —
    // otherwise a dominant fragment just ping-pongs between the hot
    // and cold site, each bounce a full (useless) content migration.
    if (std::max(load[hot] - moved_load, load[cold] + moved_load) >=
        load[hot]) {
      break;
    }
    const double moved_elements = elements_of[best];
    moves.push_back(ProposedMove{best, hot, cold});
    load[hot] -= moved_load;
    load[cold] += moved_load;
    site_elements[hot] -= moved_elements;
    site_elements[cold] += moved_elements;
    std::vector<FragmentId>& hot_list = movable_at[hot];
    hot_list.erase(std::find(hot_list.begin(), hot_list.end(), best));
    movable_at[cold].push_back(best);
    site_of[best] = cold;
  }
  return moves;
}

void PlacementFeed::Publish(std::shared_ptr<const SourceTree> snapshot,
                            std::vector<FragmentId> moved) {
  ++epoch_;
  snapshot_ = std::move(snapshot);
  if (!moved.empty()) {
    log_.push_back(Entry{epoch_, std::move(moved)});
  }
  // Keep the log bounded on a long-lived server (periodic rebalances
  // publish forever): merge the oldest half into one entry carrying
  // the union of its moves at the newest merged epoch. A subscriber
  // behind the merge then sees a *superset* of its real backlog —
  // over-shipping a few fragments' state is always sound; losing one
  // never is.
  constexpr size_t kMaxEntries = 64;
  if (log_.size() > kMaxEntries) {
    const size_t keep_from = log_.size() / 2;
    Entry merged;
    merged.epoch = log_[keep_from - 1].epoch;
    for (size_t i = 0; i < keep_from; ++i) {
      merged.moved.insert(merged.moved.end(), log_[i].moved.begin(),
                          log_[i].moved.end());
    }
    std::sort(merged.moved.begin(), merged.moved.end());
    merged.moved.erase(
        std::unique(merged.moved.begin(), merged.moved.end()),
        merged.moved.end());
    log_.erase(log_.begin(), log_.begin() + static_cast<long>(keep_from));
    log_.insert(log_.begin(), std::move(merged));
  }
}

std::vector<FragmentId> PlacementFeed::MovedSince(
    uint64_t since_epoch) const {
  std::vector<FragmentId> out;
  for (const Entry& e : log_) {
    if (e.epoch <= since_epoch) continue;
    out.insert(out.end(), e.moved.begin(), e.moved.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace parbox::frag
