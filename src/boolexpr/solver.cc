#include "boolexpr/solver.h"

#include <cassert>

namespace parbox::bexpr {

namespace {

/// Children-first ordering of the fragment tree rooted at `root`.
std::vector<int32_t> PostOrder(
    const std::vector<std::vector<int32_t>>& children_of, int32_t root) {
  std::vector<int32_t> order;
  std::vector<std::pair<int32_t, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [f, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      order.push_back(f);
      continue;
    }
    stack.emplace_back(f, true);
    for (int32_t c : children_of[f]) stack.emplace_back(c, false);
  }
  return order;
}

}  // namespace

Result<Assignment> SolveBottomUp(
    ExprFactory* factory, const std::vector<FragmentEquations>& equations,
    const std::vector<std::vector<int32_t>>& children_of, int32_t root) {
  Assignment assignment;
  for (int32_t f : PostOrder(children_of, root)) {
    if (f < 0 || static_cast<size_t>(f) >= equations.size()) {
      return Status::InvalidArgument("fragment id out of range");
    }
    const FragmentEquations& eq = equations[f];
    if (eq.fragment != f) {
      return Status::InvalidArgument(
          "equations not indexed by fragment id");
    }
    assert(eq.v.size() == eq.dv.size());
    for (size_t i = 0; i < eq.v.size(); ++i) {
      VarId vid{f, VectorKind::kV, static_cast<int32_t>(i)};
      VarId did{f, VectorKind::kDV, static_cast<int32_t>(i)};
      Result<bool> v = factory->Eval(eq.v[i], assignment);
      if (!v.ok()) return v.status();
      Result<bool> dv = factory->Eval(eq.dv[i], assignment);
      if (!dv.ok()) return dv.status();
      assignment.Set(vid, *v);
      assignment.Set(did, *dv);
    }
  }
  return assignment;
}

Result<bool> SolveForAnswer(
    ExprFactory* factory, const std::vector<FragmentEquations>& equations,
    const std::vector<std::vector<int32_t>>& children_of, int32_t root,
    int32_t query_index) {
  PARBOX_ASSIGN_OR_RETURN(
      Assignment assignment,
      SolveBottomUp(factory, equations, children_of, root));
  VarId vid{root, VectorKind::kV, query_index};
  std::optional<bool> answer = assignment.Get(vid);
  if (!answer.has_value()) {
    return Status::Unresolved("root vector lacks the answer entry");
  }
  return *answer;
}

Tri SolvePartial(ExprFactory* factory,
                 const std::vector<const FragmentEquations*>& available,
                 const std::vector<std::vector<int32_t>>& children_of,
                 int32_t root, int32_t query_index) {
  Assignment assignment;
  for (int32_t f : PostOrder(children_of, root)) {
    const FragmentEquations* eq =
        static_cast<size_t>(f) < available.size() ? available[f] : nullptr;
    if (eq == nullptr) continue;  // entries stay unknown
    for (size_t i = 0; i < eq->v.size(); ++i) {
      Tri v = factory->EvalPartial(eq->v[i], assignment);
      Tri dv = factory->EvalPartial(eq->dv[i], assignment);
      if (v != Tri::kUnknown) {
        assignment.Set({f, VectorKind::kV, static_cast<int32_t>(i)},
                       v == Tri::kTrue);
      }
      if (dv != Tri::kUnknown) {
        assignment.Set({f, VectorKind::kDV, static_cast<int32_t>(i)},
                       dv == Tri::kTrue);
      }
    }
  }
  std::optional<bool> answer =
      assignment.Get({root, VectorKind::kV, query_index});
  if (!answer.has_value()) return Tri::kUnknown;
  return *answer ? Tri::kTrue : Tri::kFalse;
}

}  // namespace parbox::bexpr
