#include "boolexpr/expr.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace parbox::bexpr {

std::string VarId::ToString() const {
  std::string out = kind == VectorKind::kV ? "v" : "dv";
  out += std::to_string(fragment);
  out += ".";
  out += std::to_string(query_index);
  return out;
}

ExprFactory::ExprFactory() {
  // Slot 0: false. Slot 1: true.
  nodes_.push_back({ExprOp::kConst, 0, 0, 0});
  nodes_.push_back({ExprOp::kConst, 1, 0, 0});
}

std::span<const ExprId> ExprFactory::children(ExprId e) const {
  const NodeData& n = nodes_[e];
  return {child_pool_.data() + n.child_begin, n.child_count};
}

uint64_t ExprFactory::HashKey(ExprOp op, uint32_t var,
                              std::span<const ExprId> children) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(op);
  h = h * 0x100000001b3ULL ^ var;
  for (ExprId c : children) {
    h = h * 0x100000001b3ULL ^ static_cast<uint64_t>(c);
  }
  return h;
}

bool ExprFactory::KeyEquals(ExprId e, ExprOp op, uint32_t var,
                            std::span<const ExprId> kids) const {
  const NodeData& n = nodes_[e];
  if (n.op != op || n.var != var || n.child_count != kids.size()) {
    return false;
  }
  return std::equal(kids.begin(), kids.end(),
                    child_pool_.begin() + n.child_begin);
}

ExprId ExprFactory::Intern(ExprOp op, uint32_t var,
                           std::vector<ExprId> children) {
  uint64_t key = HashKey(op, var, children);
  auto [lo, hi] = intern_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (KeyEquals(it->second, op, var, children)) return it->second;
  }
  NodeData node;
  node.op = op;
  node.var = var;
  node.child_begin = static_cast<uint32_t>(child_pool_.size());
  node.child_count = static_cast<uint32_t>(children.size());
  child_pool_.insert(child_pool_.end(), children.begin(), children.end());
  ExprId id = static_cast<ExprId>(nodes_.size());
  nodes_.push_back(node);
  intern_.emplace(key, id);
  return id;
}

ExprId ExprFactory::Var(VarId var) {
  assert(var.query_index >= 0 && var.query_index <= VarId::kMaxQueryIndex);
  assert(var.fragment >= 0);
  return Intern(ExprOp::kVar, var.Pack(), {});
}

ExprId ExprFactory::Not(ExprId a) {
  if (a == kFalseExpr) return kTrueExpr;
  if (a == kTrueExpr) return kFalseExpr;
  if (op(a) == ExprOp::kNot) return children(a)[0];  // !!x == x
  return Intern(ExprOp::kNot, 0, {a});
}

ExprId ExprFactory::And(ExprId a, ExprId b) {
  // Allocation-free fast paths for the folds MakeNary would apply
  // anyway: the evaluation kernel calls And/Or per (element x QList
  // entry) and the operands are constants most of the time.
  if (a == kFalseExpr || b == kFalseExpr) return kFalseExpr;
  if (a == kTrueExpr) return b;
  if (b == kTrueExpr) return a;
  if (a == b) return a;
  ExprId kids[2] = {a, b};
  return MakeNary(ExprOp::kAnd, kids);
}

ExprId ExprFactory::Or(ExprId a, ExprId b) {
  if (a == kTrueExpr || b == kTrueExpr) return kTrueExpr;
  if (a == kFalseExpr) return b;
  if (b == kFalseExpr) return a;
  if (a == b) return a;
  ExprId kids[2] = {a, b};
  return MakeNary(ExprOp::kOr, kids);
}

ExprId ExprFactory::AndN(std::span<const ExprId> kids) {
  return MakeNary(ExprOp::kAnd, kids);
}

ExprId ExprFactory::OrN(std::span<const ExprId> kids) {
  return MakeNary(ExprOp::kOr, kids);
}

ExprId ExprFactory::MakeNary(ExprOp nary_op, std::span<const ExprId> input) {
  assert(nary_op == ExprOp::kAnd || nary_op == ExprOp::kOr);
  // For AND: `absorbing` = false, `neutral` = true. For OR: dual.
  const ExprId absorbing = nary_op == ExprOp::kAnd ? kFalseExpr : kTrueExpr;
  const ExprId neutral = nary_op == ExprOp::kAnd ? kTrueExpr : kFalseExpr;

  // Flatten one level of same-op children, drop neutral elements,
  // short-circuit on the absorbing element.
  std::vector<ExprId> flat;
  flat.reserve(input.size());
  for (ExprId c : input) {
    if (c == absorbing) return absorbing;
    if (c == neutral) continue;
    if (op(c) == nary_op) {
      for (ExprId gc : children(c)) flat.push_back(gc);
    } else {
      flat.push_back(c);
    }
  }
  if (flat.empty()) return neutral;

  // Canonical order + dedup (idempotence).
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.size() == 1) return flat[0];

  // Complement cancellation: x op !x == absorbing. `flat` is sorted,
  // so membership is a binary search — no per-call hash set.
  for (ExprId c : flat) {
    if (op(c) == ExprOp::kNot &&
        std::binary_search(flat.begin(), flat.end(), children(c)[0])) {
      return absorbing;
    }
  }
  return Intern(nary_op, 0, std::move(flat));
}

size_t ExprFactory::NodeCount(ExprId e) const {
  std::unordered_set<ExprId> seen;
  std::vector<ExprId> stack{e};
  while (!stack.empty()) {
    ExprId x = stack.back();
    stack.pop_back();
    if (!seen.insert(x).second) continue;
    for (ExprId c : children(x)) stack.push_back(c);
  }
  return seen.size();
}

std::vector<VarId> ExprFactory::CollectVars(ExprId e) const {
  std::unordered_set<ExprId> seen;
  std::vector<ExprId> stack{e};
  std::vector<uint32_t> packed;
  while (!stack.empty()) {
    ExprId x = stack.back();
    stack.pop_back();
    if (!seen.insert(x).second) continue;
    if (op(x) == ExprOp::kVar) packed.push_back(nodes_[x].var);
    for (ExprId c : children(x)) stack.push_back(c);
  }
  std::sort(packed.begin(), packed.end());
  std::vector<VarId> out;
  out.reserve(packed.size());
  for (uint32_t p : packed) out.push_back(VarId::Unpack(p));
  return out;
}

std::string ExprFactory::ToString(ExprId e) const {
  switch (op(e)) {
    case ExprOp::kConst:
      return e == kTrueExpr ? "true" : "false";
    case ExprOp::kVar:
      return var(e).ToString();
    case ExprOp::kNot:
      return "!" + ToString(children(e)[0]);
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      std::string sep = op(e) == ExprOp::kAnd ? " & " : " | ";
      std::string out = "(";
      bool first = true;
      for (ExprId c : children(e)) {
        if (!first) out += sep;
        out += ToString(c);
        first = false;
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

Result<bool> ExprFactory::Eval(ExprId e, const Assignment& assignment) const {
  Tri t = EvalPartial(e, assignment);
  if (t == Tri::kUnknown) {
    return Status::Unresolved("formula contains unassigned variables: " +
                              ToString(e));
  }
  return t == Tri::kTrue;
}

Tri ExprFactory::EvalPartial(ExprId e, const Assignment& assignment) const {
  // Allocation-free fast paths: after folding, most solver queries hit
  // a constant or a bare variable — no memo machinery needed.
  switch (op(e)) {
    case ExprOp::kConst:
      return e == kTrueExpr ? Tri::kTrue : Tri::kFalse;
    case ExprOp::kVar: {
      std::optional<bool> v = assignment.Get(var(e));
      return !v.has_value() ? Tri::kUnknown
             : *v           ? Tri::kTrue
                            : Tri::kFalse;
    }
    default:
      break;
  }

  // Iterative post-order with memoization (formulas are DAGs).
  std::unordered_map<ExprId, Tri> memo;
  std::vector<std::pair<ExprId, bool>> stack{{e, false}};
  while (!stack.empty()) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(x) > 0) continue;
    if (!expanded) {
      switch (op(x)) {
        case ExprOp::kConst:
          memo[x] = x == kTrueExpr ? Tri::kTrue : Tri::kFalse;
          break;
        case ExprOp::kVar: {
          std::optional<bool> v = assignment.Get(var(x));
          memo[x] = !v.has_value() ? Tri::kUnknown
                    : *v           ? Tri::kTrue
                                   : Tri::kFalse;
          break;
        }
        default:
          stack.emplace_back(x, true);
          for (ExprId c : children(x)) stack.emplace_back(c, false);
          break;
      }
      continue;
    }
    // Children are memoized; combine (Kleene logic).
    if (op(x) == ExprOp::kNot) {
      Tri c = memo[children(x)[0]];
      memo[x] = c == Tri::kUnknown ? Tri::kUnknown
                : c == Tri::kTrue  ? Tri::kFalse
                                   : Tri::kTrue;
    } else {
      const bool is_and = op(x) == ExprOp::kAnd;
      Tri absorbing = is_and ? Tri::kFalse : Tri::kTrue;
      Tri result = is_and ? Tri::kTrue : Tri::kFalse;
      for (ExprId c : children(x)) {
        Tri t = memo[c];
        if (t == absorbing) {
          result = absorbing;
          break;
        }
        if (t == Tri::kUnknown) result = Tri::kUnknown;
      }
      memo[x] = result;
    }
  }
  return memo[e];
}

ExprId ExprFactory::Substitute(ExprId e, const Assignment& assignment) {
  std::unordered_map<ExprId, ExprId> memo;
  std::vector<std::pair<ExprId, bool>> stack{{e, false}};
  while (!stack.empty()) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(x) > 0) continue;
    if (!expanded) {
      switch (op(x)) {
        case ExprOp::kConst:
          memo[x] = x;
          break;
        case ExprOp::kVar: {
          std::optional<bool> v = assignment.Get(var(x));
          memo[x] = v.has_value() ? FromBool(*v) : x;
          break;
        }
        default:
          stack.emplace_back(x, true);
          for (ExprId c : children(x)) stack.emplace_back(c, false);
          break;
      }
      continue;
    }
    if (op(x) == ExprOp::kNot) {
      memo[x] = Not(memo[children(x)[0]]);
    } else {
      // Rebuild through the smart constructors so folding reapplies.
      // Note: children(x) may be invalidated by pool growth inside
      // MakeNary, so copy first.
      std::vector<ExprId> kids(children(x).begin(), children(x).end());
      for (ExprId& k : kids) k = memo[k];
      memo[x] = MakeNary(op(x), kids);
    }
  }
  return memo[e];
}

}  // namespace parbox::bexpr
