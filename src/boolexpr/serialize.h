// Wire format for formula vectors.
//
// In ParBoX each participating site ships its per-fragment vector
// triplets (V, CV, DV) — vectors of Boolean formulas — back to the
// coordinator. This module provides a compact, DAG-aware binary
// encoding so the benchmarks charge the network with the *actual*
// number of bytes a real deployment would move, and so FullDistParBoX
// can genuinely re-materialize formulas at another site's factory.
//
// Encoding: varint node count; then each distinct DAG node in
// topological order (op byte, then packed var or varint-encoded child
// back-references); then varint root count and the root node indices.

#ifndef PARBOX_BOOLEXPR_SERIALIZE_H_
#define PARBOX_BOOLEXPR_SERIALIZE_H_

#include <span>
#include <string>
#include <vector>

#include "boolexpr/expr.h"
#include "common/status.h"

namespace parbox::bexpr {

/// Serialize a vector of formulas (shared structure encoded once).
std::string SerializeExprs(const ExprFactory& factory,
                           std::span<const ExprId> roots);

/// Exactly SerializeExprs(factory, roots).size(), computed without
/// materializing the byte string — the per-triplet wire-cost question
/// every evaluation round asks sits on the hot path.
uint64_t SerializedExprsSize(const ExprFactory& factory,
                             std::span<const ExprId> roots);

/// Decode into `factory` (typically a different one than the encoder's).
/// Returns the decoded roots, in order.
Result<std::vector<ExprId>> DeserializeExprs(ExprFactory* factory,
                                             std::string_view data);

}  // namespace parbox::bexpr

#endif  // PARBOX_BOOLEXPR_SERIALIZE_H_
