// The Boolean-equation-system solving behind `evalST` (Sec. 3.1,
// "Composition of partial answers").
//
// Each fragment F_j contributes equations: the entries of its V and DV
// vectors are formulas whose variables refer exclusively to F_j's
// direct sub-fragments. Solving proceeds bottom-up over the fragment
// tree — leaves have constant vectors; substituting resolved children
// turns every parent entry into a constant — in time linear in the
// total size of the system, as the paper's analysis requires.

#ifndef PARBOX_BOOLEXPR_SOLVER_H_
#define PARBOX_BOOLEXPR_SOLVER_H_

#include <cstdint>
#include <vector>

#include "boolexpr/expr.h"
#include "common/status.h"

namespace parbox::bexpr {

/// The partial answer a fragment reports: formula vectors at its root.
/// (CV is carried for fidelity with Fig. 3's triplets but is never
/// consumed by a parent; see DESIGN.md.)
struct FragmentEquations {
  int32_t fragment = -1;
  std::vector<ExprId> v;
  std::vector<ExprId> cv;
  std::vector<ExprId> dv;
};

/// Solve the equation system bottom-up.
///
/// `equations[f]` must be the triplet for fragment id `f`;
/// `children_of[f]` lists f's direct sub-fragments. On success the
/// returned Assignment resolves every (fragment, V/DV, index) variable.
/// Fails with Unresolved if some entry references a variable outside
/// its fragment's children (a malformed system).
Result<Assignment> SolveBottomUp(
    ExprFactory* factory, const std::vector<FragmentEquations>& equations,
    const std::vector<std::vector<int32_t>>& children_of, int32_t root);

/// Convenience: solve and return the value of entry `query_index` of
/// the root fragment's V vector — the query answer per Sec. 3.1.
Result<bool> SolveForAnswer(
    ExprFactory* factory, const std::vector<FragmentEquations>& equations,
    const std::vector<std::vector<int32_t>>& children_of, int32_t root,
    int32_t query_index);

/// Three-valued variant used by LazyParBoX: fragments not present in
/// `available` contribute Unknown. Returns the Kleene value of the root
/// V entry; kUnknown means "cannot answer at this depth yet".
Tri SolvePartial(ExprFactory* factory,
                 const std::vector<const FragmentEquations*>& available,
                 const std::vector<std::vector<int32_t>>& children_of,
                 int32_t root, int32_t query_index);

}  // namespace parbox::bexpr

#endif  // PARBOX_BOOLEXPR_SOLVER_H_
