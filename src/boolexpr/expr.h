// Hash-consed Boolean formulas — the "partial answers" of ParBoX.
//
// Partial evaluation of a query over a fragment yields, per sub-query,
// either a truth value or a Boolean formula over variables that stand
// for the still-unknown results of sub-fragments (Sec. 3.1). This
// module provides those formulas:
//
//   * Nodes are immutable and interned in an ExprFactory; a formula is
//     a 32-bit ExprId. Structurally equal formulas share one id, so
//     equality is integer comparison.
//   * Smart constructors perform the paper's `compFm` constant folding
//     (cases c0-c3 of Fig. 3) plus n-ary flattening, deduplication and
//     complement cancellation, which keeps each vector entry within the
//     O(card(F_j)) size bound of the analysis.
//   * Variables carry structured identity (fragment, vector kind,
//     query index), so the equation-system solving of `evalST` is array
//     arithmetic, not string matching.
//
// An ExprFactory is per-run state, not a global: concurrent runs (or
// simulated sites) each own one.

#ifndef PARBOX_BOOLEXPR_EXPR_H_
#define PARBOX_BOOLEXPR_EXPR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace parbox::bexpr {

/// Which per-node vector a variable refers to (Fig. 3's V and DV; the
/// parent procedure never reads a child fragment's CV, see DESIGN.md).
enum class VectorKind : uint8_t { kV = 0, kDV = 1 };

/// Identity of a Boolean variable: "entry `query_index` of vector
/// `kind` at the root of fragment `fragment`".
struct VarId {
  int32_t fragment = 0;
  VectorKind kind = VectorKind::kV;
  int32_t query_index = 0;

  static constexpr int kQueryBits = 12;   ///< up to 4096 sub-queries
  static constexpr int32_t kMaxQueryIndex = (1 << kQueryBits) - 1;

  /// Dense packing used as a hash/array key.
  uint32_t Pack() const {
    return (static_cast<uint32_t>(fragment) << (kQueryBits + 1)) |
           (static_cast<uint32_t>(kind) << kQueryBits) |
           static_cast<uint32_t>(query_index);
  }
  static VarId Unpack(uint32_t packed) {
    VarId v;
    v.fragment = static_cast<int32_t>(packed >> (kQueryBits + 1));
    v.kind = static_cast<VectorKind>((packed >> kQueryBits) & 1);
    v.query_index = static_cast<int32_t>(packed & kMaxQueryIndex);
    return v;
  }

  friend bool operator==(const VarId& a, const VarId& b) {
    return a.Pack() == b.Pack();
  }

  /// "v7.3" / "dv7.3": kind + fragment + query index.
  std::string ToString() const;
};

/// Handle to an interned formula. 0 = false, 1 = true.
using ExprId = int32_t;
inline constexpr ExprId kFalseExpr = 0;
inline constexpr ExprId kTrueExpr = 1;

enum class ExprOp : uint8_t { kConst, kVar, kNot, kAnd, kOr };

/// Kleene three-valued truth, for LazyParBoX's "can we answer yet?".
enum class Tri : uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

/// Partial assignment of truth values to variables.
class Assignment {
 public:
  void Set(VarId var, bool value) { values_[var.Pack()] = value; }
  std::optional<bool> Get(VarId var) const {
    auto it = values_.find(var.Pack());
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  size_t size() const { return values_.size(); }

 private:
  std::unordered_map<uint32_t, bool> values_;
};

/// Owns and interns formula nodes; all operations live here.
class ExprFactory {
 public:
  ExprFactory();
  ExprFactory(const ExprFactory&) = delete;
  ExprFactory& operator=(const ExprFactory&) = delete;
  ExprFactory(ExprFactory&&) = default;
  ExprFactory& operator=(ExprFactory&&) = default;

  // ---- Construction (with compFm folding) ----
  ExprId False() const { return kFalseExpr; }
  ExprId True() const { return kTrueExpr; }
  ExprId FromBool(bool b) const { return b ? kTrueExpr : kFalseExpr; }
  ExprId Var(VarId var);
  ExprId Not(ExprId a);
  ExprId And(ExprId a, ExprId b);
  ExprId Or(ExprId a, ExprId b);
  /// n-ary forms (fold over the binary smart constructors).
  ExprId AndN(std::span<const ExprId> children);
  ExprId OrN(std::span<const ExprId> children);

  // ---- Introspection ----
  ExprOp op(ExprId e) const { return nodes_[e].op; }
  bool is_const(ExprId e) const { return e == kFalseExpr || e == kTrueExpr; }
  /// Precondition: is_const(e).
  bool const_value(ExprId e) const { return e == kTrueExpr; }
  /// Precondition: op(e) == kVar.
  VarId var(ExprId e) const { return VarId::Unpack(nodes_[e].var); }
  /// Children (one for kNot, >= 2 for kAnd/kOr, none otherwise).
  std::span<const ExprId> children(ExprId e) const;

  /// Number of distinct DAG nodes reachable from `e`.
  size_t NodeCount(ExprId e) const;
  /// Total interned nodes in this factory (ablation metric).
  size_t total_nodes() const { return nodes_.size(); }

  /// Distinct variables appearing in `e`, in ascending packed order.
  std::vector<VarId> CollectVars(ExprId e) const;

  /// Infix rendering, e.g. "(v3.1 & !dv4.0) | true".
  std::string ToString(ExprId e) const;

  // ---- Evaluation / substitution ----
  /// Two-valued evaluation. Fails with Unresolved if a variable has no
  /// value in `assignment`.
  Result<bool> Eval(ExprId e, const Assignment& assignment) const;

  /// Kleene three-valued evaluation under a partial assignment.
  Tri EvalPartial(ExprId e, const Assignment& assignment) const;

  /// Replace assigned variables by constants and re-simplify. Unknown
  /// variables remain symbolic.
  ExprId Substitute(ExprId e, const Assignment& assignment);

 private:
  struct NodeData {
    ExprOp op;
    uint32_t var = 0;          // packed VarId for kVar
    uint32_t child_begin = 0;  // into child_pool_
    uint32_t child_count = 0;
  };

  ExprId Intern(ExprOp op, uint32_t var, std::vector<ExprId> children);
  static uint64_t HashKey(ExprOp op, uint32_t var,
                          std::span<const ExprId> children);
  bool KeyEquals(ExprId e, ExprOp op, uint32_t var,
                 std::span<const ExprId> children) const;

  /// Shared implementation of And/Or (they are exact duals).
  ExprId MakeNary(ExprOp op, std::span<const ExprId> children);

  std::vector<NodeData> nodes_;
  std::vector<ExprId> child_pool_;
  std::unordered_multimap<uint64_t, ExprId> intern_;
};

}  // namespace parbox::bexpr

#endif  // PARBOX_BOOLEXPR_EXPR_H_
