#include "boolexpr/serialize.h"

#include <unordered_map>

namespace parbox::bexpr {

namespace {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t VarintSize(uint64_t v) {
  size_t size = 1;
  while (v >= 0x80) {
    ++size;
    v >>= 7;
  }
  return size;
}

/// Topological order over the union of the root DAGs; `index` maps each
/// node to its position. Shared by the encoder and the size counter so
/// the two can never disagree.
std::vector<ExprId> TopoOrder(const ExprFactory& factory,
                              std::span<const ExprId> roots,
                              std::unordered_map<ExprId, uint32_t>* index) {
  std::vector<ExprId> order;
  std::vector<std::pair<ExprId, bool>> stack;
  for (ExprId r : roots) stack.emplace_back(r, false);
  while (!stack.empty()) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (index->count(x) > 0) continue;
    if (expanded) {
      (*index)[x] = static_cast<uint32_t>(order.size());
      order.push_back(x);
      continue;
    }
    stack.emplace_back(x, true);
    for (ExprId c : factory.children(x)) {
      if (index->count(c) == 0) stack.emplace_back(c, false);
    }
  }
  return order;
}

bool GetVarint(std::string_view* in, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (!in->empty()) {
    uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    if (shift >= 63 && byte > 1) return false;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

std::string SerializeExprs(const ExprFactory& factory,
                           std::span<const ExprId> roots) {
  std::unordered_map<ExprId, uint32_t> index;
  const std::vector<ExprId> order = TopoOrder(factory, roots, &index);

  std::string out;
  PutVarint(&out, order.size());
  for (ExprId e : order) {
    ExprOp op = factory.op(e);
    out.push_back(static_cast<char>(op));
    switch (op) {
      case ExprOp::kConst:
        out.push_back(factory.const_value(e) ? 1 : 0);
        break;
      case ExprOp::kVar:
        PutVarint(&out, factory.var(e).Pack());
        break;
      default: {
        auto kids = factory.children(e);
        PutVarint(&out, kids.size());
        for (ExprId c : kids) PutVarint(&out, index.at(c));
        break;
      }
    }
  }
  PutVarint(&out, roots.size());
  for (ExprId r : roots) PutVarint(&out, index.at(r));
  return out;
}

uint64_t SerializedExprsSize(const ExprFactory& factory,
                             std::span<const ExprId> roots) {
  std::unordered_map<ExprId, uint32_t> index;
  const std::vector<ExprId> order = TopoOrder(factory, roots, &index);

  uint64_t size = VarintSize(order.size());
  for (ExprId e : order) {
    size += 1;  // op byte
    switch (factory.op(e)) {
      case ExprOp::kConst:
        size += 1;
        break;
      case ExprOp::kVar:
        size += VarintSize(factory.var(e).Pack());
        break;
      default: {
        auto kids = factory.children(e);
        size += VarintSize(kids.size());
        for (ExprId c : kids) size += VarintSize(index.at(c));
        break;
      }
    }
  }
  size += VarintSize(roots.size());
  for (ExprId r : roots) size += VarintSize(index.at(r));
  return size;
}

Result<std::vector<ExprId>> DeserializeExprs(ExprFactory* factory,
                                             std::string_view data) {
  auto malformed = [] { return Status::ParseError("malformed expr wire data"); };
  uint64_t node_count = 0;
  if (!GetVarint(&data, &node_count)) return malformed();
  std::vector<ExprId> decoded;
  decoded.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    if (data.empty()) return malformed();
    ExprOp op = static_cast<ExprOp>(data.front());
    data.remove_prefix(1);
    switch (op) {
      case ExprOp::kConst: {
        if (data.empty()) return malformed();
        bool value = data.front() != 0;
        data.remove_prefix(1);
        decoded.push_back(factory->FromBool(value));
        break;
      }
      case ExprOp::kVar: {
        uint64_t packed = 0;
        if (!GetVarint(&data, &packed)) return malformed();
        decoded.push_back(
            factory->Var(VarId::Unpack(static_cast<uint32_t>(packed))));
        break;
      }
      case ExprOp::kNot: {
        uint64_t count = 0, child = 0;
        if (!GetVarint(&data, &count) || count != 1) return malformed();
        if (!GetVarint(&data, &child) || child >= decoded.size()) {
          return malformed();
        }
        decoded.push_back(factory->Not(decoded[child]));
        break;
      }
      case ExprOp::kAnd:
      case ExprOp::kOr: {
        uint64_t count = 0;
        if (!GetVarint(&data, &count) || count < 2) return malformed();
        std::vector<ExprId> kids;
        kids.reserve(count);
        for (uint64_t k = 0; k < count; ++k) {
          uint64_t child = 0;
          if (!GetVarint(&data, &child) || child >= decoded.size()) {
            return malformed();
          }
          kids.push_back(decoded[child]);
        }
        decoded.push_back(op == ExprOp::kAnd ? factory->AndN(kids)
                                             : factory->OrN(kids));
        break;
      }
      default:
        return malformed();
    }
  }
  uint64_t root_count = 0;
  if (!GetVarint(&data, &root_count)) return malformed();
  std::vector<ExprId> roots;
  roots.reserve(root_count);
  for (uint64_t i = 0; i < root_count; ++i) {
    uint64_t idx = 0;
    if (!GetVarint(&data, &idx) || idx >= decoded.size()) return malformed();
    roots.push_back(decoded[idx]);
  }
  if (!data.empty()) return malformed();
  return roots;
}

}  // namespace parbox::bexpr
