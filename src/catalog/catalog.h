// Catalog: named documents served from ONE shared execution substrate.
//
// A production deployment does not run one cluster per document: the
// catalog owns a single exec::BackendHost (sim or threads, chosen
// once) and every opened document becomes an entry
//
//     name -> { FragmentSet, Placement, epoch-stamped SourceTree }
//
// with its own site *namespace* on the shared substrate. Documents
// open and close while others keep serving; any number of sessions
// may be open per document concurrently (each joins the host as its
// own namespace — worker pools and the virtual clock are shared, site
// ids are not).
//
// Placement is live: Document::Move re-homes a fragment between the
// document's sites mid-serving. The move bumps the placement epoch,
// freezes a fresh SourceTree snapshot, and publishes both on the
// document's PlacementFeed; subscribed sessions catch up lazily —
// re-partitioning their plan and re-shipping only the moved
// fragments' retained state (core/session.h). Content updates still
// flow through the usual delta path (Session::Apply /
// QueryService::ApplyDelta) against the entry's FragmentSet.
//
// Threading contract: the catalog is a control-plane object — open,
// close, and move from the coordinator (driving) thread only, between
// or inside event-loop turns, never concurrently with itself.
//
// The serving layer over a catalog — per-document query streams,
// result caches, migration metering — is service/catalog_service.h.

#ifndef PARBOX_CATALOG_CATALOG_H_
#define PARBOX_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/session.h"
#include "exec/host.h"
#include "fragment/fragment.h"
#include "fragment/placement.h"
#include "fragment/source_tree.h"
#include "sim/cluster.h"

namespace parbox::catalog {

struct CatalogOptions {
  sim::NetworkParams network{};
  /// Substrate for the shared host ("sim", "threads[:N]"; defaults to
  /// $PARBOX_BACKEND else sim). Bad specs fail Catalog::Create with
  /// the registered backends listed.
  std::string backend = exec::DefaultBackendSpec();
};

class Catalog;

/// One catalog entry. Addresses are stable for the catalog's lifetime
/// (entries are heap-held); a Document dies only at Close — drop
/// sessions and services over it first.
class Document {
 public:
  const std::string& name() const { return name_; }
  const frag::FragmentSet& set() const { return set_; }
  /// For the delta path (Session::Apply via OpenSession's writable
  /// sessions, or a serving layer's ApplyDelta).
  frag::FragmentSet* mutable_set() { return &set_; }
  const frag::Placement& placement() const { return placement_; }
  /// Current epoch-stamped snapshot (replaced on every Move).
  std::shared_ptr<const frag::SourceTree> source_tree() const {
    return feed_->snapshot();
  }
  const std::shared_ptr<frag::PlacementFeed>& feed() const { return feed_; }

  /// Live migration: re-home live fragment `f` to `site` (validated by
  /// Placement::Move — the root fragment is pinned), freeze + publish
  /// a fresh snapshot. Returns the site `f` moved FROM. Answers are
  /// unaffected; subscribers re-ship only f's retained state.
  Result<frag::SiteId> Move(frag::FragmentId f, frag::SiteId site);

  /// Open a session over this entry on the catalog's shared substrate:
  /// borrows the entry's deployment (writable — Apply works), joins
  /// the host as a new namespace, and subscribes to the placement
  /// feed. The catalog must outlive the session. Any number of
  /// concurrent sessions is fine for reads; route content mutations
  /// through ONE writer (each session tracks its own dirty log).
  Result<std::unique_ptr<core::Session>> OpenSession();

 private:
  friend class Catalog;
  Document(std::string name, frag::FragmentSet set,
           frag::Placement placement, Catalog* catalog)
      : name_(std::move(name)),
        set_(std::move(set)),
        placement_(std::move(placement)),
        catalog_(catalog),
        feed_(std::make_shared<frag::PlacementFeed>()) {}

  std::string name_;
  frag::FragmentSet set_;
  frag::Placement placement_;
  Catalog* catalog_;
  std::shared_ptr<frag::PlacementFeed> feed_;
};

class Catalog {
 public:
  /// Validates the backend spec and stands up the shared host.
  static Result<std::unique_ptr<Catalog>> Create(
      const CatalogOptions& options = {});

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Register `name` -> the deployment. The placement must cover the
  /// set (Placement invariants checked at its Create). Fails on
  /// duplicate names. Returns the stable entry.
  Result<Document*> Open(std::string name, frag::FragmentSet set,
                         frag::Placement placement);

  /// Drop the entry. Sessions/services over it must already be gone;
  /// its site namespace goes idle (ids are not recycled).
  Status Close(std::string_view name);

  /// nullptr when absent.
  Document* Find(std::string_view name);
  const Document* Find(std::string_view name) const;

  std::vector<std::string> names() const;
  size_t size() const { return documents_.size(); }

  exec::BackendHost* host() { return host_.get(); }
  const CatalogOptions& options() const { return options_; }

 private:
  Catalog() = default;

  CatalogOptions options_;
  std::unique_ptr<exec::BackendHost> host_;
  std::map<std::string, std::unique_ptr<Document>, std::less<>> documents_;
};

}  // namespace parbox::catalog

#endif  // PARBOX_CATALOG_CATALOG_H_
