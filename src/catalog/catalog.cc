#include "catalog/catalog.h"

namespace parbox::catalog {

Result<frag::SiteId> Document::Move(frag::FragmentId f,
                                    frag::SiteId site) {
  const frag::SiteId from =
      set_.is_live(f) && static_cast<size_t>(f) <
                             placement_.site_table().size()
          ? placement_.site_of(f)
          : -1;
  // Move-then-snapshot on a scratch copy, committed only whole: a
  // snapshot failure (e.g. a split fragment never Assign()ed a site)
  // must not leave the placement mutated but unpublished — subscribers
  // would silently miss f's relocation forever.
  frag::Placement moved = placement_;
  PARBOX_RETURN_IF_ERROR(moved.Move(set_, f, site));
  if (from == site) return from;  // no-op move: nothing to publish
  PARBOX_ASSIGN_OR_RETURN(frag::SourceTree snapshot, moved.Snapshot(set_));
  placement_ = std::move(moved);
  feed_->Publish(
      std::make_shared<const frag::SourceTree>(std::move(snapshot)), {f});
  return from;
}

Result<std::unique_ptr<core::Session>> Document::OpenSession() {
  core::SessionOptions options;
  options.network = catalog_->options().network;
  options.host = catalog_->host();
  auto session = std::make_unique<core::Session>(
      &set_, feed_->snapshot().get(), options);
  PARBOX_RETURN_IF_ERROR(session->backend_status());
  session->FollowPlacement(feed_);
  return session;
}

Result<std::unique_ptr<Catalog>> Catalog::Create(
    const CatalogOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::BackendHost> host,
      exec::BackendHost::Create(options.backend, options.network));
  auto catalog = std::unique_ptr<Catalog>(new Catalog());
  catalog->options_ = options;
  catalog->host_ = std::move(host);
  return catalog;
}

Result<Document*> Catalog::Open(std::string name, frag::FragmentSet set,
                                frag::Placement placement) {
  if (documents_.count(name) > 0) {
    return Status::InvalidArgument("document \"" + name +
                                   "\" is already open");
  }
  if (placement.site_table().size() < set.table_size()) {
    return Status::InvalidArgument(
        "placement does not cover the fragment table of \"" + name + "\"");
  }
  PARBOX_ASSIGN_OR_RETURN(frag::SourceTree snapshot,
                          placement.Snapshot(set));
  auto doc = std::unique_ptr<Document>(new Document(
      name, std::move(set), std::move(placement), this));
  doc->feed_->Publish(
      std::make_shared<const frag::SourceTree>(std::move(snapshot)), {});
  Document* out = doc.get();
  documents_.emplace(std::move(name), std::move(doc));
  return out;
}

Status Catalog::Close(std::string_view name) {
  auto it = documents_.find(name);
  if (it == documents_.end()) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not open");
  }
  documents_.erase(it);
  return Status::OK();
}

Document* Catalog::Find(std::string_view name) {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

const Document* Catalog::Find(std::string_view name) const {
  auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(documents_.size());
  for (const auto& [name, doc] : documents_) out.push_back(name);
  return out;
}

}  // namespace parbox::catalog
