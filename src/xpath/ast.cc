#include "xpath/ast.h"

namespace parbox::xpath {

std::unique_ptr<PathExpr> PathExpr::Self() {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kSelf;
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Label(std::string label) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kLabel;
  p->label = std::move(label);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Wildcard() {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kWildcard;
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Child(std::unique_ptr<PathExpr> l,
                                          std::unique_ptr<PathExpr> r) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kChildSeq;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Desc(std::unique_ptr<PathExpr> l,
                                         std::unique_ptr<PathExpr> r) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kDescSeq;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Qualified(std::unique_ptr<PathExpr> path,
                                              std::unique_ptr<QualExpr> q) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kQualified;
  p->left = std::move(path);
  p->qual = std::move(q);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Clone() const {
  auto p = std::make_unique<PathExpr>();
  p->kind = kind;
  p->label = label;
  if (left) p->left = left->Clone();
  if (right) p->right = right->Clone();
  if (qual) p->qual = qual->Clone();
  return p;
}

std::unique_ptr<QualExpr> QualExpr::Path(std::unique_ptr<PathExpr> p) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kPath;
  q->path = std::move(p);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::TextEquals(std::unique_ptr<PathExpr> p,
                                               std::string value) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kTextEquals;
  q->path = std::move(p);
  q->str = std::move(value);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::LabelEquals(std::string label) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kLabelEquals;
  q->str = std::move(label);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::Not(std::unique_ptr<QualExpr> inner) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kNot;
  q->a = std::move(inner);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::And(std::unique_ptr<QualExpr> a,
                                        std::unique_ptr<QualExpr> b) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kAnd;
  q->a = std::move(a);
  q->b = std::move(b);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::Or(std::unique_ptr<QualExpr> a,
                                       std::unique_ptr<QualExpr> b) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kOr;
  q->a = std::move(a);
  q->b = std::move(b);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::Clone() const {
  auto q = std::make_unique<QualExpr>();
  q->kind = kind;
  q->str = str;
  if (path) q->path = path->Clone();
  if (a) q->a = a->Clone();
  if (b) q->b = b->Clone();
  return q;
}

namespace {

void Render(const PathExpr& p, std::string* out);

void Render(const QualExpr& q, std::string* out) {
  switch (q.kind) {
    case QualKind::kPath:
      Render(*q.path, out);
      break;
    case QualKind::kTextEquals:
      Render(*q.path, out);
      *out += "/text() = \"";
      *out += q.str;
      *out += "\"";
      break;
    case QualKind::kLabelEquals:
      *out += "label() = ";
      *out += q.str;
      break;
    case QualKind::kNot:
      *out += "not(";
      Render(*q.a, out);
      *out += ")";
      break;
    case QualKind::kAnd:
    case QualKind::kOr:
      *out += "(";
      Render(*q.a, out);
      *out += q.kind == QualKind::kAnd ? " and " : " or ";
      Render(*q.b, out);
      *out += ")";
      break;
  }
}

void Render(const PathExpr& p, std::string* out) {
  switch (p.kind) {
    case PathKind::kSelf:
      *out += ".";
      break;
    case PathKind::kLabel:
      *out += p.label;
      break;
    case PathKind::kWildcard:
      *out += "*";
      break;
    case PathKind::kChildSeq:
      Render(*p.left, out);
      *out += "/";
      Render(*p.right, out);
      break;
    case PathKind::kDescSeq:
      Render(*p.left, out);
      *out += "//";
      Render(*p.right, out);
      break;
    case PathKind::kQualified:
      Render(*p.left, out);
      *out += "[";
      Render(*p.qual, out);
      *out += "]";
      break;
  }
}

}  // namespace

std::string ToString(const PathExpr& p) {
  std::string out;
  Render(p, &out);
  return out;
}

std::string ToString(const QualExpr& q) {
  std::string out = "[";
  Render(q, &out);
  out += "]";
  return out;
}

}  // namespace parbox::xpath
