// A deliberately naive interpreter of *surface* XBL queries.
//
// This is the correctness oracle for property tests: it shares no code
// with the production path (no normalization, no QList, no vectors —
// it materializes node sets for paths, exactly following the formal
// semantics of Sec. 2.2). It is exponential-free but can revisit
// nodes; use it on small trees only.

#ifndef PARBOX_XPATH_REFERENCE_EVAL_H_
#define PARBOX_XPATH_REFERENCE_EVAL_H_

#include <vector>

#include "xml/dom.h"
#include "xpath/ast.h"

namespace parbox::xpath {

/// val(q, v): does the query hold at context node `v`?
/// Precondition: the tree contains no virtual nodes.
bool ReferenceEval(const QualExpr& q, const xml::Node& v);

/// Nodes reachable from `v` via path `p`, in document order, deduped.
std::vector<const xml::Node*> ReferencePathEval(const PathExpr& p,
                                                const xml::Node& v);

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_REFERENCE_EVAL_H_
