#include "xpath/lexer.h"

#include <cctype>

namespace parbox::xpath {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == ':';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  auto fail = [&](const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(i));
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '[': out.push_back({TokenKind::kLBracket, "", start}); ++i; continue;
      case ']': out.push_back({TokenKind::kRBracket, "", start}); ++i; continue;
      case '(': out.push_back({TokenKind::kLParen, "", start}); ++i; continue;
      case ')': out.push_back({TokenKind::kRParen, "", start}); ++i; continue;
      case '*': out.push_back({TokenKind::kStar, "", start}); ++i; continue;
      case '.': out.push_back({TokenKind::kDot, "", start}); ++i; continue;
      case '=': out.push_back({TokenKind::kEquals, "", start}); ++i; continue;
      case '!': out.push_back({TokenKind::kBang, "", start}); ++i; continue;
      case '/':
        if (i + 1 < input.size() && input[i + 1] == '/') {
          out.push_back({TokenKind::kDoubleSlash, "", start});
          i += 2;
        } else {
          out.push_back({TokenKind::kSlash, "", start});
          ++i;
        }
        continue;
      case '"':
      case '\'': {
        char quote = c;
        ++i;
        std::string value;
        while (i < input.size() && input[i] != quote) {
          value.push_back(input[i]);
          ++i;
        }
        if (i >= input.size()) return fail("unterminated string literal");
        ++i;  // closing quote
        out.push_back({TokenKind::kString, std::move(value), start});
        continue;
      }
      default:
        break;
    }
    if (IsNameStart(c)) {
      size_t name_start = i;
      while (i < input.size() && IsNameChar(input[i])) ++i;
      std::string name(input.substr(name_start, i - name_start));
      // `text()` and `label()` are built-in functions, not labels.
      if ((name == "text" || name == "label") && i + 1 < input.size() &&
          input[i] == '(' && input[i + 1] == ')') {
        i += 2;
        out.push_back({name == "text" ? TokenKind::kTextFn
                                      : TokenKind::kLabelFn,
                       "", start});
      } else {
        out.push_back({TokenKind::kName, std::move(name), start});
      }
      continue;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }
  out.push_back({TokenKind::kEnd, "", input.size()});
  return out;
}

}  // namespace parbox::xpath
