// NormQuery: an XBL query in the β-normal form of Sec. 2.2, stored as
// its QList — the topologically sorted list of all sub-queries.
//
// Every sub-query is one of nine shapes, matching cases c0-c8 of
// Procedure bottomUp (Fig. 3):
//
//   c0 kEps      ǫ                  true at every node
//   c1 kLabelIs  label() = A
//   c2 kTextIs   text() = "str"     direct text content equals str
//   c3 kChild    * / q_a            q_a holds at some element child
//   c4 kSeq      ǫ[q_a] / q_b       q_a and q_b both hold here
//   c5 kDesc     // q_a             q_a holds here or at a descendant
//   c6 kOr       q_a ∨ q_b
//   c7 kAnd      q_a ∧ q_b
//   c8 kNot      ¬ q_a
//      kMark     selection endpoint (data-selection extension): as a
//                Boolean it is ǫ (true everywhere); the downward pass
//                of path selection treats reaching it as "this node is
//                selected".
//
// Nodes are hash-consed at construction, so identical sub-queries share
// one QList entry and ids are assigned in creation order — which *is* a
// topological order (a sub-query is always created before anything that
// references it). The query answer is the entry at root() — the last
// interesting position of the list, exactly as in the paper.

#ifndef PARBOX_XPATH_QLIST_H_
#define PARBOX_XPATH_QLIST_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace parbox::xpath {

enum class NormKind : uint8_t {
  kEps,
  kMark,
  kLabelIs,
  kTextIs,
  kChild,
  kSeq,
  kDesc,
  kAnd,
  kOr,
  kNot,
};

const char* NormKindName(NormKind kind);

/// Index of a sub-query within a NormQuery's QList.
using SubQueryId = int32_t;

/// A normalized query: the QList plus the root (answer) entry.
class NormQuery {
 public:
  struct SubQuery {
    NormKind kind;
    SubQueryId a = -1;  ///< first child (kChild/kSeq/kDesc/kAnd/kOr/kNot)
    SubQueryId b = -1;  ///< second child (kSeq/kAnd/kOr)
    std::string str;    ///< label (kLabelIs) or text value (kTextIs)

    /// Entry-wise structural equality. Because child references are
    /// QList indices, two queries whose first k entries compare equal
    /// share an identical sub-query *prefix* — the basis of fused
    /// evaluation's cross-query sharing and of cache subsumption.
    friend bool operator==(const SubQuery& x, const SubQuery& y) {
      return x.kind == y.kind && x.a == y.a && x.b == y.b && x.str == y.str;
    }
  };

  NormQuery() = default;
  NormQuery(NormQuery&&) = default;
  NormQuery& operator=(NormQuery&&) = default;
  NormQuery(const NormQuery&) = delete;
  NormQuery& operator=(const NormQuery&) = delete;

  // ---- Consing builder (used by Normalize and the query generators) ----
  SubQueryId Eps();
  /// Selection endpoint (see kMark).
  SubQueryId Mark();
  SubQueryId LabelIs(std::string label);
  SubQueryId TextIs(std::string value);
  SubQueryId Child(SubQueryId a);
  /// ǫ[a]/b. Applies the paper's ǫ-merge rules: Seq(a, Eps) = a and
  /// Seq(a, Seq(b, rest)) = Seq(a ∧ b, rest).
  SubQueryId Seq(SubQueryId a, SubQueryId b);
  SubQueryId Desc(SubQueryId a);
  SubQueryId And(SubQueryId a, SubQueryId b);
  SubQueryId Or(SubQueryId a, SubQueryId b);
  SubQueryId Not(SubQueryId a);
  void SetRoot(SubQueryId root) { root_ = root; }

  // ---- Access ----
  /// |QList(q)|: number of sub-queries (vector width in all algorithms).
  size_t size() const { return nodes_.size(); }
  const SubQuery& at(SubQueryId id) const { return nodes_[id]; }
  SubQueryId root() const { return root_; }

  /// Verify ids form a topological order and children are in range.
  bool IsWellFormed() const;

  /// Render one sub-query, e.g. "(*/q3)".
  std::string SubQueryToString(SubQueryId id) const;
  /// Multi-line listing of the whole QList (Example 2.1 style).
  std::string ToString() const;

  /// Bytes to ship the query to a site (the |q| in traffic bounds):
  /// measured as the size of a compact binary encoding.
  uint64_t SerializedSizeBytes() const;

 private:
  SubQueryId Intern(NormKind kind, SubQueryId a, SubQueryId b,
                    std::string str);

  std::vector<SubQuery> nodes_;
  std::unordered_map<std::string, SubQueryId> intern_;
  SubQueryId root_ = -1;
};

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_QLIST_H_
