#include "xpath/fingerprint.h"

#include <cstdio>

namespace parbox::xpath {

namespace {

void PutI32(std::string* out, int32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((static_cast<uint32_t>(v) >> shift) &
                                     0xFF));
  }
}

/// splitmix64 finalizer — decorrelates the two FNV lanes.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void AppendEntryBytes(std::string* out, const NormQuery::SubQuery& n) {
  out->push_back(static_cast<char>(n.kind));
  PutI32(out, n.a);
  PutI32(out, n.b);
  PutI32(out, static_cast<int32_t>(n.str.size()));
  *out += n.str;
}

QueryFingerprint SealPrefixDigest(uint64_t lo, uint64_t hi, size_t len) {
  QueryFingerprint fp;
  fp.lo = lo;
  fp.hi = Mix(hi ^ static_cast<uint64_t>(len));
  return fp;
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes, uint64_t basis) {
  uint64_t h = basis;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
  }
  return h;
}

std::string CanonicalQueryBytes(const NormQuery& q) {
  std::string out;
  out.reserve(16 * q.size());
  for (size_t i = 0; i < q.size(); ++i) {
    AppendEntryBytes(&out, q.at(static_cast<SubQueryId>(i)));
  }
  PutI32(&out, q.root());
  return out;
}

QueryFingerprint PrefixDigest(const NormQuery& q, size_t len) {
  uint64_t lo = kFnv1a64Basis;
  uint64_t hi = Mix(kFnv1a64Basis);
  std::string entry;
  for (size_t i = 0; i < len; ++i) {
    entry.clear();
    AppendEntryBytes(&entry, q.at(static_cast<SubQueryId>(i)));
    lo = Fnv1a64(entry, lo);
    hi = Fnv1a64(entry, hi);
  }
  return SealPrefixDigest(lo, hi, len);
}

std::vector<QueryFingerprint> AllPrefixDigests(const NormQuery& q) {
  std::vector<QueryFingerprint> out;
  out.reserve(q.size());
  uint64_t lo = kFnv1a64Basis;
  uint64_t hi = Mix(kFnv1a64Basis);
  std::string entry;
  for (size_t i = 0; i < q.size(); ++i) {
    entry.clear();
    AppendEntryBytes(&entry, q.at(static_cast<SubQueryId>(i)));
    lo = Fnv1a64(entry, lo);
    hi = Fnv1a64(entry, hi);
    out.push_back(SealPrefixDigest(lo, hi, i + 1));
  }
  return out;
}

bool IsQListPrefix(const NormQuery& a, const NormQuery& b) {
  if (a.size() > b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a.at(static_cast<SubQueryId>(i)) ==
          b.at(static_cast<SubQueryId>(i)))) {
      return false;
    }
  }
  return true;
}

QueryFingerprint FingerprintQuery(const NormQuery& q) {
  const std::string bytes = CanonicalQueryBytes(q);
  QueryFingerprint fp;
  fp.lo = Fnv1a64(bytes);
  fp.hi = Fnv1a64(bytes, Mix(kFnv1a64Basis ^ bytes.size()));
  return fp;
}

std::string QueryFingerprint::ToString() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

}  // namespace parbox::xpath
