// Fused multi-query evaluation: ONE bottom-up walk of a tree computes
// the (V, CV, DV) triplets of EVERY query in a batch.
//
// Procedure bottomUp (Fig. 3, xpath/eval.h) is linear in |T|·|q| but
// the serving layer runs it once per (fragment, query) pair: K
// concurrent queries re-walk the same fragment K times, re-paying the
// node traversal, label dispatch and frame management each time. The
// batch kernel here carries all K queries' vectors through a single
// post-order walk — the concatenated "lane" layout below — so the
// per-node costs are paid once for the whole batch.
//
// Cross-query CSE rides on two facts:
//
//   * Variables are *lane-local*: the resolver mints the same VarId
//     {fragment, kind, i} for entry i of every lane (each query's
//     equation system is solved independently, so reusing the ids is
//     sound — and it is exactly what per-query evaluation in a shared
//     factory produces today).
//   * QLists are consed deterministically, so queries derived from a
//     shared template agree entry-for-entry on a QList *prefix*. A
//     lane whose prefix equals an earlier lane's (its "donor") copies
//     the donor's already-computed values for those entries at every
//     node — each copied value IS the shared interned formula — and
//     evaluates only its divergent suffix.
//
// The fused results are bit-identical (same ExprIds, same wire bytes)
// to K independent walks in the same factory: suffix entries evaluate
// exactly as the single-query kernel would, and prefix entries copy
// values that induction makes equal to what the lane would have
// computed itself. Verified in tests/fused_eval_test.cc.

#ifndef PARBOX_XPATH_EVAL_BATCH_H_
#define PARBOX_XPATH_EVAL_BATCH_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "xml/dom.h"
#include "xpath/eval.h"
#include "xpath/qlist.h"

namespace parbox::xpath {

/// One query's lane in a fused batch: where its entries live in the
/// concatenated entry space and how much of its QList prefix it can
/// copy from an earlier lane instead of evaluating.
struct BatchLane {
  const NormQuery* query = nullptr;
  uint32_t offset = 0;  ///< first concatenated index of this lane
  uint32_t width = 0;   ///< |QList| of this lane's query
  int32_t donor = -1;   ///< earlier lane sharing a prefix, or -1
  uint32_t shared = 0;  ///< leading entries identical to the donor's
};

/// A batch of queries prepared for fused evaluation. Build once per
/// batch (the donor scan is O(K² · |q|)), then walk any number of
/// trees/fragments with BottomUpEvalBatch.
struct EvalBatch {
  std::vector<BatchLane> lanes;
  size_t total_width = 0;  ///< Σ lane widths (concatenated space size)
  size_t max_width = 0;    ///< widest lane (resolver vector size)

  size_t size() const { return lanes.size(); }
};

/// Length of the common QList prefix of two queries (entry-wise
/// structural equality; child references are indices, so equal
/// prefixes denote identical sub-query DAGs).
inline size_t CommonQListPrefix(const NormQuery& a, const NormQuery& b) {
  const size_t limit = std::min(a.size(), b.size());
  size_t k = 0;
  while (k < limit && a.at(static_cast<SubQueryId>(k)) ==
                          b.at(static_cast<SubQueryId>(k))) {
    ++k;
  }
  return k;
}

/// Lay out `queries` as lanes and pick each lane's donor: the earlier
/// lane with the longest common prefix (earliest wins ties). Queries
/// must outlive the batch.
inline EvalBatch MakeEvalBatch(
    const std::vector<const NormQuery*>& queries) {
  EvalBatch batch;
  batch.lanes.reserve(queries.size());
  for (const NormQuery* q : queries) {
    BatchLane lane;
    lane.query = q;
    lane.offset = static_cast<uint32_t>(batch.total_width);
    lane.width = static_cast<uint32_t>(q->size());
    for (size_t j = 0; j < batch.lanes.size(); ++j) {
      const size_t common = CommonQListPrefix(*q, *batch.lanes[j].query);
      if (common > lane.shared) {
        lane.shared = static_cast<uint32_t>(common);
        lane.donor = static_cast<int32_t>(j);
      }
    }
    batch.total_width += lane.width;
    batch.max_width = std::max(batch.max_width, q->size());
    batch.lanes.push_back(lane);
  }
  return batch;
}

/// Fused-walk accounting beyond EvalCounters: how much cross-query
/// sharing the donor-copy scheme realized.
struct BatchEvalStats {
  /// (element × entry) slots served by copying a donor lane's value —
  /// each one a per-query evaluation (and its interned subformulas)
  /// that a per-query walk would have re-derived.
  uint64_t shared_entries = 0;
};

/// Evaluate every lane of `batch` over the subtree rooted at `root` in
/// one walk. `resolve_virtual(node, out_v, out_dv)` fills V/DV vectors
/// of size batch.max_width for a virtual child; entry i is shared by
/// every lane (lane-local variable identity — see file comment).
/// Returns one EvalVectors per lane, in lane order.
///
/// `counters->ops` charges only the entries actually evaluated
/// (Σ_k width_k − shared_k per element); donor-copied slots land in
/// `stats->shared_entries` instead. `counters->elements` counts each
/// element once per *walk*, not once per lane.
template <typename Domain, typename VirtualFn>
std::vector<EvalVectors<Domain>> BottomUpEvalBatch(
    Domain dom, const EvalBatch& batch, const xml::Node& root,
    VirtualFn&& resolve_virtual, EvalCounters* counters = nullptr,
    BatchEvalStats* stats = nullptr) {
  assert(root.is_element());
  using Value = typename Domain::Value;
  const size_t total = batch.total_width;

  struct Frame {
    const xml::Node* node;
    const xml::Node* next_child;
    std::vector<Value> cv;
    std::vector<Value> dv;
    /// Deferred non-constant child contributions, in concatenated
    /// index space (see eval.h: batch-fold OrN instead of pairwise
    /// interning chains).
    std::vector<std::pair<uint32_t, Value>> cv_ops;
    std::vector<std::pair<uint32_t, Value>> dv_ops;
  };

  // Frame pooling exactly as in the single-query kernel: the stack
  // only grows, popped frames keep their capacity.
  std::vector<Frame> stack;
  size_t depth = 0;
  auto push_frame = [&](const xml::Node* node) {
    if (depth == stack.size()) stack.emplace_back();
    Frame& f = stack[depth++];
    f.node = node;
    f.next_child = node->first_child;
    f.cv.assign(total, dom.False());
    f.dv.assign(total, dom.False());
    f.cv_ops.clear();
    f.dv_ops.clear();
  };

  const Value kTrueValue = dom.FromBool(true);
  auto accumulate = [&](std::vector<Value>& base,
                        std::vector<std::pair<uint32_t, Value>>& ops,
                        size_t i, Value value) {
    if (value == dom.False() || base[i] == kTrueValue) return;
    if (value == kTrueValue) {
      base[i] = kTrueValue;
      return;
    }
    ops.emplace_back(static_cast<uint32_t>(i), value);
  };
  std::vector<Value> fold_scratch;
  auto fold_ops = [&](std::vector<std::pair<uint32_t, Value>>& ops,
                      std::vector<Value>& base) {
    std::sort(ops.begin(), ops.end());
    for (size_t a = 0; a < ops.size();) {
      size_t b = a;
      while (b < ops.size() && ops[b].first == ops[a].first) ++b;
      const size_t i = ops[a].first;
      if (base[i] != kTrueValue) {
        if (b - a == 1) {
          base[i] = ops[a].second;
        } else if constexpr (Domain::kBatchFold) {
          fold_scratch.clear();
          for (size_t k = a; k < b; ++k) {
            fold_scratch.push_back(ops[k].second);
          }
          base[i] = dom.OrN(fold_scratch);
        }
      }
      a = b;
    }
    ops.clear();
  };

  std::vector<EvalVectors<Domain>> result(batch.lanes.size());
  push_frame(&root);

  std::vector<Value> vv(total, dom.False());
  std::vector<Value> virt_v(batch.max_width, dom.False());
  std::vector<Value> virt_dv(batch.max_width, dom.False());

  while (depth > 0) {
    Frame& f = stack[depth - 1];

    // Phase 1: fold children. Only each lane's *suffix* accumulates —
    // its prefix region is overwritten by the donor copy in Phase 2,
    // so folding into it would be wasted work.
    bool descended = false;
    while (f.next_child != nullptr) {
      const xml::Node* c = f.next_child;
      f.next_child = c->next_sibling;
      if (c->is_text()) continue;
      if (c->is_virtual()) {
        resolve_virtual(*c, &virt_v, &virt_dv);
        assert(virt_v.size() == batch.max_width &&
               virt_dv.size() == batch.max_width);
        for (const BatchLane& lane : batch.lanes) {
          for (size_t i = lane.shared; i < lane.width; ++i) {
            const size_t at = lane.offset + i;
            if constexpr (Domain::kBatchFold) {
              accumulate(f.cv, f.cv_ops, at, virt_v[i]);
              accumulate(f.dv, f.dv_ops, at, virt_dv[i]);
            } else {
              f.cv[at] = dom.Or(f.cv[at], virt_v[i]);
              f.dv[at] = dom.Or(f.dv[at], virt_dv[i]);
            }
          }
        }
        continue;
      }
      push_frame(c);  // may grow `stack`; `f` is not used past here
      descended = true;
      break;
    }
    if (descended) continue;
    if constexpr (Domain::kBatchFold) {
      fold_ops(f.cv_ops, f.cv);
      fold_ops(f.dv_ops, f.dv);
    }

    // Phase 2, lane by lane in order (donors precede their
    // dependents): copy the donor's finished prefix, then evaluate
    // only the divergent suffix. After this loop every lane's full
    // region of vv / f.cv / f.dv is exactly what a solo walk of that
    // lane's query would hold at this node.
    const xml::Node& node = *f.node;
    uint64_t evaluated = 0;
    uint64_t copied = 0;
    for (const BatchLane& lane : batch.lanes) {
      const NormQuery& q = *lane.query;
      const size_t off = lane.offset;
      if (lane.donor >= 0 && lane.shared > 0) {
        const size_t doff = batch.lanes[lane.donor].offset;
        // The donor's prefix is post-Phase-2 here: vv final, dv with
        // the line-17 "v ∨ dv" update applied, cv as folded. Suffix
        // entries below may reference prefix entries through any of
        // the three vectors, so all three segments copy.
        std::copy_n(vv.begin() + doff, lane.shared, vv.begin() + off);
        std::copy_n(f.cv.begin() + doff, lane.shared, f.cv.begin() + off);
        std::copy_n(f.dv.begin() + doff, lane.shared, f.dv.begin() + off);
        copied += lane.shared;
      }
      for (size_t i = lane.shared; i < lane.width; ++i) {
        const NormQuery::SubQuery& sq = q.at(static_cast<SubQueryId>(i));
        Value value;
        switch (sq.kind) {
          case NormKind::kEps:
          case NormKind::kMark:
            value = dom.FromBool(true);
            break;
          case NormKind::kLabelIs:
            value = dom.FromBool(node.label() == sq.str);
            break;
          case NormKind::kTextIs:
            value = dom.FromBool(xml::DirectTextEquals(node, sq.str));
            break;
          case NormKind::kChild:
            value = f.cv[off + sq.a];
            break;
          case NormKind::kSeq:
            value = dom.And(vv[off + sq.a], vv[off + sq.b]);
            break;
          case NormKind::kDesc:
            value = f.dv[off + sq.a];
            break;
          case NormKind::kAnd:
            value = dom.And(vv[off + sq.a], vv[off + sq.b]);
            break;
          case NormKind::kOr:
            value = dom.Or(vv[off + sq.a], vv[off + sq.b]);
            break;
          case NormKind::kNot:
            value = dom.Not(vv[off + sq.a]);
            break;
          default:
            value = dom.False();
            break;
        }
        vv[off + i] = value;
        f.dv[off + i] = dom.Or(value, f.dv[off + i]);  // line 17
      }
      evaluated += lane.width - lane.shared;
    }
    if (counters != nullptr) {
      counters->ops += evaluated;
      counters->elements += 1;
    }
    if (stats != nullptr) stats->shared_entries += copied;

    // Phase 3: fold this node's (V, DV) into the parent — again only
    // each lane's suffix; the parent's prefix regions come from its
    // donor copy.
    if (depth == 1) {
      for (size_t k = 0; k < batch.lanes.size(); ++k) {
        const BatchLane& lane = batch.lanes[k];
        result[k].v.assign(vv.begin() + lane.offset,
                           vv.begin() + lane.offset + lane.width);
        result[k].cv.assign(f.cv.begin() + lane.offset,
                            f.cv.begin() + lane.offset + lane.width);
        result[k].dv.assign(f.dv.begin() + lane.offset,
                            f.dv.begin() + lane.offset + lane.width);
      }
      --depth;
    } else {
      Frame& parent = stack[depth - 2];
      for (const BatchLane& lane : batch.lanes) {
        for (size_t i = lane.shared; i < lane.width; ++i) {
          const size_t at = lane.offset + i;
          if constexpr (Domain::kBatchFold) {
            accumulate(parent.cv, parent.cv_ops, at, vv[at]);
            accumulate(parent.dv, parent.dv_ops, at, f.dv[at]);
          } else {
            parent.cv[at] = dom.Or(parent.cv[at], vv[at]);
            parent.dv[at] = dom.Or(parent.dv[at], f.dv[at]);
          }
        }
      }
      --depth;
    }
  }
  return result;
}

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_EVAL_BATCH_H_
