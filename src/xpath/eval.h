// Procedure bottomUp (Fig. 3): a single-pass, bottom-up evaluation of
// all QList entries at every element of a tree, in O(|T|·|q|).
//
// The same kernel serves two masters:
//
//   * BoolDomain  — plain truth values. Over an unfragmented tree this
//     *is* the best-known centralized algorithm the paper compares
//     against; over a fragment with already-resolved sub-fragments it
//     is NaiveDistributed's per-fragment step.
//   * ExprDomain  — Boolean formulas (boolexpr). Over a fragment whose
//     virtual nodes yield fresh variables it is ParBoX's partial
//     evaluation, returning the (V, CV, DV) triplet of Fig. 3.
//
// Virtual nodes are delegated to a caller-supplied resolver, which
// decides what a sub-fragment's V/DV vectors look like (variables,
// previously computed truth values, ...). The kernel is iterative — an
// explicit post-order stack — so chain-shaped trees cannot overflow
// the C++ stack; memory is O(depth · |q|).

#ifndef PARBOX_XPATH_EVAL_H_
#define PARBOX_XPATH_EVAL_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "boolexpr/expr.h"
#include "common/status.h"
#include "xml/dom.h"
#include "xpath/qlist.h"

namespace parbox::xpath {

/// Truth-value domain: the centralized / fully-resolved case.
struct BoolDomain {
  using Value = bool;
  /// Pairwise Or-folding of child contributions is a single bitwise op
  /// here — no reason to batch.
  static constexpr bool kBatchFold = false;
  bool False() const { return false; }
  bool FromBool(bool b) const { return b; }
  bool And(bool a, bool b) const { return a && b; }
  bool Or(bool a, bool b) const { return a || b; }
  bool Not(bool a) const { return !a; }
};

/// Formula domain: partial evaluation. Wraps an ExprFactory; the
/// factory's smart constructors implement compFm's folding.
struct ExprDomain {
  using Value = bexpr::ExprId;
  /// Folding k child contributions pairwise would intern a chain of k
  /// intermediate n-ary nodes (each hashing all its children — O(k²)
  /// work and O(k) dead nodes per QList entry at fragment roots with
  /// many sub-fragments). Batch mode gathers the operands and interns
  /// only the final node, which is structurally identical to what the
  /// pairwise chain flattens to.
  static constexpr bool kBatchFold = true;
  bexpr::ExprFactory* factory;

  Value False() const { return factory->False(); }
  Value FromBool(bool b) const { return factory->FromBool(b); }
  Value And(Value a, Value b) const { return factory->And(a, b); }
  Value Or(Value a, Value b) const { return factory->Or(a, b); }
  Value Not(Value a) const { return factory->Not(a); }
  Value OrN(std::span<const Value> operands) const {
    return factory->OrN(operands);
  }
};

/// The (V, CV, DV) triplet of Fig. 3, at one node.
template <typename Domain>
struct EvalVectors {
  std::vector<typename Domain::Value> v;   ///< holds *here*
  std::vector<typename Domain::Value> cv;  ///< holds at some child
  std::vector<typename Domain::Value> dv;  ///< holds here or below
};

/// What the kernel charges per element node: one pass over the QList.
/// `ops` below counts element-node × QList-entry steps — the unit in
/// which all computation-cost bounds of the paper are expressed.
struct EvalCounters {
  uint64_t ops = 0;
  uint64_t elements = 0;
};

/// Evaluate all QList entries over the subtree rooted at `root` (must
/// be an element). `resolve_virtual(node, out_v, out_dv)` fills the V
/// and DV vectors (size |q|) for a virtual child. `node_hook(node, v)`
/// observes each element's finished V vector (used by the selection
/// extension to retain per-node predicates).
template <typename Domain, typename VirtualFn, typename NodeHook>
EvalVectors<Domain> BottomUpEvalHooked(Domain dom, const NormQuery& q,
                                       const xml::Node& root,
                                       VirtualFn&& resolve_virtual,
                                       NodeHook&& node_hook,
                                       EvalCounters* counters = nullptr) {
  assert(root.is_element());
  using Value = typename Domain::Value;
  const size_t n = q.size();

  struct Frame {
    const xml::Node* node;
    const xml::Node* next_child;
    std::vector<Value> cv;
    std::vector<Value> dv;
    /// Batch-fold mode only (see ExprDomain::kBatchFold): non-constant
    /// child contributions per QList entry, folded with one OrN at
    /// Phase 2 instead of interning a chain of intermediates. Constant
    /// contributions short-circuit straight into cv/dv.
    std::vector<std::pair<uint32_t, Value>> cv_ops;
    std::vector<std::pair<uint32_t, Value>> dv_ops;
  };

  // The stack only ever grows; popped frames keep their vector
  // capacity and are reused by the next push at that depth, so the
  // per-element allocations disappear after the first descent.
  std::vector<Frame> stack;
  size_t depth = 0;
  auto push_frame = [&](const xml::Node* node) {
    if (depth == stack.size()) stack.emplace_back();
    Frame& f = stack[depth++];
    f.node = node;
    f.next_child = node->first_child;
    f.cv.assign(n, dom.False());
    f.dv.assign(n, dom.False());
    f.cv_ops.clear();
    f.dv_ops.clear();
  };

  const Value kTrueValue = dom.FromBool(true);
  // Fold one child's contribution to entry `i` into base[i] (absorbing
  // on true, neutral on false) or defer it to the operand list.
  auto accumulate = [&](std::vector<Value>& base,
                        std::vector<std::pair<uint32_t, Value>>& ops,
                        size_t i, Value value) {
    if (value == dom.False() || base[i] == kTrueValue) return;
    if (value == kTrueValue) {
      base[i] = kTrueValue;
      return;
    }
    ops.emplace_back(static_cast<uint32_t>(i), value);
  };
  // Phase-2 helper: gather deferred operands per entry, one OrN each.
  std::vector<Value> fold_scratch;
  auto fold_ops = [&](std::vector<std::pair<uint32_t, Value>>& ops,
                      std::vector<Value>& base) {
    std::sort(ops.begin(), ops.end());
    for (size_t a = 0; a < ops.size();) {
      size_t b = a;
      while (b < ops.size() && ops[b].first == ops[a].first) ++b;
      const size_t i = ops[a].first;
      if (base[i] != kTrueValue) {
        if (b - a == 1) {
          base[i] = ops[a].second;
        } else if constexpr (Domain::kBatchFold) {  // only caller
          fold_scratch.clear();
          for (size_t k = a; k < b; ++k) {
            fold_scratch.push_back(ops[k].second);
          }
          base[i] = dom.OrN(fold_scratch);
        }
      }
      a = b;
    }
    ops.clear();
  };

  EvalVectors<Domain> result;
  push_frame(&root);

  std::vector<Value> vv(n, dom.False());
  std::vector<Value> virt_v(n, dom.False());
  std::vector<Value> virt_dv(n, dom.False());

  while (depth > 0) {
    Frame& f = stack[depth - 1];

    // Phase 1: fold children (lines 1-5 of bottomUp).
    bool descended = false;
    while (f.next_child != nullptr) {
      const xml::Node* c = f.next_child;
      f.next_child = c->next_sibling;
      if (c->is_text()) continue;  // text leaves carry no vectors
      if (c->is_virtual()) {
        resolve_virtual(*c, &virt_v, &virt_dv);
        assert(virt_v.size() == n && virt_dv.size() == n);
        for (size_t i = 0; i < n; ++i) {
          if constexpr (Domain::kBatchFold) {
            accumulate(f.cv, f.cv_ops, i, virt_v[i]);
            accumulate(f.dv, f.dv_ops, i, virt_dv[i]);
          } else {
            f.cv[i] = dom.Or(f.cv[i], virt_v[i]);
            f.dv[i] = dom.Or(f.dv[i], virt_dv[i]);
          }
        }
        continue;
      }
      push_frame(c);  // may grow `stack`; `f` is not used past here
      descended = true;
      break;
    }
    if (descended) continue;
    if constexpr (Domain::kBatchFold) {
      fold_ops(f.cv_ops, f.cv);
      fold_ops(f.dv_ops, f.dv);
    }

    // Phase 2: all children folded; compute V at this node
    // (lines 6-17, cases c0-c8).
    const xml::Node& node = *f.node;
    for (size_t i = 0; i < n; ++i) {
      const NormQuery::SubQuery& sq = q.at(static_cast<SubQueryId>(i));
      Value value;
      switch (sq.kind) {
        case NormKind::kEps:
        case NormKind::kMark:  // as a Boolean, a mark is just ǫ
          value = dom.FromBool(true);
          break;
        case NormKind::kLabelIs:
          value = dom.FromBool(node.label() == sq.str);
          break;
        case NormKind::kTextIs:
          value = dom.FromBool(xml::DirectTextEquals(node, sq.str));
          break;
        case NormKind::kChild:
          value = f.cv[sq.a];
          break;
        case NormKind::kSeq:
          value = dom.And(vv[sq.a], vv[sq.b]);
          break;
        case NormKind::kDesc:
          // DV of the operand is already final for this node because
          // the QList is topologically sorted (sq.a < i).
          value = f.dv[sq.a];
          break;
        case NormKind::kAnd:
          value = dom.And(vv[sq.a], vv[sq.b]);
          break;
        case NormKind::kOr:
          value = dom.Or(vv[sq.a], vv[sq.b]);
          break;
        case NormKind::kNot:
          value = dom.Not(vv[sq.a]);
          break;
        default:
          value = dom.False();
          break;
      }
      vv[i] = value;
      f.dv[i] = dom.Or(value, f.dv[i]);  // line 17
    }
    if (counters != nullptr) {
      counters->ops += n;
      counters->elements += 1;
    }
    node_hook(node, vv);

    // Phase 3: fold this node's (V, DV) into the parent (or finish).
    if (depth == 1) {
      result.v = vv;
      result.cv = f.cv;
      result.dv = f.dv;
      --depth;
    } else {
      Frame& parent = stack[depth - 2];
      for (size_t i = 0; i < n; ++i) {
        if constexpr (Domain::kBatchFold) {
          accumulate(parent.cv, parent.cv_ops, i, vv[i]);
          accumulate(parent.dv, parent.dv_ops, i, f.dv[i]);
        } else {
          parent.cv[i] = dom.Or(parent.cv[i], vv[i]);
          parent.dv[i] = dom.Or(parent.dv[i], f.dv[i]);
        }
      }
      --depth;
    }
  }
  return result;
}

/// BottomUpEvalHooked without the per-node observer.
template <typename Domain, typename VirtualFn>
EvalVectors<Domain> BottomUpEval(Domain dom, const NormQuery& q,
                                 const xml::Node& root,
                                 VirtualFn&& resolve_virtual,
                                 EvalCounters* counters = nullptr) {
  return BottomUpEvalHooked(
      dom, q, root, std::forward<VirtualFn>(resolve_virtual),
      [](const xml::Node&, const std::vector<typename Domain::Value>&) {},
      counters);
}

/// Centralized evaluation of a query over an *unfragmented* tree —
/// the NaiveCentralized kernel and the correctness baseline.
/// Fails with FailedPrecondition if the tree contains virtual nodes.
Result<bool> EvalBoolean(const xml::Node& root, const NormQuery& q,
                         EvalCounters* counters = nullptr);

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_EVAL_H_
