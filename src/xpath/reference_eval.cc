#include "xpath/reference_eval.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace parbox::xpath {

namespace {

using NodeSet = std::vector<const xml::Node*>;

void Dedup(NodeSet* nodes) {
  std::unordered_set<const xml::Node*> seen;
  NodeSet out;
  for (const xml::Node* n : *nodes) {
    if (seen.insert(n).second) out.push_back(n);
  }
  *nodes = std::move(out);
}

/// Element descendants of `v`, including `v` itself, document order.
void DescendantsOrSelf(const xml::Node& v, NodeSet* out) {
  std::vector<const xml::Node*> stack{&v};
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    if (!n->is_element()) continue;
    out->push_back(n);
    for (const xml::Node* c = n->last_child; c != nullptr;
         c = c->prev_sibling) {
      stack.push_back(c);
    }
  }
}

NodeSet EvalPath(const PathExpr& p, const xml::Node& v);

bool EvalQual(const QualExpr& q, const xml::Node& v) {
  switch (q.kind) {
    case QualKind::kPath:
      return !EvalPath(*q.path, v).empty();
    case QualKind::kTextEquals: {
      for (const xml::Node* u : EvalPath(*q.path, v)) {
        if (xml::DirectTextEquals(*u, q.str)) return true;
      }
      return false;
    }
    case QualKind::kLabelEquals:
      return v.label() == q.str;
    case QualKind::kNot:
      return !EvalQual(*q.a, v);
    case QualKind::kAnd:
      return EvalQual(*q.a, v) && EvalQual(*q.b, v);
    case QualKind::kOr:
      return EvalQual(*q.a, v) || EvalQual(*q.b, v);
  }
  return false;
}

NodeSet EvalPath(const PathExpr& p, const xml::Node& v) {
  NodeSet out;
  switch (p.kind) {
    case PathKind::kSelf:
      out.push_back(&v);
      break;
    case PathKind::kLabel:
      for (const xml::Node* c = v.first_child; c != nullptr;
           c = c->next_sibling) {
        if (c->is_element() && c->label() == p.label) out.push_back(c);
      }
      break;
    case PathKind::kWildcard:
      for (const xml::Node* c = v.first_child; c != nullptr;
           c = c->next_sibling) {
        if (c->is_element()) out.push_back(c);
      }
      break;
    case PathKind::kChildSeq:
      for (const xml::Node* u : EvalPath(*p.left, v)) {
        NodeSet rest = EvalPath(*p.right, *u);
        out.insert(out.end(), rest.begin(), rest.end());
      }
      break;
    case PathKind::kDescSeq:
      for (const xml::Node* u : EvalPath(*p.left, v)) {
        NodeSet mid;
        DescendantsOrSelf(*u, &mid);
        for (const xml::Node* w : mid) {
          NodeSet rest = EvalPath(*p.right, *w);
          out.insert(out.end(), rest.begin(), rest.end());
        }
      }
      break;
    case PathKind::kQualified:
      for (const xml::Node* u : EvalPath(*p.left, v)) {
        if (EvalQual(*p.qual, *u)) out.push_back(u);
      }
      break;
  }
  Dedup(&out);
  return out;
}

}  // namespace

bool ReferenceEval(const QualExpr& q, const xml::Node& v) {
  assert(!v.is_virtual());
  return EvalQual(q, v);
}

std::vector<const xml::Node*> ReferencePathEval(const PathExpr& p,
                                                const xml::Node& v) {
  return EvalPath(p, v);
}

}  // namespace parbox::xpath
