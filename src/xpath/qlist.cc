#include "xpath/qlist.h"

#include <cassert>

namespace parbox::xpath {

const char* NormKindName(NormKind kind) {
  switch (kind) {
    case NormKind::kEps: return "eps";
    case NormKind::kMark: return "mark";
    case NormKind::kLabelIs: return "label";
    case NormKind::kTextIs: return "text";
    case NormKind::kChild: return "child";
    case NormKind::kSeq: return "seq";
    case NormKind::kDesc: return "desc";
    case NormKind::kAnd: return "and";
    case NormKind::kOr: return "or";
    case NormKind::kNot: return "not";
  }
  return "?";
}

SubQueryId NormQuery::Intern(NormKind kind, SubQueryId a, SubQueryId b,
                             std::string str) {
  // Key: kind byte + children + payload. Children ids are unambiguous
  // fixed-width prefixes, so no separator collisions are possible.
  std::string key;
  key.push_back(static_cast<char>(kind));
  key.append(reinterpret_cast<const char*>(&a), sizeof(a));
  key.append(reinterpret_cast<const char*>(&b), sizeof(b));
  key += str;
  auto it = intern_.find(key);
  if (it != intern_.end()) return it->second;
  SubQueryId id = static_cast<SubQueryId>(nodes_.size());
  nodes_.push_back({kind, a, b, std::move(str)});
  intern_.emplace(std::move(key), id);
  return id;
}

SubQueryId NormQuery::Eps() {
  return Intern(NormKind::kEps, -1, -1, "");
}
SubQueryId NormQuery::Mark() {
  return Intern(NormKind::kMark, -1, -1, "");
}
SubQueryId NormQuery::LabelIs(std::string label) {
  return Intern(NormKind::kLabelIs, -1, -1, std::move(label));
}
SubQueryId NormQuery::TextIs(std::string value) {
  return Intern(NormKind::kTextIs, -1, -1, std::move(value));
}
SubQueryId NormQuery::Child(SubQueryId a) {
  assert(a >= 0 && static_cast<size_t>(a) < nodes_.size());
  return Intern(NormKind::kChild, a, -1, "");
}
SubQueryId NormQuery::Seq(SubQueryId a, SubQueryId b) {
  assert(a >= 0 && b >= 0);
  // ǫ[a]/ǫ == ǫ[a].
  if (nodes_[b].kind == NormKind::kEps) return a;
  if (nodes_[a].kind == NormKind::kEps) return b;
  // ǫ[a]/ǫ[b']/rest == ǫ[a ∧ b']/rest  (the paper's last normalize rule).
  if (nodes_[b].kind == NormKind::kSeq) {
    SubQueryId merged = And(a, nodes_[b].a);
    return Seq(merged, nodes_[b].b);
  }
  return Intern(NormKind::kSeq, a, b, "");
}
SubQueryId NormQuery::Desc(SubQueryId a) {
  assert(a >= 0);
  return Intern(NormKind::kDesc, a, -1, "");
}
SubQueryId NormQuery::And(SubQueryId a, SubQueryId b) {
  assert(a >= 0 && b >= 0);
  return Intern(NormKind::kAnd, a, b, "");
}
SubQueryId NormQuery::Or(SubQueryId a, SubQueryId b) {
  assert(a >= 0 && b >= 0);
  return Intern(NormKind::kOr, a, b, "");
}
SubQueryId NormQuery::Not(SubQueryId a) {
  assert(a >= 0);
  return Intern(NormKind::kNot, a, -1, "");
}

bool NormQuery::IsWellFormed() const {
  if (root_ < 0 || static_cast<size_t>(root_) >= nodes_.size()) return false;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const SubQuery& n = nodes_[i];
    auto check_child = [&](SubQueryId c) {
      return c >= 0 && static_cast<size_t>(c) < i;
    };
    switch (n.kind) {
      case NormKind::kEps:
      case NormKind::kMark:
      case NormKind::kLabelIs:
      case NormKind::kTextIs:
        if (n.a != -1 || n.b != -1) return false;
        break;
      case NormKind::kChild:
      case NormKind::kDesc:
      case NormKind::kNot:
        if (!check_child(n.a) || n.b != -1) return false;
        break;
      case NormKind::kSeq:
      case NormKind::kAnd:
      case NormKind::kOr:
        if (!check_child(n.a) || !check_child(n.b)) return false;
        break;
    }
  }
  return true;
}

std::string NormQuery::SubQueryToString(SubQueryId id) const {
  const SubQuery& n = nodes_[id];
  auto q = [](SubQueryId c) { return "q" + std::to_string(c); };
  switch (n.kind) {
    case NormKind::kEps: return "eps";
    case NormKind::kMark: return "mark";
    case NormKind::kLabelIs: return "label() = " + n.str;
    case NormKind::kTextIs: return "text() = \"" + n.str + "\"";
    case NormKind::kChild: return "*/" + q(n.a);
    case NormKind::kSeq: return "eps[" + q(n.a) + "]/" + q(n.b);
    case NormKind::kDesc: return "//" + q(n.a);
    case NormKind::kAnd: return q(n.a) + " & " + q(n.b);
    case NormKind::kOr: return q(n.a) + " | " + q(n.b);
    case NormKind::kNot: return "!" + q(n.a);
  }
  return "?";
}

std::string NormQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += "q" + std::to_string(i) + " = " +
           SubQueryToString(static_cast<SubQueryId>(i));
    if (static_cast<SubQueryId>(i) == root_) out += "   <- answer";
    out += "\n";
  }
  return out;
}

uint64_t NormQuery::SerializedSizeBytes() const {
  // Compact encoding: per node one kind byte, varint-ish children
  // (estimate 2 bytes each present child), payload length + bytes.
  uint64_t total = 4;  // root id
  for (const SubQuery& n : nodes_) {
    total += 1;
    if (n.a >= 0) total += 2;
    if (n.b >= 0) total += 2;
    if (!n.str.empty()) total += 1 + n.str.size();
  }
  return total;
}

}  // namespace parbox::xpath
