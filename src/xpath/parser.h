// Recursive-descent parser for the XBL concrete syntax.
//
//   ParseQuery("[//stock[code = \"goog\" and not(sell = \"376\")]]")
//
// `and`, `or`, `not` are reserved words and cannot be used as element
// labels in queries. Precedence: `or` < `and` < `not`/`!`; parentheses
// group. The outer [ ... ] is optional.

#ifndef PARBOX_XPATH_PARSER_H_
#define PARBOX_XPATH_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace parbox::xpath {

/// Parse a whole XBL query.
Result<std::unique_ptr<QualExpr>> ParseQuery(std::string_view input);

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_PARSER_H_
