// Canonical serialization and fingerprinting of normalized queries.
//
// Two surface queries that normalize to the same β-normal form produce
// byte-identical QLists (construction is hash-consed and deterministic,
// see qlist.h), so a digest of the canonical QList encoding identifies
// a query up to normal-form equality — the key a result cache wants.
// The fingerprint is canonical for the *normal form*, not for Boolean
// equivalence: `[a and b]` and `[b and a]` normalize differently and
// fingerprint differently.
//
// The digest is a 128-bit FNV-1a variant — not cryptographic, but wide
// enough that collisions across any realistic workload are negligible.

#ifndef PARBOX_XPATH_FINGERPRINT_H_
#define PARBOX_XPATH_FINGERPRINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "xpath/qlist.h"

namespace parbox::xpath {

/// 64-bit FNV-1a — the digest primitive behind query fingerprints and
/// the service cache's triplet signatures.
inline constexpr uint64_t kFnv1a64Basis = 0xcbf29ce484222325ULL;
uint64_t Fnv1a64(std::string_view bytes, uint64_t basis = kFnv1a64Basis);

/// A 128-bit query digest. Value-comparable and hashable.
struct QueryFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const QueryFingerprint& a,
                         const QueryFingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const QueryFingerprint& a,
                         const QueryFingerprint& b) {
    return !(a == b);
  }

  /// 32 hex digits, hi then lo.
  std::string ToString() const;
};

/// Hasher for unordered containers keyed by fingerprint.
struct QueryFingerprintHash {
  size_t operator()(const QueryFingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// The canonical byte encoding of a query: per QList entry its kind,
/// child ids and payload, then the root id. Deterministic; equal
/// normal forms yield equal bytes.
std::string CanonicalQueryBytes(const NormQuery& q);

/// Digest of CanonicalQueryBytes(q).
QueryFingerprint FingerprintQuery(const NormQuery& q);

// ---- QList-prefix digests (cache subsumption) ----
//
// A query A is *subsumed* by a cached query B when A's QList is an
// entry-wise prefix of B's: the kernel evaluates entry i from entries
// < i and node content only, so B's retained equation system truncated
// to |A| entries IS A's system, and A can be answered by re-solving it
// at A.root() — no site visit. These digests key that lookup: a cached
// entry indexes the digest of each of its QList prefixes; a submitted
// query probes with the digest of its full entry list. Unlike
// FingerprintQuery the encoding excludes the root id (any root within
// the prefix is solvable) and folds in the length (so a prefix digest
// never collides with a longer one by construction).

/// Digest of the first `len` QList entries of `q` (1 ≤ len ≤ q.size()).
QueryFingerprint PrefixDigest(const NormQuery& q, size_t len);

/// Digests of every prefix of `q`: result[i] == PrefixDigest(q, i+1).
/// Computed in one rolling pass (O(bytes), not O(n·bytes)).
std::vector<QueryFingerprint> AllPrefixDigests(const NormQuery& q);

/// True iff a.size() ≤ b.size() and the first a.size() entries compare
/// equal — the exact (collision-free) subsumption check behind the
/// digest probe.
bool IsQListPrefix(const NormQuery& a, const NormQuery& b);

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_FINGERPRINT_H_
