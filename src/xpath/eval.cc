#include "xpath/eval.h"

namespace parbox::xpath {

Result<bool> EvalBoolean(const xml::Node& root, const NormQuery& q,
                         EvalCounters* counters) {
  if (!root.is_element()) {
    return Status::InvalidArgument("evaluation root must be an element");
  }
  if (!q.IsWellFormed()) {
    return Status::InvalidArgument("query QList is not well-formed");
  }
  bool saw_virtual = false;
  BoolDomain dom;
  EvalVectors<BoolDomain> vectors = BottomUpEval(
      dom, q, root,
      [&](const xml::Node&, std::vector<bool>* v, std::vector<bool>* dv) {
        saw_virtual = true;
        v->assign(q.size(), false);
        dv->assign(q.size(), false);
      },
      counters);
  if (saw_virtual) {
    return Status::FailedPrecondition(
        "centralized evaluation over a tree with virtual nodes");
  }
  return static_cast<bool>(vectors.v[q.root()]);
}

}  // namespace parbox::xpath
