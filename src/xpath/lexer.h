// Tokenizer for the XBL concrete syntax.

#ifndef PARBOX_XPATH_LEXER_H_
#define PARBOX_XPATH_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace parbox::xpath {

enum class TokenKind : uint8_t {
  kLBracket,   // [
  kRBracket,   // ]
  kLParen,     // (
  kRParen,     // )
  kSlash,      // /
  kDoubleSlash,// //
  kStar,       // *
  kDot,        // .
  kEquals,     // =
  kBang,       // !
  kName,       // element label or keyword (and/or/not)
  kString,     // "..." or '...'
  kTextFn,     // text()
  kLabelFn,    // label()
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // name or unquoted string payload
  size_t offset;     // byte offset in the input, for error messages
};

/// Tokenize the whole input. Fails on unterminated strings or unknown
/// characters (message includes the byte offset).
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_LEXER_H_
