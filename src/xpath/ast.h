// Surface syntax tree for the Boolean XPath fragment XBL (Sec. 2.2):
//
//   q := p | p/text() = "str" | label() = A | not(q) | q and q | q or q
//   p := .  | A | * | p//p | p/p | p[q]
//
// The concrete grammar accepted by the parser additionally allows the
// common shorthand `p = "str"` for `p/text() = "str"` (used by the
// paper itself, e.g. [/portofolio/broker/name = "Merill Lynch"]), an
// optional surrounding [ ... ], a leading `/` or `//`, and `!q`.
//
// Surface trees are an exchange format: evaluation always goes through
// the normalized form (normalize.h). A separate naive reference
// evaluator (reference_eval.h) interprets surface trees directly and
// serves as the correctness oracle in property tests.

#ifndef PARBOX_XPATH_AST_H_
#define PARBOX_XPATH_AST_H_

#include <memory>
#include <string>

namespace parbox::xpath {

struct QualExpr;

enum class PathKind : uint8_t {
  kSelf,       ///< ǫ
  kLabel,      ///< A          (child step by label)
  kWildcard,   ///< *          (any element child)
  kChildSeq,   ///< p1 / p2
  kDescSeq,    ///< p1 // p2   (descendant-or-self between them)
  kQualified,  ///< p [ q ]
};

/// A path expression node.
struct PathExpr {
  PathKind kind;
  std::string label;              // kLabel
  std::unique_ptr<PathExpr> left;   // kChildSeq/kDescSeq/kQualified
  std::unique_ptr<PathExpr> right;  // kChildSeq/kDescSeq
  std::unique_ptr<QualExpr> qual;   // kQualified

  static std::unique_ptr<PathExpr> Self();
  static std::unique_ptr<PathExpr> Label(std::string label);
  static std::unique_ptr<PathExpr> Wildcard();
  static std::unique_ptr<PathExpr> Child(std::unique_ptr<PathExpr> l,
                                         std::unique_ptr<PathExpr> r);
  static std::unique_ptr<PathExpr> Desc(std::unique_ptr<PathExpr> l,
                                        std::unique_ptr<PathExpr> r);
  static std::unique_ptr<PathExpr> Qualified(std::unique_ptr<PathExpr> p,
                                             std::unique_ptr<QualExpr> q);

  std::unique_ptr<PathExpr> Clone() const;
};

enum class QualKind : uint8_t {
  kPath,        ///< p          (some node reachable via p)
  kTextEquals,  ///< p/text() = "str"
  kLabelEquals, ///< label() = A
  kNot,
  kAnd,
  kOr,
};

/// A Boolean qualifier node; a whole XBL query is a QualExpr.
struct QualExpr {
  QualKind kind;
  std::unique_ptr<PathExpr> path;  // kPath/kTextEquals
  std::string str;                 // kTextEquals value / kLabelEquals label
  std::unique_ptr<QualExpr> a;     // kNot/kAnd/kOr
  std::unique_ptr<QualExpr> b;     // kAnd/kOr

  static std::unique_ptr<QualExpr> Path(std::unique_ptr<PathExpr> p);
  static std::unique_ptr<QualExpr> TextEquals(std::unique_ptr<PathExpr> p,
                                              std::string value);
  static std::unique_ptr<QualExpr> LabelEquals(std::string label);
  static std::unique_ptr<QualExpr> Not(std::unique_ptr<QualExpr> q);
  static std::unique_ptr<QualExpr> And(std::unique_ptr<QualExpr> a,
                                       std::unique_ptr<QualExpr> b);
  static std::unique_ptr<QualExpr> Or(std::unique_ptr<QualExpr> a,
                                      std::unique_ptr<QualExpr> b);

  std::unique_ptr<QualExpr> Clone() const;
};

/// Round-trippable rendering in the concrete syntax, e.g.
/// `[//stock[code = "goog" and not(sell = "376")]]`.
std::string ToString(const PathExpr& p);
std::string ToString(const QualExpr& q);

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_AST_H_
