#include "xpath/parser.h"

#include <vector>

#include "xpath/lexer.h"

namespace parbox::xpath {

namespace {

using QualPtr = std::unique_ptr<QualExpr>;
using PathPtr = std::unique_ptr<PathExpr>;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QualPtr> Parse() {
    bool bracketed = Accept(TokenKind::kLBracket);
    PARBOX_ASSIGN_OR_RETURN(QualPtr q, ParseOr());
    if (bracketed && !Accept(TokenKind::kRBracket)) {
      return Fail("expected closing ']'");
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Fail("trailing tokens after query");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }
  bool AcceptKeyword(std::string_view kw) {
    if (Peek().kind != TokenKind::kName || Peek().text != kw) return false;
    ++pos_;
    return true;
  }
  Status Fail(const std::string& what) const {
    return Status::ParseError(what + " at offset " +
                              std::to_string(Peek().offset));
  }

  Result<QualPtr> ParseOr() {
    PARBOX_ASSIGN_OR_RETURN(QualPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      PARBOX_ASSIGN_OR_RETURN(QualPtr right, ParseAnd());
      left = QualExpr::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<QualPtr> ParseAnd() {
    PARBOX_ASSIGN_OR_RETURN(QualPtr left, ParseUnary());
    while (AcceptKeyword("and")) {
      PARBOX_ASSIGN_OR_RETURN(QualPtr right, ParseUnary());
      left = QualExpr::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<QualPtr> ParseUnary() {
    if (Accept(TokenKind::kBang)) {
      PARBOX_ASSIGN_OR_RETURN(QualPtr inner, ParseUnary());
      return QualExpr::Not(std::move(inner));
    }
    if (Peek().kind == TokenKind::kName && Peek().text == "not" &&
        Peek(1).kind == TokenKind::kLParen) {
      pos_ += 2;
      PARBOX_ASSIGN_OR_RETURN(QualPtr inner, ParseOr());
      if (!Accept(TokenKind::kRParen)) return Fail("expected ')'");
      return QualExpr::Not(std::move(inner));
    }
    if (Accept(TokenKind::kLParen)) {
      PARBOX_ASSIGN_OR_RETURN(QualPtr inner, ParseOr());
      if (!Accept(TokenKind::kRParen)) return Fail("expected ')'");
      return inner;
    }
    return ParseComparison();
  }

  Result<QualPtr> ParseComparison() {
    if (Accept(TokenKind::kLabelFn)) {
      if (!Accept(TokenKind::kEquals)) {
        return Fail("expected '=' after label()");
      }
      PARBOX_ASSIGN_OR_RETURN(std::string value, ParseValue());
      return QualExpr::LabelEquals(std::move(value));
    }
    // A path, optionally ending in `/text() = v` or `= v`.
    bool text_test = false;
    PARBOX_ASSIGN_OR_RETURN(PathPtr path, ParsePath(&text_test));
    if (text_test || Peek().kind == TokenKind::kEquals) {
      if (!Accept(TokenKind::kEquals)) {
        return Fail("expected '=' after text()");
      }
      PARBOX_ASSIGN_OR_RETURN(std::string value, ParseValue());
      return QualExpr::TextEquals(std::move(path), std::move(value));
    }
    return QualExpr::Path(std::move(path));
  }

  Result<std::string> ParseValue() {
    if (Peek().kind == TokenKind::kString || Peek().kind == TokenKind::kName) {
      std::string v = Peek().text;
      ++pos_;
      return v;
    }
    return Fail("expected a string or name after '='");
  }

  /// `/A/...` evaluated at the tree root means "the root element is
  /// labelled A" (document-node semantics, as in the paper's
  /// [/portofolio/broker/...]). Rewrite the first step: its innermost
  /// base `A` becomes `.[label() = A]`; `*` and `.` become `.`.
  static PathPtr AbsolutizeFirstStep(PathPtr step) {
    PathExpr* base = step.get();
    while (base->kind == PathKind::kQualified) base = base->left.get();
    switch (base->kind) {
      case PathKind::kLabel: {
        auto replacement = PathExpr::Qualified(
            PathExpr::Self(), QualExpr::LabelEquals(base->label));
        *base = std::move(*replacement);
        break;
      }
      case PathKind::kWildcard:
        *base = std::move(*PathExpr::Self());
        break;
      default:
        break;  // '.' stays; composite steps cannot be first
    }
    return step;
  }

  /// Parses a path. Sets *ends_in_text_fn if the path's final step was
  /// `text()` (the caller must then consume `= value`).
  Result<PathPtr> ParsePath(bool* ends_in_text_fn) {
    *ends_in_text_fn = false;
    PathPtr path;
    // Leading separators, with the evaluation root as context node:
    // '//' is `self-or-descendant/...`; '/' addresses the root element
    // itself (see AbsolutizeFirstStep).
    if (Accept(TokenKind::kDoubleSlash)) {
      PARBOX_ASSIGN_OR_RETURN(PathPtr step, ParseStep());
      path = PathExpr::Desc(PathExpr::Self(), std::move(step));
    } else if (Accept(TokenKind::kSlash)) {
      PARBOX_ASSIGN_OR_RETURN(PathPtr step, ParseStep());
      path = AbsolutizeFirstStep(std::move(step));
    } else {
      PARBOX_ASSIGN_OR_RETURN(PathPtr step, ParseStep());
      path = std::move(step);
    }
    for (;;) {
      bool desc;
      if (Accept(TokenKind::kSlash)) {
        desc = false;
      } else if (Accept(TokenKind::kDoubleSlash)) {
        desc = true;
      } else {
        break;
      }
      if (!desc && Accept(TokenKind::kTextFn)) {
        *ends_in_text_fn = true;
        return path;
      }
      PARBOX_ASSIGN_OR_RETURN(PathPtr step, ParseStep());
      path = desc ? PathExpr::Desc(std::move(path), std::move(step))
                  : PathExpr::Child(std::move(path), std::move(step));
    }
    return path;
  }

  /// One step: name | * | . , followed by zero or more [qualifier].
  Result<PathPtr> ParseStep() {
    PathPtr step;
    if (Accept(TokenKind::kStar)) {
      step = PathExpr::Wildcard();
    } else if (Accept(TokenKind::kDot)) {
      step = PathExpr::Self();
    } else if (Peek().kind == TokenKind::kName) {
      const std::string& name = Peek().text;
      if (name == "and" || name == "or" || name == "not") {
        return Fail("'" + name + "' is a reserved word, not a label");
      }
      step = PathExpr::Label(name);
      ++pos_;
    } else {
      return Fail("expected a path step (label, '*' or '.')");
    }
    while (Accept(TokenKind::kLBracket)) {
      PARBOX_ASSIGN_OR_RETURN(QualPtr qual, ParseOr());
      if (!Accept(TokenKind::kRBracket)) return Fail("expected ']'");
      step = PathExpr::Qualified(std::move(step), std::move(qual));
    }
    return step;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QualPtr> ParseQuery(std::string_view input) {
  PARBOX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace parbox::xpath
