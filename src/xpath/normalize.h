// The linear-time normalize(q) function of Sec. 2.2: rewrites a surface
// XBL query into the β-normal form and materializes its QList.
//
// The rewrite rules implemented (verbatim from the paper):
//   normalize(A)            = */ǫ[label() = A]
//   normalize(p1/p2)        = normalize(p1)/normalize(p2)
//   normalize(p1//p2)       = normalize(p1)/ // /normalize(p2)
//   normalize(p[q])         = normalize(p)/ǫ[normalize(q)]
//   normalize(p/text()=s)   = normalize(p)[text() = s]
//   normalize(q1 ∧ q2)      = normalize(q1) ∧ normalize(q2)   (∨, ¬ alike)
//   normalize(ǫ[q1]/.../ǫ[qn]) = ǫ[q1 ∧ ... ∧ qn]
//
// Normalization is continuation-passing: a path is folded from the
// right, each step wrapping the continuation ("the rest of the path
// holds below here") in the matching QList constructor.

#ifndef PARBOX_XPATH_NORMALIZE_H_
#define PARBOX_XPATH_NORMALIZE_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"
#include "xpath/qlist.h"

namespace parbox::xpath {

/// Rewrite a surface query to normal form; O(|q|).
NormQuery Normalize(const QualExpr& query);

/// Parse + normalize in one step.
Result<NormQuery> CompileQuery(std::string_view query_text);

/// A path compiled for *data selection* (Sec. 8 extension): the path's
/// endpoint is a kMark sub-query, so the downward pass of path
/// selection can recognize where matches land. As a Boolean query the
/// result still means "some node is reachable via the path".
struct SelectionQuery {
  NormQuery query;
  SubQueryId mark;
};

/// Normalize a selection path.
SelectionQuery NormalizeSelection(const PathExpr& path);

/// Parse the text as a path (optionally [bracketed]) and normalize it
/// for selection. Fails if the text is a Boolean combination rather
/// than a single path.
Result<SelectionQuery> CompileSelection(std::string_view path_text);

}  // namespace parbox::xpath

#endif  // PARBOX_XPATH_NORMALIZE_H_
