#include "xpath/normalize.h"

#include "xpath/parser.h"

namespace parbox::xpath {

namespace {

SubQueryId NormalizeQual(const QualExpr& q, NormQuery* out);

/// Normalize path `p` given that `rest` must hold at the node the path
/// reaches: returns the sub-query "some node reachable via p from here
/// satisfies rest".
SubQueryId NormalizePath(const PathExpr& p, SubQueryId rest,
                         NormQuery* out) {
  switch (p.kind) {
    case PathKind::kSelf:
      return rest;
    case PathKind::kLabel:
      // A == */ǫ[label()=A]; with a continuation: */ǫ[label()=A]/rest.
      return out->Child(out->Seq(out->LabelIs(p.label), rest));
    case PathKind::kWildcard:
      return out->Child(rest);
    case PathKind::kChildSeq:
      return NormalizePath(*p.left, NormalizePath(*p.right, rest, out), out);
    case PathKind::kDescSeq:
      return NormalizePath(*p.left,
                           out->Desc(NormalizePath(*p.right, rest, out)),
                           out);
    case PathKind::kQualified:
      return NormalizePath(*p.left,
                           out->Seq(NormalizeQual(*p.qual, out), rest), out);
  }
  return -1;  // unreachable
}

SubQueryId NormalizeQual(const QualExpr& q, NormQuery* out) {
  switch (q.kind) {
    case QualKind::kPath:
      return NormalizePath(*q.path, out->Eps(), out);
    case QualKind::kTextEquals:
      // normalize(p/text()=s) = normalize(p)[text()=s].
      return NormalizePath(*q.path, out->TextIs(q.str), out);
    case QualKind::kLabelEquals:
      return out->LabelIs(q.str);
    case QualKind::kNot:
      return out->Not(NormalizeQual(*q.a, out));
    case QualKind::kAnd: {
      SubQueryId a = NormalizeQual(*q.a, out);
      SubQueryId b = NormalizeQual(*q.b, out);
      return out->And(a, b);
    }
    case QualKind::kOr: {
      SubQueryId a = NormalizeQual(*q.a, out);
      SubQueryId b = NormalizeQual(*q.b, out);
      return out->Or(a, b);
    }
  }
  return -1;  // unreachable
}

}  // namespace

NormQuery Normalize(const QualExpr& query) {
  NormQuery out;
  out.SetRoot(NormalizeQual(query, &out));
  return out;
}

Result<NormQuery> CompileQuery(std::string_view query_text) {
  PARBOX_ASSIGN_OR_RETURN(auto ast, ParseQuery(query_text));
  return Normalize(*ast);
}

SelectionQuery NormalizeSelection(const PathExpr& path) {
  SelectionQuery out;
  SubQueryId mark = out.query.Mark();
  out.mark = mark;
  out.query.SetRoot(NormalizePath(path, mark, &out.query));
  return out;
}

Result<SelectionQuery> CompileSelection(std::string_view path_text) {
  PARBOX_ASSIGN_OR_RETURN(auto ast, ParseQuery(path_text));
  if (ast->kind != QualKind::kPath) {
    return Status::InvalidArgument(
        "selection requires a single path, not a Boolean combination");
  }
  return NormalizeSelection(*ast->path);
}

}  // namespace parbox::xpath
