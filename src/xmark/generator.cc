#include "xmark/generator.h"

#include <array>
#include <cassert>

namespace parbox::xmark {

namespace {

constexpr std::array<const char*, 6> kRegions = {
    "africa", "asia", "australia", "europe", "namerica", "samerica"};

constexpr std::array<const char*, 12> kWords = {
    "auction", "vintage",  "rare",    "antique", "bid",     "mint",
    "signed",  "original", "limited", "classic", "premium", "estate"};

/// Tracks the approximate serialized size while building, so sizing a
/// site does not require repeated O(n) serialization passes.
class SiteBuilder {
 public:
  SiteBuilder(xml::Document* doc, Rng* rng) : doc_(doc), rng_(rng) {}

  xml::Node* Element(xml::Node* parent, std::string_view label) {
    xml::Node* n = doc_->NewElement(label);
    if (parent != nullptr) doc_->AppendChild(parent, n);
    bytes_ += 2 * label.size() + 5;  // <label></label>
    ++nodes_;
    return n;
  }

  xml::Node* TextElement(xml::Node* parent, std::string_view label,
                         std::string_view text) {
    xml::Node* n = Element(parent, label);
    doc_->AppendChild(n, doc_->NewText(text));
    bytes_ += text.size();
    ++nodes_;
    return n;
  }

  std::string Sentence(int words) {
    std::string out;
    for (int i = 0; i < words; ++i) {
      if (!out.empty()) out.push_back(' ');
      out += kWords[rng_->Uniform(kWords.size())];
    }
    return out;
  }

  std::string Money() { return "$" + std::to_string(rng_->UniformInt(1, 999)); }

  uint64_t bytes() const { return bytes_; }
  uint64_t nodes() const { return nodes_; }
  Rng* rng() { return rng_; }

 private:
  xml::Document* doc_;
  Rng* rng_;
  uint64_t bytes_ = 0;
  uint64_t nodes_ = 0;  ///< DOM nodes built (elements + text nodes)
};

void AddItem(SiteBuilder* b, xml::Node* region, int id) {
  Rng* rng = b->rng();
  xml::Node* item = b->Element(region, "item");
  b->TextElement(item, "@id", "item" + std::to_string(id));
  b->TextElement(item, "name", b->Sentence(2));
  b->TextElement(item, "location", b->Sentence(1));
  b->TextElement(item, "quantity",
                 std::to_string(rng->UniformInt(1, 9)));
  xml::Node* description = b->Element(item, "description");
  int paragraphs = static_cast<int>(rng->UniformInt(1, 3));
  for (int p = 0; p < paragraphs; ++p) {
    b->TextElement(description, "parlist", b->Sentence(8));
  }
  if (rng->Bernoulli(0.4)) b->TextElement(item, "payment", "Creditcard");
  if (rng->Bernoulli(0.3)) b->TextElement(item, "shipping", b->Sentence(3));
}

void AddPerson(SiteBuilder* b, xml::Node* people, int id) {
  Rng* rng = b->rng();
  xml::Node* person = b->Element(people, "person");
  b->TextElement(person, "@id", "person" + std::to_string(id));
  std::string name = rng->Word(4, 8) + " " + rng->Word(4, 9);
  b->TextElement(person, "name", name);
  b->TextElement(person, "emailaddress",
                 rng->Word(4, 8) + "@" + rng->Word(4, 7) + ".com");
  if (rng->Bernoulli(0.5)) {
    b->TextElement(person, "creditcard",
                   std::to_string(rng->UniformInt(1000, 9999)) + " " +
                       std::to_string(rng->UniformInt(1000, 9999)));
  }
  if (rng->Bernoulli(0.6)) {
    xml::Node* profile = b->Element(person, "profile");
    int interests = static_cast<int>(rng->UniformInt(1, 4));
    for (int i = 0; i < interests; ++i) {
      b->TextElement(profile, "interest", b->Sentence(1));
    }
  }
}

void AddOpenAuction(SiteBuilder* b, xml::Node* auctions, int id,
                    int num_items, int num_people) {
  Rng* rng = b->rng();
  xml::Node* auction = b->Element(auctions, "open_auction");
  b->TextElement(auction, "@id", "open" + std::to_string(id));
  b->TextElement(auction, "initial", b->Money());
  int bidders = static_cast<int>(rng->UniformInt(0, 4));
  for (int i = 0; i < bidders; ++i) {
    xml::Node* bidder = b->Element(auction, "bidder");
    b->TextElement(bidder, "personref",
                   "person" + std::to_string(rng->UniformInt(
                                  0, std::max(0, num_people - 1))));
    b->TextElement(bidder, "increase", b->Money());
  }
  b->TextElement(auction, "current", b->Money());
  b->TextElement(auction, "itemref",
                 "item" + std::to_string(
                              rng->UniformInt(0, std::max(0, num_items - 1))));
}

void AddClosedAuction(SiteBuilder* b, xml::Node* auctions, int id,
                      int num_items, int num_people) {
  Rng* rng = b->rng();
  xml::Node* auction = b->Element(auctions, "closed_auction");
  b->TextElement(auction, "@id", "closed" + std::to_string(id));
  b->TextElement(auction, "price", b->Money());
  b->TextElement(auction, "buyer",
                 "person" + std::to_string(rng->UniformInt(
                                0, std::max(0, num_people - 1))));
  b->TextElement(auction, "itemref",
                 "item" + std::to_string(
                              rng->UniformInt(0, std::max(0, num_items - 1))));
}

}  // namespace

xml::Node* GenerateSite(xml::Document* doc, const SiteOptions& options,
                        Rng* rng) {
  SiteBuilder b(doc, rng);
  xml::Node* site = b.Element(nullptr, "site");
  if (!options.marker.empty()) {
    b.TextElement(site, "marker", options.marker);
  }
  xml::Node* regions = b.Element(site, "regions");
  std::array<xml::Node*, kRegions.size()> region_nodes;
  for (size_t r = 0; r < kRegions.size(); ++r) {
    region_nodes[r] = b.Element(regions, kRegions[r]);
  }
  xml::Node* people = b.Element(site, "people");
  xml::Node* open_auctions = b.Element(site, "open_auctions");
  xml::Node* closed_auctions = b.Element(site, "closed_auctions");
  xml::Node* categories = b.Element(site, "categories");

  // Interleave content in XMark-like proportions until the byte target
  // is met: ~50% items, ~25% people, ~20% auctions, ~5% categories.
  int items = 0, persons = 0, opens = 0, closeds = 0, cats = 0;
  auto below_target = [&] {
    return options.target_nodes > 0 ? b.nodes() < options.target_nodes
                                    : b.bytes() < options.target_bytes;
  };
  while (below_target()) {
    double roll = rng->UniformDouble();
    if (roll < 0.50) {
      AddItem(&b, region_nodes[rng->Uniform(region_nodes.size())], items++);
    } else if (roll < 0.75) {
      AddPerson(&b, people, persons++);
    } else if (roll < 0.87) {
      AddOpenAuction(&b, open_auctions, opens++, std::max(1, items),
                     std::max(1, persons));
    } else if (roll < 0.95) {
      AddClosedAuction(&b, closed_auctions, closeds++, std::max(1, items),
                       std::max(1, persons));
    } else {
      xml::Node* cat = b.Element(categories, "category");
      b.TextElement(cat, "@id", "cat" + std::to_string(cats++));
      b.TextElement(cat, "name", b.Sentence(2));
      b.TextElement(cat, "description", b.Sentence(6));
    }
  }
  return site;
}

xml::Document GenerateStarDocument(int num_sites, uint64_t bytes_per_site,
                                   uint64_t seed) {
  assert(num_sites >= 1);
  xml::Document doc;
  xml::Node* root = doc.NewElement("xmark");
  doc.set_root(root);
  Rng rng(seed);
  for (int i = 0; i < num_sites; ++i) {
    SiteOptions options;
    options.target_bytes = bytes_per_site;
    options.marker = "m" + std::to_string(i);
    Rng site_rng = rng.Fork();
    doc.AppendChild(root, GenerateSite(&doc, options, &site_rng));
  }
  return doc;
}

xml::Document GenerateScaledStarDocument(int num_sites,
                                         uint64_t nodes_per_site,
                                         uint64_t seed) {
  assert(num_sites >= 1);
  xml::Document doc;
  xml::Node* root = doc.NewElement("xmark");
  doc.set_root(root);
  Rng rng(seed);
  for (int i = 0; i < num_sites; ++i) {
    SiteOptions options;
    options.target_nodes = nodes_per_site;
    options.marker = "m" + std::to_string(i);
    Rng site_rng = rng.Fork();
    doc.AppendChild(root, GenerateSite(&doc, options, &site_rng));
  }
  return doc;
}

xml::Document GenerateChainDocument(int depth, uint64_t bytes_per_site,
                                    uint64_t seed) {
  assert(depth >= 1);
  xml::Document doc;
  Rng rng(seed);
  xml::Node* top = nullptr;
  xml::Node* attach = nullptr;  // <history> of the previous version
  for (int i = 0; i < depth; ++i) {
    SiteOptions options;
    options.target_bytes = bytes_per_site;
    options.marker = "v" + std::to_string(i);
    Rng site_rng = rng.Fork();
    xml::Node* site = GenerateSite(&doc, options, &site_rng);
    if (top == nullptr) {
      top = site;
      doc.set_root(top);
    } else {
      doc.AppendChild(attach, site);
    }
    attach = doc.NewElement("history");
    doc.AppendChild(site, attach);
  }
  return doc;
}

xml::Document GenerateTreeDocument(
    const std::vector<std::vector<int>>& children,
    const std::vector<uint64_t>& bytes_per_site, uint64_t seed) {
  assert(!children.empty() && children.size() == bytes_per_site.size());
  xml::Document doc;
  Rng rng(seed);
  std::vector<xml::Node*> sites(children.size(), nullptr);
  // Generate in index order (parents have smaller indices by contract).
  for (size_t i = 0; i < children.size(); ++i) {
    SiteOptions options;
    options.target_bytes = bytes_per_site[i];
    options.marker = "m" + std::to_string(i);
    Rng site_rng = rng.Fork();
    sites[i] = GenerateSite(&doc, options, &site_rng);
  }
  doc.set_root(sites[0]);
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i].empty()) continue;
    xml::Node* history = doc.NewElement("history");
    doc.AppendChild(sites[i], history);
    for (int c : children[i]) {
      assert(c > 0 && static_cast<size_t>(c) < sites.size());
      doc.AppendChild(history, sites[c]);
    }
  }
  return doc;
}

xml::Document GenerateRandomSmallDocument(int max_elements, Rng* rng) {
  assert(max_elements >= 1);
  xml::Document doc;
  constexpr std::array<const char*, 5> kLabels = {"a", "b", "c", "d", "e"};
  xml::Node* root = doc.NewElement(kLabels[rng->Uniform(kLabels.size())]);
  doc.set_root(root);
  std::vector<xml::Node*> pool{root};
  int elements = 1;
  while (elements < max_elements) {
    xml::Node* parent = pool[rng->Uniform(pool.size())];
    if (rng->Bernoulli(0.25)) {
      // Avoid adjacent text siblings: serialization would coalesce
      // them, breaking write/parse round-trip properties.
      if (parent->last_child == nullptr || !parent->last_child->is_text()) {
        doc.AppendChild(parent,
                        doc.NewText("t" + std::to_string(rng->Uniform(5))));
      }
    } else {
      xml::Node* child =
          doc.NewElement(kLabels[rng->Uniform(kLabels.size())]);
      doc.AppendChild(parent, child);
      pool.push_back(child);
      ++elements;
    }
  }
  return doc;
}

}  // namespace parbox::xmark
