// The paper's running example: the stock-portfolio tree of Fig. 1(b)
// and its fragmentation into F0..F3 (Fig. 2). Used by examples and by
// the tests that replay Examples 2.1-3.3 verbatim.

#ifndef PARBOX_XMARK_PORTFOLIO_H_
#define PARBOX_XMARK_PORTFOLIO_H_

#include "common/status.h"
#include "fragment/fragment.h"
#include "xml/dom.h"

namespace parbox::xmark {

/// The unfragmented portfolio tree of Fig. 1(b): a <portofolio> (sic,
/// as in the paper) with brokers Merill Lynch and Bache trading GOOG,
/// YHOO, AAPL and IBM across NASDAQ and NYSE.
xml::Document BuildPortfolioDocument();

/// The fragmentation of Fig. 2: F0 holds the root and Bache's NYSE
/// data; F1 is Merill Lynch's subtree; F2 is the NASDAQ market inside
/// F1; F3 is the NASDAQ market reached through Bache. Fragment ids are
/// exactly 0..3.
Result<frag::FragmentSet> BuildPortfolioFragments();

/// Queries from the paper's narrative.
inline constexpr const char* kGoogSellQuery =
    "[//stock[code = \"GOOG\" and sell = \"376\"]]";  // Sec. 1
inline constexpr const char* kYhooQuery =
    "[//stock[code/text() = \"YHOO\"]]";  // Example 2.1
inline constexpr const char* kMerillQuery =
    "[/portofolio/broker/name = \"Merill Lynch\"]";  // Sec. 4 (lazy)

}  // namespace parbox::xmark

#endif  // PARBOX_XMARK_PORTFOLIO_H_
