#include "xmark/portfolio.h"

namespace parbox::xmark {

namespace {

xml::Node* AddTextChild(xml::Document* doc, xml::Node* parent,
                        std::string_view label, std::string_view text) {
  xml::Node* n = doc->NewElement(label);
  doc->AppendChild(n, doc->NewText(text));
  doc->AppendChild(parent, n);
  return n;
}

xml::Node* AddStock(xml::Document* doc, xml::Node* market,
                    std::string_view code, std::string_view buy,
                    std::string_view sell) {
  xml::Node* stock = doc->NewElement("stock");
  doc->AppendChild(market, stock);
  AddTextChild(doc, stock, "code", code);
  AddTextChild(doc, stock, "buy", buy);
  AddTextChild(doc, stock, "sell", sell);
  return stock;
}

}  // namespace

xml::Document BuildPortfolioDocument() {
  xml::Document doc;
  xml::Node* portofolio = doc.NewElement("portofolio");
  doc.set_root(portofolio);

  // Broker Merill Lynch: NASDAQ market with GOOG and YHOO.
  xml::Node* merill = doc.NewElement("broker");
  doc.AppendChild(portofolio, merill);
  AddTextChild(&doc, merill, "name", "Merill Lynch");
  xml::Node* ml_nasdaq = doc.NewElement("market");
  doc.AppendChild(merill, ml_nasdaq);
  AddTextChild(&doc, ml_nasdaq, "name", "NASDAQ");
  AddStock(&doc, ml_nasdaq, "GOOG", "374", "373");
  AddStock(&doc, ml_nasdaq, "YHOO", "33", "35");

  // Broker Bache: NYSE (IBM) and NASDAQ (AAPL, GOOG).
  xml::Node* bache = doc.NewElement("broker");
  doc.AppendChild(portofolio, bache);
  AddTextChild(&doc, bache, "name", "Bache");
  xml::Node* nyse = doc.NewElement("market");
  doc.AppendChild(bache, nyse);
  AddTextChild(&doc, nyse, "name", "NYSE");
  AddStock(&doc, nyse, "IBM", "80", "78");
  xml::Node* bache_nasdaq = doc.NewElement("market");
  doc.AppendChild(bache, bache_nasdaq);
  AddTextChild(&doc, bache_nasdaq, "name", "NASDAQ");
  AddStock(&doc, bache_nasdaq, "AAPL", "71", "65");
  AddStock(&doc, bache_nasdaq, "GOOG", "370", "372");

  return doc;
}

Result<frag::FragmentSet> BuildPortfolioFragments() {
  PARBOX_ASSIGN_OR_RETURN(
      frag::FragmentSet set,
      frag::FragmentSet::FromDocument(BuildPortfolioDocument()));

  // F1: Merill Lynch's whole broker subtree (first broker).
  xml::Node* root = set.fragment(0).root;
  xml::Node* merill = root->first_child;  // first <broker>
  PARBOX_ASSIGN_OR_RETURN(frag::FragmentId f1, set.Split(0, merill));
  if (f1 != 1) return Status::Internal("unexpected fragment numbering");

  // F2: the NASDAQ market inside F1.
  xml::Node* ml_market = xml::FindFirstElement(set.fragment(1).root, "market");
  PARBOX_ASSIGN_OR_RETURN(frag::FragmentId f2, set.Split(1, ml_market));
  if (f2 != 2) return Status::Internal("unexpected fragment numbering");

  // F3: Bache's NASDAQ market (the second market under the second
  // broker in F0).
  xml::Node* bache = nullptr;
  for (xml::Node* c = set.fragment(0).root->first_child; c != nullptr;
       c = c->next_sibling) {
    if (c->is_element() && c->label() == "broker") bache = c;
  }
  xml::Node* bache_nasdaq = nullptr;
  for (xml::Node* c = bache->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_element() && c->label() == "market") bache_nasdaq = c;
  }
  // The *last* market under Bache is the NASDAQ one.
  PARBOX_ASSIGN_OR_RETURN(frag::FragmentId f3, set.Split(0, bache_nasdaq));
  if (f3 != 3) return Status::Internal("unexpected fragment numbering");

  PARBOX_RETURN_IF_ERROR(set.Validate());
  return set;
}

}  // namespace parbox::xmark
