#include "xmark/queries.h"

#include <array>

#include "xpath/normalize.h"

namespace parbox::xmark {

namespace {

/// Labels for descendant chains, ordered so short chains follow real
/// paths in the generated documents (//regions/africa/item exists).
std::string ChainLabel(size_t i) {
  constexpr std::array<const char*, 12> kChain = {
      "regions",  "africa",   "item",    "description",
      "parlist",  "name",     "quantity", "location",
      "payment",  "shipping", "profile", "interest"};
  if (i < kChain.size()) return kChain[i];
  return "label" + std::to_string(i);
}

/// "//l1/l2/.../lk" with `qualified` appending `[. = "vintage"]`.
std::string ChainQueryText(int k, bool qualified) {
  std::string text = "[";
  for (int i = 0; i < k; ++i) {
    text += i == 0 ? "//" : "/";
    text += ChainLabel(static_cast<size_t>(i));
  }
  if (qualified) text += "[. = \"vintage\"]";
  text += "]";
  return text;
}

}  // namespace

Result<xpath::NormQuery> MakeQueryOfQListSize(int target) {
  if (target < 2) {
    return Status::InvalidArgument("QList size must be at least 2");
  }
  // Descendant chains of k label steps normalize to 3k+1 QList
  // entries; a trailing `[. = "v"]` qualifier makes that 3k+3, and a
  // not(...) wrapper adds one more — together covering every residue
  // mod 3 for targets >= 4 (2 and 3 are special-cased).
  std::string text;
  if (target == 2) {
    text = "[not(label() = nosuchlabel)]";
  } else if (target == 3) {
    text = "[label() = " + ChainLabel(0) + " and label() = " + ChainLabel(1) +
           "]";
  } else if (target % 3 == 1) {
    text = ChainQueryText((target - 1) / 3, false);
  } else if (target % 3 == 0) {
    text = ChainQueryText((target - 3) / 3, true);
  } else {
    std::string inner = ChainQueryText((target - 2) / 3, false);
    text = "[not(" + inner.substr(1, inner.size() - 2) + ")]";
  }
  PARBOX_ASSIGN_OR_RETURN(xpath::NormQuery q, xpath::CompileQuery(text));
  if (q.size() != static_cast<size_t>(target)) {
    return Status::Internal("query construction produced |QList| = " +
                            std::to_string(q.size()) + ", wanted " +
                            std::to_string(target) + " for " + text);
  }
  return q;
}

std::string MarkerQueryText(const std::string& text) {
  return "[//marker/text() = \"" + text + "\"]";
}

Result<xpath::NormQuery> MakeMarkerQuery(const std::string& text) {
  return xpath::CompileQuery(MarkerQueryText(text));
}

std::string FamilyQueryText(int chain_steps, int variant) {
  std::string chain = ChainQueryText(chain_steps, false);
  if (variant < 0) return chain;
  // Conjoin inside the brackets: "[//a/b and label() = kwV]".
  chain.pop_back();
  return chain + " and label() = kw" + std::to_string(variant) + "]";
}

Result<xpath::NormQuery> MakeFamilyQuery(int chain_steps, int variant) {
  if (chain_steps < 1) {
    return Status::InvalidArgument("family chain needs at least one step");
  }
  return xpath::CompileQuery(FamilyQueryText(chain_steps, variant));
}

}  // namespace parbox::xmark
