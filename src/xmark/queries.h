// Query workloads for the experiments.
//
// Experiments 1 and 3 sweep the query size |QList(q)| over {2, 8, 15,
// 23}; Experiment 2 needs queries satisfied at exactly one fragment of
// a chain (via the generator's <marker> texts). These helpers build
// those queries over the XMark-like vocabulary and guarantee the
// advertised |QList| size by construction (verified in tests).

#ifndef PARBOX_XMARK_QUERIES_H_
#define PARBOX_XMARK_QUERIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/qlist.h"

namespace parbox::xmark {

/// A query over XMark labels whose normalized QList has exactly
/// `target` entries. Supported targets: every integer >= 2.
Result<xpath::NormQuery> MakeQueryOfQListSize(int target);

/// The sizes the paper sweeps.
inline constexpr int kPaperQuerySizes[] = {2, 8, 15, 23};

/// "[//marker/text() = \"<text>\"]" — satisfied exactly where the
/// generator planted the marker.
Result<xpath::NormQuery> MakeMarkerQuery(const std::string& text);
/// The same as surface text (for display).
std::string MarkerQueryText(const std::string& text);

}  // namespace parbox::xmark

#endif  // PARBOX_XMARK_QUERIES_H_
