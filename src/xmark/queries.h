// Query workloads for the experiments.
//
// Experiments 1 and 3 sweep the query size |QList(q)| over {2, 8, 15,
// 23}; Experiment 2 needs queries satisfied at exactly one fragment of
// a chain (via the generator's <marker> texts). These helpers build
// those queries over the XMark-like vocabulary and guarantee the
// advertised |QList| size by construction (verified in tests).

#ifndef PARBOX_XMARK_QUERIES_H_
#define PARBOX_XMARK_QUERIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/qlist.h"

namespace parbox::xmark {

/// A query over XMark labels whose normalized QList has exactly
/// `target` entries. Supported targets: every integer >= 2.
Result<xpath::NormQuery> MakeQueryOfQListSize(int target);

/// The sizes the paper sweeps.
inline constexpr int kPaperQuerySizes[] = {2, 8, 15, 23};

/// "[//marker/text() = \"<text>\"]" — satisfied exactly where the
/// generator planted the marker.
Result<xpath::NormQuery> MakeMarkerQuery(const std::string& text);
/// The same as surface text (for display).
std::string MarkerQueryText(const std::string& text);

/// A member of a query *family*: a shared descendant chain of
/// `chain_steps` labels, optionally narrowed by a variant-specific
/// qualifier. `variant < 0` is the unqualified base
/// "[//l1/.../lk]"; `variant >= 0` is
/// "[//l1/.../lk and label() = kw<variant>]".
///
/// Normalization builds the conjunction's left operand first, so the
/// base query's FULL QList is entry-for-entry the first |base| entries
/// of every variant's QList — family members are maximally fusable
/// (shared-prefix lanes) and the base is subsumption-answerable from
/// any cached variant. Variant labels are outside the generator
/// vocabulary, so each variant's answer is deterministically that of
/// the base chain AND a label that never matches.
Result<xpath::NormQuery> MakeFamilyQuery(int chain_steps, int variant);
/// The same as surface text (for display / workload specs).
std::string FamilyQueryText(int chain_steps, int variant);

}  // namespace parbox::xmark

#endif  // PARBOX_XMARK_QUERIES_H_
