// A deterministic XMark-like document generator.
//
// The paper's experiments generate "multiple XMark sites" and assign
// (fragments of) them to machines. Offline we cannot run the original
// xmlgen, so this module synthesizes auction-site documents with the
// same ingredients — regions/items, people, open and closed auctions,
// categories, free-text descriptions — sized to a byte target and
// fully reproducible from a seed (see DESIGN.md, substitutions).
//
// Every generated site carries a <marker>TEXT</marker> child so the
// chain/star experiments (Figs. 9-11) can craft queries satisfied at
// exactly one fragment.

#ifndef PARBOX_XMARK_GENERATOR_H_
#define PARBOX_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "xml/dom.h"

namespace parbox::xmark {

struct SiteOptions {
  /// Approximate serialized size of one site subtree.
  uint64_t target_bytes = 1 << 20;
  /// When nonzero, size the site by DOM node count (elements + text
  /// nodes) instead of serialized bytes — the scale knob for the
  /// million-node chaos corpus, where "how many nodes" is the claim
  /// under test and bytes are incidental.
  uint64_t target_nodes = 0;
  /// Text planted in the site's <marker> child ("" for none).
  std::string marker;
};

/// Generate one <site> subtree into `doc` (detached; caller attaches).
xml::Node* GenerateSite(xml::Document* doc, const SiteOptions& options,
                        Rng* rng);

/// A document with `num_sites` sibling sites under an <xmark> root —
/// the star-shaped corpus of Experiments 1 and 4 (fragment at each
/// <site>). Site i carries marker "m<i>".
xml::Document GenerateStarDocument(int num_sites, uint64_t bytes_per_site,
                                   uint64_t seed);

/// The star corpus sized by DOM nodes instead of bytes: `num_sites`
/// sibling sites of ~`nodes_per_site` nodes each (site i marked
/// "m<i>"). num_sites * nodes_per_site is the document's scale —
/// 10'000 x 100 builds the >=1M-node, 10k-fragment chaos corpus in
/// CI-compatible time.
xml::Document GenerateScaledStarDocument(int num_sites,
                                         uint64_t nodes_per_site,
                                         uint64_t seed);

/// A document where each site nests the next inside a <history> child —
/// the version-history chain of Experiment 2 (FT2). Version i carries
/// marker "v<i>", i in [0, depth).
xml::Document GenerateChainDocument(int depth, uint64_t bytes_per_site,
                                    uint64_t seed);

/// A document shaped like an arbitrary fragment tree: `children[i]`
/// lists the site-indices nested (via <history>) inside site i; site 0
/// is the root. `bytes_per_site[i]` sizes each site; marker "m<i>".
/// Used for the bushy FT3 corpus of Experiment 3.
xml::Document GenerateTreeDocument(
    const std::vector<std::vector<int>>& children,
    const std::vector<uint64_t>& bytes_per_site, uint64_t seed);

/// Random small tree over a tiny label alphabet, for property tests:
/// every label is from {a,b,c,d,e} and text values from {t0..t4}, so
/// random queries have a fair chance of matching.
xml::Document GenerateRandomSmallDocument(int max_elements, Rng* rng);

}  // namespace parbox::xmark

#endif  // PARBOX_XMARK_GENERATOR_H_
