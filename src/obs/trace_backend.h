// TracingBackend: an ExecBackend decorator that emits Compute/Send
// spans and propagates trace contexts across execution contexts.
//
// Wraps ANY backend — sim, threads, or a NamespaceBackend view on a
// shared host — and forwards everything; the only added behavior is
// around Compute/Send/RecordVisit when the tracer is enabled AND the
// calling context carries an active TraceContext:
//
//   * Compute: a span covering enqueue -> done (so it includes queue
//     wait on the site's serial queue, exactly the paper's
//     serialization effect), in the site's lane, parented to the
//     ambient span at call time; the done callback runs under the
//     compute span's context, so work it issues (the site's triplet
//     Send) parents beneath it.
//   * Send: a span from send to delivery (wire latency + bandwidth on
//     the sim, real transport on threads), parented to the ambient
//     span at send time. The context crosses in the Parcel's trace
//     metadata; deliver runs under {parcel.trace_id, send span}, so
//     per-site work triggered by a "query" broadcast hangs beneath
//     that site's send span — the per-site visit subtree.
//   * RecordVisit: an instant event in the site's lane.
//
// Timestamps are always the wrapped backend's now() — virtual on the
// sim, so sim traces are deterministic (golden-tested byte-identical).
//
// Cost discipline: Session installs this decorator only when a tracer
// is configured, so the tracing-off hot path is structurally the
// undecorated backend (the <3% bench_x6 overhead gate measures the
// decorator present-but-disabled, which short-circuits on one relaxed
// atomic load per call).

#ifndef PARBOX_OBS_TRACE_BACKEND_H_
#define PARBOX_OBS_TRACE_BACKEND_H_

#include <memory>
#include <string>
#include <utility>

#include "exec/backend.h"
#include "obs/trace.h"

namespace parbox::obs {

class TracingBackend final : public exec::ExecBackend {
 public:
  /// `tracer` must outlive the backend.
  TracingBackend(std::unique_ptr<exec::ExecBackend> inner, Tracer* tracer)
      : inner_(std::move(inner)), tracer_(tracer) {}

  exec::ExecBackend& inner() { return *inner_; }

  std::string_view name() const override { return inner_->name(); }
  int num_sites() const override { return inner_->num_sites(); }
  exec::SiteId coordinator() const override {
    return inner_->coordinator();
  }
  void SetCoordinator(exec::SiteId site) override {
    inner_->SetCoordinator(site);
  }
  Result<exec::SiteId> AddNamespace(
      int num_sites, exec::SiteId coordinator,
      bexpr::ExprFactory* coordinator_factory) override {
    return inner_->AddNamespace(num_sites, coordinator,
                                coordinator_factory);
  }
  bexpr::ExprFactory& site_factory(exec::SiteId site) override {
    return inner_->site_factory(site);
  }

  void Compute(exec::SiteId site, uint64_t ops, Task done) override;
  void Send(exec::SiteId from, exec::SiteId to, exec::Parcel parcel,
            std::string_view tag, DeliverFn deliver) override;
  void RecordVisit(exec::SiteId site) override;

  void ScheduleAt(double when, Task task) override {
    inner_->ScheduleAt(when, std::move(task));
  }
  double now() const override { return inner_->now(); }
  double Drain() override { return inner_->Drain(); }
  void Reset() override { inner_->Reset(); }
  void MutateExclusive(const Task& mutate) override {
    inner_->MutateExclusive(mutate);
  }

  const sim::TrafficStats& traffic() const override {
    return inner_->traffic();
  }
  std::vector<uint64_t> visits() const override {
    return inner_->visits();
  }
  uint64_t visits_at(exec::SiteId site) const override {
    return inner_->visits_at(site);
  }
  double total_busy_seconds() const override {
    return inner_->total_busy_seconds();
  }
  void AddBackendStats(StatsRegistry* stats) const override {
    inner_->AddBackendStats(stats);
  }
  sim::Cluster* sim_cluster() override { return inner_->sim_cluster(); }
  uint64_t RecoveryEpoch(exec::SiteId site) const override {
    return inner_->RecoveryEpoch(site);
  }

 private:
  std::unique_ptr<exec::ExecBackend> inner_;
  Tracer* tracer_;
};

}  // namespace parbox::obs

#endif  // PARBOX_OBS_TRACE_BACKEND_H_
