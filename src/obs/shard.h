// Per-thread shard registry shared by the metrics registry and the
// tracer.
//
// Hot-path recording (counter bumps, span appends) must not contend or
// race under the thread-pool backend, so each writer thread gets its
// own shard — a plain (non-atomic) T written only by that thread — and
// quiescent readers merge every shard under the registration mutex.
// This is the same single-writer/merge-when-quiescent pattern as the
// per-executor TrafficStats in exec::ThreadPoolBackend: the backend's
// outstanding-work accounting (release fetch_sub / acquire load)
// provides the happens-before edge between a worker's last write and
// the coordinator's read after Drain.
//
// Thread-local lookup is a linear scan of a small per-thread cache
// keyed by a process-unique ShardSet id; a thread touches only the few
// registries of the sessions it serves, so the scan is short, and a
// destroyed (or Clear()ed) ShardSet's id is never reissued, so stale
// cache entries can never alias a live set.

#ifndef PARBOX_OBS_SHARD_H_
#define PARBOX_OBS_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace parbox::obs::detail {

inline uint64_t NextShardSetId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

template <typename T>
class ShardSet {
 public:
  ShardSet() : id_(NextShardSetId()) {}

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  /// The calling thread's shard, created (and registered) on first
  /// touch. The returned reference stays valid until Clear() or
  /// destruction; only the owning thread may write through it.
  T& Local() {
    thread_local std::vector<std::pair<uint64_t, void*>> cache;
    for (const auto& [id, ptr] : cache) {
      if (id == id_) return *static_cast<T*>(ptr);
    }
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<T>());
    T* shard = shards_.back().get();
    cache.emplace_back(id_, shard);
    return *shard;
  }

  /// Visit every shard (registration order). Quiescent reads only: a
  /// shard's owning thread must not be writing concurrently.
  template <typename Fn>
  void ForEach(Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) fn(*shard);
  }

  /// Drop every shard. Requires quiescence; the fresh id makes every
  /// thread's cached pointer permanently stale rather than dangling
  /// into a reused slot.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.clear();
    id_ = NextShardSetId();
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<T>> shards_;
  uint64_t id_;
};

}  // namespace parbox::obs::detail

#endif  // PARBOX_OBS_SHARD_H_
