#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace parbox::obs {

// ---- Histogram ---------------------------------------------------------

double Histogram::sum() const {
  // Exact regime: recompute from the retained samples, exactly as
  // Distribution does (same values, same iteration order, same FP
  // rounding — the byte-parity tests depend on it). Reservoir regime:
  // the running accumulator covers the dropped samples.
  if (!exact()) return sum_;
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

double Histogram::min() const {
  if (!exact()) return min_;
  return values_.empty()
             ? 0.0
             : *std::min_element(values_.begin(), values_.end());
}

double Histogram::max() const {
  if (!exact()) return max_;
  return values_.empty()
             ? 0.0
             : *std::max_element(values_.begin(), values_.end());
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (exact() && other.exact() &&
      count_ + other.count_ <= kExactSamples) {
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    sorted_ = false;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = count_ == other.count_ ? other.min_
                                  : std::min(min_, other.min_);
    max_ = count_ == other.count_ ? other.max_
                                  : std::max(max_, other.max_);
    return;
  }
  // At least one side already dropped samples (or the union would):
  // merge the exact moments, then run the donor's retained samples
  // through the reservoir. Each donor sample stands for
  // other.count/other.retained observations, so draw its slot over
  // that many positions — both sides keep proportional representation.
  const uint64_t merged_count = count_ + other.count_;
  const double merged_sum = sum() + other.sum();
  const double merged_min =
      count_ == 0 ? other.min() : std::min(min(), other.min());
  const double merged_max =
      count_ == 0 ? other.max() : std::max(max(), other.max());
  const uint64_t represents =
      other.values_.empty()
          ? 1
          : std::max<uint64_t>(other.count_ / other.values_.size(), 1);
  uint64_t seen = count_;
  for (double v : other.values_) {
    seen += represents;
    if (values_.size() < kExactSamples) {
      values_.push_back(v);
      sorted_ = false;
      continue;
    }
    const uint64_t j = NextRandom() % seen;
    if (j < kExactSamples) {
      values_[j] = v;
      sorted_ = false;
    }
  }
  count_ = merged_count;
  sum_ = merged_sum;
  min_ = merged_min;
  max_ = merged_max;
}

void Histogram::EnsureSorted() const {
  if (sorted_) return;
  std::sort(values_.begin(), values_.end());
  sorted_ = true;
}

double Histogram::Percentile(double pct) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  pct = std::clamp(pct, 0.0, 100.0);
  // Nearest rank, matching Distribution::Percentile bit-for-bit.
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(values_.size())));
  if (rank == 0) rank = 1;
  return values_[rank - 1];
}

std::string Histogram::Summary(const std::string& unit,
                               double scale) const {
  std::ostringstream out;
  out << "n=" << count();
  auto put = [&](const char* name, double v) {
    out << " " << name << "=" << v * scale << unit;
  };
  put("mean", mean());
  put("p50", Percentile(50));
  put("p95", Percentile(95));
  put("p99", Percentile(99));
  put("max", max());
  return out.str();
}

// ---- MetricsSnapshot ---------------------------------------------------

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    const uint64_t before = it == base.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= before ? value - before : 0;
  }
  delta.gauges = gauges;
  delta.histograms = histograms;
  return delta;
}

namespace {

void AppendJsonKey(std::ostringstream* out, const std::string& name,
                   bool* first) {
  if (!*first) *out << ",\n";
  *first = false;
  *out << "    \"" << name << "\": ";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\n  \"counters\": {\n";
  bool first = true;
  for (const auto& [name, value] : counters) {
    AppendJsonKey(&out, name, &first);
    out << value;
  }
  out << "\n  },\n  \"gauges\": {\n";
  first = true;
  for (const auto& [name, value] : gauges) {
    AppendJsonKey(&out, name, &first);
    out << value;
  }
  out << "\n  },\n  \"histograms\": {\n";
  first = true;
  for (const auto& [name, h] : histograms) {
    AppendJsonKey(&out, name, &first);
    out << "{\"count\": " << h.count << ", \"mean\": " << h.mean()
        << ", \"p50\": " << h.p50 << ", \"p95\": " << h.p95
        << ", \"p99\": " << h.p99 << ", \"min\": " << h.min
        << ", \"max\": " << h.max << "}";
  }
  out << "\n  }\n}\n";
  return out.str();
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << name << " = n=" << h.count << " mean=" << h.mean()
        << " p50=" << h.p50 << " p95=" << h.p95 << " p99=" << h.p99
        << " max=" << h.max << "\n";
  }
  return out.str();
}

// ---- MetricsRegistry ---------------------------------------------------

MetricsRegistry::MetricId MetricsRegistry::Intern(std::string_view name,
                                                  Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(name); it != index_.end()) {
    assert(kinds_[static_cast<size_t>(it->second)] == kind &&
           "metric re-interned with a different kind");
    return it->second;
  }
  const MetricId id = static_cast<MetricId>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  gauges_.push_back(0.0);
  index_.emplace(names_.back(), id);
  return id;
}

MetricsRegistry::MetricId MetricsRegistry::FindId(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

void MetricsRegistry::Add(MetricId id, uint64_t delta) {
  Shard& shard = shards_.Local();
  const size_t slot = static_cast<size_t>(id);
  if (shard.counters.size() <= slot) shard.counters.resize(slot + 1, 0);
  shard.counters[slot] += delta;
}

void MetricsRegistry::Observe(MetricId id, double value) {
  Shard& shard = shards_.Local();
  const size_t slot = static_cast<size_t>(id);
  if (shard.histograms.size() <= slot) shard.histograms.resize(slot + 1);
  shard.histograms[slot].Add(value);
}

void MetricsRegistry::Set(MetricId id, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[static_cast<size_t>(id)] = value;
}

uint64_t MetricsRegistry::CounterValue(MetricId id) const {
  uint64_t total = 0;
  const size_t slot = static_cast<size_t>(id);
  shards_.ForEach([&](const Shard& shard) {
    if (slot < shard.counters.size()) total += shard.counters[slot];
  });
  return total;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const MetricId id = FindId(name);
  return id < 0 ? 0 : CounterValue(id);
}

Histogram MetricsRegistry::HistogramValue(MetricId id) const {
  Histogram merged;
  const size_t slot = static_cast<size_t>(id);
  shards_.ForEach([&](const Shard& shard) {
    if (slot < shard.histograms.size()) {
      merged.Merge(shard.histograms[slot]);
    }
  });
  return merged;
}

Histogram MetricsRegistry::HistogramValue(std::string_view name) const {
  const MetricId id = FindId(name);
  return id < 0 ? Histogram{} : HistogramValue(id);
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  const MetricId id = FindId(name);
  if (id < 0) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[static_cast<size_t>(id)];
}

uint64_t MetricsRegistry::LocalCounterValue(MetricId id) const {
  const Shard& shard = shards_.Local();
  const size_t slot = static_cast<size_t>(id);
  return slot < shard.counters.size() ? shard.counters[slot] : 0;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Names/kinds/gauges first (under the mutex), then the quiescent
  // shard merge.
  std::vector<std::string> names;
  std::vector<Kind> kinds;
  std::vector<double> gauges;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = names_;
    kinds = kinds_;
    gauges = gauges_;
  }
  MetricsSnapshot snap;
  for (size_t i = 0; i < names.size(); ++i) {
    const MetricId id = static_cast<MetricId>(i);
    switch (kinds[i]) {
      case Kind::kCounter:
        snap.counters[names[i]] = CounterValue(id);
        break;
      case Kind::kGauge:
        snap.gauges[names[i]] = gauges[i];
        break;
      case Kind::kHistogram: {
        const Histogram h = HistogramValue(id);
        HistogramSummary s;
        s.count = h.count();
        s.sum = h.sum();
        s.min = h.min();
        s.max = h.max();
        s.p50 = h.Percentile(50);
        s.p95 = h.Percentile(95);
        s.p99 = h.Percentile(99);
        snap.histograms[names[i]] = s;
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::Reset() {
  shards_.Clear();
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
}

}  // namespace parbox::obs
