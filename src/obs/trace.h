// Tracer: per-query distributed trace spans across the serving stack.
//
// A trace is minted per query (QueryService::Submit) or per execution
// (Session::Execute) and answers "where did the time go": admission
// wait, round membership, per-site Compute/Send, coordinator solve,
// cache hit/refresh, delta apply, placement migration.
//
// ## Context propagation
//
// The active TraceContext (trace id + parent span id) is ambient
// per-thread state (CurrentTraceContext), set and restored by RAII
// scopes around every callback boundary, so evaluator and service code
// needs no signature changes:
//
//   * the service scopes the context around admission and round
//     dispatch;
//   * obs::TracingBackend (obs/trace_backend.h) captures the ambient
//     context at Compute/Send call time, stamps it into the Parcel's
//     trace metadata, and re-establishes it around the done/deliver
//     callback — in the destination's execution context, on both
//     backends — so causality follows messages across threads exactly
//     as it follows virtual events on the sim.
//
// ## Determinism
//
// The tracer never reads a clock: every timestamp is the caller's
// backend.now(), which is virtual on the sim backend — so a seeded sim
// run's span log is bit-identical across repeats (golden-tested). Span
// and trace ids come from counters; events are kept in per-thread
// shards (obs/shard.h) concatenated in registration order, which on
// the single-threaded sim is insertion order.
//
// ## Export
//
// ToChromeJson() writes Chrome trace_event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev): one lane per site,
// complete ("X") events for spans, instant ("i") events for points.
// Breakdown(trace_id) renders one query's span tree as text.

#ifndef PARBOX_OBS_TRACE_H_
#define PARBOX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/shard.h"

namespace parbox::obs {

/// The ambient causality handle: which trace the current execution
/// belongs to, and which span new children should parent to. trace_id
/// 0 means "not traced" (spans are skipped, not parented to nothing).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

/// The calling thread's ambient context (zero-initialized per thread).
TraceContext& CurrentTraceContext();

/// Set-and-restore the ambient context for a scope (every callback
/// boundary brackets itself with one, so contexts never leak).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx)
      : saved_(CurrentTraceContext()) {
    CurrentTraceContext() = ctx;
  }
  ~ScopedTraceContext() { CurrentTraceContext() = saved_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One span (dur_seconds >= 0) or instant event (dur_seconds < 0).
struct TraceEvent {
  std::string name;
  const char* category = "svc";
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< 0 for instants
  uint64_t parent_id = 0;
  int32_t site = 0;  ///< the lane ("tid") the event renders on
  double ts_seconds = 0.0;
  double dur_seconds = -1.0;
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  struct Options {
    /// Events kept before further Record calls are counted as dropped
    /// (a backstop against unbounded serving runs, not a ring buffer).
    size_t max_events = 1 << 20;
    bool enabled = true;
  };

  Tracer();
  explicit Tracer(const Options& options);

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  uint64_t MintTraceId() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t MintSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Append an event (any execution context; shard-local).
  void Record(TraceEvent event);

  /// Name hint for the next Compute issued by this thread, consumed by
  /// TracingBackend ("solve", "cache.lookup", "site.eval"; unnamed
  /// computes render as "compute").
  void SetNextComputeName(const char* name);
  /// nullptr when no hint is pending.
  const char* TakeNextComputeName();

  // ---- Export (quiescent reads only) ----

  /// Every recorded event, shards concatenated in registration order
  /// (= insertion order on the single-threaded sim).
  std::vector<TraceEvent> Collect() const;
  size_t event_count() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON (an array of events, one per line).
  std::string ToChromeJson(std::string_view process_name = "parbox") const;
  Status WriteChromeJson(const std::string& path,
                         std::string_view process_name = "parbox") const;

  /// One query's span tree as indented text ("where the time went").
  std::string Breakdown(uint64_t trace_id) const;

  /// Forget every event; ids keep counting (requires quiescence).
  void Reset();

 private:
  struct Shard {
    std::vector<TraceEvent> events;
  };

  std::atomic<bool> enabled_;
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  std::atomic<size_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  size_t max_events_;
  mutable detail::ShardSet<Shard> shards_;
};

/// The process-global environment tracer: non-null (and enabled) iff
/// $PARBOX_TRACE is set non-empty — how CI runs whole existing suites
/// with tracing woven in (`PARBOX_TRACE=1 ctest -L backends`) without
/// touching their code. SessionOptions/ServiceOptions default their
/// tracer to this, so it is nullptr (tracing structurally absent) in
/// normal runs.
Tracer* DefaultTracer();

}  // namespace parbox::obs

#endif  // PARBOX_OBS_TRACE_H_
