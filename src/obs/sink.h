// StatsSink: periodic interval snapshots and a slow-query log for a
// serving run.
//
// A QueryService (or several, sharing one sink under a CatalogService)
// reports into the sink from its coordinator execution context:
//
//   * interval summary lines — the service checks DueAt(now) on every
//     completion and emits one line per elapsed interval (qps, p99,
//     cache hit rate, bytes by tag), computed from coordinator-local
//     meters so live serving never reads another thread's shard;
//   * slow queries — completions over the latency threshold are logged
//     with their trace id, so `--trace` output can be cross-referenced
//     to exactly the outliers.
//
// Lines are retained in a bounded ring (lines()) and optionally
// streamed through `write` (parboxq --serve prints them as they
// happen). Time is the service's backend clock: virtual on the sim —
// deterministic lines — real on the thread pool.
//
// Concurrency: a sink is single-writer. Every caller runs in
// coordinator context (completions, flush ticks), and a shared
// substrate has ONE draining thread, so catalog-wide sharing needs no
// lock.

#ifndef PARBOX_OBS_SINK_H_
#define PARBOX_OBS_SINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

namespace parbox::obs {

struct StatsSinkOptions {
  /// Interval between summary lines, on the reporting service's clock.
  double interval_seconds = 1.0;
  /// Completions at or above this latency are logged; <= 0 disables.
  double slow_query_seconds = 0.1;
  /// Retained lines; older lines fall off the front.
  size_t max_lines = 4096;
  /// Optional streaming callback (stdout printer, test capture).
  std::function<void(const std::string&)> write;
};

class StatsSink {
 public:
  explicit StatsSink(StatsSinkOptions options = {});

  const StatsSinkOptions& options() const { return options_; }

  /// True at most once per interval: the first call observes the clock
  /// and returns false; later calls return true once a full interval
  /// has elapsed since the last due tick (and advance it).
  bool DueAt(double now_seconds);

  /// Record (and stream) one line.
  void Line(std::string line);

  /// Record a completion over the threshold. `label` names the service
  /// ("sched" document name); trace_id 0 prints as "-" (untraced).
  void SlowQuery(std::string_view label, uint64_t query_id,
                 uint64_t trace_id, double latency_seconds,
                 double now_seconds);

  const std::deque<std::string>& lines() const { return lines_; }
  uint64_t slow_queries() const { return slow_queries_; }

  void Reset();

 private:
  StatsSinkOptions options_;
  std::deque<std::string> lines_;
  double last_tick_ = 0.0;
  bool ticked_ = false;
  uint64_t slow_queries_ = 0;
};

}  // namespace parbox::obs

#endif  // PARBOX_OBS_SINK_H_
