// MetricsRegistry: one process-wide registry of named counters,
// gauges, and histograms behind a uniform interface.
//
// The serving stack used to meter itself three different ways: interned
// tag counts in sim::TrafficStats, string-keyed counters in
// StatsRegistry, and exact-sample percentiles in Distribution — each
// read through its own API. The registry subsumes them:
//
//   * Names are interned once (at service construction) into dense
//     MetricIds; the hot path is an array increment into the calling
//     thread's shard (obs/shard.h), so worker threads of the
//     thread-pool backend record without locks or atomics — the same
//     single-writer pattern as the backend's per-executor traffic
//     meters, with the same quiescent-merge read discipline.
//   * Histograms keep exact samples with Distribution's API (Add,
//     Percentile, Summary, Merge), so report types can switch over
//     without perturbing existing percentile assertions.
//   * Namespace prefixes are plain name prefixes ("d3.service.rounds"),
//     matching exec::BackendHost's traffic-tag prefixes, so
//     per-document meters on a shared registry stay exactly separable.
//   * Snapshot() materializes everything into a sorted, delta-able,
//     JSON-able view (StatsSink intervals, parboxq --statz, bench
//     JSON).
//
// Concurrency: Add/Increment/Observe are safe from any execution
// context and never contend after a thread's first touch. Merged reads
// (CounterValue, HistogramValue, Snapshot) require quiescence — call
// after Drain, exactly like backend meters. LocalCounterValue reads
// only the calling thread's shard and is therefore safe mid-run for
// metrics that thread itself recorded (the StatsSink's periodic lines
// run in coordinator context and read coordinator-written counters).

#ifndef PARBOX_OBS_METRICS_H_
#define PARBOX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/shard.h"

namespace parbox::obs {

/// A sample of real-valued observations — Distribution's exact-sample
/// semantics (nearest-rank percentiles on a lazily sorted copy) up to
/// kExactSamples observations, then a bounded reservoir.
///
/// Long serving and chaos runs observe millions of latencies; keeping
/// every sample grows without limit. Below the threshold the sample
/// is exact and byte-compatible with Distribution (the parity test in
/// tests/obs_test.cc holds Summary strings equal); beyond it, new
/// observations replace uniformly drawn reservoir slots (Vitter's
/// Algorithm R on a deterministic xorshift stream, so runs replay
/// identically) — percentiles become estimates over a fixed
/// kExactSamples-size sample while count/sum/mean/min/max stay exact
/// via scalar accumulators.
class Histogram {
 public:
  /// Exact samples retained before reservoir sampling kicks in.
  static constexpr size_t kExactSamples = 4096;

  void Add(double value) {
    ++count_;
    sum_ += value;
    if (count_ == 1) {
      min_ = max_ = value;
    } else {
      if (value < min_) min_ = value;
      if (value > max_) max_ = value;
    }
    if (values_.size() < kExactSamples) {
      values_.push_back(value);
      sorted_ = false;
      return;
    }
    // Algorithm R: slot j uniform over every observation so far; the
    // new value enters only if j lands inside the reservoir, keeping
    // each observation retained with probability kExactSamples/count.
    const uint64_t j = NextRandom() % count_;
    if (j < kExactSamples) {
      values_[j] = value;
      sorted_ = false;
    }
  }

  size_t count() const { return count_; }
  double sum() const;
  double mean() const { return count_ == 0 ? 0.0 : sum() / count(); }
  double min() const;
  double max() const;

  /// Samples currently retained (== count() in the exact regime,
  /// kExactSamples once the reservoir engaged).
  size_t retained() const { return values_.size(); }
  /// True while every observation is still retained (percentiles are
  /// exact, not reservoir estimates).
  bool exact() const { return count_ == values_.size(); }

  /// Nearest-rank percentile, `pct` in [0, 100]. 0 on an empty sample.
  /// Exact below kExactSamples observations, a reservoir estimate
  /// beyond.
  double Percentile(double pct) const;

  /// Pool `other`'s observations into this sample. Exact (plain
  /// concatenation) while the union fits the exact regime; beyond
  /// that, the donor's retained samples feed the reservoir and the
  /// scalar moments merge exactly.
  void Merge(const Histogram& other);

  /// "n=.. mean=.. p50=.. p95=.. p99=.. max=.." with `unit` appended
  /// and values multiplied by `scale` (1e3 prints seconds as ms) —
  /// byte-compatible with Distribution::Summary in the exact regime.
  std::string Summary(const std::string& unit = "",
                      double scale = 1.0) const;

 private:
  void EnsureSorted() const;
  /// xorshift64 from a fixed seed: deterministic replacement slots —
  /// identical runs keep identical reservoirs (the differential
  /// suites depend on reports being reproducible).
  uint64_t NextRandom() {
    uint64_t x = rng_state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_state_ = x;
    return x;
  }

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  /// Exact moments over EVERY observation (not just retained ones).
  /// Reads recompute from values_ while exact() for bit-parity with
  /// Distribution; these take over once the reservoir engages.
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
};

/// One histogram's summary statistics inside a snapshot.
struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// A point-in-time materialization of a registry (sorted by name).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Counters minus `base`'s (absent = 0); gauges and histograms are
  /// taken from *this as-is (exact-sample percentiles do not subtract).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;

  std::string ToJson() const;
  /// Multi-line "name = value" dump, sorted by name.
  std::string ToString() const;
};

class MetricsRegistry {
 public:
  using MetricId = int32_t;
  enum class Kind { kCounter, kGauge, kHistogram };

  /// Intern `name` as a metric of `kind`, returning its dense id
  /// (stable for the registry's lifetime, across Reset). Re-interning
  /// an existing name returns the same id; the kind must match.
  MetricId Intern(std::string_view name, Kind kind);

  // ---- Hot path (any execution context, shard-local) ----

  void Add(MetricId id, uint64_t delta);
  void Increment(MetricId id) { Add(id, 1); }
  void Observe(MetricId id, double value);

  /// Gauges are last-write-wins and rare (snapshot-time state like
  /// cache size); they live under the registry mutex, not in shards.
  void Set(MetricId id, double value);

  // ---- String-keyed conveniences (intern + record) ----

  void AddCounter(std::string_view name, uint64_t delta) {
    Add(Intern(name, Kind::kCounter), delta);
  }
  void ObserveValue(std::string_view name, double value) {
    Observe(Intern(name, Kind::kHistogram), value);
  }
  void SetGauge(std::string_view name, double value) {
    Set(Intern(name, Kind::kGauge), value);
  }

  // ---- Merged reads (quiescent only, except LocalCounterValue) ----

  uint64_t CounterValue(MetricId id) const;
  uint64_t CounterValue(std::string_view name) const;
  Histogram HistogramValue(MetricId id) const;
  Histogram HistogramValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  /// The calling thread's own shard's count only — exact for metrics
  /// this thread recorded, and safe while other threads are running.
  uint64_t LocalCounterValue(MetricId id) const;

  MetricsSnapshot Snapshot() const;
  std::string ToString() const { return Snapshot().ToString(); }

  /// Forget every recorded value. Names and ids persist, so interned
  /// handles stay valid. Requires quiescence.
  void Reset();

 private:
  struct Shard {
    std::vector<uint64_t> counters;    // by MetricId
    std::vector<Histogram> histograms; // by MetricId
  };

  /// -1 when `name` is not interned (const read paths).
  MetricId FindId(std::string_view name) const;

  mutable std::mutex mu_;  // names, kinds, gauges
  std::vector<std::string> names_;  // registry, index = MetricId
  std::vector<Kind> kinds_;
  std::map<std::string, MetricId, std::less<>> index_;
  std::vector<double> gauges_;  // by MetricId (kGauge slots)
  mutable detail::ShardSet<Shard> shards_;
};

}  // namespace parbox::obs

#endif  // PARBOX_OBS_METRICS_H_
