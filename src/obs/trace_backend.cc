#include "obs/trace_backend.h"

namespace parbox::obs {

void TracingBackend::Compute(exec::SiteId site, uint64_t ops, Task done) {
  if (!tracer_->enabled()) {
    inner_->Compute(site, ops, std::move(done));
    return;
  }
  const TraceContext ctx = CurrentTraceContext();
  if (!ctx.active()) {
    inner_->Compute(site, ops, std::move(done));
    return;
  }
  const char* hint = tracer_->TakeNextComputeName();
  const char* name = hint != nullptr ? hint : "compute";
  const uint64_t span = tracer_->MintSpanId();
  const double start = inner_->now();
  inner_->Compute(site, ops,
                  [this, ctx, span, name, start, site, ops,
                   done = std::move(done)] {
    // The site's context: children created by done() (e.g. the site's
    // triplet reply) parent beneath this compute span.
    ScopedTraceContext scope({ctx.trace_id, span});
    done();
    TraceEvent e;
    e.name = name;
    e.category = "site";
    e.trace_id = ctx.trace_id;
    e.span_id = span;
    e.parent_id = ctx.span_id;
    e.site = site;
    e.ts_seconds = start;
    e.dur_seconds = inner_->now() - start;
    e.args.emplace_back("ops", std::to_string(ops));
    tracer_->Record(std::move(e));
  });
}

void TracingBackend::Send(exec::SiteId from, exec::SiteId to,
                          exec::Parcel parcel, std::string_view tag,
                          DeliverFn deliver) {
  if (!tracer_->enabled()) {
    inner_->Send(from, to, std::move(parcel), tag, std::move(deliver));
    return;
  }
  const TraceContext ctx = CurrentTraceContext();
  if (!ctx.active()) {
    inner_->Send(from, to, std::move(parcel), tag, std::move(deliver));
    return;
  }
  const double start = inner_->now();
  parcel.set_trace(ctx.trace_id, tracer_->MintSpanId());
  std::string name = "send[";
  name += tag;
  name += "]";
  inner_->Send(from, to, std::move(parcel), tag,
               [this, name = std::move(name), ctx, start, from, to,
                deliver = std::move(deliver)](exec::Parcel delivered) {
    TraceEvent e;
    e.name = name;
    e.category = "net";
    e.trace_id = delivered.trace_id();
    e.span_id = delivered.trace_span();
    e.parent_id = ctx.span_id;
    e.site = from;
    e.ts_seconds = start;
    e.dur_seconds = inner_->now() - start;
    e.args.emplace_back("bytes", std::to_string(delivered.wire_bytes()));
    e.args.emplace_back("from", std::to_string(from));
    e.args.emplace_back("to", std::to_string(to));
    tracer_->Record(std::move(e));
    // The destination's context: work the delivery triggers parents
    // beneath this wire span. The context comes off the parcel's trace
    // metadata — what actually crossed — not the sender-side capture.
    ScopedTraceContext scope(
        {delivered.trace_id(), delivered.trace_span()});
    deliver(std::move(delivered));
  });
}

void TracingBackend::RecordVisit(exec::SiteId site) {
  inner_->RecordVisit(site);
  if (!tracer_->enabled()) return;
  const TraceContext ctx = CurrentTraceContext();
  if (!ctx.active()) return;
  TraceEvent e;
  e.name = "visit";
  e.category = "site";
  e.trace_id = ctx.trace_id;
  e.parent_id = ctx.span_id;
  e.site = site;
  e.ts_seconds = inner_->now();
  tracer_->Record(std::move(e));
}

}  // namespace parbox::obs
