#include "obs/sink.h"

#include <cstdio>
#include <utility>

namespace parbox::obs {

StatsSink::StatsSink(StatsSinkOptions options)
    : options_(std::move(options)) {}

bool StatsSink::DueAt(double now_seconds) {
  if (!ticked_) {
    ticked_ = true;
    last_tick_ = now_seconds;
    return false;
  }
  if (now_seconds - last_tick_ < options_.interval_seconds) return false;
  last_tick_ = now_seconds;
  return true;
}

void StatsSink::Line(std::string line) {
  if (options_.write) options_.write(line);
  lines_.push_back(std::move(line));
  while (lines_.size() > options_.max_lines) lines_.pop_front();
}

void StatsSink::SlowQuery(std::string_view label, uint64_t query_id,
                          uint64_t trace_id, double latency_seconds,
                          double now_seconds) {
  ++slow_queries_;
  char buf[192];
  char trace[32];
  if (trace_id != 0) {
    std::snprintf(trace, sizeof(trace), "%llu",
                  static_cast<unsigned long long>(trace_id));
  } else {
    std::snprintf(trace, sizeof(trace), "-");
  }
  std::snprintf(buf, sizeof(buf),
                "[%.*s] slow-query q=%llu trace=%s lat=%.3fms t=%.3fs",
                static_cast<int>(label.size()), label.data(),
                static_cast<unsigned long long>(query_id), trace,
                latency_seconds * 1e3, now_seconds);
  Line(buf);
}

void StatsSink::Reset() {
  lines_.clear();
  last_tick_ = 0.0;
  ticked_ = false;
  slow_queries_ = 0;
}

}  // namespace parbox::obs
